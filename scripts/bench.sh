#!/usr/bin/env bash
# Benchmark regression harness: builds, runs the machine-readable bench
# binaries, and drops their JSON next to the sources so successive commits
# can be diffed numerically:
#
#   scripts/bench.sh          ->  BENCH_pipeline.json  (pipeline_scaling)
#                                 BENCH_obs.json       (obs_overhead)
#                                 BENCH_quality.json   (vapro_stress --score)
#                                 BENCH_latency.json   (latency_profile)
#                                 BENCH_journal.json   (journal_throughput)
#
# Each file holds {"bench": ..., "results": [{name, reps, median, p95}]};
# see bench::JsonReport in bench/bench_common.hpp.  The bars the benches
# enforce themselves (2x pipeline scaling on >= 4-thread hosts, < 3%
# telemetry overhead) still apply: a failed bar fails this script.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja > /dev/null
cmake --build build --target pipeline_scaling obs_overhead latency_profile journal_throughput vapro_stress > /dev/null

./build/bench/pipeline_scaling --json BENCH_pipeline.json
./build/bench/obs_overhead --json BENCH_obs.json
# Detection-quality scoreboard: the full app x noise matrix, scored against
# injection ground truth.  Byte-deterministic for the fixed seed, so the
# committed file diffs cleanly; scripts/quality_gate.py enforces
# no-regression in CI.
./build/tools/vapro_stress --score --json BENCH_quality.json
# Per-stage latency profile on the deterministic TickClock: also
# byte-identical per commit; scripts/latency_schema.py validates it in CI.
./build/bench/latency_profile --json BENCH_latency.json
# Segmented journal store throughput (both framings, read-back,
# compaction); scripts/journal_schema.py validates the shape in CI.
./build/bench/journal_throughput --json BENCH_journal.json

echo "bench.sh OK: BENCH_pipeline.json BENCH_obs.json BENCH_quality.json BENCH_latency.json BENCH_journal.json"
