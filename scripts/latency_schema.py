#!/usr/bin/env python3
"""BENCH_latency.json schema validator.

Checks the latency_profile bench output (bench::JsonReport shape) for the
series the self-diagnosis surfaces promise: one ``stage_<name>_seconds``
and one ``bound_windows_<name>`` series per pipeline stage (the canonical
eight — queue_wait, drain, stg, cluster, normalize, deposit, diagnose,
publish), plus ``window_total_seconds`` and ``dominant_stage_index``.
Values must be finite and non-negative, every per-window series must have
the same rep count, and the bound-window counts must sum to that count
(each window is bound by exactly one stage).

Usage:
  scripts/latency_schema.py BENCH_latency.json

Exit status: 0 = schema OK, 1 = violation (or unreadable input).
"""

import json
import math
import sys

STAGES = ("queue_wait", "drain", "stg", "cluster", "normalize", "deposit",
          "diagnose", "publish")


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 1
    path = sys.argv[1]
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"latency_schema: cannot read {path}: {e}", file=sys.stderr)
        return 1

    errors = []
    if doc.get("bench") != "latency_profile":
        errors.append(f'bench is {doc.get("bench")!r}, want "latency_profile"')

    rows = {}
    for row in doc.get("results", []):
        name = row.get("name")
        if not isinstance(name, str):
            errors.append(f"result without a string name: {row!r}")
            continue
        for field in ("reps", "median", "p95"):
            v = row.get(field)
            if not isinstance(v, (int, float)) or not math.isfinite(v):
                errors.append(f"{name}.{field} is not a finite number: {v!r}")
            elif v < 0:
                errors.append(f"{name}.{field} is negative: {v!r}")
        rows[name] = row

    windows = None
    for stage in STAGES:
        series = f"stage_{stage}_seconds"
        if series not in rows:
            errors.append(f"missing series {series}")
            continue
        reps = rows[series].get("reps")
        if windows is None:
            windows = reps
        elif reps != windows:
            errors.append(f"{series}.reps = {reps}, other stages have "
                          f"{windows}")
    if "window_total_seconds" not in rows:
        errors.append("missing series window_total_seconds")
    elif windows is not None and rows["window_total_seconds"]["reps"] != windows:
        errors.append("window_total_seconds.reps does not match the stages")

    bound_total = 0
    for stage in STAGES:
        series = f"bound_windows_{stage}"
        if series not in rows:
            errors.append(f"missing series {series}")
            continue
        bound_total += rows[series].get("median", 0)
    if windows and not errors and bound_total != windows:
        errors.append(f"bound_windows sum to {bound_total}, want {windows} "
                      "(each window bound by exactly one stage)")

    dom = rows.get("dominant_stage_index")
    if dom is None:
        errors.append("missing series dominant_stage_index")
    elif not 0 <= dom.get("median", -1) < len(STAGES):
        errors.append(f'dominant_stage_index {dom.get("median")!r} out of '
                      f"range [0, {len(STAGES)})")

    for e in errors:
        print(f"SCHEMA  {e}")
    if errors:
        print(f"latency_schema: FAIL ({len(errors)} violation(s))")
        return 1
    print(f"latency_schema: OK ({len(rows)} series, {windows} windows, "
          f"dominant stage {STAGES[int(dom['median'])]})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
