#!/usr/bin/env python3
"""Detection-quality regression gate.

Compares a freshly generated BENCH_quality.json (vapro_stress --score
--json) against the committed baseline and fails when any per-cell or
aggregate metric REGRESSES beyond a small epsilon.  Improvements pass —
with a notice to re-run `vapro_stress --score --json BENCH_quality.json`
and commit the new baseline so the gate ratchets upward.

The scoreboard is byte-deterministic for a fixed seed, so in the common
case the two files are identical and the gate is trivially green; the
epsilon only matters when the matrix itself changes (new apps/noises) or
a cell legitimately moves.

Usage:
  scripts/quality_gate.py CANDIDATE.json [--baseline BENCH_quality.json]
                          [--epsilon 1e-9]

Exit status: 0 = no regression, 1 = regression (or unreadable input).
"""

import argparse
import json
import sys

METRICS = ("precision", "recall", "f1", "top_factor_accuracy")


def load_cells(path):
    """-> ({(app, noise, metric): value}, series_count).

    Reads the bench::JsonReport shape: results[].name is
    "<app>.<noise>.<metric>" (or "aggregate.<metric>"), with the value in
    the single-sample series' median.
    """
    with open(path) as f:
        doc = json.load(f)
    cells = {}
    for row in doc.get("results", []):
        name = row.get("name", "")
        parts = name.split(".")
        if len(parts) == 2 and parts[0] == "aggregate":
            key = ("aggregate", "-", parts[1])
        elif len(parts) == 3:
            key = tuple(parts)
        else:
            continue
        if key[-1] not in METRICS:
            continue
        cells[key] = float(row["median"])
    return cells


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("candidate", help="freshly generated BENCH_quality.json")
    ap.add_argument("--baseline", default="BENCH_quality.json",
                    help="committed baseline (default: %(default)s)")
    ap.add_argument("--epsilon", type=float, default=1e-9,
                    help="tolerated per-metric drop (default: %(default)s)")
    args = ap.parse_args()

    try:
        baseline = load_cells(args.baseline)
        candidate = load_cells(args.candidate)
    except (OSError, ValueError, KeyError) as e:
        print(f"quality_gate: cannot read inputs: {e}", file=sys.stderr)
        return 1

    if not baseline:
        print(f"quality_gate: no scoreboard series in {args.baseline}",
              file=sys.stderr)
        return 1

    regressions, improvements, missing = [], [], []
    for key, base in sorted(baseline.items()):
        label = "%s x %s %s" % key
        if key not in candidate:
            missing.append(label)
            continue
        delta = candidate[key] - base
        if delta < -args.epsilon:
            regressions.append((label, base, candidate[key]))
        elif delta > args.epsilon:
            improvements.append((label, base, candidate[key]))

    for label, base, new in regressions:
        print(f"REGRESSION  {label}: {base:.6f} -> {new:.6f}")
    # A cell vanishing from the matrix is a silent coverage loss: gate it.
    for label in missing:
        print(f"MISSING     {label}: in baseline but not in candidate")
    for label, base, new in improvements:
        print(f"improved    {label}: {base:.6f} -> {new:.6f}")

    if regressions or missing:
        print(f"quality_gate: FAIL ({len(regressions)} regression(s), "
              f"{len(missing)} missing cell(s))")
        return 1
    if improvements:
        print("quality_gate: OK — scoreboard improved; commit the new "
              "baseline to ratchet the gate:")
        print("  vapro_stress --score --json BENCH_quality.json")
    else:
        print(f"quality_gate: OK ({len(baseline)} metrics match baseline)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
