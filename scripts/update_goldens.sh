#!/usr/bin/env bash
# Regenerates the golden files in tests/golden/ from the current renderers.
#
# Usage: scripts/update_goldens.sh [build-dir]
#
# Run after an INTENTIONAL formatting change to the report tables, then
# review the diff of tests/golden/ like any other code change.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

if [[ ! -x "$BUILD_DIR/tests/test_golden" ]]; then
  echo "building test_golden in $BUILD_DIR ..."
  cmake -B "$BUILD_DIR" -S . >/dev/null
  cmake --build "$BUILD_DIR" --target test_golden -j >/dev/null
fi

mkdir -p tests/golden
VAPRO_UPDATE_GOLDENS=1 "$BUILD_DIR/tests/test_golden" \
  --gtest_brief=1 >/dev/null

echo "updated goldens:"
git -c core.quotepath=off status --short tests/golden || true
