#!/usr/bin/env bash
# Full verification cycle: configure, build, test, regenerate every
# experiment.  Mirrors what CI would run.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

echo "--- experiment reproduction ---"
for b in build/bench/*; do
  if [ -x "$b" ] && [ -f "$b" ]; then
    echo "### $b"
    "$b"
  fi
done
