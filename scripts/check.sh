#!/usr/bin/env bash
# Full verification cycle: configure, build, test, guard the repo
# hygiene invariants, smoke the observability outputs, regenerate every
# experiment.  Mirrors what CI would run.
set -euo pipefail
cd "$(dirname "$0")/.."

# Build artifacts must never be tracked (they were once; never again).
if git ls-files | grep -q '^build/'; then
  echo "FAIL: build artifacts are tracked in git:" >&2
  git ls-files | grep '^build/' | head >&2
  exit 1
fi

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

echo "--- observability smoke ---"
obs_tmp="$(mktemp -d)"
trap 'rm -rf "$obs_tmp"' EXIT
./build/tools/vapro_run --app=CG --ranks=32 --noise=cpu:1:0.4:1.4:1.0 \
  --metrics-out="$obs_tmp/metrics.json" --trace-out="$obs_tmp/trace.json" \
  > "$obs_tmp/run.out"
for f in metrics.json trace.json; do
  [ -s "$obs_tmp/$f" ] || { echo "FAIL: $f not written" >&2; exit 1; }
  if command -v python3 > /dev/null; then
    python3 -m json.tool "$obs_tmp/$f" > /dev/null \
      || { echo "FAIL: $f is not valid JSON" >&2; exit 1; }
  fi
done
grep -q '"traceEvents"' "$obs_tmp/trace.json" \
  || { echo "FAIL: trace.json missing traceEvents" >&2; exit 1; }
echo "observability smoke OK"

echo "--- experiment reproduction ---"
for b in build/bench/*; do
  if [ -x "$b" ] && [ -f "$b" ]; then
    echo "### $b"
    "$b"
  fi
done
