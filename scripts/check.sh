#!/usr/bin/env bash
# Full verification cycle: configure, build, test, guard the repo
# hygiene invariants, smoke the observability outputs, regenerate every
# experiment.  Mirrors what CI would run.
#
#   scripts/check.sh                   the full cycle
#   scripts/check.sh --sanitize=asan   ASan+UBSan build, fault+stress+net suites
#   scripts/check.sh --sanitize=tsan   TSan build, fault+stress+net suites
#   scripts/check.sh --sanitize=ubsan  standalone UBSan build, same suites
#
# Sanitizer mode builds into build-<name>/ (the plain build/ stays usable),
# runs the whole test suite under the sanitizer, then re-runs the fault and
# stress labels explicitly — those suites exist to execute failure paths,
# exactly where use-after-free and data races hide.
set -euo pipefail
cd "$(dirname "$0")/.."

sanitize=""
for arg in "$@"; do
  case "$arg" in
    --sanitize=asan|--sanitize=tsan|--sanitize=ubsan)
      sanitize="${arg#--sanitize=}" ;;
    *) echo "usage: scripts/check.sh [--sanitize=asan|tsan|ubsan]" >&2; exit 2 ;;
  esac
done

# Build artifacts must never be tracked (they were once; never again).
if git ls-files | grep -q '^build[^/]*/'; then
  echo "FAIL: build artifacts are tracked in git:" >&2
  git ls-files | grep '^build[^/]*/' | head >&2
  exit 1
fi

if [ -n "$sanitize" ]; then
  build="build-$sanitize"
  cmake -B "$build" -G Ninja -DVAPRO_SANITIZE="$sanitize" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DVAPRO_FAULT_INJECTION=ON
  cmake --build "$build"
  ctest --test-dir "$build" --output-on-failure
  echo "--- $sanitize: fault + stress + net + soa + journal labels ---"
  ctest --test-dir "$build" -L 'fault|stress|net|soa|journal' --output-on-failure
  echo "check.sh --sanitize=$sanitize OK"
  exit 0
fi

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

echo "--- observability smoke ---"
obs_tmp="$(mktemp -d)"
trap 'rm -rf "$obs_tmp"' EXIT
./build/tools/vapro_run --app=CG --ranks=32 --noise=cpu:1:0.4:1.4:1.0 \
  --metrics-out="$obs_tmp/metrics.json" --trace-out="$obs_tmp/trace.json" \
  > "$obs_tmp/run.out"
for f in metrics.json trace.json; do
  [ -s "$obs_tmp/$f" ] || { echo "FAIL: $f not written" >&2; exit 1; }
  if command -v python3 > /dev/null; then
    python3 -m json.tool "$obs_tmp/$f" > /dev/null \
      || { echo "FAIL: $f is not valid JSON" >&2; exit 1; }
  fi
done
grep -q '"traceEvents"' "$obs_tmp/trace.json" \
  || { echo "FAIL: trace.json missing traceEvents" >&2; exit 1; }
echo "observability smoke OK"

echo "--- exposition + journal smoke ---"
# Serve the live endpoints on an ephemeral port, scrape them while the
# tool lingers, and validate journal + Prometheus output shape.
./build/tools/vapro_run --app=CG --ranks=32 --noise=io:1:0.3:1.5:2.0 \
  --listen=0 --listen-linger=6 --journal-out="$obs_tmp/run.jsonl" \
  --journal-dir="$obs_tmp/segments" --journal-rotate-bytes=1024 \
  --alert-rule='worst_cell < 0.95' > "$obs_tmp/listen.out" 2>&1 &
run_pid=$!
port=""
for _ in $(seq 1 50); do
  port="$(sed -n 's|^listening on http://127\.0\.0\.1:\([0-9]*\).*|\1|p' \
    "$obs_tmp/listen.out" | head -1)"
  [ -n "$port" ] && break
  sleep 0.1
done
[ -n "$port" ] || { echo "FAIL: no listening port announced" >&2; exit 1; }
fetch() {  # fetch PATH OUT — curl when present, python3 otherwise
  if command -v curl > /dev/null; then
    curl -sf "http://127.0.0.1:$port$1" -o "$2"
  else
    python3 -c "import sys,urllib.request;
open(sys.argv[2],'wb').write(urllib.request.urlopen(
    'http://127.0.0.1:$port'+sys.argv[1], timeout=5).read())" "$1" "$2"
  fi
}
fetch /healthz "$obs_tmp/healthz.json" \
  || { echo "FAIL: /healthz unreachable" >&2; exit 1; }
grep -q '"status":"ok"' "$obs_tmp/healthz.json" \
  || { echo "FAIL: /healthz not ok" >&2; exit 1; }
fetch /metrics "$obs_tmp/metrics.prom" \
  || { echo "FAIL: /metrics unreachable" >&2; exit 1; }
fetch /v1/variance "$obs_tmp/variance.json" \
  || { echo "FAIL: /v1/variance unreachable" >&2; exit 1; }
if command -v python3 > /dev/null; then
  # Prometheus text format: every non-comment line is "name value".
  if ! python3 - "$obs_tmp/metrics.prom" <<'PYEOF'
import sys
samples = 0
for line in open(sys.argv[1]):
    line = line.rstrip("\n")
    if not line or line.startswith("#"):
        continue
    name, _, value = line.rpartition(" ")
    float(value)
    # "+"/"-" appear in histogram bucket labels (le="+Inf", le="1e-08").
    assert name and all(c.isalnum() or c in "_:{}=\",.+-" for c in name), line
    samples += 1
assert samples > 0, "empty /metrics exposition"
PYEOF
  then echo "FAIL: /metrics not valid Prometheus text" >&2; exit 1; fi
  python3 -m json.tool "$obs_tmp/variance.json" > /dev/null \
    || { echo "FAIL: /v1/variance is not valid JSON" >&2; exit 1; }
fi
wait "$run_pid" || { echo "FAIL: vapro_run --listen exited non-zero" >&2; exit 1; }
[ -s "$obs_tmp/run.jsonl" ] || { echo "FAIL: journal not written" >&2; exit 1; }
if command -v python3 > /dev/null; then
  # Journal: schema header first, then one JSON object per line.
  if ! python3 - "$obs_tmp/run.jsonl" <<'PYEOF'
import json, sys
lines = [json.loads(l) for l in open(sys.argv[1])]
assert lines, "empty journal"
assert lines[0]["schema"] == "vapro.journal", lines[0]
seqs = [e["seq"] for e in lines[1:]]
assert seqs == sorted(seqs), "non-monotonic journal seq"
PYEOF
  then echo "FAIL: journal JSONL invalid" >&2; exit 1; fi
fi
# A journal replay must reconstruct summaries without the raw trace.
./build/tools/vapro_replay --from-journal "$obs_tmp/run.jsonl" \
  > "$obs_tmp/replay_file.txt" \
  || { echo "FAIL: vapro_replay --from-journal" >&2; exit 1; }
# The same run also journaled into rotated binary segments: replaying the
# directory must reproduce the single-file replay byte for byte.
[ -d "$obs_tmp/segments" ] \
  || { echo "FAIL: --journal-dir wrote no segments" >&2; exit 1; }
seg_count="$(ls "$obs_tmp/segments" | wc -l)"
[ "$seg_count" -ge 2 ] \
  || { echo "FAIL: expected rotation, got $seg_count segment(s)" >&2; exit 1; }
./build/tools/vapro_replay --from-journal "$obs_tmp/segments" \
  > "$obs_tmp/replay_dir.txt" \
  || { echo "FAIL: vapro_replay --from-journal DIR" >&2; exit 1; }
cmp "$obs_tmp/replay_file.txt" "$obs_tmp/replay_dir.txt" \
  || { echo "FAIL: segment-dir replay differs from file replay" >&2; exit 1; }
# Offline compaction must preserve replay byte-identity while dropping
# superseded quality/region revisions.
./build/tools/vapro_replay --compact-journal "$obs_tmp/run.jsonl" \
  --compact-out="$obs_tmp/compacted.vjseg" \
  || { echo "FAIL: vapro_replay --compact-journal" >&2; exit 1; }
./build/tools/vapro_replay --from-journal "$obs_tmp/compacted.vjseg" \
  > "$obs_tmp/replay_compacted.txt" \
  || { echo "FAIL: vapro_replay on compacted journal" >&2; exit 1; }
cmp "$obs_tmp/replay_file.txt" "$obs_tmp/replay_compacted.txt" \
  || { echo "FAIL: compaction broke replay byte-identity" >&2; exit 1; }
ctest --test-dir build -L obs --output-on-failure > /dev/null \
  || { echo "FAIL: ctest -L obs" >&2; exit 1; }
echo "exposition + journal + compaction smoke OK"

echo "--- experiment reproduction ---"
for b in build/bench/*; do
  if [ -x "$b" ] && [ -f "$b" ]; then
    echo "### $b"
    "$b"
  fi
done
