#!/usr/bin/env python3
"""BENCH_journal.json schema validator.

Checks the journal_throughput bench output (bench::JsonReport shape) for
the series the segmented journal store promises: write and read
events/sec for both framings (JSONL debug, length+CRC binary), on-disk
bytes/event for both, segment count, and the offline-compaction rate and
drop ratio.  Values must be finite and non-negative, the throughput
series must share one rep count, the binary framing's per-event overhead
over JSONL must stay within its 8-byte header, and the drop ratio must
sit in (0.5, 1] — the bench's event mix is mostly superseded by
construction, so a lower ratio means compaction stopped recognizing
supersession.

Usage:
  scripts/journal_schema.py BENCH_journal.json

Exit status: 0 = schema OK, 1 = violation (or unreadable input).
"""

import json
import math
import sys

THROUGHPUT = ("jsonl_write_events_per_sec", "binary_write_events_per_sec",
              "jsonl_read_events_per_sec", "binary_read_events_per_sec",
              "compact_events_per_sec")
SINGLETONS = ("jsonl_bytes_per_event", "binary_bytes_per_event",
              "segments_per_run", "compact_drop_ratio")


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 1
    path = sys.argv[1]
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"journal_schema: cannot read {path}: {e}", file=sys.stderr)
        return 1

    errors = []
    if doc.get("bench") != "journal_throughput":
        errors.append(
            f'bench is {doc.get("bench")!r}, want "journal_throughput"')

    rows = {}
    for row in doc.get("results", []):
        name = row.get("name")
        if not isinstance(name, str):
            errors.append(f"result without a string name: {row!r}")
            continue
        for field in ("reps", "median", "p95"):
            v = row.get(field)
            if not isinstance(v, (int, float)) or not math.isfinite(v):
                errors.append(f"{name}.{field} is not a finite number: {v!r}")
            elif v < 0:
                errors.append(f"{name}.{field} is negative: {v!r}")
        rows[name] = row

    reps = None
    for series in THROUGHPUT:
        if series not in rows:
            errors.append(f"missing series {series}")
            continue
        if rows[series].get("median", 0) <= 0:
            errors.append(f"{series}.median is not positive")
        r = rows[series].get("reps")
        if reps is None:
            reps = r
        elif r != reps:
            errors.append(f"{series}.reps = {r}, other series have {reps}")
    for series in SINGLETONS:
        if series not in rows:
            errors.append(f"missing series {series}")

    if not errors:
        jsonl = rows["jsonl_bytes_per_event"]["median"]
        binary = rows["binary_bytes_per_event"]["median"]
        if binary > jsonl + 8.0:
            errors.append(f"binary framing overhead {binary - jsonl:.2f} "
                          "bytes/event exceeds its 8-byte header")
        drop = rows["compact_drop_ratio"]["median"]
        if not 0.5 < drop <= 1.0:
            errors.append(f"compact_drop_ratio {drop!r} outside (0.5, 1]: "
                          "compaction stopped recognizing supersession")
        if rows["segments_per_run"]["median"] < 2:
            errors.append("segments_per_run < 2: rotation never triggered, "
                          "the bench no longer exercises the segment store")

    for e in errors:
        print(f"SCHEMA  {e}")
    if errors:
        print(f"journal_schema: FAIL ({len(errors)} violation(s))")
        return 1
    print(f"journal_schema: OK ({len(rows)} series, {reps} reps, "
          f"{int(rows['segments_per_run']['median'])} segments/run, "
          f"drop ratio {rows['compact_drop_ratio']['median']:.3f})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
