file(REMOVE_RECURSE
  "CMakeFiles/vapro_run.dir/vapro_run.cpp.o"
  "CMakeFiles/vapro_run.dir/vapro_run.cpp.o.d"
  "vapro_run"
  "vapro_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vapro_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
