# Empty dependencies file for vapro_run.
# This may be replaced when dependencies are built.
