# Empty compiler generated dependencies file for vapro_replay.
# This may be replaced when dependencies are built.
