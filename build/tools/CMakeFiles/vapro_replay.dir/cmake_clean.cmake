file(REMOVE_RECURSE
  "CMakeFiles/vapro_replay.dir/vapro_replay.cpp.o"
  "CMakeFiles/vapro_replay.dir/vapro_replay.cpp.o.d"
  "vapro_replay"
  "vapro_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vapro_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
