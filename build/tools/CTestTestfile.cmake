# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_vapro_run_list "/root/repo/build/tools/vapro_run" "--list")
set_tests_properties(tool_vapro_run_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_vapro_run_smoke "/root/repo/build/tools/vapro_run" "--app=CG" "--ranks=8" "--window=0.2" "--noise=cpu:0:0.1:0.5:1.0" "--json")
set_tests_properties(tool_vapro_run_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_vapro_replay_roundtrip "sh" "-c" "/root/repo/build/tools/vapro_run --app=Nekbone --ranks=8               --trace=/root/repo/build/smoke.vprt > /dev/null &&           /root/repo/build/tools/vapro_replay /root/repo/build/smoke.vprt               --window=0.3 > /dev/null")
set_tests_properties(tool_vapro_replay_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
