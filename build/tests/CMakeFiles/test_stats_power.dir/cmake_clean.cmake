file(REMOVE_RECURSE
  "CMakeFiles/test_stats_power.dir/test_stats_power.cpp.o"
  "CMakeFiles/test_stats_power.dir/test_stats_power.cpp.o.d"
  "test_stats_power"
  "test_stats_power.pdb"
  "test_stats_power[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
