# Empty dependencies file for test_stats_power.
# This may be replaced when dependencies are built.
