# Empty dependencies file for test_app_structure.
# This may be replaced when dependencies are built.
