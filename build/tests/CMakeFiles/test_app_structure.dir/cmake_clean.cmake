file(REMOVE_RECURSE
  "CMakeFiles/test_app_structure.dir/test_app_structure.cpp.o"
  "CMakeFiles/test_app_structure.dir/test_app_structure.cpp.o.d"
  "test_app_structure"
  "test_app_structure.pdb"
  "test_app_structure[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_app_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
