file(REMOVE_RECURSE
  "CMakeFiles/test_server_group.dir/test_server_group.cpp.o"
  "CMakeFiles/test_server_group.dir/test_server_group.cpp.o.d"
  "test_server_group"
  "test_server_group.pdb"
  "test_server_group[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_server_group.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
