
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_server.cpp" "tests/CMakeFiles/test_server.dir/test_server.cpp.o" "gcc" "tests/CMakeFiles/test_server.dir/test_server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/vapro_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/vapro_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vapro_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/pmu/CMakeFiles/vapro_pmu.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/vapro_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vapro_util.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/vapro_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/vapro_baselines.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
