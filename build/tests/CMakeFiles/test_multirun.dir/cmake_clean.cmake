file(REMOVE_RECURSE
  "CMakeFiles/test_multirun.dir/test_multirun.cpp.o"
  "CMakeFiles/test_multirun.dir/test_multirun.cpp.o.d"
  "test_multirun"
  "test_multirun.pdb"
  "test_multirun[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multirun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
