# Empty dependencies file for test_multirun.
# This may be replaced when dependencies are built.
