# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_pmu[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_diagnosis[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_server_group[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_report[1]_include.cmake")
include("/root/repo/build/tests/test_client[1]_include.cmake")
include("/root/repo/build/tests/test_cli[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_session[1]_include.cmake")
include("/root/repo/build/tests/test_app_structure[1]_include.cmake")
include("/root/repo/build/tests/test_overlap[1]_include.cmake")
include("/root/repo/build/tests/test_runtime_edge[1]_include.cmake")
include("/root/repo/build/tests/test_stats_power[1]_include.cmake")
include("/root/repo/build/tests/test_server[1]_include.cmake")
include("/root/repo/build/tests/test_multirun[1]_include.cmake")
