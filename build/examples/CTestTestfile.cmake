# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_diagnose_memory "/root/repo/build/examples/diagnose_memory")
set_tests_properties(example_diagnose_memory PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_io_variance "/root/repo/build/examples/io_variance")
set_tests_properties(example_io_variance PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_compare_tools "/root/repo/build/examples/compare_tools")
set_tests_properties(example_compare_tools PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_offline_analysis "/root/repo/build/examples/offline_analysis")
set_tests_properties(example_offline_analysis PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
