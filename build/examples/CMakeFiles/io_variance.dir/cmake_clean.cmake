file(REMOVE_RECURSE
  "CMakeFiles/io_variance.dir/io_variance.cpp.o"
  "CMakeFiles/io_variance.dir/io_variance.cpp.o.d"
  "io_variance"
  "io_variance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_variance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
