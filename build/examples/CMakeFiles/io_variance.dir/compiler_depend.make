# Empty compiler generated dependencies file for io_variance.
# This may be replaced when dependencies are built.
