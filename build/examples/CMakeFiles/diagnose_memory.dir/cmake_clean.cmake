file(REMOVE_RECURSE
  "CMakeFiles/diagnose_memory.dir/diagnose_memory.cpp.o"
  "CMakeFiles/diagnose_memory.dir/diagnose_memory.cpp.o.d"
  "diagnose_memory"
  "diagnose_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diagnose_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
