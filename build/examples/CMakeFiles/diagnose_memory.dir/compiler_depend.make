# Empty compiler generated dependencies file for diagnose_memory.
# This may be replaced when dependencies are built.
