file(REMOVE_RECURSE
  "CMakeFiles/trace_volume.dir/trace_volume.cpp.o"
  "CMakeFiles/trace_volume.dir/trace_volume.cpp.o.d"
  "trace_volume"
  "trace_volume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_volume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
