# Empty compiler generated dependencies file for trace_volume.
# This may be replaced when dependencies are built.
