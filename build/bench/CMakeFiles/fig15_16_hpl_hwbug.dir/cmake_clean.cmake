file(REMOVE_RECURSE
  "CMakeFiles/fig15_16_hpl_hwbug.dir/fig15_16_hpl_hwbug.cpp.o"
  "CMakeFiles/fig15_16_hpl_hwbug.dir/fig15_16_hpl_hwbug.cpp.o.d"
  "fig15_16_hpl_hwbug"
  "fig15_16_hpl_hwbug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_16_hpl_hwbug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
