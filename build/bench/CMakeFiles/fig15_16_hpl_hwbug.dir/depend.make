# Empty dependencies file for fig15_16_hpl_hwbug.
# This may be replaced when dependencies are built.
