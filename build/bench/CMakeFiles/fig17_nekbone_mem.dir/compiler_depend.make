# Empty compiler generated dependencies file for fig17_nekbone_mem.
# This may be replaced when dependencies are built.
