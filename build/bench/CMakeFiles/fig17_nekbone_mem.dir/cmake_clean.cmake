file(REMOVE_RECURSE
  "CMakeFiles/fig17_nekbone_mem.dir/fig17_nekbone_mem.cpp.o"
  "CMakeFiles/fig17_nekbone_mem.dir/fig17_nekbone_mem.cpp.o.d"
  "fig17_nekbone_mem"
  "fig17_nekbone_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_nekbone_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
