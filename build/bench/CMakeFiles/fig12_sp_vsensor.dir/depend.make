# Empty dependencies file for fig12_sp_vsensor.
# This may be replaced when dependencies are built.
