file(REMOVE_RECURSE
  "CMakeFiles/fig12_sp_vsensor.dir/fig12_sp_vsensor.cpp.o"
  "CMakeFiles/fig12_sp_vsensor.dir/fig12_sp_vsensor.cpp.o.d"
  "fig12_sp_vsensor"
  "fig12_sp_vsensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_sp_vsensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
