# Empty dependencies file for fig18_19_raxml_io.
# This may be replaced when dependencies are built.
