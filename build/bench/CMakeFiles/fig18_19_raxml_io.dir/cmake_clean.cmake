file(REMOVE_RECURSE
  "CMakeFiles/fig18_19_raxml_io.dir/fig18_19_raxml_io.cpp.o"
  "CMakeFiles/fig18_19_raxml_io.dir/fig18_19_raxml_io.cpp.o.d"
  "fig18_19_raxml_io"
  "fig18_19_raxml_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_19_raxml_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
