file(REMOVE_RECURSE
  "CMakeFiles/fig09_pagerank_heatmap.dir/fig09_pagerank_heatmap.cpp.o"
  "CMakeFiles/fig09_pagerank_heatmap.dir/fig09_pagerank_heatmap.cpp.o.d"
  "fig09_pagerank_heatmap"
  "fig09_pagerank_heatmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_pagerank_heatmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
