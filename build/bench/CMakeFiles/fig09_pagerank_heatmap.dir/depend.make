# Empty dependencies file for fig09_pagerank_heatmap.
# This may be replaced when dependencies are built.
