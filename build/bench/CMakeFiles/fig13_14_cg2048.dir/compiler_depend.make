# Empty compiler generated dependencies file for fig13_14_cg2048.
# This may be replaced when dependencies are built.
