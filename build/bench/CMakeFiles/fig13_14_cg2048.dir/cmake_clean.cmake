file(REMOVE_RECURSE
  "CMakeFiles/fig13_14_cg2048.dir/fig13_14_cg2048.cpp.o"
  "CMakeFiles/fig13_14_cg2048.dir/fig13_14_cg2048.cpp.o.d"
  "fig13_14_cg2048"
  "fig13_14_cg2048.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_14_cg2048.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
