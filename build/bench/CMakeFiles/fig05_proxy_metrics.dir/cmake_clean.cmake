file(REMOVE_RECURSE
  "CMakeFiles/fig05_proxy_metrics.dir/fig05_proxy_metrics.cpp.o"
  "CMakeFiles/fig05_proxy_metrics.dir/fig05_proxy_metrics.cpp.o.d"
  "fig05_proxy_metrics"
  "fig05_proxy_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_proxy_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
