# Empty compiler generated dependencies file for fig05_proxy_metrics.
# This may be replaced when dependencies are built.
