file(REMOVE_RECURSE
  "CMakeFiles/fig01_repeat_variability.dir/fig01_repeat_variability.cpp.o"
  "CMakeFiles/fig01_repeat_variability.dir/fig01_repeat_variability.cpp.o.d"
  "fig01_repeat_variability"
  "fig01_repeat_variability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_repeat_variability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
