# Empty compiler generated dependencies file for fig01_repeat_variability.
# This may be replaced when dependencies are built.
