# Empty compiler generated dependencies file for table2_vmeasure.
# This may be replaced when dependencies are built.
