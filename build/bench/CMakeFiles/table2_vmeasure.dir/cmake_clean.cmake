file(REMOVE_RECURSE
  "CMakeFiles/table2_vmeasure.dir/table2_vmeasure.cpp.o"
  "CMakeFiles/table2_vmeasure.dir/table2_vmeasure.cpp.o.d"
  "table2_vmeasure"
  "table2_vmeasure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_vmeasure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
