file(REMOVE_RECURSE
  "libvapro_pmu.a"
)
