file(REMOVE_RECURSE
  "CMakeFiles/vapro_pmu.dir/core_model.cpp.o"
  "CMakeFiles/vapro_pmu.dir/core_model.cpp.o.d"
  "CMakeFiles/vapro_pmu.dir/counter_set.cpp.o"
  "CMakeFiles/vapro_pmu.dir/counter_set.cpp.o.d"
  "CMakeFiles/vapro_pmu.dir/counters.cpp.o"
  "CMakeFiles/vapro_pmu.dir/counters.cpp.o.d"
  "CMakeFiles/vapro_pmu.dir/workload.cpp.o"
  "CMakeFiles/vapro_pmu.dir/workload.cpp.o.d"
  "libvapro_pmu.a"
  "libvapro_pmu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vapro_pmu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
