# Empty dependencies file for vapro_pmu.
# This may be replaced when dependencies are built.
