file(REMOVE_RECURSE
  "CMakeFiles/vapro_trace.dir/offline.cpp.o"
  "CMakeFiles/vapro_trace.dir/offline.cpp.o.d"
  "CMakeFiles/vapro_trace.dir/trace.cpp.o"
  "CMakeFiles/vapro_trace.dir/trace.cpp.o.d"
  "libvapro_trace.a"
  "libvapro_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vapro_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
