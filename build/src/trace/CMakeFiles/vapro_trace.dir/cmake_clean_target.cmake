file(REMOVE_RECURSE
  "libvapro_trace.a"
)
