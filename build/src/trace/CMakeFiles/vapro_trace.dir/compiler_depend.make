# Empty compiler generated dependencies file for vapro_trace.
# This may be replaced when dependencies are built.
