
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/apps.cpp" "src/apps/CMakeFiles/vapro_apps.dir/apps.cpp.o" "gcc" "src/apps/CMakeFiles/vapro_apps.dir/apps.cpp.o.d"
  "/root/repo/src/apps/npb.cpp" "src/apps/CMakeFiles/vapro_apps.dir/npb.cpp.o" "gcc" "src/apps/CMakeFiles/vapro_apps.dir/npb.cpp.o.d"
  "/root/repo/src/apps/solvers.cpp" "src/apps/CMakeFiles/vapro_apps.dir/solvers.cpp.o" "gcc" "src/apps/CMakeFiles/vapro_apps.dir/solvers.cpp.o.d"
  "/root/repo/src/apps/threaded.cpp" "src/apps/CMakeFiles/vapro_apps.dir/threaded.cpp.o" "gcc" "src/apps/CMakeFiles/vapro_apps.dir/threaded.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/vapro_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/pmu/CMakeFiles/vapro_pmu.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vapro_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
