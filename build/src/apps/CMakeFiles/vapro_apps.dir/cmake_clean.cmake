file(REMOVE_RECURSE
  "CMakeFiles/vapro_apps.dir/apps.cpp.o"
  "CMakeFiles/vapro_apps.dir/apps.cpp.o.d"
  "CMakeFiles/vapro_apps.dir/npb.cpp.o"
  "CMakeFiles/vapro_apps.dir/npb.cpp.o.d"
  "CMakeFiles/vapro_apps.dir/solvers.cpp.o"
  "CMakeFiles/vapro_apps.dir/solvers.cpp.o.d"
  "CMakeFiles/vapro_apps.dir/threaded.cpp.o"
  "CMakeFiles/vapro_apps.dir/threaded.cpp.o.d"
  "libvapro_apps.a"
  "libvapro_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vapro_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
