file(REMOVE_RECURSE
  "libvapro_apps.a"
)
