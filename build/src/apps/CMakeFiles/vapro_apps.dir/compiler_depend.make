# Empty compiler generated dependencies file for vapro_apps.
# This may be replaced when dependencies are built.
