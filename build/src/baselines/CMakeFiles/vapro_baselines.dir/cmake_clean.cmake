file(REMOVE_RECURSE
  "CMakeFiles/vapro_baselines.dir/mpip.cpp.o"
  "CMakeFiles/vapro_baselines.dir/mpip.cpp.o.d"
  "CMakeFiles/vapro_baselines.dir/vsensor.cpp.o"
  "CMakeFiles/vapro_baselines.dir/vsensor.cpp.o.d"
  "libvapro_baselines.a"
  "libvapro_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vapro_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
