# Empty dependencies file for vapro_baselines.
# This may be replaced when dependencies are built.
