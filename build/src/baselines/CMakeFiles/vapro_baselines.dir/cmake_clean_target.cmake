file(REMOVE_RECURSE
  "libvapro_baselines.a"
)
