file(REMOVE_RECURSE
  "CMakeFiles/vapro_stats.dir/collinearity.cpp.o"
  "CMakeFiles/vapro_stats.dir/collinearity.cpp.o.d"
  "CMakeFiles/vapro_stats.dir/descriptive.cpp.o"
  "CMakeFiles/vapro_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/vapro_stats.dir/dist.cpp.o"
  "CMakeFiles/vapro_stats.dir/dist.cpp.o.d"
  "CMakeFiles/vapro_stats.dir/matrix.cpp.o"
  "CMakeFiles/vapro_stats.dir/matrix.cpp.o.d"
  "CMakeFiles/vapro_stats.dir/ols.cpp.o"
  "CMakeFiles/vapro_stats.dir/ols.cpp.o.d"
  "CMakeFiles/vapro_stats.dir/special.cpp.o"
  "CMakeFiles/vapro_stats.dir/special.cpp.o.d"
  "CMakeFiles/vapro_stats.dir/vmeasure.cpp.o"
  "CMakeFiles/vapro_stats.dir/vmeasure.cpp.o.d"
  "libvapro_stats.a"
  "libvapro_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vapro_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
