
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/collinearity.cpp" "src/stats/CMakeFiles/vapro_stats.dir/collinearity.cpp.o" "gcc" "src/stats/CMakeFiles/vapro_stats.dir/collinearity.cpp.o.d"
  "/root/repo/src/stats/descriptive.cpp" "src/stats/CMakeFiles/vapro_stats.dir/descriptive.cpp.o" "gcc" "src/stats/CMakeFiles/vapro_stats.dir/descriptive.cpp.o.d"
  "/root/repo/src/stats/dist.cpp" "src/stats/CMakeFiles/vapro_stats.dir/dist.cpp.o" "gcc" "src/stats/CMakeFiles/vapro_stats.dir/dist.cpp.o.d"
  "/root/repo/src/stats/matrix.cpp" "src/stats/CMakeFiles/vapro_stats.dir/matrix.cpp.o" "gcc" "src/stats/CMakeFiles/vapro_stats.dir/matrix.cpp.o.d"
  "/root/repo/src/stats/ols.cpp" "src/stats/CMakeFiles/vapro_stats.dir/ols.cpp.o" "gcc" "src/stats/CMakeFiles/vapro_stats.dir/ols.cpp.o.d"
  "/root/repo/src/stats/special.cpp" "src/stats/CMakeFiles/vapro_stats.dir/special.cpp.o" "gcc" "src/stats/CMakeFiles/vapro_stats.dir/special.cpp.o.d"
  "/root/repo/src/stats/vmeasure.cpp" "src/stats/CMakeFiles/vapro_stats.dir/vmeasure.cpp.o" "gcc" "src/stats/CMakeFiles/vapro_stats.dir/vmeasure.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/vapro_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
