# Empty dependencies file for vapro_stats.
# This may be replaced when dependencies are built.
