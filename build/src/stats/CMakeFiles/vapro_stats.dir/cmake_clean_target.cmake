file(REMOVE_RECURSE
  "libvapro_stats.a"
)
