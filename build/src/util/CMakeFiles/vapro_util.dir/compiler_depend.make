# Empty compiler generated dependencies file for vapro_util.
# This may be replaced when dependencies are built.
