file(REMOVE_RECURSE
  "libvapro_util.a"
)
