file(REMOVE_RECURSE
  "CMakeFiles/vapro_util.dir/check.cpp.o"
  "CMakeFiles/vapro_util.dir/check.cpp.o.d"
  "CMakeFiles/vapro_util.dir/cli.cpp.o"
  "CMakeFiles/vapro_util.dir/cli.cpp.o.d"
  "CMakeFiles/vapro_util.dir/csv.cpp.o"
  "CMakeFiles/vapro_util.dir/csv.cpp.o.d"
  "CMakeFiles/vapro_util.dir/log.cpp.o"
  "CMakeFiles/vapro_util.dir/log.cpp.o.d"
  "CMakeFiles/vapro_util.dir/rng.cpp.o"
  "CMakeFiles/vapro_util.dir/rng.cpp.o.d"
  "CMakeFiles/vapro_util.dir/table.cpp.o"
  "CMakeFiles/vapro_util.dir/table.cpp.o.d"
  "libvapro_util.a"
  "libvapro_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vapro_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
