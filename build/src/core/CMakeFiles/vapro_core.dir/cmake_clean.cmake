file(REMOVE_RECURSE
  "CMakeFiles/vapro_core.dir/breakdown.cpp.o"
  "CMakeFiles/vapro_core.dir/breakdown.cpp.o.d"
  "CMakeFiles/vapro_core.dir/client.cpp.o"
  "CMakeFiles/vapro_core.dir/client.cpp.o.d"
  "CMakeFiles/vapro_core.dir/clustering.cpp.o"
  "CMakeFiles/vapro_core.dir/clustering.cpp.o.d"
  "CMakeFiles/vapro_core.dir/detection.cpp.o"
  "CMakeFiles/vapro_core.dir/detection.cpp.o.d"
  "CMakeFiles/vapro_core.dir/diagnosis.cpp.o"
  "CMakeFiles/vapro_core.dir/diagnosis.cpp.o.d"
  "CMakeFiles/vapro_core.dir/fragment.cpp.o"
  "CMakeFiles/vapro_core.dir/fragment.cpp.o.d"
  "CMakeFiles/vapro_core.dir/heatmap.cpp.o"
  "CMakeFiles/vapro_core.dir/heatmap.cpp.o.d"
  "CMakeFiles/vapro_core.dir/multirun.cpp.o"
  "CMakeFiles/vapro_core.dir/multirun.cpp.o.d"
  "CMakeFiles/vapro_core.dir/report.cpp.o"
  "CMakeFiles/vapro_core.dir/report.cpp.o.d"
  "CMakeFiles/vapro_core.dir/report_json.cpp.o"
  "CMakeFiles/vapro_core.dir/report_json.cpp.o.d"
  "CMakeFiles/vapro_core.dir/server.cpp.o"
  "CMakeFiles/vapro_core.dir/server.cpp.o.d"
  "CMakeFiles/vapro_core.dir/server_group.cpp.o"
  "CMakeFiles/vapro_core.dir/server_group.cpp.o.d"
  "CMakeFiles/vapro_core.dir/session.cpp.o"
  "CMakeFiles/vapro_core.dir/session.cpp.o.d"
  "CMakeFiles/vapro_core.dir/stg.cpp.o"
  "CMakeFiles/vapro_core.dir/stg.cpp.o.d"
  "libvapro_core.a"
  "libvapro_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vapro_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
