# Empty compiler generated dependencies file for vapro_core.
# This may be replaced when dependencies are built.
