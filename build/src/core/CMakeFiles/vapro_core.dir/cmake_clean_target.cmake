file(REMOVE_RECURSE
  "libvapro_core.a"
)
