
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/breakdown.cpp" "src/core/CMakeFiles/vapro_core.dir/breakdown.cpp.o" "gcc" "src/core/CMakeFiles/vapro_core.dir/breakdown.cpp.o.d"
  "/root/repo/src/core/client.cpp" "src/core/CMakeFiles/vapro_core.dir/client.cpp.o" "gcc" "src/core/CMakeFiles/vapro_core.dir/client.cpp.o.d"
  "/root/repo/src/core/clustering.cpp" "src/core/CMakeFiles/vapro_core.dir/clustering.cpp.o" "gcc" "src/core/CMakeFiles/vapro_core.dir/clustering.cpp.o.d"
  "/root/repo/src/core/detection.cpp" "src/core/CMakeFiles/vapro_core.dir/detection.cpp.o" "gcc" "src/core/CMakeFiles/vapro_core.dir/detection.cpp.o.d"
  "/root/repo/src/core/diagnosis.cpp" "src/core/CMakeFiles/vapro_core.dir/diagnosis.cpp.o" "gcc" "src/core/CMakeFiles/vapro_core.dir/diagnosis.cpp.o.d"
  "/root/repo/src/core/fragment.cpp" "src/core/CMakeFiles/vapro_core.dir/fragment.cpp.o" "gcc" "src/core/CMakeFiles/vapro_core.dir/fragment.cpp.o.d"
  "/root/repo/src/core/heatmap.cpp" "src/core/CMakeFiles/vapro_core.dir/heatmap.cpp.o" "gcc" "src/core/CMakeFiles/vapro_core.dir/heatmap.cpp.o.d"
  "/root/repo/src/core/multirun.cpp" "src/core/CMakeFiles/vapro_core.dir/multirun.cpp.o" "gcc" "src/core/CMakeFiles/vapro_core.dir/multirun.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/vapro_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/vapro_core.dir/report.cpp.o.d"
  "/root/repo/src/core/report_json.cpp" "src/core/CMakeFiles/vapro_core.dir/report_json.cpp.o" "gcc" "src/core/CMakeFiles/vapro_core.dir/report_json.cpp.o.d"
  "/root/repo/src/core/server.cpp" "src/core/CMakeFiles/vapro_core.dir/server.cpp.o" "gcc" "src/core/CMakeFiles/vapro_core.dir/server.cpp.o.d"
  "/root/repo/src/core/server_group.cpp" "src/core/CMakeFiles/vapro_core.dir/server_group.cpp.o" "gcc" "src/core/CMakeFiles/vapro_core.dir/server_group.cpp.o.d"
  "/root/repo/src/core/session.cpp" "src/core/CMakeFiles/vapro_core.dir/session.cpp.o" "gcc" "src/core/CMakeFiles/vapro_core.dir/session.cpp.o.d"
  "/root/repo/src/core/stg.cpp" "src/core/CMakeFiles/vapro_core.dir/stg.cpp.o" "gcc" "src/core/CMakeFiles/vapro_core.dir/stg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/vapro_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/pmu/CMakeFiles/vapro_pmu.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/vapro_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vapro_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
