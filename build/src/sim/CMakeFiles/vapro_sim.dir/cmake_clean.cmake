file(REMOVE_RECURSE
  "CMakeFiles/vapro_sim.dir/engine.cpp.o"
  "CMakeFiles/vapro_sim.dir/engine.cpp.o.d"
  "CMakeFiles/vapro_sim.dir/filesystem.cpp.o"
  "CMakeFiles/vapro_sim.dir/filesystem.cpp.o.d"
  "CMakeFiles/vapro_sim.dir/intercept.cpp.o"
  "CMakeFiles/vapro_sim.dir/intercept.cpp.o.d"
  "CMakeFiles/vapro_sim.dir/network.cpp.o"
  "CMakeFiles/vapro_sim.dir/network.cpp.o.d"
  "CMakeFiles/vapro_sim.dir/noise.cpp.o"
  "CMakeFiles/vapro_sim.dir/noise.cpp.o.d"
  "CMakeFiles/vapro_sim.dir/runtime.cpp.o"
  "CMakeFiles/vapro_sim.dir/runtime.cpp.o.d"
  "libvapro_sim.a"
  "libvapro_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vapro_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
