# Empty compiler generated dependencies file for vapro_sim.
# This may be replaced when dependencies are built.
