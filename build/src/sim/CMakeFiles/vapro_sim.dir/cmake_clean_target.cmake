file(REMOVE_RECURSE
  "libvapro_sim.a"
)
