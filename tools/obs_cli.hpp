// Shared observability flag wiring for the vapro_run / vapro_replay CLIs:
//
//   --metrics-out=FILE   self-telemetry JSON (parent dirs created)
//   --trace-out=FILE     Chrome trace-event JSON of the pipeline
//   --journal-out=FILE   schema-versioned JSONL event journal
//   --journal-dir=DIR    rotating journal segments instead of one file
//                        (binary framing; see src/obs/journal_segment.hpp)
//   --journal-rotate-bytes=N    segment size cap (default 1 MiB)
//   --journal-rotate-seconds=S  segment age cap in virtual time (default off)
//   --journal-jsonl      write JSONL debug segments instead of binary
//   --listen=PORT        embedded HTTP endpoint (0 = ephemeral port):
//                        / (endpoint index) /metrics /healthz /v1/heatmap
//                        /v1/variance /v1/latency /v1/critical_path
//   --listen-linger=S    keep serving S seconds after the run finishes
//   --alert-rule=SPEC    alert rule (repeatable; see src/obs/alerts.hpp)
//   --alert-file=FILE    also append fired alerts to FILE (webhook stub)
//   --obs-table          print the end-of-run metrics table regardless
//
// Declare the ObsCli BEFORE the ObsContext in main(): the journal borrows
// the alert engine as a sink, so the context (which flushes the journal on
// destruction) must die first.
#pragma once

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/alerts.hpp"
#include "src/obs/context.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

namespace vapro::tools {

// Shared analysis-pipeline flags for vapro_run / vapro_replay / vapro_stress:
//
//   --pipeline-depth=N     windows admitted past the hand-off before the
//                          drain blocks (1 = synchronous, default)
//   --analysis-threads=N   clustering worker threads per server
//   --cluster-cache        carry cluster seeds across windows
//
// All combinations produce byte-identical reports and journal tables; see
// docs/ARCHITECTURE.md "Threading & pipeline model".
struct PipelineCli {
  int pipeline_depth = 1;
  int analysis_threads = 1;
  bool cluster_seed_cache = false;

  // False (with a message on stderr) when a value is out of range.
  bool parse(const util::CliArgs& args) {
    pipeline_depth = args.get_int("pipeline-depth", 1);
    analysis_threads = args.get_int("analysis-threads", 1);
    cluster_seed_cache = args.get_bool("cluster-cache");
    if (pipeline_depth < 1) {
      std::cerr << "--pipeline-depth must be >= 1\n";
      return false;
    }
    if (analysis_threads < 1) {
      std::cerr << "--analysis-threads must be >= 1\n";
      return false;
    }
    return true;
  }

  static const char* usage_lines() {
    return "  --pipeline-depth=N     overlap analysis with the next window\n"
           "                         drain; N windows may be in flight\n"
           "                         (default 1 = synchronous; results are\n"
           "                         byte-identical at any depth)\n"
           "  --analysis-threads=N   clustering worker threads (default 1)\n"
           "  --cluster-cache        carry cluster seeds across windows\n";
  }
};

struct ObsCli {
  std::string metrics_path;
  std::string trace_out_path;
  std::string journal_path;
  std::string journal_dir;
  std::uint64_t journal_rotate_bytes = 1u << 20;
  double journal_rotate_seconds = 0.0;
  bool journal_jsonl = false;
  std::string listen;
  double listen_linger = 0.0;
  std::string alert_file;
  std::vector<std::string> alert_specs;
  bool obs_table = false;

  obs::AlertEngine alert_engine;
  obs::StderrAlertSink stderr_sink;
  std::unique_ptr<obs::JournalAlertSink> journal_alert_sink;
  std::unique_ptr<obs::WebhookFileSink> webhook_sink;

  void parse(const util::CliArgs& args) {
    metrics_path = args.get("metrics-out", "");
    trace_out_path = args.get("trace-out", "");
    journal_path = args.get("journal-out", "");
    journal_dir = args.get("journal-dir", "");
    journal_rotate_bytes = static_cast<std::uint64_t>(
        args.get_double("journal-rotate-bytes", 1 << 20));
    journal_rotate_seconds = args.get_double("journal-rotate-seconds", 0.0);
    journal_jsonl = args.get_bool("journal-jsonl");
    listen = args.get("listen", "");
    listen_linger = args.get_double("listen-linger", 0.0);
    alert_file = args.get("alert-file", "");
    alert_specs = args.get_all("alert-rule");
    obs_table = args.get_bool("obs-table");
  }

  // Any flag that needs an ObsContext attached?
  bool want_obs() const {
    return !metrics_path.empty() || !trace_out_path.empty() ||
           !journal_path.empty() || !journal_dir.empty() || !listen.empty() ||
           !alert_file.empty() || !alert_specs.empty() || obs_table;
  }

  // Enables journal/alerts/exposition on `ctx` per the parsed flags.  Call
  // BEFORE constructing the session, so core components find the
  // exposition server and journal when they attach.  On failure returns
  // false with a printable message in `error`.
  bool activate(obs::ObsContext& ctx, std::string* error) {
    if (!trace_out_path.empty()) ctx.enable_trace();
    if (!journal_path.empty() || !journal_dir.empty() || !alert_specs.empty())
      ctx.enable_journal();
    if (!journal_path.empty() && !ctx.attach_journal_file(journal_path)) {
      *error = "cannot open --journal-out file " + journal_path;
      return false;
    }
    if (!journal_dir.empty()) {
      obs::SegmentOptions seg;
      seg.directory = journal_dir;
      seg.max_segment_bytes = journal_rotate_bytes;
      seg.max_segment_seconds = journal_rotate_seconds;
      seg.binary = !journal_jsonl;
      if (!ctx.attach_journal_segments(std::move(seg))) {
        *error = "cannot create --journal-dir segments in " + journal_dir;
        return false;
      }
    }
    if (!alert_specs.empty()) {
      for (const std::string& spec : alert_specs) {
        obs::AlertRule rule;
        if (!obs::parse_alert_rule(spec, &rule, error)) return false;
        alert_engine.add_rule(std::move(rule));
      }
      alert_engine.add_alert_sink(&stderr_sink);
      journal_alert_sink =
          std::make_unique<obs::JournalAlertSink>(ctx.journal());
      alert_engine.add_alert_sink(journal_alert_sink.get());
      if (!alert_file.empty()) {
        webhook_sink = std::make_unique<obs::WebhookFileSink>(alert_file);
        if (!webhook_sink->ok()) {
          *error = "cannot open --alert-file " + alert_file;
          return false;
        }
        alert_engine.add_alert_sink(webhook_sink.get());
      }
      ctx.journal()->add_sink(&alert_engine);
    }
    if (!listen.empty()) {
      std::string bind_error;
      if (!ctx.start_exposition(std::atoi(listen.c_str()), &bind_error)) {
        *error = "--listen: " + bind_error;
        return false;
      }
      // Printed (and flushed) before the run so scrapers can attach early.
      // "/" serves the live endpoint index, so only the discovery root is
      // spelled out here.
      std::cout << "listening on http://127.0.0.1:"
                << ctx.exposition()->port()
                << "  (/ lists endpoints: /metrics /healthz /v1/heatmap "
                   "/v1/variance /v1/latency /v1/critical_path)\n"
                << std::flush;
    }
    return true;
  }

  // End-of-run outputs: metrics table, JSON/trace writes, journal and
  // alert summary lines.  Returns false when any file write failed.
  bool finish(obs::ObsContext& ctx) {
    util::TextTable table({"metric", "kind", "value"});
    for (const auto& row : ctx.metrics().rows())
      table.add_row({row.name, row.kind, row.value});
    std::cout << "\n--- self-telemetry ---\n";
    table.print(std::cout);

    bool failed = false;
    if (!metrics_path.empty()) {
      if (ctx.write_metrics_json(metrics_path)) {
        std::cout << "metrics JSON -> " << metrics_path << "\n";
      } else {
        std::cerr << "failed to write " << metrics_path << "\n";
        failed = true;
      }
    }
    if (!trace_out_path.empty()) {
      if (ctx.write_trace_json(trace_out_path)) {
        std::cout << "pipeline trace (" << ctx.trace()->size()
                  << " events) -> " << trace_out_path
                  << "  (open in chrome://tracing or ui.perfetto.dev)\n";
      } else {
        std::cerr << "failed to write " << trace_out_path << "\n";
        failed = true;
      }
    }
    if (obs::Journal* journal = ctx.journal()) {
      journal->flush();
      std::cout << "journal: " << journal->events_emitted() << " events";
      if (!journal_path.empty()) std::cout << " -> " << journal_path;
      if (const obs::JournalSegmentSink* seg = ctx.journal_segments())
        std::cout << " -> " << journal_dir << " (" << seg->segments_opened()
                  << " segment(s))";
      std::cout << "\n";
    }
    if (alert_engine.rules() > 0)
      std::cout << "alerts fired: " << alert_engine.alerts_fired() << " ("
                << alert_engine.rules() << " rules)\n";
    return !failed;
  }

  // Keeps the exposition endpoint alive after the run (--listen-linger).
  // The wait goes through the context's clock, so tests driving a
  // util::VirtualClock skip the linger instantly.
  void linger(const obs::ObsContext& ctx) const {
    if (!ctx.exposition() || listen_linger <= 0.0) return;
    std::cout << "serving for " << listen_linger
              << "s more (--listen-linger)\n"
              << std::flush;
    ctx.clock()->sleep_for(listen_linger);
  }
};

}  // namespace vapro::tools
