// vapro_run — the command-line driver.
//
// Runs any registered application on the simulated cluster with optional
// noise injection, attaches Vapro, and prints the full report:
//
//   vapro_run --app=CG --ranks=64 --noise=cpu:1:0.4:1.4:1.0
//   vapro_run --app=Nekbone --ranks=128 --noise=dram:3:0:inf:1.5 --ansi
//   vapro_run --list
//
// Noise spec: kind:node:t_begin:t_end:magnitude with kind one of
//   cpu | mem | dram | l2bug | pf | io | net     (node -1 = all nodes).
#include <chrono>
#include <iostream>

#include "src/apps/apps.hpp"
#include "src/core/report.hpp"
#include "src/core/report_json.hpp"
#include "src/core/scoreboard.hpp"
#include "src/core/vapro.hpp"
#include "src/net/client.hpp"
#include "src/net/server.hpp"
#include "src/net/session.hpp"
#include "src/obs/context.hpp"
#include "src/sim/runtime.hpp"
#include "src/trace/trace.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"
#include "tools/obs_cli.hpp"

namespace {

using namespace vapro;

int usage() {
  std::cout <<
      "usage: vapro_run --app=NAME [options]\n"
      "  --list                 list available applications\n"
      "  --ranks=N              number of ranks/threads (default 64)\n"
      "  --cores-per-node=N     topology (default 24)\n"
      "  --seed=N               simulation seed (default 1)\n"
      "  --scale=X              workload scale factor (default 1.0)\n"
      "  --noise=K:NODE:T0:T1:MAG   inject noise (repeatable); K in\n"
      "                         cpu|mem|dram|l2bug|pf|io|net\n"
      "  --window=SECONDS       analysis window (default 0.25)\n"
      "  --bins=SECONDS         heat-map bin width (default 0.1)\n"
      "  --context-aware        use context-aware STG\n"
      "  --sampling=none|backoff|skip-short\n"
      "  --no-diagnosis         detection only\n"
      "  --net-loopback         route window batches through the framed\n"
      "                         ingest plane (wire protocol over a\n"
      "                         loopback socket) instead of the in-process\n"
      "                         server; reports must be identical\n"
      << tools::PipelineCli::usage_lines() <<
      "  --ansi                 colored heat maps\n"
      "  --csv=DIR              also dump heat-map CSVs into DIR\n"
      "  --trace=FILE           record the interception stream for\n"
      "                         offline re-analysis with vapro_replay\n"
      "  --metrics-out=FILE     write self-telemetry JSON (pipeline\n"
      "                         metrics, per-window stage timings,\n"
      "                         tool-vs-app overhead)\n"
      "  --trace-out=FILE       write a Chrome trace-event JSON of the\n"
      "                         analysis pipeline (chrome://tracing,\n"
      "                         Perfetto)\n"
      "  --obs-table            print the end-of-run metrics table even\n"
      "                         without --metrics-out\n"
      "  --journal-out=FILE     write the schema-versioned JSONL event\n"
      "                         journal (variance regions, rare paths,\n"
      "                         diagnosis verdicts, PMU reprograms)\n"
      "  --journal-dir=DIR      write rotating journal segments instead\n"
      "                         (compact binary framing; replayable with\n"
      "                         vapro_replay --from-journal DIR)\n"
      "  --journal-rotate-bytes=N    segment size cap (default 1 MiB)\n"
      "  --journal-rotate-seconds=S  segment age cap, virtual time\n"
      "  --journal-jsonl        JSONL debug segments instead of binary\n"
      "  --listen=PORT          serve /metrics (Prometheus), /healthz,\n"
      "                         /v1/heatmap, /v1/variance on\n"
      "                         127.0.0.1:PORT (0 = ephemeral)\n"
      "  --listen-linger=S      keep serving S seconds after the run\n"
      "  --alert-rule=SPEC      alert rule (repeatable), e.g.\n"
      "                         'variance_ratio > 1.2 for 3' or\n"
      "                         'factor=io contribution > 0.25'\n"
      "  --alert-file=FILE      append fired alerts to FILE (webhook stub)\n";
  return 2;
}

bool parse_noise(const std::string& spec, sim::NoiseSpec* out) {
  auto fields = util::split(spec, ':');
  if (fields.size() != 5) return false;
  const std::string& kind = fields[0];
  if (kind == "cpu") out->kind = sim::NoiseKind::kCpuContention;
  else if (kind == "mem") out->kind = sim::NoiseKind::kMemoryBandwidth;
  else if (kind == "dram") out->kind = sim::NoiseKind::kSlowDram;
  else if (kind == "l2bug") out->kind = sim::NoiseKind::kL2CacheBug;
  else if (kind == "pf") out->kind = sim::NoiseKind::kPageFaultStorm;
  else if (kind == "io") out->kind = sim::NoiseKind::kIoInterference;
  else if (kind == "net") out->kind = sim::NoiseKind::kNetworkCongestion;
  else return false;
  out->node = std::atoi(fields[1].c_str());
  out->t_begin = std::strtod(fields[2].c_str(), nullptr);
  out->t_end = fields[3] == "inf" ? 1e300 : std::strtod(fields[3].c_str(), nullptr);
  out->magnitude = std::strtod(fields[4].c_str(), nullptr);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliArgs args(argc, argv);

  const double scale = args.get_double("scale", 1.0);
  auto suite = apps::multiprocess_suite(scale);
  auto threaded = apps::multithreaded_suite(scale);
  suite.insert(suite.end(), threaded.begin(), threaded.end());
  // Standalone solvers join the registry under their own names.
  apps::HplParams hpl_p;
  suite.push_back({"HPL", apps::hpl(hpl_p), true, false});
  apps::NekboneParams nek_p;
  suite.push_back({"Nekbone", apps::nekbone(nek_p), true, false});
  apps::RaxmlParams rax_p;
  suite.push_back({"RAxML", apps::raxml(rax_p), true, false});
  apps::MasterWorkerParams mw_p;
  suite.push_back({"MasterWorker", apps::masterworker(mw_p), true, false});

  if (args.get_bool("list")) {
    std::cout << "available applications:\n";
    for (const auto& spec : suite)
      std::cout << "  " << spec.name
                << (spec.multithreaded ? "  (multithreaded)" : "") << '\n';
    return 0;
  }

  const std::string app_name = args.get("app", "");
  if (app_name.empty()) return usage();
  const apps::AppSpec* app = nullptr;
  for (const auto& spec : suite)
    if (spec.name == app_name) app = &spec;
  if (!app) {
    std::cerr << "unknown app '" << app_name << "' — try --list\n";
    return 2;
  }

  sim::SimConfig config;
  config.ranks = args.get_int("ranks", 64);
  config.cores_per_node = args.get_int("cores-per-node", 24);
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  for (const std::string& spec : args.get_all("noise")) {
    sim::NoiseSpec noise;
    if (!parse_noise(spec, &noise)) {
      std::cerr << "bad --noise spec '" << spec << "'\n";
      return 2;
    }
    config.noises.push_back(noise);
  }
  sim::Simulator simulator(config);

  core::VaproOptions options;
  options.window_seconds = args.get_double("window", 0.25);
  options.bin_seconds = args.get_double("bins", 0.1);
  options.run_diagnosis = !args.get_bool("no-diagnosis");
  if (args.get_bool("context-aware"))
    options.stg_mode = core::StgMode::kContextAware;
  const std::string sampling = args.get("sampling", "none");
  if (sampling == "backoff") options.sampling = core::SamplingPolicy::kBackoff;
  else if (sampling == "skip-short")
    options.sampling = core::SamplingPolicy::kSkipShort;
  tools::PipelineCli pipeline_cli;
  if (!pipeline_cli.parse(args)) return 2;
  options.pipeline_depth = pipeline_cli.pipeline_depth;
  options.analysis_threads = pipeline_cli.analysis_threads;
  options.cluster_seed_cache = pipeline_cli.cluster_seed_cache;

  // Self-telemetry: attach an ObsContext when any observability output is
  // requested; the default path keeps the library instrument-free.
  // ObsCli before ObsContext: the journal borrows the alert engine.
  tools::ObsCli obs_cli;
  obs_cli.parse(args);
  obs::ObsContext obs_ctx;
  const bool want_obs = obs_cli.want_obs();
  if (want_obs) {
    options.obs = &obs_ctx;
    std::string error;
    if (!obs_cli.activate(obs_ctx, &error)) {
      std::cerr << error << "\n";
      return 2;
    }
  }

  // --net-loopback: the same analysis, but every window batch travels the
  // production ingest path — encoded, framed, CRC-checked, admitted through
  // the tenant session — over a real loopback socket.  The report must be
  // byte-identical to the in-process run (tool_vapro_run_net_equivalence).
  std::unique_ptr<net::IngestPlane> plane;
  std::unique_ptr<net::IngestServer> ingest_server;
  std::unique_ptr<net::IngestClient> ingest_client;
  net::TenantSession* tenant = nullptr;
  if (args.get_bool("net-loopback")) {
    net::PlaneOptions popts;
    popts.obs = want_obs ? &obs_ctx : nullptr;
    plane = std::make_unique<net::IngestPlane>(popts);
    net::TenantOptions topts;
    topts.name = "default";
    topts.ranks = config.ranks;
    topts.server = core::server_options_from(options, config.machine);
    tenant = plane->add_tenant(std::move(topts));
    ingest_server = std::make_unique<net::IngestServer>(plane.get());
    std::string error;
    if (!ingest_server->start(0, &error)) {
      std::cerr << "ingest server: " << error << "\n";
      return 1;
    }
    net::ClientOptions ncopts;
    ncopts.port = ingest_server->port();
    ncopts.tenant = "default";
    ncopts.ranks = static_cast<std::uint32_t>(config.ranks);
    ingest_client = std::make_unique<net::IngestClient>(ncopts);
    if (!ingest_client->connect(&error)) {
      std::cerr << "ingest client: " << error << "\n";
      return 1;
    }
    options.external_server = tenant->server();
    options.batch_transport = [&ingest_client](core::FragmentBatch&& batch,
                                               double drain_seconds) {
      std::string send_error;
      if (!ingest_client->send_batch(batch, drain_seconds, &send_error))
        std::cerr << "ingest send: " << send_error << "\n";
    };
    options.transport_sync = [tenant, &ingest_client] {
      std::string flush_error;
      ingest_client->flush(&flush_error);
      tenant->sync();
    };
  }

  core::VaproSession session(simulator, options);

  // Optional trace recording, teeing into the live session.
  std::unique_ptr<trace::TraceWriter> writer;
  const std::string trace_path = args.get("trace", "");
  if (!trace_path.empty()) {
    writer = std::make_unique<trace::TraceWriter>(
        const_cast<core::VaproClient*>(&session.client()));
    simulator.set_interceptor(writer.get());
  }

  const auto wall0 = std::chrono::steady_clock::now();
  auto result = simulator.run(app->program);
  const double run_wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();
  if (ingest_client) {
    // Deliver any held frame, drain the admission queue, and settle the
    // backend before the report reads it.
    std::string flush_error;
    if (!ingest_client->flush(&flush_error))
      std::cerr << "ingest flush: " << flush_error << "\n";
    tenant->sync();
  }
  if (writer) {
    writer->trace().save(trace_path);
    std::cout << "trace: " << writer->trace().size() << " events ("
              << writer->trace().byte_size() / 1024 << " KiB) → "
              << trace_path << "\n";
  }
  std::cout << app_name << ": " << config.ranks << " ranks, makespan "
            << result.makespan << " virtual seconds, " << result.events
            << " events\n\n";

  if (args.get_bool("json")) {
    double total = 0;
    for (double t : result.finish_times) total += t;
    std::cout << core::report_json(session, total) << '\n';
  } else {
    core::ReportOptions ropts;
    ropts.ansi_color = args.get_bool("ansi");
    std::cout << core::render_report(session, ropts);
  }

  const std::string csv_dir = args.get("csv", "");
  if (!csv_dir.empty()) {
    core::write_csv_bundle(session, csv_dir);
    std::cout << "\nheat-map CSVs written to " << csv_dir << "/\n";
  }

  if (want_obs) {
    obs_ctx.overhead().set_run_wall_seconds(run_wall_seconds);
    obs_ctx.overhead().set_app_virtual_seconds(result.makespan);
    // Injection ground truth (journal schema v2): what the noise schedule
    // actually perturbed, so the journal alone suffices to score this
    // run's conclusions (src/core/scoreboard.hpp).
    if (obs::Journal* journal = obs_ctx.journal())
      core::journal_ground_truth(
          *journal, simulator.ground_truth(result.makespan), result.makespan);
    // Final full-precision region snapshot so a journal replay reproduces
    // the end-of-run detection report exactly.
    session.server().journal_detection_snapshot();

    const bool obs_write_ok = obs_cli.finish(obs_ctx);
    const auto& oh = obs_ctx.overhead();
    std::cout << "tool time " << util::fmt(oh.tool_seconds() * 1e3, 1)
              << " ms over a " << util::fmt(oh.run_wall_seconds(), 2)
              << " s run (" << util::fmt(oh.tool_fraction_of_wall() * 100, 2)
              << "% of wall clock); app makespan "
              << util::fmt(oh.app_virtual_seconds(), 2) << " virtual s\n";
    obs_cli.linger(obs_ctx);
    if (!obs_write_ok) return 1;
  }
  return 0;
}
