// vapro_stress — seeded scenario fuzzer for the online pipeline.
//
// Generates randomized multi-process sessions (rank count, fragment mix,
// transport drop/duplicate/reorder, optional mid-run faults from a
// FaultPlan), drives them through AnalysisServer / ServerGroup with the
// event journal attached, and asserts pipeline invariants after every
// window and at end of round:
//
//   * journal sequence numbers are strictly monotonic (sparse is fine —
//     an injected ENOSPC drops a line, never reorders one);
//   * no lost regions: every live variance region survives into the final
//     journal snapshot;
//   * replay-vs-live equality: the region tables reconstructed from the
//     journal render byte-identically to the live server's;
//   * no alert double-fire: replaying the journal through a fresh
//     AlertEngine fires exactly as often as the live engine did.
//
// Everything — scenario shape, fragment workloads, transport chaos, fault
// schedule — is a pure function of --seed and --fault-plan, and the report
// never prints wall-clock values, so a failure reproduces byte-identically:
//
//   vapro_stress --seed 7 --rounds 5 --fault-plan plans/enospc.plan
//
// Exit code 0 = all invariants held, 1 = at least one violation (the
// report says which round and which invariant).
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/apps/apps.hpp"
#include "src/core/journal_replay.hpp"
#include "src/core/report.hpp"
#include "src/core/scoreboard.hpp"
#include "src/core/server.hpp"
#include "src/core/server_group.hpp"
#include "src/core/vapro.hpp"
#include "src/net/client.hpp"
#include "src/net/server.hpp"
#include "src/net/session.hpp"
#include "src/obs/alerts.hpp"
#include "src/obs/context.hpp"
#include "src/obs/latency.hpp"
#include "src/obs/quality.hpp"
#include "src/testing/fault.hpp"
#include "src/util/cli.hpp"
#include "src/util/clock.hpp"
#include "src/util/rng.hpp"
#include "src/util/table.hpp"
#include "tools/obs_cli.hpp"

namespace {

using namespace vapro;

int usage() {
  std::cout <<
      "usage: vapro_stress [options]\n"
      "  --seed=N           scenario seed (default 1); same seed, same\n"
      "                     fault plan => byte-identical report\n"
      "  --rounds=N         scenarios to run (default 5)\n"
      "  --fault-plan=FILE  arm deterministic fault injection from FILE\n"
      "                     (see docs/TESTING.md for the plan syntax)\n"
      "  --scratch=DIR      journal scratch directory (default\n"
      "                     /tmp/vapro_stress; never printed, so two runs\n"
      "                     with different scratch dirs still compare equal)\n"
      "  --verbose          print the per-round region tables\n"
      "  --equivalence      serial/parallel equivalence property mode: run\n"
      "                     every round at --pipeline-depth=1\n"
      "                     --analysis-threads=1 and then across the full\n"
      "                     depth {1,2} x threads {2,4,1} variant matrix\n"
      "                     (cluster-seed cache flipping per round), and\n"
      "                     byte-compare region tables, rare-path tables,\n"
      "                     journal-replay tables and the seq-normalized\n"
      "                     journal event stream against the serial base;\n"
      "                     two extra `soa` legs rebuild every window's\n"
      "                     fragment columns through the materialize/view\n"
      "                     shim and must stay byte-identical too\n"
      "  --net              net-transport equivalence variant: feed every\n"
      "                     scenario through the framed wire protocol over\n"
      "                     a loopback socket (IngestClient -> IngestServer\n"
      "                     -> TenantSession admission) and byte-compare\n"
      "                     region/rare/critical-path tables against an\n"
      "                     in-process reference fed the identical batches;\n"
      "                     with --fault-plan the tables may differ but\n"
      "                     every dropped batch must be accounted by a\n"
      "                     journaled shed/net_drop event and no fragment\n"
      "                     may be double-counted\n"
      "  --tenants=N        --net: concurrent tenant streams (default 1);\n"
      "                     each tenant runs its own scenario and must\n"
      "                     reproduce its own isolated reference report\n"
      "  --score            detection-quality scoreboard mode: run the\n"
      "                     app x noise matrix deterministically, score\n"
      "                     detections and diagnoses against the injected\n"
      "                     ground truth, print the per-cell table\n"
      "  --score-apps=A,B   matrix rows (default\n"
      "                     CG,MG,Nekbone,RAxML,MasterWorker)\n"
      "  --score-noises=K,... matrix columns; K in\n"
      "                     none|cpu|mem|dram|l2bug|pf|io|net (default\n"
      "                     none,cpu,dram,pf,io,net)\n"
      "  --ranks=N          score mode: ranks per run (default 16)\n"
      "  --json PATH        score mode: write BENCH_quality.json\n"
      "                     (byte-deterministic for a fixed --seed)\n"
      "  --journal-out/--listen/--alert-rule also apply in score mode:\n"
      "                     the journal gets quality/quality_cell events,\n"
      "                     /v1/quality serves the scoreboard live, and\n"
      "                     rules like 'quality_recall < 0.8' can fire\n"
      << tools::PipelineCli::usage_lines();
  return 2;
}

// Deterministic per-round scenario shape drawn from the round's own rng.
struct Scenario {
  int ranks = 0;
  int windows = 0;
  int sites = 0;          // distinct call sites (STG vertices)
  int reps = 0;           // site-loop repetitions per rank per window
  bool use_group = false; // ServerGroup vs single AnalysisServer
  int group_servers = 0;
  double drop_prob = 0.0;      // transport: fragment lost
  double dup_prob = 0.0;       // transport: fragment duplicated
  bool reorder = false;        // transport: window batch shuffled
  int slow_rank = -1;          // rank hit by the injected slowdown
  int slow_window_lo = 0;      // windows [lo, hi] run slow on that rank
  int slow_window_hi = 0;
  double slow_factor = 1.0;    // duration multiplier while slow
};

Scenario make_scenario(util::Rng& rng) {
  Scenario sc;
  sc.ranks = 6 + static_cast<int>(rng.uniform_u64(11));       // 6..16
  sc.windows = 3 + static_cast<int>(rng.uniform_u64(4));      // 3..6
  sc.sites = 3 + static_cast<int>(rng.uniform_u64(3));        // 3..5
  sc.reps = 2 + static_cast<int>(rng.uniform_u64(3));         // 2..4
  sc.use_group = rng.bernoulli(0.4);
  sc.group_servers = 2 + static_cast<int>(rng.uniform_u64(2)); // 2..3
  sc.drop_prob = rng.bernoulli(0.5) ? rng.uniform(0.0, 0.08) : 0.0;
  sc.dup_prob = rng.bernoulli(0.5) ? rng.uniform(0.0, 0.05) : 0.0;
  sc.reorder = rng.bernoulli(0.5);
  sc.slow_rank = static_cast<int>(rng.uniform_u64(
      static_cast<std::uint64_t>(sc.ranks)));
  sc.slow_window_lo = 1;
  sc.slow_window_hi = sc.windows - 1;
  sc.slow_factor = rng.uniform(1.6, 3.0);
  return sc;
}

// The op kind cycling across call sites: a mix of communication and IO so
// all three heat-map categories see fragments.
sim::OpKind site_op(int site) {
  switch (site % 4) {
    case 0: return sim::OpKind::kAllreduce;
    case 1: return sim::OpKind::kSend;
    case 2: return sim::OpKind::kFileWrite;
    default: return sim::OpKind::kBarrier;
  }
}

// One window of synthetic client data: every rank loops `reps` times over
// the site ring, cutting a computation fragment (fixed workload, noisy
// duration) before each invocation and a vertex fragment for the
// invocation itself.  Transport chaos (drop/dup/reorder) is applied to the
// assembled batch, as a lossy client->server link would.
core::FragmentBatch make_window_batch(const Scenario& sc, int window,
                                      double window_seconds,
                                      util::Rng& rng) {
  core::FragmentBatch batch;
  std::vector<core::StateKey> site_keys(
      static_cast<std::size_t>(sc.sites));
  for (int s = 0; s < sc.sites; ++s) {
    sim::InvocationInfo info;
    info.site = static_cast<sim::CallSiteId>(100 + s);
    info.kind = site_op(s);
    site_keys[static_cast<std::size_t>(s)] =
        core::make_state_key(core::StgMode::kContextFree, info);
    batch.new_states.push_back(info);
  }

  const double t0 = window * window_seconds;
  const bool slow_window =
      window >= sc.slow_window_lo && window <= sc.slow_window_hi;
  const int steps = sc.sites * sc.reps;
  const double step_seconds = window_seconds / (steps + 1);

  for (int rank = 0; rank < sc.ranks; ++rank) {
    core::StateKey prev = core::kStartState;
    double t = t0;
    for (int step = 0; step < steps; ++step) {
      const int s = step % sc.sites;
      const core::StateKey key = site_keys[static_cast<std::size_t>(s)];
      const bool slow = slow_window && rank == sc.slow_rank;

      // Computation: identical workload per edge, duration stretched on
      // the slow rank so the heat map grows a variance region.
      core::Fragment comp;
      comp.kind = core::FragmentKind::kComputation;
      comp.rank = rank;
      comp.from = prev;
      comp.to = key;
      comp.start_time = t;
      const double base = step_seconds * 0.7;
      comp.end_time = t + base * (slow ? sc.slow_factor : 1.0) *
                              rng.uniform(0.98, 1.02);
      comp.counters[pmu::Counter::kTotIns] = 1e6 * (1 + s);
      batch.fragments.push_back(comp);
      t = comp.end_time;

      // The invocation itself: fixed arguments per site, so per-vertex
      // clustering sees one fixed-workload class.
      core::Fragment inv;
      inv.op = site_op(s);
      inv.kind = sim::is_io_op(inv.op) ? core::FragmentKind::kIo
                                       : core::FragmentKind::kCommunication;
      inv.rank = rank;
      inv.from = key;
      inv.to = key;
      inv.start_time = t;
      inv.end_time = t + step_seconds * 0.3 *
                             (slow ? sc.slow_factor : 1.0) *
                             rng.uniform(0.98, 1.02);
      inv.args.bytes = 4096.0 * (1 + s);
      inv.args.peer = (rank + 1) % sc.ranks;
      inv.args.fd = sim::is_io_op(inv.op) ? 3 : -1;
      batch.fragments.push_back(inv);
      t = inv.end_time;
      prev = key;
    }
  }

  // Transport chaos.  Drops and duplicates are per-fragment Bernoulli
  // draws; reorder is a full Fisher–Yates shuffle of the window batch.
  std::vector<core::Fragment> wire;
  wire.reserve(batch.fragments.size());
  std::size_t dropped = 0, duplicated = 0;
  for (const core::FragmentView v : batch.fragments) {
    if (sc.drop_prob > 0 && rng.bernoulli(sc.drop_prob)) {
      ++dropped;
      continue;
    }
    core::Fragment f = v.materialize();
    wire.push_back(f);
    if (sc.dup_prob > 0 && rng.bernoulli(sc.dup_prob)) {
      wire.push_back(f);
      ++duplicated;
    }
  }
  if (sc.reorder && wire.size() > 1) {
    for (std::size_t i = wire.size() - 1; i > 0; --i) {
      const std::size_t j =
          static_cast<std::size_t>(rng.uniform_u64(i + 1));
      std::swap(wire[i], wire[j]);
    }
  }
  batch.fragments.clear();
  for (const core::Fragment& f : wire) batch.fragments.push_back(f);
  (void)dropped;
  (void)duplicated;
  return batch;
}

// Journal sink asserting strict seq monotonicity as events are emitted
// (the in-memory stream; the on-disk file may be sparse under faults).
struct SeqCheckSink final : obs::JournalSink {
  std::uint64_t last = 0;
  bool any = false;
  bool violated = false;
  void on_event(const obs::JournalEvent& event) override {
    if (any && event.seq <= last) violated = true;
    last = event.seq;
    any = true;
  }
};

struct CountingAlertSink final : obs::AlertSink {
  std::uint64_t delivered = 0;
  void on_alert(const obs::Alert&) override { ++delivered; }
};

struct RoundResult {
  bool pass = true;
  std::vector<std::string> failures;
  std::ostringstream report;

  void check(bool ok, const std::string& what) {
    if (!ok) {
      pass = false;
      failures.push_back(what);
    }
  }
};

const core::FragmentKind kKinds[3] = {core::FragmentKind::kComputation,
                                      core::FragmentKind::kCommunication,
                                      core::FragmentKind::kIo};

// Pipeline configuration of one stress run.  In --equivalence mode each
// round runs once serial and once pipelined and every artifact below must
// byte-compare equal.
struct PipeCfg {
  int depth = 1;
  int threads = 1;
  bool cache = false;
  // SoA leg: rebuild every window's FragmentColumns through the
  // materialize/view shim before feeding the server — proves the columnar
  // conversion is lossless (artifacts byte-identical to the direct path).
  bool soa_rebuild = false;
};

// Round-trips a batch's columns through every conversion surface the shim
// offers: the first half is materialized to owning Fragments and re-pushed
// (Fragment -> columns), the second half is re-pushed via FragmentView
// (columns -> columns) into a separate block that is then appended
// (cross-arena splice).  Any drift in the SoA layout shows up as a
// byte-level artifact mismatch downstream.
core::FragmentColumns rebuild_columns(const core::FragmentColumns& cols) {
  core::FragmentColumns rebuilt;
  rebuilt.reserve(cols.size());
  const std::size_t half = cols.size() / 2;
  for (std::size_t i = 0; i < half; ++i)
    rebuilt.push_back(cols.materialize(i));
  core::FragmentColumns tail;
  for (std::size_t i = half; i < cols.size(); ++i) tail.push_back(cols[i]);
  rebuilt.append(tail);
  return rebuilt;
}

// Everything the equivalence property compares between two runs of the
// same scenario.
struct RoundArtifacts {
  std::string region_tables[3];  // live render_region_table per kind
  std::string replay_tables[3];  // reconstructed from the journal
  std::string rare_table;        // rare-path findings, full precision
  // Journal event stream with seq zeroed, sorted: concurrent leaf servers
  // may interleave emission differently run to run, but the multiset of
  // events must be identical.  Self-timing events (window_latency /
  // critical_path) are excluded: their stage laps depend on how the
  // VirtualClock advances relative to the worker, which is exactly the
  // schedule freedom the equivalence property permits — only their COUNT
  // must match (compared via timing_events).
  std::vector<std::string> journal_lines;
  std::size_t timing_events = 0;
  std::uint64_t alerts = 0;
};

// Stricter than core::render_rare_table: full %.17g precision, every row —
// so even sub-format-width divergence fails the equivalence property.
std::string rare_findings_fingerprint(
    const std::vector<core::RareFinding>& findings) {
  std::ostringstream oss;
  oss.precision(17);
  for (const core::RareFinding& f : findings)
    oss << f.state << '|' << core::fragment_kind_name(f.kind) << '|'
        << f.executions << '|' << f.total_seconds << '|' << f.longest_seconds
        << '|' << f.window_start << '\n';
  return oss.str();
}

RoundResult run_round(int round, std::uint64_t seed,
                      const std::string& scratch, bool verbose,
                      const PipeCfg& cfg, const std::string& tag,
                      RoundArtifacts* art) {
  RoundResult rr;
  util::Rng rng(seed ^ (0x5bd1e995ULL * static_cast<std::uint64_t>(round + 1)));
  const Scenario sc = make_scenario(rng);
  const double window_seconds = 0.25;
  const double bin_seconds = 0.05;
  const bool pipelined = cfg.depth > 1;

  rr.report << "round " << round << ": ranks=" << sc.ranks
            << " windows=" << sc.windows << " sites=" << sc.sites
            << " reps=" << sc.reps
            << " group=" << (sc.use_group ? sc.group_servers : 0)
            << " drop=" << (sc.drop_prob > 0 ? 1 : 0)
            << " dup=" << (sc.dup_prob > 0 ? 1 : 0)
            << " reorder=" << (sc.reorder ? 1 : 0)
            << " slow_rank=" << sc.slow_rank << " depth=" << cfg.depth
            << " threads=" << cfg.threads << " cache=" << (cfg.cache ? 1 : 0)
            << "\n";

  // Virtual time: the whole round runs on a scripted clock, so stage
  // timings and window ages in the journal are deterministic too.
  util::VirtualClock vclock;
  obs::ObsContext ctx;
  ctx.set_clock(&vclock);
  // Span tracing on: every round exercises the SpanScope/flow-event path
  // (and its obs.span fault site) alongside the invariants.
  ctx.enable_trace();
  const std::string journal_path =
      scratch + "/round" + std::to_string(round) +
      (tag.empty() ? std::string() : "-" + tag) + ".jsonl";
  if (!ctx.attach_journal_file(journal_path)) {
    rr.check(false, "journal file unwritable");
    return rr;
  }
  SeqCheckSink seq_check;
  ctx.journal()->add_sink(&seq_check);

  obs::AlertEngine engine;
  obs::AlertRule rule;
  std::string rule_error;
  obs::parse_alert_rule("variance_ratio > 1.2 for 2", &rule, &rule_error);
  engine.add_rule(rule);
  CountingAlertSink alert_sink;
  engine.add_alert_sink(&alert_sink);
  ctx.journal()->add_sink(&engine);

  core::ServerOptions opts;
  opts.bin_seconds = bin_seconds;
  opts.cluster.min_cluster_size = 3;
  opts.run_diagnosis = false;  // diagnosis needs the simulator's noise model
  opts.analysis_threads = cfg.threads;
  opts.pipeline_depth = cfg.depth;
  opts.cluster_seed_cache = cfg.cache;
  opts.obs = &ctx;
  opts.clock = &vclock;

  std::unique_ptr<core::AnalysisServer> server;
  std::unique_ptr<core::ServerGroup> group;
  if (sc.use_group)
    group = std::make_unique<core::ServerGroup>(sc.ranks, sc.group_servers,
                                                opts);
  else
    server = std::make_unique<core::AnalysisServer>(sc.ranks, opts);

  std::size_t sent_fragments = 0;
  for (int w = 0; w < sc.windows; ++w) {
    core::FragmentBatch batch =
        make_window_batch(sc, w, window_seconds, rng);
    if (cfg.soa_rebuild)
      batch.fragments = rebuild_columns(batch.fragments);
    sent_fragments += batch.fragments.size();
    if (group)
      group->process_window(std::move(batch));
    else
      server->process_window(std::move(batch), /*drain_seconds=*/0.0);
    vclock.advance(window_seconds);

    // Per-window invariants.  Skipped while pipelined — every accessor
    // syncs, so checking here would serialize the very overlap this mode
    // exists to exercise; the same checks run once after the loop.
    if (pipelined) continue;
    rr.check(!seq_check.violated, "journal seq not monotonic (live)");
    const std::size_t processed =
        group ? group->windows_processed() : server->windows_processed();
    rr.check(processed == static_cast<std::size_t>(w + 1),
             "windows_processed out of step");
    for (core::FragmentKind kind : kKinds) {
      const auto regions =
          group ? group->locate(kind) : server->locate(kind);
      for (const core::VarianceRegion& r : regions) {
        rr.check(r.cells > 0, "region with zero cells");
        rr.check(r.rank_lo <= r.rank_hi && r.rank_hi < sc.ranks,
                 "region rank range out of bounds");
        rr.check(r.bin_lo <= r.bin_hi, "region bin range inverted");
        rr.check(r.impact_seconds >= 0.0, "negative region impact");
      }
    }
  }
  if (pipelined) {
    // End-of-round versions of the per-window checks.  Drain explicitly
    // first: group->windows_processed() is a root-side counter that would
    // not sync the leaves on its own.
    if (group)
      group->sync();
    else
      server->sync();
    const std::size_t processed =
        group ? group->windows_processed() : server->windows_processed();
    rr.check(processed == static_cast<std::size_t>(sc.windows),
             "windows_processed out of step");
    rr.check(!seq_check.violated, "journal seq not monotonic (live)");
    for (core::FragmentKind kind : kKinds) {
      const auto regions = group ? group->locate(kind) : server->locate(kind);
      for (const core::VarianceRegion& r : regions) {
        rr.check(r.cells > 0, "region with zero cells");
        rr.check(r.rank_lo <= r.rank_hi && r.rank_hi < sc.ranks,
                 "region rank range out of bounds");
        rr.check(r.bin_lo <= r.bin_hi, "region bin range inverted");
        rr.check(r.impact_seconds >= 0.0, "negative region impact");
      }
    }
  }

  // End of round: final full-precision snapshot, then replay the journal
  // file and demand the reconstruction matches the live server.
  if (group)
    group->journal_detection_snapshot();
  else
    server->journal_detection_snapshot();
  ctx.journal()->flush();

  obs::JournalReadOptions ropts;
  ropts.recover_truncated_tail = true;
  const obs::JournalReadResult read = obs::read_journal(journal_path, ropts);
  rr.check(read.ok, "journal unreadable: " + read.error);
  if (read.ok) {
    bool file_monotonic = true;
    for (std::size_t i = 1; i < read.events.size(); ++i)
      if (read.events[i].seq <= read.events[i - 1].seq) file_monotonic = false;
    rr.check(file_monotonic, "journal seq not monotonic (file)");

    const core::JournalSummary summary = core::summarize_journal(read.events);
    rr.check(summary.ok, "journal summary failed: " + summary.error);

    std::size_t live_regions = 0;
    for (int k = 0; k < 3; ++k) {
      const auto live = group ? group->locate(kKinds[k])
                              : server->locate(kKinds[k]);
      live_regions += live.size();
      const std::string live_table =
          core::render_region_table(live, bin_seconds);
      const std::string replay_table =
          core::render_region_table(summary.regions[k], bin_seconds);
      rr.check(replay_table == live_table,
               std::string("replay-vs-live mismatch (") +
                   core::fragment_kind_name(kKinds[k]) + ")");
      if (verbose && !live.empty())
        rr.report << core::fragment_kind_name(kKinds[k]) << " regions:\n"
                  << live_table;
      if (art) {
        art->region_tables[k] = live_table;
        art->replay_tables[k] = replay_table;
      }
    }
    if (art) {
      art->rare_table = rare_findings_fingerprint(
          group ? group->merged_rare_findings() : server->rare_findings());
      art->alerts = engine.alerts_fired();
      for (obs::JournalEvent ev : read.events) {
        if (ev.type == "window_latency" || ev.type == "critical_path") {
          ++art->timing_events;  // schedule-dependent payload; count only
          continue;
        }
        ev.seq = 0;  // seq normalization: compare the multiset of events
        art->journal_lines.push_back(ev.to_json_line());
      }
      std::sort(art->journal_lines.begin(), art->journal_lines.end());
    }
    // The slowdown ran long enough that detection must have seen it.
    rr.check(live_regions > 0, "no variance regions despite injected slowdown");

    // Critical-path replay: re-folding the journaled window_latency events
    // must render the exact table the live tracker renders.  Single-server
    // rounds only — group leaves run live_detection=false and emit no
    // timing events (the root serves per-leaf views instead).
    if (!group) {
      const obs::CriticalPathTracker& live_tracker = server->latency_tracker();
      obs::CriticalPathTracker replay_tracker;
      for (const obs::WindowLatencyRecord& r : summary.window_latency)
        replay_tracker.record(r);
      rr.check(obs::render_critical_path_table(replay_tracker.recent(),
                                               replay_tracker.summary()) ==
                   obs::render_critical_path_table(live_tracker.recent(),
                                                   live_tracker.summary()),
               "critical-path replay-vs-live mismatch");
      rr.check(summary.critical_path_events == 1,
               "terminal critical_path event missing from journal");
    }

    // No alert double-fire: a fresh engine replaying the journal fires
    // exactly as often as the live one did.
    obs::AlertEngine replay_engine;
    replay_engine.add_rule(rule);
    for (const obs::JournalEvent& event : read.events)
      replay_engine.on_event(event);
    rr.check(replay_engine.alerts_fired() == engine.alerts_fired(),
             "alert fire count diverges on replay");

    rr.report << "  fragments=" << sent_fragments
              << " windows=" << sc.windows
              << " journal_events=" << read.events.size()
              << " truncated_tail=" << (read.truncated_tail ? 1 : 0)
              << " alerts=" << engine.alerts_fired()
              << " delivered=" << alert_sink.delivered << "\n";
  }

  const std::size_t faults =
      group ? group->merge_faults() : server->publish_faults();
  rr.report << "  publish_faults=" << faults
            << " alert_dispatch_faults=" << engine.dispatch_faults() << "\n";
  if (rr.pass) {
    rr.report << "  invariants: OK\n";
  } else {
    for (const std::string& f : rr.failures)
      rr.report << "  INVARIANT VIOLATED: " << f << "\n";
  }
  return rr;
}

// --- net-transport equivalence (--net) ------------------------------------
//
// The same scenario generator, but every window batch crosses the framed
// wire protocol: per-tenant IngestClient -> loopback TCP -> IngestServer ->
// TenantSession admission -> AnalysisServer.  Each tenant runs its own
// scenario against its own isolated backend/journal/clock, so the check is
// simultaneously a transport-transparency property (socket ingest changes
// nothing) and a multi-tenant isolation property (neighbors change
// nothing).  Without faults every tenant's region, rare-path, and
// critical-path tables must be byte-identical to an in-process reference
// fed the very same batches.  With a seeded net fault plan the tables may
// legitimately differ (batches shed), but every unique sequence number
// must have exactly one durable fate, every missing fragment must trace to
// a journaled shed/net_drop event, and nothing may be double-counted —
// retransmits (torn frames, reset connections, duplicated batches) dedup.

struct NetTenantPlan {
  Scenario sc;
  std::vector<core::FragmentBatch> batches;
  std::size_t total_fragments = 0;
};

struct NetArtifacts {
  std::string region_tables[3];
  std::string rare_table;
  std::string critical_path;
};

NetArtifacts collect_net_artifacts(core::AnalysisServer& server,
                                   double bin_seconds) {
  NetArtifacts art;
  for (int k = 0; k < 3; ++k)
    art.region_tables[k] =
        core::render_region_table(server.locate(kKinds[k]), bin_seconds);
  art.rare_table = rare_findings_fingerprint(server.rare_findings());
  art.critical_path = obs::render_critical_path_table(
      server.latency_tracker().recent(), server.latency_tracker().summary());
  return art;
}

bool run_net_round(int round, std::uint64_t seed, int tenants,
                   const std::string& scratch, bool faulted) {
  const double window_seconds = 0.25;
  const double bin_seconds = 0.05;
  bool pass = true;
  auto require = [&pass](bool ok, const std::string& what) {
    if (!ok) {
      pass = false;
      std::cout << "  NET INVARIANT VIOLATED: " << what << "\n";
    }
  };

  std::cout << "net round " << round << ": tenants=" << tenants
            << " faulted=" << (faulted ? 1 : 0) << "\n";

  // Per-tenant scenario plus the full batch sequence, generated once so the
  // reference run and the socket run feed byte-identical windows.
  std::vector<NetTenantPlan> plans;
  for (int t = 0; t < tenants; ++t) {
    util::Rng rng(seed ^
                  (0x5bd1e995ULL * static_cast<std::uint64_t>(round + 1)) ^
                  (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(t)));
    NetTenantPlan plan;
    plan.sc = make_scenario(rng);
    for (int w = 0; w < plan.sc.windows; ++w) {
      core::FragmentBatch b =
          make_window_batch(plan.sc, w, window_seconds, rng);
      plan.total_fragments += b.fragments.size();
      plan.batches.push_back(std::move(b));
    }
    plans.push_back(std::move(plan));
  }

  auto server_opts = [bin_seconds](obs::ObsContext* ctx, util::Clock* clock) {
    core::ServerOptions opts;
    opts.bin_seconds = bin_seconds;
    opts.cluster.min_cluster_size = 3;
    opts.run_diagnosis = false;
    opts.obs = ctx;
    opts.clock = clock;
    return opts;
  };

  // In-process reference: one isolated single server per tenant (the
  // critical-path tracker is a single-server instrument) fed the identical
  // batches on an identically-advanced virtual clock.
  std::vector<NetArtifacts> reference;
  for (int t = 0; t < tenants; ++t) {
    const NetTenantPlan& plan = plans[static_cast<std::size_t>(t)];
    util::VirtualClock vclock;
    obs::ObsContext ctx;
    ctx.set_clock(&vclock);
    core::AnalysisServer server(plan.sc.ranks, server_opts(&ctx, &vclock));
    for (const core::FragmentBatch& b : plan.batches) {
      server.process_window(core::FragmentBatch(b), /*drain_seconds=*/0.0);
      vclock.advance(window_seconds);
    }
    server.sync();
    reference.push_back(collect_net_artifacts(server, bin_seconds));
  }

  // Socket run: one plane, one ingest endpoint, N tenant streams.  Tenant
  // clocks are isolated and advanced in lockstep with the reference runs;
  // the plane clock only timestamps shed events and queue accounting.
  util::VirtualClock plane_clock;
  obs::ObsContext plane_ctx;
  plane_ctx.set_clock(&plane_clock);
  net::PlaneOptions popts;
  popts.obs = &plane_ctx;
  popts.clock = &plane_clock;
  net::IngestPlane plane(popts);

  std::vector<std::unique_ptr<util::VirtualClock>> clocks;
  std::vector<std::unique_ptr<obs::ObsContext>> ctxs;
  std::vector<net::TenantSession*> sessions;
  std::vector<std::string> journal_paths;
  for (int t = 0; t < tenants; ++t) {
    clocks.push_back(std::make_unique<util::VirtualClock>());
    ctxs.push_back(std::make_unique<obs::ObsContext>());
    ctxs.back()->set_clock(clocks.back().get());
    journal_paths.push_back(scratch + "/net-round" + std::to_string(round) +
                            "-tenant" + std::to_string(t) + ".jsonl");
    if (!ctxs.back()->attach_journal_file(journal_paths.back())) {
      require(false, "tenant journal unwritable");
      return pass;
    }
    net::TenantOptions topts;
    topts.name = "tenant" + std::to_string(t);
    topts.ranks = plans[static_cast<std::size_t>(t)].sc.ranks;
    topts.server = server_opts(ctxs.back().get(), clocks.back().get());
    topts.admission = faulted ? net::AdmissionPolicy::kShedOldest
                              : net::AdmissionPolicy::kBlock;
    sessions.push_back(plane.add_tenant(std::move(topts)));
  }

  net::IngestServer ingest(&plane);
  std::string error;
  if (!ingest.start(0, &error)) {
    require(false, "ingest server start: " + error);
    return pass;
  }
  std::vector<std::unique_ptr<net::IngestClient>> clients;
  for (int t = 0; t < tenants; ++t) {
    net::ClientOptions copts;
    copts.port = ingest.port();
    copts.tenant = "tenant" + std::to_string(t);
    copts.ranks =
        static_cast<std::uint32_t>(plans[static_cast<std::size_t>(t)].sc.ranks);
    copts.sleep_fn = [](double) {};  // retry backoff must not burn real time
    clients.push_back(std::make_unique<net::IngestClient>(copts));
    if (!clients.back()->connect(&error)) {
      require(false, "client connect: " + error);
      return pass;
    }
  }

  // Sends are serialized (each batch ack completes before the next send),
  // so fault-site hit order — hence the shed set — is a pure function of
  // the plan, and two runs of the same seed print byte-identical reports.
  int max_windows = 0;
  for (const NetTenantPlan& p : plans)
    max_windows = std::max(max_windows, p.sc.windows);
  for (int w = 0; w < max_windows; ++w) {
    for (int t = 0; t < tenants; ++t) {
      if (w >= plans[static_cast<std::size_t>(t)].sc.windows) continue;
      std::string send_error;
      require(clients[static_cast<std::size_t>(t)]->send_batch(
                  plans[static_cast<std::size_t>(t)].batches[
                      static_cast<std::size_t>(w)],
                  /*drain_seconds=*/0.0, &send_error),
              "send_batch: " + send_error);
    }
    plane.sync_all();
    for (int t = 0; t < tenants; ++t)
      if (w < plans[static_cast<std::size_t>(t)].sc.windows)
        clocks[static_cast<std::size_t>(t)]->advance(window_seconds);
  }
  for (auto& client : clients) {
    std::string flush_error;
    require(client->flush(&flush_error), "flush: " + flush_error);
  }
  plane.sync_all();

  for (int t = 0; t < tenants; ++t) {
    const std::size_t ti = static_cast<std::size_t>(t);
    const NetTenantPlan& plan = plans[ti];
    net::TenantSession* session = sessions[ti];
    const net::TenantStats st = session->stats();
    session->journal_detection_snapshot();
    ctxs[ti]->journal()->flush();

    std::cout << "  tenant" << t << ": ranks=" << plan.sc.ranks
              << " windows=" << plan.sc.windows
              << " fragments_sent=" << plan.total_fragments
              << " admitted=" << st.admitted << " shed=" << st.shed
              << " rejected=" << st.rejected
              << " duplicates=" << st.duplicates
              << " reordered=" << st.reordered
              << " processed=" << session->fragments_processed() << "\n";

    // Every unique seq has exactly one durable fate.
    require(st.submitted - st.duplicates ==
                st.admitted + st.shed + st.rejected,
            "tenant" + std::to_string(t) +
                ": seq fates don't partition unique submissions");
    require(session->windows_processed() == st.admitted,
            "tenant" + std::to_string(t) +
                ": windows processed != batches admitted");

    // Journal accounting: every fragment the backend never saw traces to
    // exactly one shed/net_drop event carrying its batch's fragment count.
    obs::JournalReadOptions ropts;
    const obs::JournalReadResult read =
        obs::read_journal(journal_paths[ti], ropts);
    require(read.ok, "tenant journal unreadable: " + read.error);
    if (read.ok) {
      std::size_t shed_events = 0, drop_events = 0;
      std::size_t dropped_fragments = 0;
      for (const obs::JournalEvent& ev : read.events) {
        if (ev.type == "shed") {
          ++shed_events;
          dropped_fragments += static_cast<std::size_t>(ev.number("fragments"));
        } else if (ev.type == "net_drop") {
          ++drop_events;
          dropped_fragments += static_cast<std::size_t>(ev.number("fragments"));
        }
      }
      require(shed_events == st.shed,
              "journaled shed events != shed stat");
      require(drop_events == st.rejected,
              "journaled net_drop events != rejected stat");
      require(session->fragments_processed() + dropped_fragments ==
                  plan.total_fragments,
              "tenant" + std::to_string(t) +
                  ": fragment accounting leaks (processed + dropped != sent)");
    }

    if (!faulted) {
      require(st.shed == 0 && st.rejected == 0 && st.duplicates == 0,
              "clean run saw sheds/rejects/duplicates");
      const NetArtifacts net_art =
          collect_net_artifacts(*session->server(), bin_seconds);
      const NetArtifacts& ref = reference[ti];
      bool equal = true;
      for (int k = 0; k < 3; ++k)
        equal = equal && net_art.region_tables[k] == ref.region_tables[k];
      require(equal, "region tables differ from in-process reference");
      require(net_art.rare_table == ref.rare_table,
              "rare-path table differs from in-process reference");
      require(net_art.critical_path == ref.critical_path,
              "critical-path table differs from in-process reference");
      if (pass)
        std::cout << "  tenant" << t
                  << ": socket ingest == in-process reference: OK\n";
    }
  }

  std::cout << "  plane: shed_total=" << plane.shed_total()
            << " frames_torn=" << ingest.frames_torn()
            << " conn_resets=" << ingest.conn_resets()
            << " batches_received=" << ingest.batches_received()
            << " protocol_errors=" << ingest.protocol_errors() << "\n";
  if (!faulted)
    require(!plane.degraded(), "degraded latched without any shed");
  return pass;
}

// --- detection-quality scoreboard (--score) -------------------------------
//
// Runs a fixed app x noise matrix: every cell is one deterministic
// simulated run with Vapro attached and exactly one injected perturbation
// (or none), scored against the injector's own ground truth
// (core::score_run_quality).  Everything derives from virtual time and the
// --seed, so the table, the journal events, and the --json file are
// byte-identical run to run — BENCH_quality.json is diffable across
// commits and scripts/quality_gate.py gates CI on it.

sim::Simulator::RankProgram make_score_app(const std::string& name) {
  if (name == "CG") {
    apps::NpbParams p;
    p.iters = 60;
    return apps::cg(p);
  }
  if (name == "MG") {
    apps::NpbParams p;
    p.iters = 120;
    return apps::mg(p);
  }
  if (name == "Nekbone") {
    apps::NekboneParams p;
    p.iters = 150;
    return apps::nekbone(p);
  }
  if (name == "RAxML") {
    apps::RaxmlParams p;
    p.io_rounds = 300;
    p.compute_iters = 60;
    return apps::raxml(p);
  }
  if (name == "MasterWorker") {
    apps::MasterWorkerParams p;
    p.rounds = 80;
    return apps::masterworker(p);
  }
  return nullptr;
}

// One representative injection per noise kind, magnitudes matching the
// integration tests (strong enough that detection *should* see them).
// Node-scoped kinds hit node 1 inside [0.1, 0.35) — within even the
// shortest app's makespan; the slow DIMM is persistent; IO/network
// interference is global by nature.
bool make_score_noise(const std::string& tag,
                      std::vector<sim::NoiseSpec>* out) {
  if (tag == "none") return true;
  sim::NoiseSpec s;
  if (!sim::noise_kind_from_name(tag, &s.kind)) return false;
  s.node = 1;
  s.t_begin = 0.1;
  s.t_end = 0.35;
  switch (s.kind) {
    case sim::NoiseKind::kCpuContention: s.magnitude = 1.2; break;
    case sim::NoiseKind::kMemoryBandwidth: s.magnitude = 3.5; break;
    case sim::NoiseKind::kL2CacheBug: s.magnitude = 4.0; break;
    case sim::NoiseKind::kSlowDram:
      s.magnitude = 3.0;
      s.t_begin = 0.0;
      s.t_end = std::numeric_limits<double>::infinity();
      break;
    case sim::NoiseKind::kPageFaultStorm: s.magnitude = 2e5; break;
    case sim::NoiseKind::kIoInterference:
      s.magnitude = 20.0;
      s.node = -1;
      s.t_begin = 0.05;
      s.t_end = std::numeric_limits<double>::infinity();
      break;
    case sim::NoiseKind::kNetworkCongestion:
      s.magnitude = 8.0;
      s.node = -1;
      break;
  }
  out->push_back(s);
  return true;
}

int run_score_mode(const util::CliArgs& args, int argc, char** argv) {
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 21));
  const int ranks = args.get_int("ranks", 16);
  const int cores_per_node = args.get_int("cores-per-node", 8);
  const std::vector<std::string> app_names =
      util::split(args.get("score-apps", "CG,MG,Nekbone,RAxML,MasterWorker"),
                  ',');
  const std::vector<std::string> noise_tags =
      util::split(args.get("score-noises", "none,cpu,dram,pf,io,net"), ',');

  for (const std::string& name : app_names)
    if (!make_score_app(name)) {
      std::cerr << "unknown --score-apps entry '" << name << "'\n";
      return 2;
    }
  for (const std::string& tag : noise_tags) {
    std::vector<sim::NoiseSpec> probe;
    if (!make_score_noise(tag, &probe)) {
      std::cerr << "unknown --score-noises entry '" << tag << "'\n";
      return 2;
    }
  }

  tools::ObsCli obs_cli;
  obs_cli.parse(args);
  // Scoreboard before the context: the exposition server (owned by the
  // context) borrows it through /v1/quality until the context dies.
  obs::QualityScoreboard scoreboard;
  obs::ObsContext obs_ctx;
  if (obs_cli.want_obs()) {
    std::string error;
    if (!obs_cli.activate(obs_ctx, &error)) {
      std::cerr << error << "\n";
      return 2;
    }
    if (obs_ctx.exposition()) scoreboard.attach_route(*obs_ctx.exposition());
  }

  bench::JsonReport json("quality", argc, argv);
  std::cout << "vapro_stress --score seed=" << seed << " ranks=" << ranks
            << " matrix=" << app_names.size() << "x" << noise_tags.size()
            << "\n";

  util::TextTable table({"app", "noise", "truths", "detected", "precision",
                         "recall", "f1", "top_factor"});
  double last_makespan = 0.0;
  for (const std::string& app_name : app_names) {
    for (const std::string& tag : noise_tags) {
      sim::SimConfig config;
      config.ranks = ranks;
      config.cores_per_node = cores_per_node;
      config.seed = seed;
      make_score_noise(tag, &config.noises);
      sim::Simulator simulator(config);

      core::VaproOptions vopts;
      vopts.window_seconds = 0.1;
      vopts.bin_seconds = 0.05;
      core::VaproSession session(simulator, vopts);
      const sim::RunResult result = simulator.run(make_score_app(app_name));
      last_makespan = result.makespan;

      core::RunConclusions rc;
      rc.bin_seconds = vopts.bin_seconds;
      rc.computation = session.locate(core::FragmentKind::kComputation);
      rc.communication = session.locate(core::FragmentKind::kCommunication);
      rc.io = session.locate(core::FragmentKind::kIo);
      rc.culprits = session.diagnosis().culprits;

      const std::vector<sim::GroundTruthEvent> truths =
          simulator.ground_truth(result.makespan);
      const obs::QualityScore score = core::score_run_quality(truths, rc);
      scoreboard.add({app_name, tag, score});
      scoreboard.publish_gauges(obs_ctx.metrics());

      table.add_row({app_name, tag, std::to_string(score.truths),
                     std::to_string(score.detections),
                     util::fmt(score.precision(), 3),
                     util::fmt(score.recall(), 3), util::fmt(score.f1(), 3),
                     util::fmt(score.top_factor_accuracy(), 3)});
      const std::string base = app_name + "." + tag + ".";
      json.record(base + "precision", {score.precision()});
      json.record(base + "recall", {score.recall()});
      json.record(base + "f1", {score.f1()});
      json.record(base + "top_factor_accuracy",
                  {score.top_factor_accuracy()});
    }
  }

  const obs::QualityScore total = scoreboard.aggregate();
  table.add_row({"aggregate", "-", std::to_string(total.truths),
                 std::to_string(total.detections),
                 util::fmt(total.precision(), 3), util::fmt(total.recall(), 3),
                 util::fmt(total.f1(), 3),
                 util::fmt(total.top_factor_accuracy(), 3)});
  table.print(std::cout);
  json.record("aggregate.precision", {total.precision()});
  json.record("aggregate.recall", {total.recall()});
  json.record("aggregate.f1", {total.f1()});
  json.record("aggregate.top_factor_accuracy", {total.top_factor_accuracy()});
  if (!json.write()) return 1;

  if (obs::Journal* journal = obs_ctx.journal())
    scoreboard.journal(*journal, last_makespan);
  if (obs_cli.want_obs()) {
    const bool ok = obs_cli.finish(obs_ctx);
    obs_cli.linger(obs_ctx);
    if (!ok) return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliArgs args(argc, argv);
  if (args.get_bool("help")) return usage();
  if (args.get_bool("score")) return run_score_mode(args, argc, argv);

  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 1));
  const int rounds = args.get_int("rounds", 5);
  const std::string scratch = args.get("scratch", "/tmp/vapro_stress");
  const std::string plan_path = args.get("fault-plan", "");
  const bool verbose = args.get_bool("verbose");
  const bool equivalence = args.get_bool("equivalence");
  const bool net_mode = args.get_bool("net");
  const int tenants = args.get_int("tenants", 1);
  vapro::tools::PipelineCli pipeline_cli;
  if (!pipeline_cli.parse(args)) return 2;

  vapro::testing::FaultPlan plan;
  if (!plan_path.empty()) {
    std::string error;
    if (!vapro::testing::FaultPlan::parse_file(plan_path, &plan, &error)) {
      std::cerr << "bad fault plan: " << error << "\n";
      return 2;
    }
#if !defined(VAPRO_FAULT_INJECTION) || !VAPRO_FAULT_INJECTION
    std::cerr << "fault injection is compiled out of this build "
                 "(configure with -DVAPRO_FAULT_INJECTION=ON)\n";
    return 2;
#endif
    vapro::testing::FaultInjector::instance().arm(plan);
  }

  std::cout << "vapro_stress seed=" << seed << " rounds=" << rounds
            << " fault_plan=" << (plan_path.empty() ? "none" : "armed")
            << " fault_rules=" << plan.rules.size() << " mode="
            << (net_mode ? "net" : equivalence ? "equivalence" : "fuzz")
            << "\n";

  int failed = 0;
  if (net_mode) {
    for (int r = 0; r < rounds; ++r) {
      // Re-arm per round so every round observes the same per-site fault
      // sequence (the reference runs never touch net.* sites).
      if (!plan_path.empty())
        vapro::testing::FaultInjector::instance().arm(plan);
      if (!run_net_round(r, seed, tenants, scratch, !plan_path.empty()))
        ++failed;
    }
  } else if (equivalence) {
    // The property: the same scenario produces byte-identical detection
    // artifacts for EVERY pipeline-depth x analysis-threads combination.
    // Each round runs the serial base (depth 1, 1 thread) and then the
    // full variant matrix against it.  The seed cache flips per round, so
    // over any two consecutive rounds the complete depth {1,2} x threads
    // {1,2,4} x cache {off,on} grid is covered.  The two `soa` legs rebuild
    // every window's columns through the materialize/view shim
    // (rebuild_columns) — serially and at the widest pipeline point — so
    // the SoA layout's conversion surfaces are part of the same
    // byte-identity property as the threading matrix.
    struct Variant {
      int depth;
      int threads;
      bool soa;
      const char* tag;
    };
    const Variant kVariants[] = {
        {1, 2, false, "d1t2"}, {1, 4, false, "d1t4"}, {2, 1, false, "d2t1"},
        {2, 2, false, "d2t2"}, {2, 4, false, "d2t4"}, {1, 1, true, "soa"},
        {2, 4, true, "soa-d2t4"}};
    for (int r = 0; r < rounds; ++r) {
      const bool cache = r % 2 == 1;
      const PipeCfg serial{1, 1, cache};
      RoundArtifacts base;
      // Re-arm before each run so every variant sees the identical
      // per-site fault sequence (arm() resets every per-(site, rule)
      // counter).
      if (!plan_path.empty()) vapro::testing::FaultInjector::instance().arm(plan);
      RoundResult ra = run_round(r, seed, scratch, verbose, serial,
                                 "serial", &base);
      std::cout << ra.report.str();
      bool round_ok = ra.pass;
      std::size_t variants_ok = 0;
      for (const Variant& v : kVariants) {
        const PipeCfg variant{v.depth, v.threads, cache, v.soa};
        const std::string tag = v.tag;
        RoundArtifacts b;
        if (!plan_path.empty())
          vapro::testing::FaultInjector::instance().arm(plan);
        RoundResult rb = run_round(r, seed, scratch, verbose, variant, tag,
                                   &b);
        bool equal = true;
        auto require = [&](bool ok, const char* what) {
          if (!ok) {
            equal = false;
            std::cout << "  EQUIVALENCE VIOLATED (" << tag << "): " << what
                      << "\n";
          }
        };
        for (int k = 0; k < 3; ++k) {
          require(base.region_tables[k] == b.region_tables[k],
                  "live region table differs");
          require(base.replay_tables[k] == b.replay_tables[k],
                  "journal-replay region table differs");
        }
        require(base.rare_table == b.rare_table, "rare-path table differs");
        require(base.journal_lines == b.journal_lines,
                "journal event stream differs (after seq normalization)");
        require(base.timing_events == b.timing_events,
                "self-timing journal event count differs");
        require(base.alerts == b.alerts, "alert fire count differs");
        if (!rb.pass || !equal) {
          round_ok = false;
          std::cout << rb.report.str();
        } else {
          ++variants_ok;
        }
      }
      if (!round_ok) {
        ++failed;
      } else {
        std::cout << "  serial == {d1t2,d1t4,d2t1,d2t2,d2t4,soa,soa-d2t4}:"
                     " OK ("
                  << variants_ok << " variants, "
                  << base.journal_lines.size() << " journal events, "
                  << base.alerts << " alerts)\n";
      }
    }
  } else {
    const PipeCfg cfg{pipeline_cli.pipeline_depth,
                      pipeline_cli.analysis_threads,
                      pipeline_cli.cluster_seed_cache};
    for (int r = 0; r < rounds; ++r) {
      RoundResult rr = run_round(r, seed, scratch, verbose, cfg,
                                 /*tag=*/"", /*art=*/nullptr);
      std::cout << rr.report.str();
      if (!rr.pass) ++failed;
    }
  }

  auto& injector = vapro::testing::FaultInjector::instance();
  const auto by_site = injector.injected_by_site();
  std::cout << "faults injected: " << injector.injected_total() << "\n";
  for (const auto& [site, count] : by_site)
    std::cout << "  " << site << ": " << count << "\n";
  injector.disarm();

  if (failed > 0) {
    std::cout << "RESULT: FAIL (" << failed << "/" << rounds
              << " rounds violated invariants; rerun with --seed " << seed
              << (plan_path.empty()
                      ? std::string()
                      : " --fault-plan " + plan_path)
              << " to reproduce byte-identically)\n";
    return 1;
  }
  std::cout << "RESULT: PASS (" << rounds << "/" << rounds << " rounds)\n";
  return 0;
}
