// vapro_replay — offline analysis of a recorded trace, or re-ingestion of
// an event journal.
//
//   vapro_record: use `vapro_run --trace=FILE ...` to record (or any code
//   attaching trace::TraceWriter), then:
//
//   vapro_replay trace.vprt --window=0.25 --threshold=0.85
//   vapro_replay trace.vprt --context-aware --no-diagnosis
//
// Re-analyzes the same run under different knobs without re-running it.
//
//   vapro_replay --from-journal run.jsonl
//   vapro_replay --from-journal segments_dir/
//
// reconstructs the original run's detection/diagnosis summaries from its
// `--journal-out` event journal alone (no raw trace needed): the journal
// carries every conclusion at full precision.  A directory of rotated
// segments (JSONL or binary .vjseg, mixed is fine) replays as one stream.
//
//   vapro_replay --compact-journal SRC --compact-out DST
//
// offline compaction: drops superseded variance-region revisions and
// quality-scoreboard snapshots, writes a single journal at DST (binary if
// it ends in .vjseg).  The compacted journal replays byte-identically.
#include <chrono>
#include <iostream>

#include "src/core/journal_replay.hpp"
#include "src/obs/journal_segment.hpp"
#include "src/core/report.hpp"
#include "src/obs/context.hpp"
#include "src/trace/offline.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"
#include "tools/obs_cli.hpp"

int main(int argc, char** argv) {
  using namespace vapro;
  util::CliArgs args(argc, argv);
  // Both `--from-journal FILE` (FILE parses as the flag value) and
  // `FILE --from-journal` (FILE parses as a positional) are accepted.
  std::string journal_in = args.get("from-journal", "");
  if (args.has("from-journal") && journal_in.empty() &&
      !args.positionals().empty())
    journal_in = args.positionals()[0];

  const std::string compact_src = args.get("compact-journal", "");
  if (!compact_src.empty()) {
    const std::string compact_dst = args.get("compact-out", "");
    if (compact_dst.empty()) {
      std::cerr << "--compact-journal requires --compact-out=DEST\n";
      return 2;
    }
    obs::CompactionStats stats;
    std::string error;
    if (!obs::compact_journal(compact_src, compact_dst, &stats, &error)) {
      std::cerr << "journal compaction failed: " << error << "\n";
      return 1;
    }
    std::cout << "compacted " << compact_src << " -> " << compact_dst << ": "
              << stats.kept << " events kept, " << stats.dropped
              << " superseded events dropped\n";
    return 0;
  }

  if (args.positionals().empty() && journal_in.empty()) {
    std::cout << "usage: vapro_replay TRACE_FILE [--window=S] "
                 "[--threshold=X] [--bins=S] [--context-aware] "
                 "[--no-diagnosis] [--cluster-threshold=X] "
                 "[--metrics-out=FILE] [--trace-out=FILE] [--obs-table]\n"
                 "       vapro_replay --from-journal JOURNAL_FILE_OR_DIR\n"
                 "       vapro_replay --compact-journal SRC --compact-out=DEST\n"
                 "analysis pipeline flags (as in vapro_run):\n"
              << tools::PipelineCli::usage_lines()
              << "extra observability flags (as in vapro_run): "
                 "[--journal-out=FILE] [--listen=PORT] [--listen-linger=S] "
                 "[--alert-rule=SPEC]... [--alert-file=FILE]\n";
    return 2;
  }

  if (!journal_in.empty()) {
    // Journal re-ingestion: no clustering, no heat maps — just the
    // producer's own conclusions, replayed.
    core::JournalSummary summary = core::summarize_journal_file(journal_in);
    if (!summary.ok) {
      std::cerr << "journal replay failed: " << summary.error << "\n";
      return 1;
    }
    std::cout << core::render_journal_summary(summary);
    return 0;
  }

  trace::Trace trace = trace::Trace::load(args.positionals()[0]);
  std::cout << "loaded " << trace.size() << " events ("
            << trace.byte_size() / 1024 << " KiB)\n";

  trace::OfflineOptions opts;
  opts.window_seconds = args.get_double("window", 0.25);
  opts.variance_threshold = args.get_double("threshold", 0.85);
  opts.bin_seconds = args.get_double("bins", 0.1);
  opts.cluster.threshold = args.get_double("cluster-threshold", 0.05);
  opts.run_diagnosis = !args.get_bool("no-diagnosis");
  if (args.get_bool("context-aware"))
    opts.stg_mode = core::StgMode::kContextAware;
  tools::PipelineCli pipeline_cli;
  if (!pipeline_cli.parse(args)) return 2;
  opts.pipeline_depth = pipeline_cli.pipeline_depth;
  opts.analysis_threads = pipeline_cli.analysis_threads;
  opts.cluster_seed_cache = pipeline_cli.cluster_seed_cache;

  // ObsCli before ObsContext: the journal borrows the alert engine.
  tools::ObsCli obs_cli;
  obs_cli.parse(args);
  obs::ObsContext obs_ctx;
  if (obs_cli.want_obs()) {
    opts.obs = &obs_ctx;
    std::string error;
    if (!obs_cli.activate(obs_ctx, &error)) {
      std::cerr << error << "\n";
      return 2;
    }
  }

  const auto wall0 = std::chrono::steady_clock::now();
  trace::OfflineSession session(trace, opts);
  const double replay_wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();

  std::cout << "\nfragments: " << session.fragments_recorded() << "\n\n"
            << session.computation_map().render_ascii() << '\n';
  for (core::FragmentKind kind :
       {core::FragmentKind::kComputation, core::FragmentKind::kCommunication,
        core::FragmentKind::kIo}) {
    auto regions = session.locate(kind);
    if (regions.empty()) continue;
    std::cout << core::fragment_kind_name(kind) << " variance:\n";
    std::size_t shown = 0;
    for (const auto& r : regions) {
      if (++shown > 6) break;
      std::cout << "  ranks " << r.rank_lo << "-" << r.rank_hi << " t=["
                << util::fmt(r.time_lo(opts.bin_seconds), 2) << ","
                << util::fmt(r.time_hi(opts.bin_seconds), 2) << ") loss "
                << util::fmt(100 * (1 - r.mean_perf), 1) << "%\n";
    }
  }
  if (opts.run_diagnosis)
    std::cout << '\n' << session.diagnosis().summary() << '\n';

  if (opts.obs) {
    obs_ctx.overhead().set_run_wall_seconds(replay_wall_seconds);
    session.server().journal_detection_snapshot();
    const bool obs_write_ok = obs_cli.finish(obs_ctx);
    obs_cli.linger(obs_ctx);
    if (!obs_write_ok) return 1;
  }
  return 0;
}
