// vapro_replay — offline analysis of a recorded trace.
//
//   vapro_record: use `vapro_run --trace=FILE ...` to record (or any code
//   attaching trace::TraceWriter), then:
//
//   vapro_replay trace.vprt --window=0.25 --threshold=0.85
//   vapro_replay trace.vprt --context-aware --no-diagnosis
//
// Re-analyzes the same run under different knobs without re-running it.
#include <chrono>
#include <iostream>

#include "src/core/report.hpp"
#include "src/obs/context.hpp"
#include "src/trace/offline.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  using namespace vapro;
  util::CliArgs args(argc, argv);
  if (args.positionals().empty()) {
    std::cout << "usage: vapro_replay TRACE_FILE [--window=S] "
                 "[--threshold=X] [--bins=S] [--context-aware] "
                 "[--no-diagnosis] [--cluster-threshold=X] "
                 "[--metrics-out=FILE] [--trace-out=FILE]\n";
    return 2;
  }
  trace::Trace trace = trace::Trace::load(args.positionals()[0]);
  std::cout << "loaded " << trace.size() << " events ("
            << trace.byte_size() / 1024 << " KiB)\n";

  trace::OfflineOptions opts;
  opts.window_seconds = args.get_double("window", 0.25);
  opts.variance_threshold = args.get_double("threshold", 0.85);
  opts.bin_seconds = args.get_double("bins", 0.1);
  opts.cluster.threshold = args.get_double("cluster-threshold", 0.05);
  opts.run_diagnosis = !args.get_bool("no-diagnosis");
  if (args.get_bool("context-aware"))
    opts.stg_mode = core::StgMode::kContextAware;

  const std::string metrics_path = args.get("metrics-out", "");
  const std::string trace_out_path = args.get("trace-out", "");
  obs::ObsContext obs_ctx;
  if (!metrics_path.empty() || !trace_out_path.empty()) opts.obs = &obs_ctx;
  if (!trace_out_path.empty()) obs_ctx.enable_trace();

  const auto wall0 = std::chrono::steady_clock::now();
  trace::OfflineSession session(trace, opts);
  const double replay_wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();

  std::cout << "\nfragments: " << session.fragments_recorded() << "\n\n"
            << session.computation_map().render_ascii() << '\n';
  for (core::FragmentKind kind :
       {core::FragmentKind::kComputation, core::FragmentKind::kCommunication,
        core::FragmentKind::kIo}) {
    auto regions = session.locate(kind);
    if (regions.empty()) continue;
    std::cout << core::fragment_kind_name(kind) << " variance:\n";
    std::size_t shown = 0;
    for (const auto& r : regions) {
      if (++shown > 6) break;
      std::cout << "  ranks " << r.rank_lo << "-" << r.rank_hi << " t=["
                << util::fmt(r.time_lo(opts.bin_seconds), 2) << ","
                << util::fmt(r.time_hi(opts.bin_seconds), 2) << ") loss "
                << util::fmt(100 * (1 - r.mean_perf), 1) << "%\n";
    }
  }
  if (opts.run_diagnosis)
    std::cout << '\n' << session.diagnosis().summary() << '\n';

  if (opts.obs) {
    obs_ctx.overhead().set_run_wall_seconds(replay_wall_seconds);
    bool obs_write_failed = false;
    if (!metrics_path.empty()) {
      if (obs_ctx.write_metrics_json(metrics_path)) {
        std::cout << "metrics JSON -> " << metrics_path << "\n";
      } else {
        std::cerr << "failed to write " << metrics_path << "\n";
        obs_write_failed = true;
      }
    }
    if (!trace_out_path.empty()) {
      if (obs_ctx.write_trace_json(trace_out_path)) {
        std::cout << "pipeline trace (" << obs_ctx.trace()->size()
                  << " events) -> " << trace_out_path << "\n";
      } else {
        std::cerr << "failed to write " << trace_out_path << "\n";
        obs_write_failed = true;
      }
    }
    if (obs_write_failed) return 1;
  }
  return 0;
}
