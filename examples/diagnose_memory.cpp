// Scenario: a user reports that a CFD solver (Nekbone-like) sometimes runs
// slow on one allocation.  This example shows how Vapro's progressive
// diagnosis narrows the cause down to memory, stage by stage, while only
// ever keeping a handful of PMU counters active (the paper's §4.3 flow and
// §6.5.2 case study).
#include <iostream>

#include "src/apps/solvers.hpp"
#include "src/core/vapro.hpp"
#include "src/sim/runtime.hpp"

int main() {
  using namespace vapro;

  // One node in the allocation has a degraded DIMM: 40% less effective
  // memory bandwidth (nobody knows that yet).
  sim::SimConfig config;
  config.ranks = 64;
  config.cores_per_node = 16;
  config.seed = 99;
  sim::NoiseSpec dimm;
  dimm.kind = sim::NoiseKind::kSlowDram;
  dimm.node = 2;  // ranks 32-47
  dimm.magnitude = 1.7;
  config.noises.push_back(dimm);
  sim::Simulator simulator(config);

  core::VaproOptions options;
  options.window_seconds = 0.25;
  core::VaproSession vapro(simulator, options);

  apps::NekboneParams params;
  params.iters = 300;
  simulator.run(apps::nekbone(params));

  // Where is the variance?
  auto regions = vapro.locate(core::FragmentKind::kComputation);
  if (regions.empty()) {
    std::cout << "no variance found — the machine looks healthy\n";
    return 0;
  }
  const auto& region = regions.front();
  std::cout << "variance located: ranks " << region.rank_lo << "-"
            << region.rank_hi << " run at "
            << 100 * (1 - region.mean_perf)
            << "% below their fixed-workload baseline\n\n";

  // Why?  The diagnosis report walks the breakdown tree: each stage keeps
  // only the factors that explain > 25% of the variance and re-programs
  // the (4-slot) PMU for their children.
  const auto& report = vapro.diagnosis();
  std::cout << report.summary() << "\n\n";

  std::cout << "actionable finding: if the culprit chain is backend → "
               "memory → DRAM on one node's ranks, compare that node's "
               "STREAM bandwidth against its peers and file a hardware "
               "ticket (the paper's Nekbone case found a DIMM 15.5% slow).\n";
  return 0;
}
