// Scenario: the same noisy run observed through three tools — Vapro, a
// vSensor-like static detector, and an mpiP-like profiler — illustrating
// why runtime fixed-workload identification matters (paper §6.2 / §6.4).
#include <iostream>

#include "src/apps/npb.hpp"
#include "src/baselines/mpip.hpp"
#include "src/baselines/vsensor.hpp"
#include "src/core/vapro.hpp"
#include "src/sim/runtime.hpp"

int main() {
  using namespace vapro;

  auto make_config = [] {
    sim::SimConfig config;
    config.ranks = 128;
    config.cores_per_node = 16;
    config.seed = 31;
    // A 0.8 s CPU hog on node 3 (ranks 48-63).
    sim::NoiseSpec hog;
    hog.kind = sim::NoiseKind::kCpuContention;
    hog.node = 3;
    hog.t_begin = 0.5;
    hog.t_end = 1.3;
    hog.magnitude = 1.0;
    config.noises.push_back(hog);
    return config;
  };
  apps::NpbParams params;
  params.iters = 60;
  params.scale = 3.0;

  // --- Vapro ---
  {
    sim::Simulator simulator(make_config());
    core::VaproOptions options;
    options.window_seconds = 0.25;
    core::VaproSession vapro(simulator, options);
    simulator.run(apps::sp(params));
    std::cout << "=== Vapro ===\n" << vapro.detection_summary();
    std::cout << vapro.diagnosis().summary() << "\n\n";
  }

  // --- vSensor-like static baseline ---
  {
    sim::Simulator simulator(make_config());
    baselines::VsensorTool vsensor(128, baselines::VsensorOptions{});
    simulator.set_interceptor(&vsensor);
    auto result = simulator.run(apps::sp(params));
    vsensor.finalize();
    double total = 0;
    for (double t : result.finish_times) total += t;
    std::cout << "=== vSensor (static analysis) ===\n"
              << "coverage: " << 100 * vsensor.coverage(total) << "%\n";
    auto regions = vsensor.locate();
    if (regions.empty()) {
      std::cout << "no variance detected (too few static snippets)\n\n";
    } else {
      std::cout << "top region: ranks " << regions[0].rank_lo << "-"
                << regions[0].rank_hi << ", loss "
                << 100 * (1 - regions[0].mean_perf)
                << "% — deeper and shorter than the truth because its "
                   "snippets are sparse\n\n";
    }
  }

  // --- mpiP-like profiler ---
  {
    sim::Simulator simulator(make_config());
    baselines::MpipProfiler mpip(128);
    simulator.set_interceptor(&mpip);
    simulator.run(apps::sp(params));
    std::cout << "=== mpiP (profile) ===\n" << mpip.summary(8)
              << "note: the noisy node's lost time shows up as *everyone's* "
                 "communication time — a profile cannot localize it.\n";
  }
  return 0;
}
