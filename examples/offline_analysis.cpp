// Scenario: a run misbehaved in production overnight.  The operators only
// kept the interception trace.  This example records a run once (standing
// in for the production job), then answers three different questions from
// the same trace — no re-execution:
//   1. where was the variance?  (default knobs)
//   2. is it still visible with a stricter variance threshold?
//   3. what does a context-aware STG see?
#include <iostream>

#include "src/apps/solvers.hpp"
#include "src/sim/runtime.hpp"
#include "src/trace/offline.hpp"
#include "src/trace/trace.hpp"

int main() {
  using namespace vapro;

  // --- the "production run": record the interception stream ---
  sim::SimConfig config;
  config.ranks = 64;
  config.cores_per_node = 16;
  config.seed = 2026;
  sim::NoiseSpec dimm;
  dimm.kind = sim::NoiseKind::kSlowDram;
  dimm.node = 1;  // ranks 16-31
  dimm.magnitude = 2.0;
  config.noises.push_back(dimm);
  sim::Simulator simulator(config);
  trace::TraceWriter recorder;
  simulator.set_interceptor(&recorder);
  apps::NekboneParams params;
  params.iters = 200;
  simulator.run(apps::nekbone(params));

  const std::string path = "/tmp/vapro_offline_example.vprt";
  recorder.trace().save(path);
  std::cout << "recorded " << recorder.trace().size() << " events ("
            << recorder.trace().byte_size() / 1024 << " KiB) to " << path
            << "\n\n";

  // --- question 1: default analysis ---
  trace::Trace trace = trace::Trace::load(path);
  {
    trace::OfflineOptions opts;
    opts.window_seconds = 0.25;
    trace::OfflineSession session(trace, opts);
    auto regions = session.locate(core::FragmentKind::kComputation);
    std::cout << "[default knobs] regions: " << regions.size();
    if (!regions.empty()) {
      std::cout << "; top = ranks " << regions[0].rank_lo << "-"
                << regions[0].rank_hi << " at "
                << 100 * (1 - regions[0].mean_perf) << "% loss";
    }
    std::cout << "\n" << session.diagnosis().summary() << "\n\n";
  }

  // --- question 2: only severe variance ---
  {
    trace::OfflineOptions opts;
    opts.variance_threshold = 0.6;
    trace::OfflineSession session(trace, opts);
    std::cout << "[threshold 0.6] regions: "
              << session.locate(core::FragmentKind::kComputation).size()
              << " (a ~50% slowdown clears a 0.6 cut, a 20% one does not)\n";
  }

  // --- question 3: context-aware view ---
  {
    trace::OfflineOptions opts;
    opts.stg_mode = core::StgMode::kContextAware;
    trace::OfflineSession session(trace, opts);
    std::cout << "[context-aware STG] fragments: "
              << session.fragments_recorded() << ", regions: "
              << session.locate(core::FragmentKind::kComputation).size()
              << "\n";
  }
  std::cout << "\nall three analyses came from one recorded trace — the "
               "application never ran again.\n";
  return 0;
}
