// Quickstart: attach Vapro to a parallel application, inject a disturbance,
// and read the detection + diagnosis results.
//
//   $ ./examples/quickstart
//
// Walks through the full public API surface:
//   1. configure the simulated cluster (ranks, topology, noise),
//   2. attach a VaproSession,
//   3. run an application (NPB-CG here),
//   4. inspect the heat map, located variance regions, and the
//      progressive diagnosis.
#include <iostream>

#include "src/apps/npb.hpp"
#include "src/core/vapro.hpp"
#include "src/sim/runtime.hpp"

int main() {
  using namespace vapro;

  // 1. A 32-rank job on 8-core nodes.  Midway through, the node hosting
  //    ranks 8-15 gets a co-scheduled CPU hog (like `stress`).
  sim::SimConfig config;
  config.ranks = 32;
  config.cores_per_node = 8;
  config.seed = 1;
  sim::NoiseSpec hog;
  hog.kind = sim::NoiseKind::kCpuContention;
  hog.node = 1;
  hog.t_begin = 0.4;
  hog.t_end = 1.2;
  hog.magnitude = 1.0;  // one competing process → 50% CPU share
  config.noises.push_back(hog);
  sim::Simulator simulator(config);

  // 2. Attach the tool.  Defaults follow the paper: context-free STG, 5%
  //    clustering threshold, 0.85 variance threshold, progressive
  //    diagnosis enabled.
  core::VaproOptions options;
  options.window_seconds = 0.2;  // reporting period
  core::VaproSession vapro(simulator, options);

  // 3. Run the application.  Programs are coroutines issuing MPI-like
  //    calls; apps::cg reproduces NPB-CG's communication structure.
  apps::NpbParams params;
  params.iters = 80;
  auto result = simulator.run(apps::cg(params));

  // 4. Results.
  std::cout << "run finished: " << result.makespan << " virtual seconds, "
            << vapro.fragments_recorded() << " fragments recorded\n\n";

  std::cout << vapro.computation_map().render_ascii(16, 70) << '\n';
  std::cout << vapro.detection_summary() << '\n';
  std::cout << vapro.diagnosis().summary() << '\n';

  double total = 0;
  for (double t : result.finish_times) total += t;
  std::cout << "\ndetection coverage: " << 100 * vapro.coverage(total)
            << "%\n";
  return 0;
}
