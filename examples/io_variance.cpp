// Scenario: a phylogenetics pipeline (RAxML-like) has wildly varying run
// times between identical submissions.  Vapro shows computation and
// communication are stable but rank 0's IO is not — it merges many small
// files on the shared filesystem.  A small file buffer fixes it
// (the paper's §6.5.3 case study).
#include <iostream>

#include "src/apps/solvers.hpp"
#include "src/core/vapro.hpp"
#include "src/sim/runtime.hpp"
#include "src/stats/descriptive.hpp"

int main() {
  using namespace vapro;

  auto run_once = [](bool buffered, std::uint64_t seed) {
    sim::SimConfig config;
    config.ranks = 64;
    config.cores_per_node = 16;
    config.seed = seed;
    // The shared filesystem periodically serves other tenants.
    sim::NoiseSpec fs_noise;
    fs_noise.kind = sim::NoiseKind::kIoInterference;
    fs_noise.t_begin = 0.1 + 0.05 * static_cast<double>(seed % 7);
    fs_noise.t_end = fs_noise.t_begin + 0.5;
    fs_noise.magnitude = 8.0;
    config.noises.push_back(fs_noise);
    sim::Simulator simulator(config);

    apps::RaxmlParams params;
    params.io_rounds = 300;
    params.compute_iters = 150;
    params.buffered = buffered;
    return simulator.run(apps::raxml(params)).makespan;
  };

  // First: what does Vapro say about one slow run?
  {
    sim::SimConfig config;
    config.ranks = 64;
    config.cores_per_node = 16;
    config.seed = 7;
    sim::NoiseSpec fs_noise;
    fs_noise.kind = sim::NoiseKind::kIoInterference;
    fs_noise.t_begin = 0.1;
    fs_noise.t_end = 0.6;
    fs_noise.magnitude = 8.0;
    config.noises.push_back(fs_noise);
    sim::Simulator simulator(config);
    core::VaproOptions options;
    options.window_seconds = 0.2;
    core::VaproSession vapro(simulator, options);
    apps::RaxmlParams params;
    params.io_rounds = 300;
    params.compute_iters = 150;
    simulator.run(apps::raxml(params));

    std::cout << "computation regions: "
              << vapro.locate(core::FragmentKind::kComputation).size()
              << ", communication regions: "
              << vapro.locate(core::FragmentKind::kCommunication).size()
              << ", IO regions: "
              << vapro.locate(core::FragmentKind::kIo).size() << "\n";
    for (const auto& r : vapro.locate(core::FragmentKind::kIo)) {
      std::cout << "  IO variance on ranks " << r.rank_lo << "-" << r.rank_hi
                << " (mean normalized performance " << r.mean_perf << ")\n";
    }
    std::cout << "→ only rank 0 touches the filesystem; its small-file "
                 "merge is at the mercy of shared-FS interference.\n\n";
  }

  // Then: quantify the fix across repeated submissions.
  std::vector<double> plain, buffered;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    plain.push_back(run_once(false, seed));
    buffered.push_back(run_once(true, seed));
  }
  std::cout << "8 submissions without buffer: mean "
            << stats::mean(plain) << " s, stddev " << stats::stddev(plain)
            << " s\n8 submissions with buffer:    mean "
            << stats::mean(buffered) << " s, stddev "
            << stats::stddev(buffered) << " s\n"
            << "stddev reduction: "
            << 100 * (1 - stats::stddev(buffered) / stats::stddev(plain))
            << "% — the paper reports 73.5% with a 17.5% speedup.\n";
  return 0;
}
