// Sustained throughput of the segmented journal store
// (src/obs/journal_segment): events/sec written through the sink in both
// framings (length+CRC binary vs JSONL debug), events/sec read back from a
// rotated segment directory, on-disk bytes/event, and offline compaction
// rate.  The numbers bound how much conclusion traffic a production run
// can journal inside the paper's <1% overhead budget (PAPER.md §1), and
// BENCH_journal.json is the committed baseline successive commits diff
// against (scripts/journal_schema.py validates the shape in CI).
//
//   ./build/bench/journal_throughput --json BENCH_journal.json
//
// The event mix is deterministic (no Rng, no wall-clock content): a
// variance_region sweep cycling region kinds and revisions with a
// quality_cell/quality snapshot every 64 events — the same shapes the
// live pipeline emits, and enough supersession that compaction has real
// work to do.
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/obs/journal.hpp"
#include "src/obs/journal_segment.hpp"
#include "src/util/table.hpp"

namespace vapro {
namespace {

constexpr int kReps = 5;
constexpr std::size_t kEvents = 50000;
constexpr const char* kKinds[3] = {"computation", "communication", "io"};

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Emits the deterministic event mix into `journal`.  Every 64th/65th event
// is a quality_cell/quality pair (so each new snapshot supersedes the
// previous one), the rest are variance_region records whose revision rises
// once per 256-event "window" (so compaction keeps only the last sweep).
void emit_mix(obs::Journal& journal, std::size_t events) {
  for (std::size_t i = 0; i < events; ++i) {
    const double vt = 0.001 * static_cast<double>(i);
    const std::int64_t window = static_cast<std::int64_t>(i / 256);
    if (i % 64 == 62) {
      journal.emit("quality_cell", window, vt,
                   {obs::JournalField::str("app", "CG"),
                    obs::JournalField::str("noise", "cpu"),
                    obs::JournalField::num("recall", 0.9),
                    obs::JournalField::num("precision", 0.8)});
    } else if (i % 64 == 63) {
      journal.emit("quality", window, vt,
                   {obs::JournalField::num("recall", 0.9),
                    obs::JournalField::num("precision", 0.8),
                    obs::JournalField::num("cells", std::uint64_t{1})});
    } else {
      journal.emit(
          "variance_region", window, vt,
          {obs::JournalField::str("kind", kKinds[i % 3]),
           obs::JournalField::num("revision",
                                  static_cast<std::uint64_t>(window + 1)),
           obs::JournalField::num("rank_lo", std::uint64_t{0}),
           obs::JournalField::num("rank_hi", std::uint64_t{15}),
           obs::JournalField::num("bin_lo", static_cast<std::uint64_t>(i % 7)),
           obs::JournalField::num("bin_hi",
                                  static_cast<std::uint64_t>(i % 7 + 2)),
           obs::JournalField::num("variance_ratio",
                                  1.0 + 0.001 * static_cast<double>(i % 97)),
           obs::JournalField::num("impact_seconds",
                                  0.25 + 0.01 * static_cast<double>(i % 13))});
    }
  }
}

std::uintmax_t dir_bytes(const std::string& dir) {
  std::uintmax_t total = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir))
    if (entry.is_regular_file()) total += entry.file_size();
  return total;
}

struct FramingResult {
  std::vector<double> write_eps;
  std::vector<double> read_eps;
  double bytes_per_event = 0.0;
  std::size_t segments = 0;
  std::string last_dir;
};

FramingResult run_framing(const std::string& scratch, bool binary) {
  FramingResult res;
  for (int rep = 0; rep < kReps; ++rep) {
    const std::string dir = scratch + "/" + (binary ? "bin" : "jsonl") + "-" +
                            std::to_string(rep);
    std::filesystem::remove_all(dir);
    obs::SegmentOptions seg;
    seg.directory = dir;
    seg.max_segment_bytes = 1u << 20;  // rotation is part of the cost
    seg.binary = binary;

    const auto t0 = std::chrono::steady_clock::now();
    {
      obs::Journal journal;
      obs::JournalSegmentSink sink(seg);
      if (!sink.ok()) {
        std::cerr << "cannot create segment dir " << dir << "\n";
        std::exit(1);
      }
      journal.add_sink(&sink);
      emit_mix(journal, kEvents);
      journal.flush();
      res.segments = sink.segments_opened();
    }
    res.write_eps.push_back(static_cast<double>(kEvents) / seconds_since(t0));

    const auto t1 = std::chrono::steady_clock::now();
    const obs::JournalReadResult read = obs::read_journal_dir(dir);
    if (!read.ok || read.events.size() != kEvents) {
      std::cerr << "read-back failed for " << dir << ": " << read.error
                << " (" << read.events.size() << " events)\n";
      std::exit(1);
    }
    res.read_eps.push_back(static_cast<double>(kEvents) / seconds_since(t1));
    res.bytes_per_event =
        static_cast<double>(dir_bytes(dir)) / static_cast<double>(kEvents);
    res.last_dir = dir;
  }
  return res;
}

}  // namespace
}  // namespace vapro

int main(int argc, char** argv) {
  using namespace vapro;
  bench::JsonReport report("journal_throughput", argc, argv);
  bench::print_header("Journal segment store sustained throughput",
                      "production-run deployment budget, §1 / §5");

  const std::string scratch = "/tmp/vapro_journal_bench";
  std::filesystem::remove_all(scratch);

  const FramingResult jsonl = run_framing(scratch, /*binary=*/false);
  const FramingResult binary = run_framing(scratch, /*binary=*/true);

  // Offline compaction over the binary directory of the last rep: the
  // event mix leaves one live region sweep + one live quality snapshot,
  // so most of the stream is superseded.
  std::vector<double> compact_eps;
  double drop_ratio = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    const std::string out =
        scratch + "/compacted-" + std::to_string(rep) + ".vjseg";
    obs::CompactionStats stats;
    std::string error;
    const auto t0 = std::chrono::steady_clock::now();
    if (!obs::compact_journal(binary.last_dir, out, &stats, &error)) {
      std::cerr << "compaction failed: " << error << "\n";
      return 1;
    }
    compact_eps.push_back(static_cast<double>(kEvents) / seconds_since(t0));
    drop_ratio = static_cast<double>(stats.dropped) /
                 static_cast<double>(stats.kept + stats.dropped);
  }

  util::TextTable table({"series", "median", "p95"});
  auto add = [&](const std::string& name, const std::vector<double>& s,
                 int precision) {
    report.record(name, s);
    table.add_row({name, util::fmt(bench::percentile(s, 0.5), precision),
                   util::fmt(bench::percentile(s, 0.95), precision)});
  };
  add("jsonl_write_events_per_sec", jsonl.write_eps, 0);
  add("binary_write_events_per_sec", binary.write_eps, 0);
  add("jsonl_read_events_per_sec", jsonl.read_eps, 0);
  add("binary_read_events_per_sec", binary.read_eps, 0);
  add("jsonl_bytes_per_event", {jsonl.bytes_per_event}, 1);
  add("binary_bytes_per_event", {binary.bytes_per_event}, 1);
  add("segments_per_run", {static_cast<double>(binary.segments)}, 0);
  add("compact_events_per_sec", compact_eps, 0);
  add("compact_drop_ratio", {drop_ratio}, 3);
  table.print(std::cout);

  // Sanity bars (loose: this is a baseline recorder, not a perf gate — the
  // committed JSON diff is the regression signal).  The binary frame is
  // len+CRC (8 bytes) where JSONL spends a newline (1), so integrity
  // costs exactly 7 bytes/event plus the amortized per-segment magic;
  // anything beyond 8 means the framing grew.  And compaction must
  // actually drop superseded events.
  if (binary.bytes_per_event > jsonl.bytes_per_event + 8.0) {
    std::cout << "BAR FAILED: binary framing overhead exceeds its 8-byte "
                 "header ("
              << binary.bytes_per_event << " vs " << jsonl.bytes_per_event
              << " bytes/event)\n";
    return 1;
  }
  if (drop_ratio <= 0.5) {
    std::cout << "BAR FAILED: compaction dropped only " << drop_ratio * 100
              << "% of a mostly-superseded stream\n";
    return 1;
  }
  std::cout << "bars OK: binary framing overhead <= 8 bytes/event, "
               "compaction drops "
            << util::fmt(drop_ratio * 100, 1) << "% of the mix\n";
  return report.write() ? 0 : 1;
}
