// Ablation study of Vapro's design knobs (the choices DESIGN.md calls
// out).  One standard scenario — 64-rank CG with a one-second CPU hog on
// node 1 — analyzed under varying parameters:
//
//   1. clustering threshold (paper default 5%)
//   2. region-growing variance threshold (default 0.85)
//   3. heat-map bin width
//   4. sampling policy (none / exponential backoff / skip-short)
//   5. context-free vs context-aware STG
//   6. workload-vector proxy metrics (TOT_INS vs TOT_INS+MEM_REFS)
#include "bench/bench_common.hpp"
#include "src/apps/npb.hpp"
#include "src/core/vapro.hpp"

using namespace vapro;

namespace {

sim::SimConfig scenario() {
  sim::SimConfig cfg;
  cfg.ranks = 64;
  cfg.cores_per_node = 16;
  cfg.seed = 64;
  cfg.noises.push_back(bench::cpu_noise(1, 0.4, 1.4, 1.0));
  return cfg;
}

struct Outcome {
  std::size_t regions = 0;
  double top_loss_pct = 0.0;
  double top_duration = 0.0;
  double coverage_pct = 0.0;
  std::uint64_t fragments = 0;
  double makespan = 0.0;
};

Outcome run_with(core::VaproOptions opts) {
  sim::Simulator simulator(scenario());
  core::VaproSession session(simulator, opts);
  apps::NpbParams p;
  p.iters = 60;
  p.scale = 2.0;
  auto result = simulator.run(apps::cg(p));
  Outcome out;
  out.makespan = result.makespan;
  out.fragments = session.fragments_recorded();
  out.coverage_pct =
      100.0 * session.coverage(bench::total_execution_seconds(result));
  auto regions = session.locate(core::FragmentKind::kComputation);
  out.regions = regions.size();
  if (!regions.empty()) {
    out.top_loss_pct = 100.0 * (1.0 - regions.front().mean_perf);
    out.top_duration = regions.front().time_hi(opts.bin_seconds) -
                       regions.front().time_lo(opts.bin_seconds);
  }
  return out;
}

void print_outcome(util::TextTable& table, const std::string& label,
                   const Outcome& o) {
  table.add_row({label, std::to_string(o.regions),
                 util::fmt(o.top_loss_pct, 1), util::fmt(o.top_duration, 2),
                 util::fmt(o.coverage_pct, 1), std::to_string(o.fragments)});
}

}  // namespace

int main() {
  bench::print_header("Ablations — Vapro design knobs",
                      "DESIGN.md ablation list (ground truth: 50% loss, "
                      "1.0 s, ranks 16-31)");

  {
    std::cout << "\n[1] clustering threshold (paper: 5%)\n";
    util::TextTable t({"threshold", "regions", "top loss%", "dur(s)", "cov%",
                       "fragments"});
    for (double th : {0.002, 0.05, 0.40, 1.20}) {
      core::VaproOptions opts;
      opts.cluster.threshold = th;
      print_outcome(t, util::fmt(100 * th, 1) + "%", run_with(opts));
    }
    t.print(std::cout);
    std::cout << "detection is robust across thresholds here because CG's "
                 "workload classes sit far apart (>2x) and PMU jitter is "
                 "~0.3% — only sub-jitter thresholds start shaving coverage. "
                 "micro_core's BM_ThresholdAblation shows the cluster-count "
                 "blow-up at 1% on closely spaced classes.\n";
  }

  {
    std::cout << "\n[2] variance threshold for region growing (paper: 0.85)\n";
    util::TextTable t({"threshold", "regions", "top loss%", "dur(s)", "cov%",
                       "fragments"});
    for (double th : {0.5, 0.7, 0.85, 0.95, 0.995}) {
      core::VaproOptions opts;
      opts.variance_threshold = th;
      print_outcome(t, util::fmt(th, 3), run_with(opts));
    }
    t.print(std::cout);
    std::cout << "low thresholds miss moderate variance; near-1 thresholds "
                 "flag normal jitter as variance (region count explodes).\n";
  }

  {
    std::cout << "\n[3] heat-map bin width\n";
    util::TextTable t({"bin(s)", "regions", "top loss%", "dur(s)", "cov%",
                       "fragments"});
    for (double bin : {0.05, 0.1, 0.25, 0.5, 1.0}) {
      core::VaproOptions opts;
      opts.bin_seconds = bin;
      print_outcome(t, util::fmt(bin, 2), run_with(opts));
    }
    t.print(std::cout);
    std::cout << "coarse bins dilute the noise window across quiet time — "
                 "the reported duration stretches and loss shrinks.\n";
  }

  {
    std::cout << "\n[4] sampling policy (§3.5/§5)\n";
    util::TextTable t({"policy", "regions", "top loss%", "dur(s)", "cov%",
                       "fragments"});
    core::VaproOptions none;
    print_outcome(t, "none", run_with(none));
    core::VaproOptions backoff;
    backoff.sampling = core::SamplingPolicy::kBackoff;
    backoff.sampling_warmup = 32;
    print_outcome(t, "backoff", run_with(backoff));
    core::VaproOptions skip;
    skip.sampling = core::SamplingPolicy::kSkipShort;
    skip.sampling_warmup = 32;
    print_outcome(t, "skip-short", run_with(skip));
    t.print(std::cout);
    std::cout << "skip-short keeps time-weighted coverage far better than "
                 "backoff at similar data reduction — the paper's heuristic.\n";
  }

  {
    std::cout << "\n[5] STG context mode (Table 1's CA vs CF)\n";
    util::TextTable t({"mode", "regions", "top loss%", "dur(s)", "cov%",
                       "fragments"});
    core::VaproOptions cf;
    print_outcome(t, "context-free", run_with(cf));
    core::VaproOptions ca;
    ca.stg_mode = core::StgMode::kContextAware;
    print_outcome(t, "context-aware", run_with(ca));
    t.print(std::cout);
  }

  {
    std::cout << "\n[6] workload-vector proxies (§3.4: extra PMU metrics)\n";
    util::TextTable t({"proxies", "regions", "top loss%", "dur(s)", "cov%",
                       "fragments"});
    core::VaproOptions ins_only;
    print_outcome(t, "TOT_INS", run_with(ins_only));
    core::VaproOptions with_mem;
    with_mem.cluster.proxies = {pmu::Counter::kTotIns,
                                pmu::Counter::kMemRefs};
    with_mem.pmu_budget = 5;  // MEM_REFS rides along with stage counters
    print_outcome(t, "TOT_INS+MEM_REFS", run_with(with_mem));
    t.print(std::cout);
    std::cout << "extra metrics sharpen workload identity at the cost of a "
                 "PMU slot (needs budget ≥ 5 alongside stage-1 counters).\n";
  }
  return 0;
}
