// Figure 1: repeated executions of NPB-CG on the same group of nodes show
// large run-to-run time variability.
//
// The paper submits the same 256-process CG job 100 times on Tianhe-2A and
// plots the spread (≈12.5–25 s).  Here each submission draws a random
// environmental condition — occasionally a co-scheduled job steals CPU on
// some node, occasionally a neighbor saturates memory bandwidth — exactly
// the unpredictable sharing a production machine exhibits.
#include <algorithm>

#include "bench/bench_common.hpp"
#include "src/apps/npb.hpp"
#include "src/core/multirun.hpp"
#include "src/stats/descriptive.hpp"
#include "src/util/rng.hpp"

int main() {
  using namespace vapro;
  bench::print_header("Fig 1 — run-to-run variability of repeated CG jobs",
                      "Figure 1: 100 repeated 256-process CG executions");

  constexpr int kRuns = 100;
  constexpr int kRanks = 256;
  util::Rng lottery(2026);
  std::vector<double> times;
  times.reserve(kRuns);

  apps::NpbParams p;
  p.iters = 25;
  p.warmup_iters = 2;
  p.scale = 2.0;

  for (int run = 0; run < kRuns; ++run) {
    sim::SimConfig cfg;
    cfg.ranks = kRanks;
    cfg.cores_per_node = 24;
    cfg.seed = 1000 + static_cast<std::uint64_t>(run);
    // Production-machine lottery: each submission may share nodes with
    // other tenants.
    const int nodes = (kRanks + cfg.cores_per_node - 1) / cfg.cores_per_node;
    if (lottery.bernoulli(0.45)) {
      const double t0 = lottery.uniform(0.0, 0.3);
      cfg.noises.push_back(bench::cpu_noise(
          static_cast<int>(lottery.uniform_u64(static_cast<std::uint64_t>(nodes))),
          t0, t0 + lottery.uniform(0.05, 0.25), lottery.uniform(0.4, 1.0)));
    }
    if (lottery.bernoulli(0.5)) {
      const double t0 = lottery.uniform(0.0, 0.3);
      cfg.noises.push_back(bench::memory_noise(
          static_cast<int>(lottery.uniform_u64(static_cast<std::uint64_t>(nodes))),
          t0, t0 + lottery.uniform(0.1, 0.4), lottery.uniform(1.3, 2.5)));
    }
    sim::Simulator simulator(cfg);
    times.push_back(simulator.run(apps::cg(p)).makespan);
  }

  bench::print_series("time per submission (s)", times, 3, 50);
  const double lo = stats::min(times), hi = stats::max(times);
  std::cout << "runs: " << kRuns << "  min: " << util::fmt(lo, 3)
            << " s  max: " << util::fmt(hi, 3)
            << " s  spread: " << util::fmt(hi / lo, 2) << "x\n"
            << "mean: " << util::fmt(stats::mean(times), 3)
            << " s  stddev: " << util::fmt(stats::stddev(times), 3)
            << " s  CV: " << util::fmt(100 * stats::coeff_variation(times), 1)
            << "%\n"
            << "paper shape: same-node resubmissions vary by roughly 2x "
               "(12.5-25 s); expect a comparable spread ratio here.\n";

  // Vapro's answer to Fig 1's question: with a cross-run baseline, slow
  // submissions are flagged online even when every rank inside them is
  // uniformly slow (§1: variance "between executions").
  std::cout << "\ncross-run detection on 12 resubmissions "
               "(core::MultiRunStudy):\n";
  core::VaproOptions vopts;
  vopts.window_seconds = 0.1;
  core::MultiRunStudy study(vopts);
  util::Rng relottery(99);
  apps::NpbParams small = p;
  small.iters = 12;
  for (int run = 0; run < 12; ++run) {
    sim::SimConfig cfg;
    cfg.ranks = 64;
    cfg.cores_per_node = 16;
    cfg.seed = 5000 + static_cast<std::uint64_t>(run);
    if (run % 4 == 3) {  // every 4th submission shares its nodes
      cfg.noises.push_back(bench::memory_noise(-1, 0.0, 1e9, 2.5));
    }
    sim::Simulator simulator(cfg);
    study.execute(simulator, apps::cg(small));
  }
  std::cout << study.summary();
  std::cout << "slow submissions flagged:";
  for (int idx : study.slow_runs()) std::cout << ' ' << idx;
  std::cout << "  (injected: 3, 7, 11)\n";
  return 0;
}
