// Figure 17: 128-process Nekbone with one node whose memory bandwidth is
// degraded (slow/failing DIMM).  Vapro locates the node's ranks; the
// breakdown shows nearly all slowdown is backend bound, essentially all of
// it memory bound (paper: 97.2% backend; replacing the node gave 1.24×).
#include <memory>

#include "bench/bench_common.hpp"
#include "src/apps/solvers.hpp"
#include "src/core/vapro.hpp"

using namespace vapro;

namespace {

struct NekboneRun {
  std::unique_ptr<sim::Simulator> simulator;
  std::unique_ptr<core::VaproSession> session;
  double makespan = 0.0;
};

NekboneRun run_nekbone(bool with_slow_node) {
  sim::SimConfig cfg;
  cfg.ranks = 128;
  cfg.cores_per_node = 24;
  cfg.seed = 17;
  if (with_slow_node) {
    sim::NoiseSpec dimm;
    dimm.kind = sim::NoiseKind::kSlowDram;
    dimm.node = 3;         // ranks 72-95
    dimm.magnitude = 1.4;  // ≈ the paper's 15.5% lower measured bandwidth
    cfg.noises.push_back(dimm);
  }
  NekboneRun run;
  run.simulator = std::make_unique<sim::Simulator>(cfg);
  core::VaproOptions opts;
  opts.window_seconds = 0.3;
  opts.bin_seconds = 0.15;
  run.session = std::make_unique<core::VaproSession>(*run.simulator, opts);
  apps::NekboneParams p;
  p.iters = 400;
  p.scale = 2.0;
  run.makespan = run.simulator->run(apps::nekbone(p)).makespan;
  return run;
}

}  // namespace

int main() {
  bench::print_header("Fig 17 — Nekbone on a node with degraded memory",
                      "Figure 17: 128-process Nekbone, one slow node");

  NekboneRun slow = run_nekbone(true);
  const core::VaproSession& session = *slow.session;

  std::cout << session.computation_map().render_ascii(32, 70) << '\n'
            << session.detection_summary() << '\n';

  auto regions = session.locate(core::FragmentKind::kComputation);
  if (!regions.empty()) {
    std::cout << "slow ranks located: " << regions[0].rank_lo << "-"
              << regions[0].rank_hi << " (ground truth: 72-95)\n";
  }
  const auto& report = session.diagnosis();
  double backend_share = 0, memory_share = 0, dram_share = 0;
  for (const auto& f : report.findings) {
    if (f.id == core::FactorId::kBackend) backend_share = f.share;
    if (f.id == core::FactorId::kMemoryBound) memory_share = f.share;
    if (f.id == core::FactorId::kDramBound) dram_share = f.share;
  }
  std::cout << report.summary() << "\n\n"
            << "breakdown: backend bound explains "
            << util::fmt(100 * backend_share, 1)
            << "% of the slowdown (paper: 97.2%), memory bound "
            << util::fmt(100 * memory_share, 1) << "%, DRAM bound "
            << util::fmt(100 * dram_share, 1) << "%\n";

  // "Replacing the problematic node": rerun without the bad DIMM.
  NekboneRun fixed = run_nekbone(false);
  std::cout << "execution time with slow node: " << util::fmt(slow.makespan, 3)
            << " s; after replacing the node: " << util::fmt(fixed.makespan, 3)
            << " s → speedup " << util::fmt(slow.makespan / fixed.makespan, 2)
            << "x (paper: 1.24x)\n";
  return 0;
}
