// Figure 11 (+ the §4.2 formula-vs-OLS verification): variance breakdown of
// fixed-workload CG fragments under concurrent computing noise and memory
// contention.
//
// Every fragment becomes a point (backend-bound excess, suspension excess)
// relative to the normal-fragment average; the marker is the major factor:
// BE (memory contention inflates backend-bound stalls), SP (preemption
// inflates suspension), BE+SP, or Normal.  The paper's example reports the
// formula-based factor shares (89.4% / 4.9%) consistent with the
// OLS-estimated ones (86.6% / 3.1%).
#include <cmath>

#include "bench/bench_common.hpp"
#include "src/apps/npb.hpp"
#include "src/core/diagnosis.hpp"
#include "src/core/vapro.hpp"
#include "src/util/csv.hpp"

using namespace vapro;

int main() {
  bench::print_header(
      "Fig 11 — variance breakdown scatter (backend vs suspension)",
      "Figure 11 + §4.2: 16-process CG, computing noise + memory contention");

  sim::SimConfig cfg;
  cfg.ranks = 16;
  cfg.cores_per_node = 16;
  cfg.seed = 4242;
  // Concurrent noises on the application's node (the Fig 5 setup).
  cfg.noises.push_back(bench::cpu_noise(0, 0.10, 0.60, 1.0));
  cfg.noises.push_back(bench::memory_noise(0, 0.35, 0.90, 3.5));
  sim::Simulator simulator(cfg);

  const pmu::MachineParams machine = cfg.machine;
  int n_be = 0, n_sp = 0, n_both = 0, n_normal = 0;
  double contrib_be = 0.0, contrib_sp = 0.0, total_var = 0.0;
  util::CsvWriter csv("/tmp/vapro_fig11_scatter.csv");
  csv.write_row(std::vector<std::string>{"backend_excess_s",
                                         "suspension_excess_s", "class"});
  core::OlsQuantification ols_result;
  double formula_be = 0.0, formula_sp = 0.0;

  core::VaproOptions opts;
  opts.window_seconds = 1e6;  // single global window: all fragments at once
  opts.run_diagnosis = false; // hold the PMU at stage-1 counters
  opts.window_observer = [&](const core::Stg& stg,
                             const core::ClusteringResult& clusters) {
    const std::vector<core::FactorId> factors = {core::FactorId::kBackend,
                                                 core::FactorId::kSuspension};
    const core::Cluster* biggest = nullptr;
    for (const auto& c : clusters.clusters) {
      if (c.kind != core::FragmentKind::kComputation || c.rare) continue;
      if (c.members.size() < 30 || c.seed_norm <= 0) continue;
      if (!biggest || c.members.size() > biggest->members.size()) biggest = &c;

      // Reference values from the normal fragments of this cluster.
      double fastest = 1e30;
      for (std::size_t idx : c.members)
        fastest = std::min(fastest, stg.fragment(idx).duration());
      double ref_be = 0, ref_sp = 0;
      int normals = 0;
      for (std::size_t idx : c.members) {
        const auto& f = stg.fragment(idx);
        if (f.duration() > 1.2 * fastest) continue;
        ref_be += core::factor_value(core::FactorId::kBackend, f.counters(),
                                     machine);
        ref_sp += core::factor_value(core::FactorId::kSuspension, f.counters(),
                                     machine);
        ++normals;
      }
      if (normals == 0) continue;
      ref_be /= normals;
      ref_sp /= normals;

      for (std::size_t idx : c.members) {
        const auto& f = stg.fragment(idx);
        const double be = core::factor_value(core::FactorId::kBackend,
                                             f.counters(), machine) - ref_be;
        const double sp = core::factor_value(core::FactorId::kSuspension,
                                             f.counters(), machine) - ref_sp;
        const double slowdown = f.duration() - fastest;
        const bool abnormal = f.duration() > 1.2 * fastest;
        std::string cls = "Normal";
        if (abnormal) {
          total_var += slowdown;
          if (be > 0) contrib_be += be;
          if (sp > 0) contrib_sp += sp;
          const bool be_major = be > 0.25 * slowdown;
          const bool sp_major = sp > 0.25 * slowdown;
          if (be_major && sp_major) {
            cls = "BE+SP";
            ++n_both;
          } else if (be_major) {
            cls = "BE";
            ++n_be;
          } else if (sp_major) {
            cls = "SP";
            ++n_sp;
          }
        } else {
          ++n_normal;
        }
        csv.write_row(std::vector<std::string>{util::fmt(be, 6),
                                               util::fmt(sp, 6), cls});
      }
    }
    if (biggest) {
      // §4.2 check on the largest cluster: OLS vs formula attribution.
      ols_result = core::ols_quantify(stg, biggest->members, factors, machine);
      double fastest = 1e30;
      for (std::size_t idx : biggest->members)
        fastest = std::min(fastest, stg.fragment(idx).duration());
      double ref_be = 0, ref_sp = 0;
      int normals = 0;
      for (std::size_t idx : biggest->members) {
        const auto& f = stg.fragment(idx);
        if (f.duration() > 1.2 * fastest) continue;
        ref_be += core::factor_value(core::FactorId::kBackend, f.counters(), machine);
        ref_sp += core::factor_value(core::FactorId::kSuspension, f.counters(), machine);
        ++normals;
      }
      ref_be /= std::max(1, normals);
      ref_sp /= std::max(1, normals);
      for (std::size_t idx : biggest->members) {
        const auto& f = stg.fragment(idx);
        formula_be += std::max(
            0.0, core::factor_value(core::FactorId::kBackend, f.counters(), machine) - ref_be);
        formula_sp += std::max(
            0.0, core::factor_value(core::FactorId::kSuspension, f.counters(), machine) - ref_sp);
      }
    }
  };
  core::VaproSession session(simulator, opts);

  apps::NpbParams p;
  p.iters = 60;
  p.warmup_iters = 1;
  p.scale = 1.5;
  simulator.run(apps::cg(p));

  util::TextTable table({"fragment class", "count"});
  table.add_row({"BE major (memory contention)", std::to_string(n_be)});
  table.add_row({"SP major (preemption)", std::to_string(n_sp)});
  table.add_row({"BE+SP", std::to_string(n_both)});
  table.add_row({"Normal", std::to_string(n_normal)});
  table.print(std::cout);
  std::cout << "scatter points written to /tmp/vapro_fig11_scatter.csv\n";

  if (total_var > 0) {
    std::cout << "\nfactor contribution shares (formula-based):\n"
              << "  backend bound: " << util::fmt(100 * contrib_be / total_var, 1)
              << "%   suspension: " << util::fmt(100 * contrib_sp / total_var, 1)
              << "%\n";
  }
  if (ols_result.ok) {
    const double ols_be = ols_result.estimates[0].total_seconds;
    const double ols_sp = ols_result.estimates[1].total_seconds;
    std::cout << "§4.2 OLS estimates on the largest cluster (R²="
              << util::fmt(ols_result.r_squared, 3) << "):\n"
              << "  backend bound: " << util::fmt(ols_be, 4) << " s (p="
              << util::fmt(ols_result.estimates[0].p_value, 4)
              << ")  vs formula excess " << util::fmt(formula_be, 4) << " s\n"
              << "  suspension:    " << util::fmt(ols_sp, 4) << " s (p="
              << util::fmt(ols_result.estimates[1].p_value, 4)
              << ")  vs formula excess " << util::fmt(formula_sp, 4) << " s\n"
              << "paper shape: the two methods agree (89.4%/4.9% vs "
                 "86.6%/3.1% in the paper's run).\n";
  }
  return 0;
}
