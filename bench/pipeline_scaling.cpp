// Staged-pipeline scaling: windows/sec of the analysis server across
// analysis-thread counts (1/2/4) and pipeline depths (1/2), on a
// clustering-dominant synthetic workload.
//
// Guards the concurrency PR's acceptance bar: 4 analysis threads at
// pipeline depth 2 must reach >= 2x the windows/sec of the fully serial
// configuration (1 thread, depth 1).  Depth 2 overlaps the producer's
// window assembly ("drain") with the worker's analysis; extra threads
// split the per-window clustering across STG edges/vertices.  The outputs
// are byte-identical in every cell of the grid — only throughput moves —
// which tool_vapro_stress_equivalence proves separately.
//
// Beyond throughput, each cell reports where the shard pool's time went:
// per-lane busy-seconds series, their total/max, and the imbalance ratio
// (max lane busy / mean lane busy — 1.0 is a perfect split), so a scaling
// regression is attributable to skewed sharding vs hand-off stalls from
// the same JSON.  The 2x bar is enforced only on hosts with >= 4
// *physical* cores (SMT siblings share execution units and cannot honor
// it); elsewhere the grid and JSON are informational.
//
//   pipeline_scaling [--json PATH]    (scripts/bench.sh -> BENCH_pipeline.json)
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/core/server.hpp"
#include "src/core/stg.hpp"
#include "src/obs/context.hpp"
#include "src/util/rng.hpp"
#include "src/util/table.hpp"

namespace {

using namespace vapro;

// Clustering-dominant shape: many call sites -> many STG edge/vertex work
// items for the thread pool, many fragments per item so each is worth
// parallelizing, diagnosis off so clustering dominates the window.
constexpr int kRanks = 64;
constexpr int kSites = 40;
constexpr int kReps = 24;
constexpr int kWindows = 10;
constexpr double kWindowSeconds = 0.25;

// Serial (1 thread, depth 1) windows/sec median measured on the reference
// machine immediately BEFORE the SoA fragment-columns layout landed, same
// workload constants as above.  The emitted `soa_speedup` series is this
// run's t1/d1 median over that figure: the layout change must pay for
// itself before any threading, per the SoA PR's acceptance bar.  The
// ratio is informational by default (cross-machine medians are not
// comparable); --gate-soa turns it into a hard >= 1.0 bar for same-machine
// A/B runs.
constexpr double kPreSoaT1Median = 23.878522049766335;

// One window of synthetic client data (the vapro_stress generator shape,
// chaos-free): per rank, `kReps` loops over the site ring, an edge
// fragment before each invocation and a vertex fragment for it.  Built on
// the producer thread inside the timed region — this IS the drain work the
// pipeline overlaps with analysis.
core::FragmentBatch make_window(int window, util::Rng& rng) {
  core::FragmentBatch batch;
  std::vector<core::StateKey> keys(kSites);
  for (int s = 0; s < kSites; ++s) {
    sim::InvocationInfo info;
    info.site = static_cast<sim::CallSiteId>(100 + s);
    info.kind = s % 3 == 2 ? sim::OpKind::kFileWrite : sim::OpKind::kAllreduce;
    keys[static_cast<std::size_t>(s)] =
        core::make_state_key(core::StgMode::kContextFree, info);
    batch.new_states.push_back(info);
  }

  const int steps = kSites * kReps;
  const double step_seconds = kWindowSeconds / (steps + 1);
  batch.fragments.reserve(
      static_cast<std::size_t>(kRanks) * static_cast<std::size_t>(steps) * 2);
  for (int rank = 0; rank < kRanks; ++rank) {
    core::StateKey prev = core::kStartState;
    double t = window * kWindowSeconds;
    for (int step = 0; step < steps; ++step) {
      const int s = step % kSites;
      const core::StateKey key = keys[static_cast<std::size_t>(s)];

      core::Fragment comp;
      comp.kind = core::FragmentKind::kComputation;
      comp.rank = rank;
      comp.from = prev;
      comp.to = key;
      comp.start_time = t;
      comp.end_time = t + step_seconds * 0.7 * rng.uniform(0.98, 1.02);
      comp.counters[pmu::Counter::kTotIns] = 1e6 * (1 + s);
      batch.fragments.push_back(comp);
      t = comp.end_time;

      core::Fragment inv;
      inv.op = s % 3 == 2 ? sim::OpKind::kFileWrite : sim::OpKind::kAllreduce;
      inv.kind = s % 3 == 2 ? core::FragmentKind::kIo
                            : core::FragmentKind::kCommunication;
      inv.rank = rank;
      inv.from = key;
      inv.to = key;
      inv.start_time = t;
      inv.end_time = t + step_seconds * 0.3 * rng.uniform(0.98, 1.02);
      // Per-rank workload vectors on a constant-norm circle: every rank's
      // (bytes, peer) pair has the same magnitude but a distinct angle, so
      // the norm-sorted sweep must distance-check the whole same-norm run
      // for each seed — the worst case the threaded clustering speeds up.
      const double radius = 4096.0 * (1 + s);
      const double angle =
          0.08 + 1.45 * std::fmod(0.61803398875 * (rank + 1), 1.0);
      inv.args.bytes = radius * std::cos(angle);
      inv.args.peer = static_cast<int>(radius * std::sin(angle));
      inv.args.fd = s % 3 == 2 ? 3 : -1;
      batch.fragments.push_back(inv);
      t = inv.end_time;
      prev = key;
    }
  }
  return batch;
}

// One timed pass and where its wall time went: producer seconds spent
// assembling batches (the drain stage), analysis-stage seconds (inline at
// depth 1, on the worker otherwise), and producer seconds blocked on a
// full hand-off queue (backpressure).
struct ConfigRun {
  double windows_per_sec = 0.0;
  double drain_busy_seconds = 0.0;
  double analysis_busy_seconds = 0.0;
  double producer_block_seconds = 0.0;  // push blocked on a full queue
  double consumer_idle_seconds = 0.0;   // worker waited on an empty queue
  double handoff_wait_seconds = 0.0;    // enqueue -> dequeue latency sum
  // Shard-pool occupancy (empty / zero when analysis is serial).
  std::vector<double> shard_lane_busy;  // busy seconds per pool lane
  double shard_busy_seconds = 0.0;      // sum over lanes
  double shard_imbalance = 1.0;         // max lane busy / mean lane busy
  double shard_idle_seconds = 0.0;      // lanes waiting for a fan-out
};

// Physical cores, not SMT siblings: unique (physical id, core id) pairs
// from /proc/cpuinfo.  A hyperthread pair shares execution units, so two
// SMT siblings cannot deliver the 2x the bar demands.  Falls back to
// hardware_concurrency() when the file is absent or lists no core ids.
unsigned physical_cores() {
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::set<std::pair<int, int>> cores;
  int package = 0;
  std::string line;
  while (std::getline(cpuinfo, line)) {
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    if (line.compare(0, 11, "physical id") == 0)
      package = std::atoi(line.c_str() + colon + 1);
    else if (line.compare(0, 7, "core id") == 0)
      cores.emplace(package, std::atoi(line.c_str() + colon + 1));
  }
  if (!cores.empty()) return static_cast<unsigned>(cores.size());
  return std::thread::hardware_concurrency();
}

// One timed pass: construct the server, feed kWindows windows (assembling
// each batch on this thread), sync.
ConfigRun run_config(int threads, int depth) {
  obs::ObsContext ctx;
  core::ServerOptions sopts;
  sopts.analysis_threads = threads;
  sopts.pipeline_depth = depth;
  sopts.run_diagnosis = false;
  sopts.bin_seconds = 0.1;
  // A tight threshold keeps the constant-norm ranks in separate clusters
  // (more seeds -> more sweep passes -> more parallelizable work).
  sopts.cluster.threshold = 0.01;
  const bool debug = std::getenv("PIPE_DEBUG") != nullptr;
  if (debug) sopts.obs = &ctx;
  core::AnalysisServer server(kRanks, sopts);
  util::Rng rng(7);

  ConfigRun run;
  const auto t0 = std::chrono::steady_clock::now();
  for (int w = 0; w < kWindows; ++w) {
    const auto d0 = std::chrono::steady_clock::now();
    core::FragmentBatch batch = make_window(w, rng);
    const double drain =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - d0)
            .count();
    run.drain_busy_seconds += drain;
    server.process_window(std::move(batch), drain);
  }
  server.sync();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const core::PipelineBreakdown breakdown = server.pipeline_breakdown();
  run.analysis_busy_seconds = breakdown.analysis_busy_seconds;
  run.producer_block_seconds = breakdown.queue_stall_seconds;
  run.consumer_idle_seconds = breakdown.consumer_idle_seconds;
  run.handoff_wait_seconds = breakdown.handoff_wait_seconds;
  run.shard_lane_busy = breakdown.shard_busy_seconds;
  double max_lane = 0.0;
  for (double b : run.shard_lane_busy) {
    run.shard_busy_seconds += b;
    max_lane = std::max(max_lane, b);
  }
  const double mean_lane =
      run.shard_lane_busy.empty()
          ? 0.0
          : run.shard_busy_seconds / static_cast<double>(run.shard_lane_busy.size());
  run.shard_imbalance = mean_lane > 0.0 ? max_lane / mean_lane : 1.0;
  run.shard_idle_seconds = breakdown.shard_idle_seconds;
  run.windows_per_sec = kWindows / wall;
  if (debug) {
    double stg = 0, cl = 0, norm = 0, dep = 0, diag = 0;
    for (const auto& wst : ctx.windows().windows()) {
      stg += wst.stg_seconds; cl += wst.cluster_seconds;
      norm += wst.normalize_seconds; dep += wst.deposit_seconds;
      diag += wst.diagnose_seconds;
    }
    std::cout << "t" << threads << "d" << depth << " wall=" << wall
              << " stg=" << stg << " cluster=" << cl << " norm=" << norm
              << " deposit=" << dep << " diag=" << diag << "\n";
  }
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header(
      "Staged-pipeline scaling: windows/sec by threads x depth",
      "repo acceptance: >= 2x serial at 4 threads, depth 2");
  bench::JsonReport json("pipeline_scaling", argc, argv);

  constexpr int kRepeats = 7;
  struct Cell {
    int threads = 0, depth = 0;
    std::vector<double> wps, drain, busy, block, idle, handoff;
    std::vector<double> shard_busy, shard_imbal, shard_idle;
    // lane_busy[k] is lane k's busy-seconds series across repeats.
    std::vector<std::vector<double>> lane_busy;
  };
  std::vector<Cell> grid(6);
  constexpr int kThreads[] = {1, 2, 4, 1, 2, 4};
  constexpr int kDepths[] = {1, 1, 1, 2, 2, 2};
  for (std::size_t i = 0; i < grid.size(); ++i) {
    grid[i].threads = kThreads[i];
    grid[i].depth = kDepths[i];
  }
  // Warm allocator/caches once, then interleave the grid inside each
  // repeat so machine-wide drift hits every cell equally.
  run_config(1, 1);
  for (int r = 0; r < kRepeats; ++r)
    for (Cell& c : grid) {
      const ConfigRun run = run_config(c.threads, c.depth);
      c.wps.push_back(run.windows_per_sec);
      c.drain.push_back(run.drain_busy_seconds);
      c.busy.push_back(run.analysis_busy_seconds);
      c.block.push_back(run.producer_block_seconds);
      c.idle.push_back(run.consumer_idle_seconds);
      c.handoff.push_back(run.handoff_wait_seconds);
      c.shard_busy.push_back(run.shard_busy_seconds);
      c.shard_imbal.push_back(run.shard_imbalance);
      c.shard_idle.push_back(run.shard_idle_seconds);
      if (c.lane_busy.size() < run.shard_lane_busy.size())
        c.lane_busy.resize(run.shard_lane_busy.size());
      for (std::size_t k = 0; k < run.shard_lane_busy.size(); ++k)
        c.lane_busy[k].push_back(run.shard_lane_busy[k]);
    }

  const double serial = bench::percentile(grid[0].wps, 0.5);
  util::TextTable table({"threads", "depth", "windows/sec", "p95", "speedup",
                         "drain_s", "analysis_s", "block_s", "idle_s",
                         "shard_s", "imbal"});
  double best_speedup = 0.0;
  for (Cell& c : grid) {
    const double median = bench::percentile(c.wps, 0.5);
    // p95 of the *time* tail is the 5th percentile of throughput.
    const double p95 = bench::percentile(c.wps, 0.05);
    const double speedup = median / serial;
    best_speedup = std::max(best_speedup, speedup);
    table.add_row({std::to_string(c.threads), std::to_string(c.depth),
                   util::fmt(median, 2), util::fmt(p95, 2),
                   util::fmt(speedup, 2) + "x",
                   util::fmt(bench::percentile(c.drain, 0.5), 4),
                   util::fmt(bench::percentile(c.busy, 0.5), 4),
                   util::fmt(bench::percentile(c.block, 0.5), 4),
                   util::fmt(bench::percentile(c.idle, 0.5), 4),
                   util::fmt(bench::percentile(c.shard_busy, 0.5), 4),
                   util::fmt(bench::percentile(c.shard_imbal, 0.5), 2)});
    const std::string cell =
        "_t" + std::to_string(c.threads) + "_d" + std::to_string(c.depth);
    json.record("windows_per_sec" + cell, c.wps);
    // Per-stage wall-time breakdown: producer batch assembly (drain),
    // analysis-stage occupancy, and the stall split — producer blocked on
    // a full hand-off queue (backpressure: analysis is the bottleneck) vs
    // consumer idle on an empty one (starvation: the drain is), plus the
    // enqueue->dequeue hand-off latency.  At depth 2 drain + analysis
    // overlap, so their sum exceeding the pass wall time is the pipelining
    // working as intended.
    json.record("drain_busy_seconds" + cell, c.drain);
    json.record("analysis_busy_seconds" + cell, c.busy);
    json.record("producer_block_seconds" + cell, c.block);
    json.record("consumer_idle_seconds" + cell, c.idle);
    json.record("handoff_wait_seconds" + cell, c.handoff);
    // Shard-pool occupancy: total busy across lanes, the max/mean lane
    // imbalance, lane idle time, and each lane's own busy series — a bad
    // speedup with imbal near 1.0 points at hand-off stalls, imbal well
    // above 1.0 at skewed edge partitioning.
    if (c.threads > 1) {
      json.record("shard_busy_seconds" + cell, c.shard_busy);
      json.record("shard_imbalance" + cell, c.shard_imbal);
      json.record("shard_idle_seconds" + cell, c.shard_idle);
      for (std::size_t k = 0; k < c.lane_busy.size(); ++k)
        json.record("shard_lane" + std::to_string(k) + "_busy_seconds" + cell,
                    c.lane_busy[k]);
    }
  }
  table.print(std::cout);

  // SoA layout dividend: serial throughput against the committed pre-SoA
  // reference median.  Recorded as a series so the JSON schema stays
  // uniform (reps/median/p95 per series).
  const double soa_speedup = serial / kPreSoaT1Median;
  json.record("soa_speedup", std::vector<double>{soa_speedup});
  std::cout << "\nSoA layout: t1/d1 " << util::fmt(serial, 2)
            << " windows/sec vs pre-SoA reference " << util::fmt(kPreSoaT1Median, 2)
            << " = " << util::fmt(soa_speedup, 2) << "x (informational unless --gate-soa)\n";

  const double target = bench::percentile(grid.back().wps, 0.5) / serial;
  std::cout << "4 threads + depth 2: " << util::fmt(target, 2)
            << "x serial (bar: >= 2x)\n";
  if (!json.write()) return 1;
  bool gate_soa = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--gate-soa") gate_soa = true;
  if (gate_soa && soa_speedup < 1.0) {
    std::cout << "WARNING: SoA serial throughput below the pre-SoA reference\n";
    return 1;
  }
  // The bar measures parallel speedup, so it needs parallel hardware: the
  // worker thread + the producer + >= 2 effective clustering threads — and
  // PHYSICAL cores at that, since SMT siblings share execution units and
  // a 2-core/4-thread host cannot honor 2x.  On smaller hosts (CI
  // containers are often 1-2 vCPUs) the grid and JSON are still reported —
  // scaling there measures scheduler overhead, not the pipeline — but the
  // bar is informational only.
  const unsigned cores = physical_cores();
  if (cores < 4) {
    std::cout << "note: " << cores << " physical core(s) available; the 2x "
              << "bar needs >= 4 — reporting only\n";
    return 0;
  }
  if (target < 2.0) {
    std::cout << "WARNING: pipeline scaling below the 2x bar\n";
    return 1;
  }
  return 0;
}
