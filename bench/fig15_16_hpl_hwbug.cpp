// Figures 15 & 16: detection of the Intel L2-cache hardware erratum with
// HPL, and the huge-page mitigation.
//
// Fig 15 — 36-process HPL on a dual-18-core node; the erratum randomly
// evicts L2 lines on the second socket.  Vapro's inter-process comparison
// of the per-iteration trailing-update clusters exposes the slow socket;
// progressive diagnosis attributes the slowdown to L2/DRAM bound (paper:
// 48.2% / 38.0% of a 96.6%-backend slowdown).
//
// Fig 16 — the erratum fires probabilistically per execution.  1 GB pages
// reduce the frequency/severity of the problematic evictions; over repeated
// runs the GFLOPS distribution tightens (paper: σ of execution time −51.3%).
#include <algorithm>

#include "bench/bench_common.hpp"
#include "src/apps/solvers.hpp"
#include "src/core/vapro.hpp"
#include "src/stats/descriptive.hpp"
#include "src/util/rng.hpp"

using namespace vapro;

namespace {

sim::NoiseSpec l2_bug(double t0, double t1, double magnitude, int core) {
  sim::NoiseSpec s;
  s.kind = sim::NoiseKind::kL2CacheBug;
  s.node = 0;
  s.core = core;
  s.t_begin = t0;
  s.t_end = t1;
  s.magnitude = magnitude;
  return s;
}

apps::HplParams hpl_params() {
  apps::HplParams p;
  p.panels = 120;
  p.scale = 4.0;
  return p;
}

}  // namespace

int main() {
  bench::print_header("Fig 15 — HPL under the L2-cache hardware bug",
                      "Figure 15: 36-process HPL, second socket affected");
  {
    sim::SimConfig cfg;
    cfg.ranks = 36;
    cfg.cores_per_node = 36;  // dual 18-core node
    cfg.seed = 15;
    // The erratum hits the second socket (cores 18-35) for most of the run.
    for (int core = 18; core < 36; ++core)
      cfg.noises.push_back(l2_bug(0.1, 1e9, 12.0, core));
    sim::Simulator simulator(cfg);
    core::VaproOptions opts;
    opts.window_seconds = 0.4;
    opts.bin_seconds = 0.2;
    core::VaproSession session(simulator, opts);
    auto result = simulator.run(apps::hpl(hpl_params()));

    std::cout << session.computation_map().render_ascii(36, 70) << '\n'
              << session.detection_summary() << '\n'
              << session.diagnosis().summary() << "\n\n";

    // Slowdown of the affected socket vs the healthy one.
    double healthy = 0, sick = 0;
    for (int r = 0; r < 18; ++r) healthy += session.computation_map().row_mean(r);
    for (int r = 18; r < 36; ++r) sick += session.computation_map().row_mean(r);
    std::cout << "mean normalized perf: socket 1 = " << util::fmt(healthy / 18, 3)
              << ", socket 2 = " << util::fmt(sick / 18, 3)
              << "  (paper: one abnormal execution ran 22.2% longer)\n"
              << "run took " << util::fmt(result.makespan, 2) << " s virtual\n";
  }

  bench::print_header("Fig 16 — huge pages tighten the HPL distribution",
                      "Figure 16: CDF of HPL performance, 2 MB vs 1 GB pages");
  {
    constexpr int kRuns = 40;
    const double kNominalGflop = 3000.0;  // nominal work per run, GFLOP
    util::Rng lottery(16);
    std::vector<double> gflops_2mb, gflops_1gb, time_2mb, time_1gb;
    auto one_run = [&](double bug_magnitude, std::uint64_t seed) {
      sim::SimConfig cfg;
      cfg.ranks = 36;
      cfg.cores_per_node = 36;
      cfg.seed = seed;
      if (lottery.bernoulli(0.5)) {
        const double t0 = lottery.uniform(0.0, 0.6);
        const double t1 = t0 + lottery.uniform(0.3, 1.2);
        for (int core = 18; core < 36; ++core)
          cfg.noises.push_back(l2_bug(t0, t1, bug_magnitude, core));
      }
      sim::Simulator simulator(cfg);
      return simulator.run(apps::hpl(hpl_params())).makespan;
    };
    for (int run = 0; run < kRuns; ++run) {
      // 2 MB pages: frequent problematic evictions.
      double t = one_run(8.0, 1600 + static_cast<std::uint64_t>(run));
      time_2mb.push_back(t);
      gflops_2mb.push_back(kNominalGflop / t);
      // 1 GB pages: far fewer L2 set conflicts.
      t = one_run(2.0, 1600 + static_cast<std::uint64_t>(run));
      time_1gb.push_back(t);
      gflops_1gb.push_back(kNominalGflop / t);
    }
    std::sort(gflops_2mb.begin(), gflops_2mb.end());
    std::sort(gflops_1gb.begin(), gflops_1gb.end());
    util::TextTable table({"percentile", "2MB pages (GFLOPS)", "1GB pages (GFLOPS)"});
    for (double p : {0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 100.0}) {
      table.add_row({util::fmt(p, 0),
                     util::fmt(stats::percentile(gflops_2mb, p), 1),
                     util::fmt(stats::percentile(gflops_1gb, p), 1)});
    }
    table.print(std::cout);
    const double sd2 = stats::stddev(time_2mb);
    const double sd1 = stats::stddev(time_1gb);
    std::cout << "execution-time stddev: 2MB " << util::fmt(sd2, 4) << " s → 1GB "
              << util::fmt(sd1, 4) << " s  (reduction "
              << util::fmt(100 * (1 - sd1 / sd2), 1)
              << "%; paper: 51.3%)\n"
              << "paper shape: the 2MB curve has a long slow tail on the "
                 "left; 1GB pages lift and flatten it.\n";
  }
  return 0;
}
