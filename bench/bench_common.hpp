// Shared helpers for the experiment-reproduction binaries.  Each bench
// regenerates one table/figure of the paper; output is plain text tables
// plus optional CSV dumps under /tmp for external plotting.
#pragma once

#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <numeric>
#include <string>
#include <vector>

#include "src/sim/runtime.hpp"
#include "src/util/table.hpp"

namespace vapro::bench {

// Sum of per-rank wall times — the denominator of the paper's coverage
// metric ("total execution time").
inline double total_execution_seconds(const sim::RunResult& result) {
  return std::accumulate(result.finish_times.begin(),
                         result.finish_times.end(), 0.0);
}

inline sim::NoiseSpec cpu_noise(int node, double t_begin, double t_end,
                                double magnitude = 1.0) {
  sim::NoiseSpec s;
  s.kind = sim::NoiseKind::kCpuContention;
  s.node = node;
  s.t_begin = t_begin;
  s.t_end = t_end;
  s.magnitude = magnitude;
  return s;
}

inline sim::NoiseSpec memory_noise(int node, double t_begin, double t_end,
                                   double magnitude = 3.0) {
  sim::NoiseSpec s;
  s.kind = sim::NoiseKind::kMemoryBandwidth;
  s.node = node;
  s.t_begin = t_begin;
  s.t_end = t_end;
  s.magnitude = magnitude;
  return s;
}

inline void print_header(const std::string& title, const std::string& paper) {
  std::cout << "\n==========================================================\n"
            << title << "\n(paper reference: " << paper << ")\n"
            << "==========================================================\n";
}

// Interpolation-free percentile: the sample at ceil(p * n) - 1 of the
// sorted series, so "p95 of 20 reps" is a value that actually occurred.
inline double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double rank = p * static_cast<double>(samples.size());
  std::size_t idx = static_cast<std::size_t>(rank);
  if (idx > 0 && static_cast<double>(idx) == rank) --idx;
  return samples[std::min(idx, samples.size() - 1)];
}

// Machine-readable regression output for the bench binaries: pass
// `--json PATH` (or `--json=PATH`) and every recorded series is written as
//
//   {"bench": "...", "results": [
//     {"name": "...", "reps": N, "median": X, "p95": Y}, ...]}
//
// scripts/bench.sh collects these into BENCH_*.json files at the repo root
// so successive commits can be diffed numerically instead of by eyeball.
class JsonReport {
 public:
  JsonReport(std::string bench_name, int argc, char** argv)
      : bench_name_(std::move(bench_name)) {
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
        path_ = argv[i + 1];
      else if (std::strncmp(argv[i], "--json=", 7) == 0)
        path_ = argv[i] + 7;
    }
  }

  bool enabled() const { return !path_.empty(); }

  // Records one metric series; summary statistics are computed here so the
  // bench keeps its raw samples for its own reporting.
  void record(const std::string& name, const std::vector<double>& samples) {
    Entry e;
    e.name = name;
    e.reps = samples.size();
    e.median = percentile(samples, 0.5);
    e.p95 = percentile(samples, 0.95);
    entries_.push_back(std::move(e));
  }

  // Writes the file when --json was given.  Returns false (with a message
  // on stderr) when the write fails; no-op true otherwise.
  bool write() const {
    if (path_.empty()) return true;
    std::ofstream out(path_);
    if (!out) {
      std::cerr << "cannot open --json file " << path_ << "\n";
      return false;
    }
    out.precision(17);
    out << "{\"bench\": \"" << bench_name_ << "\", \"results\": [";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      out << (i ? ", " : "") << "\n  {\"name\": \"" << e.name
          << "\", \"reps\": " << e.reps << ", \"median\": " << e.median
          << ", \"p95\": " << e.p95 << "}";
    }
    out << "\n]}\n";
    if (!out.good()) {
      std::cerr << "write failed for --json file " << path_ << "\n";
      return false;
    }
    std::cout << "bench JSON -> " << path_ << "\n";
    return true;
  }

 private:
  struct Entry {
    std::string name;
    std::size_t reps = 0;
    double median = 0.0;
    double p95 = 0.0;
  };
  std::string bench_name_;
  std::string path_;
  std::vector<Entry> entries_;
};

// One-line numeric series printer, e.g. for Fig 5 / Fig 19 curves.
inline void print_series(const std::string& name,
                         const std::vector<double>& values, int precision = 3,
                         std::size_t max_points = 30) {
  std::cout << name << ":";
  const std::size_t step =
      values.size() > max_points ? values.size() / max_points : 1;
  for (std::size_t i = 0; i < values.size(); i += step)
    std::cout << ' ' << util::fmt(values[i], precision);
  std::cout << '\n';
}

}  // namespace vapro::bench
