// Shared helpers for the experiment-reproduction binaries.  Each bench
// regenerates one table/figure of the paper; output is plain text tables
// plus optional CSV dumps under /tmp for external plotting.
#pragma once

#include <iostream>
#include <numeric>
#include <string>
#include <vector>

#include "src/sim/runtime.hpp"
#include "src/util/table.hpp"

namespace vapro::bench {

// Sum of per-rank wall times — the denominator of the paper's coverage
// metric ("total execution time").
inline double total_execution_seconds(const sim::RunResult& result) {
  return std::accumulate(result.finish_times.begin(),
                         result.finish_times.end(), 0.0);
}

inline sim::NoiseSpec cpu_noise(int node, double t_begin, double t_end,
                                double magnitude = 1.0) {
  sim::NoiseSpec s;
  s.kind = sim::NoiseKind::kCpuContention;
  s.node = node;
  s.t_begin = t_begin;
  s.t_end = t_end;
  s.magnitude = magnitude;
  return s;
}

inline sim::NoiseSpec memory_noise(int node, double t_begin, double t_end,
                                   double magnitude = 3.0) {
  sim::NoiseSpec s;
  s.kind = sim::NoiseKind::kMemoryBandwidth;
  s.node = node;
  s.t_begin = t_begin;
  s.t_end = t_end;
  s.magnitude = magnitude;
  return s;
}

inline void print_header(const std::string& title, const std::string& paper) {
  std::cout << "\n==========================================================\n"
            << title << "\n(paper reference: " << paper << ")\n"
            << "==========================================================\n";
}

// One-line numeric series printer, e.g. for Fig 5 / Fig 19 curves.
inline void print_series(const std::string& name,
                         const std::vector<double>& values, int precision = 3,
                         std::size_t max_points = 30) {
  std::cout << name << ":";
  const std::size_t step =
      values.size() > max_points ? values.size() / max_points : 1;
  for (std::size_t i = 0; i < values.size(); i += step)
    std::cout << ' ' << util::fmt(values[i], precision);
  std::cout << '\n';
}

}  // namespace vapro::bench
