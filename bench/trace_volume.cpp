// Data-volume comparison: full event tracing vs Vapro's fragment summaries
// (the §7 related-work argument — "the major drawback of tracing is its
// prohibitive data volume") and per-window merging into normalized
// performance (§6.2's storage discussion: 12.8/47.4 KB per second per
// thread/process).
#include "bench/bench_common.hpp"
#include "src/apps/apps.hpp"
#include "src/core/vapro.hpp"
#include "src/trace/trace.hpp"

using namespace vapro;

int main() {
  bench::print_header("Trace volume vs Vapro fragment summaries",
                      "§7 tracing critique + §6.2 storage overhead");

  util::TextTable table({"app", "events", "trace KiB", "vapro KiB", "ratio",
                         "vapro KiB/s/rank"});
  for (const auto& app : apps::multiprocess_suite(1.0)) {
    if (app.name == "CESM") continue;  // keep the sweep quick
    sim::SimConfig cfg;
    cfg.ranks = 64;
    cfg.cores_per_node = 16;
    cfg.seed = 7;
    sim::Simulator simulator(cfg);

    core::VaproOptions opts;
    core::VaproSession session(simulator, opts);
    trace::TraceWriter writer(
        const_cast<core::VaproClient*>(&session.client()));
    simulator.set_interceptor(&writer);
    auto result = simulator.run(app.program);

    const double trace_kib = static_cast<double>(writer.trace().byte_size()) / 1024;
    const double vapro_kib = static_cast<double>(session.bytes_recorded()) / 1024;
    const double rate =
        vapro_kib / result.makespan / static_cast<double>(cfg.ranks);
    table.add_row({app.name, std::to_string(writer.trace().size()),
                   util::fmt(trace_kib, 0), util::fmt(vapro_kib, 0),
                   util::fmt(trace_kib / vapro_kib, 1),
                   util::fmt(rate, 1)});
  }
  table.print(std::cout);
  std::cout << "\nVapro's per-fragment records are already several times "
               "smaller than a raw event trace, and unlike a trace they are "
               "merged into normalized performance each window — the "
               "retained data does not grow with run length (paper: 12.8 / "
               "47.4 KB/s per thread/process before merging).\n";
  return 0;
}
