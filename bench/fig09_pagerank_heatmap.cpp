// Figure 9: 8-thread PageRank under an injected memory noise — the
// (thread × time) normalized-performance heat map shows a light block
// during the noise window.
#include "bench/bench_common.hpp"
#include "src/apps/threaded.hpp"
#include "src/core/vapro.hpp"

int main() {
  using namespace vapro;
  bench::print_header("Fig 9 — PageRank heat map under memory noise",
                      "Figure 9: 8-thread PageRank, memory noise");

  sim::SimConfig cfg;
  cfg.ranks = 8;
  cfg.cores_per_node = 8;  // one shared-memory node
  cfg.seed = 5;
  // Memory noise over a mid-run window hits every thread of the node.
  cfg.noises.push_back(bench::memory_noise(0, 1.5, 3.0, 3.0));
  sim::Simulator simulator(cfg);

  core::VaproOptions opts;
  opts.window_seconds = 0.5;
  opts.bin_seconds = 0.2;
  core::VaproSession session(simulator, opts);

  apps::ThreadedParams p;
  p.iters = 400;
  p.scale = 4.0;
  auto result = simulator.run(apps::pagerank(p));

  std::cout << session.computation_map().render_ascii(8, 80) << '\n'
            << session.detection_summary() << '\n';
  session.computation_map().write_csv("/tmp/vapro_fig09_heatmap.csv");
  std::cout << "full heat map written to /tmp/vapro_fig09_heatmap.csv\n"
            << "run length: " << util::fmt(result.makespan, 1)
            << " s; noise window [1.5, 3.0) s\n"
            << "paper shape: a contiguous low-performance band across all "
               "threads during the noise window, ~1.0 elsewhere.\n";
  return 0;
}
