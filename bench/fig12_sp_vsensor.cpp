// Figure 12: detection-coverage matters — 1024-process SP under a one-
// second computing noise.
//
// The OS timeshares the noisy core 50/50, so the truth is a ~50% loss for
// one second.  Vapro's runtime-identified fragments cover most of the
// execution and integrate over many scheduler quanta → ~50% reported.
// vSensor anchors only on the small statically provable slice; its short
// snippets either dodge the noise entirely or eat a full quantum of wait →
// it reports a much deeper loss over a much shorter interval (the paper's
// "90% for 1/10 s").
#include <cmath>

#include "bench/bench_common.hpp"
#include "src/apps/npb.hpp"
#include "src/baselines/vsensor.hpp"
#include "src/core/vapro.hpp"

using namespace vapro;

namespace {

sim::SimConfig make_config() {
  sim::SimConfig cfg;
  cfg.ranks = 1024;
  cfg.cores_per_node = 24;
  cfg.seed = 12;
  // One second of co-scheduled `stress` on the node hosting rank 500.
  cfg.noises.push_back(bench::cpu_noise(500 / 24, 0.5, 1.5, 1.0));
  return cfg;
}

apps::NpbParams sp_params() {
  apps::NpbParams p;
  p.iters = 110;
  p.warmup_iters = 2;
  p.scale = 4.0;  // ≈ 40 ms per iteration → ≈ 5 s runs
  return p;
}

void report_region(const char* tool, const std::vector<core::VarianceRegion>& regions,
                   double bin_seconds) {
  if (regions.empty()) {
    std::cout << tool << ": no variance detected\n";
    return;
  }
  const auto& r = regions.front();
  std::cout << tool << ": ranks " << r.rank_lo << "-" << r.rank_hi
            << ", reported loss " << util::fmt((1 - r.mean_perf) * 100, 1)
            << "%, duration "
            << util::fmt(r.time_hi(bin_seconds) - r.time_lo(bin_seconds), 2)
            << " s (t=[" << util::fmt(r.time_lo(bin_seconds), 2) << ", "
            << util::fmt(r.time_hi(bin_seconds), 2) << "))\n";
}

}  // namespace

int main() {
  bench::print_header("Fig 12 — Vapro vs vSensor on SP under computing noise",
                      "Figure 12: 1024-process SP, 1 s CPU noise");

  const double kBin = 0.1;

  // --- Vapro ---
  double vapro_cov;
  std::vector<core::VarianceRegion> vapro_regions;
  {
    sim::Simulator simulator(make_config());
    core::VaproOptions opts;
    opts.window_seconds = 0.5;
    opts.bin_seconds = kBin;
    opts.run_diagnosis = false;
    core::VaproSession session(simulator, opts);
    auto result = simulator.run(apps::sp(sp_params()));
    vapro_cov = session.coverage(bench::total_execution_seconds(result));
    vapro_regions = session.locate(core::FragmentKind::kComputation);

    // Zoomed heat map rows around the affected node (paper's Fig 12 view).
    const auto& map = session.computation_map();
    std::cout << "Vapro heat map, ranks 472-512 ('#'=slow):\n";
    for (int rank = 472; rank <= 512; rank += 4) {
      std::cout << "rank " << rank << " |";
      for (int b = 0; b < map.bins(); ++b) {
        double v = map.cell(rank, b);
        std::cout << (std::isnan(v) ? '?' : (v < 0.6 ? '#' : v < 0.85 ? '+' : ' '));
      }
      std::cout << "|\n";
    }
  }

  // --- vSensor ---
  double vs_cov;
  std::vector<core::VarianceRegion> vs_regions;
  {
    sim::Simulator simulator(make_config());
    baselines::VsensorOptions vopts;
    vopts.bin_seconds = kBin;
    baselines::VsensorTool tool(1024, vopts);
    simulator.set_interceptor(&tool);
    auto result = simulator.run(apps::sp(sp_params()));
    tool.finalize();
    vs_cov = tool.coverage(bench::total_execution_seconds(result));
    vs_regions = tool.locate();
  }

  std::cout << '\n';
  report_region("Vapro  ", vapro_regions, kBin);
  report_region("vSensor", vs_regions, kBin);
  std::cout << "detection coverage: Vapro " << util::fmt(vapro_cov * 100, 1)
            << "%  vs  vSensor " << util::fmt(vs_cov * 100, 1) << "%\n"
            << "ground truth: 50% loss for t=[0.5, 1.5) s on ranks "
            << (500 / 24) * 24 << "-" << (500 / 24) * 24 + 23 << "\n"
            << "paper shape: Vapro ≈50% over ≈1 s (coverage 36.4%); vSensor "
               "deeper loss over ~0.1 s (coverage 8.7%).\n";
  return 0;
}
