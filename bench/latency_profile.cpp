// Self-diagnosis latency profile: per-stage timing of the analysis
// pipeline (queue_wait/drain/stg/cluster/normalize/deposit/diagnose/
// publish) and the critical-path attribution built from it.
//
// Unlike the wall-clock benches, this one is *byte-deterministic*: stage
// timings come from a util::TickClock (every clock read advances virtual
// time by a fixed tick), so each stage's "seconds" counts clock reads, not
// machine speed, and BENCH_latency.json is identical on every run for the
// fixed seed — the committed file diffs cleanly across commits, and CI
// verifies two runs match byte-for-byte.  Pass --wall to profile with the
// real clock instead (informational; not committed).
//
//   latency_profile [--json PATH] [--wall] [--windows N]
//   (scripts/bench.sh -> BENCH_latency.json)
#include <cstdint>
#include <cstring>
#include <iostream>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/core/server.hpp"
#include "src/core/stg.hpp"
#include "src/obs/context.hpp"
#include "src/obs/latency.hpp"
#include "src/util/clock.hpp"
#include "src/util/rng.hpp"
#include "src/util/table.hpp"

namespace {

using namespace vapro;

constexpr int kRanks = 32;
constexpr int kSites = 12;
constexpr int kReps = 6;
constexpr double kWindowSeconds = 0.25;

// Deterministic synthetic window (the pipeline_scaling shape, smaller):
// per rank, `kReps` loops over the site ring with a computation fragment
// before each invocation fragment.
core::FragmentBatch make_window(int window, util::Rng& rng) {
  core::FragmentBatch batch;
  std::vector<core::StateKey> keys(kSites);
  for (int s = 0; s < kSites; ++s) {
    sim::InvocationInfo info;
    info.site = static_cast<sim::CallSiteId>(100 + s);
    info.kind = s % 3 == 2 ? sim::OpKind::kFileWrite : sim::OpKind::kAllreduce;
    keys[static_cast<std::size_t>(s)] =
        core::make_state_key(core::StgMode::kContextFree, info);
    batch.new_states.push_back(info);
  }
  const int steps = kSites * kReps;
  const double step_seconds = kWindowSeconds / (steps + 1);
  for (int rank = 0; rank < kRanks; ++rank) {
    core::StateKey prev = core::kStartState;
    double t = window * kWindowSeconds;
    for (int step = 0; step < steps; ++step) {
      const int s = step % kSites;
      const core::StateKey key = keys[static_cast<std::size_t>(s)];
      core::Fragment comp;
      comp.kind = core::FragmentKind::kComputation;
      comp.rank = rank;
      comp.from = prev;
      comp.to = key;
      comp.start_time = t;
      comp.end_time = t + step_seconds * 0.7 * rng.uniform(0.95, 1.05);
      comp.counters[pmu::Counter::kTotIns] = 1e6 * (1 + s);
      batch.fragments.push_back(comp);
      t = comp.end_time;

      core::Fragment inv;
      inv.op = s % 3 == 2 ? sim::OpKind::kFileWrite : sim::OpKind::kAllreduce;
      inv.kind = s % 3 == 2 ? core::FragmentKind::kIo
                            : core::FragmentKind::kCommunication;
      inv.rank = rank;
      inv.from = key;
      inv.to = key;
      inv.start_time = t;
      inv.end_time = t + step_seconds * 0.3 * rng.uniform(0.95, 1.05);
      inv.args.bytes = 4096.0 * (1 + s) * (1 + 0.01 * rank);
      inv.args.peer = (rank + 1) % kRanks;
      inv.args.fd = s % 3 == 2 ? 3 : -1;
      batch.fragments.push_back(inv);
      t = inv.end_time;
      prev = key;
    }
  }
  return batch;
}

}  // namespace

int main(int argc, char** argv) {
  bool wall = false;
  int windows = 24;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--wall") == 0) wall = true;
    if (std::strcmp(argv[i], "--windows") == 0 && i + 1 < argc)
      windows = std::atoi(argv[i + 1]);
  }
  bench::print_header(
      "Self-diagnosis latency profile: per-stage time + critical path",
      "repo self-diagnosis; deterministic TickClock unless --wall");
  bench::JsonReport json("latency_profile", argc, argv);

  // One TickClock read = 1 ms of virtual time, so "stage seconds" counts
  // the pipeline's clock-read pattern — a pure function of the seed.
  util::TickClock tick(1e-3);
  obs::ObsContext ctx;
  ctx.enable_trace();  // spans + flow events exercised alongside the laps

  core::ServerOptions sopts;
  sopts.analysis_threads = 1;
  sopts.pipeline_depth = 1;  // serial: one deterministic clock-read order
  sopts.run_diagnosis = true;
  sopts.bin_seconds = 0.1;
  sopts.live_detection = true;
  sopts.obs = &ctx;
  if (!wall) sopts.clock = &tick;
  core::AnalysisServer server(kRanks, sopts);
  util::Rng rng(7);

  std::vector<double> per_stage[obs::kLatencyStageCount];
  std::vector<double> totals;
  for (int w = 0; w < windows; ++w) {
    core::FragmentBatch batch = make_window(w, rng);
    // Drain cost modeled as one fixed-size lap of the same clock.
    util::Clock* clock = sopts.clock ? sopts.clock : util::real_clock();
    const double d0 = clock->now_seconds();
    const double drain = clock->now_seconds() - d0;
    server.process_window(std::move(batch), drain);
    const auto& recent = server.latency_tracker().recent();
    if (!recent.empty()) {
      const obs::WindowLatencyRecord& r = recent.back();
      for (std::size_t s = 0; s < obs::kLatencyStageCount; ++s)
        per_stage[s].push_back(r.stage_seconds[s]);
      totals.push_back(r.total_seconds());
    }
  }

  const obs::CriticalPathTracker& tracker = server.latency_tracker();
  std::cout << obs::render_critical_path_table(tracker.recent(),
                                               tracker.summary());

  const obs::CriticalPathTracker::Summary sum = tracker.summary();
  for (std::size_t s = 0; s < obs::kLatencyStageCount; ++s) {
    json.record(std::string("stage_") + obs::kLatencyStageNames[s] +
                    "_seconds",
                per_stage[s]);
    json.record(std::string("bound_windows_") + obs::kLatencyStageNames[s],
                {static_cast<double>(sum.bound_windows[s])});
  }
  json.record("window_total_seconds", totals);
  json.record("dominant_stage_index",
              {static_cast<double>(sum.dominant_stage())});
  if (!json.write()) return 1;
  if (sum.windows != static_cast<std::uint64_t>(windows)) {
    std::cout << "WARNING: tracker saw " << sum.windows << " of " << windows
              << " windows\n";
    return 1;
  }
  return 0;
}
