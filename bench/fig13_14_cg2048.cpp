// Figures 13 & 14: 2048-process CG with computing noises injected on two
// nodes.
//
// Fig 13 — Vapro pinpoints the two affected rank blocks and quantifies the
// computation performance loss (paper: 42.8%); the breakdown regression
// flags involuntary context switches as the significant factor (p < 0.001).
//
// Fig 14 — the same run through an mpiP-style profile: communication time
// rises (dependence on the slowed ranks) while computation looks flat, the
// misleading picture the paper contrasts against.
#include <cmath>

#include "bench/bench_common.hpp"
#include "src/apps/npb.hpp"
#include "src/baselines/mpip.hpp"
#include "src/core/diagnosis.hpp"
#include "src/core/vapro.hpp"

using namespace vapro;

namespace {

sim::SimConfig make_config(bool with_noise) {
  sim::SimConfig cfg;
  cfg.ranks = 2048;
  cfg.cores_per_node = 24;
  cfg.seed = 13;
  if (with_noise) {
    // Two noisy nodes, the ones hosting ranks ~950 and ~1150 (the paper's
    // Fig 13 shows two bands near process 950/1150).
    cfg.noises.push_back(bench::cpu_noise(950 / 24, 1.0, 3.5, 1.0));
    cfg.noises.push_back(bench::cpu_noise(1150 / 24, 2.0, 4.5, 1.0));
  }
  return cfg;
}

apps::NpbParams cg_params() {
  apps::NpbParams p;
  p.iters = 60;
  p.warmup_iters = 2;
  p.scale = 4.0;
  return p;
}

}  // namespace

int main() {
  bench::print_header("Fig 13 — Vapro on 2048-process CG under software noise",
                      "Figure 13: two noisy nodes, detection + diagnosis");

  double invol_cs_p = 1.0;
  core::OlsQuantification ols;
  sim::Simulator simulator(make_config(true));
  core::VaproOptions opts;
  opts.window_seconds = 0.5;
  opts.bin_seconds = 0.25;
  opts.window_observer = [&](const core::Stg& stg,
                             const core::ClusteringResult& clusters) {
    // Regression of fragment time on the S1 + context-switch factors for
    // the largest cluster — the "significant negative influence" check.
    const core::Cluster* biggest = nullptr;
    for (const auto& c : clusters.clusters) {
      if (c.kind != core::FragmentKind::kComputation || c.rare) continue;
      if (c.members.size() < 100 || c.seed_norm <= 0) continue;
      if (!biggest || c.members.size() > biggest->members.size()) biggest = &c;
    }
    if (!biggest) return;
    auto q = core::ols_quantify(
        stg, biggest->members,
        {core::FactorId::kBackend, core::FactorId::kInvoluntaryCs},
        simulator.config().machine);
    if (q.ok && q.estimates[1].p_value < invol_cs_p) {
      invol_cs_p = q.estimates[1].p_value;
      ols = q;
    }
  };
  core::VaproSession session(simulator, opts);
  auto result = simulator.run(apps::cg(cg_params()));

  std::cout << session.computation_map().render_ascii(32, 60) << '\n'
            << session.detection_summary() << '\n';
  session.computation_map().write_csv("/tmp/vapro_fig13_heatmap.csv");

  auto regions = session.locate(core::FragmentKind::kComputation);
  std::cout << "top regions detected: " << regions.size() << '\n';
  if (!regions.empty()) {
    std::cout << "largest: ranks " << regions[0].rank_lo << "-"
              << regions[0].rank_hi << " with "
              << util::fmt((1 - regions[0].mean_perf) * 100, 1)
              << "% computation loss (paper: 42.8%)\n";
  }
  std::cout << "breakdown regression: involuntary context switches p-value "
            << util::fmt(invol_cs_p, 6) << " (paper: p < 0.001)\n"
            << session.diagnosis().summary() << "\n";

  // ---------------------------------------------------------------
  bench::print_header("Fig 14 — the same runs through an mpiP-style profile",
                      "Figure 14: comm time rises, computation looks flat");
  for (bool noisy : {false, true}) {
    sim::Simulator sim2(make_config(noisy));
    baselines::MpipProfiler prof(2048);
    sim2.set_interceptor(&prof);
    sim2.run(apps::cg(cg_params()));
    double comp_noisy_block = 0, comm_noisy_block = 0;
    double comp_quiet_block = 0, comm_quiet_block = 0;
    for (int r = 936; r < 960; ++r) {  // the first noisy node
      comp_noisy_block += prof.computation_seconds(r);
      comm_noisy_block += prof.communication_seconds(r);
    }
    for (int r = 0; r < 24; ++r) {  // a quiet node
      comp_quiet_block += prof.computation_seconds(r);
      comm_quiet_block += prof.communication_seconds(r);
    }
    std::cout << (noisy ? "with noise:   " : "without noise:")
              << "  quiet node comp/comm = " << util::fmt(comp_quiet_block / 24, 3)
              << "/" << util::fmt(comm_quiet_block / 24, 3)
              << " s   noisy node comp/comm = "
              << util::fmt(comp_noisy_block / 24, 3) << "/"
              << util::fmt(comm_noisy_block / 24, 3) << " s\n";
  }
  std::cout << "paper shape: under noise, the profile shows communication "
               "time rising everywhere while computation time barely moves — "
               "pointing at the network instead of the noisy CPUs.  Note the "
               "run time is dominated by waiting on the slowed node.\n";
  std::cout << "events processed: " << result.events << "\n";
  return 0;
}
