// Table 2: verification of fixed-workload identification against ground
// truth, scored with completeness (C), homogeneity (H) and V-measure.
//
// The instrumented ground truth is the per-workload class id every app
// attaches to its compute blocks (the simulated analogue of the paper's
// hot-spot path instrumentation).  Expected shape: C = H = V = 1.00 for
// CG/FT/EP; PageRank has perfect completeness but imperfect homogeneity
// (two nearly equal workloads merged, paper: H = 0.74).
#include "bench/bench_common.hpp"
#include "src/apps/npb.hpp"
#include "src/apps/threaded.hpp"
#include "src/core/vapro.hpp"

using namespace vapro;

namespace {

struct Scored {
  std::size_t fragments;
  stats::VMeasure v;
};

Scored score(const sim::Simulator::RankProgram& program, int ranks) {
  sim::SimConfig cfg;
  cfg.ranks = ranks;
  cfg.cores_per_node = 16;
  cfg.seed = 2;
  sim::Simulator simulator(cfg);
  core::VaproOptions opts;
  opts.window_seconds = 1e6;  // single global window — whole-run clustering
  opts.run_diagnosis = false;
  opts.record_eval_pairs = true;
  std::size_t labelled = 0;
  opts.window_observer = [&](const core::Stg& stg,
                             const core::ClusteringResult&) {
    for (const core::FragmentView f : stg.fragments()) {
      if (f.kind() == core::FragmentKind::kComputation && f.truth_class() >= 0)
        ++labelled;
    }
  };
  core::VaproSession session(simulator, opts);
  simulator.run(program);
  return Scored{labelled, session.clustering_quality()};
}

}  // namespace

int main() {
  bench::print_header("Table 2 — fixed-workload identification quality",
                      "Table 2: C/H/V scores, 16 processes or threads");

  util::TextTable table({"app", "labelled fragments", "C", "H", "V"});
  auto add = [&](const char* name, const Scored& s) {
    table.add_row({name, std::to_string(s.fragments),
                   util::fmt(s.v.completeness, 2), util::fmt(s.v.homogeneity, 2),
                   util::fmt(s.v.v_measure, 2)});
  };

  apps::NpbParams cg_p;
  cg_p.iters = 80;
  add("CG", score(apps::cg(cg_p), 16));

  apps::NpbParams ft_p;
  ft_p.iters = 40;
  add("FT", score(apps::ft(ft_p), 16));

  apps::NpbParams ep_p;
  ep_p.iters = 10;
  add("EP", score(apps::ep(ep_p), 16));

  apps::ThreadedParams pr_p;
  pr_p.iters = 42;
  add("PageRank", score(apps::pagerank(pr_p), 16));

  table.print(std::cout);
  std::cout << "\npaper values: CG/FT/EP all 1.00; PageRank C=1.00, H=0.74, "
               "V=0.85 (near-equal workloads merged below the 5% threshold "
               "— harmless for detecting significant variance).\n"
            << "note FT: its statically-provable loops wobble ±8% at "
               "runtime, so clustering splits them into *separate pure* "
               "clusters — C stays 1 per this metric only when each class "
               "maps into one cluster; the wobble classes are scored by the "
               "truth labels attached per class.\n";
  return 0;
}
