// Table 1: performance overhead and detection coverage of vSensor, Vapro
// with context-aware STG (CA), and Vapro with context-free STG (CF).
//
// Multi-process applications run at 256 ranks (the paper used 1024, and
// 2048 for CESM; rank count only scales the experiment, not the per-rank
// overhead/coverage mechanics), multi-threaded ones at 16 threads as in the
// paper.  Overhead is (T_tool − T_bare)/T_bare on the same seed; coverage
// is repeated-fixed-workload time over total execution time.
#include <optional>

#include "bench/bench_common.hpp"
#include "src/apps/apps.hpp"
#include "src/baselines/vsensor.hpp"
#include "src/core/vapro.hpp"

using namespace vapro;

namespace {

struct ToolResult {
  double overhead_pct = 0.0;
  double coverage_pct = 0.0;
};

sim::SimConfig make_config(int ranks) {
  sim::SimConfig cfg;
  cfg.ranks = ranks;
  cfg.cores_per_node = 24;
  cfg.seed = 101;
  return cfg;
}

double bare_run(const apps::AppSpec& app, int ranks) {
  sim::Simulator simulator(make_config(ranks));
  return simulator.run(app.program).makespan;
}

ToolResult vapro_run(const apps::AppSpec& app, int ranks, core::StgMode mode,
                     double t_bare) {
  sim::Simulator simulator(make_config(ranks));
  core::VaproOptions opts;
  opts.stg_mode = mode;
  opts.window_seconds = 0.5;
  opts.run_diagnosis = false;
  core::VaproSession session(simulator, opts);
  auto result = simulator.run(app.program);
  ToolResult out;
  out.overhead_pct = 100.0 * (result.makespan - t_bare) / t_bare;
  out.coverage_pct =
      100.0 * session.coverage(bench::total_execution_seconds(result));
  return out;
}

std::optional<ToolResult> vsensor_run(const apps::AppSpec& app, int ranks,
                                      double t_bare) {
  if (!app.vsensor_supported) return std::nullopt;
  sim::Simulator simulator(make_config(ranks));
  baselines::VsensorTool tool(ranks, baselines::VsensorOptions{});
  simulator.set_interceptor(&tool);
  auto result = simulator.run(app.program);
  tool.finalize();
  ToolResult out;
  out.overhead_pct = 100.0 * (result.makespan - t_bare) / t_bare;
  out.coverage_pct =
      100.0 * tool.coverage(bench::total_execution_seconds(result));
  return out;
}

std::string pct(double v) { return util::fmt(v, 2); }

}  // namespace

int main() {
  bench::print_header("Table 1 — overhead and detection coverage",
                      "Table 1: vSensor vs Vapro CA vs Vapro CF");

  std::cout << "\n--- multi-process applications (256 ranks; paper: 1024/2048) ---\n";
  util::TextTable mp({"app", "ovh% vSensor", "ovh% CA", "ovh% CF",
                      "cov% vSensor", "cov% CA", "cov% CF"});
  double mean_ovh[3] = {0, 0, 0}, mean_cov[3] = {0, 0, 0};
  int counted_vs = 0, counted = 0;
  for (const auto& app : apps::multiprocess_suite(2.0)) {
    const int ranks = 256;
    const double t_bare = bare_run(app, ranks);
    auto vs = vsensor_run(app, ranks, t_bare);
    auto ca = vapro_run(app, ranks, core::StgMode::kContextAware, t_bare);
    auto cf = vapro_run(app, ranks, core::StgMode::kContextFree, t_bare);
    mp.add_row({app.name, vs ? pct(vs->overhead_pct) : "N/A",
                pct(ca.overhead_pct), pct(cf.overhead_pct),
                vs ? pct(vs->coverage_pct) : "N/A", pct(ca.coverage_pct),
                pct(cf.coverage_pct)});
    if (vs) {
      mean_ovh[0] += vs->overhead_pct;
      mean_cov[0] += vs->coverage_pct;
      ++counted_vs;
    }
    mean_ovh[1] += ca.overhead_pct;
    mean_cov[1] += ca.coverage_pct;
    mean_ovh[2] += cf.overhead_pct;
    mean_cov[2] += cf.coverage_pct;
    ++counted;
  }
  mp.add_row({"Mean", pct(mean_ovh[0] / counted_vs),
              pct(mean_ovh[1] / counted), pct(mean_ovh[2] / counted),
              pct(mean_cov[0] / counted_vs), pct(mean_cov[1] / counted),
              pct(mean_cov[2] / counted)});
  mp.print(std::cout);

  std::cout << "\n--- multi-threaded applications (16 threads, context-free) ---\n";
  util::TextTable mt({"app", "ovh% CF", "cov% CF"});
  double mt_ovh = 0, mt_cov = 0;
  int mt_n = 0;
  for (const auto& app : apps::multithreaded_suite(2.0)) {
    const int ranks = 16;
    const double t_bare = bare_run(app, ranks);
    auto cf = vapro_run(app, ranks, core::StgMode::kContextFree, t_bare);
    mt.add_row({app.name, pct(cf.overhead_pct), pct(cf.coverage_pct)});
    mt_ovh += cf.overhead_pct;
    mt_cov += cf.coverage_pct;
    ++mt_n;
  }
  mt.add_row({"Mean", pct(mt_ovh / mt_n), pct(mt_cov / mt_n)});
  mt.print(std::cout);

  std::cout
      << "\npaper shape to check:\n"
      << "  * overheads are small (~1-4%), CA > CF on average;\n"
      << "  * CESM is N/A for vSensor and has the largest CA/CF overhead gap;\n"
      << "  * vSensor coverage is 0 for AMG and EP (runtime-only fixed "
         "workload), far below CF for CG/SP, but ABOVE CF for FT;\n"
      << "  * MG's CA coverage collapses while CF stays high;\n"
      << "  * CF coverage beats CA on average → the paper picks CF.\n";
  return 0;
}
