// Microbenchmarks of the analysis pipeline (google-benchmark).
//
// Backs the paper's lightweight-analysis claims: Algorithm 1 clustering is
// (near-)linear in the number of fragments (§3.4's overhead argument), STG
// ingestion is cheap, the OLS quantifier is negligible at cluster sizes,
// and heat-map deposits/region growing scale with map size.
#include <benchmark/benchmark.h>

#include "src/core/clustering.hpp"
#include "src/core/detection.hpp"
#include "src/core/diagnosis.hpp"
#include "src/core/heatmap.hpp"
#include "src/core/stg.hpp"
#include "src/sim/engine.hpp"
#include "src/stats/ols.hpp"
#include "src/util/rng.hpp"

namespace vapro {
namespace {

sim::InvocationInfo invocation(sim::CallSiteId site) {
  sim::InvocationInfo info;
  info.site = site;
  info.kind = sim::OpKind::kAllreduce;
  return info;
}

// Builds an STG with `n` computation fragments over `classes` workload
// classes on one edge.
core::Stg build_stg(std::size_t n, int classes, std::uint64_t seed) {
  core::Stg stg(core::StgMode::kContextFree);
  auto k1 = stg.touch_vertex(invocation(1));
  auto k2 = stg.touch_vertex(invocation(2));
  util::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    core::Fragment f;
    f.kind = core::FragmentKind::kComputation;
    f.from = k1;
    f.to = k2;
    f.start_time = 0.001 * static_cast<double>(i);
    f.end_time = f.start_time + 0.0005;
    const int cls = static_cast<int>(rng.uniform_u64(static_cast<std::uint64_t>(classes)));
    f.counters[pmu::Counter::kTotIns] =
        1e6 * std::pow(1.3, cls) * rng.normal(1.0, 0.003);
    stg.add_fragment(std::move(f));
  }
  return stg;
}

void BM_ClusteringScaling(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  core::Stg stg = build_stg(n, 8, 1);
  for (auto _ : state) {
    auto result = core::cluster_stg(stg, core::ClusterOptions{});
    benchmark::DoNotOptimize(result.clusters.size());
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_ClusteringScaling)->Range(1 << 10, 1 << 17)->Complexity();

void BM_ClusteringParallel(benchmark::State& state) {
  // 64 edges worth of fragments clustered by `threads` workers.
  const int threads = static_cast<int>(state.range(0));
  core::Stg stg(core::StgMode::kContextFree);
  util::Rng rng(3);
  for (int e = 0; e < 64; ++e) {
    auto k1 = stg.touch_vertex(invocation(static_cast<sim::CallSiteId>(2 * e)));
    auto k2 = stg.touch_vertex(invocation(static_cast<sim::CallSiteId>(2 * e + 1)));
    for (int i = 0; i < 2000; ++i) {
      core::Fragment f;
      f.kind = core::FragmentKind::kComputation;
      f.from = k1;
      f.to = k2;
      f.end_time = 0.001;
      f.counters[pmu::Counter::kTotIns] =
          1e6 * (1 + (i % 4)) * rng.normal(1.0, 0.003);
      stg.add_fragment(std::move(f));
    }
  }
  for (auto _ : state) {
    auto result = core::cluster_stg_parallel(stg, core::ClusterOptions{}, threads);
    benchmark::DoNotOptimize(result.clusters.size());
  }
}
BENCHMARK(BM_ClusteringParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_StgIngest(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    core::Stg stg(core::StgMode::kContextFree);
    auto k1 = stg.touch_vertex(invocation(1));
    auto k2 = stg.touch_vertex(invocation(2));
    state.ResumeTiming();
    for (int i = 0; i < 10000; ++i) {
      core::Fragment f;
      f.kind = core::FragmentKind::kComputation;
      f.from = k1;
      f.to = k2;
      stg.add_fragment(std::move(f));
    }
    benchmark::DoNotOptimize(stg.fragments().size());
  }
  state.SetItemsProcessed(10000 * state.iterations());
}
BENCHMARK(BM_StgIngest);

void BM_OlsQuantify(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  core::Stg stg(core::StgMode::kContextFree);
  auto k1 = stg.touch_vertex(invocation(1));
  auto k2 = stg.touch_vertex(invocation(2));
  util::Rng rng(7);
  std::vector<std::size_t> members;
  pmu::MachineParams machine;
  for (std::size_t i = 0; i < n; ++i) {
    core::Fragment f;
    f.kind = core::FragmentKind::kComputation;
    f.from = k1;
    f.to = k2;
    const double faults = static_cast<double>(rng.uniform_u64(100));
    f.end_time = 0.01 + faults * 5e-5 + rng.normal(0, 1e-5);
    f.counters[pmu::Counter::kPageFaultsSoft] = faults;
    f.counters[pmu::Counter::kCtxSwitchInvoluntary] =
        static_cast<double>(rng.uniform_u64(10));
    members.push_back(stg.add_fragment(std::move(f)));
  }
  for (auto _ : state) {
    auto q = core::ols_quantify(
        stg, members,
        {core::FactorId::kPageFault, core::FactorId::kContextSwitch}, machine);
    benchmark::DoNotOptimize(q.ok);
  }
}
BENCHMARK(BM_OlsQuantify)->Arg(64)->Arg(512)->Arg(4096);

void BM_HeatmapDeposit(benchmark::State& state) {
  util::Rng rng(9);
  for (auto _ : state) {
    core::Heatmap map(256, 0.1);
    for (int i = 0; i < 20000; ++i) {
      const double start = rng.uniform(0, 60);
      map.deposit(static_cast<int>(rng.uniform_u64(256)), start,
                  start + rng.uniform(0.001, 0.2), rng.uniform(0.2, 1.0));
    }
    benchmark::DoNotOptimize(map.bins());
  }
  state.SetItemsProcessed(20000 * state.iterations());
}
BENCHMARK(BM_HeatmapDeposit);

void BM_RegionGrowing(benchmark::State& state) {
  core::Heatmap map(512, 0.1);
  util::Rng rng(11);
  for (int r = 0; r < 512; ++r)
    for (int b = 0; b < 600; ++b)
      map.deposit(r, b * 0.1, b * 0.1 + 0.1, rng.uniform(0.8, 1.0));
  // A few slow patches.
  for (int r = 100; r < 140; ++r)
    for (int b = 50; b < 200; ++b)
      map.deposit(r, b * 0.1, b * 0.1 + 0.1, 0.1);
  for (auto _ : state) {
    auto regions = core::find_variance_regions(map, 0.85);
    benchmark::DoNotOptimize(regions.size());
  }
}
BENCHMARK(BM_RegionGrowing);

void BM_EngineEvents(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventEngine engine;
    int fired = 0;
    for (int i = 0; i < 100000; ++i)
      engine.schedule_at(static_cast<double>(i % 977), [&fired] { ++fired; });
    engine.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(100000 * state.iterations());
}
BENCHMARK(BM_EngineEvents);

// Ablation: clustering-threshold sensitivity (DESIGN.md's ablation list) —
// how cluster counts react to the 5% default.
void BM_ThresholdAblation(benchmark::State& state) {
  const double threshold = static_cast<double>(state.range(0)) / 1000.0;
  core::Stg stg = build_stg(50000, 8, 13);
  core::ClusterOptions opts;
  opts.threshold = threshold;
  std::size_t clusters = 0;
  for (auto _ : state) {
    auto result = core::cluster_stg(stg, opts);
    clusters = result.clusters.size();
    benchmark::DoNotOptimize(clusters);
  }
  state.counters["clusters"] = static_cast<double>(clusters);
}
BENCHMARK(BM_ThresholdAblation)->Arg(10)->Arg(50)->Arg(200);

}  // namespace
}  // namespace vapro

BENCHMARK_MAIN();
