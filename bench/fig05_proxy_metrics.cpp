// Figure 5: TOT_INS is a noise-insensitive workload proxy, TSC is not.
//
// The paper runs 16-process B-scale CG, injects a CPU noise (`stress` on
// the application core) and a memory noise (`stream` on idle cores), and
// plots TOT_INS and TSC per execution of one fixed-workload fragment:
// TOT_INS stays flat, TSC jumps under both noises.
#include <cmath>

#include "bench/bench_common.hpp"
#include "src/apps/npb.hpp"
#include "src/core/vapro.hpp"
#include "src/stats/descriptive.hpp"

using namespace vapro;

namespace {

struct Series {
  std::vector<double> tot_ins;
  std::vector<double> tsc;
};

// Runs CG with `noise` and collects TOT_INS/TSC for the members of the
// largest computation cluster on rank 0.
Series collect(const sim::NoiseSpec& noise) {
  sim::SimConfig cfg;
  cfg.ranks = 16;
  cfg.cores_per_node = 16;
  cfg.seed = 77;
  cfg.noises.push_back(noise);
  sim::Simulator simulator(cfg);

  Series series;
  core::VaproOptions opts;
  opts.window_seconds = 1e6;  // one global window
  opts.run_diagnosis = false;
  opts.window_observer = [&](const core::Stg& stg,
                             const core::ClusteringResult& clusters) {
    const core::Cluster* biggest = nullptr;
    for (const auto& c : clusters.clusters) {
      if (c.kind != core::FragmentKind::kComputation || c.rare) continue;
      if (c.seed_norm <= 0) continue;  // skip empty state transitions
      if (!biggest || c.members.size() > biggest->members.size()) biggest = &c;
    }
    if (!biggest) return;
    for (std::size_t idx : biggest->members) {
      const core::FragmentView f = stg.fragment(idx);
      if (f.rank() != 0) continue;
      series.tot_ins.push_back(f.counters()[pmu::Counter::kTotIns]);
      series.tsc.push_back(f.counters()[pmu::Counter::kTsc]);
    }
  };
  core::VaproSession session(simulator, opts);

  apps::NpbParams p;
  p.iters = 25;
  p.warmup_iters = 1;
  simulator.run(apps::cg(p));
  return series;
}

void report(const char* label, const Series& s) {
  std::cout << "\n--- " << label << " ---\n";
  auto normalize = [](std::vector<double> v) {
    const double m = stats::mean(v);
    for (double& x : v) x /= m;
    return v;
  };
  auto ins = normalize(s.tot_ins);
  auto tsc = normalize(s.tsc);
  bench::print_series("TOT_INS (normalized to mean)", ins, 3, 25);
  bench::print_series("TSC     (normalized to mean)", tsc, 3, 25);
  std::cout << "TOT_INS CV: " << util::fmt(100 * stats::coeff_variation(s.tot_ins), 2)
            << "%   TSC CV: " << util::fmt(100 * stats::coeff_variation(s.tsc), 2)
            << "%   (paper: TOT_INS flat, TSC perturbed)\n";
}

}  // namespace

int main() {
  bench::print_header(
      "Fig 5 — proxy-metric stability of fixed-workload fragments",
      "Figure 5: PMU data of CG fragments under computation/memory noise");

  // CPU noise on the application's node for part of the run.
  report("with computation noise (stress on the app cores)",
         collect(bench::cpu_noise(0, 0.05, 0.25, 1.0)));
  // Memory-bandwidth noise on the same node.
  report("with memory noise (stream on idle cores)",
         collect(bench::memory_noise(0, 0.05, 0.25, 3.0)));

  std::cout << "\nconclusion: the workload proxy (TOT_INS) is stable under "
               "both noises while the timing metric (TSC) is not — the basis "
               "for clustering on instructions and detecting on time.\n";
  return 0;
}
