// Figures 18 & 19: RAxML's IO variance on the shared filesystem, and the
// file-buffer fix.
//
// Fig 18 — the first process merges many small files; the IO heat map shows
// its IO performance far below the (IO-idle) rest.  Fig 19 — per-operation
// times of the consecutive fixed-workload read/write fragments.
// The paper's fix (a small file buffer) cut the execution-time σ by 73.5%
// and gave a 17.5% speedup across consecutive executions.
#include "bench/bench_common.hpp"
#include "src/apps/solvers.hpp"
#include "src/core/vapro.hpp"
#include "src/stats/descriptive.hpp"
#include "src/util/csv.hpp"
#include "src/util/rng.hpp"

using namespace vapro;

namespace {

sim::SimConfig raxml_config(std::uint64_t seed, util::Rng& lottery) {
  sim::SimConfig cfg;
  cfg.ranks = 128;
  cfg.cores_per_node = 24;
  cfg.seed = seed;
  // The shared filesystem sees interference from other tenants in random
  // windows — the source of the run-to-run spread.
  for (int burst = 0; burst < 3; ++burst) {
    if (!lottery.bernoulli(0.7)) continue;
    sim::NoiseSpec io;
    io.kind = sim::NoiseKind::kIoInterference;
    io.t_begin = lottery.uniform(0.0, 1.5);
    io.t_end = io.t_begin + lottery.uniform(0.2, 1.0);
    io.magnitude = lottery.uniform(3.0, 12.0);
    cfg.noises.push_back(io);
  }
  return cfg;
}

apps::RaxmlParams raxml_params(bool buffered) {
  apps::RaxmlParams p;
  p.io_rounds = 400;
  p.compute_iters = 400;
  p.scale = 1.0;
  p.buffered = buffered;
  return p;
}

}  // namespace

int main() {
  bench::print_header("Fig 18 — IO performance heat map of RAxML",
                      "Figure 18: 512-process RAxML (here: 128), rank 0 slow");

  std::vector<double> read_times, write_times;
  {
    util::Rng lottery(181);
    sim::Simulator simulator(raxml_config(18, lottery));
    core::VaproOptions opts;
    opts.window_seconds = 0.3;
    opts.bin_seconds = 0.15;
    opts.window_observer = [&](const core::Stg& stg,
                               const core::ClusteringResult&) {
      for (const core::FragmentView f : stg.fragments()) {
        if (f.kind() != core::FragmentKind::kIo || f.rank() != 0) continue;
        if (f.op() == sim::OpKind::kFileRead)
          read_times.push_back(f.duration());
        if (f.op() == sim::OpKind::kFileWrite)
          write_times.push_back(f.duration());
      }
    };
    core::VaproSession session(simulator, opts);
    simulator.run(apps::raxml(raxml_params(false)));

    std::cout << "IO heat map, first 12 ranks (only rank 0 performs IO):\n";
    const auto& map = session.io_map();
    for (int r = 0; r < 12; ++r) {
      std::cout << "rank " << r << " |";
      for (int b = 0; b < std::min(60, map.bins()); ++b) {
        double v = map.cell(r, b);
        std::cout << (std::isnan(v) ? '?' : (v < 0.5 ? '#' : v < 0.85 ? '+' : ' '));
      }
      std::cout << "|\n";
    }
    std::cout << session.detection_summary() << '\n';

    bench::print_header("Fig 19 — consecutive fixed-workload IO operations",
                        "Figure 19: read/write times of the small-file merge");
    bench::print_series("read  op time (ms)", [&] {
      std::vector<double> v;
      for (double t : read_times) v.push_back(t * 1e3);
      return v;
    }(), 2, 40);
    bench::print_series("write op time (ms)", [&] {
      std::vector<double> v;
      for (double t : write_times) v.push_back(t * 1e3);
      return v;
    }(), 2, 40);
    util::CsvWriter csv("/tmp/vapro_fig19_io_ops.csv");
    csv.write_row(std::vector<std::string>{"op_index", "read_s", "write_s"});
    for (std::size_t i = 0; i < std::min(read_times.size(), write_times.size()); ++i)
      csv.write_row(std::vector<double>{static_cast<double>(i), read_times[i],
                                        write_times[i]});
    std::cout << "series written to /tmp/vapro_fig19_io_ops.csv\n"
              << "paper shape: heavy-tailed op times with bursts during "
                 "filesystem interference.\n";
  }

  bench::print_header("the fix — file buffer (paper §6.5.3)",
                      "σ −73.5%, +17.5% speedup over 10 consecutive runs");
  std::vector<double> t_plain, t_buffered;
  for (int run = 0; run < 10; ++run) {
    util::Rng lottery(500 + static_cast<std::uint64_t>(run));
    {
      sim::Simulator simulator(
          raxml_config(900 + static_cast<std::uint64_t>(run), lottery));
      t_plain.push_back(simulator.run(apps::raxml(raxml_params(false))).makespan);
    }
    util::Rng lottery2(500 + static_cast<std::uint64_t>(run));
    {
      sim::Simulator simulator(
          raxml_config(900 + static_cast<std::uint64_t>(run), lottery2));
      t_buffered.push_back(
          simulator.run(apps::raxml(raxml_params(true))).makespan);
    }
  }
  std::cout << "10 consecutive executions, unbuffered: ["
            << util::fmt(stats::min(t_plain), 2) << ", "
            << util::fmt(stats::max(t_plain), 2) << "] s (paper: 41.1-68.0 s)\n"
            << "10 consecutive executions, buffered:   ["
            << util::fmt(stats::min(t_buffered), 2) << ", "
            << util::fmt(stats::max(t_buffered), 2) << "] s\n"
            << "stddev " << util::fmt(stats::stddev(t_plain), 3) << " → "
            << util::fmt(stats::stddev(t_buffered), 3) << " s: reduction "
            << util::fmt(100 * (1 - stats::stddev(t_buffered) / stats::stddev(t_plain)), 1)
            << "% (paper: 73.5%)\n"
            << "mean speedup "
            << util::fmt(stats::mean(t_plain) / stats::mean(t_buffered), 3)
            << "x (paper: 1.175x)\n";
  return 0;
}
