// Self-telemetry cost: the same run with the obs subsystem detached vs
// attached (metrics + PipelineStats + Chrome trace + JSONL event journal
// + live HTTP exposition + overhead accounting).
//
// Guards the BENCH trajectory: the acceptance bar for the observability PR
// is < 3% relative end-to-end overhead, i.e. watching the tool must stay
// far cheaper than the tool itself (which targets the paper's < 1.38% of
// the *application*, Table 1).  Prints per-mode wall times, the relative
// telemetry overhead, and the accountant's own tool-time split.
#include <algorithm>
#include <chrono>
#include <iostream>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/apps/npb.hpp"
#include "src/core/vapro.hpp"
#include "src/obs/context.hpp"
#include "src/util/table.hpp"

namespace {

using namespace vapro;

struct ModeResult {
  double best_seconds = 0.0;
  double tool_seconds = 0.0;       // accountant view (obs mode only)
  std::size_t windows = 0;
  std::size_t trace_events = 0;
  std::size_t journal_events = 0;
};

double run_once(bool with_obs, ModeResult* out) {
  sim::SimConfig cfg;
  cfg.ranks = 64;
  cfg.cores_per_node = 8;
  cfg.seed = 11;  // identical run either way — the sim is deterministic
  sim::Simulator simulator(cfg);

  obs::ObsContext ctx;
  core::VaproOptions opts;
  opts.window_seconds = 0.1;
  if (with_obs) {
    // The full surface the acceptance bar covers: metrics + trace +
    // journal (to a real file) + live HTTP exposition all enabled.
    opts.obs = &ctx;
    ctx.enable_trace();
    ctx.attach_journal_file("/tmp/vapro_obs_overhead_journal.jsonl");
    ctx.start_exposition(0);
  }
  core::VaproSession session(simulator, opts);

  apps::NpbParams p;
  p.iters = 600;
  const auto t0 = std::chrono::steady_clock::now();
  simulator.run(apps::cg(p));
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (with_obs) {
    session.server().journal_detection_snapshot();
    out->tool_seconds = ctx.overhead().tool_seconds();
    out->windows = ctx.windows().windows().size();
    out->trace_events = ctx.trace() ? ctx.trace()->size() : 0;
    out->journal_events = ctx.journal() ? ctx.journal()->events_emitted() : 0;
  }
  return wall;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header("Self-telemetry overhead: obs off vs on",
                      "repo acceptance: telemetry < 3% of end-to-end");
  bench::JsonReport json("obs_overhead", argc, argv);

  constexpr int kRepeats = 9;
  ModeResult off, on;
  // Warm both paths once, then interleave the measured pairs so slow
  // machine-wide drift hits both modes equally.
  run_once(false, &off);
  run_once(true, &on);
  std::vector<double> off_walls, on_walls, pair_overheads;
  for (int r = 0; r < kRepeats; ++r) {
    off_walls.push_back(run_once(false, &off));
    on_walls.push_back(run_once(true, &on));
    pair_overheads.push_back((on_walls.back() - off_walls.back()) /
                             off_walls.back());
  }
  off.best_seconds = *std::min_element(off_walls.begin(), off_walls.end());
  on.best_seconds = *std::min_element(on_walls.begin(), on_walls.end());

  // Two views of the same cost.  The per-pair median is kept as a trend
  // series, but on small shared hosts a run carries scheduler noise of
  // the same magnitude as the telemetry itself, so the *gate* compares
  // best-of-N walls: descheduling only ever adds time, so the minimum of
  // each mode is the cleanest estimate of its true cost.
  std::sort(pair_overheads.begin(), pair_overheads.end());
  const double pair_median = pair_overheads[pair_overheads.size() / 2];
  const double off_min = *std::min_element(off_walls.begin(), off_walls.end());
  const double on_min = *std::min_element(on_walls.begin(), on_walls.end());
  const double overhead = (on_min - off_min) / off_min;
  // Same-mode spread = the host's noise floor.  When repeats of the
  // IDENTICAL configuration differ by more than the bar itself, a 3%
  // cross-mode difference is unresolvable and the bar can only be
  // informational — the same honesty rule pipeline_scaling applies to
  // its 2x bar on <4-core hosts.
  auto spread = [](std::vector<double> w) {
    std::sort(w.begin(), w.end());
    return (w[w.size() / 2] - w.front()) / w.front();
  };
  const double noise_floor = std::max(spread(off_walls), spread(on_walls));

  util::TextTable table(
      {"mode", "best wall (ms)", "windows", "trace events", "journal events"});
  table.add_row(
      {"obs off", util::fmt(off.best_seconds * 1e3, 2), "-", "-", "-"});
  table.add_row({"obs on", util::fmt(on.best_seconds * 1e3, 2),
                 std::to_string(on.windows), std::to_string(on.trace_events),
                 std::to_string(on.journal_events)});
  table.print(std::cout);

  std::cout << "\ntelemetry overhead: " << util::fmt(overhead * 100.0, 2)
            << "% of end-to-end runtime, best-of-" << kRepeats
            << " walls (bar: < 3%)\n"
            << "paired-median overhead: " << util::fmt(pair_median * 100.0, 2)
            << "% (trend series; noisy on small shared hosts)\n"
            << "accountant: " << util::fmt(on.tool_seconds * 1e3, 2)
            << " ms tool time inside the obs run\n";
  auto to_ms = [](std::vector<double> walls) {
    for (double& w : walls) w *= 1e3;
    return walls;
  };
  json.record("obs_off_wall_ms", to_ms(off_walls));
  json.record("obs_on_wall_ms", to_ms(on_walls));
  json.record("telemetry_overhead_frac", pair_overheads);
  json.record("telemetry_overhead_best_frac", {overhead});
  json.record("noise_floor_frac", {noise_floor});
  if (!json.write()) return 1;
  // Negative just means the difference drowned in noise.
  if (overhead >= 0.03) {
    if (noise_floor >= 0.03) {
      std::cout << "NOTE: same-mode noise floor "
                << util::fmt(noise_floor * 100.0, 2)
                << "% exceeds the 3% bar — measurement inconclusive on "
                   "this host, bar informational\n";
      return 0;
    }
    std::cout << "WARNING: telemetry overhead above the 3% bar\n";
    return 1;
  }
  return 0;
}
