// Tests for overlapping analysis windows (paper Fig 8): fragments carried
// across the boundary let slow-cadence clusters reach the min-cluster-size
// threshold, without double counting anything.
#include <gtest/gtest.h>

#include "src/core/vapro.hpp"
#include "src/sim/runtime.hpp"

namespace vapro::core {
namespace {

// One fragment roughly every 0.3 s on a single site: a 1 s window sees
// only ~3 members — below the min-cluster-size of 5 — unless the previous
// window's tail is carried in.
sim::Simulator::RankProgram slow_cadence_app(int iters) {
  return [iters](sim::RankContext& ctx) -> sim::Task {
    for (int i = 0; i < iters; ++i) {
      co_await ctx.compute(pmu::ComputeWorkload::balanced(8.5e8, /*truth=*/1));
      co_await ctx.probe(/*site=*/10);
    }
  };
}

double coverage_with_overlap(double overlap_seconds) {
  sim::SimConfig cfg;
  cfg.ranks = 1;
  cfg.cores_per_node = 4;
  cfg.seed = 5;
  sim::Simulator simulator(cfg);
  VaproOptions opts;
  opts.window_seconds = 1.0;
  opts.window_overlap_seconds = overlap_seconds;
  opts.run_diagnosis = false;
  VaproSession session(simulator, opts);
  auto result = simulator.run(slow_cadence_app(40));
  return session.coverage(result.finish_times[0]);
}

TEST(Overlap, CarryRescuesSlowCadenceClusters) {
  const double without = coverage_with_overlap(0.0);
  const double with = coverage_with_overlap(1.0);
  // Without overlap each window's ~3-member cluster is rare → ≈0 coverage.
  EXPECT_LT(without, 0.2);
  // With a one-window carry the cluster clears the threshold.
  EXPECT_GT(with, 0.7);
}

TEST(Overlap, NeverDoubleCountsCoverage) {
  // A fast-cadence app is fully covered either way; overlap must not
  // inflate the covered seconds past the observed run time.
  auto covered_seconds = [&](double overlap) {
    sim::SimConfig cfg;
    cfg.ranks = 4;
    cfg.cores_per_node = 4;
    cfg.seed = 6;
    sim::Simulator simulator(cfg);
    VaproOptions opts;
    opts.window_seconds = 0.2;
    opts.window_overlap_seconds = overlap;
    opts.run_diagnosis = false;
    VaproSession session(simulator, opts);
    simulator.run([](sim::RankContext& ctx) -> sim::Task {
      for (int i = 0; i < 200; ++i) {
        co_await ctx.compute(pmu::ComputeWorkload::balanced(2e6, 1));
        co_await ctx.barrier(1);
      }
    });
    return session.coverage_accumulator().covered_total();
  };
  const double plain = covered_seconds(0.0);
  const double overlapped = covered_seconds(0.2);
  EXPECT_NEAR(overlapped, plain, 0.05 * plain);
}

TEST(Overlap, HeatmapCellsNotDuplicated) {
  sim::SimConfig cfg;
  cfg.ranks = 1;
  cfg.cores_per_node = 4;
  cfg.seed = 7;
  sim::Simulator simulator(cfg);
  VaproOptions opts;
  opts.window_seconds = 0.2;
  opts.window_overlap_seconds = 0.2;
  opts.bin_seconds = 0.1;
  opts.run_diagnosis = false;
  VaproSession session(simulator, opts);
  auto result = simulator.run([](sim::RankContext& ctx) -> sim::Task {
    for (int i = 0; i < 100; ++i) {
      co_await ctx.compute(pmu::ComputeWorkload::balanced(2e6, 1));
      co_await ctx.probe(1);
    }
  });
  // Total deposited fragment-seconds cannot exceed the wall time.
  const auto& map = session.computation_map();
  double deposited = 0;
  for (int b = 0; b < map.bins(); ++b) deposited += map.weight(0, b);
  EXPECT_LE(deposited, result.makespan * 1.01);
  EXPECT_GT(deposited, result.makespan * 0.5);
}

}  // namespace
}  // namespace vapro::core
