// Tests for the trace subsystem: recording, binary round trip, replay
// fidelity, and offline re-analysis equivalence with the live session.
#include <gtest/gtest.h>

#include <cstdio>

#include "src/apps/npb.hpp"
#include "src/apps/solvers.hpp"
#include "src/core/vapro.hpp"
#include "src/sim/runtime.hpp"
#include "src/trace/offline.hpp"
#include "src/trace/trace.hpp"

namespace vapro::trace {
namespace {

sim::SimConfig noisy_config() {
  sim::SimConfig cfg;
  cfg.ranks = 16;
  cfg.cores_per_node = 8;
  cfg.seed = 55;
  sim::NoiseSpec dimm;
  dimm.kind = sim::NoiseKind::kSlowDram;
  dimm.node = 1;
  dimm.magnitude = 3.0;
  cfg.noises.push_back(dimm);
  return cfg;
}

Trace record_nekbone() {
  sim::Simulator simulator(noisy_config());
  TraceWriter writer;
  simulator.set_interceptor(&writer);
  apps::NekboneParams p;
  p.iters = 120;
  simulator.run(apps::nekbone(p));
  return writer.take();
}

TEST(Trace, RecordsBeginEndPairsInTimeOrder) {
  Trace trace = record_nekbone();
  ASSERT_GT(trace.size(), 1000u);
  double prev = 0.0;
  std::size_t begins = 0, ends = 0, program_ends = 0;
  for (const TraceEvent& ev : trace.events()) {
    EXPECT_GE(ev.time, prev);
    prev = ev.time;
    switch (ev.kind) {
      case EventKind::kCallBegin: ++begins; break;
      case EventKind::kCallEnd: ++ends; break;
      case EventKind::kProgramEnd: ++program_ends; break;
    }
  }
  EXPECT_EQ(begins, ends);
  EXPECT_EQ(program_ends, 16u);
}

TEST(Trace, BinaryRoundTripIsLossless) {
  Trace trace = record_nekbone();
  const std::string path = "/tmp/vapro_trace_test.vprt";
  trace.save(path);
  Trace loaded = Trace::load(path);
  std::remove(path.c_str());

  ASSERT_EQ(loaded.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); i += 97) {  // spot-check stride
    const TraceEvent& a = trace.events()[i];
    const TraceEvent& b = loaded.events()[i];
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_DOUBLE_EQ(a.time, b.time);
    EXPECT_EQ(a.info.rank, b.info.rank);
    EXPECT_EQ(a.info.site, b.info.site);
    EXPECT_EQ(a.info.kind, b.info.kind);
    EXPECT_DOUBLE_EQ(a.info.args.bytes, b.info.args.bytes);
    EXPECT_EQ(a.info.truth_class_since_last, b.info.truth_class_since_last);
    EXPECT_EQ(a.info.path, b.info.path);
    for (std::size_t c = 0; c < pmu::kCounterCount; ++c)
      EXPECT_DOUBLE_EQ(a.ground_truth.values[c], b.ground_truth.values[c]);
  }
}

TEST(Trace, LoadRejectsGarbage) {
  const std::string path = "/tmp/vapro_trace_garbage.vprt";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("this is not a trace", f);
    std::fclose(f);
  }
  EXPECT_DEATH(Trace::load(path), "not a vapro trace");
  std::remove(path.c_str());
}

TEST(Trace, ReplayFeedsEveryEvent) {
  Trace trace = record_nekbone();
  struct Counter final : sim::Interceptor {
    std::size_t begins = 0, ends = 0, finishes = 0;
    void on_call_begin(const sim::InvocationInfo&, double,
                       const pmu::CounterSample&) override {
      ++begins;
    }
    void on_call_end(const sim::InvocationInfo&, double,
                     const pmu::CounterSample&) override {
      ++ends;
    }
    void on_program_end(sim::RankId, double) override { ++finishes; }
  } sink;
  TraceReplayer(trace).replay(sink);
  EXPECT_EQ(sink.begins + sink.ends + sink.finishes, trace.size());
}

TEST(Offline, MatchesLiveDetection) {
  // Record with a tee into a live Vapro session, then analyze the trace
  // offline with the same options — the detected region must agree.
  sim::Simulator simulator(noisy_config());
  core::VaproOptions live_opts;
  live_opts.window_seconds = 0.25;
  live_opts.pmu_jitter = 0.0;  // align live and offline reads
  core::VaproSession live(simulator, live_opts);
  // The session attached itself; re-attach a writer that tees into it
  // (set_interceptor replaces, so wire the tee explicitly).
  TraceWriter teeing(const_cast<core::VaproClient*>(&live.client()));
  simulator.set_interceptor(&teeing);
  apps::NekboneParams p;
  p.iters = 120;
  simulator.run(apps::nekbone(p));

  auto live_regions = live.locate(core::FragmentKind::kComputation);
  ASSERT_FALSE(live_regions.empty());

  OfflineOptions oopts;
  oopts.window_seconds = 0.25;
  OfflineSession offline(teeing.trace(), oopts);
  auto offline_regions = offline.locate(core::FragmentKind::kComputation);
  ASSERT_FALSE(offline_regions.empty());
  EXPECT_EQ(offline_regions.front().rank_lo, live_regions.front().rank_lo);
  EXPECT_EQ(offline_regions.front().rank_hi, live_regions.front().rank_hi);
  EXPECT_NEAR(offline_regions.front().mean_perf,
              live_regions.front().mean_perf, 0.05);
}

TEST(Offline, KnobSweepWithoutRerun) {
  Trace trace = record_nekbone();
  // Same trace, different variance thresholds: stricter threshold finds
  // fewer/smaller regions, without re-running anything.
  OfflineOptions strict;
  strict.variance_threshold = 0.5;
  OfflineOptions lax;
  lax.variance_threshold = 0.95;
  const auto strict_regions =
      OfflineSession(trace, strict).locate(core::FragmentKind::kComputation);
  const auto lax_regions =
      OfflineSession(trace, lax).locate(core::FragmentKind::kComputation);
  std::size_t strict_cells = 0, lax_cells = 0;
  for (const auto& r : strict_regions) strict_cells += r.cells;
  for (const auto& r : lax_regions) lax_cells += r.cells;
  EXPECT_LE(strict_cells, lax_cells);
  EXPECT_FALSE(lax_regions.empty());
}

TEST(Offline, DiagnosisWorksFromTrace) {
  Trace trace = record_nekbone();
  OfflineOptions opts;
  opts.window_seconds = 0.25;
  OfflineSession offline(trace, opts);
  ASSERT_TRUE(offline.server().diagnosis_finished());
  ASSERT_FALSE(offline.diagnosis().culprits.empty());
  EXPECT_EQ(offline.diagnosis().culprits.front(),
            core::FactorId::kDramBound);
}

TEST(Trace, VolumeDwarfsFragmentSummaries) {
  // The §7 argument: tracing moves far more data than Vapro's fragments.
  sim::Simulator simulator(noisy_config());
  core::VaproOptions opts;
  core::VaproSession session(simulator, opts);
  TraceWriter writer(const_cast<core::VaproClient*>(&session.client()));
  simulator.set_interceptor(&writer);
  apps::NekboneParams p;
  p.iters = 120;
  simulator.run(apps::nekbone(p));
  EXPECT_GT(writer.trace().byte_size(), session.bytes_recorded());
}

}  // namespace
}  // namespace vapro::trace
