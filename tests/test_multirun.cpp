// Tests for between-executions variance analysis (MultiRunStudy): the
// cross-run baseline must flag uniformly slow submissions that within-run
// comparison cannot see.
#include <gtest/gtest.h>

#include "src/apps/npb.hpp"
#include "src/core/multirun.hpp"
#include "src/sim/runtime.hpp"

namespace vapro::core {
namespace {

sim::SimConfig quiet_cfg() {
  sim::SimConfig cfg;
  cfg.ranks = 8;
  cfg.cores_per_node = 8;
  cfg.seed = 9;
  return cfg;
}

sim::SimConfig slow_cfg() {
  sim::SimConfig cfg = quiet_cfg();
  // The whole machine is memory-starved: every rank equally slow, so
  // within-run normalization sees nothing abnormal.
  sim::NoiseSpec mem;
  mem.kind = sim::NoiseKind::kMemoryBandwidth;
  mem.magnitude = 3.0;
  cfg.noises.push_back(mem);
  return cfg;
}

apps::NpbParams cg_params() {
  apps::NpbParams p;
  p.iters = 25;
  p.warmup_iters = 1;
  return p;
}

TEST(MultiRun, FlagsUniformlySlowSubmission) {
  VaproOptions opts;
  opts.window_seconds = 0.1;
  MultiRunStudy study(opts);

  sim::Simulator good(quiet_cfg());
  auto r0 = study.execute(good, apps::cg(cg_params()));
  auto r1 = study.execute(good, apps::cg(cg_params()));
  EXPECT_GT(r0.mean_computation_perf, 0.9);
  EXPECT_GT(r1.mean_computation_perf, 0.9);

  // Within the slow run, every rank is equally slow — but against the
  // cross-run baseline the submission scores badly.
  sim::Simulator bad(slow_cfg());
  auto r2 = study.execute(bad, apps::cg(cg_params()));
  EXPECT_LT(r2.mean_computation_perf, 0.7);
  EXPECT_GT(r2.makespan, r0.makespan);

  auto slow = study.slow_runs(0.85);
  ASSERT_EQ(slow.size(), 1u);
  EXPECT_EQ(slow[0], 2);
  EXPECT_NE(study.summary().find("SLOW"), std::string::npos);
}

TEST(MultiRun, WithinRunSessionCannotSeeUniformSlowness) {
  // Control: a standalone session on the slow machine reports ≈1.0 —
  // every fragment's twins are equally slow.  This is exactly the gap
  // MultiRunStudy closes.
  sim::Simulator bad(slow_cfg());
  VaproOptions opts;
  opts.window_seconds = 0.1;
  opts.run_diagnosis = false;
  VaproSession session(bad, opts);
  bad.run(apps::cg(cg_params()));
  EXPECT_GT(session.computation_map().overall_mean(), 0.9);
}

TEST(MultiRun, BaselineTightensOverRuns) {
  // A later faster run can retroactively expose earlier runs as slow —
  // scores are computed against the baseline available at their time, so
  // the FIRST run always scores ≈1, and subsequent equal runs stay ≈1.
  VaproOptions opts;
  opts.window_seconds = 0.1;
  MultiRunStudy study(opts);
  sim::Simulator bad(slow_cfg());
  auto r0 = study.execute(bad, apps::cg(cg_params()));
  EXPECT_GT(r0.mean_computation_perf, 0.9);  // nothing to compare against
  sim::Simulator good(quiet_cfg());
  study.execute(good, apps::cg(cg_params()));
  auto r2 = study.execute(bad, apps::cg(cg_params()));
  EXPECT_LT(r2.mean_computation_perf, 0.7);  // now the twins exist
}

TEST(MultiRun, SummaryListsEveryRun) {
  MultiRunStudy study;
  sim::Simulator s(quiet_cfg());
  study.execute(s, apps::cg(cg_params()));
  study.execute(s, apps::cg(cg_params()));
  EXPECT_EQ(study.runs().size(), 2u);
  const std::string text = study.summary();
  EXPECT_NE(text.find("run"), std::string::npos);
  EXPECT_NE(text.find("0"), std::string::npos);
  EXPECT_NE(text.find("1"), std::string::npos);
}

}  // namespace
}  // namespace vapro::core
