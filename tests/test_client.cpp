// Direct unit tests of the VaproClient: fragment cutting, state
// announcements, sampling decisions, counter staging, storage accounting,
// and the enhanced-profiling transfer-time path — driven by synthetic
// intercept events, no simulator involved.
#include <gtest/gtest.h>

#include "src/core/client.hpp"

namespace vapro::core {
namespace {

sim::InvocationInfo call(int rank, sim::CallSiteId site,
                         sim::OpKind kind = sim::OpKind::kBarrier) {
  sim::InvocationInfo info;
  info.rank = rank;
  info.site = site;
  info.kind = kind;
  return info;
}

pmu::CounterSample counters_at(double tot_ins) {
  pmu::CounterSample s;
  s[pmu::Counter::kTotIns] = tot_ins;
  return s;
}

ClientOptions exact_options() {
  ClientOptions opts;
  opts.pmu_jitter = 0.0;  // exact reads for assertion-friendly tests
  return opts;
}

TEST(Client, CutsComputationFragmentBetweenCalls) {
  VaproClient client(1, exact_options());
  auto c1 = call(0, 10);
  client.on_call_begin(c1, 1.0, counters_at(100));
  client.on_call_end(c1, 1.1, counters_at(100));
  auto c2 = call(0, 11);
  client.on_call_begin(c2, 2.1, counters_at(400));
  client.on_call_end(c2, 2.2, counters_at(400));

  FragmentBatch batch = client.drain();
  // comp(start→10), inv(10), comp(10→11), inv(11).
  ASSERT_EQ(batch.fragments.size(), 4u);
  const FragmentView comp = batch.fragments[2];
  EXPECT_EQ(comp.kind(), FragmentKind::kComputation);
  EXPECT_DOUBLE_EQ(comp.start_time(), 1.1);
  EXPECT_DOUBLE_EQ(comp.end_time(), 2.1);
  EXPECT_DOUBLE_EQ(comp.counters()[pmu::Counter::kTotIns], 300.0);
  const FragmentView inv = batch.fragments[3];
  EXPECT_EQ(inv.kind(), FragmentKind::kCommunication);
  EXPECT_NEAR(inv.duration(), 0.1, 1e-12);
}

TEST(Client, FirstFragmentComesFromStartState) {
  VaproClient client(1, exact_options());
  auto c = call(0, 10);
  client.on_call_begin(c, 0.5, counters_at(50));
  client.on_call_end(c, 0.6, counters_at(50));
  FragmentBatch batch = client.drain();
  ASSERT_GE(batch.fragments.size(), 1u);
  EXPECT_EQ(batch.fragments[0].from(), kStartState);
}

TEST(Client, AnnouncesEachStateOnce) {
  VaproClient client(2, exact_options());
  for (int rank = 0; rank < 2; ++rank) {
    for (int rep = 0; rep < 3; ++rep) {
      auto c = call(rank, 10);
      client.on_call_begin(c, rep + rank * 10.0, counters_at(0));
      client.on_call_end(c, rep + rank * 10.0 + 0.1, counters_at(0));
    }
  }
  FragmentBatch batch = client.drain();
  EXPECT_EQ(batch.new_states.size(), 1u);  // same site everywhere
}

TEST(Client, ProbesCutButAreNotRecorded) {
  VaproClient client(1, exact_options());
  auto probe = call(0, 7, sim::OpKind::kProbe);
  client.on_call_begin(probe, 1.0, counters_at(10));
  client.on_call_end(probe, 1.0, counters_at(10));
  FragmentBatch batch = client.drain();
  ASSERT_EQ(batch.fragments.size(), 1u);  // only the computation fragment
  EXPECT_EQ(batch.fragments[0].kind(), FragmentKind::kComputation);
}

TEST(Client, IoOpsProduceIoFragments) {
  VaproClient client(1, exact_options());
  auto rd = call(0, 3, sim::OpKind::kFileRead);
  rd.args.bytes = 4096;
  rd.args.fd = 9;
  client.on_call_begin(rd, 1.0, counters_at(0));
  client.on_call_end(rd, 1.2, counters_at(0));
  FragmentBatch batch = client.drain();
  ASSERT_EQ(batch.fragments.size(), 2u);
  EXPECT_EQ(batch.fragments[1].kind(), FragmentKind::kIo);
  EXPECT_DOUBLE_EQ(batch.fragments[1].args().bytes, 4096);
}

TEST(Client, EnhancedProfilingShrinksWaitFragments) {
  VaproClient client(1, exact_options());
  auto wait = call(0, 5, sim::OpKind::kWait);
  wait.args.transfer_seconds = 0.002;  // library-reported transfer time
  client.on_call_begin(wait, 1.0, counters_at(0));
  client.on_call_end(wait, 1.5, counters_at(0));  // 0.5 s of waiting
  FragmentBatch batch = client.drain();
  ASSERT_EQ(batch.fragments.size(), 2u);
  EXPECT_NEAR(batch.fragments[1].duration(), 0.002, 1e-12);
}

TEST(Client, BackoffSamplingKeepsPowersOfTwo) {
  ClientOptions opts = exact_options();
  opts.sampling = SamplingPolicy::kBackoff;
  opts.sampling_warmup = 4;
  VaproClient client(1, opts);
  for (int i = 0; i < 64; ++i) {
    auto c = call(0, 10);
    client.on_call_begin(c, i * 1.0, counters_at(i));
    client.on_call_end(c, i * 1.0 + 0.1, counters_at(i));
  }
  // Recorded occurrences: 1..4 (warmup) plus 8, 16, 32, 64.
  EXPECT_EQ(client.invocations_seen(), 64u);
  EXPECT_EQ(client.invocations_sampled_out(), 64u - 8u);
}

TEST(Client, SkipShortAlwaysKeepsLongSites) {
  ClientOptions opts = exact_options();
  opts.sampling = SamplingPolicy::kSkipShort;
  opts.sampling_warmup = 4;
  opts.short_threshold_seconds = 1e-3;
  VaproClient client(1, opts);
  // Long site: 10 ms spans.
  for (int i = 0; i < 32; ++i) {
    auto c = call(0, 10);
    client.on_call_begin(c, i * 0.01, counters_at(i));
    client.on_call_end(c, i * 0.01 + 0.005, counters_at(i));
  }
  EXPECT_EQ(client.invocations_sampled_out(), 0u);
}

TEST(Client, SkipShortDecimatesShortSites) {
  ClientOptions opts = exact_options();
  opts.sampling = SamplingPolicy::kSkipShort;
  opts.sampling_warmup = 4;
  opts.short_threshold_seconds = 1e-3;
  opts.short_keep_one_in = 8;
  VaproClient client(1, opts);
  // Short site: 10 µs spans.
  for (int i = 0; i < 100; ++i) {
    auto c = call(0, 10);
    client.on_call_begin(c, i * 1e-5, counters_at(i));
    client.on_call_end(c, i * 1e-5 + 5e-6, counters_at(i));
  }
  EXPECT_GT(client.invocations_sampled_out(), 70u);
  EXPECT_LT(client.invocations_sampled_out(), 96u);
}

TEST(Client, CounterConfigurationRespectsBudget) {
  ClientOptions opts = exact_options();
  opts.pmu_budget = 2;
  VaproClient client(4, opts);
  EXPECT_TRUE(client.configure_counters(
      {pmu::Counter::kSlotsBackend, pmu::Counter::kStallsCore}));
  EXPECT_FALSE(client.configure_counters({pmu::Counter::kStallsL1,
                                          pmu::Counter::kStallsL2,
                                          pmu::Counter::kStallsL3}));
}

TEST(Client, StorageAccountingGrows) {
  VaproClient client(1, exact_options());
  EXPECT_EQ(client.bytes_recorded(), 0u);
  auto c = call(0, 1);
  client.on_call_begin(c, 1.0, counters_at(0));
  client.on_call_end(c, 1.1, counters_at(0));
  EXPECT_GT(client.bytes_recorded(), 0u);
  EXPECT_EQ(client.fragments_recorded(), 2u);
}

TEST(Client, DrainResetsTheBuffer) {
  VaproClient client(1, exact_options());
  auto c = call(0, 1);
  client.on_call_begin(c, 1.0, counters_at(0));
  client.on_call_end(c, 1.1, counters_at(0));
  EXPECT_FALSE(client.drain().fragments.empty());
  EXPECT_TRUE(client.drain().fragments.empty());
}

TEST(Client, RanksAreIndependent) {
  VaproClient client(2, exact_options());
  // Rank 0 establishes state; rank 1's first fragment must still come
  // from the start state, not rank 0's last state.
  auto c0 = call(0, 10);
  client.on_call_begin(c0, 1.0, counters_at(0));
  client.on_call_end(c0, 1.1, counters_at(0));
  auto c1 = call(1, 11);
  client.on_call_begin(c1, 2.0, counters_at(0));
  client.on_call_end(c1, 2.1, counters_at(0));
  FragmentBatch batch = client.drain();
  ASSERT_EQ(batch.fragments.size(), 4u);
  EXPECT_EQ(batch.fragments[2].from(), kStartState);
  EXPECT_EQ(batch.fragments[2].rank(), 1);
}

}  // namespace
}  // namespace vapro::core
