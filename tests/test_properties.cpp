// Property-based tests: invariants that must hold across randomized inputs
// and parameter sweeps, not just on hand-picked cases.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>
#include <vector>

#include "src/core/clustering.hpp"
#include "src/core/detection.hpp"
#include "src/pmu/core_model.hpp"
#include "src/sim/network.hpp"
#include "src/sim/noise.hpp"
#include "src/stats/dist.hpp"
#include "src/stats/ols.hpp"
#include "src/stats/special.hpp"
#include "src/util/rng.hpp"

namespace vapro {
namespace {

// ---------------------------------------------------------------------
// Core-model monotonicity: more environmental pressure never speeds the
// machine up.  Swept across magnitudes.
// ---------------------------------------------------------------------

class FactorEnv final : public pmu::Environment {
 public:
  double dram = 1.0, l2 = 1.0, share = 1.0, pf = 0.0;
  double dram_factor(const pmu::EnvQuery&) const override { return dram; }
  double l2_factor(const pmu::EnvQuery&) const override { return l2; }
  double cpu_share(const pmu::EnvQuery&) const override { return share; }
  double soft_pf_rate(const pmu::EnvQuery&) const override { return pf; }
};

class DramMonotonicity : public ::testing::TestWithParam<double> {};

TEST_P(DramMonotonicity, TimeNondecreasingInDramFactor) {
  pmu::MachineParams params;
  params.time_jitter = 0.0;  // isolate the deterministic part
  pmu::CoreModel model(params, 1);
  FactorEnv weak, strong;
  weak.dram = GetParam();
  strong.dram = GetParam() * 1.5;
  auto w = pmu::ComputeWorkload::memory_bound(1e6);
  const double t_weak = model.execute(w, {0, 0, 0}, weak).cpu_seconds;
  const double t_strong = model.execute(w, {0, 0, 0}, strong).cpu_seconds;
  EXPECT_GT(t_strong, t_weak);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DramMonotonicity,
                         ::testing::Values(1.0, 1.5, 2.0, 4.0, 8.0));

class ShareMonotonicity : public ::testing::TestWithParam<double> {};

TEST_P(ShareMonotonicity, WallTimeNonincreasingInShare) {
  pmu::MachineParams params;
  pmu::CoreModel a(params, 1), b(params, 1);
  FactorEnv low, high;
  low.share = GetParam();
  high.share = std::min(1.0, GetParam() + 0.25);
  auto w = pmu::ComputeWorkload::balanced(3e9);  // long → concentrated
  const double t_low = a.execute(w, {0, 0, 0}, low).wall_seconds();
  const double t_high = b.execute(w, {0, 0, 0}, high).wall_seconds();
  EXPECT_GT(t_low, t_high * 0.98);  // allow jitter slack
}

INSTANTIATE_TEST_SUITE_P(Sweep, ShareMonotonicity,
                         ::testing::Values(0.25, 0.4, 0.5, 0.7));

TEST(CoreModelProperty, CountersAreNonnegativeAcrossRandomWorkloads) {
  util::Rng rng(11);
  pmu::MachineParams params;
  pmu::CoreModel model(params, 2);
  FactorEnv env;
  for (int trial = 0; trial < 200; ++trial) {
    pmu::ComputeWorkload w;
    w.instructions = rng.uniform(1e3, 1e8);
    w.mem_refs = w.instructions * rng.uniform(0.0, 0.6);
    w.l1_miss = rng.uniform(0.0, 0.3);
    w.l2_miss = rng.uniform(0.0, 1.0);
    w.l3_miss = rng.uniform(0.0, 1.0);
    env.dram = rng.uniform(1.0, 5.0);
    env.l2 = rng.uniform(1.0, 10.0);
    env.share = rng.uniform(0.2, 1.0);
    env.pf = rng.uniform(0.0, 1e4);
    auto out = model.execute(w, {0, 0, 0}, env);
    EXPECT_GE(out.cpu_seconds, 0.0);
    EXPECT_GE(out.suspended_seconds, 0.0);
    for (double v : out.delta.values) EXPECT_GE(v, 0.0);
    // TSC covers on-CPU cycles.
    EXPECT_GE(out.delta[pmu::Counter::kTsc] + 1.0,
              out.delta[pmu::Counter::kCpuClkUnhalted]);
  }
}

// ---------------------------------------------------------------------
// Clustering invariants under random inputs.
// ---------------------------------------------------------------------

core::Stg random_stg(util::Rng& rng, std::size_t n, int classes) {
  core::Stg stg(core::StgMode::kContextFree);
  sim::InvocationInfo i1, i2;
  i1.site = 1;
  i2.site = 2;
  auto k1 = stg.touch_vertex(i1);
  auto k2 = stg.touch_vertex(i2);
  for (std::size_t i = 0; i < n; ++i) {
    core::Fragment f;
    f.kind = core::FragmentKind::kComputation;
    f.from = k1;
    f.to = k2;
    f.start_time = 0.01 * static_cast<double>(i);
    f.end_time = f.start_time + rng.uniform(0.001, 0.01);
    f.counters[pmu::Counter::kTotIns] =
        1e5 * std::pow(1.4, static_cast<double>(rng.uniform_u64(
                                static_cast<std::uint64_t>(classes)))) *
        rng.normal(1.0, 0.004);
    stg.add_fragment(std::move(f));
  }
  return stg;
}

TEST(ClusteringProperty, PartitionIsCompleteAndDisjoint) {
  util::Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    auto stg = random_stg(rng, 500, 6);
    auto result = core::cluster_stg(stg, core::ClusterOptions{});
    std::vector<int> seen(stg.fragments().size(), 0);
    for (const auto& c : result.clusters)
      for (std::size_t idx : c.members) ++seen[idx];
    for (int count : seen) EXPECT_EQ(count, 1);
  }
}

TEST(ClusteringProperty, MembersLieWithinSeedRadius) {
  util::Rng rng(5);
  core::ClusterOptions opts;
  auto stg = random_stg(rng, 800, 5);
  auto result = core::cluster_stg(stg, opts);
  for (const auto& c : result.clusters) {
    for (std::size_t idx : c.members) {
      auto v = core::make_workload_vector(stg.fragment(idx), opts.proxies);
      // Norm distance from the seed is bounded by the threshold radius.
      EXPECT_LE(std::fabs(v.norm() - c.seed_norm),
                std::max(c.seed_norm * opts.threshold, 1e-12) + 1e-9);
    }
  }
}

TEST(ClusteringProperty, SeedNormIsClusterMinimum) {
  util::Rng rng(7);
  auto stg = random_stg(rng, 600, 4);
  auto result = core::cluster_stg(stg, core::ClusterOptions{});
  for (const auto& c : result.clusters) {
    for (std::size_t idx : c.members) {
      auto v = core::make_workload_vector(stg.fragment(idx),
                                          core::ClusterOptions{}.proxies);
      EXPECT_GE(v.norm() + 1e-9, c.seed_norm);
    }
  }
}

TEST(ClusteringProperty, NarrowerThresholdNeverMergesMore) {
  util::Rng rng(9);
  auto stg = random_stg(rng, 700, 6);
  core::ClusterOptions narrow, wide;
  narrow.threshold = 0.02;
  wide.threshold = 0.10;
  auto n = core::cluster_stg(stg, narrow);
  auto w = core::cluster_stg(stg, wide);
  EXPECT_GE(n.clusters.size(), w.clusters.size());
}

TEST(NormalizationProperty, PerfAlwaysInUnitInterval) {
  util::Rng rng(13);
  auto stg = random_stg(rng, 900, 5);
  auto clusters = core::cluster_stg(stg, core::ClusterOptions{});
  auto normalized = core::normalize_fragments(stg, clusters, nullptr);
  EXPECT_FALSE(normalized.empty());
  for (const auto& nf : normalized) {
    EXPECT_GT(nf.perf, 0.0);
    EXPECT_LE(nf.perf, 1.0);
  }
}

// ---------------------------------------------------------------------
// Statistics identities.
// ---------------------------------------------------------------------

TEST(StatsProperty, CdfsAreMonotone) {
  for (double prev = -1, x = 0.01; x < 40; x *= 1.4) {
    double v = stats::chi2_cdf(x, 4.0);
    EXPECT_GE(v, prev);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
    prev = v;
  }
  for (double prev = -1, t = -8; t < 8; t += 0.5) {
    double v = stats::student_t_cdf(t, 7.0);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(StatsProperty, GammaRecurrence) {
  // P(a+1, x) = P(a, x) − x^a e^−x / Γ(a+1).
  for (double a : {0.5, 1.5, 3.0}) {
    for (double x : {0.5, 2.0, 7.0}) {
      const double lhs = stats::gamma_p(a + 1, x);
      const double rhs =
          stats::gamma_p(a, x) -
          std::exp(a * std::log(x) - x - std::lgamma(a + 1.0));
      EXPECT_NEAR(lhs, rhs, 1e-10);
    }
  }
}

TEST(OlsProperty, ResidualsOrthogonalToRegressors) {
  util::Rng rng(17);
  const std::size_t n = 120;
  std::vector<double> x1(n), x2(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x1[i] = rng.uniform(0, 1);
    x2[i] = rng.uniform(0, 1);
    y[i] = 2 + x1[i] - 0.5 * x2[i] + rng.normal(0, 0.3);
  }
  auto fit = stats::ols_fit_columns(y, {x1, x2}, true);
  ASSERT_TRUE(fit.ok);
  double dot1 = 0, dot2 = 0, sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double r = y[i] - fit.intercept - fit.coefficients[0] * x1[i] -
                     fit.coefficients[1] * x2[i];
    dot1 += r * x1[i];
    dot2 += r * x2[i];
    sum += r;
  }
  EXPECT_NEAR(dot1, 0.0, 1e-8);
  EXPECT_NEAR(dot2, 0.0, 1e-8);
  EXPECT_NEAR(sum, 0.0, 1e-8);
}

// ---------------------------------------------------------------------
// Network model sanity across random endpoints.
// ---------------------------------------------------------------------

TEST(NetworkProperty, TimesPositiveAndMonotoneInBytes) {
  sim::Topology topo{96, 24};
  sim::NetworkModel net(sim::NetworkParams{}, topo);
  util::Rng rng(19);
  for (int trial = 0; trial < 100; ++trial) {
    int a = static_cast<int>(rng.uniform_u64(96));
    int b = static_cast<int>(rng.uniform_u64(96));
    double small = net.p2p_time(1e3, a, b, 1.0);
    double large = net.p2p_time(1e6, a, b, 1.0);
    EXPECT_GT(small, 0.0);
    EXPECT_GT(large, small);
  }
}

// ---------------------------------------------------------------------
// Clustering invariants (Algorithm 1): the norm-sorted greedy sweep must
// produce the same clusters regardless of fragment arrival order, and a
// looser threshold can only merge clusters, never split them.
// ---------------------------------------------------------------------

sim::InvocationInfo cluster_call(sim::CallSiteId site) {
  sim::InvocationInfo info;
  info.site = site;
  info.kind = sim::OpKind::kBarrier;
  return info;
}

// One edge populated with computation fragments carrying the given
// TOT_INS workloads, in exactly that order.
core::Stg stg_with_workloads(const std::vector<double>& workloads) {
  core::Stg stg(core::StgMode::kContextFree);
  const core::StateKey a = stg.touch_vertex(cluster_call(1));
  const core::StateKey b = stg.touch_vertex(cluster_call(2));
  double t = 0.0;
  for (double w : workloads) {
    core::Fragment f;
    f.kind = core::FragmentKind::kComputation;
    f.from = a;
    f.to = b;
    f.start_time = t;
    f.end_time = t + 0.01;
    f.counters[pmu::Counter::kTotIns] = w;
    stg.add_fragment(f);
    t += 0.02;
  }
  return stg;
}

// Order-independent fingerprint of a clustering: sorted
// (size, seed_norm, rare) triples.
std::vector<std::tuple<std::size_t, double, bool>> cluster_signature(
    const core::ClusteringResult& result) {
  std::vector<std::tuple<std::size_t, double, bool>> sig;
  for (const core::Cluster& c : result.clusters)
    sig.emplace_back(c.members.size(), c.seed_norm, c.rare);
  std::sort(sig.begin(), sig.end());
  return sig;
}

TEST(ClusteringProperty, StableUnderPermutationOfEqualNormFragments) {
  // Three workload classes, each heavily duplicated so equal-norm ties are
  // the common case, plus a rare singleton.
  std::vector<double> workloads;
  for (int i = 0; i < 8; ++i) workloads.push_back(1000.0);
  for (int i = 0; i < 8; ++i) workloads.push_back(1030.0);  // within 5%
  for (int i = 0; i < 8; ++i) workloads.push_back(2000.0);
  workloads.push_back(9000.0);

  const auto baseline =
      cluster_signature(cluster_stg(stg_with_workloads(workloads),
                                    core::ClusterOptions{}));
  ASSERT_FALSE(baseline.empty());

  util::Rng rng(2024);
  for (int round = 0; round < 16; ++round) {
    // Fisher–Yates on the arrival order.
    std::vector<double> shuffled = workloads;
    for (std::size_t i = shuffled.size(); i > 1; --i)
      std::swap(shuffled[i - 1], shuffled[rng.uniform_u64(i)]);
    const auto sig = cluster_signature(
        cluster_stg(stg_with_workloads(shuffled), core::ClusterOptions{}));
    EXPECT_EQ(sig, baseline) << "permutation round " << round;
  }
}

TEST(ClusteringProperty, ClusterCountMonotoneInThreshold) {
  util::Rng rng(77);
  for (int round = 0; round < 8; ++round) {
    // Random 1-D workloads spread over a decade: plenty of threshold
    // boundaries to cross as the knob loosens.
    std::vector<double> workloads;
    for (int i = 0; i < 48; ++i)
      workloads.push_back(rng.uniform(1000.0, 10000.0));
    const core::Stg stg = stg_with_workloads(workloads);

    std::size_t prev_count = workloads.size() + 1;
    for (double threshold :
         {0.001, 0.005, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 3.0, 10.0}) {
      core::ClusterOptions opts;
      opts.threshold = threshold;
      const auto result = cluster_stg(stg, opts);
      // Every fragment lands in exactly one cluster at every threshold.
      std::size_t members = 0;
      for (const core::Cluster& c : result.clusters) members += c.members.size();
      EXPECT_EQ(members, workloads.size());
      EXPECT_LE(result.clusters.size(), prev_count)
          << "threshold " << threshold << " split clusters";
      prev_count = result.clusters.size();
    }
    // Sanity for the sweep itself: the loosest threshold really merges.
    EXPECT_EQ(prev_count, 1u);
  }
}

TEST(NoiseProperty, QuietScheduleIsIdentity) {
  sim::NoiseSchedule quiet;
  for (int n = 0; n < 4; ++n) {
    for (double t : {0.0, 1.0, 100.0}) {
      pmu::EnvQuery q{n, 0, t};
      EXPECT_DOUBLE_EQ(quiet.cpu_share(q), 1.0);
      EXPECT_DOUBLE_EQ(quiet.dram_factor(q), 1.0);
      EXPECT_DOUBLE_EQ(quiet.l2_factor(q), 1.0);
      EXPECT_DOUBLE_EQ(quiet.network_factor(t), 1.0);
      EXPECT_DOUBLE_EQ(quiet.io_factor(t), 1.0);
    }
  }
}

}  // namespace
}  // namespace vapro
