// Self-diagnosis latency surfaces (src/obs/latency): critical-path
// attribution semantics, the tracker ring, the shared JSON/table
// renderers, the window_latency / critical_path journal round trip
// (byte-identical replay), and readback of hand-written v1 journals that
// predate the timing event types.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/core/journal_replay.hpp"
#include "src/core/server.hpp"
#include "src/obs/context.hpp"
#include "src/obs/latency.hpp"
#include "src/util/clock.hpp"

namespace vapro::obs {
namespace {

WindowLatencyRecord make_record(std::int64_t window,
                                std::initializer_list<double> stages) {
  WindowLatencyRecord r;
  r.window = window;
  r.virtual_time = 0.25 * static_cast<double>(window + 1);
  std::size_t i = 0;
  for (double s : stages) r.stage_seconds[i++] = s;
  return r;
}

TEST(WindowLatency, BoundStageIsTheFirstMaximumInCanonicalOrder) {
  // cluster (index 3) strictly dominates.
  WindowLatencyRecord r =
      make_record(0, {0.001, 0.002, 0.003, 0.010, 0.002, 0.001, 0.0, 0.001});
  EXPECT_EQ(r.bound_stage(), 3u);
  EXPECT_STREQ(r.bound_by(), "cluster");
  EXPECT_DOUBLE_EQ(r.bound_seconds(), 0.010);
  EXPECT_NEAR(r.total_seconds(), 0.020, 1e-12);

  // Exact tie between drain (1) and diagnose (6): the earlier stage wins,
  // so attribution is deterministic.
  WindowLatencyRecord tie =
      make_record(1, {0.0, 0.005, 0.0, 0.0, 0.0, 0.0, 0.005, 0.0});
  EXPECT_EQ(tie.bound_stage(), 1u);
  EXPECT_STREQ(tie.bound_by(), "drain");

  // All-zero window: queue_wait (index 0) by the same tie rule.
  EXPECT_EQ(WindowLatencyRecord{}.bound_stage(), 0u);
}

TEST(WindowLatency, TrackerKeepsARingAndCumulativeTotals) {
  CriticalPathTracker tracker(/*keep=*/4);
  EXPECT_EQ(tracker.summary().dominant_stage(), kLatencyStageCount);
  EXPECT_TRUE(tracker.recent().empty());

  for (int w = 0; w < 10; ++w) {
    // stg-bound except window 7, which is cluster-bound.
    tracker.record(make_record(
        w, {0.001, 0.002, 0.004, w == 7 ? 0.008 : 0.001, 0.0, 0.0, 0.0, 0.0}));
  }
  const auto recent = tracker.recent();
  ASSERT_EQ(recent.size(), 4u);  // ring trimmed to keep
  EXPECT_EQ(recent.front().window, 6);
  EXPECT_EQ(recent.back().window, 9);

  const CriticalPathTracker::Summary sum = tracker.summary();
  EXPECT_EQ(sum.windows, 10u);  // totals cover ALL windows, not the ring
  EXPECT_EQ(sum.bound_windows[2], 9u);  // stg
  EXPECT_EQ(sum.bound_windows[3], 1u);  // cluster (window 7)
  EXPECT_EQ(sum.dominant_stage(), 2u);
  EXPECT_NEAR(sum.stage_seconds[2], 10 * 0.004, 1e-12);
  EXPECT_NEAR(sum.total_seconds, 10 * 0.008 + 0.007, 1e-12);
}

TEST(WindowLatency, RenderersNameEveryStageAndTheDominantOne) {
  CriticalPathTracker tracker;
  tracker.record(
      make_record(0, {0.0, 0.001, 0.006, 0.002, 0.0, 0.0, 0.0, 0.001}));
  const std::string latency =
      render_latency_json(tracker.recent(), tracker.summary());
  const std::string critical =
      render_critical_path_json(tracker.recent(), tracker.summary());
  const std::string table =
      render_critical_path_table(tracker.recent(), tracker.summary());
  for (std::size_t s = 0; s < kLatencyStageCount; ++s) {
    EXPECT_NE(critical.find(kLatencyStageNames[s]), std::string::npos)
        << kLatencyStageNames[s];
  }
  EXPECT_NE(latency.find("\"bound_by\":\"stg\""), std::string::npos) << latency;
  EXPECT_NE(critical.find("\"dominant\":\"stg\""), std::string::npos)
      << critical;
  EXPECT_NE(table.find("dominant stage: stg"), std::string::npos) << table;

  // Empty tracker renders a null dominant stage, not garbage.
  CriticalPathTracker empty;
  EXPECT_NE(render_critical_path_json(empty.recent(), empty.summary())
                .find("\"dominant\":null"),
            std::string::npos);
}

TEST(WindowLatency, JournalEventsRoundTripBitExactly) {
  // Values with no short decimal form, so anything less than %.17g in the
  // round trip shows up as inequality.
  WindowLatencyRecord r = make_record(
      3, {1.0 / 3, 0.1, 0.2 / 7, 1e-9, 0.0, 3.14159e-3, 1.0 / 81, 2e-6});

  Journal journal;
  struct Collect final : JournalSink {
    std::vector<JournalEvent> events;
    void on_event(const JournalEvent& ev) override { events.push_back(ev); }
  } sink;
  journal.add_sink(&sink);
  journal_window_latency(journal, r);

  CriticalPathTracker tracker;
  tracker.record(r);
  journal_critical_path(journal, r.window, r.virtual_time, tracker.summary());

  ASSERT_EQ(sink.events.size(), 2u);
  EXPECT_EQ(sink.events[0].type, "window_latency");
  EXPECT_EQ(sink.events[1].type, "critical_path");

  const WindowLatencyRecord back = window_latency_from_event(sink.events[0]);
  EXPECT_EQ(back.window, r.window);
  EXPECT_EQ(back.virtual_time, r.virtual_time);  // bit-exact, not NEAR
  for (std::size_t s = 0; s < kLatencyStageCount; ++s)
    EXPECT_EQ(back.stage_seconds[s], r.stage_seconds[s])
        << kLatencyStageNames[s];

  CriticalPathTracker replay;
  replay.record(back);
  EXPECT_EQ(render_critical_path_table(replay.recent(), replay.summary()),
            render_critical_path_table(tracker.recent(), tracker.summary()));
}

// --- end to end through the analysis server -------------------------------

core::FragmentBatch tiny_window(int ranks, int window) {
  core::FragmentBatch batch;
  sim::InvocationInfo info;
  info.site = static_cast<sim::CallSiteId>(100);
  info.kind = sim::OpKind::kAllreduce;
  const core::StateKey key =
      core::make_state_key(core::StgMode::kContextFree, info);
  batch.new_states.push_back(info);
  for (int rank = 0; rank < ranks; ++rank) {
    core::Fragment comp;
    comp.kind = core::FragmentKind::kComputation;
    comp.rank = rank;
    comp.from = core::kStartState;
    comp.to = key;
    comp.start_time = window * 0.25;
    comp.end_time = window * 0.25 + 0.1;
    comp.counters[pmu::Counter::kTotIns] = 1e6;
    batch.fragments.push_back(comp);
    core::Fragment inv;
    inv.op = sim::OpKind::kAllreduce;
    inv.kind = core::FragmentKind::kCommunication;
    inv.rank = rank;
    inv.from = key;
    inv.to = key;
    inv.start_time = comp.end_time;
    inv.end_time = comp.end_time + 0.05;
    inv.args.bytes = 4096;
    inv.args.peer = (rank + 1) % ranks;
    batch.fragments.push_back(inv);
  }
  return batch;
}

TEST(WindowLatency, ServerJournalReplaysTheLiveCriticalPathByteIdentically) {
  const std::string path = "/tmp/vapro_test_latency_journal.jsonl";
  std::remove(path.c_str());

  util::VirtualClock vclock;
  obs::ObsContext ctx;
  ctx.set_clock(&vclock);
  ctx.enable_trace();
  ASSERT_TRUE(ctx.attach_journal_file(path));

  core::ServerOptions opts;
  opts.run_diagnosis = false;
  opts.bin_seconds = 0.05;
  opts.obs = &ctx;
  opts.clock = &vclock;
  constexpr int kRanks = 4;
  constexpr int kWindows = 5;
  {
    core::AnalysisServer server(kRanks, opts);
    for (int w = 0; w < kWindows; ++w) {
      server.process_window(tiny_window(kRanks, w), /*drain_seconds=*/0.01);
      vclock.advance(0.25);
    }
    server.journal_detection_snapshot();
    ctx.journal()->flush();

    // Live JSON endpoints report every window.
    EXPECT_NE(server.render_latency_json().find("\"windows\":5"),
              std::string::npos);
    EXPECT_NE(server.render_critical_path_json().find("\"dominant\":"),
              std::string::npos);

    const core::JournalSummary summary = core::summarize_journal_file(path);
    ASSERT_TRUE(summary.ok) << summary.error;
    ASSERT_EQ(summary.window_latency.size(),
              static_cast<std::size_t>(kWindows));
    EXPECT_EQ(summary.critical_path_events, 1u);
    for (int w = 0; w < kWindows; ++w)
      EXPECT_EQ(summary.window_latency[static_cast<std::size_t>(w)].window, w);

    CriticalPathTracker replay;
    for (const WindowLatencyRecord& r : summary.window_latency)
      replay.record(r);
    const CriticalPathTracker& live = server.latency_tracker();
    EXPECT_EQ(render_critical_path_table(replay.recent(), replay.summary()),
              render_critical_path_table(live.recent(), live.summary()));

    // The replay report gained a critical-path section.
    const std::string report = core::render_journal_summary(summary);
    EXPECT_NE(report.find("## critical path"), std::string::npos) << report;
    EXPECT_NE(report.find("dominant stage:"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(WindowLatency, HandWrittenV1JournalReadsBackWithoutTimingEvents) {
  // A journal written by a v1 producer: no window_latency/critical_path
  // events exist, and unknown future types must be skipped, not fatal.
  const std::string path = "/tmp/vapro_test_latency_v1.jsonl";
  {
    std::ofstream out(path);
    out << "{\"type\":\"journal_header\",\"schema\":\"vapro.journal\","
           "\"schema_version\":1}\n"
        << "{\"seq\":0,\"type\":\"window\",\"window\":0,"
           "\"virtual_time\":0.25,\"fragments\":8}\n"
        << "{\"seq\":1,\"type\":\"some_future_type\",\"window\":0,"
           "\"virtual_time\":0.25,\"payload\":1}\n"
        << "{\"seq\":2,\"type\":\"window\",\"window\":1,"
           "\"virtual_time\":0.5,\"fragments\":8}\n";
  }
  const core::JournalSummary summary = core::summarize_journal_file(path);
  ASSERT_TRUE(summary.ok) << summary.error;
  EXPECT_EQ(summary.windows, 2u);
  EXPECT_TRUE(summary.window_latency.empty());
  EXPECT_EQ(summary.critical_path_events, 0u);
  // No timing data -> no critical-path section in the replay report.
  const std::string report = core::render_journal_summary(summary);
  EXPECT_EQ(report.find("## critical path"), std::string::npos) << report;
  std::remove(path.c_str());
}

}  // namespace
}  // namespace vapro::obs
