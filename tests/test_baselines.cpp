// Tests for the comparison tools: the vSensor-like static baseline and the
// mpiP-like profiler.
#include <gtest/gtest.h>

#include "src/apps/npb.hpp"
#include "src/baselines/mpip.hpp"
#include "src/baselines/vsensor.hpp"
#include "src/sim/runtime.hpp"

namespace vapro::baselines {
namespace {

using pmu::ComputeWorkload;
using sim::RankContext;
using sim::Task;

sim::SimConfig tiny(int ranks) {
  sim::SimConfig cfg;
  cfg.ranks = ranks;
  cfg.cores_per_node = 8;
  cfg.seed = 5;
  return cfg;
}

TEST(Vsensor, CoversOnlyStaticSnippets) {
  sim::Simulator s(tiny(2));
  VsensorTool tool(2, VsensorOptions{});
  s.set_interceptor(&tool);
  auto result = s.run([](RankContext& ctx) -> Task {
    for (int i = 0; i < 20; ++i) {
      ComputeWorkload fixed = ComputeWorkload::balanced(2e6);
      fixed.statically_fixed = true;
      co_await ctx.compute(fixed);
      co_await ctx.barrier(1);
      // Runtime-fixed snippet: same every iteration but not provable.
      co_await ctx.compute(ComputeWorkload::balanced(2e6));
      co_await ctx.barrier(2);
    }
  });
  tool.finalize();
  double total = 0;
  for (double t : result.finish_times) total += t;
  const double cov = tool.coverage(total);
  // Roughly half the compute is static; the dynamic half is invisible.
  EXPECT_GT(cov, 0.25);
  EXPECT_LT(cov, 0.62);
}

TEST(Vsensor, IgnoresProbeDelimitedSnippets) {
  // EP's situation: static compute, but only probes (which vSensor does
  // not insert) delimit it → zero coverage.
  sim::Simulator s(tiny(2));
  VsensorTool tool(2, VsensorOptions{});
  s.set_interceptor(&tool);
  auto result = s.run([](RankContext& ctx) -> Task {
    for (int i = 0; i < 20; ++i) {
      ComputeWorkload fixed = ComputeWorkload::balanced(2e6);
      fixed.statically_fixed = true;
      co_await ctx.compute(fixed);
      co_await ctx.probe(1);
    }
    co_await ctx.allreduce(8, 2);
  });
  tool.finalize();
  double total = 0;
  for (double t : result.finish_times) total += t;
  EXPECT_LT(tool.coverage(total), 0.05);
}

TEST(Vsensor, EpAppHasZeroCoverage) {
  sim::Simulator s(tiny(4));
  VsensorTool tool(4, VsensorOptions{});
  s.set_interceptor(&tool);
  apps::NpbParams p;
  p.iters = 10;
  auto result = s.run(apps::ep(p));
  tool.finalize();
  double total = 0;
  for (double t : result.finish_times) total += t;
  EXPECT_LT(tool.coverage(total), 0.02);
}

TEST(Vsensor, DetectsVarianceInStaticSnippets) {
  sim::SimConfig cfg = tiny(4);
  sim::NoiseSpec noise;
  noise.kind = sim::NoiseKind::kSlowDram;
  noise.node = 0;
  noise.core = 1;  // rank 1 only
  noise.magnitude = 5.0;
  cfg.noises.push_back(noise);
  sim::Simulator s(cfg);
  VsensorTool tool(4, VsensorOptions{});
  s.set_interceptor(&tool);
  s.run([](RankContext& ctx) -> Task {
    for (int i = 0; i < 40; ++i) {
      ComputeWorkload fixed = ComputeWorkload::memory_bound(1e6);
      fixed.statically_fixed = true;
      co_await ctx.compute(fixed);
      co_await ctx.barrier(1);
    }
  });
  tool.finalize();
  auto regions = tool.locate();
  ASSERT_FALSE(regions.empty());
  EXPECT_EQ(regions.front().rank_lo, 1);
  EXPECT_EQ(regions.front().rank_hi, 1);
}

TEST(Mpip, SeparatesCommFromComputation) {
  sim::Simulator s(tiny(2));
  MpipProfiler prof(2);
  s.set_interceptor(&prof);
  auto result = s.run([](RankContext& ctx) -> Task {
    co_await ctx.compute(ComputeWorkload::balanced(3e7));
    for (int i = 0; i < 5; ++i) co_await ctx.barrier(1);
  });
  for (int r = 0; r < 2; ++r) {
    EXPECT_GT(prof.computation_seconds(r), 0.0);
    EXPECT_GE(prof.communication_seconds(r), 0.0);
    EXPECT_NEAR(prof.computation_seconds(r) + prof.communication_seconds(r) +
                    prof.io_seconds(r),
                result.finish_times[static_cast<std::size_t>(r)], 1e-9);
  }
  EXPECT_FALSE(prof.summary().empty());
}

TEST(Mpip, WaitTimeCountsAsCommunication) {
  // The Fig 14 misattribution: a rank delayed by its *partner's* slow
  // computation shows the delay as communication time.
  sim::Simulator s(tiny(2));
  MpipProfiler prof(2);
  s.set_interceptor(&prof);
  s.run([](RankContext& ctx) -> Task {
    if (ctx.rank() == 0) {
      co_await ctx.compute(ComputeWorkload::balanced(3e7));  // ~10 ms
      co_await ctx.send(1, 64, 1);
    } else {
      co_await ctx.recv(0, 2);  // waits ~10 ms
    }
  });
  EXPECT_GT(prof.communication_seconds(1), 5e-3);
  EXPECT_LT(prof.computation_seconds(1), 2e-3);
}

TEST(Mpip, IoAccountedSeparately) {
  sim::Simulator s(tiny(1));
  MpipProfiler prof(1);
  s.set_interceptor(&prof);
  s.run([](RankContext& ctx) -> Task {
    co_await ctx.file_write(3, 1e6, 1);
  });
  EXPECT_GT(prof.io_seconds(0), 0.0);
  EXPECT_DOUBLE_EQ(prof.communication_seconds(0), 0.0);
}

}  // namespace
}  // namespace vapro::baselines
