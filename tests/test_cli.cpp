// Tests for the command-line argument parser used by the driver tools.
#include <gtest/gtest.h>

#include "src/util/cli.hpp"

namespace vapro::util {
namespace {

CliArgs parse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return CliArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, EqualsForm) {
  auto args = parse({"--app=CG", "--ranks=64"});
  EXPECT_EQ(args.get("app", ""), "CG");
  EXPECT_EQ(args.get_int("ranks", 0), 64);
}

TEST(Cli, SpaceForm) {
  auto args = parse({"--app", "SP", "--window", "0.5"});
  EXPECT_EQ(args.get("app", ""), "SP");
  EXPECT_DOUBLE_EQ(args.get_double("window", 0), 0.5);
}

TEST(Cli, BooleanSwitches) {
  auto args = parse({"--ansi", "--list"});
  EXPECT_TRUE(args.get_bool("ansi"));
  EXPECT_TRUE(args.get_bool("list"));
  EXPECT_FALSE(args.get_bool("missing"));
  EXPECT_TRUE(args.get_bool("missing", true));
}

TEST(Cli, RepeatableFlags) {
  auto args = parse({"--noise=cpu:1:0:1:1", "--noise=mem:2:0:1:3"});
  auto noises = args.get_all("noise");
  ASSERT_EQ(noises.size(), 2u);
  EXPECT_EQ(noises[0], "cpu:1:0:1:1");
  EXPECT_EQ(noises[1], "mem:2:0:1:3");
}

TEST(Cli, PositionalsCollected) {
  auto args = parse({"input.txt", "--flag=1", "other"});
  ASSERT_EQ(args.positionals().size(), 2u);
  EXPECT_EQ(args.positionals()[0], "input.txt");
}

TEST(Cli, FallbacksWhenAbsent) {
  auto args = parse({});
  EXPECT_EQ(args.get("x", "dflt"), "dflt");
  EXPECT_EQ(args.get_int("x", 7), 7);
  EXPECT_DOUBLE_EQ(args.get_double("x", 2.5), 2.5);
  EXPECT_FALSE(args.has("x"));
}

TEST(Cli, SplitFields) {
  auto fields = split("cpu:1:0.5:inf:2.0", ':');
  ASSERT_EQ(fields.size(), 5u);
  EXPECT_EQ(fields[0], "cpu");
  EXPECT_EQ(fields[3], "inf");
  // Empty fields survive.
  EXPECT_EQ(split("a::b", ':').size(), 3u);
}

}  // namespace
}  // namespace vapro::util
