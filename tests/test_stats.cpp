// Unit tests for src/stats: special functions against reference values,
// distribution CDFs, descriptive statistics, matrix algebra, OLS inference,
// Farrar–Glauber multicollinearity handling, V-measure.
#include <gtest/gtest.h>

#include <cmath>

#include "src/stats/collinearity.hpp"
#include "src/stats/descriptive.hpp"
#include "src/stats/dist.hpp"
#include "src/stats/matrix.hpp"
#include "src/stats/ols.hpp"
#include "src/stats/special.hpp"
#include "src/stats/vmeasure.hpp"
#include "src/util/rng.hpp"

namespace vapro::stats {
namespace {

// --- special functions (reference values from standard tables) ---

TEST(Special, GammaPKnownValues) {
  // P(1, x) = 1 - e^-x.
  EXPECT_NEAR(gamma_p(1.0, 1.0), 1.0 - std::exp(-1.0), 1e-12);
  EXPECT_NEAR(gamma_p(1.0, 2.5), 1.0 - std::exp(-2.5), 1e-12);
  // P(0.5, x) = erf(sqrt(x)).
  EXPECT_NEAR(gamma_p(0.5, 1.0), std::erf(1.0), 1e-12);
  EXPECT_NEAR(gamma_p(0.5, 4.0), std::erf(2.0), 1e-12);
}

TEST(Special, GammaPQComplementary) {
  for (double a : {0.5, 1.0, 3.0, 10.0}) {
    for (double x : {0.1, 1.0, 5.0, 30.0}) {
      EXPECT_NEAR(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-12);
    }
  }
}

TEST(Special, BetaIncEndpointsAndSymmetry) {
  EXPECT_EQ(beta_inc(2.0, 3.0, 0.0), 0.0);
  EXPECT_EQ(beta_inc(2.0, 3.0, 1.0), 1.0);
  // I_x(a,b) = 1 - I_{1-x}(b,a).
  for (double x : {0.2, 0.5, 0.8}) {
    EXPECT_NEAR(beta_inc(2.5, 1.5, x), 1.0 - beta_inc(1.5, 2.5, 1.0 - x),
                1e-12);
  }
  // I_x(1,1) = x (uniform distribution).
  EXPECT_NEAR(beta_inc(1.0, 1.0, 0.3), 0.3, 1e-12);
}

TEST(Dist, NormalCdf) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.96), 0.9750021, 1e-6);
  EXPECT_NEAR(normal_cdf(-1.96), 0.0249979, 1e-6);
}

TEST(Dist, Chi2Cdf) {
  // chi2(k=2) is Exp(1/2): CDF(x) = 1 - e^{-x/2}.
  EXPECT_NEAR(chi2_cdf(2.0, 2.0), 1.0 - std::exp(-1.0), 1e-12);
  // 95th percentile of chi2(3) ≈ 7.815.
  EXPECT_NEAR(chi2_cdf(7.815, 3.0), 0.95, 1e-3);
  EXPECT_NEAR(chi2_sf(7.815, 3.0), 0.05, 1e-3);
}

TEST(Dist, StudentT) {
  // t(v=inf approximately) → normal; t(1) is Cauchy: CDF(1) = 0.75.
  EXPECT_NEAR(student_t_cdf(1.0, 1.0), 0.75, 1e-9);
  EXPECT_NEAR(student_t_cdf(0.0, 5.0), 0.5, 1e-12);
  // Two-sided p at t=2.571, v=5 ≈ 0.05 (classic table value).
  EXPECT_NEAR(student_t_two_sided_p(2.571, 5.0), 0.05, 2e-3);
}

TEST(Dist, FDistribution) {
  // F(d1,d2) median ≈ 1 for d1=d2 large; spot value: F(0.95; 2, 10) ≈ 4.10.
  EXPECT_NEAR(f_cdf(4.10, 2.0, 10.0), 0.95, 2e-3);
  EXPECT_NEAR(f_sf(4.10, 2.0, 10.0), 0.05, 2e-3);
}

// --- descriptive ---

TEST(Descriptive, BasicMoments) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean(xs), 3.0);
  EXPECT_DOUBLE_EQ(variance(xs), 2.5);
  EXPECT_DOUBLE_EQ(stddev(xs), std::sqrt(2.5));
  EXPECT_DOUBLE_EQ(min(xs), 1.0);
  EXPECT_DOUBLE_EQ(max(xs), 5.0);
  EXPECT_DOUBLE_EQ(coeff_variation(xs), std::sqrt(2.5) / 3.0);
}

TEST(Descriptive, Percentiles) {
  std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25.0);
}

TEST(Descriptive, PearsonCorrelation) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y{2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  std::vector<double> z{5, 4, 3, 2, 1};
  EXPECT_NEAR(pearson(x, z), -1.0, 1e-12);
  std::vector<double> c{1, 1, 1, 1, 1};
  EXPECT_DOUBLE_EQ(pearson(x, c), 0.0);
}

TEST(Descriptive, CdfCurveMonotone) {
  util::Rng rng(3);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.normal(10, 2));
  auto curve = cdf_curve(xs, 21);
  ASSERT_EQ(curve.size(), 21u);
  for (std::size_t i = 1; i < curve.size(); ++i)
    EXPECT_LE(curve[i - 1], curve[i]);
}

TEST(Descriptive, RunningStatsMatchesBatch) {
  util::Rng rng(5);
  std::vector<double> xs;
  RunningStats rs;
  for (int i = 0; i < 1000; ++i) {
    double x = rng.uniform(0, 9);
    xs.push_back(x);
    rs.add(x);
  }
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-9);
  EXPECT_NEAR(rs.variance(), variance(xs), 1e-9);
  EXPECT_DOUBLE_EQ(rs.min(), min(xs));
  EXPECT_DOUBLE_EQ(rs.max(), max(xs));
}

// --- matrix ---

TEST(Matrix, SolveKnownSystem) {
  Matrix a(2, 2);
  a(0, 0) = 2;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 3;
  std::vector<double> x;
  ASSERT_TRUE(a.solve({5, 10}, x));
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Matrix, SingularDetected) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 4;
  std::vector<double> x;
  EXPECT_FALSE(a.solve({1, 2}, x));
  Matrix inv;
  EXPECT_FALSE(a.inverse(inv));
  EXPECT_DOUBLE_EQ(a.determinant(), 0.0);
}

TEST(Matrix, InverseRoundTrip) {
  util::Rng rng(9);
  Matrix a(4, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) a(i, j) = rng.uniform(-1, 1);
    a(i, i) += 4.0;  // diagonally dominant → well-conditioned
  }
  Matrix inv;
  ASSERT_TRUE(a.inverse(inv));
  Matrix prod = a * inv;
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j)
      EXPECT_NEAR(prod(i, j), i == j ? 1.0 : 0.0, 1e-10);
}

TEST(Matrix, DeterminantOfTriangular) {
  Matrix a(3, 3);
  a(0, 0) = 2;
  a(1, 1) = 3;
  a(2, 2) = 4;
  a(0, 1) = 7;
  a(0, 2) = -1;
  a(1, 2) = 5;
  EXPECT_NEAR(a.determinant(), 24.0, 1e-10);
}

// --- OLS ---

TEST(Ols, RecoversCoefficients) {
  util::Rng rng(21);
  const std::size_t n = 200;
  std::vector<double> x1(n), x2(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x1[i] = rng.uniform(0, 10);
    x2[i] = rng.uniform(0, 5);
    y[i] = 3.0 + 2.0 * x1[i] - 1.5 * x2[i] + rng.normal(0, 0.1);
  }
  auto fit = ols_fit_columns(y, {x1, x2}, true);
  ASSERT_TRUE(fit.ok);
  EXPECT_NEAR(fit.intercept, 3.0, 0.1);
  EXPECT_NEAR(fit.coefficients[0], 2.0, 0.02);
  EXPECT_NEAR(fit.coefficients[1], -1.5, 0.03);
  EXPECT_GT(fit.r_squared, 0.99);
  EXPECT_LT(fit.p_values[0], 1e-6);
  EXPECT_LT(fit.p_values[1], 1e-6);
}

TEST(Ols, IrrelevantVariableNotSignificant) {
  util::Rng rng(23);
  const std::size_t n = 100;
  std::vector<double> x1(n), noise_col(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x1[i] = rng.uniform(0, 10);
    noise_col[i] = rng.uniform(0, 10);
    y[i] = 5.0 * x1[i] + rng.normal(0, 1.0);
  }
  auto fit = ols_fit_columns(y, {x1, noise_col}, true);
  ASSERT_TRUE(fit.ok);
  EXPECT_LT(fit.p_values[0], 1e-6);
  EXPECT_GT(fit.p_values[1], 0.01);
}

TEST(Ols, TooFewObservationsFails) {
  std::vector<double> y{1, 2};
  std::vector<double> x{1, 2};
  auto fit = ols_fit_columns(y, {x}, true);
  EXPECT_FALSE(fit.ok);
}

TEST(Ols, PerfectCollinearityFails) {
  std::vector<double> x1{1, 2, 3, 4, 5, 6};
  std::vector<double> x2{2, 4, 6, 8, 10, 12};
  std::vector<double> y{1, 2, 3, 4, 5, 6};
  auto fit = ols_fit_columns(y, {x1, x2}, true);
  EXPECT_FALSE(fit.ok);
}

// --- collinearity ---

TEST(Collinearity, CorrelationMatrixBasics) {
  std::vector<double> a{1, 2, 3, 4, 5};
  std::vector<double> b{2, 4, 6, 8, 10};
  std::vector<double> c{5, 1, 4, 2, 3};
  Matrix r = correlation_matrix({a, b, c});
  EXPECT_NEAR(r(0, 1), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(r(0, 0), 1.0);
  EXPECT_NEAR(r(1, 0), r(0, 1), 1e-12);
  EXPECT_LT(std::fabs(r(0, 2)), 0.5);
}

TEST(Collinearity, FarrarGlauberFlagsCorrelatedData) {
  util::Rng rng(31);
  const std::size_t n = 200;
  std::vector<double> x1(n), x2(n), x3(n);
  for (std::size_t i = 0; i < n; ++i) {
    x1[i] = rng.uniform(0, 1);
    x2[i] = x1[i] * 0.95 + rng.normal(0, 0.02);  // strongly collinear
    x3[i] = rng.uniform(0, 1);
  }
  Matrix r = correlation_matrix({x1, x2, x3});
  auto fg = farrar_glauber(r, n);
  EXPECT_TRUE(fg.collinear);
  EXPECT_LT(fg.p_value, 0.05);
}

TEST(Collinearity, FarrarGlauberPassesIndependentData) {
  util::Rng rng(37);
  const std::size_t n = 300;
  std::vector<double> x1(n), x2(n), x3(n);
  for (std::size_t i = 0; i < n; ++i) {
    x1[i] = rng.normal(0, 1);
    x2[i] = rng.normal(0, 1);
    x3[i] = rng.normal(0, 1);
  }
  Matrix r = correlation_matrix({x1, x2, x3});
  auto fg = farrar_glauber(r, n, 0.01);
  EXPECT_FALSE(fg.collinear);
}

TEST(Collinearity, VifHighForCollinearColumn) {
  util::Rng rng(41);
  const std::size_t n = 200;
  std::vector<double> x1(n), x2(n), x3(n);
  for (std::size_t i = 0; i < n; ++i) {
    x1[i] = rng.uniform(0, 1);
    x2[i] = x1[i] + rng.normal(0, 0.05);
    x3[i] = rng.uniform(0, 1);
  }
  auto vif = variance_inflation_factors(correlation_matrix({x1, x2, x3}));
  ASSERT_EQ(vif.size(), 3u);
  EXPECT_GT(vif[0], 10.0);
  EXPECT_GT(vif[1], 10.0);
  EXPECT_LT(vif[2], 3.0);
}

TEST(Collinearity, ReductionRemovesAndRelates) {
  util::Rng rng(43);
  const std::size_t n = 250;
  std::vector<double> x1(n), x2(n), x3(n);
  for (std::size_t i = 0; i < n; ++i) {
    x1[i] = rng.uniform(0, 1);
    x2[i] = 2.0 * x1[i] + rng.normal(0, 0.01);  // x2 ≈ 2·x1
    x3[i] = rng.normal(0, 1);
  }
  auto red = reduce_multicollinearity({x1, x2, x3});
  EXPECT_EQ(red.kept.size() + red.removed.size(), 3u);
  ASSERT_EQ(red.removed.size(), 1u);
  const std::size_t removed = red.removed[0];
  EXPECT_TRUE(removed == 0 || removed == 1);
  // The removed column's relation should recover the ≈2x (or ≈0.5x) link.
  double slope = 0.0;
  for (std::size_t j = 0; j < red.kept.size(); ++j) {
    if (red.kept[j] == (removed == 0 ? 1u : 0u)) slope = red.relation[0][j];
  }
  if (removed == 1) {
    EXPECT_NEAR(slope, 2.0, 0.1);
  } else {
    EXPECT_NEAR(slope, 0.5, 0.05);
  }
}

// --- V-measure ---

TEST(VMeasure, PerfectClustering) {
  std::vector<int> truth{0, 0, 1, 1, 2, 2};
  std::vector<int> pred{5, 5, 9, 9, 7, 7};
  auto v = v_measure(truth, pred);
  EXPECT_DOUBLE_EQ(v.homogeneity, 1.0);
  EXPECT_DOUBLE_EQ(v.completeness, 1.0);
  EXPECT_DOUBLE_EQ(v.v_measure, 1.0);
}

TEST(VMeasure, MergedClustersLoseHomogeneityOnly) {
  // Two truth classes in one predicted cluster: complete but inhomogeneous
  // (the paper's PageRank case).
  std::vector<int> truth{0, 0, 1, 1};
  std::vector<int> pred{3, 3, 3, 3};
  auto v = v_measure(truth, pred);
  EXPECT_DOUBLE_EQ(v.completeness, 1.0);
  EXPECT_LT(v.homogeneity, 0.01);
}

TEST(VMeasure, SplitClustersLoseCompletenessOnly) {
  std::vector<int> truth{0, 0, 0, 0};
  std::vector<int> pred{1, 1, 2, 2};
  auto v = v_measure(truth, pred);
  EXPECT_DOUBLE_EQ(v.homogeneity, 1.0);
  EXPECT_LT(v.completeness, 0.01);
}

TEST(VMeasure, HarmonicMean) {
  std::vector<int> truth{0, 0, 1, 1, 2, 2};
  std::vector<int> pred{1, 1, 1, 2, 2, 2};
  auto v = v_measure(truth, pred);
  EXPECT_GT(v.homogeneity, 0.0);
  EXPECT_LT(v.homogeneity, 1.0);
  double expected =
      2.0 * v.homogeneity * v.completeness / (v.homogeneity + v.completeness);
  EXPECT_NEAR(v.v_measure, expected, 1e-12);
}

TEST(VMeasure, EmptyInputIsPerfect) {
  std::vector<int> empty;
  auto v = v_measure(empty, empty);
  EXPECT_DOUBLE_EQ(v.v_measure, 1.0);
}

}  // namespace
}  // namespace vapro::stats
