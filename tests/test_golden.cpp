// Golden-file tests for the human-facing report tables.  The rendered
// text of render_region_table / render_rare_table is part of the tool's
// interface — operators diff it, scripts scrape it — so formatting changes
// must be deliberate.  Expected outputs live in tests/golden/; regenerate
// them with scripts/update_goldens.sh after an intentional change and
// review the diff like any other code change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/heatmap.hpp"
#include "src/core/report.hpp"
#include "src/util/pipeline.hpp"

namespace vapro {
namespace {

// tests/golden/ next to this source file; __FILE__ is absolute under CMake.
std::string golden_path(const std::string& name) {
  std::string dir = __FILE__;
  dir.resize(dir.find_last_of('/') + 1);
  return dir + "golden/" + name;
}

// Compares `rendered` against the golden file, or rewrites the file when
// VAPRO_UPDATE_GOLDENS is set (see scripts/update_goldens.sh).
void expect_matches_golden(const std::string& rendered,
                           const std::string& name) {
  const std::string path = golden_path(name);
  if (std::getenv("VAPRO_UPDATE_GOLDENS") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << rendered;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " — run scripts/update_goldens.sh";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(rendered, expected.str())
      << "rendered table drifted from " << path
      << "; if intentional, run scripts/update_goldens.sh and review";
}

std::vector<core::VarianceRegion> fixture_regions() {
  core::VarianceRegion big;
  big.rank_lo = 4;
  big.rank_hi = 11;
  big.bin_lo = 8;
  big.bin_hi = 15;
  big.cells = 64;
  big.mean_perf = 0.58521992720657923;
  big.impact_seconds = 12.75;
  core::VarianceRegion small;
  small.rank_lo = 0;
  small.rank_hi = 0;
  small.bin_lo = 2;
  small.bin_hi = 2;
  small.cells = 1;
  small.mean_perf = 0.8125;
  small.impact_seconds = 0.03125;
  return {big, small};
}

std::vector<core::RareFinding> fixture_findings() {
  core::RareFinding io;
  io.state = "Write site7 path 1/2";
  io.kind = core::FragmentKind::kIo;
  io.executions = 2;
  io.total_seconds = 1.5;
  io.longest_seconds = 1.25;
  core::RareFinding comp;
  comp.state = "site3 -> site4";
  comp.kind = core::FragmentKind::kComputation;
  comp.executions = 1;
  comp.total_seconds = 0.5;
  comp.longest_seconds = 0.5;
  return {io, comp};
}

TEST(Golden, RegionTable) {
  expect_matches_golden(
      core::render_region_table(fixture_regions(), /*bin_seconds=*/0.25),
      "region_table.txt");
}

TEST(Golden, RegionTableEmpty) {
  expect_matches_golden(core::render_region_table({}, 0.25),
                        "region_table_empty.txt");
}

TEST(Golden, RegionTableTruncation) {
  // Past `limit`, smaller regions fold into one "omitted" line.
  std::vector<core::VarianceRegion> many = fixture_regions();
  for (int i = 0; i < 4; ++i) {
    core::VarianceRegion r;
    r.rank_lo = r.rank_hi = i;
    r.bin_lo = r.bin_hi = i;
    r.cells = 1;
    r.mean_perf = 0.80 + 0.01 * i;
    r.impact_seconds = 0.01 * (i + 1);
    many.push_back(r);
  }
  expect_matches_golden(core::render_region_table(many, 0.25, /*limit=*/3),
                        "region_table_truncated.txt");
}

// A real multi-rank heat map whose low-performance regions straddle every
// rank-stripe boundary a 2..4-lane pool can draw over 16 ranks: a wide
// 10-rank band with per-rank perf variation (so the mean/impact sums
// cross boundaries), a 6-rank band near the top edge, a 2-rank blip, and
// an isolated single cell.  The golden table is rendered from the serial
// result; the sharded results must first match it byte for byte.
core::Heatmap stripe_fixture_map() {
  core::Heatmap map(16, 0.25);
  for (int rank = 0; rank < 16; ++rank)
    for (int bin = 0; bin < 24; ++bin)
      map.deposit(rank, bin * 0.25, bin * 0.25 + 0.25, 1.0);
  for (int rank = 3; rank <= 12; ++rank)
    for (int bin = 4; bin <= 9; ++bin)
      map.deposit(rank, bin * 0.25, bin * 0.25 + 0.25, 0.30 + 0.02 * rank);
  for (int rank = 10; rank <= 15; ++rank)
    for (int bin = 18; bin <= 20; ++bin)
      map.deposit(rank, bin * 0.25, bin * 0.25 + 0.25, 0.55);
  for (int rank = 0; rank <= 1; ++rank)
    for (int bin = 14; bin <= 16; ++bin)
      map.deposit(rank, bin * 0.25, bin * 0.25 + 0.25, 0.6);
  map.deposit(8, 22 * 0.25, 22 * 0.25 + 0.25, 0.2);
  return map;
}

TEST(Golden, RegionTableStripeMerged) {
  const core::Heatmap map = stripe_fixture_map();
  const std::vector<core::VarianceRegion> serial =
      core::find_variance_regions(map, 0.85);
  ASSERT_GE(serial.size(), 4u);
  const std::string rendered = core::render_region_table(serial, 0.25);
  // Every lane count must render the identical table — the stripe split
  // and boundary merge are invisible in the output.
  for (std::size_t lanes : {2u, 3u, 4u}) {
    util::WorkerPool pool(lanes);
    EXPECT_EQ(
        core::render_region_table(core::find_variance_regions(map, 0.85, &pool),
                                  0.25),
        rendered)
        << "lanes=" << lanes;
  }
  expect_matches_golden(rendered, "region_table_stripes.txt");
}

TEST(Golden, RareTable) {
  expect_matches_golden(core::render_rare_table(fixture_findings()),
                        "rare_table.txt");
}

TEST(Golden, RareTableEmpty) {
  expect_matches_golden(core::render_rare_table({}), "rare_table_empty.txt");
}

}  // namespace
}  // namespace vapro
