// Unit tests for the breakdown model and the diagnosis pipeline: factor
// tree shape, formula quantification, OLS quantification (and the §4.2
// formula-vs-OLS consistency claim), contribution analysis, and the
// progressive stage machine.
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/breakdown.hpp"
#include "src/core/clustering.hpp"
#include "src/core/diagnosis.hpp"
#include "src/core/stg.hpp"
#include "src/util/rng.hpp"

namespace vapro::core {
namespace {

using pmu::Counter;

pmu::MachineParams machine() { return pmu::MachineParams{}; }

// --- breakdown tree ---

TEST(Breakdown, S1FactorsAreRootChildren) {
  auto s1 = children_of(FactorId::kRoot);
  EXPECT_EQ(s1.size(), 5u);
  for (FactorId f : s1) {
    EXPECT_EQ(factor_def(f).stage, 1);
    EXPECT_EQ(factor_def(f).parent, FactorId::kRoot);
  }
}

TEST(Breakdown, BackendDecomposesIntoCoreAndMemory) {
  auto kids = children_of(FactorId::kBackend);
  ASSERT_EQ(kids.size(), 2u);
  EXPECT_EQ(kids[0], FactorId::kCoreBound);
  EXPECT_EQ(kids[1], FactorId::kMemoryBound);
}

TEST(Breakdown, MemoryBoundHasFourCacheLevels) {
  EXPECT_EQ(children_of(FactorId::kMemoryBound).size(), 4u);
}

TEST(Breakdown, SuspensionChildrenAreCountFactors) {
  for (FactorId f : children_of(FactorId::kSuspension)) {
    EXPECT_FALSE(factor_def(f).time_quantified)
        << std::string(factor_name(f));
  }
}

TEST(Breakdown, LeavesHaveNoChildren) {
  for (FactorId f : {FactorId::kL2Bound, FactorId::kSoftPageFault,
                     FactorId::kInvoluntaryCs, FactorId::kRetiring}) {
    EXPECT_TRUE(children_of(f).empty());
  }
}

TEST(Breakdown, EveryStageFitsThePmuBudget) {
  // The raison d'être of progressive diagnosis: each frontier must need at
  // most 4 programmable counters.
  auto check = [](const std::vector<FactorId>& frontier) {
    EXPECT_LE(counters_for(frontier).size(), 4u);
  };
  check(children_of(FactorId::kRoot));
  auto s2_backend = children_of(FactorId::kBackend);
  auto s2_susp = children_of(FactorId::kSuspension);
  s2_backend.insert(s2_backend.end(), s2_susp.begin(), s2_susp.end());
  check(s2_backend);
  check(children_of(FactorId::kMemoryBound));
  // ...but all stages together do NOT fit — the budget forces staging.
  std::vector<FactorId> everything;
  for (int i = 1; i < kFactorCount; ++i)
    everything.push_back(static_cast<FactorId>(i));
  EXPECT_GT(counters_for(everything).size(), 4u);
}

TEST(Breakdown, FormulaValuesMatchHandComputation) {
  pmu::MachineParams m = machine();
  pmu::CounterSample d;
  d[Counter::kSlotsFrontend] = 8.8e9;  // 1 second worth of slots
  d[Counter::kTsc] = 2 * 2.2e9;
  d[Counter::kCpuClkUnhalted] = 2.2e9;
  d[Counter::kSlotsBackend] = 4.4e9;
  d[Counter::kStallsCore] = 2.2e9;
  EXPECT_NEAR(factor_value(FactorId::kFrontend, d, m), 1.0, 1e-12);
  EXPECT_NEAR(factor_value(FactorId::kSuspension, d, m), 1.0, 1e-12);
  EXPECT_NEAR(factor_value(FactorId::kBackend, d, m), 0.5, 1e-12);
  EXPECT_NEAR(factor_value(FactorId::kCoreBound, d, m), 0.25, 1e-12);
  EXPECT_NEAR(factor_value(FactorId::kMemoryBound, d, m), 0.25, 1e-12);
}

TEST(Breakdown, CountFactorsReturnCounts) {
  pmu::CounterSample d;
  d[Counter::kPageFaultsSoft] = 10;
  d[Counter::kPageFaultsHard] = 3;
  d[Counter::kCtxSwitchVoluntary] = 7;
  pmu::MachineParams m = machine();
  EXPECT_DOUBLE_EQ(factor_value(FactorId::kPageFault, d, m), 13.0);
  EXPECT_DOUBLE_EQ(factor_value(FactorId::kSoftPageFault, d, m), 10.0);
  EXPECT_DOUBLE_EQ(factor_value(FactorId::kVoluntaryCs, d, m), 7.0);
}

// --- synthetic cluster builder ---

// Builds one edge with `n` fragments: baseline duration `base`, and
// `slow_every`-th fragments slowed by `factor_id` with `extra` seconds
// (factor counters adjusted to match).
struct SyntheticCluster {
  Stg stg{StgMode::kContextFree};
  StateKey k1, k2;

  SyntheticCluster() {
    sim::InvocationInfo i1, i2;
    i1.site = 1;
    i2.site = 2;
    k1 = stg.touch_vertex(i1);
    k2 = stg.touch_vertex(i2);
  }

  void add(double duration, const pmu::CounterSample& counters, double start) {
    Fragment f;
    f.kind = FragmentKind::kComputation;
    f.from = k1;
    f.to = k2;
    f.start_time = start;
    f.end_time = start + duration;
    f.counters = counters;
    stg.add_fragment(f);
  }
};

// Baseline counter sample for a fragment of `seconds` pure backend time.
pmu::CounterSample base_sample(double seconds, const pmu::MachineParams& m) {
  pmu::CounterSample d;
  const double slots = seconds * m.frequency_hz * m.pipeline_width;
  d[Counter::kTotIns] = slots * 0.5;
  d[Counter::kSlotsRetiring] = slots * 0.5;
  d[Counter::kSlotsFrontend] = slots * 0.1;
  d[Counter::kSlotsBadSpec] = slots * 0.05;
  d[Counter::kSlotsBackend] = slots * 0.35;
  d[Counter::kStallsCore] = slots * 0.15;
  d[Counter::kStallsL1] = slots * 0.05;
  d[Counter::kStallsL2] = slots * 0.05;
  d[Counter::kStallsL3] = slots * 0.03;
  d[Counter::kStallsDram] = slots * 0.07;
  d[Counter::kTsc] = seconds * m.frequency_hz;
  d[Counter::kCpuClkUnhalted] = seconds * m.frequency_hz;
  return d;
}

// --- OLS quantification ---

TEST(OlsQuantify, RecoversInjectedPageFaultCost) {
  const pmu::MachineParams m = machine();
  SyntheticCluster syn;
  util::Rng rng(3);
  const double per_fault = 5e-5;
  for (int i = 0; i < 120; ++i) {
    const double faults = static_cast<double>(rng.uniform_u64(200));
    pmu::CounterSample d = base_sample(0.010, m);
    d[Counter::kPageFaultsSoft] = faults;
    const double dur = 0.010 + faults * per_fault + rng.normal(0, 1e-5);
    d[Counter::kTsc] = dur * m.frequency_hz;
    syn.add(dur, d, 0.1 * i);
  }
  std::vector<std::size_t> members(120);
  for (std::size_t i = 0; i < 120; ++i) members[i] = i;
  auto q = ols_quantify(syn.stg, members, {FactorId::kPageFault}, m);
  ASSERT_TRUE(q.ok);
  EXPECT_GT(q.r_squared, 0.95);
  ASSERT_EQ(q.estimates.size(), 1u);
  EXPECT_TRUE(q.estimates[0].significant);
  // Total seconds attributable ≈ per_fault × Σ faults.
  double total_faults = 0;
  for (std::size_t i = 0; i < members.size(); ++i)
    total_faults += syn.stg.fragment(i).counters()[Counter::kPageFaultsSoft];
  EXPECT_NEAR(q.estimates[0].total_seconds, per_fault * total_faults,
              0.1 * per_fault * total_faults);
}

TEST(OlsQuantify, ConstantFactorsAreFlagged) {
  const pmu::MachineParams m = machine();
  SyntheticCluster syn;
  for (int i = 0; i < 30; ++i) syn.add(0.01, base_sample(0.01, m), 0.1 * i);
  std::vector<std::size_t> members(30);
  for (std::size_t i = 0; i < 30; ++i) members[i] = i;
  auto q = ols_quantify(syn.stg, members, {FactorId::kPageFault}, m);
  ASSERT_EQ(q.estimates.size(), 1u);
  EXPECT_TRUE(q.estimates[0].constant);
}

TEST(OlsQuantify, TooFewFragmentsReturnsNotOk) {
  const pmu::MachineParams m = machine();
  SyntheticCluster syn;
  syn.add(0.01, base_sample(0.01, m), 0);
  auto q = ols_quantify(syn.stg, {0}, {FactorId::kPageFault}, m);
  EXPECT_FALSE(q.ok);
}

// §4.2's verification: the OLS estimate of a *time-quantified* factor
// agrees with the formula-based value.
TEST(OlsQuantify, AgreesWithFormulaForBackendBound) {
  const pmu::MachineParams m = machine();
  SyntheticCluster syn;
  util::Rng rng(7);
  double formula_total = 0.0;
  for (int i = 0; i < 150; ++i) {
    // Backend-bound time varies per fragment; duration follows it 1:1.
    const double backend_extra = rng.uniform(0.0, 0.02);
    pmu::CounterSample d = base_sample(0.010, m);
    const double extra_slots =
        backend_extra * m.frequency_hz * m.pipeline_width;
    d[Counter::kSlotsBackend] += extra_slots;
    d[Counter::kStallsDram] += extra_slots;
    const double dur = 0.010 + backend_extra + rng.normal(0, 2e-5);
    d[Counter::kTsc] = dur * m.frequency_hz;
    d[Counter::kCpuClkUnhalted] = dur * m.frequency_hz;
    syn.add(dur, d, 0.1 * i);
    formula_total += factor_value(FactorId::kBackend, d, m);
  }
  std::vector<std::size_t> members(150);
  for (std::size_t i = 0; i < 150; ++i) members[i] = i;
  auto q = ols_quantify(syn.stg, members, {FactorId::kBackend}, m);
  ASSERT_TRUE(q.ok);
  ASSERT_TRUE(q.estimates[0].significant);
  // OLS attributes the *varying* part; compare the delta totals: both
  // methods must attribute the same variable seconds (±15%, as in the
  // paper's 89.4% vs 86.6% check).
  const double varying_formula = formula_total - 150 * 0.010 * 0.35;
  EXPECT_NEAR(q.estimates[0].total_seconds / varying_formula, 1.0, 0.3);
}

// --- contribution analysis ---

TEST(Contribution, BlamesTheInjectedFactor) {
  const pmu::MachineParams m = machine();
  SyntheticCluster syn;
  // 20 normal fragments, 10 abnormal with DRAM-bound excess.
  for (int i = 0; i < 20; ++i) syn.add(0.010, base_sample(0.010, m), 0.1 * i);
  for (int i = 0; i < 10; ++i) {
    pmu::CounterSample d = base_sample(0.010, m);
    const double extra = 0.008;  // 80% slowdown
    const double extra_slots = extra * m.frequency_hz * m.pipeline_width;
    d[Counter::kSlotsBackend] += extra_slots;
    d[Counter::kStallsDram] += extra_slots;
    d[Counter::kTsc] = 0.018 * m.frequency_hz;
    d[Counter::kCpuClkUnhalted] = 0.018 * m.frequency_hz;
    syn.add(0.018, d, 10 + 0.1 * i);
  }
  auto clusters = cluster_stg(syn.stg, ClusterOptions{});
  DiagnosisOptions opts;
  auto window = analyze_contributions(
      syn.stg, clusters, children_of(FactorId::kRoot), m, opts);
  EXPECT_EQ(window.abnormal_fragments, 10u);
  EXPECT_NEAR(window.total_variance_seconds, 10 * 0.008, 1e-6);
  const FactorContribution* backend = nullptr;
  const FactorContribution* frontend = nullptr;
  for (const auto& fc : window.factors) {
    if (fc.id == FactorId::kBackend) backend = &fc;
    if (fc.id == FactorId::kFrontend) frontend = &fc;
  }
  ASSERT_NE(backend, nullptr);
  EXPECT_TRUE(backend->major);
  EXPECT_NEAR(backend->contribution_seconds, 10 * 0.008, 1e-3);
  EXPECT_GT(backend->duration_seconds, 0.0);
  ASSERT_NE(frontend, nullptr);
  EXPECT_FALSE(frontend->major);
  EXPECT_NEAR(frontend->contribution_seconds, 0.0, 1e-6);
}

TEST(Contribution, NoAbnormalFragmentsMeansNoVariance) {
  const pmu::MachineParams m = machine();
  SyntheticCluster syn;
  for (int i = 0; i < 30; ++i)
    syn.add(0.010 + 1e-5 * (i % 3), base_sample(0.010, m), 0.1 * i);
  auto clusters = cluster_stg(syn.stg, ClusterOptions{});
  auto window = analyze_contributions(
      syn.stg, clusters, children_of(FactorId::kRoot), m, DiagnosisOptions{});
  EXPECT_EQ(window.abnormal_fragments, 0u);
  EXPECT_DOUBLE_EQ(window.total_variance_seconds, 0.0);
}

// Parameterized: the abnormal cut k_a is strict.
class AbnormalRatio : public ::testing::TestWithParam<double> {};

TEST_P(AbnormalRatio, FragmentAbnormalIffOverRatio) {
  const double slowdown_ratio = GetParam();
  const pmu::MachineParams m = machine();
  SyntheticCluster syn;
  for (int i = 0; i < 10; ++i) syn.add(0.010, base_sample(0.010, m), 0.1 * i);
  // One fragment at ratio × fastest: same workload, longer wall time.
  pmu::CounterSample d = base_sample(0.010, m);
  d[Counter::kTsc] = 0.010 * slowdown_ratio * m.frequency_hz;
  syn.add(0.010 * slowdown_ratio, d, 5.0);
  auto clusters = cluster_stg(syn.stg, ClusterOptions{});
  DiagnosisOptions opts;  // abnormal_ratio = 1.2
  auto window = analyze_contributions(
      syn.stg, clusters, children_of(FactorId::kRoot), m, opts);
  if (slowdown_ratio > 1.2) {
    EXPECT_EQ(window.abnormal_fragments, 1u);
  } else {
    EXPECT_EQ(window.abnormal_fragments, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Ratios, AbnormalRatio,
                         ::testing::Values(1.05, 1.15, 1.25, 1.5, 3.0));

// --- progressive diagnoser ---

TEST(Progressive, StartsAtStageOneWithSlotCounters) {
  ProgressiveDiagnoser diag(machine(), DiagnosisOptions{});
  EXPECT_EQ(diag.stage(), 1);
  EXPECT_FALSE(diag.finished());
  auto counters = diag.counters_needed();
  EXPECT_LE(counters.size(), 4u);
  EXPECT_NE(std::find(counters.begin(), counters.end(),
                      Counter::kSlotsBackend),
            counters.end());
}

TEST(Progressive, DescendsToDramOnMemoryVariance) {
  const pmu::MachineParams m = machine();
  DiagnosisOptions opts;
  ProgressiveDiagnoser diag(m, opts);

  // Feed three windows with DRAM-caused variance; the counters present in
  // the fragments follow what the diagnoser asked for.
  for (int window_i = 0; window_i < 3 && !diag.finished(); ++window_i) {
    SyntheticCluster syn;
    for (int i = 0; i < 20; ++i)
      syn.add(0.010, base_sample(0.010, m), 0.1 * i);
    for (int i = 0; i < 10; ++i) {
      pmu::CounterSample d = base_sample(0.010, m);
      const double extra = 0.008;
      const double extra_slots = extra * m.frequency_hz * m.pipeline_width;
      d[Counter::kSlotsBackend] += extra_slots;
      d[Counter::kStallsDram] += extra_slots;
      d[Counter::kTsc] = 0.018 * m.frequency_hz;
      d[Counter::kCpuClkUnhalted] = 0.018 * m.frequency_hz;
      syn.add(0.018, d, 10 + 0.1 * i);
    }
    auto clusters = cluster_stg(syn.stg, ClusterOptions{});
    diag.feed(syn.stg, clusters);
  }
  EXPECT_TRUE(diag.finished());
  const auto& report = diag.report();
  ASSERT_EQ(report.culprits.size(), 1u);
  EXPECT_EQ(report.culprits[0], FactorId::kDramBound);
  // Findings must include the whole descent.
  bool saw_backend = false, saw_memory = false, saw_dram = false;
  for (const auto& f : report.findings) {
    if (f.id == FactorId::kBackend && f.major) saw_backend = true;
    if (f.id == FactorId::kMemoryBound && f.major) saw_memory = true;
    if (f.id == FactorId::kDramBound && f.major) saw_dram = true;
  }
  EXPECT_TRUE(saw_backend);
  EXPECT_TRUE(saw_memory);
  EXPECT_TRUE(saw_dram);
  EXPECT_FALSE(report.summary().empty());
}

TEST(Progressive, QuietWindowsDoNotAdvance) {
  const pmu::MachineParams m = machine();
  ProgressiveDiagnoser diag(m, DiagnosisOptions{});
  SyntheticCluster syn;
  for (int i = 0; i < 30; ++i) syn.add(0.010, base_sample(0.010, m), 0.1 * i);
  auto clusters = cluster_stg(syn.stg, ClusterOptions{});
  diag.feed(syn.stg, clusters);
  diag.feed(syn.stg, clusters);
  EXPECT_EQ(diag.stage(), 1);
  EXPECT_FALSE(diag.finished());
  EXPECT_TRUE(diag.report().findings.empty());
}

}  // namespace
}  // namespace vapro::core
