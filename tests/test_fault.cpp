// Tests for src/testing (fault plans, the injector, the virtual clock) and
// for the hardened hazard sites they drive: journal short-write/ENOSPC and
// torn-tail recovery, rotation failure, alert-sink drop/throw survival,
// client ingest drops, and skipped window publication.  Everything here is
// deterministic — seeded plans, no sleeps, no real time.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "src/core/server.hpp"
#include "src/obs/alerts.hpp"
#include "src/obs/context.hpp"
#include "src/obs/journal.hpp"
#include "src/testing/fault.hpp"
#include "src/util/clock.hpp"

// The repo-level namespace is vapro::testing, which collides with gtest's
// ::testing inside TEST bodies; alias it once.
namespace testing_ = vapro::testing;

namespace vapro {
namespace {

std::string temp_path(const std::string& leaf) {
  return std::string(::testing::TempDir()) + leaf;
}

// --- plan parsing ---------------------------------------------------------

TEST(FaultPlan, ParsesRulesAndRoundTrips) {
  const std::string text =
      "# stress plan\n"
      "seed 1234\n"
      "journal.write  on=3  short_write\n"
      "journal.write  every=7  fail  limit=2\n"
      "expo.send  prob=0.25  close\n"
      "alerts.dispatch  on=2  throw\n";
  testing_::FaultPlan plan;
  std::string error;
  ASSERT_TRUE(testing_::FaultPlan::parse(text, &plan, &error)) << error;
  EXPECT_EQ(plan.seed, 1234u);
  ASSERT_EQ(plan.rules.size(), 4u);
  EXPECT_EQ(plan.rules[0].site, "journal.write");
  EXPECT_EQ(plan.rules[0].on, 3u);
  EXPECT_EQ(plan.rules[0].action, testing_::FaultAction::kShortWrite);
  EXPECT_EQ(plan.rules[1].every, 7u);
  EXPECT_EQ(plan.rules[1].limit, 2u);
  EXPECT_DOUBLE_EQ(plan.rules[2].prob, 0.25);
  EXPECT_EQ(plan.rules[3].action, testing_::FaultAction::kThrow);

  // Canonical text re-parses to the same plan.
  testing_::FaultPlan again;
  ASSERT_TRUE(testing_::FaultPlan::parse(plan.to_string(), &again, &error))
      << error;
  EXPECT_EQ(again.to_string(), plan.to_string());
}

TEST(FaultPlan, RejectsMalformedLinesWithLineNumbers) {
  testing_::FaultPlan plan;
  std::string error;
  EXPECT_FALSE(testing_::FaultPlan::parse("journal.write on=3\n", &plan,
                                          &error));  // no action
  EXPECT_NE(error.find("line 1"), std::string::npos) << error;
  EXPECT_FALSE(
      testing_::FaultPlan::parse("seed 1\nexpo.send frob\n", &plan, &error));
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
  EXPECT_FALSE(testing_::FaultPlan::parse("expo.send close\n", &plan,
                                          &error));  // no trigger
}

TEST(FaultPlan, ParseFileReadsPlanFromDisk) {
  const std::string path = temp_path("plan.txt");
  {
    std::ofstream out(path);
    out << "seed 7\njournal.write on=1 fail\n";
  }
  testing_::FaultPlan plan;
  std::string error;
  ASSERT_TRUE(testing_::FaultPlan::parse_file(path, &plan, &error)) << error;
  EXPECT_EQ(plan.seed, 7u);
  ASSERT_EQ(plan.rules.size(), 1u);
  EXPECT_FALSE(
      testing_::FaultPlan::parse_file(temp_path("missing.txt"), &plan, &error));
}

// --- injector semantics ---------------------------------------------------

#if defined(VAPRO_FAULT_INJECTION) && VAPRO_FAULT_INJECTION

testing_::FaultPlan plan_from(const std::string& text) {
  testing_::FaultPlan plan;
  std::string error;
  EXPECT_TRUE(testing_::FaultPlan::parse(text, &plan, &error)) << error;
  return plan;
}

TEST(FaultInjector, UnarmedHitsAreNoops) {
  EXPECT_EQ(VAPRO_FAULT("journal.write"), testing_::FaultAction::kNone);
  EXPECT_EQ(testing_::FaultInjector::instance().injected_total(), 0u);
}

TEST(FaultInjector, OnAndEveryTriggersAreExact) {
  testing_::FaultScope scope(plan_from(
      "seed 1\njournal.write on=3 short_write\njournal.write every=5 fail\n"));
  std::vector<testing_::FaultAction> seen;
  for (int i = 0; i < 10; ++i) seen.push_back(VAPRO_FAULT("journal.write"));
  for (int i = 0; i < 10; ++i) {
    testing_::FaultAction want = testing_::FaultAction::kNone;
    if (i + 1 == 3) want = testing_::FaultAction::kShortWrite;
    if ((i + 1) % 5 == 0) want = testing_::FaultAction::kFail;
    EXPECT_EQ(seen[static_cast<std::size_t>(i)], want) << "hit " << i + 1;
  }
  EXPECT_EQ(testing_::FaultInjector::instance().hits("journal.write"), 10u);
  EXPECT_EQ(testing_::FaultInjector::instance().injected("journal.write"), 3u);
}

TEST(FaultInjector, LimitCapsFirings) {
  testing_::FaultScope scope(
      plan_from("seed 1\nclient.ingest every=2 drop limit=3\n"));
  int fired = 0;
  for (int i = 0; i < 20; ++i)
    if (VAPRO_FAULT("client.ingest") == testing_::FaultAction::kDrop) ++fired;
  EXPECT_EQ(fired, 3);
}

TEST(FaultInjector, ProbabilityScheduleIsSeedDeterministic) {
  auto schedule = [](std::uint64_t seed) {
    testing_::FaultScope scope(plan_from(
        "seed " + std::to_string(seed) + "\nexpo.send prob=0.3 close\n"));
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i)
      fired.push_back(VAPRO_FAULT("expo.send") ==
                      testing_::FaultAction::kClose);
    return fired;
  };
  const auto a = schedule(42), b = schedule(42), c = schedule(43);
  EXPECT_EQ(a, b);  // same seed → identical firing schedule
  EXPECT_NE(a, c);  // different seed → (overwhelmingly) different schedule
  int fired = 0;
  for (bool f : a) fired += f ? 1 : 0;
  EXPECT_GT(fired, 0);
  EXPECT_LT(fired, 64);
}

TEST(FaultInjector, SitesCountIndependently) {
  testing_::FaultScope scope(plan_from(
      "seed 1\njournal.write on=2 fail\nalerts.dispatch on=2 drop\n"));
  // Interleave: each site fires on ITS OWN second hit, regardless of the
  // other site's traffic.
  EXPECT_EQ(VAPRO_FAULT("journal.write"), testing_::FaultAction::kNone);
  EXPECT_EQ(VAPRO_FAULT("alerts.dispatch"), testing_::FaultAction::kNone);
  EXPECT_EQ(VAPRO_FAULT("journal.write"), testing_::FaultAction::kFail);
  EXPECT_EQ(VAPRO_FAULT("alerts.dispatch"), testing_::FaultAction::kDrop);
}

TEST(FaultInjector, ThrowIfRaisesFaultInjected) {
  EXPECT_THROW(testing_::FaultInjector::throw_if(
                   testing_::FaultAction::kThrow, "alerts.dispatch"),
               testing_::FaultInjected);
  testing_::FaultInjector::throw_if(testing_::FaultAction::kNone,
                                    "alerts.dispatch");  // no throw
}

// --- journal hazard sites -------------------------------------------------

TEST(JournalFault, EnospcDropsLineButKeepsSeqMonotonic) {
  const std::string path = temp_path("journal_enospc.jsonl");
  std::remove(path.c_str());
  {
    testing_::FaultScope scope(plan_from("seed 1\njournal.write on=3 fail\n"));
    obs::Journal journal;
    obs::JournalFileSink sink(path);
    ASSERT_TRUE(sink.ok());
    journal.add_sink(&sink);
    // The header is written at open, not through the hook: hits count
    // event writes only, so on=3 drops the event with seq 2.
    for (int i = 0; i < 5; ++i)
      journal.emit("window", i, 0.1 * i, {obs::JournalField::num(
                                             "n", static_cast<double>(i))});
    journal.flush();
    EXPECT_EQ(sink.write_faults(), 1u);
    EXPECT_EQ(sink.lines_written(), 4u);
  }
  obs::JournalReadResult read = obs::read_journal(path);
  ASSERT_TRUE(read.ok) << read.error;
  ASSERT_EQ(read.events.size(), 4u);
  // seq 2 is a hole: monotonic, never reordered.
  std::vector<std::uint64_t> seqs;
  for (const auto& ev : read.events) seqs.push_back(ev.seq);
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{0, 1, 3, 4}));
}

TEST(JournalFault, ShortWriteLeavesTornTailAndReaderRecovers) {
  const std::string path = temp_path("journal_torn.jsonl");
  std::remove(path.c_str());
  {
    testing_::FaultScope scope(
        plan_from("seed 1\njournal.write on=3 short_write\n"));
    obs::Journal journal;
    obs::JournalFileSink sink(path);
    journal.add_sink(&sink);
    for (int i = 0; i < 4; ++i)
      journal.emit("window", i, 0.1 * i,
                   {obs::JournalField::str("payload", "x-marks-the-line")});
    journal.flush();
    EXPECT_FALSE(sink.ok());  // the "crashed" writer went quiet
    EXPECT_EQ(sink.lines_written(), 2u);
  }
  // Without recovery the torn final line is fatal.
  obs::JournalReadResult strict = obs::read_journal(path);
  EXPECT_FALSE(strict.ok);
  // With recovery: both complete events survive, the tail is reported.
  obs::JournalReadOptions opts;
  opts.recover_truncated_tail = true;
  obs::JournalReadResult read = obs::read_journal(path, opts);
  ASSERT_TRUE(read.ok) << read.error;
  EXPECT_TRUE(read.truncated_tail);
  ASSERT_EQ(read.events.size(), 2u);
  EXPECT_EQ(read.events[1].seq, 1u);
}

TEST(JournalFault, AppendReopenTruncatesTornTailAndResumes) {
  const std::string path = temp_path("journal_reopen.jsonl");
  std::remove(path.c_str());
  {
    testing_::FaultScope scope(
        plan_from("seed 1\njournal.write on=2 short_write\n"));
    obs::Journal journal;
    obs::JournalFileSink sink(path);
    journal.add_sink(&sink);
    journal.emit("window", 0, 0.0, {});
    journal.emit("window", 1, 0.1, {});  // torn mid-line
  }
  // Reopen as a restarted writer: the torn tail is cut, appending resumes.
  {
    obs::Journal journal;
    obs::JournalFileSink sink(path, obs::JournalFileSink::OpenMode::kAppend);
    ASSERT_TRUE(sink.ok());
    EXPECT_GT(sink.recovered_tail_bytes(), 0u);
    journal.add_sink(&sink);
    obs::JournalEvent ev;
    ev.seq = 5;  // journal seq restarts; the sink doesn't renumber
    ev.type = "window";
    ev.window = 2;
    sink.on_event(ev);
    sink.flush();
  }
  obs::JournalReadResult read = obs::read_journal(path);
  ASSERT_TRUE(read.ok) << read.error;  // no torn line left: strict read is OK
  ASSERT_EQ(read.events.size(), 2u);
  EXPECT_EQ(read.events[0].seq, 0u);
  EXPECT_EQ(read.events[1].seq, 5u);
}

TEST(JournalFault, CleanAppendReopenRecoversNothing) {
  const std::string path = temp_path("journal_clean_reopen.jsonl");
  std::remove(path.c_str());
  {
    obs::JournalFileSink sink(path);
    obs::JournalEvent ev;
    ev.type = "window";
    sink.on_event(ev);
  }
  obs::JournalFileSink sink(path, obs::JournalFileSink::OpenMode::kAppend);
  ASSERT_TRUE(sink.ok());
  EXPECT_EQ(sink.recovered_tail_bytes(), 0u);
}

TEST(JournalFault, RotateFailureKeepsOldSegmentActive) {
  const std::string a = temp_path("journal_rot_a.jsonl");
  const std::string b = temp_path("journal_rot_b.jsonl");
  std::remove(a.c_str());
  std::remove(b.c_str());
  testing_::FaultScope scope(plan_from("seed 1\njournal.rotate on=1 fail\n"));
  obs::JournalFileSink sink(a);
  obs::JournalEvent ev;
  ev.type = "window";
  sink.on_event(ev);
  EXPECT_FALSE(sink.rotate(b));  // injected rotation failure
  EXPECT_EQ(sink.path(), a);
  ev.seq = 1;
  sink.on_event(ev);  // still writable after the failed rotation
  sink.flush();
  EXPECT_EQ(sink.lines_written(), 2u);
  obs::JournalReadResult read = obs::read_journal(a);
  ASSERT_TRUE(read.ok) << read.error;
  EXPECT_EQ(read.events.size(), 2u);
}

TEST(JournalFault, RotateStartsFreshSegmentWithHeader) {
  const std::string a = temp_path("journal_rot2_a.jsonl");
  const std::string b = temp_path("journal_rot2_b.jsonl");
  std::remove(a.c_str());
  std::remove(b.c_str());
  obs::JournalFileSink sink(a);
  obs::JournalEvent ev;
  ev.type = "window";
  sink.on_event(ev);
  ASSERT_TRUE(sink.rotate(b));
  EXPECT_EQ(sink.path(), b);
  ev.seq = 1;
  sink.on_event(ev);
  sink.flush();
  obs::JournalReadResult ra = obs::read_journal(a);
  obs::JournalReadResult rb = obs::read_journal(b);
  ASSERT_TRUE(ra.ok) << ra.error;
  ASSERT_TRUE(rb.ok) << rb.error;
  EXPECT_EQ(ra.events.size(), 1u);  // sealed segment
  EXPECT_EQ(rb.events.size(), 1u);  // fresh segment with its own header
}

// --- alert dispatch -------------------------------------------------------

struct CountingAlertSink final : obs::AlertSink {
  int delivered = 0;
  bool throws = false;
  void on_alert(const obs::Alert&) override {
    if (throws) throw std::runtime_error("sink exploded");
    ++delivered;
  }
};

// Three windows over threshold fire `variance_ratio > 1.2 for 3` once.
void run_streak(obs::Journal& journal, int windows) {
  for (int i = 0; i < windows; ++i)
    journal.emit("window", i, 0.1 * i,
                 {obs::JournalField::num("variance_ratio", 1.5)});
}

TEST(AlertFault, DroppedDispatchSkipsSinkButCountsFire) {
  testing_::FaultScope scope(
      plan_from("seed 1\nalerts.dispatch on=1 drop\n"));
  obs::Journal journal;
  obs::AlertEngine engine;
  obs::AlertRule rule;
  std::string error;
  ASSERT_TRUE(obs::parse_alert_rule("variance_ratio > 1.2 for 3", &rule,
                                    &error))
      << error;
  engine.add_rule(rule);
  CountingAlertSink sink;
  engine.add_alert_sink(&sink);
  journal.add_sink(&engine);
  run_streak(journal, 3);
  EXPECT_EQ(engine.alerts_fired(), 1u);    // the rule fired...
  EXPECT_EQ(sink.delivered, 0);            // ...but delivery was dropped
  EXPECT_EQ(engine.dispatch_faults(), 1u);
  // The streak does not re-fire: a lost delivery is not a new alert.
  run_streak(journal, 3);
  EXPECT_EQ(engine.alerts_fired(), 1u);
}

TEST(AlertFault, ThrowingSinkDoesNotStarveOtherSinks) {
  obs::Journal journal;
  obs::AlertEngine engine;
  obs::AlertRule rule;
  std::string error;
  ASSERT_TRUE(obs::parse_alert_rule("variance_ratio > 1.2 for 3", &rule,
                                    &error))
      << error;
  engine.add_rule(rule);
  CountingAlertSink bad;
  bad.throws = true;
  CountingAlertSink good;
  engine.add_alert_sink(&bad);
  engine.add_alert_sink(&good);
  journal.add_sink(&engine);
  run_streak(journal, 3);  // must not propagate the sink's exception
  EXPECT_EQ(engine.alerts_fired(), 1u);
  EXPECT_EQ(good.delivered, 1);
  EXPECT_EQ(engine.dispatch_faults(), 1u);
}

// --- server publication ---------------------------------------------------

// A small multi-edge batch so the shard pool has real fan-out work: 3
// sites x 4 ranks of computation + communication fragments, with rank 3
// slowed in window 1 to produce a non-trivial heat map.
core::FragmentBatch shard_batch(int window) {
  core::FragmentBatch batch;
  const int kSites = 3, kRanks = 4, kReps = 6;
  std::vector<core::StateKey> keys;
  for (int s = 0; s < kSites; ++s) {
    sim::InvocationInfo info;
    info.site = static_cast<sim::CallSiteId>(20 + s);
    info.kind = sim::OpKind::kAllreduce;
    keys.push_back(core::make_state_key(core::StgMode::kContextFree, info));
    batch.new_states.push_back(info);
  }
  for (int rank = 0; rank < kRanks; ++rank) {
    core::StateKey prev = core::kStartState;
    double t = window * 0.25;
    for (int step = 0; step < kSites * kReps; ++step) {
      const int s = step % kSites;
      core::Fragment comp;
      comp.kind = core::FragmentKind::kComputation;
      comp.rank = rank;
      comp.from = prev;
      comp.to = keys[static_cast<std::size_t>(s)];
      comp.start_time = t;
      const double stretch = (window == 1 && rank == kRanks - 1) ? 2.0 : 1.0;
      comp.end_time = t + 0.003 * stretch;
      comp.counters[pmu::Counter::kTotIns] = 1e6 * (1 + s);
      batch.fragments.push_back(comp);
      t = comp.end_time + 0.005;
      prev = keys[static_cast<std::size_t>(s)];
    }
  }
  return batch;
}

TEST(PipelineFault, ShardFaultDegradesWindowToSerialWithIdenticalOutput) {
  // The pool-task throw is contained, the window re-fans-out serially, and
  // — because sharding is byte-equivalent by design — detection output
  // matches an unfaulted run exactly.
  auto run = [](const char* plan_text, std::size_t expected_faults) {
    std::optional<testing_::FaultScope> scope;
    if (plan_text) scope.emplace(plan_from(plan_text));
    core::ServerOptions opts;
    opts.run_diagnosis = false;
    opts.analysis_threads = 4;
    core::AnalysisServer server(4, opts);
    for (int w = 0; w < 3; ++w) server.process_window(shard_batch(w));
    std::string fp = server.computation_map().render_ascii();
    for (const core::VarianceRegion& r :
         server.locate(core::FragmentKind::kComputation))
      fp += std::to_string(r.rank_lo) + "," + std::to_string(r.rank_hi) + "," +
            std::to_string(r.bin_lo) + "," + std::to_string(r.bin_hi) + "," +
            std::to_string(r.impact_seconds) + "\n";
    EXPECT_EQ(server.shard_faults(), expected_faults);
    return fp;
  };
  const std::string clean = run(nullptr, 0);
  const std::string faulted = run("seed 1\npipeline.shard on=2 fail\n", 1);
  EXPECT_EQ(faulted, clean);
  EXPECT_FALSE(clean.empty());
}

TEST(PipelineFault, ShardFaultOnSerialServerNeverFires) {
  // The site is only evaluated when a shard pool exists, so a serial
  // server under the same plan stays untouched.
  testing_::FaultScope scope(
      plan_from("seed 1\npipeline.shard every=1 fail\n"));
  core::ServerOptions opts;
  opts.run_diagnosis = false;
  opts.analysis_threads = 1;
  core::AnalysisServer server(4, opts);
  for (int w = 0; w < 2; ++w) server.process_window(shard_batch(w));
  EXPECT_EQ(server.shard_faults(), 0u);
  EXPECT_EQ(server.windows_processed(), 2u);
}

TEST(ServerFault, WindowPublishFaultSkipsJournalButKeepsAnalysis) {
  testing_::FaultScope scope(plan_from("seed 1\nserver.window on=1 fail\n"));
  obs::ObsContext obs;
  obs.enable_journal();
  struct Collecting final : obs::JournalSink {
    std::vector<std::string> types;
    void on_event(const obs::JournalEvent& ev) override {
      types.push_back(ev.type);
    }
  } collector;
  obs.journal()->add_sink(&collector);

  core::ServerOptions opts;
  opts.run_diagnosis = false;
  opts.obs = &obs;
  core::AnalysisServer server(2, opts);
  server.process_window({});  // publish for window 0 is injected away
  server.process_window({});  // window 1 publishes normally
  EXPECT_EQ(server.windows_processed(), 2u);
  EXPECT_EQ(server.publish_faults(), 1u);
  int window_events = 0;
  for (const std::string& t : collector.types) window_events += t == "window";
  EXPECT_EQ(window_events, 1);  // only the unfaulted window journaled
}

#endif  // VAPRO_FAULT_INJECTION

// --- virtual clock --------------------------------------------------------

TEST(VirtualClock, AdvancesOnlyExplicitly) {
  util::VirtualClock clock(100.0);
  EXPECT_DOUBLE_EQ(clock.now_seconds(), 100.0);
  clock.advance(2.5);
  EXPECT_DOUBLE_EQ(clock.now_seconds(), 102.5);
  clock.sleep_for(1.5);  // a virtual sleeper advances time itself
  EXPECT_DOUBLE_EQ(clock.now_seconds(), 104.0);
  clock.set(90.0);  // monotonic: set() never steps backwards
  EXPECT_DOUBLE_EQ(clock.now_seconds(), 104.0);
  clock.advance(-3.0);  // negative advances are ignored
  EXPECT_DOUBLE_EQ(clock.now_seconds(), 104.0);
}

TEST(VirtualClock, DrivesObsContextAgesWithoutSleeping) {
  util::VirtualClock clock;
  obs::ObsContext obs;
  obs.set_clock(&clock);
  EXPECT_DOUBLE_EQ(obs.uptime_seconds(), 0.0);
  EXPECT_LT(obs.last_window_age_seconds(), 0.0);  // no window yet
  clock.advance(5.0);
  EXPECT_DOUBLE_EQ(obs.uptime_seconds(), 5.0);
  obs.emit_window({});
  EXPECT_NEAR(obs.last_window_age_seconds(), 0.0, 1e-9);
  clock.advance(7.0);
  EXPECT_NEAR(obs.last_window_age_seconds(), 7.0, 1e-9);
  EXPECT_DOUBLE_EQ(obs.uptime_seconds(), 12.0);
}

TEST(VirtualClock, RealClockIsMonotonicSingleton) {
  util::Clock* clock = util::real_clock();
  ASSERT_NE(clock, nullptr);
  EXPECT_EQ(clock, util::real_clock());
  const double a = clock->now_seconds();
  const double b = clock->now_seconds();
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace vapro
