// End-to-end smoke tests: simulator + Vapro session on real mini apps.
#include <gtest/gtest.h>

#include "src/apps/npb.hpp"
#include "src/core/vapro.hpp"
#include "src/sim/runtime.hpp"

namespace vapro {
namespace {

sim::SimConfig small_config(int ranks) {
  sim::SimConfig cfg;
  cfg.ranks = ranks;
  cfg.cores_per_node = 8;
  cfg.seed = 7;
  return cfg;
}

TEST(Smoke, CgRunsToCompletionWithoutTool) {
  sim::Simulator simulator(small_config(8));
  apps::NpbParams p;
  p.iters = 10;
  p.warmup_iters = 2;
  auto result = simulator.run(apps::cg(p));
  EXPECT_EQ(result.finish_times.size(), 8u);
  EXPECT_GT(result.makespan, 0.0);
  for (double t : result.finish_times) EXPECT_GT(t, 0.0);
}

TEST(Smoke, VaproSessionCollectsFragments) {
  sim::Simulator simulator(small_config(8));
  core::VaproOptions opts;
  opts.window_seconds = 0.05;
  core::VaproSession session(simulator, opts);
  apps::NpbParams p;
  p.iters = 20;
  p.warmup_iters = 2;
  auto result = simulator.run(apps::cg(p));
  EXPECT_GT(session.fragments_recorded(), 100u);
  EXPECT_GT(session.server().windows_processed(), 1u);
  // Quiet run: coverage should be substantial and no big variance regions.
  double total = 0;
  for (double t : result.finish_times) total += t;
  EXPECT_GT(session.coverage(total), 0.3);
}

TEST(Smoke, CpuNoiseIsDetected) {
  sim::SimConfig cfg = small_config(16);
  // CPU contention on node 0 (ranks 0-7) mid-run.
  sim::NoiseSpec noise;
  noise.kind = sim::NoiseKind::kCpuContention;
  noise.node = 0;
  noise.t_begin = 0.1;
  noise.t_end = 1e9;
  noise.magnitude = 1.0;  // 50% share
  cfg.noises.push_back(noise);
  sim::Simulator simulator(cfg);

  core::VaproOptions opts;
  opts.window_seconds = 0.2;
  core::VaproSession session(simulator, opts);
  apps::NpbParams p;
  p.iters = 30;
  p.warmup_iters = 2;
  simulator.run(apps::cg(p));

  auto regions = session.locate(core::FragmentKind::kComputation);
  ASSERT_FALSE(regions.empty());
  // The biggest region should cover (a subset of) the noisy ranks.
  const auto& top = regions.front();
  EXPECT_LE(top.rank_hi, 7);
  EXPECT_LT(top.mean_perf, 0.85);
}

}  // namespace
}  // namespace vapro
