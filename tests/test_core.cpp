// Unit tests for the Vapro core detection pipeline: STG construction,
// Algorithm 1 clustering (including parameterized threshold sweeps),
// normalization, coverage, heat maps, and region growing.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "src/core/clustering.hpp"
#include "src/core/detection.hpp"
#include "src/core/heatmap.hpp"
#include "src/core/stg.hpp"
#include "src/util/rng.hpp"

namespace vapro::core {
namespace {

sim::InvocationInfo invocation(sim::CallSiteId site,
                               std::vector<std::uint32_t> path = {},
                               sim::OpKind kind = sim::OpKind::kAllreduce) {
  sim::InvocationInfo info;
  info.rank = 0;
  info.site = site;
  info.kind = kind;
  info.path = std::move(path);
  return info;
}

Fragment comp_fragment(StateKey from, StateKey to, double start, double dur,
                       double tot_ins, int rank = 0,
                       std::int64_t truth = -1) {
  Fragment f;
  f.kind = FragmentKind::kComputation;
  f.rank = rank;
  f.from = from;
  f.to = to;
  f.start_time = start;
  f.end_time = start + dur;
  f.counters[pmu::Counter::kTotIns] = tot_ins;
  f.truth_class = truth;
  return f;
}

// --- STG ---

TEST(Stg, ContextFreeKeyIgnoresPath) {
  auto a = make_state_key(StgMode::kContextFree, invocation(5, {1, 2}));
  auto b = make_state_key(StgMode::kContextFree, invocation(5, {9}));
  EXPECT_EQ(a, b);
  auto c = make_state_key(StgMode::kContextFree, invocation(6));
  EXPECT_NE(a, c);
}

TEST(Stg, ContextAwareKeySplitsByPath) {
  auto a = make_state_key(StgMode::kContextAware, invocation(5, {1, 2}));
  auto b = make_state_key(StgMode::kContextAware, invocation(5, {9}));
  auto c = make_state_key(StgMode::kContextAware, invocation(5, {1, 2}));
  EXPECT_NE(a, b);
  EXPECT_EQ(a, c);
}

TEST(Stg, KeyNeverCollidesWithStart) {
  for (sim::CallSiteId s = 0; s < 1000; ++s) {
    EXPECT_NE(make_state_key(StgMode::kContextFree, invocation(s)),
              kStartState);
  }
}

TEST(Stg, VerticesAndEdgesGrow) {
  Stg stg(StgMode::kContextFree);
  auto k1 = stg.touch_vertex(invocation(1));
  auto k2 = stg.touch_vertex(invocation(2));
  EXPECT_EQ(stg.vertex_count(), 2u);
  stg.touch_vertex(invocation(1));  // idempotent
  EXPECT_EQ(stg.vertex_count(), 2u);

  stg.add_fragment(comp_fragment(k1, k2, 0.0, 0.1, 1000));
  stg.add_fragment(comp_fragment(k1, k2, 0.2, 0.1, 1000));
  stg.add_fragment(comp_fragment(k2, k1, 0.4, 0.1, 500));
  EXPECT_EQ(stg.edge_count(), 2u);
  EXPECT_EQ(stg.fragments().size(), 3u);
}

TEST(Stg, VertexFragmentsAttach) {
  Stg stg(StgMode::kContextFree);
  auto k = stg.touch_vertex(invocation(3));
  Fragment f;
  f.kind = FragmentKind::kCommunication;
  f.to = k;
  f.from = k;
  f.args.bytes = 64;
  stg.add_fragment(f);
  EXPECT_EQ(stg.vertices().at(k).fragments.size(), 1u);
}

TEST(Stg, StateNameIsHumanReadable) {
  Stg stg(StgMode::kContextAware);
  auto k = stg.touch_vertex(invocation(7, {1, 2}, sim::OpKind::kSend));
  auto name = stg.state_name(k);
  EXPECT_NE(name.find("Send"), std::string::npos);
  EXPECT_NE(name.find("site7"), std::string::npos);
  EXPECT_NE(name.find("1/2"), std::string::npos);
  EXPECT_EQ(stg.state_name(kStartState), "<start>");
}

TEST(Stg, ClearFragmentsKeepsStructure) {
  Stg stg(StgMode::kContextFree);
  auto k1 = stg.touch_vertex(invocation(1));
  auto k2 = stg.touch_vertex(invocation(2));
  stg.add_fragment(comp_fragment(k1, k2, 0, 0.1, 100));
  stg.clear_fragments();
  EXPECT_EQ(stg.fragments().size(), 0u);
  EXPECT_EQ(stg.vertex_count(), 2u);
  EXPECT_EQ(stg.edge_count(), 1u);
  EXPECT_TRUE(stg.edges().begin()->second.fragments.empty());
}

// --- workload vectors ---

TEST(WorkloadVector, NormAndDistance) {
  WorkloadVector a{{3.0, 4.0}};
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
  WorkloadVector b{{0.0, 0.0}};
  EXPECT_DOUBLE_EQ(a.distance(b), 5.0);
}

TEST(WorkloadVector, CommFragmentsUseArgs) {
  Fragment f;
  f.kind = FragmentKind::kCommunication;
  f.args.bytes = 4096;
  f.args.peer = 3;
  f.op = sim::OpKind::kSend;
  auto v = make_workload_vector(f, {});
  ASSERT_EQ(v.dims.size(), 3u);
  EXPECT_DOUBLE_EQ(v.dims[0], 4096);
  // Different peer → different vector even with equal bytes.
  Fragment g = f;
  g.args.peer = 4;
  EXPECT_GT(make_workload_vector(g, {}).distance(v), 0.0);
}

// --- clustering (Algorithm 1) ---

class ClusteringFixture : public ::testing::Test {
 protected:
  Stg stg_{StgMode::kContextFree};
  StateKey k1_ = stg_.touch_vertex(invocation(1));
  StateKey k2_ = stg_.touch_vertex(invocation(2));

  // Adds n fragments of tot_ins each on edge k1→k2.
  void add_class(int n, double tot_ins, std::int64_t truth,
                 double duration = 0.01) {
    for (int i = 0; i < n; ++i)
      stg_.add_fragment(comp_fragment(k1_, k2_, 0.1 * i, duration, tot_ins,
                                      /*rank=*/0, truth));
  }
};

TEST_F(ClusteringFixture, SeparatesDistantClasses) {
  add_class(10, 1000, 0);
  add_class(10, 2000, 1);
  auto result = cluster_stg(stg_, ClusterOptions{});
  ASSERT_EQ(result.clusters.size(), 2u);
  EXPECT_EQ(result.clusters[0].members.size(), 10u);
  EXPECT_EQ(result.clusters[1].members.size(), 10u);
  EXPECT_FALSE(result.clusters[0].rare);
}

TEST_F(ClusteringFixture, MergesWithinThreshold) {
  // 2% apart — below the 5% threshold (the PageRank case).
  add_class(10, 1000, 0);
  add_class(10, 1020, 1);
  auto result = cluster_stg(stg_, ClusterOptions{});
  ASSERT_EQ(result.clusters.size(), 1u);
  EXPECT_EQ(result.clusters[0].members.size(), 20u);
}

TEST_F(ClusteringFixture, RareClustersFlagged) {
  add_class(10, 1000, 0);
  add_class(3, 5000, 1);  // fewer than min_cluster_size
  auto result = cluster_stg(stg_, ClusterOptions{});
  ASSERT_EQ(result.clusters.size(), 2u);
  EXPECT_FALSE(result.clusters[0].rare);
  EXPECT_TRUE(result.clusters[1].rare);
  EXPECT_EQ(result.rare_count(), 1u);
}

TEST_F(ClusteringFixture, SeedIsLeastNorm) {
  add_class(5, 3000, 0);
  add_class(5, 1000, 1);
  auto result = cluster_stg(stg_, ClusterOptions{});
  ASSERT_EQ(result.clusters.size(), 2u);
  // Clusters are seeded smallest-norm first.
  EXPECT_LT(result.clusters[0].seed_norm, result.clusters[1].seed_norm);
  EXPECT_DOUBLE_EQ(result.clusters[0].seed_norm, 1000.0);
}

TEST_F(ClusteringFixture, AssignmentCoversEveryFragment) {
  add_class(7, 1000, 0);
  add_class(4, 1500, 1);
  add_class(9, 9000, 2);
  auto result = cluster_stg(stg_, ClusterOptions{});
  EXPECT_EQ(result.assignment.size(), stg_.fragments().size());
}

TEST_F(ClusteringFixture, SeparateEdgesNeverMix) {
  StateKey k3 = stg_.touch_vertex(invocation(3));
  stg_.add_fragment(comp_fragment(k1_, k2_, 0, 0.01, 1000));
  stg_.add_fragment(comp_fragment(k2_, k3, 0, 0.01, 1000));
  auto result = cluster_stg(stg_, ClusterOptions{});
  // Same workload on different edges → two clusters.
  EXPECT_EQ(result.clusters.size(), 2u);
}

TEST_F(ClusteringFixture, ParallelMatchesSerial) {
  util::Rng rng(5);
  for (int i = 0; i < 500; ++i)
    add_class(1, 1000 * (1 + (i % 7)), i % 7);
  auto serial = cluster_stg(stg_, ClusterOptions{});
  auto parallel = cluster_stg_parallel(stg_, ClusterOptions{}, 4);
  ASSERT_EQ(serial.clusters.size(), parallel.clusters.size());
  for (std::size_t i = 0; i < serial.clusters.size(); ++i) {
    EXPECT_EQ(serial.clusters[i].members, parallel.clusters[i].members);
  }
}

TEST_F(ClusteringFixture, ZeroNormFragmentsCluster) {
  add_class(6, 0.0, 0);
  auto result = cluster_stg(stg_, ClusterOptions{});
  ASSERT_EQ(result.clusters.size(), 1u);
  EXPECT_EQ(result.clusters[0].members.size(), 6u);
}

// Parameterized sweep: classes exactly `gap` apart must merge iff
// gap < threshold (property of Algorithm 1's radius rule).
class ThresholdSweep : public ::testing::TestWithParam<double> {};

TEST_P(ThresholdSweep, MergeIffWithinThreshold) {
  const double gap = GetParam();
  Stg stg(StgMode::kContextFree);
  auto k1 = stg.touch_vertex(invocation(1));
  auto k2 = stg.touch_vertex(invocation(2));
  for (int i = 0; i < 8; ++i)
    stg.add_fragment(comp_fragment(k1, k2, 0.1 * i, 0.01, 1000));
  for (int i = 0; i < 8; ++i)
    stg.add_fragment(comp_fragment(k1, k2, 0.1 * i, 0.01, 1000 * (1 + gap)));
  ClusterOptions opts;
  opts.threshold = 0.05;
  auto result = cluster_stg(stg, opts);
  if (gap < 0.05) {
    EXPECT_EQ(result.clusters.size(), 1u) << "gap=" << gap;
  } else {
    EXPECT_EQ(result.clusters.size(), 2u) << "gap=" << gap;
  }
}

INSTANTIATE_TEST_SUITE_P(Gaps, ThresholdSweep,
                         ::testing::Values(0.005, 0.01, 0.02, 0.04, 0.06,
                                           0.10, 0.25, 1.0));

// --- normalization & baseline ---

TEST(Detection, FastestFragmentNormalizesToOne) {
  Stg stg(StgMode::kContextFree);
  auto k1 = stg.touch_vertex(invocation(1));
  auto k2 = stg.touch_vertex(invocation(2));
  for (int i = 0; i < 6; ++i)
    stg.add_fragment(
        comp_fragment(k1, k2, 0.1 * i, i == 0 ? 0.01 : 0.02, 1000));
  auto clusters = cluster_stg(stg, ClusterOptions{});
  auto normalized = normalize_fragments(stg, clusters, nullptr);
  ASSERT_EQ(normalized.size(), 6u);
  double best = 0, worst = 1;
  for (const auto& nf : normalized) {
    best = std::max(best, nf.perf);
    worst = std::min(worst, nf.perf);
  }
  EXPECT_DOUBLE_EQ(best, 1.0);
  EXPECT_NEAR(worst, 0.5, 1e-9);
}

TEST(Detection, RareClustersAreNotNormalized) {
  Stg stg(StgMode::kContextFree);
  auto k1 = stg.touch_vertex(invocation(1));
  auto k2 = stg.touch_vertex(invocation(2));
  stg.add_fragment(comp_fragment(k1, k2, 0, 0.01, 1000));  // single → rare
  auto clusters = cluster_stg(stg, ClusterOptions{});
  auto normalized = normalize_fragments(stg, clusters, nullptr);
  EXPECT_TRUE(normalized.empty());
}

TEST(Detection, BaselineCarriesMinimumAcrossWindows) {
  ClusterBaseline baseline(0.05);
  Cluster c;
  c.from = 1;
  c.to = 2;
  c.kind = FragmentKind::kComputation;
  c.seed_norm = 1000;
  EXPECT_DOUBLE_EQ(baseline.update(c, 0.010), 0.010);
  // Later window only saw slower executions: min must persist.
  EXPECT_DOUBLE_EQ(baseline.update(c, 0.020), 0.010);
  // A faster execution updates it.
  EXPECT_DOUBLE_EQ(baseline.update(c, 0.008), 0.008);
}

TEST(Detection, BaselineSeparatesWorkloadClasses) {
  ClusterBaseline baseline(0.05);
  Cluster a, b;
  a.from = b.from = 1;
  a.to = b.to = 2;
  a.kind = b.kind = FragmentKind::kComputation;
  a.seed_norm = 1000;
  b.seed_norm = 2000;  // different class, far outside one threshold bucket
  EXPECT_DOUBLE_EQ(baseline.update(a, 0.010), 0.010);
  EXPECT_DOUBLE_EQ(baseline.update(b, 0.050), 0.050);
  EXPECT_EQ(baseline.size(), 2u);
}

TEST(Detection, CoverageAccumulatorSplitsRareFromRepeated) {
  Stg stg(StgMode::kContextFree);
  auto k1 = stg.touch_vertex(invocation(1));
  auto k2 = stg.touch_vertex(invocation(2));
  for (int i = 0; i < 10; ++i)
    stg.add_fragment(comp_fragment(k1, k2, 0.1 * i, 0.01, 1000));
  stg.add_fragment(comp_fragment(k1, k2, 2.0, 0.5, 77777));  // rare
  auto clusters = cluster_stg(stg, ClusterOptions{});
  CoverageAccumulator cov;
  cov.add(stg, clusters);
  EXPECT_NEAR(cov.covered[0], 0.1, 1e-9);
  EXPECT_NEAR(cov.observed[0], 0.6, 1e-9);
  EXPECT_NEAR(cov.coverage(1.0), 0.1, 1e-9);
  EXPECT_DOUBLE_EQ(cov.coverage(0.0), 0.0);
}

// --- heat map & region growing ---

TEST(Heatmap, DepositSplitsAcrossBins) {
  Heatmap map(2, 1.0);
  map.deposit(0, 0.5, 2.5, 0.8);  // spans bins 0,1,2
  EXPECT_NEAR(map.weight(0, 0), 0.5, 1e-12);
  EXPECT_NEAR(map.weight(0, 1), 1.0, 1e-12);
  EXPECT_NEAR(map.weight(0, 2), 0.5, 1e-12);
  EXPECT_NEAR(map.cell(0, 1), 0.8, 1e-12);
  EXPECT_FALSE(map.has_data(1, 0));
  EXPECT_TRUE(std::isnan(map.cell(1, 0)));
}

TEST(Heatmap, CellAveragesAreWeighted) {
  Heatmap map(1, 1.0);
  map.deposit(0, 0.0, 1.0, 1.0);   // weight 1 at perf 1
  map.deposit(0, 0.0, 0.5, 0.5);   // weight 0.5 at perf 0.5
  EXPECT_NEAR(map.cell(0, 0), (1.0 * 1.0 + 0.5 * 0.5) / 1.5, 1e-12);
}

TEST(Heatmap, RowMeanIgnoresEmptyBins) {
  Heatmap map(1, 1.0);
  map.deposit(0, 0.0, 1.0, 0.6);
  map.deposit(0, 5.0, 6.0, 0.8);
  EXPECT_NEAR(map.row_mean(0), 0.7, 1e-12);
}

TEST(Heatmap, AsciiAndCsvRender) {
  Heatmap map(4, 0.5);
  map.deposit(1, 0.0, 2.0, 0.2);
  map.deposit(0, 0.0, 2.0, 1.0);
  auto ascii = map.render_ascii();
  EXPECT_NE(ascii.find("rank"), std::string::npos);
  const std::string path = "/tmp/vapro_heatmap_test.csv";
  map.write_csv(path);
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_NE(header.find("rank\\time_s"), std::string::npos);
  std::remove(path.c_str());
}

TEST(RegionGrowing, FindsASingleBlock) {
  Heatmap map(8, 1.0);
  // Background at perf 1, a 3-rank × 4-bin hole at 0.4.
  for (int r = 0; r < 8; ++r) map.deposit(r, 0.0, 10.0, 1.0);
  for (int r = 2; r <= 4; ++r) map.deposit(r, 3.0, 7.0, 0.05);
  auto regions = find_variance_regions(map, 0.85);
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_EQ(regions[0].rank_lo, 2);
  EXPECT_EQ(regions[0].rank_hi, 4);
  EXPECT_EQ(regions[0].bin_lo, 3);
  EXPECT_EQ(regions[0].bin_hi, 6);
  EXPECT_EQ(regions[0].cells, 12u);
  EXPECT_LT(regions[0].mean_perf, 0.85);
  EXPECT_GT(regions[0].impact_seconds, 0.0);
}

TEST(RegionGrowing, SeparatesDisconnectedRegions) {
  Heatmap map(8, 1.0);
  for (int r = 0; r < 8; ++r) map.deposit(r, 0.0, 10.0, 1.0);
  map.deposit(0, 1.0, 2.0, 0.1);
  map.deposit(7, 8.0, 9.0, 0.1);
  auto regions = find_variance_regions(map, 0.85);
  EXPECT_EQ(regions.size(), 2u);
}

TEST(RegionGrowing, SortsByImpact) {
  Heatmap map(4, 1.0);
  for (int r = 0; r < 4; ++r) map.deposit(r, 0.0, 10.0, 1.0);
  map.deposit(0, 1.0, 2.0, 0.5);   // small impact
  map.deposit(2, 4.0, 9.0, 0.1);   // large impact
  auto regions = find_variance_regions(map, 0.85);
  ASSERT_EQ(regions.size(), 2u);
  EXPECT_GT(regions[0].impact_seconds, regions[1].impact_seconds);
  EXPECT_EQ(regions[0].rank_lo, 2);
}

TEST(RegionGrowing, QuietCellsAreNotVariance) {
  Heatmap map(4, 1.0);
  map.deposit(1, 0.0, 1.0, 1.0);
  // No data anywhere else; threshold must not fire on empty cells.
  EXPECT_TRUE(find_variance_regions(map, 0.85).empty());
}

// Parameterized: the region-growing threshold is a strict cut.
class RegionThreshold : public ::testing::TestWithParam<double> {};

TEST_P(RegionThreshold, CellBelowThresholdIffDetected) {
  const double perf = GetParam();
  Heatmap map(1, 1.0);
  map.deposit(0, 0.0, 1.0, perf);
  auto regions = find_variance_regions(map, 0.85);
  if (perf < 0.85) {
    EXPECT_EQ(regions.size(), 1u);
  } else {
    EXPECT_TRUE(regions.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Cuts, RegionThreshold,
                         ::testing::Values(0.1, 0.5, 0.84, 0.86, 0.95, 1.0));

}  // namespace
}  // namespace vapro::core
