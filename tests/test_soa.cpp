// Property tests for the SoA fragment layout (src/core/columns.hpp) and
// its contract with the clustering pipeline:
//
//   * FragmentColumns round-trips every Fragment field through push_back /
//     materialize / set / append, for owning Fragments and FragmentViews
//     alike;
//   * move (and Stg::adopt_fragments) is an arena POINTER SWAP — proved by
//     column-pointer equality, not timing — and the moved-from object is
//     empty and reusable;
//   * clear() rewinds the arena without releasing it, so a same-shaped
//     refill reuses the warm chunks byte-for-byte (stable reserved bytes,
//     stable column addresses);
//   * clustering is a pure function of the fragment MULTISET: permuting
//     the window's fragment order (distinct norms, so Algorithm 1's
//     norm-sort has unique keys) yields identical clusters, and an
//     arena-reset window cycle yields identical clusters to the first
//     window;
//   * degenerate window shapes — empty, single-fragment, 64Ki fragments —
//     hold the same invariants.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/clustering.hpp"
#include "src/core/columns.hpp"
#include "src/core/stg.hpp"
#include "src/util/rng.hpp"

namespace vapro::core {
namespace {

sim::InvocationInfo invocation(sim::CallSiteId site,
                               sim::OpKind kind = sim::OpKind::kAllreduce) {
  sim::InvocationInfo info;
  info.rank = 0;
  info.site = site;
  info.kind = kind;
  return info;
}

// A fragment with every field set to an index-derived, distinct value, so
// a column mix-up (e.g. two columns swapped or aliased) cannot cancel out.
Fragment dense_fragment(std::size_t i) {
  Fragment f;
  f.kind = static_cast<FragmentKind>(i % 3);
  f.rank = static_cast<sim::RankId>(i % 7);
  f.from = 100 + i;
  f.to = 200 + i;
  f.start_time = 0.5 * static_cast<double>(i);
  f.end_time = f.start_time + 0.25;
  f.counters[pmu::Counter::kTotIns] = 1000.0 + static_cast<double>(i);
  f.counters[pmu::Counter::kMemRefs] = 2000.0 + static_cast<double>(i);
  f.args.bytes = static_cast<double>(64 * (i + 1));
  f.args.peer = static_cast<int>(i % 5);
  f.args.fd = static_cast<int>(i % 4);
  f.args.tag = static_cast<int>(i);
  f.op = i % 2 ? sim::OpKind::kSend : sim::OpKind::kFileWrite;
  f.truth_class = static_cast<std::int64_t>(i % 11);
  return f;
}

void expect_fragment_eq(const Fragment& a, const Fragment& b,
                        std::size_t i) {
  EXPECT_EQ(a.kind, b.kind) << "fragment " << i;
  EXPECT_EQ(a.rank, b.rank) << "fragment " << i;
  EXPECT_EQ(a.from, b.from) << "fragment " << i;
  EXPECT_EQ(a.to, b.to) << "fragment " << i;
  EXPECT_EQ(a.start_time, b.start_time) << "fragment " << i;
  EXPECT_EQ(a.end_time, b.end_time) << "fragment " << i;
  EXPECT_EQ(a.counters.values, b.counters.values) << "fragment " << i;
  EXPECT_EQ(a.args.bytes, b.args.bytes) << "fragment " << i;
  EXPECT_EQ(a.args.peer, b.args.peer) << "fragment " << i;
  EXPECT_EQ(a.args.fd, b.args.fd) << "fragment " << i;
  EXPECT_EQ(a.args.tag, b.args.tag) << "fragment " << i;
  EXPECT_EQ(a.op, b.op) << "fragment " << i;
  EXPECT_EQ(a.truth_class, b.truth_class) << "fragment " << i;
}

// Order-independent, full-precision fingerprint of a clustering result:
// per cluster (sorted by kind, seed_norm) the rare flag, member count and
// the sorted member workload values.  Member INDICES are deliberately
// excluded — they depend on insertion order, which is exactly what the
// permutation property varies.
std::string cluster_fingerprint(const Stg& stg, const ClusteringResult& r) {
  std::vector<std::string> lines;
  for (const Cluster& c : r.clusters) {
    std::vector<double> values;
    for (std::size_t idx : c.members)
      values.push_back(
          stg.fragments().counters(idx)[pmu::Counter::kTotIns]);
    std::sort(values.begin(), values.end());
    std::ostringstream oss;
    oss.precision(17);
    oss << fragment_kind_name(c.kind) << "|seed=" << c.seed_norm
        << "|rare=" << c.rare << "|n=" << c.members.size() << "|";
    for (double v : values) oss << v << ",";
    lines.push_back(oss.str());
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& l : lines) out += l + "\n";
  return out;
}

// --- columns: round-trip, move, copy, clear ---

TEST(SoaColumns, PushBackMaterializeRoundTripsEveryField) {
  FragmentColumns cols;
  std::vector<Fragment> originals;
  for (std::size_t i = 0; i < 37; ++i) {
    originals.push_back(dense_fragment(i));
    cols.push_back(originals.back());
  }
  ASSERT_EQ(cols.size(), originals.size());
  for (std::size_t i = 0; i < originals.size(); ++i) {
    expect_fragment_eq(originals[i], cols.materialize(i), i);
    // The view accessors read the same columns the materialization does.
    EXPECT_EQ(cols[i].duration(), originals[i].duration());
  }
}

TEST(SoaColumns, PushBackOfViewEqualsPushBackOfFragment) {
  FragmentColumns base;
  for (std::size_t i = 0; i < 16; ++i) base.push_back(dense_fragment(i));
  FragmentColumns via_view;
  for (std::size_t i = 0; i < base.size(); ++i) via_view.push_back(base[i]);
  ASSERT_EQ(via_view.size(), base.size());
  for (std::size_t i = 0; i < base.size(); ++i)
    expect_fragment_eq(base.materialize(i), via_view.materialize(i), i);
}

TEST(SoaColumns, MoveIsArenaPointerSwap) {
  FragmentColumns cols;
  for (std::size_t i = 0; i < 64; ++i) cols.push_back(dense_fragment(i));
  const double* start = cols.start_data();
  const pmu::CounterSample* counters = cols.counters_data();
  const FragmentKind* kinds = cols.kind_data();

  FragmentColumns moved(std::move(cols));
  // The columns did not move in memory: the arena changed owners.
  EXPECT_EQ(moved.start_data(), start);
  EXPECT_EQ(moved.counters_data(), counters);
  EXPECT_EQ(moved.kind_data(), kinds);
  EXPECT_EQ(moved.size(), 64u);

  // The moved-from object is empty and immediately reusable.
  EXPECT_EQ(cols.size(), 0u);
  cols.push_back(dense_fragment(7));
  EXPECT_EQ(cols.size(), 1u);
  expect_fragment_eq(dense_fragment(7), cols.materialize(0), 7);
  // ... and refilling it never disturbed the moved-to block.
  EXPECT_EQ(moved.start_data(), start);
  expect_fragment_eq(dense_fragment(63), moved.materialize(63), 63);
}

TEST(SoaColumns, AdoptFragmentsIsAPointerSwapToo) {
  FragmentColumns batch;
  Stg stg(StgMode::kContextFree);
  const StateKey k1 = stg.touch_vertex(invocation(1));
  const StateKey k2 = stg.touch_vertex(invocation(2));
  for (std::size_t i = 0; i < 32; ++i) {
    Fragment f = dense_fragment(i);
    f.kind = FragmentKind::kComputation;
    f.from = k1;
    f.to = k2;
    batch.push_back(f);
  }
  const double* start = batch.start_data();
  stg.adopt_fragments(std::move(batch));
  EXPECT_EQ(stg.fragments().start_data(), start);  // no fragment was copied
  EXPECT_EQ(stg.fragments().size(), 32u);
  EXPECT_EQ(stg.edges().begin()->second.fragments.size(), 32u);
}

TEST(SoaColumns, CopyIsDeepAndIndependent) {
  FragmentColumns cols;
  for (std::size_t i = 0; i < 24; ++i) cols.push_back(dense_fragment(i));
  FragmentColumns copy(cols);
  ASSERT_EQ(copy.size(), cols.size());
  EXPECT_NE(copy.start_data(), cols.start_data());  // fresh arena
  for (std::size_t i = 0; i < cols.size(); ++i)
    expect_fragment_eq(cols.materialize(i), copy.materialize(i), i);

  // set() patches exactly one slot of the copy and nothing else.
  Fragment patched = dense_fragment(99);
  copy.set(5, patched);
  expect_fragment_eq(patched, copy.materialize(5), 5);
  expect_fragment_eq(dense_fragment(5), cols.materialize(5), 5);
  expect_fragment_eq(dense_fragment(6), copy.materialize(6), 6);
}

TEST(SoaColumns, ClearReusesWarmArena) {
  FragmentColumns cols;
  for (std::size_t i = 0; i < 128; ++i) cols.push_back(dense_fragment(i));
  const std::size_t reserved = cols.arena_bytes_reserved();
  const double* start = cols.start_data();

  for (int window = 0; window < 5; ++window) {
    cols.clear();
    EXPECT_EQ(cols.size(), 0u);
    EXPECT_EQ(cols.arena_bytes_reserved(), reserved);  // chunks kept
    for (std::size_t i = 0; i < 128; ++i) cols.push_back(dense_fragment(i));
    // A same-shaped window lands in the very same warm memory.
    EXPECT_EQ(cols.start_data(), start);
    EXPECT_EQ(cols.arena_bytes_reserved(), reserved);
  }
  for (std::size_t i = 0; i < 128; ++i)
    expect_fragment_eq(dense_fragment(i), cols.materialize(i), i);
}

TEST(SoaColumns, AppendSplicesAcrossArenas) {
  FragmentColumns head;
  FragmentColumns tail;
  for (std::size_t i = 0; i < 10; ++i) head.push_back(dense_fragment(i));
  for (std::size_t i = 10; i < 25; ++i) tail.push_back(dense_fragment(i));
  head.append(tail);
  ASSERT_EQ(head.size(), 25u);
  for (std::size_t i = 0; i < 25; ++i)
    expect_fragment_eq(dense_fragment(i), head.materialize(i), i);
  EXPECT_EQ(tail.size(), 15u);  // append reads, never steals
}

// --- degenerate window shapes ---

TEST(SoaColumns, EmptyWindow) {
  FragmentColumns cols;
  EXPECT_TRUE(cols.empty());
  EXPECT_EQ(cols.begin(), cols.end());
  FragmentColumns moved(std::move(cols));
  EXPECT_TRUE(moved.empty());
  Stg stg(StgMode::kContextFree);
  stg.adopt_fragments(std::move(moved));
  EXPECT_EQ(stg.fragments().size(), 0u);
  const ClusteringResult r = cluster_stg(stg, ClusterOptions{});
  EXPECT_TRUE(r.clusters.empty());
}

TEST(SoaColumns, SingleFragmentWindow) {
  Stg stg(StgMode::kContextFree);
  const StateKey k1 = stg.touch_vertex(invocation(1));
  const StateKey k2 = stg.touch_vertex(invocation(2));
  FragmentColumns cols;
  Fragment f = dense_fragment(0);
  f.kind = FragmentKind::kComputation;
  f.from = k1;
  f.to = k2;
  cols.push_back(f);
  stg.adopt_fragments(std::move(cols));
  const ClusteringResult r = cluster_stg(stg, ClusterOptions{});
  ASSERT_EQ(r.clusters.size(), 1u);
  EXPECT_TRUE(r.clusters[0].rare);  // 1 member < min_cluster_size
  EXPECT_EQ(r.clusters[0].members.size(), 1u);
}

TEST(SoaColumns, SixtyFourKiFragmentWindow) {
  constexpr std::size_t kN = 64 * 1024;
  FragmentColumns cols;
  cols.reserve(kN);
  for (std::size_t i = 0; i < kN; ++i) cols.push_back(dense_fragment(i));
  ASSERT_EQ(cols.size(), kN);
  // Spot-check the corners and a stride through the middle: a capacity
  // regrowth that lost or shifted a column would surface here.
  expect_fragment_eq(dense_fragment(0), cols.materialize(0), 0);
  expect_fragment_eq(dense_fragment(kN - 1), cols.materialize(kN - 1),
                     kN - 1);
  for (std::size_t i = 0; i < kN; i += 4097)
    expect_fragment_eq(dense_fragment(i), cols.materialize(i), i);
  // The columns really are dense: the arena holds at least the payload.
  EXPECT_GE(cols.arena_bytes_used(), kN * sizeof(double) * 2);
  FragmentColumns moved(std::move(cols));
  EXPECT_EQ(moved.size(), kN);
}

// --- clustering properties over the SoA layout ---

class SoaClustering : public ::testing::Test {
 protected:
  // Three norm-separated classes plus two far-out rare singletons, all
  // with DISTINCT tot_ins values (Algorithm 1 sorts by norm; unique keys
  // make the clustering a pure function of the fragment multiset).
  std::vector<Fragment> make_window(const StateKey k1, const StateKey k2) {
    std::vector<Fragment> frags;
    std::size_t n = 0;
    auto add_class = [&](double base, int count) {
      for (int i = 0; i < count; ++i) {
        Fragment f;
        f.kind = FragmentKind::kComputation;
        f.from = k1;
        f.to = k2;
        f.start_time = 0.01 * static_cast<double>(n);
        f.end_time = f.start_time + 0.005;
        // 0.1% spacing keeps the class inside the 5% threshold while
        // keeping every norm distinct.
        f.counters[pmu::Counter::kTotIns] =
            base * (1.0 + 0.001 * static_cast<double>(i));
        f.truth_class = static_cast<std::int64_t>(base);
        frags.push_back(f);
        ++n;
      }
    };
    add_class(1000.0, 8);
    add_class(2000.0, 6);
    add_class(4000.0, 7);
    add_class(9000.0, 1);   // rare
    add_class(16000.0, 1);  // rare
    return frags;
  }

  std::string cluster_window(const std::vector<Fragment>& frags) {
    Stg stg(StgMode::kContextFree);
    const StateKey k1 = stg.touch_vertex(invocation(1));
    const StateKey k2 = stg.touch_vertex(invocation(2));
    FragmentColumns cols;
    cols.reserve(frags.size());
    for (Fragment f : frags) {
      f.from = k1;  // keys depend on the Stg instance; rebind
      f.to = k2;
      cols.push_back(f);
    }
    stg.adopt_fragments(std::move(cols));
    const ClusteringResult r = cluster_stg(stg, ClusterOptions{});
    return cluster_fingerprint(stg, r);
  }
};

TEST_F(SoaClustering, PermutationOfFragmentOrderYieldsIdenticalClusters) {
  Stg probe(StgMode::kContextFree);
  const StateKey k1 = probe.touch_vertex(invocation(1));
  const StateKey k2 = probe.touch_vertex(invocation(2));
  std::vector<Fragment> frags = make_window(k1, k2);
  const std::string base = cluster_window(frags);
  EXPECT_NE(base.find("rare=1"), std::string::npos);
  EXPECT_NE(base.find("rare=0"), std::string::npos);

  util::Rng rng(20260808);
  for (int trial = 0; trial < 8; ++trial) {
    util::shuffle(frags, rng);
    EXPECT_EQ(cluster_window(frags), base) << "permutation trial " << trial;
  }
}

TEST_F(SoaClustering, ArenaResetWindowCycleYieldsIdenticalClusters) {
  Stg stg(StgMode::kContextFree);
  const StateKey k1 = stg.touch_vertex(invocation(1));
  const StateKey k2 = stg.touch_vertex(invocation(2));
  const std::vector<Fragment> frags = make_window(k1, k2);

  std::string first;
  std::size_t reserved_after_first = 0;
  // The steady-state loop: adopt → cluster → clear, over the same batch
  // builder, so the arenas ping-pong and stay warm.
  FragmentColumns batch;
  for (int window = 0; window < 4; ++window) {
    batch.clear();
    batch.reserve(frags.size());
    for (const Fragment& f : frags) batch.push_back(f);
    stg.adopt_fragments(std::move(batch));
    const ClusteringResult r = cluster_stg(stg, ClusterOptions{});
    const std::string fp = cluster_fingerprint(stg, r);
    if (window == 0) {
      first = fp;
      reserved_after_first = stg.fragments().arena_bytes_reserved();
      EXPECT_FALSE(first.empty());
    } else {
      EXPECT_EQ(fp, first) << "window " << window;
      // Warm reuse: after the first cycle no arena ever grows again.
      EXPECT_EQ(stg.fragments().arena_bytes_reserved(),
                reserved_after_first)
          << "window " << window;
    }
    stg.clear_fragments();
  }
}

}  // namespace
}  // namespace vapro::core
