// Direct AnalysisServer tests: knob behaviour that the end-to-end suites
// don't isolate — rare-report thresholds/limits, window bookkeeping,
// variance-threshold plumbing, and eval-pair recording rules.
#include <gtest/gtest.h>

#include "src/core/server.hpp"

namespace vapro::core {
namespace {

sim::InvocationInfo call_info(int rank, sim::CallSiteId site) {
  sim::InvocationInfo info;
  info.rank = rank;
  info.site = site;
  info.kind = sim::OpKind::kBarrier;
  return info;
}

Fragment comp(int rank, StateKey from, StateKey to, double start, double dur,
              double tot_ins, std::int64_t truth = -1) {
  Fragment f;
  f.kind = FragmentKind::kComputation;
  f.rank = rank;
  f.from = from;
  f.to = to;
  f.start_time = start;
  f.end_time = start + dur;
  f.counters[pmu::Counter::kTotIns] = tot_ins;
  f.truth_class = truth;
  return f;
}

// Builds a batch with one well-repeated cluster and one rare expensive
// fragment between distinct sites.
FragmentBatch standard_batch(StateKey* key_a, StateKey* key_b,
                             StateKey* key_c) {
  Stg probe(StgMode::kContextFree);  // only to compute keys consistently
  auto info_a = call_info(0, 1);
  auto info_b = call_info(0, 2);
  auto info_c = call_info(0, 3);
  *key_a = make_state_key(StgMode::kContextFree, info_a);
  *key_b = make_state_key(StgMode::kContextFree, info_b);
  *key_c = make_state_key(StgMode::kContextFree, info_c);
  FragmentBatch batch;
  batch.new_states = {info_a, info_b, info_c};
  for (int i = 0; i < 12; ++i)
    batch.fragments.push_back(
        comp(0, *key_a, *key_b, 0.1 * i, 0.01, 1e6, /*truth=*/1));
  // One rare, expensive path.
  batch.fragments.push_back(comp(0, *key_b, *key_c, 2.0, 0.5, 9e7, 2));
  return batch;
}

ServerOptions quiet_options() {
  ServerOptions opts;
  opts.run_diagnosis = false;
  return opts;
}

TEST(Server, ProcessesBatchesAndCounts) {
  StateKey a, b, c;
  AnalysisServer server(2, quiet_options());
  server.process_window(standard_batch(&a, &b, &c));
  EXPECT_EQ(server.windows_processed(), 1u);
  EXPECT_EQ(server.fragments_processed(), 13u);
  EXPECT_EQ(server.stg().vertex_count(), 3u);
  EXPECT_EQ(server.stg().edge_count(), 2u);
  // Fragments are dropped after analysis; the structure stays.
  EXPECT_TRUE(server.stg().fragments().empty());
}

TEST(Server, RareFindingRespectsMinSeconds) {
  StateKey a, b, c;
  ServerOptions opts = quiet_options();
  opts.rare_report_min_seconds = 0.1;
  AnalysisServer server(2, opts);
  server.process_window(standard_batch(&a, &b, &c));
  ASSERT_EQ(server.rare_findings().size(), 1u);
  EXPECT_EQ(server.rare_findings()[0].executions, 1u);
  EXPECT_NEAR(server.rare_findings()[0].total_seconds, 0.5, 1e-9);

  ServerOptions strict = quiet_options();
  strict.rare_report_min_seconds = 1.0;  // above the rare path's 0.5 s
  AnalysisServer server2(2, strict);
  server2.process_window(standard_batch(&a, &b, &c));
  EXPECT_TRUE(server2.rare_findings().empty());
}

TEST(Server, RareFindingListIsCapped) {
  ServerOptions opts = quiet_options();
  opts.rare_report_limit = 4;
  opts.rare_report_min_seconds = 0.0;
  AnalysisServer server(1, opts);
  FragmentBatch batch;
  // 20 distinct single-execution paths.
  StateKey prev = kStartState;
  for (sim::CallSiteId s = 1; s <= 21; ++s) {
    auto info = call_info(0, s);
    batch.new_states.push_back(info);
    StateKey key = make_state_key(StgMode::kContextFree, info);
    if (s > 1)
      batch.fragments.push_back(
          comp(0, prev, key, 0.1 * s, 0.05 * s, 1e5 * s));
    prev = key;
  }
  server.process_window(std::move(batch));
  EXPECT_LE(server.rare_findings().size(), 4u);
  // Kept findings are the most expensive ones, sorted descending.
  const auto& findings = server.rare_findings();
  for (std::size_t i = 1; i < findings.size(); ++i)
    EXPECT_GE(findings[i - 1].total_seconds, findings[i].total_seconds);
}

TEST(Server, VarianceThresholdGatesRegions) {
  // One slow fragment at 0.5 perf: detected at 0.85, not at 0.3.
  auto regions_with = [&](double threshold) {
    StateKey a, b, c;
    ServerOptions opts = quiet_options();
    opts.variance_threshold = threshold;
    opts.bin_seconds = 0.05;
    AnalysisServer server(2, opts);
    FragmentBatch batch = standard_batch(&a, &b, &c);
    batch.fragments.push_back(comp(0, a, b, 1.5, 0.02, 1e6, 1));  // 2x slow
    server.process_window(std::move(batch));
    return server.locate(FragmentKind::kComputation).size();
  };
  EXPECT_GE(regions_with(0.85), 1u);
  EXPECT_EQ(regions_with(0.3), 0u);
}

TEST(Server, EvalPairsOnlyForLabelledFragments) {
  StateKey a, b, c;
  ServerOptions opts = quiet_options();
  opts.record_eval_pairs = true;
  AnalysisServer server(2, opts);
  FragmentBatch batch = standard_batch(&a, &b, &c);
  // Add unlabelled fragments — they must not enter the score.
  for (int i = 0; i < 6; ++i)
    batch.fragments.push_back(comp(1, a, b, 0.1 * i, 0.01, 1e6, /*truth=*/-1));
  server.process_window(std::move(batch));
  auto v = server.clustering_quality();
  // All labelled fragments of class 1 land in one pure cluster (+ the
  // rare class-2 one) → perfect scores.
  EXPECT_DOUBLE_EQ(v.homogeneity, 1.0);
  EXPECT_DOUBLE_EQ(v.completeness, 1.0);
}

TEST(Server, CountersNeededStartAtStageOne) {
  AnalysisServer server(2, ServerOptions{});
  auto counters = server.counters_needed();
  EXPECT_FALSE(counters.empty());
  EXPECT_LE(counters.size(), 4u);
}

}  // namespace
}  // namespace vapro::core
