// Tests for src/net — the resilient multi-tenant ingest plane.
//
//   * Wire codec — CRC-32 known answer, frame/payload round-trips that are
//     BIT-identical for doubles, and header validation for every desync
//     class (bad magic, version, type, flags, oversized payload).
//   * TenantSession — the three admission gates driven manually
//     (threaded=false): dedup, bounded reorder buffer, shed-oldest with
//     journaled accounting and the degraded flag.
//   * Loopback end-to-end — socket-fed analysis is byte-identical to
//     feeding the same batches in process.
//   * /readyz — readiness flips to 503 on the degraded gauge, on admission
//     saturation, and reports the probe fields.
//   * Fault sites (VAPRO_FAULT_INJECTION builds) — net.frame_torn,
//     net.conn_reset, net.dup_batch, net.reorder, net.slow_peer each hit
//     their resilience mechanism with exact fragment accounting.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/core/report.hpp"
#include "src/core/server.hpp"
#include "src/net/client.hpp"
#include "src/net/server.hpp"
#include "src/net/session.hpp"
#include "src/net/wire.hpp"
#include "src/obs/context.hpp"
#include "src/obs/exposition.hpp"
#include "src/obs/journal.hpp"
#include "src/testing/fault.hpp"
#include "src/util/clock.hpp"

namespace vapro {
namespace {

// --- helpers ---------------------------------------------------------------

// A small deterministic batch whose fragments differ per (salt, index), so
// distinct batches are distinguishable through fragment accounting and the
// region tables.
core::FragmentBatch make_batch(int ranks, int fragments_per_rank,
                               std::uint64_t salt) {
  core::FragmentBatch batch;
  for (int r = 0; r < ranks; ++r) {
    for (int i = 0; i < fragments_per_rank; ++i) {
      core::Fragment f;
      f.kind = core::FragmentKind::kComputation;
      f.rank = r;
      f.from = 1;
      f.to = 2;
      const double base = static_cast<double>(salt) * 0.25 +
                          static_cast<double>(i) * 0.01;
      f.start_time = base;
      f.end_time = base + 0.004 + 1e-4 * static_cast<double>(r % 3);
      f.counters[pmu::Counter::kTotIns] =
          1e6 + 1e3 * static_cast<double>((salt * 17 + i * 3) % 11);
      batch.fragments.push_back(f);
    }
  }
  return batch;
}

std::size_t batch_fragments(const core::FragmentBatch& b) {
  return b.fragments.size();
}

core::ServerOptions test_server_options(obs::ObsContext* ctx = nullptr,
                                        util::Clock* clock = nullptr) {
  core::ServerOptions opts;
  opts.bin_seconds = 0.05;
  opts.cluster.min_cluster_size = 3;
  opts.run_diagnosis = false;  // diagnosis needs the simulator's noise model
  opts.obs = ctx;
  opts.clock = clock;
  return opts;
}

// Region tables for all three fragment kinds — the strongest cheap
// fingerprint of an analysis server's detection state.
std::string detection_fingerprint(core::AnalysisServer& server) {
  std::string out;
  for (core::FragmentKind kind :
       {core::FragmentKind::kComputation, core::FragmentKind::kCommunication,
        core::FragmentKind::kIo}) {
    out += core::render_region_table(server.locate(kind), 0.05);
    out += '\n';
  }
  return out;
}

// Minimal raw-socket HTTP GET (the exposition suite's idiom) for /readyz.
struct HttpReply {
  bool ok = false;
  int status = 0;
  std::string body;
};

HttpReply http_get(int port, const std::string& path) {
  HttpReply reply;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return reply;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return reply;
  }
  const std::string request = "GET " + path +
                              " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                              "Connection: close\r\n\r\n";
  for (std::size_t off = 0; off < request.size();) {
    const ssize_t n = ::send(fd, request.data() + off, request.size() - off, 0);
    if (n <= 0) {
      ::close(fd);
      return reply;
    }
    off += static_cast<std::size_t>(n);
  }
  std::string raw;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t eol = raw.find("\r\n");
  if (eol == std::string::npos || raw.compare(0, 9, "HTTP/1.1 ") != 0) {
    return reply;
  }
  reply.status = std::atoi(raw.c_str() + 9);
  const std::size_t split = raw.find("\r\n\r\n");
  if (split == std::string::npos) return reply;
  reply.body = raw.substr(split + 4);
  reply.ok = true;
  return reply;
}

// Journal events of one type from a file, via the real reader.
std::vector<obs::JournalEvent> journal_events(const std::string& path,
                                              const std::string& type) {
  obs::JournalReadOptions ropts;
  const obs::JournalReadResult read = obs::read_journal(path, ropts);
  EXPECT_TRUE(read.ok) << read.error;
  std::vector<obs::JournalEvent> out;
  for (const obs::JournalEvent& ev : read.events)
    if (ev.type == type) out.push_back(ev);
  return out;
}

std::string scratch_path(const std::string& leaf) {
  const char* dir = std::getenv("TEST_TMPDIR");
  return std::string(dir ? dir : "/tmp") + "/" + leaf;
}

// --- wire codec ------------------------------------------------------------

TEST(Wire, Crc32KnownAnswer) {
  // The classic IEEE 802.3 check value.
  const char* msg = "123456789";
  EXPECT_EQ(net::crc32(msg, 9), 0xCBF43926u);
  EXPECT_EQ(net::crc32(msg, 0), 0u);
}

TEST(Wire, FrameHeaderRoundTrip) {
  const std::string payload = "hello payload";
  const std::string frame =
      net::encode_frame(net::FrameType::kBatch, /*seq=*/0x0123456789abcdefULL,
                        payload);
  ASSERT_EQ(frame.size(), net::kFrameHeaderBytes + payload.size());
  net::FrameHeader header;
  std::string error;
  ASSERT_TRUE(net::decode_header(
      reinterpret_cast<const std::uint8_t*>(frame.data()), &header, &error))
      << error;
  EXPECT_EQ(header.magic, net::kWireMagic);
  EXPECT_EQ(header.version, net::kWireVersion);
  EXPECT_EQ(header.type, net::FrameType::kBatch);
  EXPECT_EQ(header.flags, 0);
  EXPECT_EQ(header.seq, 0x0123456789abcdefULL);
  EXPECT_EQ(header.payload_len, payload.size());
  EXPECT_EQ(header.payload_crc,
            net::crc32(payload.data(), payload.size()));
}

TEST(Wire, HeaderValidationRejectsEveryDesyncClass) {
  const std::string good = net::encode_frame(net::FrameType::kAck, 7, "x");
  auto reject = [&good](std::size_t offset, std::uint8_t value) {
    std::string bad = good;
    bad[offset] = static_cast<char>(value);
    net::FrameHeader header;
    std::string error;
    const bool ok = net::decode_header(
        reinterpret_cast<const std::uint8_t*>(bad.data()), &header, &error);
    EXPECT_FALSE(ok);
    EXPECT_FALSE(error.empty());
  };
  reject(0, 0xFF);   // magic
  reject(4, 0xEE);   // version
  reject(6, 0x00);   // type 0 is not a FrameType
  reject(6, 0x99);   // type out of range
  reject(7, 0x01);   // reserved flags must be zero
  reject(19, 0xFF);  // payload_len top byte: > kMaxPayloadBytes
}

TEST(Wire, BatchPayloadRoundTripIsBitIdentical) {
  core::FragmentBatch batch = make_batch(/*ranks=*/3, /*fragments_per_rank=*/4,
                                         /*salt=*/9);
  // Values chosen to break any codec that goes through text or loses
  // precision: non-representable decimals, denormal-adjacent, negatives.
  {
    core::Fragment f0 = batch.fragments.materialize(0);
    f0.start_time = 0.1;
    f0.end_time = 0.1 + 1.0 / 3.0;
    batch.fragments.set(0, f0);
    core::Fragment f1 = batch.fragments.materialize(1);
    f1.counters[pmu::Counter::kTotIns] = 1e-300;
    batch.fragments.set(1, f1);
    core::Fragment f2 = batch.fragments.materialize(2);
    f2.counters[pmu::Counter::kStallsDram] = -0.0;
    batch.fragments.set(2, f2);
  }
  sim::InvocationInfo info;
  info.rank = 2;
  info.site = 41;
  info.kind = sim::OpKind::kAllreduce;
  info.path = {1, 2, 7};
  batch.new_states.push_back(info);

  const double drain_in = 0.625;
  const std::string payload = net::encode_batch(batch, drain_in);
  core::FragmentBatch decoded;
  double drain_out = 0.0;
  std::string error;
  ASSERT_TRUE(net::decode_batch(payload, &decoded, &drain_out, &error))
      << error;

  EXPECT_EQ(drain_out, drain_in);
  ASSERT_EQ(decoded.fragments.size(), batch.fragments.size());
  ASSERT_EQ(decoded.new_states.size(), batch.new_states.size());
  for (std::size_t i = 0; i < batch.fragments.size(); ++i) {
    const core::Fragment a = batch.fragments.materialize(i);
    const core::Fragment b = decoded.fragments.materialize(i);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.rank, b.rank);
    EXPECT_EQ(a.from, b.from);
    EXPECT_EQ(a.to, b.to);
    // Bit identity, not numeric equality: -0.0 and NaN payloads must also
    // survive, which == cannot attest.
    EXPECT_EQ(0, std::memcmp(&a.start_time, &b.start_time, sizeof(double)));
    EXPECT_EQ(0, std::memcmp(&a.end_time, &b.end_time, sizeof(double)));
    EXPECT_EQ(0, std::memcmp(&a.counters.values, &b.counters.values,
                             sizeof(a.counters.values)));
  }
  EXPECT_EQ(decoded.new_states[0].rank, info.rank);
  EXPECT_EQ(decoded.new_states[0].site, info.site);
  EXPECT_EQ(decoded.new_states[0].kind, info.kind);
  EXPECT_EQ(decoded.new_states[0].path, info.path);
}

TEST(Wire, HelloAndAckRoundTrip) {
  net::HelloPayload hello;
  hello.tenant = "tenant-α";  // names are bytes, not ASCII
  hello.ranks = 48;
  net::HelloPayload decoded;
  std::string error;
  ASSERT_TRUE(net::decode_hello(net::encode_hello(hello), &decoded, &error))
      << error;
  EXPECT_EQ(decoded.wire_version, net::kWireVersion);
  EXPECT_EQ(decoded.tenant, hello.tenant);
  EXPECT_EQ(decoded.ranks, 48u);
  // Truncated hello is an error, not a partial parse.
  EXPECT_FALSE(net::decode_hello("", &decoded, &error));

  net::AckStatus status = net::AckStatus::kAdmitted;
  ASSERT_TRUE(net::decode_ack(net::encode_ack(net::AckStatus::kShed), &status,
                              &error))
      << error;
  EXPECT_EQ(status, net::AckStatus::kShed);
  EXPECT_FALSE(net::decode_ack("", &status, &error));
}

TEST(Wire, CorruptedBatchPayloadFailsDecode) {
  const core::FragmentBatch batch = make_batch(2, 3, 1);
  std::string payload = net::encode_batch(batch, 0.0);
  payload.resize(payload.size() / 2);  // truncation must not read past end
  core::FragmentBatch decoded;
  double drain = 0.0;
  std::string error;
  EXPECT_FALSE(net::decode_batch(payload, &decoded, &drain, &error));
  EXPECT_FALSE(error.empty());
}

// --- TenantSession admission gates (manual pump) ---------------------------

net::TenantOptions manual_tenant(const std::string& name, int ranks,
                                 obs::ObsContext* ctx) {
  net::TenantOptions topts;
  topts.name = name;
  topts.ranks = ranks;
  topts.server = test_server_options(ctx);
  topts.threaded = false;  // tests drive pump_all() deterministically
  return topts;
}

TEST(TenantSession, DuplicateSeqIsDedupedNotDoubleCounted) {
  net::IngestPlane plane(net::PlaneOptions{});
  net::TenantSession* t =
      plane.add_tenant(manual_tenant("a", /*ranks=*/2, nullptr));
  const core::FragmentBatch batch = make_batch(2, 4, 0);

  EXPECT_EQ(t->submit(0, core::FragmentBatch(batch), 0.0),
            net::AckStatus::kAdmitted);
  // A retransmit of an already-applied seq and of a still-queued seq both
  // dedup.
  EXPECT_EQ(t->submit(0, core::FragmentBatch(batch), 0.0),
            net::AckStatus::kDuplicate);
  t->sync();
  EXPECT_EQ(t->submit(0, core::FragmentBatch(batch), 0.0),
            net::AckStatus::kDuplicate);

  const net::TenantStats stats = t->stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(stats.duplicates, 2u);
  EXPECT_EQ(t->windows_processed(), 1u);
  EXPECT_EQ(t->fragments_processed(), batch_fragments(batch));
}

TEST(TenantSession, ReorderBufferRestoresSeqOrderBeforeApplication) {
  net::IngestPlane plane(net::PlaneOptions{});
  net::TenantSession* t = plane.add_tenant(manual_tenant("a", 2, nullptr));

  // seq 1 and 2 arrive before seq 0: buffered, not applied.
  EXPECT_EQ(t->submit(1, make_batch(2, 3, 1), 0.0),
            net::AckStatus::kAdmitted);
  EXPECT_EQ(t->submit(2, make_batch(2, 3, 2), 0.0),
            net::AckStatus::kAdmitted);
  t->sync();
  EXPECT_EQ(t->windows_processed(), 0u) << "applied ahead of the gap";

  // The gap fills: all three apply, in seq order.
  EXPECT_EQ(t->submit(0, make_batch(2, 3, 0), 0.0),
            net::AckStatus::kAdmitted);
  t->sync();
  EXPECT_EQ(t->windows_processed(), 3u);

  const net::TenantStats stats = t->stats();
  EXPECT_EQ(stats.reordered, 2u);
  EXPECT_EQ(stats.admitted, 3u);
  EXPECT_EQ(stats.duplicates, 0u);
}

TEST(TenantSession, SeqBeyondReorderWindowIsRejectedAndJournaled) {
  const std::string journal = scratch_path("net_reject_journal.jsonl");
  util::VirtualClock vclock;
  obs::ObsContext ctx;
  ctx.set_clock(&vclock);
  ASSERT_TRUE(ctx.attach_journal_file(journal));

  net::IngestPlane plane(net::PlaneOptions{});
  net::TenantOptions topts = manual_tenant("a", 2, &ctx);
  topts.reorder_window = 4;
  net::TenantSession* t = plane.add_tenant(std::move(topts));

  const core::FragmentBatch far_batch = make_batch(2, 3, 10);
  EXPECT_EQ(t->submit(10, core::FragmentBatch(far_batch), 0.0),
            net::AckStatus::kRejected);
  ctx.journal()->flush();

  const net::TenantStats stats = t->stats();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.admitted, 0u);

  const auto drops = journal_events(journal, "net_drop");
  ASSERT_EQ(drops.size(), 1u);
  EXPECT_EQ(drops[0].number("batch_seq", -1), 10.0);
  EXPECT_EQ(drops[0].number("fragments", -1),
            static_cast<double>(batch_fragments(far_batch)));
}

TEST(TenantSession, ShedOldestEvictsJournalsAndFlipsDegraded) {
  const std::string journal = scratch_path("net_shed_journal.jsonl");
  util::VirtualClock vclock;
  obs::ObsContext ctx;
  ctx.set_clock(&vclock);
  ASSERT_TRUE(ctx.attach_journal_file(journal));

  net::PlaneOptions popts;
  popts.obs = &ctx;
  popts.clock = &vclock;
  net::IngestPlane plane(popts);
  net::TenantOptions topts = manual_tenant("a", 2, &ctx);
  topts.queue_capacity = 2;
  topts.admission = net::AdmissionPolicy::kShedOldest;
  net::TenantSession* t = plane.add_tenant(std::move(topts));

  // Four admits into a 2-deep queue with no consumer: seqs 0 and 1 are
  // evicted to make room for 2 and 3.
  std::vector<core::FragmentBatch> batches;
  for (std::uint64_t s = 0; s < 4; ++s) batches.push_back(make_batch(2, 3, s));
  std::size_t shed_fragments = 0;
  std::size_t sent_fragments = 0;
  for (std::uint64_t s = 0; s < 4; ++s) {
    sent_fragments += batch_fragments(batches[s]);
    EXPECT_EQ(t->submit(s, core::FragmentBatch(batches[s]), 0.0),
              net::AckStatus::kAdmitted);
  }
  EXPECT_TRUE(t->degraded());
  EXPECT_TRUE(plane.degraded());

  t->sync();  // drains the two survivors
  EXPECT_FALSE(t->degraded()) << "degraded must clear once the queue drains";
  EXPECT_FALSE(plane.degraded());
  ctx.journal()->flush();

  const net::TenantStats stats = t->stats();
  EXPECT_EQ(stats.admitted, 4u);
  EXPECT_EQ(stats.shed, 2u);
  EXPECT_EQ(plane.shed_total(), 2u);
  EXPECT_EQ(t->windows_processed(), 2u);

  // Every shed batch is accounted in the journal, fragment by fragment.
  const auto sheds = journal_events(journal, "shed");
  ASSERT_EQ(sheds.size(), 2u);
  EXPECT_EQ(sheds[0].number("batch_seq", -1), 0.0);
  EXPECT_EQ(sheds[1].number("batch_seq", -1), 1.0);
  for (const obs::JournalEvent& ev : sheds) {
    EXPECT_EQ(ev.str("policy"), "oldest");
    shed_fragments +=
        static_cast<std::size_t>(ev.number("fragments", 0));
  }
  EXPECT_EQ(t->fragments_processed() + shed_fragments, sent_fragments);

  // The plane-level metrics saw the sheds and the degraded transition.
  EXPECT_EQ(ctx.metrics().counter("vapro.net.batches_shed")->value(), 2u);
}

// --- loopback end-to-end ---------------------------------------------------

TEST(IngestLoopback, SocketFeedMatchesDirectFeedByteForByte) {
  const int ranks = 4;
  const int windows = 6;
  std::vector<core::FragmentBatch> batches;
  for (int w = 0; w < windows; ++w)
    batches.push_back(make_batch(ranks, 8, static_cast<std::uint64_t>(w)));

  // Direct: the same batches straight into an AnalysisServer.
  core::AnalysisServer direct(ranks, test_server_options());
  for (const core::FragmentBatch& b : batches)
    direct.process_window(core::FragmentBatch(b), /*drain_seconds=*/0.0);
  direct.sync();

  // Socket: plane + ingest server + client over loopback.
  net::IngestPlane plane(net::PlaneOptions{});
  net::TenantOptions topts;
  topts.name = "t0";
  topts.ranks = ranks;
  topts.server = test_server_options();
  net::TenantSession* tenant = plane.add_tenant(std::move(topts));
  net::IngestServer server(&plane);
  std::string error;
  ASSERT_TRUE(server.start(0, &error)) << error;

  net::ClientOptions copts;
  copts.port = server.port();
  copts.tenant = "t0";
  copts.ranks = ranks;
  copts.sleep_fn = [](double) {};
  net::IngestClient client(copts);
  ASSERT_TRUE(client.connect(&error)) << error;
  for (const core::FragmentBatch& b : batches)
    ASSERT_TRUE(client.send_batch(b, /*drain_seconds=*/0.0, &error)) << error;
  ASSERT_TRUE(client.flush(&error)) << error;
  tenant->sync();

  EXPECT_EQ(client.stats().batches_sent, static_cast<std::uint64_t>(windows));
  EXPECT_EQ(client.stats().acks_admitted,
            static_cast<std::uint64_t>(windows));
  EXPECT_EQ(server.batches_received(), static_cast<std::uint64_t>(windows));
  EXPECT_EQ(tenant->windows_processed(), static_cast<std::size_t>(windows));
  EXPECT_EQ(detection_fingerprint(*tenant->server()),
            detection_fingerprint(direct));

  client.close();
  server.stop();
}

TEST(IngestLoopback, UnknownTenantIsRejectedAtHello) {
  net::IngestPlane plane(net::PlaneOptions{});
  net::TenantOptions topts;
  topts.name = "known";
  topts.ranks = 1;
  topts.server = test_server_options();
  plane.add_tenant(std::move(topts));
  net::IngestServer server(&plane);
  std::string error;
  ASSERT_TRUE(server.start(0, &error)) << error;

  net::ClientOptions copts;
  copts.port = server.port();
  copts.tenant = "imposter";
  copts.ranks = 1;
  copts.sleep_fn = [](double) {};
  net::IngestClient client(copts);
  EXPECT_FALSE(client.connect(&error));
  EXPECT_FALSE(error.empty());
  server.stop();
}

// --- /readyz ---------------------------------------------------------------

TEST(Readyz, ReportsReadyThenFlipsTo503WhenDegraded) {
  obs::ObsContext ctx;
  ASSERT_NE(ctx.start_exposition(0), nullptr);
  const int port = ctx.exposition()->port();

  // No ingest plane, journal healthy: ready.
  HttpReply ready = http_get(port, "/readyz");
  ASSERT_TRUE(ready.ok);
  EXPECT_EQ(ready.status, 200);
  EXPECT_NE(ready.body.find("\"status\":\"ready\""), std::string::npos);
  EXPECT_NE(ready.body.find("\"degraded\":false"), std::string::npos);
  EXPECT_NE(ready.body.find("\"journal_writable\":true"), std::string::npos);

  // The ingest plane starts shedding: a load balancer must see 503 while
  // /healthz (liveness) stays 200 — detection is still running.
  ctx.metrics().gauge("vapro.net.degraded")->set(1.0);
  HttpReply shedding = http_get(port, "/readyz");
  ASSERT_TRUE(shedding.ok);
  EXPECT_EQ(shedding.status, 503);
  EXPECT_NE(shedding.body.find("\"status\":\"not_ready\""),
            std::string::npos);
  EXPECT_NE(shedding.body.find("\"degraded\":true"), std::string::npos);
  HttpReply live = http_get(port, "/healthz");
  ASSERT_TRUE(live.ok);
  EXPECT_EQ(live.status, 200);

  // Recovery: the gauge clears and readiness returns.
  ctx.metrics().gauge("vapro.net.degraded")->set(0.0);
  HttpReply again = http_get(port, "/readyz");
  ASSERT_TRUE(again.ok);
  EXPECT_EQ(again.status, 200);
}

TEST(Readyz, AdmissionSaturationIs503) {
  obs::ObsContext ctx;
  ASSERT_NE(ctx.start_exposition(0), nullptr);
  const int port = ctx.exposition()->port();
  ctx.metrics().gauge("vapro.net.queue_capacity")->set(8.0);
  ctx.metrics().gauge("vapro.net.queue_depth")->set(8.0);
  HttpReply saturated = http_get(port, "/readyz");
  ASSERT_TRUE(saturated.ok);
  EXPECT_EQ(saturated.status, 503);
  EXPECT_NE(saturated.body.find("\"admission_saturated\":true"),
            std::string::npos);
  ctx.metrics().gauge("vapro.net.queue_depth")->set(3.0);
  HttpReply ok = http_get(port, "/readyz");
  ASSERT_TRUE(ok.ok);
  EXPECT_EQ(ok.status, 200);
}

// --- fault sites -----------------------------------------------------------

#if defined(VAPRO_FAULT_INJECTION) && VAPRO_FAULT_INJECTION

testing::FaultPlan net_plan(const std::string& text) {
  testing::FaultPlan plan;
  std::string error;
  EXPECT_TRUE(testing::FaultPlan::parse(text, &plan, &error)) << error;
  return plan;
}

// One loopback rig per fault test: plane + tenant + server + client, with
// the journal captured so shed accounting can be asserted.
struct LoopbackRig {
  util::VirtualClock vclock;
  obs::ObsContext ctx;
  std::string journal_path;
  net::IngestPlane plane;
  net::TenantSession* tenant = nullptr;
  net::IngestServer server;
  std::unique_ptr<net::IngestClient> client;

  explicit LoopbackRig(const std::string& journal_leaf, int ranks = 2)
      : plane([this] {
          net::PlaneOptions p;
          p.obs = &ctx;
          p.clock = &vclock;
          return p;
        }()),
        server(&plane) {
    ctx.set_clock(&vclock);
    journal_path = scratch_path(journal_leaf);
    EXPECT_TRUE(ctx.attach_journal_file(journal_path));
    net::TenantOptions topts;
    topts.name = "t0";
    topts.ranks = ranks;
    topts.server = test_server_options(&ctx, &vclock);
    topts.admission = net::AdmissionPolicy::kShedOldest;
    tenant = plane.add_tenant(std::move(topts));
    std::string error;
    EXPECT_TRUE(server.start(0, &error)) << error;
    net::ClientOptions copts;
    copts.port = server.port();
    copts.tenant = "t0";
    copts.ranks = static_cast<std::uint32_t>(ranks);
    copts.sleep_fn = [](double) {};  // retries never really sleep
    client = std::make_unique<net::IngestClient>(copts);
    EXPECT_TRUE(client->connect(&error)) << error;
  }
};

TEST(NetFault, TornFrameIsNackedAndRetransmitted) {
  LoopbackRig rig("net_fault_torn.jsonl");
  testing::FaultScope scope(net_plan("seed 1\nnet.frame_torn on=1 fail\n"));
  const core::FragmentBatch batch = make_batch(2, 4, 0);
  std::string error;
  ASSERT_TRUE(rig.client->send_batch(batch, 0.0, &error)) << error;
  rig.tenant->sync();

  EXPECT_EQ(rig.server.frames_torn(), 1u);
  EXPECT_GE(rig.client->stats().retries, 1u);
  EXPECT_EQ(rig.client->stats().acks_admitted, 1u);
  // Exactly once applied despite the retransmit.
  EXPECT_EQ(rig.tenant->windows_processed(), 1u);
  EXPECT_EQ(rig.tenant->fragments_processed(), batch_fragments(batch));
}

TEST(NetFault, ConnResetAfterAdmissionDedupsOnReconnect) {
  LoopbackRig rig("net_fault_reset.jsonl");
  testing::FaultScope scope(net_plan("seed 1\nnet.conn_reset on=1 close\n"));
  const core::FragmentBatch batch = make_batch(2, 4, 0);
  std::string error;
  // The batch is admitted, then the connection dies before the ack: the
  // client reconnects and retransmits, and the session dedups.
  ASSERT_TRUE(rig.client->send_batch(batch, 0.0, &error)) << error;
  rig.tenant->sync();

  EXPECT_GE(rig.client->stats().reconnects, 1u);
  EXPECT_EQ(rig.server.conn_resets(), 1u);
  const net::TenantStats stats = rig.tenant->stats();
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(stats.duplicates, 1u) << "retransmit must dedup, not re-admit";
  EXPECT_EQ(rig.tenant->fragments_processed(), batch_fragments(batch));
}

TEST(NetFault, DuplicateSendIsDedupedByTheSession) {
  LoopbackRig rig("net_fault_dup.jsonl");
  testing::FaultScope scope(net_plan("seed 1\nnet.dup_batch on=1 fail\n"));
  const core::FragmentBatch batch = make_batch(2, 4, 0);
  std::string error;
  ASSERT_TRUE(rig.client->send_batch(batch, 0.0, &error)) << error;
  ASSERT_TRUE(rig.client->flush(&error)) << error;
  rig.tenant->sync();

  EXPECT_EQ(rig.client->stats().dup_batches_sent, 1u);
  const net::TenantStats stats = rig.tenant->stats();
  EXPECT_EQ(stats.duplicates, 1u);
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(rig.tenant->fragments_processed(), batch_fragments(batch));
}

TEST(NetFault, ReorderedSendIsHealedByTheReorderBuffer) {
  LoopbackRig rig("net_fault_reorder.jsonl");
  testing::FaultScope scope(net_plan("seed 1\nnet.reorder on=1 fail\n"));
  std::string error;
  // Frame 0 is held back and delivered after frame 1.
  ASSERT_TRUE(rig.client->send_batch(make_batch(2, 4, 0), 0.0, &error))
      << error;
  ASSERT_TRUE(rig.client->send_batch(make_batch(2, 4, 1), 0.0, &error))
      << error;
  ASSERT_TRUE(rig.client->flush(&error)) << error;
  rig.tenant->sync();

  EXPECT_EQ(rig.client->stats().reordered_sends, 1u);
  const net::TenantStats stats = rig.tenant->stats();
  EXPECT_EQ(stats.reordered, 1u);
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(rig.tenant->windows_processed(), 2u);
}

TEST(NetFault, SlowPeerShedsWithJournaledAccounting) {
  LoopbackRig rig("net_fault_slow.jsonl");
  testing::FaultScope scope(net_plan("seed 1\nnet.slow_peer on=1 fail\n"));
  const core::FragmentBatch shed_batch = make_batch(2, 4, 0);
  const core::FragmentBatch kept_batch = make_batch(2, 4, 1);
  std::string error;
  // Batch 0 is shed at admission; batch 1 sails through.
  ASSERT_TRUE(rig.client->send_batch(shed_batch, 0.0, &error)) << error;
  ASSERT_TRUE(rig.client->send_batch(kept_batch, 0.0, &error)) << error;
  rig.tenant->sync();
  rig.ctx.journal()->flush();

  EXPECT_EQ(rig.client->stats().acks_shed, 1u);
  const net::TenantStats stats = rig.tenant->stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.admitted, 1u);
  // Detection kept running on what was admitted; the shed fragments are
  // accounted in the journal, not silently lost.
  EXPECT_EQ(rig.tenant->windows_processed(), 1u);
  EXPECT_EQ(rig.tenant->fragments_processed(), batch_fragments(kept_batch));
  const auto sheds = journal_events(rig.journal_path, "shed");
  ASSERT_EQ(sheds.size(), 1u);
  EXPECT_EQ(sheds[0].number("batch_seq", -1), 0.0);
  EXPECT_EQ(sheds[0].number("fragments", -1),
            static_cast<double>(batch_fragments(shed_batch)));
  EXPECT_EQ(sheds[0].str("policy"), "forced");
  EXPECT_FALSE(rig.tenant->degraded())
      << "degraded clears once the queue drains";
}

#endif  // VAPRO_FAULT_INJECTION

}  // namespace
}  // namespace vapro
