// Tests for the multi-server aggregation layer (§5): sharding, concurrent
// leaf analysis, and root-side merging of heat maps / coverage / findings.
#include <gtest/gtest.h>

#include <cmath>

#include "src/apps/npb.hpp"
#include "src/apps/solvers.hpp"
#include "src/core/client.hpp"
#include "src/core/server_group.hpp"
#include "src/sim/runtime.hpp"

namespace vapro::core {
namespace {

// Drives a simulation into a ServerGroup via a VaproClient, mirroring what
// VaproSession does for a single server.
struct GroupHarness {
  VaproClient client;
  ServerGroup group;

  GroupHarness(sim::Simulator& simulator, int servers,
               ServerOptions opts = {})
      : client(simulator.config().ranks, ClientOptions{}),
        group(simulator.config().ranks, servers, opts) {
    client.configure_counters(group.counters_needed());
    simulator.set_interceptor(&client);
    simulator.add_periodic(0.1, [this](double) {
      group.process_window(client.drain());
      client.configure_counters(group.counters_needed());
    });
  }
};

sim::SimConfig noisy_config() {
  sim::SimConfig cfg;
  cfg.ranks = 32;
  cfg.cores_per_node = 8;
  cfg.seed = 77;
  sim::NoiseSpec dimm;
  dimm.kind = sim::NoiseKind::kSlowDram;
  dimm.node = 2;  // ranks 16-23
  dimm.magnitude = 3.0;
  cfg.noises.push_back(dimm);
  return cfg;
}

TEST(ServerGroup, ShardsProcessEveryFragment) {
  sim::Simulator simulator(noisy_config());
  GroupHarness harness(simulator, 4);
  apps::NpbParams p;
  p.iters = 30;
  simulator.run(apps::cg(p));
  EXPECT_GT(harness.group.fragments_processed(), 500u);
  EXPECT_EQ(harness.group.servers(), 4);
  // Every leaf got some work (ranks are block-cyclic over shards).
  for (int s = 0; s < 4; ++s)
    EXPECT_GT(harness.group.leaf(s).fragments_processed(), 50u);
}

TEST(ServerGroup, MergedMapDetectsTheSameRegion) {
  // Run the same program through 1 server and through 4 shards; the merged
  // detection must localize the same ranks.
  auto locate_with = [&](int servers) {
    sim::Simulator simulator(noisy_config());
    GroupHarness harness(simulator, servers);
    apps::NekboneParams p;
    p.iters = 150;
    simulator.run(apps::nekbone(p));
    return harness.group.locate(FragmentKind::kComputation);
  };
  auto single = locate_with(1);
  auto sharded = locate_with(4);
  ASSERT_FALSE(single.empty());
  ASSERT_FALSE(sharded.empty());
  EXPECT_EQ(single.front().rank_lo, sharded.front().rank_lo);
  EXPECT_EQ(single.front().rank_hi, sharded.front().rank_hi);
  EXPECT_NEAR(single.front().mean_perf, sharded.front().mean_perf, 0.05);
}

TEST(ServerGroup, CoverageAggregatesAcrossLeaves) {
  sim::Simulator simulator(noisy_config());
  GroupHarness harness(simulator, 4);
  apps::NpbParams p;
  p.iters = 30;
  auto result = simulator.run(apps::cg(p));
  double total = 0;
  for (double t : result.finish_times) total += t;
  auto cov = harness.group.merged_coverage();
  EXPECT_GT(cov.coverage(total), 0.3);
  // Merged coverage equals the sum of leaf coverages.
  double leaf_sum = 0;
  for (int s = 0; s < 4; ++s)
    leaf_sum += harness.group.leaf(s).coverage().covered_total();
  EXPECT_NEAR(cov.covered_total(), leaf_sum, 1e-9);
}

TEST(ServerGroup, DiagnosisCulpritsSurfaceAtRoot) {
  sim::Simulator simulator(noisy_config());
  GroupHarness harness(simulator, 2);
  apps::NekboneParams p;
  p.iters = 250;
  simulator.run(apps::nekbone(p));
  auto culprits = harness.group.merged_culprits();
  ASSERT_FALSE(culprits.empty());
  EXPECT_EQ(culprits.front(), FactorId::kDramBound);
}

TEST(ServerGroup, HeatmapMergeIsExactForDisjointRanks) {
  Heatmap a(4, 0.5), b(4, 0.5);
  a.deposit(0, 0.0, 1.0, 0.5);
  b.deposit(2, 0.0, 2.0, 0.9);
  a.merge(b);
  EXPECT_NEAR(a.cell(0, 0), 0.5, 1e-12);
  EXPECT_NEAR(a.cell(2, 3), 0.9, 1e-12);
  EXPECT_FALSE(a.has_data(1, 0));
  EXPECT_EQ(a.bins(), 5);  // [0,2) touches bins 0-3; bin 4 is the empty edge
}

TEST(ServerGroup, HeatmapMergeRejectsMismatchedGeometry) {
  Heatmap a(4, 0.5), b(4, 0.25);
  EXPECT_DEATH(a.merge(b), "bin_seconds");
}

}  // namespace
}  // namespace vapro::core
