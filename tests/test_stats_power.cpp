// Statistical power sweeps: parameterized checks that the inference
// machinery behaves correctly across noise levels and sample sizes — the
// regimes the diagnosis pipeline actually encounters.
#include <gtest/gtest.h>

#include <cmath>

#include "src/stats/collinearity.hpp"
#include "src/stats/dist.hpp"
#include "src/stats/ols.hpp"
#include "src/util/rng.hpp"

namespace vapro::stats {
namespace {

// --- OLS coefficient recovery degrades gracefully with noise ---

class OlsNoiseSweep : public ::testing::TestWithParam<double> {};

TEST_P(OlsNoiseSweep, CoefficientWithinThreeSigma) {
  const double noise = GetParam();
  util::Rng rng(101 + static_cast<std::uint64_t>(noise * 1000));
  const std::size_t n = 400;
  std::vector<double> x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.uniform(0, 1);
    y[i] = 2.0 + 5.0 * x[i] + rng.normal(0, noise);
  }
  auto fit = ols_fit_columns(y, {x}, true);
  ASSERT_TRUE(fit.ok);
  EXPECT_NEAR(fit.coefficients[0], 5.0, 3.0 * fit.std_errors[0] + 1e-9);
  // The standard error itself must scale with the noise.
  EXPECT_NEAR(fit.std_errors[0], noise / std::sqrt(n / 12.0),
              0.5 * fit.std_errors[0] + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Noise, OlsNoiseSweep,
                         ::testing::Values(0.01, 0.1, 0.5, 2.0));

// --- significance detection power vs sample size ---

class OlsSampleSweep : public ::testing::TestWithParam<int> {};

TEST_P(OlsSampleSweep, RealEffectSignificantFakeEffectNot) {
  const std::size_t n = static_cast<std::size_t>(GetParam());
  util::Rng rng(7);
  std::vector<double> real(n), fake(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    real[i] = rng.uniform(0, 1);
    fake[i] = rng.uniform(0, 1);
    y[i] = 3.0 * real[i] + rng.normal(0, 0.2);
  }
  auto fit = ols_fit_columns(y, {real, fake}, true);
  ASSERT_TRUE(fit.ok);
  EXPECT_LT(fit.p_values[0], 0.05) << "n=" << n;
  // The fake column is not consistently significant; at the paper's alpha
  // it should usually be rejected (allow borderline at tiny n).
  if (n >= 64) {
    EXPECT_GT(fit.p_values[1], 0.01);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, OlsSampleSweep,
                         ::testing::Values(16, 64, 256, 1024));

// --- Farrar–Glauber power: detection probability rises with correlation ---

class FgCorrelationSweep : public ::testing::TestWithParam<double> {};

TEST_P(FgCorrelationSweep, DetectsByCorrelationStrength) {
  const double rho = GetParam();
  int detections = 0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    util::Rng rng(500 + static_cast<std::uint64_t>(t) +
                  static_cast<std::uint64_t>(rho * 10000));
    const std::size_t n = 120;
    std::vector<double> a(n), b(n), c(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = rng.normal(0, 1);
      b[i] = rho * a[i] + std::sqrt(1 - rho * rho) * rng.normal(0, 1);
      c[i] = rng.normal(0, 1);
    }
    auto fg = farrar_glauber(correlation_matrix({a, b, c}), n);
    if (fg.collinear) ++detections;
  }
  if (rho >= 0.9) {
    EXPECT_EQ(detections, trials);  // near-collinear: always flagged
  } else if (rho <= 0.05) {
    EXPECT_LT(detections, trials / 2);  // independent: mostly clean
  }
}

INSTANTIATE_TEST_SUITE_P(Correlations, FgCorrelationSweep,
                         ::testing::Values(0.0, 0.5, 0.9, 0.99));

// --- distribution tails used by the p<0.05 and p<0.001 claims ---

TEST(DistTails, CriticalValuesMatchTables) {
  // chi2 99.9th percentiles (the paper quotes p < 0.001).
  EXPECT_NEAR(chi2_sf(10.828, 1.0), 0.001, 1e-4);
  EXPECT_NEAR(chi2_sf(16.266, 3.0), 0.001, 1e-4);
  // t two-sided 0.1% for large dof → ±3.291 (normal limit).
  EXPECT_NEAR(student_t_two_sided_p(3.291, 1000.0), 0.001, 2e-4);
  // F upper 1%: F(0.99; 5, 20) ≈ 4.10.
  EXPECT_NEAR(f_sf(4.10, 5.0, 20.0), 0.01, 2e-3);
}

TEST(DistTails, ExtremeArgumentsStayFinite) {
  EXPECT_NEAR(chi2_sf(1e4, 2.0), 0.0, 1e-12);
  EXPECT_NEAR(chi2_cdf(1e-12, 2.0), 0.0, 1e-10);
  EXPECT_NEAR(student_t_two_sided_p(100.0, 5.0), 0.0, 1e-8);
  EXPECT_NEAR(normal_cdf(-40.0), 0.0, 1e-300);
  EXPECT_NEAR(normal_cdf(40.0), 1.0, 1e-12);
}

}  // namespace
}  // namespace vapro::stats
