// Session-level behaviour: window cadence, progressive PMU staging across
// windows, detection summaries, and runtime failure modes (deadlock).
#include <gtest/gtest.h>

#include <set>

#include "src/apps/npb.hpp"
#include "src/apps/solvers.hpp"
#include "src/core/vapro.hpp"
#include "src/sim/runtime.hpp"

namespace vapro::core {
namespace {

sim::SimConfig base_config(int ranks = 16) {
  sim::SimConfig cfg;
  cfg.ranks = ranks;
  cfg.cores_per_node = 8;
  cfg.seed = 77;
  return cfg;
}

TEST(Session, WindowCadenceMatchesRunLength) {
  sim::Simulator simulator(base_config());
  VaproOptions opts;
  opts.window_seconds = 0.1;
  VaproSession session(simulator, opts);
  apps::NpbParams p;
  p.iters = 40;
  auto result = simulator.run(apps::cg(p));
  const auto expected =
      static_cast<std::size_t>(result.makespan / opts.window_seconds);
  EXPECT_GE(session.server().windows_processed(), expected);
  EXPECT_LE(session.server().windows_processed(), expected + 2);
}

TEST(Session, PmuStagingFollowsTheDiagnosis) {
  // Under memory noise the diagnoser must walk S1 → S2 → S3, and the
  // clients' active counter sets must follow: the slots first, the
  // core-stall split next, the cache-level stalls last.
  sim::SimConfig cfg = base_config();
  sim::NoiseSpec dimm;
  dimm.kind = sim::NoiseKind::kSlowDram;
  dimm.node = 1;
  dimm.magnitude = 3.0;
  cfg.noises.push_back(dimm);
  sim::Simulator simulator(cfg);

  VaproOptions opts;
  opts.window_seconds = 0.1;
  std::vector<std::set<pmu::Counter>> observed_sets;
  VaproSession session(simulator, opts);
  auto snapshot = [&] {
    const auto& active = session.client().active_counters(0);
    std::set<pmu::Counter> s(active.begin(), active.end());
    if (observed_sets.empty() || observed_sets.back() != s)
      observed_sets.push_back(std::move(s));
  };
  snapshot();  // the stage-1 set configured at attach time
  simulator.add_periodic(opts.window_seconds, [&](double) { snapshot(); });
  apps::NekboneParams p;
  p.iters = 250;
  simulator.run(apps::nekbone(p));

  ASSERT_GE(observed_sets.size(), 3u);
  // Stage 1: the four top-down slot counters.
  EXPECT_TRUE(observed_sets[0].count(pmu::Counter::kSlotsBackend));
  EXPECT_TRUE(observed_sets[0].count(pmu::Counter::kSlotsFrontend));
  // Stage 2: backend split (needs STALLS_CORE).
  EXPECT_TRUE(observed_sets[1].count(pmu::Counter::kStallsCore));
  // Stage 3: the cache-level stall counters.
  EXPECT_TRUE(observed_sets[2].count(pmu::Counter::kStallsDram));
  EXPECT_TRUE(observed_sets[2].count(pmu::Counter::kStallsL2));
  // Every stage honored the 4-slot budget.
  for (const auto& s : observed_sets) EXPECT_LE(s.size(), 4u);
}

TEST(Session, DetectionSummaryMentionsQuietRuns) {
  sim::Simulator simulator(base_config(4));
  VaproOptions opts;
  opts.window_seconds = 0.1;
  VaproSession session(simulator, opts);
  apps::NpbParams p;
  p.iters = 10;
  simulator.run(apps::cg(p));
  // Either no regions or only shallow ones; summary must render either way.
  EXPECT_FALSE(session.detection_summary().empty());
}

TEST(Session, DetachesOnDestruction) {
  sim::Simulator simulator(base_config(4));
  {
    VaproSession session(simulator, VaproOptions{});
  }
  // After the session is gone the simulator runs bare (no dangling
  // interceptor → no crash, no overhead).
  apps::NpbParams p;
  p.iters = 5;
  auto result = simulator.run(apps::cg(p));
  EXPECT_GT(result.makespan, 0.0);
}

TEST(Session, MultiplexingKeepsProxiesActiveOverBudget) {
  sim::Simulator simulator(base_config(4));
  VaproOptions opts;
  opts.window_seconds = 0.1;
  opts.cluster.proxies = {pmu::Counter::kTotIns, pmu::Counter::kMemRefs};
  opts.pmu_budget = 4;            // stage-1 slots alone fill the budget
  opts.allow_multiplexing = true; // ...so MEM_REFS forces multiplexing
  VaproSession session(simulator, opts);
  apps::NpbParams p;
  p.iters = 10;
  simulator.run(apps::cg(p));
  const auto& active = session.client().active_counters(0);
  bool has_mem = false;
  for (pmu::Counter c : active)
    if (c == pmu::Counter::kMemRefs) has_mem = true;
  EXPECT_TRUE(has_mem);
  EXPECT_GT(active.size(), 4u);  // over budget → multiplexed
}

TEST(Runtime, DeadlockIsReportedLoudly) {
  sim::SimConfig cfg = base_config(2);
  cfg.max_virtual_seconds = 0.01;  // fail fast
  sim::Simulator simulator(cfg);
  EXPECT_DEATH(
      simulator.run([](sim::RankContext& ctx) -> sim::Task {
        // Both ranks receive first: classic deadlock (no eager send
        // rescues a message that was never sent).
        co_await ctx.recv(ctx.rank() ^ 1, 1);
        co_await ctx.send(ctx.rank() ^ 1, 8, 2);
      }),
      "never finished");
}

TEST(Session, ManyRanksStress) {
  // 1024 ranks through the full pipeline in one window — smoke for
  // allocation behaviour and the region-growing pass at scale.
  sim::SimConfig cfg = base_config(1024);
  cfg.cores_per_node = 32;
  sim::Simulator simulator(cfg);
  VaproOptions opts;
  opts.window_seconds = 0.5;
  opts.analysis_threads = 4;
  VaproSession session(simulator, opts);
  apps::NpbParams p;
  p.iters = 8;
  p.warmup_iters = 1;
  auto result = simulator.run(apps::cg(p));
  EXPECT_EQ(result.finish_times.size(), 1024u);
  EXPECT_GT(session.fragments_recorded(), 10000u);
}

}  // namespace
}  // namespace vapro::core
