// Tests for src/obs/quality + src/core/scoreboard: window-overlap
// matching edge cases (nothing injected, overlapping injections, false
// positives, category constraints), diagnosis attribution rules,
// scoreboard aggregation/rendering, ground-truth journal round-trips, and
// backward compatibility with schema-v1 journal files.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/core/scoreboard.hpp"
#include "src/obs/journal.hpp"
#include "src/obs/quality.hpp"
#include "src/sim/noise.hpp"

namespace vapro {
namespace {

std::string temp_path(const std::string& leaf) {
  return std::string(::testing::TempDir()) + leaf;
}

obs::QualityTruth make_truth(double t_lo, double t_hi, int rank_lo,
                             int rank_hi) {
  obs::QualityTruth t;
  t.t_lo = t_lo;
  t.t_hi = t_hi;
  t.rank_lo = rank_lo;
  t.rank_hi = rank_hi;
  return t;
}

obs::QualityDetection make_detection(double t_lo, double t_hi, int rank_lo,
                                     int rank_hi) {
  obs::QualityDetection d;
  d.t_lo = t_lo;
  d.t_hi = t_hi;
  d.rank_lo = rank_lo;
  d.rank_hi = rank_hi;
  return d;
}

struct CollectingJournalSink final : obs::JournalSink {
  std::vector<obs::JournalEvent> events;
  void on_event(const obs::JournalEvent& event) override {
    events.push_back(event);
  }
};

// --- scoring edge cases ---------------------------------------------------

TEST(Quality, NothingInjectedNothingDetectedIsPerfect) {
  const obs::QualityScore s = obs::score_quality({}, {}, {});
  EXPECT_EQ(s.precision(), 1.0);  // an empty answer has no false positives
  EXPECT_EQ(s.recall(), 1.0);     // there was nothing to miss
  EXPECT_EQ(s.f1(), 1.0);
  EXPECT_EQ(s.top_factor_accuracy(), 1.0);
}

TEST(Quality, DetectionWithNoGroundTruthCostsPrecisionOnly) {
  // A clean run where the detector still reported two regions: recall has
  // nothing to miss, but both detections are false positives.
  const obs::QualityScore s = obs::score_quality(
      {}, {make_detection(0.1, 0.2, 0, 3), make_detection(0.5, 0.6, 4, 7)},
      {});
  EXPECT_EQ(s.precision(), 0.0);
  EXPECT_EQ(s.recall(), 1.0);
  EXPECT_EQ(s.f1(), 0.0);
}

TEST(Quality, ZeroInjectedZeroDetectedCellMergesNeutrally) {
  // The "none" noise column must not inflate aggregate precision/recall:
  // merging an all-zero cell adds nothing to any numerator or denominator.
  obs::QualityScore total;
  total.truths = 4;
  total.detections = 4;
  total.matched_truths = 2;
  total.matched_detections = 2;
  total.merge(obs::score_quality({}, {}, {}));
  EXPECT_EQ(total.precision(), 0.5);
  EXPECT_EQ(total.recall(), 0.5);
}

TEST(Quality, OverlappingInjectionsEachScoreIndependently) {
  // Two injections share a time window and rank range (e.g. cpu + dram on
  // the same node).  One detection covering the window finds BOTH truths;
  // the single detection is explained once.
  const std::vector<obs::QualityTruth> truths = {make_truth(0.2, 0.5, 0, 3),
                                                 make_truth(0.3, 0.6, 2, 5)};
  const obs::QualityScore s =
      obs::score_quality(truths, {make_detection(0.25, 0.55, 0, 7)}, {});
  EXPECT_EQ(s.matched_truths, 2u);
  EXPECT_EQ(s.matched_detections, 1u);
  EXPECT_EQ(s.recall(), 1.0);
  EXPECT_EQ(s.precision(), 1.0);
}

TEST(Quality, TouchingWindowsDoNotMatch) {
  // Zero-width contact at a boundary is not overlap: the default option
  // requires strictly positive intersection.
  const std::vector<obs::QualityTruth> truths = {make_truth(0.2, 0.5, 0, 3)};
  EXPECT_EQ(obs::score_quality(truths, {make_detection(0.5, 0.7, 0, 3)}, {})
                .matched_truths,
            0u);
  EXPECT_EQ(obs::score_quality(truths, {make_detection(0.0, 0.2, 0, 3)}, {})
                .matched_truths,
            0u);
  // Disjoint rank ranges never match regardless of time overlap.
  EXPECT_EQ(obs::score_quality(truths, {make_detection(0.2, 0.5, 4, 7)}, {})
                .matched_truths,
            0u);
}

TEST(Quality, CategoryConstraintKeepsSharedResourceTruthsHonest) {
  obs::QualityTruth io_truth = make_truth(0.0, 1.0, 0, 15);
  io_truth.allowed_categories = {"io"};
  obs::QualityDetection comm = make_detection(0.1, 0.9, 0, 15);
  comm.category = "communication";
  obs::QualityDetection io = comm;
  io.category = "io";
  EXPECT_FALSE(obs::quality_match(io_truth, comm));
  EXPECT_TRUE(obs::quality_match(io_truth, io));
  // An uncategorized detection (older producers) matches any truth.
  obs::QualityDetection untagged = make_detection(0.1, 0.9, 0, 15);
  EXPECT_TRUE(obs::quality_match(io_truth, untagged));
}

TEST(Quality, UnmatchedTruthIsADiagnosisMissEvenIfFactorAppears) {
  // The factor string being present globally must not credit an injection
  // the detector never located: attribution runs on detected regions.
  obs::QualityTruth found = make_truth(0.2, 0.4, 0, 3);
  found.expected_factors = {"DRAM bound"};
  obs::QualityTruth missed = make_truth(2.0, 2.5, 0, 3);
  missed.expected_factors = {"DRAM bound"};
  const obs::QualityScore s =
      obs::score_quality({found, missed}, {make_detection(0.2, 0.4, 0, 3)},
                         {"DRAM bound"});
  EXPECT_EQ(s.diagnosis_cases, 2u);
  EXPECT_EQ(s.diagnosis_hits, 1u);
  EXPECT_EQ(s.top_factor_accuracy(), 0.5);
}

TEST(Quality, ScoreboardAggregatesAndRendersCells) {
  obs::QualityScoreboard board;
  obs::QualityCell cell;
  cell.app = "CG";
  cell.noise = "cpu";
  cell.score = obs::score_quality({make_truth(0.2, 0.4, 0, 3)},
                                  {make_detection(0.2, 0.4, 0, 3)}, {});
  board.add(cell);
  cell.noise = "none";
  cell.score = obs::score_quality({}, {make_detection(0.5, 0.6, 0, 3)}, {});
  board.add(cell);

  const obs::QualityScore total = board.aggregate();
  EXPECT_EQ(total.truths, 1u);
  EXPECT_EQ(total.detections, 2u);
  EXPECT_EQ(total.precision(), 0.5);
  EXPECT_EQ(total.recall(), 1.0);

  const std::string json = board.render_json();
  EXPECT_NE(json.find("\"schema\":\"vapro.quality\""), std::string::npos);
  EXPECT_NE(json.find("\"app\":\"CG\""), std::string::npos);
  EXPECT_NE(json.find("\"noise\":\"cpu\""), std::string::npos);
  EXPECT_NE(json.find("\"aggregate\":{"), std::string::npos);
}

// --- ground-truth journal plumbing ----------------------------------------

TEST(Quality, GroundTruthJournalRoundTrip) {
  sim::GroundTruthEvent cpu;
  cpu.kind = sim::NoiseKind::kCpuContention;
  cpu.t_begin = 0.25;
  cpu.t_end = 0.75;
  cpu.rank_lo = 4;
  cpu.rank_hi = 7;
  cpu.magnitude = 1.5;
  sim::GroundTruthEvent io;
  io.kind = sim::NoiseKind::kIoInterference;
  io.t_begin = 0.0;
  io.t_end = 1.0;
  io.rank_lo = 0;
  io.rank_hi = 15;
  io.magnitude = 20.0;

  obs::Journal journal;
  CollectingJournalSink sink;
  journal.add_sink(&sink);
  core::journal_ground_truth(journal, {cpu, io}, /*virtual_time=*/1.0);
  ASSERT_EQ(sink.events.size(), 2u);
  EXPECT_EQ(sink.events[0].type, "ground_truth");
  EXPECT_EQ(sink.events[0].str("kind"), "cpu");

  const std::vector<sim::GroundTruthEvent> back =
      core::ground_truth_from_journal(sink.events);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].kind, sim::NoiseKind::kCpuContention);
  EXPECT_EQ(back[0].t_begin, 0.25);
  EXPECT_EQ(back[0].t_end, 0.75);
  EXPECT_EQ(back[0].rank_lo, 4);
  EXPECT_EQ(back[0].rank_hi, 7);
  EXPECT_EQ(back[0].magnitude, 1.5);
  EXPECT_EQ(back[1].kind, sim::NoiseKind::kIoInterference);
  EXPECT_EQ(back[1].rank_hi, 15);
}

TEST(Quality, GroundTruthSurvivesJournalFileRoundTrip) {
  const std::string path = temp_path("quality_ground_truth.jsonl");
  std::remove(path.c_str());
  sim::GroundTruthEvent gt;
  gt.kind = sim::NoiseKind::kSlowDram;
  gt.t_begin = 0.1;
  gt.t_end = 0.9;
  gt.rank_lo = 0;
  gt.rank_hi = 7;
  gt.magnitude = 3.0;
  {
    obs::Journal journal;
    obs::JournalFileSink file(path);
    ASSERT_TRUE(file.ok());
    journal.add_sink(&file);
    core::journal_ground_truth(journal, {gt}, 1.0);
    journal.flush();
  }
  const obs::JournalReadResult read = obs::read_journal(path);
  ASSERT_TRUE(read.ok) << read.error;
  EXPECT_EQ(read.schema_version, obs::kJournalSchemaVersion);
  const std::vector<sim::GroundTruthEvent> back =
      core::ground_truth_from_journal(read.events);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].kind, sim::NoiseKind::kSlowDram);
  EXPECT_EQ(back[0].magnitude, 3.0);
}

TEST(Quality, UnknownKindInJournalIsSkippedNotFatal) {
  obs::Journal journal;
  CollectingJournalSink sink;
  journal.add_sink(&sink);
  journal.emit("ground_truth", -1, 1.0,
               {obs::JournalField::str("kind", "cosmic_rays"),
                obs::JournalField::num("t_begin", 0.0),
                obs::JournalField::num("t_end", 1.0)});
  EXPECT_TRUE(core::ground_truth_from_journal(sink.events).empty());
}

TEST(Quality, SchemaV1JournalFilesStillParse) {
  // A journal written before the quality schema bump: v1 header, only
  // window events.  The v2 reader must accept it — the file simply
  // contains no ground-truth or quality events.
  const std::string path = temp_path("quality_v1_journal.jsonl");
  {
    std::ofstream out(path);
    out << "{\"type\":\"journal_header\",\"schema\":\"vapro.journal\","
           "\"schema_version\":1}\n"
        << "{\"seq\":0,\"type\":\"window\",\"window\":0,\"t\":0.25,"
           "\"variance_ratio\":0.1}\n"
        << "{\"seq\":1,\"type\":\"window\",\"window\":1,\"t\":0.5,"
           "\"variance_ratio\":0.2}\n";
  }
  const obs::JournalReadResult read = obs::read_journal(path);
  ASSERT_TRUE(read.ok) << read.error;
  EXPECT_EQ(read.schema_version, 1);
  ASSERT_EQ(read.events.size(), 2u);
  EXPECT_EQ(read.events[1].number("variance_ratio"), 0.2);
  EXPECT_TRUE(core::ground_truth_from_journal(read.events).empty());
}

TEST(Quality, ExpectedFactorClassesCoverEveryNoiseKind) {
  // Every injectable kind must map to a non-empty expectation set, or the
  // scoreboard would silently excuse the diagnoser for that kind.
  for (sim::NoiseKind kind :
       {sim::NoiseKind::kCpuContention, sim::NoiseKind::kMemoryBandwidth,
        sim::NoiseKind::kSlowDram, sim::NoiseKind::kL2CacheBug,
        sim::NoiseKind::kPageFaultStorm, sim::NoiseKind::kIoInterference,
        sim::NoiseKind::kNetworkCongestion})
    EXPECT_FALSE(core::expected_factor_classes(kind).empty())
        << sim::noise_kind_name(kind);
}

}  // namespace
}  // namespace vapro
