// Per-application structural assertions: each mini-app was built to
// exhibit a specific property the paper's evaluation depends on; these
// tests pin those properties so app edits can't silently break the
// experiment suite.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/apps/apps.hpp"
#include "src/core/vapro.hpp"
#include "src/sim/runtime.hpp"

namespace vapro::apps {
namespace {

sim::SimConfig cfg(int ranks = 16) {
  sim::SimConfig c;
  c.ranks = ranks;
  c.cores_per_node = 8;
  c.seed = 12;
  return c;
}

// Collects per-run structural statistics through a bare interceptor.
struct StructureProbe final : sim::Interceptor {
  std::size_t calls = 0;
  std::size_t static_spans = 0;
  std::size_t dynamic_spans = 0;
  std::set<sim::CallSiteId> sites;
  std::set<std::int64_t> truth_classes;
  std::size_t io_calls = 0;
  std::size_t probe_calls = 0;
  std::size_t max_path_depth = 0;

  void on_call_begin(const sim::InvocationInfo& info, double,
                     const pmu::CounterSample&) override {
    ++calls;
    sites.insert(info.site);
    if (info.truth_class_since_last >= 0)
      truth_classes.insert(info.truth_class_since_last);
    if (info.statically_fixed_since_last) ++static_spans;
    else ++dynamic_spans;
    if (sim::is_io_op(info.kind)) ++io_calls;
    if (info.kind == sim::OpKind::kProbe) ++probe_calls;
    max_path_depth = std::max(max_path_depth, info.path.size());
  }
  void on_call_end(const sim::InvocationInfo&, double,
                   const pmu::CounterSample&) override {}
};

StructureProbe probe_app(const sim::Simulator::RankProgram& prog,
                         int ranks = 16, double* makespan = nullptr) {
  sim::Simulator s(cfg(ranks));
  StructureProbe probe;
  s.set_interceptor(&probe);
  auto result = s.run(prog);
  if (makespan) *makespan = result.makespan;
  return probe;
}

TEST(AppStructure, AmgHasSevenRuntimeClassesAndNothingStatic) {
  AmgParams p;
  p.iters = 40;
  auto probe = probe_app(amg(p));
  EXPECT_EQ(probe.static_spans, 0u);  // invisible to vSensor
  // 7 de-facto workload classes (§3.1) reach the allreduce call sites.
  std::set<std::int64_t> small;
  for (auto c : probe.truth_classes)
    if (c >= 0 && c < 7) small.insert(c);
  EXPECT_EQ(small.size(), 7u);
}

TEST(AppStructure, EpIsProbeDelimited) {
  NpbParams p;
  p.iters = 10;
  auto probe = probe_app(ep(p));
  // Almost everything is probes; exactly one trailing collective site.
  EXPECT_GT(probe.probe_calls, probe.calls / 2);
  EXPECT_GT(probe.static_spans, 0u);
}

TEST(AppStructure, CesmHasDeepCallPaths) {
  CesmParams p;
  p.steps = 12;  // ≥ 10 so the periodic history write fires
  auto probe = probe_app(cesm(p));
  EXPECT_GE(probe.max_path_depth,
            static_cast<std::size_t>(p.call_depth));
  EXPECT_GT(probe.io_calls, 0u);  // history writes
}

TEST(AppStructure, LuHasTheHighestCallRate) {
  NpbParams p;
  p.iters = 20;
  double lu_time = 0, cg_time = 0;
  auto lu_probe = probe_app(lu(p), 16, &lu_time);
  auto cg_probe = probe_app(cg(p), 16, &cg_time);
  // Calls per unit of virtual time: LU's wavefront of small messages must
  // out-call CG (the Table 1 overhead driver).
  const double lu_rate = static_cast<double>(lu_probe.calls) / lu_time;
  const double cg_rate = static_cast<double>(cg_probe.calls) / cg_time;
  // The wavefront pipeline stretches LU's wall time, so the margin is
  // modest — but the rate ordering must hold.
  EXPECT_GT(lu_rate, cg_rate);
}

TEST(AppStructure, BtIsMostlyStaticSpAddsDynamicSweeps) {
  NpbParams p;
  p.iters = 20;
  p.warmup_iters = 1;
  auto bt_probe = probe_app(bt(p));
  auto sp_probe = probe_app(sp(p));
  const double bt_static_frac =
      static_cast<double>(bt_probe.static_spans) /
      static_cast<double>(bt_probe.static_spans + bt_probe.dynamic_spans);
  const double sp_static_frac =
      static_cast<double>(sp_probe.static_spans) /
      static_cast<double>(sp_probe.static_spans + sp_probe.dynamic_spans);
  EXPECT_GT(bt_static_frac, sp_static_frac + 0.2);
}

TEST(AppStructure, RaxmlOnlyRankZeroTouchesIo) {
  RaxmlParams p;
  p.io_rounds = 40;
  p.compute_iters = 10;
  sim::Simulator s(cfg());
  struct IoProbe final : sim::Interceptor {
    std::set<int> io_ranks;
    void on_call_begin(const sim::InvocationInfo& info, double,
                       const pmu::CounterSample&) override {
      if (sim::is_io_op(info.kind)) io_ranks.insert(info.rank);
    }
    void on_call_end(const sim::InvocationInfo&, double,
                     const pmu::CounterSample&) override {}
  } probe;
  s.set_interceptor(&probe);
  s.run(raxml(p));
  EXPECT_EQ(probe.io_ranks, (std::set<int>{0}));
}

TEST(AppStructure, HplTrailingUpdateShrinks) {
  // Every iteration's truth class must differ (the shrinking DGEMM),
  // giving per-iteration inter-process clusters.
  HplParams p;
  p.panels = 24;
  auto probe = probe_app(hpl(p), 8);
  std::set<std::int64_t> update_classes;
  for (auto c : probe.truth_classes)
    if (c >= 0 && c < 1000) update_classes.insert(c);
  EXPECT_GE(update_classes.size(), 20u);
}

TEST(AppStructure, FerretStagesCarryDistinctLoads) {
  ThreadedParams p;
  p.iters = 20;
  auto probe = probe_app(ferret(p), 8);
  // 4 pipeline stages → at least 4 distinct steady-state classes.
  std::set<std::int64_t> stages;
  for (auto c : probe.truth_classes)
    if (c >= 0 && c < 4) stages.insert(c);
  EXPECT_EQ(stages.size(), 4u);
}

TEST(AppStructure, WordcountDoesIoOnEveryThread) {
  ThreadedParams p;
  p.iters = 16;
  auto probe = probe_app(wordcount(p), 8);
  EXPECT_GT(probe.io_calls, 8u);  // one read per thread per round
}

// --- end-to-end coverage of the two noise kinds the case studies above
// don't exercise ---

TEST(NoiseKinds, NetworkCongestionStretchesCommFragments) {
  auto comm_observed = [&](double magnitude) {
    sim::SimConfig c = cfg();
    if (magnitude > 1.0) {
      sim::NoiseSpec net;
      net.kind = sim::NoiseKind::kNetworkCongestion;
      net.magnitude = magnitude;
      c.noises.push_back(net);
    }
    sim::Simulator s(c);
    core::VaproOptions opts;
    opts.run_diagnosis = false;
    core::VaproSession session(s, opts);
    NpbParams p;
    p.iters = 20;
    s.run(ft(p));  // allreduce-heavy
    return session.coverage_accumulator()
        .observed[static_cast<int>(core::FragmentKind::kCommunication)];
  };
  // Waiting at collectives (imbalance) dilutes the effect, so an 8x link
  // slowdown shows as a >2x rise in observed communication time.
  EXPECT_GT(comm_observed(8.0), 2.0 * comm_observed(1.0));
}

TEST(NoiseKinds, PageFaultStormDiagnosedUnderSuspension) {
  sim::SimConfig c = cfg();
  sim::NoiseSpec storm;
  storm.kind = sim::NoiseKind::kPageFaultStorm;
  storm.node = 0;
  storm.magnitude = 2e5;  // faults per on-CPU second
  c.noises.push_back(storm);
  sim::Simulator s(c);
  core::VaproOptions opts;
  opts.window_seconds = 0.1;
  core::VaproSession session(s, opts);
  NpbParams p;
  p.iters = 60;
  s.run(cg(p));
  bool suspension_major = false, pf_examined = false;
  for (const auto& f : session.diagnosis().findings) {
    if (f.id == core::FactorId::kSuspension && f.major) suspension_major = true;
    if (f.id == core::FactorId::kPageFault) pf_examined = true;
  }
  EXPECT_TRUE(suspension_major);
  EXPECT_TRUE(pf_examined);
}

}  // namespace
}  // namespace vapro::apps
