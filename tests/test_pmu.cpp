// Unit tests for src/pmu: counter vocabulary, CounterSet budget/jitter, and
// the top-down core model's behaviour under environmental perturbations —
// the properties the whole detection approach rests on (TOT_INS stable,
// time-sensitive counters moving with the noise, Fig 5).
#include <gtest/gtest.h>

#include <cmath>

#include "src/pmu/core_model.hpp"
#include "src/pmu/counter_set.hpp"
#include "src/pmu/counters.hpp"
#include "src/pmu/workload.hpp"

namespace vapro::pmu {
namespace {

TEST(Counters, NamesAreUnique) {
  std::set<std::string_view> names;
  for (std::size_t i = 0; i < kCounterCount; ++i)
    names.insert(counter_name(static_cast<Counter>(i)));
  EXPECT_EQ(names.size(), kCounterCount);
}

TEST(Counters, FixedAndSoftwareCountersAreFree) {
  EXPECT_TRUE(is_free_counter(Counter::kTotIns));
  EXPECT_TRUE(is_free_counter(Counter::kTsc));
  EXPECT_TRUE(is_free_counter(Counter::kCpuClkUnhalted));
  EXPECT_TRUE(is_free_counter(Counter::kPageFaultsSoft));
  EXPECT_TRUE(is_free_counter(Counter::kCtxSwitchInvoluntary));
  EXPECT_FALSE(is_free_counter(Counter::kSlotsBackend));
  EXPECT_FALSE(is_free_counter(Counter::kStallsL2));
}

TEST(Counters, SampleArithmetic) {
  CounterSample a, b;
  a[Counter::kTotIns] = 100;
  b[Counter::kTotIns] = 30;
  b[Counter::kTsc] = 7;
  a += b;
  EXPECT_DOUBLE_EQ(a[Counter::kTotIns], 130);
  CounterSample d = a - b;
  EXPECT_DOUBLE_EQ(d[Counter::kTotIns], 100);
  EXPECT_DOUBLE_EQ(d[Counter::kTsc], 0);
}

TEST(CounterSet, BudgetEnforced) {
  CounterSet cs(1, /*budget=*/2, /*jitter=*/0.0);
  EXPECT_TRUE(cs.configure({Counter::kSlotsBackend, Counter::kStallsCore}));
  EXPECT_FALSE(cs.configure({Counter::kStallsL1, Counter::kStallsL2,
                             Counter::kStallsL3}));
  // Failed configure keeps the previous set.
  EXPECT_TRUE(cs.is_active(Counter::kSlotsBackend));
  EXPECT_TRUE(cs.is_active(Counter::kStallsCore));
  EXPECT_FALSE(cs.is_active(Counter::kStallsL1));
}

TEST(CounterSet, FreeCountersAlwaysActive) {
  CounterSet cs(1, 0, 0.0);
  EXPECT_TRUE(cs.is_active(Counter::kTotIns));
  EXPECT_TRUE(cs.is_active(Counter::kPageFaultsHard));
  EXPECT_TRUE(cs.configure({Counter::kTotIns, Counter::kTsc}));  // free: ok
}

TEST(CounterSet, InactiveCountersReadZero) {
  CounterSet cs(1, 4, 0.0);
  CounterSample gt;
  gt[Counter::kStallsL2] = 500;
  gt[Counter::kTotIns] = 1000;
  CounterSample r = cs.read(gt);
  EXPECT_DOUBLE_EQ(r[Counter::kStallsL2], 0.0);  // not configured
  EXPECT_DOUBLE_EQ(r[Counter::kTotIns], 1000.0);
}

TEST(CounterSet, JitterIsSmallAndUnbiased) {
  CounterSet cs(99, 4, 0.01);
  CounterSample a, b;
  a[Counter::kTotIns] = 0;
  b[Counter::kTotIns] = 1e6;
  double sum = 0;
  for (int i = 0; i < 2000; ++i) {
    sum += cs.read_delta(a, b)[Counter::kTotIns];
  }
  EXPECT_NEAR(sum / 2000, 1e6, 1e6 * 0.002);
}

TEST(CounterSet, ZeroJitterIsExact) {
  CounterSet cs(1, 4, 0.0);
  CounterSample a, b;
  a[Counter::kTotIns] = 100;
  b[Counter::kTotIns] = 350;
  EXPECT_DOUBLE_EQ(cs.read_delta(a, b)[Counter::kTotIns], 250.0);
}

TEST(CounterSet, MultiplexingAcceptsOverBudgetSets) {
  CounterSet cs(1, /*budget=*/2, /*jitter=*/0.0);
  cs.configure_multiplexed({Counter::kStallsL1, Counter::kStallsL2,
                            Counter::kStallsL3, Counter::kStallsDram});
  EXPECT_TRUE(cs.is_active(Counter::kStallsL1));
  EXPECT_TRUE(cs.is_active(Counter::kStallsDram));
  EXPECT_DOUBLE_EQ(cs.duty_cycle(), 0.5);
  // Within budget → full duty.
  cs.configure_multiplexed({Counter::kStallsL1});
  EXPECT_DOUBLE_EQ(cs.duty_cycle(), 1.0);
}

TEST(CounterSet, MultiplexingInflatesReadError) {
  auto spread = [](int budget, int counters) {
    CounterSet cs(42, budget, /*jitter=*/0.01);
    std::vector<Counter> set;
    const Counter all[] = {Counter::kStallsL1, Counter::kStallsL2,
                           Counter::kStallsL3, Counter::kStallsDram};
    for (int i = 0; i < counters; ++i) set.push_back(all[i]);
    cs.configure_multiplexed(set);
    CounterSample a, b;
    b[Counter::kStallsL1] = 1e6;
    double s2 = 0;
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
      double v = cs.read_delta(a, b)[Counter::kStallsL1];
      s2 += (v - 1e6) * (v - 1e6);
    }
    return std::sqrt(s2 / n) / 1e6;
  };
  const double full = spread(4, 4);     // within budget
  const double quarter = spread(1, 4);  // 25% duty
  EXPECT_NEAR(full, 0.01, 0.002);
  EXPECT_NEAR(quarter, 0.04, 0.008);  // ≈ jitter / duty
}

TEST(CounterSet, MultiplexedEstimatesStayUnbiased) {
  CounterSet cs(7, 1, 0.02);
  cs.configure_multiplexed({Counter::kStallsL1, Counter::kStallsL2,
                            Counter::kStallsL3});
  CounterSample a, b;
  b[Counter::kStallsL2] = 5e5;
  double sum = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) sum += cs.read_delta(a, b)[Counter::kStallsL2];
  EXPECT_NEAR(sum / n, 5e5, 5e5 * 0.01);
}

// --- core model ---

class CoreModelTest : public ::testing::Test {
 protected:
  MachineParams params_;
  QuietEnvironment quiet_;
  EnvQuery here_{0, 0, 0.0};
};

TEST_F(CoreModelTest, TotInsEqualsWorkloadInstructions) {
  CoreModel model(params_, 1);
  auto w = ComputeWorkload::balanced(1e7);
  auto out = model.execute(w, here_, quiet_);
  EXPECT_DOUBLE_EQ(out.delta[Counter::kTotIns], 1e7);
}

TEST_F(CoreModelTest, SlotAlgebraConsistent) {
  CoreModel model(params_, 1);
  auto out = model.execute(ComputeWorkload::balanced(1e7), here_, quiet_);
  const auto& d = out.delta;
  // backend = core + L1 + L2 + L3 + DRAM.
  EXPECT_NEAR(d[Counter::kSlotsBackend],
              d[Counter::kStallsCore] + d[Counter::kStallsL1] +
                  d[Counter::kStallsL2] + d[Counter::kStallsL3] +
                  d[Counter::kStallsDram],
              1e-6 * d[Counter::kSlotsBackend]);
  // cycles = total slots / width.
  const double total = d[Counter::kSlotsRetiring] + d[Counter::kSlotsFrontend] +
                       d[Counter::kSlotsBadSpec] + d[Counter::kSlotsBackend];
  EXPECT_NEAR(d[Counter::kCpuClkUnhalted], total / params_.pipeline_width,
              1e-6 * d[Counter::kCpuClkUnhalted]);
}

TEST_F(CoreModelTest, TscCoversWallTime) {
  CoreModel model(params_, 1);
  auto out = model.execute(ComputeWorkload::balanced(1e7), here_, quiet_);
  EXPECT_NEAR(out.delta[Counter::kTsc],
              out.wall_seconds() * params_.frequency_hz, 1.0);
  EXPECT_GE(out.delta[Counter::kTsc], out.delta[Counter::kCpuClkUnhalted]);
}

TEST_F(CoreModelTest, ZeroInstructionsIsFree) {
  CoreModel model(params_, 1);
  auto out = model.execute(ComputeWorkload{}, here_, quiet_);
  EXPECT_DOUBLE_EQ(out.cpu_seconds, 0.0);
  EXPECT_DOUBLE_EQ(out.suspended_seconds, 0.0);
}

class DramNoise final : public Environment {
 public:
  double dram_factor(const EnvQuery&) const override { return 4.0; }
};

TEST_F(CoreModelTest, DramNoiseSlowsMemoryBoundWorkButNotTotIns) {
  CoreModel quiet_model(params_, 1);
  CoreModel noisy_model(params_, 1);
  DramNoise noisy;
  auto w = ComputeWorkload::memory_bound(2e6);
  auto base = quiet_model.execute(w, here_, quiet_);
  auto hit = noisy_model.execute(w, here_, noisy);
  // Fig 5's property: the proxy metric is stable, the time is not.
  EXPECT_DOUBLE_EQ(base.delta[Counter::kTotIns], hit.delta[Counter::kTotIns]);
  EXPECT_GT(hit.cpu_seconds, base.cpu_seconds * 1.5);
  EXPECT_GT(hit.delta[Counter::kStallsDram],
            base.delta[Counter::kStallsDram] * 3.5);
}

TEST_F(CoreModelTest, DramNoiseBarelyTouchesComputeBoundWork) {
  CoreModel a(params_, 1), b(params_, 1);
  DramNoise noisy;
  auto w = ComputeWorkload::compute_bound(1e7);
  auto base = a.execute(w, here_, quiet_);
  auto hit = b.execute(w, here_, noisy);
  EXPECT_LT(hit.cpu_seconds, base.cpu_seconds * 1.3);
}

class HalfShare final : public Environment {
 public:
  double cpu_share(const EnvQuery&) const override { return 0.5; }
};

TEST_F(CoreModelTest, CpuContentionSuspendsWithoutChangingCpuTime) {
  CoreModel a(params_, 1), b(params_, 2);
  HalfShare contended;
  // Long workload → many quanta → concentration near the expectation.
  auto w = ComputeWorkload::balanced(3e9);
  auto base = a.execute(w, here_, quiet_);
  auto hit = b.execute(w, here_, contended);
  // On-CPU time is (almost) unaffected by sharing — only jitter differs.
  EXPECT_NEAR(hit.cpu_seconds, base.cpu_seconds, 0.02 * base.cpu_seconds);
  // Expected lost time ≈ cpu_seconds at share 0.5.
  EXPECT_NEAR(hit.suspended_seconds, hit.cpu_seconds, 0.15 * hit.cpu_seconds);
  EXPECT_GT(hit.delta[Counter::kCtxSwitchInvoluntary], 10.0);
}

TEST_F(CoreModelTest, ShortFragmentsUnderContentionAreBimodal) {
  CoreModel model(params_, 3);
  HalfShare contended;
  // ~0.45 ms of CPU — well under the 10 ms quantum.
  auto w = ComputeWorkload::balanced(1e6);
  int untouched = 0, hit_hard = 0;
  for (int i = 0; i < 300; ++i) {
    auto out = model.execute(w, here_, contended);
    const double slowdown = out.wall_seconds() / out.cpu_seconds;
    if (slowdown < 1.3) ++untouched;
    if (slowdown > 5.0) ++hit_hard;
  }
  // Most runs untouched, a few hit by a full quantum wait (Fig 12's 90%).
  EXPECT_GT(untouched, 200);
  EXPECT_GT(hit_hard, 3);
}

class FaultStorm final : public Environment {
 public:
  double soft_pf_rate(const EnvQuery&) const override { return 2e5; }
};

TEST_F(CoreModelTest, PageFaultStormRaisesFaultsAndSuspension) {
  CoreModel a(params_, 1), b(params_, 2);
  FaultStorm storm;
  auto w = ComputeWorkload::balanced(2e7);
  auto base = a.execute(w, here_, quiet_);
  auto hit = b.execute(w, here_, storm);
  EXPECT_GT(hit.delta[Counter::kPageFaultsSoft],
            base.delta[Counter::kPageFaultsSoft] + 100);
  EXPECT_GT(hit.suspended_seconds, base.suspended_seconds);
}

class L2Bug final : public Environment {
 public:
  double l2_factor(const EnvQuery&) const override { return 6.0; }
};

TEST_F(CoreModelTest, L2BugInflatesL2AndDramStalls) {
  CoreModel a(params_, 1), b(params_, 1);
  L2Bug bug;
  auto w = ComputeWorkload::balanced(1e7);
  auto base = a.execute(w, here_, quiet_);
  auto hit = b.execute(w, here_, bug);
  EXPECT_GT(hit.delta[Counter::kStallsL2], base.delta[Counter::kStallsL2] * 5);
  EXPECT_GT(hit.delta[Counter::kStallsDram],
            base.delta[Counter::kStallsDram]);
  EXPECT_DOUBLE_EQ(hit.delta[Counter::kTotIns], base.delta[Counter::kTotIns]);
}

TEST_F(CoreModelTest, ScaledWorkloadScalesTime) {
  CoreModel model(params_, 1);
  auto w = ComputeWorkload::balanced(1e7);
  auto big = w.scaled(2.0);
  auto t1 = model.execute(w, here_, quiet_).cpu_seconds;
  auto t2 = model.execute(big, here_, quiet_).cpu_seconds;
  EXPECT_NEAR(t2, 2.0 * t1, 0.01 * t2);
}

TEST(Workload, NamedConstructorsSetTruthAndShape) {
  auto c = ComputeWorkload::compute_bound(1e6, 7);
  EXPECT_EQ(c.truth_class, 7);
  EXPECT_FALSE(c.statically_fixed);
  auto m = ComputeWorkload::memory_bound(1e6);
  EXPECT_GT(m.mem_refs, c.mem_refs);
  EXPECT_GT(m.l1_miss, c.l1_miss);
}

}  // namespace
}  // namespace vapro::pmu
