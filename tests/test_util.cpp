// Unit tests for src/util: RNG determinism and distributions, CSV quoting,
// table formatting, check macros.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "src/util/check.hpp"
#include "src/util/csv.hpp"
#include "src/util/log.hpp"
#include "src/util/rng.hpp"
#include "src/util/table.hpp"

namespace vapro::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.uniform(3.5, 4.5);
    EXPECT_GE(u, 3.5);
    EXPECT_LT(u, 4.5);
  }
}

TEST(Rng, UniformU64Unbiased) {
  Rng rng(11);
  std::array<int, 7> counts{};
  const int n = 70000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_u64(7)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 7.0, 5.0 * std::sqrt(n / 7.0));
  }
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(13);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, PoissonMeanMatches) {
  Rng rng(19);
  for (double mean : {0.5, 3.0, 50.0}) {
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
      sum += static_cast<double>(rng.poisson(mean));
    EXPECT_NEAR(sum / n, mean, 0.05 * mean + 0.05);
  }
}

TEST(Rng, PoissonZeroMeanIsZero) {
  Rng rng(23);
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, ForkStreamsAreIndependent) {
  Rng parent(42);
  Rng c1 = parent.fork(1);
  Rng c2 = parent.fork(2);
  Rng c1_again = parent.fork(1);
  EXPECT_EQ(c1.next_u64(), c1_again.next_u64());
  EXPECT_NE(c1.next_u64(), c2.next_u64());
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  shuffle(v, rng);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(Csv, EscapesOnlyWhenNeeded) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WritesRows) {
  const std::string path = "/tmp/vapro_csv_test.csv";
  {
    CsvWriter csv(path);
    csv.write_row(std::vector<std::string>{"a", "b,c"});
    csv.write_row(std::vector<double>{1.5, 2.0});
  }
  std::ifstream in(path);
  std::string l1, l2;
  std::getline(in, l1);
  std::getline(in, l2);
  EXPECT_EQ(l1, "a,\"b,c\"");
  EXPECT_EQ(l2, "1.5,2");
  std::remove(path.c_str());
}

TEST(Table, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row_numeric("longer-name", {3.14159}, 2);
  std::ostringstream oss;
  t.print(oss);
  const std::string s = oss.str();
  EXPECT_NE(s.find("longer-name"), std::string::npos);
  EXPECT_NE(s.find("3.14"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(Table, RejectsWrongWidth) {
  TextTable t({"a", "b"});
  EXPECT_DEATH(t.add_row({"only-one"}), "row width");
}

TEST(Check, FailsLoudly) {
  EXPECT_DEATH(VAPRO_CHECK_MSG(false, "custom message " << 42),
               "custom message 42");
}

TEST(Fmt, Precision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
}

// Simulates a shared helper whose VAPRO_LOG_TAG_EVERY_N site is reached with
// different runtime component tags (e.g. one journal warning used by every
// sink).  The counter must be keyed per (site, tag): a chatty component
// spinning the counter must not swallow another component's first warning.
TEST(Log, RateLimitCountersArePerTagAndSite) {
  using detail::rate_limited_hit;
  const char* file = "rate_limit_regression.cpp";

  // "alpha" hammers the site: logs on hits 1 and n+1, nothing in between.
  EXPECT_TRUE(rate_limited_hit(file, 10, "alpha", 5));
  for (int i = 0; i < 4; ++i)
    EXPECT_FALSE(rate_limited_hit(file, 10, "alpha", 5));
  EXPECT_TRUE(rate_limited_hit(file, 10, "alpha", 5));

  // "beta" reaches the SAME site afterwards — its first hit must still log.
  EXPECT_TRUE(rate_limited_hit(file, 10, "beta", 5));
  EXPECT_FALSE(rate_limited_hit(file, 10, "beta", 5));

  // A different line is a different site even for the same tag.
  EXPECT_TRUE(rate_limited_hit(file, 11, "alpha", 5));

  // n=0 is treated as log-every-hit rather than a division by zero.
  EXPECT_TRUE(rate_limited_hit(file, 12, "gamma", 0));
  EXPECT_TRUE(rate_limited_hit(file, 12, "gamma", 0));
}

}  // namespace
}  // namespace vapro::util
