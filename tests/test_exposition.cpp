// Tests for src/obs/exposition: raw-socket HTTP conformance, Prometheus
// text-format validity, the /healthz and /v1 routes, concurrent scrapes
// against a live analysis, and graceful port-in-use failure.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/apps/npb.hpp"
#include "src/core/vapro.hpp"
#include "src/obs/context.hpp"
#include "src/obs/exposition.hpp"
#include "src/sim/runtime.hpp"
#include "src/testing/fault.hpp"

namespace vapro {
namespace {

struct HttpReply {
  bool ok = false;
  int status = 0;
  std::string content_type;
  std::string body;
  std::string raw;
};

// Minimal HTTP/1.1 client over a plain socket — the same wire surface a
// Prometheus scraper or curl uses, so header framing is tested for real.
HttpReply http_get(int port, const std::string& path) {
  HttpReply reply;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return reply;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return reply;
  }
  const std::string request = "GET " + path +
                              " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                              "Connection: close\r\n\r\n";
  for (std::size_t off = 0; off < request.size();) {
    const ssize_t n =
        ::send(fd, request.data() + off, request.size() - off, 0);
    if (n <= 0) {
      ::close(fd);
      return reply;
    }
    off += static_cast<std::size_t>(n);
  }
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    reply.raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  const std::size_t header_end = reply.raw.find("\r\n\r\n");
  if (header_end == std::string::npos) return reply;
  const std::string headers = reply.raw.substr(0, header_end);
  reply.body = reply.raw.substr(header_end + 4);
  std::istringstream hs(headers);
  std::string status_line;
  std::getline(hs, status_line);
  if (std::sscanf(status_line.c_str(), "HTTP/1.1 %d", &reply.status) != 1)
    return reply;
  std::string line;
  while (std::getline(hs, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    constexpr const char* kCt = "Content-Type: ";
    if (line.rfind(kCt, 0) == 0) reply.content_type = line.substr(14);
  }
  reply.ok = true;
  return reply;
}

// Validates Prometheus text format 0.0.4: every non-comment line must be
// "name[{labels}] value" with a parseable double and a sane metric name.
void expect_valid_prometheus(const std::string& body) {
  std::istringstream is(body);
  std::string line;
  std::size_t samples = 0;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      EXPECT_TRUE(line.rfind("# TYPE ", 0) == 0 ||
                  line.rfind("# HELP ", 0) == 0)
          << "bad comment line: " << line;
      continue;
    }
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << "no value in: " << line;
    const std::string name_part = line.substr(0, space);
    const std::string value_part = line.substr(space + 1);
    char* end = nullptr;
    std::strtod(value_part.c_str(), &end);
    EXPECT_EQ(*end, '\0') << "unparseable value in: " << line;
    for (char c : name_part.substr(0, name_part.find('{')))
      EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
                  c == ':')
          << "bad metric name char '" << c << "' in: " << line;
    ++samples;
  }
  EXPECT_GT(samples, 0u) << "empty exposition body";
}

TEST(Exposition, MetricsRouteServesPrometheusTextFormat) {
  obs::ObsContext ctx;
  ctx.metrics().counter("vapro.test.requests")->inc(42);
  ctx.metrics().gauge("vapro.test.depth")->set(3.5);
  ctx.metrics().histogram("vapro.test.latency")->record(0.01);
  std::string error;
  ASSERT_NE(ctx.start_exposition(0, &error), nullptr) << error;
  const int port = ctx.exposition()->port();
  ASSERT_GT(port, 0);

  HttpReply reply = http_get(port, "/metrics");
  ASSERT_TRUE(reply.ok);
  EXPECT_EQ(reply.status, 200);
  EXPECT_EQ(reply.content_type, obs::kPrometheusContentType);
  expect_valid_prometheus(reply.body);
  EXPECT_NE(reply.body.find("vapro_test_requests 42"), std::string::npos);
  EXPECT_NE(reply.body.find("# TYPE vapro_test_requests counter"),
            std::string::npos);
  EXPECT_NE(reply.body.find("vapro_test_latency_count"), std::string::npos);
}

TEST(Exposition, HistogramRendersNativePrometheusHistogramFormat) {
  obs::ObsContext ctx;
  obs::Histogram* h = ctx.metrics().histogram("vapro.test.latency");
  for (int i = 0; i < 3; ++i) h->record(1e-3);
  h->record(0.5);
  std::string error;
  ASSERT_NE(ctx.start_exposition(0, &error), nullptr) << error;
  HttpReply reply = http_get(ctx.exposition()->port(), "/metrics");
  ASSERT_TRUE(reply.ok);
  expect_valid_prometheus(reply.body);

  EXPECT_NE(reply.body.find("# TYPE vapro_test_latency histogram"),
            std::string::npos);
  EXPECT_NE(reply.body.find("vapro_test_latency_bucket{le=\"+Inf\"} 4"),
            std::string::npos)
      << reply.body;
  EXPECT_NE(reply.body.find("vapro_test_latency_count 4"), std::string::npos);
  EXPECT_NE(reply.body.find("vapro_test_latency_sum"), std::string::npos);
  // Buckets are CUMULATIVE and non-decreasing, ending at the +Inf count.
  std::istringstream is(reply.body);
  std::string line;
  double prev = -1.0, last = -1.0;
  std::size_t bucket_lines = 0;
  while (std::getline(is, line)) {
    if (line.rfind("vapro_test_latency_bucket{", 0) != 0) continue;
    const double v = std::strtod(line.substr(line.rfind(' ') + 1).c_str(),
                                 nullptr);
    EXPECT_GE(v, prev) << "non-cumulative bucket: " << line;
    prev = last = v;
    ++bucket_lines;
  }
  EXPECT_GE(bucket_lines, 2u);
  EXPECT_DOUBLE_EQ(last, 4.0);
  // Quantile summary gauges ride alongside the histogram.
  for (const char* q : {"_p50", "_p95", "_p99"}) {
    EXPECT_NE(reply.body.find(std::string("# TYPE vapro_test_latency") + q +
                              " gauge"),
              std::string::npos)
        << q;
    EXPECT_NE(reply.body.find(std::string("vapro_test_latency") + q + " "),
              std::string::npos)
        << q;
  }
}

TEST(Exposition, RootServesTheEndpointIndex) {
  obs::ObsContext ctx;
  ASSERT_NE(ctx.start_exposition(0), nullptr);
  HttpReply reply = http_get(ctx.exposition()->port(), "/");
  ASSERT_TRUE(reply.ok);
  EXPECT_EQ(reply.status, 200);
  EXPECT_EQ(reply.content_type, "application/json");
  EXPECT_NE(reply.body.find("\"service\":\"vapro\""), std::string::npos);
  for (const char* path : {"\"/\"", "\"/metrics\"", "\"/healthz\""})
    EXPECT_NE(reply.body.find(path), std::string::npos)
        << path << " missing from " << reply.body;

  // Routes added later appear in the live index (and in /healthz).
  ctx.exposition()->add_route("/v1/latency", [] {
    obs::HttpResponse r;
    r.body = "{}";
    return r;
  });
  HttpReply after = http_get(ctx.exposition()->port(), "/");
  ASSERT_TRUE(after.ok);
  EXPECT_NE(after.body.find("\"/v1/latency\""), std::string::npos);
  HttpReply healthz = http_get(ctx.exposition()->port(), "/healthz");
  ASSERT_TRUE(healthz.ok);
  EXPECT_NE(healthz.body.find("\"endpoints\""), std::string::npos);
  EXPECT_NE(healthz.body.find("\"/v1/latency\""), std::string::npos);
}

TEST(Exposition, HealthzReportsLiveness) {
  obs::ObsContext ctx;
  ASSERT_NE(ctx.start_exposition(0), nullptr);
  HttpReply reply = http_get(ctx.exposition()->port(), "/healthz");
  ASSERT_TRUE(reply.ok);
  EXPECT_EQ(reply.status, 200);
  EXPECT_EQ(reply.content_type, "application/json");
  EXPECT_NE(reply.body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(reply.body.find("\"windows\""), std::string::npos);
  EXPECT_NE(reply.body.find("\"last_window_age_seconds\""),
            std::string::npos);
}

TEST(Exposition, HealthzReportsPipelineDepthAndBuildCapabilities) {
  obs::ObsContext ctx;
  ASSERT_NE(ctx.start_exposition(0), nullptr);
  HttpReply before = http_get(ctx.exposition()->port(), "/healthz");
  ASSERT_TRUE(before.ok);
  EXPECT_NE(before.body.find("\"uptime_seconds\":"), std::string::npos);
  EXPECT_NE(before.body.find("\"journal_events\":"), std::string::npos);
  // No pipelined server has published a depth gauge yet: the field reads
  // null, and the probe must not have registered a zero gauge either.
  EXPECT_NE(before.body.find("\"pipeline_depth\":null"), std::string::npos);
  HttpReply metrics = http_get(ctx.exposition()->port(), "/metrics");
  ASSERT_TRUE(metrics.ok);
  EXPECT_EQ(metrics.body.find("vapro_pipeline_queue_depth"),
            std::string::npos);
  // The build-capability flag matches how this binary was compiled.
  const std::string flag = std::string("\"fault_injection\":") +
      (testing::fault_injection_compiled() ? "true" : "false");
  EXPECT_NE(before.body.find(flag), std::string::npos);

  // Once a pipelined AnalysisServer publishes its queue-depth gauge, the
  // health body reports the number.
  ctx.metrics().gauge("vapro.pipeline.queue_depth")->set(2.0);
  HttpReply after = http_get(ctx.exposition()->port(), "/healthz");
  ASSERT_TRUE(after.ok);
  EXPECT_NE(after.body.find("\"pipeline_depth\":2"), std::string::npos);
}

TEST(Exposition, UnknownRouteIs404) {
  obs::ObsContext ctx;
  ASSERT_NE(ctx.start_exposition(0), nullptr);
  HttpReply reply = http_get(ctx.exposition()->port(), "/nope");
  ASSERT_TRUE(reply.ok);
  EXPECT_EQ(reply.status, 404);
}

TEST(Exposition, ThrowingHandlerReturns503NotAHang) {
  obs::ObsContext ctx;
  ASSERT_NE(ctx.start_exposition(0), nullptr);
  ctx.exposition()->add_route("/boom", []() -> obs::HttpResponse {
    throw std::runtime_error("handler exploded");
  });
  // The raw-socket client sees a complete, well-framed 503 response — not
  // a dropped connection, not a hang, and the serve thread survives.
  HttpReply reply = http_get(ctx.exposition()->port(), "/boom");
  ASSERT_TRUE(reply.ok) << "connection was dropped instead of answered";
  EXPECT_EQ(reply.status, 503);
  EXPECT_NE(reply.body.find("handler exploded"), std::string::npos);
  // Later requests on other routes still work.
  HttpReply healthz = http_get(ctx.exposition()->port(), "/healthz");
  ASSERT_TRUE(healthz.ok);
  EXPECT_EQ(healthz.status, 200);
}

#if defined(VAPRO_FAULT_INJECTION) && VAPRO_FAULT_INJECTION

vapro::testing::FaultPlan expo_plan(const std::string& text) {
  vapro::testing::FaultPlan plan;
  std::string error;
  EXPECT_TRUE(vapro::testing::FaultPlan::parse(text, &plan, &error)) << error;
  return plan;
}

TEST(ExpositionFault, AcceptFaultDropsOneClientWithoutWedging) {
  obs::ObsContext ctx;
  ASSERT_NE(ctx.start_exposition(0), nullptr);
  vapro::testing::FaultScope scope(
      expo_plan("seed 1\nexpo.accept on=1 fail\n"));
  // First connection is dropped at accept; the reply never completes.
  HttpReply dropped = http_get(ctx.exposition()->port(), "/healthz");
  EXPECT_FALSE(dropped.ok);
  EXPECT_EQ(ctx.exposition()->accept_faults(), 1u);
  // The serve loop is still alive for the next client.
  HttpReply reply = http_get(ctx.exposition()->port(), "/healthz");
  ASSERT_TRUE(reply.ok);
  EXPECT_EQ(reply.status, 200);
}

TEST(ExpositionFault, MidResponseCloseTruncatesBody) {
  obs::ObsContext ctx;
  ctx.metrics().counter("vapro.test.padding")->inc(1);
  ASSERT_NE(ctx.start_exposition(0), nullptr);
  vapro::testing::FaultScope scope(
      expo_plan("seed 1\nexpo.send on=1 close\n"));
  // Half the payload arrives, then the peer vanishes: the client's
  // Content-Length check must fail rather than trust the short body.
  HttpReply truncated = http_get(ctx.exposition()->port(), "/metrics");
  if (truncated.ok) {
    // Header survived the cut: the body must be visibly short.
    const std::size_t cl = truncated.raw.find("Content-Length: ");
    ASSERT_NE(cl, std::string::npos);
    const std::size_t content_length = static_cast<std::size_t>(
        std::strtoull(truncated.raw.c_str() + cl + 16, nullptr, 10));
    EXPECT_LT(truncated.body.size(), content_length);
  }
  // Next scrape is whole again.
  HttpReply reply = http_get(ctx.exposition()->port(), "/metrics");
  ASSERT_TRUE(reply.ok);
  EXPECT_EQ(reply.status, 200);
}

#endif  // VAPRO_FAULT_INJECTION

TEST(Exposition, PeerResetMidResponseIsACountedDropNotACrash) {
  obs::ObsContext ctx;
  // Pad /metrics far past the loopback socket buffers so the server is
  // still send()ing when the peer resets — the EPIPE/ECONNRESET path a
  // ^C'd curl or a timed-out scraper takes.  Without SIGPIPE hardening
  // this test kills the process instead of failing an expectation.
  for (int i = 0; i < 100000; ++i)
    ctx.metrics().counter("vapro.test.pad_" + std::to_string(i))->inc(1);
  ASSERT_NE(ctx.start_exposition(0), nullptr);
  const int port = ctx.exposition()->port();

  bool dropped = false;
  for (int attempt = 0; attempt < 20 && !dropped; ++attempt) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    const char req[] =
        "GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n";
    ASSERT_GT(::send(fd, req, sizeof(req) - 1, 0), 0);
    // Wait for the first response byte so the server is provably mid-send,
    // then close with an immediate RST (SO_LINGER 0): the megabytes still
    // queued have nowhere to go and the server's next send() must fail.
    char c;
    (void)::recv(fd, &c, 1, 0);
    linger lg{};
    lg.l_onoff = 1;
    lg.l_linger = 0;
    ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
    ::close(fd);
    // The drop is counted on the serve thread; give it a beat.
    for (int spin = 0; spin < 200 && ctx.exposition()->send_drops() == 0;
         ++spin)
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    dropped = ctx.exposition()->send_drops() >= 1;
  }
  EXPECT_TRUE(dropped)
      << "peer reset mid-response never registered as a send drop";
  // The serve loop survived: a fresh scrape completes whole.
  HttpReply reply = http_get(port, "/metrics");
  ASSERT_TRUE(reply.ok);
  EXPECT_EQ(reply.status, 200);
}

TEST(Exposition, PortInUseFailsWithReadableError) {
  obs::ExpositionServer first;
  std::string error;
  ASSERT_TRUE(first.start(0, &error)) << error;
  obs::ExpositionServer second;
  EXPECT_FALSE(second.start(first.port(), &error));
  EXPECT_FALSE(error.empty());
  EXPECT_NE(error.find(std::to_string(first.port())), std::string::npos)
      << "error should name the port: " << error;
  EXPECT_FALSE(second.running());
}

TEST(Exposition, RequestCounterAdvances) {
  obs::ObsContext ctx;
  ASSERT_NE(ctx.start_exposition(0), nullptr);
  const auto before = ctx.exposition()->requests_served();
  ASSERT_TRUE(http_get(ctx.exposition()->port(), "/healthz").ok);
  ASSERT_TRUE(http_get(ctx.exposition()->port(), "/metrics").ok);
  EXPECT_EQ(ctx.exposition()->requests_served(), before + 2);
}

// Scrape every route from several client threads while the analysis runs:
// the /v1 routes lock the server's live mutex against process_window, so
// this doubles as a deadlock/data-race check (run under TSan in CI).
TEST(Exposition, ConcurrentScrapeDuringAnalysis) {
  sim::SimConfig cfg;
  cfg.ranks = 16;
  cfg.cores_per_node = 8;
  sim::Simulator simulator(cfg);

  obs::ObsContext ctx;
  std::string error;
  ASSERT_NE(ctx.start_exposition(0, &error), nullptr) << error;
  const int port = ctx.exposition()->port();

  core::VaproOptions opts;
  opts.window_seconds = 0.05;
  opts.obs = &ctx;
  core::VaproSession session(simulator, opts);

  std::atomic<bool> done{false};
  std::atomic<int> scrapes{0};
  std::vector<std::thread> scrapers;
  const char* kPaths[] = {"/",           "/metrics",    "/healthz",
                          "/v1/heatmap", "/v1/variance", "/v1/latency",
                          "/v1/critical_path"};
  for (const char* path : kPaths) {
    scrapers.emplace_back([&, path] {
      while (!done.load(std::memory_order_relaxed)) {
        HttpReply reply = http_get(port, path);
        ASSERT_TRUE(reply.ok) << path;
        ASSERT_EQ(reply.status, 200) << path;
        ASSERT_FALSE(reply.body.empty()) << path;
        scrapes.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  apps::NpbParams p;
  p.iters = 60;
  simulator.run(apps::cg(p));
  done.store(true);
  for (auto& t : scrapers) t.join();
  EXPECT_GT(scrapes.load(), 4);

  // After the run the snapshot routes must agree with the session itself.
  HttpReply variance = http_get(port, "/v1/variance");
  ASSERT_TRUE(variance.ok);
  EXPECT_EQ(variance.content_type, "application/json");
  std::ostringstream want_windows;
  want_windows << "\"windows\":" << session.server().windows_processed();
  EXPECT_NE(variance.body.find(want_windows.str()), std::string::npos)
      << variance.body;

  // So must the self-diagnosis routes: every processed window has a
  // latency record, and the critical path names a dominant stage.
  HttpReply latency = http_get(port, "/v1/latency");
  ASSERT_TRUE(latency.ok);
  EXPECT_EQ(latency.content_type, "application/json");
  EXPECT_NE(latency.body.find(want_windows.str()), std::string::npos)
      << latency.body;
  HttpReply critical = http_get(port, "/v1/critical_path");
  ASSERT_TRUE(critical.ok);
  EXPECT_NE(critical.body.find("\"dominant\":\""), std::string::npos)
      << critical.body;
}

}  // namespace
}  // namespace vapro
