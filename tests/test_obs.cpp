// Self-telemetry subsystem (src/obs): registry semantics, quantile
// extraction against known distributions, concurrency, Chrome-trace JSON
// validity, and end-to-end PipelineStats invariants over a real
// VaproSession run.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "src/apps/npb.hpp"
#include "src/core/vapro.hpp"
#include "src/obs/context.hpp"
#include "src/sim/runtime.hpp"

namespace vapro::obs {
namespace {

// --- a minimal JSON validator (no external deps) -------------------------
// Recursive-descent scan; returns true iff the whole string is one valid
// JSON value.  Good enough to assert "parseable by Perfetto/chrome".
class JsonScanner {
 public:
  explicit JsonScanner(const std::string& s) : s_(s) {}
  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string_lit();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!string_lit()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string_lit() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }
  bool literal(const char* lit) {
    const std::string l(lit);
    if (s_.compare(pos_, l.size(), l) != 0) return false;
    pos_ += l.size();
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// --- registry semantics ---------------------------------------------------

TEST(Metrics, CounterAndGaugeBasics) {
  MetricsRegistry reg;
  Counter* c = reg.counter("a.count");
  EXPECT_EQ(c->value(), 0u);
  c->inc();
  c->inc(41);
  EXPECT_EQ(c->value(), 42u);
  // Same name returns the same instrument.
  EXPECT_EQ(reg.counter("a.count"), c);
  EXPECT_EQ(reg.counter("a.count")->value(), 42u);

  Gauge* g = reg.gauge("a.gauge");
  g->set(2.5);
  EXPECT_DOUBLE_EQ(g->value(), 2.5);
  g->add(-1.0);
  EXPECT_DOUBLE_EQ(g->value(), 1.5);
  EXPECT_EQ(reg.gauge("a.gauge"), g);
}

TEST(Metrics, HistogramCountSumAndBucketBounds) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  h.record(1e-3);
  h.record(2e-3);
  h.record(4e-3);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_NEAR(h.sum_seconds(), 7e-3, 1e-12);
  EXPECT_NEAR(h.mean_seconds(), 7e-3 / 3, 1e-12);
  // Bucket bounds are contiguous and doubling.
  for (std::size_t i = 1; i + 1 < Histogram::kBuckets; ++i) {
    EXPECT_DOUBLE_EQ(Histogram::bucket_hi(i), Histogram::bucket_lo(i + 1));
    EXPECT_DOUBLE_EQ(Histogram::bucket_hi(i), 2 * Histogram::bucket_lo(i));
  }
}

TEST(Metrics, QuantilesAgainstKnownDistribution) {
  // 1000 samples uniform over (0, 100 ms]: quantile(q) ≈ q·100 ms.  Log2
  // buckets bound the relative error by 2×, so assert within a factor of 2.
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.record(i * 0.1e-3);
  for (double q : {0.5, 0.95, 0.99}) {
    const double expected = q * 100e-3;
    const double got = h.quantile(q);
    EXPECT_GE(got, expected / 2) << "q=" << q;
    EXPECT_LE(got, expected * 2) << "q=" << q;
  }
  // Monotonicity.
  EXPECT_LE(h.quantile(0.5), h.quantile(0.95));
  EXPECT_LE(h.quantile(0.95), h.quantile(0.99));
  // A point mass lands inside its own bucket.
  Histogram point;
  for (int i = 0; i < 100; ++i) point.record(3e-3);
  const double p50 = point.quantile(0.5);
  EXPECT_GE(p50, 3e-3 / 2);
  EXPECT_LE(p50, 2 * 3e-3);
}

TEST(Metrics, ConcurrentIncrementsAreLossless) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  Counter* c = reg.counter("hot");
  Histogram* h = reg.histogram("lat");
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c->inc();
        h->record(1e-4);
      }
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_EQ(c->value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h->count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Metrics, ZeroAndNegativeRecordsClampToTheFirstBucket) {
  Histogram h;
  h.record(0.0);
  h.record(-3.5);                       // negative durations clamp to 0
  h.record(Histogram::kMinSeconds / 2); // sub-resolution stays in bucket 0
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.bucket_count(0), 3u);
  EXPECT_DOUBLE_EQ(h.sum_seconds(), Histogram::kMinSeconds / 2);
  // Everything lives in bucket 0, so every quantile is within it.
  EXPECT_LE(h.quantile(0.99), Histogram::bucket_hi(0));
}

TEST(Metrics, OversizedRecordsLandInTheOverflowBucket) {
  Histogram h;
  h.record(1e6);   // ~11 days, far past the ~54 s top bound
  h.record(1e9);
  EXPECT_EQ(h.bucket_count(Histogram::kBuckets - 1), 2u);
  EXPECT_DOUBLE_EQ(h.sum_seconds(), 1e6 + 1e9);  // sum keeps the true value
  // Quantiles interpolate within the overflow bucket and never
  // extrapolate past its top bound.
  EXPECT_GE(h.quantile(0.5), Histogram::bucket_lo(Histogram::kBuckets - 1));
  EXPECT_LE(h.quantile(0.99), Histogram::bucket_hi(Histogram::kBuckets - 1));
}

TEST(Metrics, EmptySnapshotQuantilesAreZeroAndMergeIsAdditive) {
  Histogram h;
  const HistogramSnapshot empty = h.snapshot();
  EXPECT_EQ(empty.count, 0u);
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(empty.quantile(0.99), 0.0);
  EXPECT_DOUBLE_EQ(empty.mean_seconds(), 0.0);

  // Merging an empty snapshot is the identity; merging two shards is the
  // same distribution as one histogram that saw both streams.
  Histogram a, b, both;
  for (int i = 0; i < 40; ++i) {
    a.record(1e-3);
    both.record(1e-3);
  }
  for (int i = 0; i < 10; ++i) {
    b.record(64e-3);
    both.record(64e-3);
  }
  HistogramSnapshot merged = a.snapshot();
  merged.merge(empty);
  merged.merge(b.snapshot());
  const HistogramSnapshot expect = both.snapshot();
  EXPECT_EQ(merged.count, expect.count);
  EXPECT_DOUBLE_EQ(merged.sum_seconds, expect.sum_seconds);
  for (std::size_t i = 0; i < HistogramSnapshot::kBuckets; ++i)
    EXPECT_EQ(merged.buckets[i], expect.buckets[i]) << "bucket " << i;
  EXPECT_DOUBLE_EQ(merged.quantile(0.5), expect.quantile(0.5));
  EXPECT_DOUBLE_EQ(merged.quantile(0.99), expect.quantile(0.99));
}

TEST(Metrics, ConcurrentRecordAndMergeNeverTearASnapshot) {
  // Recorders hammer one histogram while a reader repeatedly snapshots and
  // merges into an accumulator.  Run under TSan this doubles as a data-race
  // check; the invariants below hold in any interleaving: bucket sums never
  // exceed the final count, and the final snapshot is exact.
  Histogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25000;
  std::vector<std::thread> writers;
  std::atomic<bool> done{false};
  std::uint64_t snapshots_taken = 0;
  std::thread reader([&] {
    while (!done.load(std::memory_order_relaxed)) {
      const HistogramSnapshot snap = h.snapshot();
      std::uint64_t in_buckets = 0;
      for (std::uint64_t b : snap.buckets) in_buckets += b;
      ASSERT_LE(in_buckets,
                static_cast<std::uint64_t>(kThreads) * kPerThread);
      ++snapshots_taken;
    }
  });
  for (int t = 0; t < kThreads; ++t)
    writers.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.record(2e-3);
    });
  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_GT(snapshots_taken, 0u);
  const HistogramSnapshot final_snap = h.snapshot();
  EXPECT_EQ(final_snap.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::uint64_t in_buckets = 0;
  for (std::uint64_t b : final_snap.buckets) in_buckets += b;
  EXPECT_EQ(in_buckets, final_snap.count);
}

TEST(Metrics, RegistryJsonIsValid) {
  MetricsRegistry reg;
  reg.counter("c")->inc(7);
  reg.gauge("g")->set(1.25);
  reg.histogram("h")->record(2e-3);
  const std::string json = reg.to_json();
  EXPECT_TRUE(JsonScanner(json).valid()) << json;
  EXPECT_NE(json.find("\"c\":7"), std::string::npos);
}

// --- scoped timers + overhead ---------------------------------------------

TEST(Overhead, ScopedTimerAndAccountant) {
  MetricsRegistry reg;
  OverheadAccountant acct;
  Histogram* h = reg.histogram("span");
  {
    ScopedTimer timer(h, acct.tool_ns_cell());
  }
  EXPECT_EQ(h->count(), 1u);
  EXPECT_GT(acct.tool_seconds(), 0.0);
  acct.set_run_wall_seconds(1.0);
  EXPECT_GT(acct.tool_fraction_of_wall(), 0.0);
  EXPECT_LT(acct.tool_fraction_of_wall(), 1.0);
  EXPECT_TRUE(JsonScanner(acct.to_json()).valid());
}

// --- pipeline sinks --------------------------------------------------------

TEST(Pipeline, CollectingSinkTotalsEqualPerWindowSums) {
  CollectingSink sink;
  PipelineStats a;
  a.window = 0;
  a.fragments_drained = 10;
  a.clusters_formed = 3;
  a.stg_seconds = 0.5;
  a.cluster_seconds = 0.25;
  PipelineStats b;
  b.window = 1;
  b.fragments_drained = 32;
  b.carry_ins = 4;
  b.rare_clusters = 1;
  b.drain_seconds = 0.125;
  b.diagnose_seconds = 1.0;
  sink.on_window(a);
  sink.on_window(b);
  const PipelineStats t = sink.totals();
  EXPECT_EQ(t.fragments_drained, 42u);
  EXPECT_EQ(t.carry_ins, 4u);
  EXPECT_EQ(t.clusters_formed, 3u);
  EXPECT_EQ(t.rare_clusters, 1u);
  EXPECT_DOUBLE_EQ(t.stg_seconds, 0.5);
  EXPECT_DOUBLE_EQ(t.total_seconds(),
                   a.total_seconds() + b.total_seconds());
  EXPECT_TRUE(JsonScanner(sink.to_json()).valid());
}

// --- trace exporter --------------------------------------------------------

TEST(Trace, ChromeJsonIsParseableAndBalanced) {
  TraceRecorder rec;
  {
    TraceSpan outer(&rec, "outer", "test",
                    {TraceRecorder::arg("k", std::uint64_t{7})});
    TraceSpan inner(&rec, "inner", "test");
    rec.instant("marker", "test", {TraceRecorder::arg("s", "a \"quoted\"\n")});
  }
  const std::string json = rec.to_json();
  ASSERT_TRUE(JsonScanner(json).valid()) << json;

  // Complete (X) events are self-balanced; assert we only ever emit X/i,
  // with sane timestamps and durations.
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 3u);
  for (const ChromeEvent& ev : events) {
    EXPECT_TRUE(ev.phase == 'X' || ev.phase == 'i') << ev.phase;
    EXPECT_GE(ev.ts_us, 0.0);
    if (ev.phase == 'X') {
      EXPECT_GE(ev.dur_us, 0.0);
    }
  }
  // Nesting: inner completes before outer, and outer's span contains it.
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_EQ(events[2].name, "outer");
  EXPECT_LE(events[2].ts_us, events[1].ts_us);
  EXPECT_GE(events[2].ts_us + events[2].dur_us,
            events[1].ts_us + events[1].dur_us);
}

TEST(Trace, WriteJsonRoundTripsThroughDisk) {
  TraceRecorder rec;
  rec.instant("x", "test");
  const std::string path = ::testing::TempDir() + "obs_trace.json";
  ASSERT_TRUE(rec.write_json(path));
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, rec.to_json());
  EXPECT_TRUE(JsonScanner(contents).valid());
  std::remove(path.c_str());
}

// --- end-to-end over a real session ----------------------------------------

TEST(ObsSession, PipelineStatsMatchSessionAndStagesSumToTotals) {
  sim::SimConfig cfg;
  cfg.ranks = 16;
  cfg.cores_per_node = 8;
  cfg.seed = 7;
  sim::Simulator simulator(cfg);

  ObsContext ctx;
  ctx.enable_trace();
  core::VaproOptions opts;
  opts.window_seconds = 0.1;
  opts.analysis_threads = 4;  // exercise cluster.shard spans
  opts.obs = &ctx;
  core::VaproSession session(simulator, opts);
  apps::NpbParams p;
  p.iters = 30;
  simulator.run(apps::cg(p));

  const auto& windows = ctx.windows().windows();
  ASSERT_EQ(windows.size(), session.server().windows_processed());
  ASSERT_GT(windows.size(), 0u);

  // Per-window: the published total is exactly the per-stage sum.
  for (const PipelineStats& w : windows) {
    EXPECT_DOUBLE_EQ(w.total_seconds(),
                     w.drain_seconds + w.stg_seconds + w.cluster_seconds +
                         w.normalize_seconds + w.deposit_seconds +
                         w.diagnose_seconds + w.publish_seconds);
    EXPECT_GT(w.total_seconds(), 0.0);
  }

  // Session totals equal the sum of the per-window snapshots.
  const PipelineStats totals = ctx.windows().totals();
  std::size_t fragments = 0;
  for (const PipelineStats& w : windows) fragments += w.fragments_drained;
  EXPECT_EQ(totals.fragments_drained, fragments);
  EXPECT_EQ(totals.fragments_drained, session.server().fragments_processed());

  // Registry counters agree with the session's own bookkeeping.
  EXPECT_EQ(ctx.metrics().counter("vapro.server.windows_total")->value(),
            session.server().windows_processed());
  EXPECT_EQ(ctx.metrics().counter("vapro.server.fragments_total")->value(),
            session.server().fragments_processed());
  // The client publishes at drain time; the final partial window may still
  // be buffered, so the published tally can only lag the session's.
  EXPECT_LE(ctx.metrics().counter("vapro.client.fragments_total")->value(),
            session.fragments_recorded());
  EXPECT_GT(ctx.metrics().counter("vapro.client.fragments_total")->value(),
            0u);

  // Tool time was accounted and a stage histogram saw every window.
  EXPECT_GT(ctx.overhead().tool_seconds(), 0.0);
  EXPECT_EQ(ctx.metrics().histogram("vapro.server.window_seconds")->count(),
            windows.size());

  // The trace captured analysis windows and parallel cluster shards, and
  // the full export is valid JSON.
  // The handoff flow arrow ends with an 'f' event carrying the consuming
  // span's name, so filter on the 'X' phase to count spans exactly once.
  std::size_t window_events = 0, shard_events = 0;
  for (const ChromeEvent& ev : ctx.trace()->snapshot()) {
    if (ev.name == "analysis.window" && ev.phase == 'X') ++window_events;
    if (ev.name == "cluster.shard") ++shard_events;
  }
  EXPECT_EQ(window_events, windows.size());
  EXPECT_GT(shard_events, 0u);
  // Every window fanned out over the server's persistent 4-lane pool.
  for (const PipelineStats& w : windows) EXPECT_EQ(w.cluster_shards, 4u);
  EXPECT_TRUE(JsonScanner(ctx.trace()->to_json()).valid());
  EXPECT_TRUE(JsonScanner(ctx.metrics_json()).valid());
}

TEST(ObsSession, ExtraSinkSeesEveryWindow) {
  class CountingSink final : public PipelineSink {
   public:
    void on_window(const PipelineStats&) override { ++seen; }
    std::size_t seen = 0;
  };

  sim::SimConfig cfg;
  cfg.ranks = 8;
  cfg.cores_per_node = 8;
  sim::Simulator simulator(cfg);
  ObsContext ctx;
  CountingSink counting;
  ctx.add_sink(&counting);
  core::VaproOptions opts;
  opts.window_seconds = 0.1;
  opts.obs = &ctx;
  core::VaproSession session(simulator, opts);
  apps::NpbParams p;
  p.iters = 20;
  simulator.run(apps::cg(p));
  EXPECT_EQ(counting.seen, session.server().windows_processed());
  EXPECT_EQ(counting.seen, ctx.windows().windows().size());
}

}  // namespace
}  // namespace vapro::obs
