// The staged concurrent pipeline, in isolation and end-to-end:
//   * BoundedQueue — FIFO order, backpressure blocking, close semantics;
//   * StageExecutor — strict FIFO on one worker, drain() as the
//     happens-before sync point, exception containment, backpressure;
//   * WorkerPool — exactly-once task claiming across lanes, exception
//     containment, the per-lane completion hook;
//   * ClusterSeedCache — first-window equivalence with the uncached sweep,
//     seed stability across recurring windows, invalidation;
//   * sharded clustering & region growing — lane-count invariance,
//     permutation stability, seed-cache equivalence under shards;
//   * AnalysisServer — byte-identical detection state at any pipeline
//     depth/thread/cache combination (the property tool_vapro_stress
//     --equivalence fuzzes at scale).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "src/core/server.hpp"
#include "src/util/pipeline.hpp"

namespace vapro {
namespace {

// --- BoundedQueue ---------------------------------------------------------

TEST(BoundedQueue, FifoOrder) {
  util::BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.push(i));
  EXPECT_EQ(q.depth(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(q.pop(), i);
}

TEST(BoundedQueue, PushBlocksUntilPopMakesRoom) {
  util::BoundedQueue<int> q(1);
  EXPECT_TRUE(q.push(1));
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.push(2));  // blocks: queue is at capacity
    second_pushed = true;
  });
  // The producer must be stuck until the consumer makes room.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_pushed.load());
  EXPECT_EQ(q.pop(), 1);
  producer.join();
  EXPECT_TRUE(second_pushed.load());
  EXPECT_EQ(q.pop(), 2);
  EXPECT_GE(q.stalls(), 1u);
}

TEST(BoundedQueue, CloseDrainsBacklogThenSignalsEnd) {
  util::BoundedQueue<std::string> q(4);
  EXPECT_TRUE(q.push("a"));
  EXPECT_TRUE(q.push("b"));
  q.close();
  EXPECT_FALSE(q.push("c"));  // closed: rejected
  EXPECT_EQ(q.pop(), "a");    // backlog still drains
  EXPECT_EQ(q.pop(), "b");
  EXPECT_EQ(q.pop(), std::nullopt);  // termination signal
}

TEST(BoundedQueue, CloseUnblocksWaitingProducer) {
  util::BoundedQueue<int> q(1);
  EXPECT_TRUE(q.push(1));
  std::thread producer([&] { EXPECT_FALSE(q.push(2)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  producer.join();
}

TEST(BoundedQueue, CloseUnblocksEveryBlockedProducerAtOnce) {
  // The ingest plane's shutdown shape: several transport threads stuck in
  // push() against a full queue when the session closes.  Every one must
  // return false promptly — a single notify would strand the rest.
  util::BoundedQueue<int> q(1);
  EXPECT_TRUE(q.push(0));
  std::atomic<int> rejected{0};
  std::vector<std::thread> producers;
  for (int i = 0; i < 4; ++i)
    producers.emplace_back([&q, &rejected, i] {
      if (!q.push(i + 1)) rejected.fetch_add(1);
    });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(rejected.load(), 0) << "producers should be blocked, not failed";
  q.close();
  for (std::thread& t : producers) t.join();
  EXPECT_EQ(rejected.load(), 4);
  // The item admitted before close still drains, then the end signal.
  EXPECT_EQ(q.pop(), 0);
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(BoundedQueue, CloseUnblocksWaitingConsumer) {
  util::BoundedQueue<int> q(4);
  std::atomic<bool> got_end{false};
  std::thread consumer([&] {
    // Blocks on the empty queue until close(), then must see the
    // termination signal — not hang, not a phantom item.
    got_end = (q.pop() == std::nullopt);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(got_end.load());
  q.close();
  consumer.join();
  EXPECT_TRUE(got_end.load());
}

TEST(BoundedQueue, ConsumerExceptionLeavesTheQueueUsable) {
  // A consumer that throws mid-drain (the StageExecutor and TenantSession
  // loops both catch per-item) must not poison the queue: the remaining
  // backlog and the close handshake still work.
  util::BoundedQueue<int> q(4);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(q.push(i));
  int consumed = 0;
  try {
    while (auto item = q.try_pop()) {
      if (*item == 1) throw std::runtime_error("consumer exploded");
      ++consumed;
    }
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(consumed, 1);
  EXPECT_EQ(q.depth(), 1u);
  EXPECT_EQ(q.pop(), 2);  // backlog survives the thrown item
  q.close();
  EXPECT_EQ(q.pop(), std::nullopt);
  EXPECT_TRUE(q.closed());
}

TEST(BoundedQueue, TryPushAndTryPopRespectCapacityAndClose) {
  util::BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  int overflow = 3;
  EXPECT_FALSE(q.try_push(std::move(overflow)));
  EXPECT_EQ(overflow, 3) << "rejected item must stay owned by the caller";
  // Evict-oldest-and-retry, the kShedOldest admission idiom.
  EXPECT_EQ(q.try_pop(), 1);
  EXPECT_TRUE(q.try_push(std::move(overflow)));
  q.close();
  int late = 9;
  EXPECT_FALSE(q.try_push(std::move(late)));  // closed: rejected, not queued
  EXPECT_EQ(q.try_pop(), 2);  // backlog still drains through try_pop
  EXPECT_EQ(q.try_pop(), 3);
  EXPECT_EQ(q.try_pop(), std::nullopt);
}

// --- StageExecutor --------------------------------------------------------

TEST(StageExecutor, RunsJobsInFifoOrderWithDrainSync) {
  util::StageExecutor exec(4);
  // No lock on `order`: the single worker is the only writer and drain()
  // establishes the happens-before edge for the reads below.
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    EXPECT_TRUE(exec.submit([&order, i] { order.push_back(i); }));
  exec.drain();
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(exec.jobs_run(), 10u);
  EXPECT_EQ(exec.depth(), 0u);
}

TEST(StageExecutor, DrainOnIdleReturnsImmediately) {
  util::StageExecutor exec(2);
  exec.drain();
  EXPECT_EQ(exec.jobs_run(), 0u);
}

TEST(StageExecutor, SurvivesThrowingJobs) {
  util::StageExecutor exec(4);
  std::atomic<int> ran{0};
  EXPECT_TRUE(exec.submit([] { throw std::runtime_error("stage boom"); }));
  EXPECT_TRUE(exec.submit([&ran] { ++ran; }));
  exec.drain();
  EXPECT_EQ(ran.load(), 1);
  EXPECT_EQ(exec.jobs_run(), 2u);
  EXPECT_EQ(exec.jobs_failed(), 1u);
}

TEST(StageExecutor, BackpressureBlocksSubmitAtMaxPending) {
  util::StageExecutor exec(1);
  std::atomic<bool> release{false};
  std::atomic<bool> third_submitted{false};
  // Job 1 occupies the worker until released; job 2 fills the queue.
  exec.submit([&release] {
    while (!release.load()) std::this_thread::sleep_for(
        std::chrono::milliseconds(1));
  });
  exec.submit([] {});
  std::thread submitter([&] {
    exec.submit([] {});  // blocks: one pending already queued
    third_submitted = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(third_submitted.load());
  release = true;
  submitter.join();
  EXPECT_TRUE(third_submitted.load());
  exec.drain();
  EXPECT_EQ(exec.jobs_run(), 3u);
  EXPECT_GE(exec.stalls(), 1u);
}

TEST(StageExecutor, DestructorRunsRemainingJobs) {
  std::atomic<int> ran{0};
  {
    util::StageExecutor exec(8);
    for (int i = 0; i < 5; ++i) exec.submit([&ran] { ++ran; });
  }  // dtor closes, worker drains the backlog, then joins
  EXPECT_EQ(ran.load(), 5);
}

// --- wait-time accounting -------------------------------------------------
//
// A manually advanced clock that also counts now_seconds() reads.  A test
// can wait until another thread has taken its wait-entry timestamp (one
// clock read) before advancing time, which makes every producer-block /
// consumer-idle / handoff assertion an exact equality instead of a
// sleep-based lower bound.

class CountingClock final : public util::Clock {
 public:
  double now_seconds() const override {
    ++reads_;
    return now_.load();
  }
  void sleep_for(double) override {}
  void advance(double seconds) { now_ = now_.load() + seconds; }
  std::uint64_t reads() const { return reads_.load(); }
  void wait_for_reads(std::uint64_t n) const {
    while (reads_.load() < n) std::this_thread::yield();
  }

 private:
  mutable std::atomic<std::uint64_t> reads_{0};
  std::atomic<double> now_{0.0};
};

TEST(BoundedQueue, AccountsHandoffLatencyFromEnqueueToDequeue) {
  CountingClock clock;
  util::BoundedQueue<int> q(4, &clock);
  EXPECT_TRUE(q.push(1));  // enqueued at t=0
  clock.advance(2.0);
  EXPECT_TRUE(q.push(2));  // enqueued at t=2
  clock.advance(1.0);      // both popped at t=3
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_DOUBLE_EQ(q.handoff_seconds(), 4.0);  // (3-0) + (3-2)
  EXPECT_EQ(q.handoffs(), 2u);
  // Nothing ever blocked: no producer-block, no consumer-idle.
  EXPECT_DOUBLE_EQ(q.stall_seconds(), 0.0);
  EXPECT_EQ(q.stalls(), 0u);
  EXPECT_DOUBLE_EQ(q.idle_seconds(), 0.0);
  EXPECT_EQ(q.idle_waits(), 0u);
}

TEST(BoundedQueue, AccountsConsumerIdleWhileTheQueueIsEmpty) {
  CountingClock clock;
  util::BoundedQueue<int> q(2, &clock);
  std::thread consumer([&] { EXPECT_EQ(q.pop(), 7); });
  // pop() on an empty queue reads the clock once (its wait-entry
  // timestamp) before blocking; only then advance the clock.
  clock.wait_for_reads(1);
  clock.advance(1.5);
  EXPECT_TRUE(q.push(7));  // enqueued at t=1.5, wakes the consumer
  consumer.join();
  EXPECT_DOUBLE_EQ(q.idle_seconds(), 1.5);  // wait entry 0 → wake 1.5
  EXPECT_EQ(q.idle_waits(), 1u);
  EXPECT_DOUBLE_EQ(q.handoff_seconds(), 0.0);  // dequeued the same instant
  EXPECT_EQ(q.handoffs(), 1u);
  EXPECT_DOUBLE_EQ(q.stall_seconds(), 0.0);
}

TEST(BoundedQueue, AccountsProducerBlockWhileTheQueueIsFull) {
  CountingClock clock;
  util::BoundedQueue<int> q(1, &clock);
  EXPECT_TRUE(q.push(1));  // read #1: enqueued at t=0
  std::thread producer([&] { EXPECT_TRUE(q.push(2)); });
  // The blocked push takes its wait-entry timestamp (read #2) at t=0.
  clock.wait_for_reads(2);
  clock.advance(3.0);
  EXPECT_EQ(q.pop(), 1);  // frees the slot; item 1 handoff = 3.0
  producer.join();        // stall accounted: wait entry 0 → wake 3.0
  EXPECT_DOUBLE_EQ(q.stall_seconds(), 3.0);
  EXPECT_EQ(q.stalls(), 1u);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_DOUBLE_EQ(q.handoff_seconds(), 3.0);  // 3.0 (item 1) + 0.0 (item 2)
  EXPECT_DOUBLE_EQ(q.idle_seconds(), 0.0);
}

TEST(StageExecutor, AccountsIdleHandoffAndBusySeconds) {
  CountingClock clock;
  util::StageExecutor exec(2, &clock);
  // The freshly started worker reads the clock once on idle-wait entry.
  clock.wait_for_reads(1);
  clock.advance(1.5);  // the worker idles across this

  std::promise<void> gate;
  std::atomic<bool> started{false};
  ASSERT_TRUE(exec.submit([&] {  // submitted at t=1.5, starts immediately
    started = true;
    gate.get_future().wait();
  }));
  ASSERT_TRUE(exec.submit([] {}));  // submitted at t=1.5, queued behind it
  while (!started.load()) std::this_thread::yield();
  clock.advance(2.5);  // t=4.0: the first job is executing across this
  gate.set_value();
  exec.drain();

  EXPECT_EQ(exec.jobs_run(), 2u);
  EXPECT_EQ(exec.jobs_failed(), 0u);
  EXPECT_DOUBLE_EQ(exec.idle_seconds(), 1.5);  // before the first submit
  EXPECT_EQ(exec.idle_waits(), 1u);
  EXPECT_DOUBLE_EQ(exec.busy_seconds(), 2.5);  // job 1: 1.5→4.0; job 2: 0
  // Job 1 started the instant it was submitted; job 2 sat queued from
  // t=1.5 until the worker freed up at t=4.0.
  EXPECT_DOUBLE_EQ(exec.handoff_seconds(), 2.5);
  EXPECT_DOUBLE_EQ(exec.stall_seconds(), 0.0);
  EXPECT_EQ(exec.stalls(), 0u);
}

TEST(StageExecutor, AccountsSubmitStallUnderBackpressure) {
  CountingClock clock;
  util::StageExecutor exec(1, &clock);
  std::promise<void> gate;
  std::atomic<bool> started{false};
  ASSERT_TRUE(exec.submit([&] {  // occupies the worker
    started = true;
    gate.get_future().wait();
  }));
  while (!started.load()) std::this_thread::yield();
  ASSERT_TRUE(exec.submit([] {}));  // fills the single pending slot
  // With the worker wedged inside the gate the next clock read can only
  // be the third submit's wait-entry timestamp.
  const std::uint64_t reads_before = clock.reads();
  std::thread submitter([&] { EXPECT_TRUE(exec.submit([] {})); });
  clock.wait_for_reads(reads_before + 1);
  clock.advance(4.0);
  gate.set_value();  // worker dequeues the backlog, freeing the slot
  submitter.join();
  exec.drain();
  EXPECT_DOUBLE_EQ(exec.stall_seconds(), 4.0);  // wait entry 0 → wake 4.0
  EXPECT_EQ(exec.stalls(), 1u);
  EXPECT_EQ(exec.jobs_run(), 3u);
}

// --- WorkerPool -----------------------------------------------------------

TEST(WorkerPool, RunsEveryTaskExactlyOnceAcrossLanes) {
  util::WorkerPool pool(4);
  EXPECT_EQ(pool.lanes(), 4u);
  const std::size_t kTasks = 64;
  // No lock: every index is claimed by exactly one lane (the property
  // under test), and run() returning is the happens-before edge.
  std::vector<int> hits(kTasks, 0);
  const std::size_t failed =
      pool.run(kTasks, [&](std::size_t task, std::size_t lane) {
        ASSERT_LT(lane, 4u);
        ++hits[task];
      });
  EXPECT_EQ(failed, 0u);
  for (std::size_t i = 0; i < kTasks; ++i) EXPECT_EQ(hits[i], 1);
  EXPECT_EQ(pool.tasks_run(), kTasks);
  EXPECT_EQ(pool.tasks_failed(), 0u);
  EXPECT_EQ(pool.runs(), 1u);
  std::uint64_t lane_sum = 0;
  for (std::uint64_t n : pool.lane_task_counts()) lane_sum += n;
  EXPECT_EQ(lane_sum, kTasks);
}

TEST(WorkerPool, ContainsTaskExceptionsAndReturnsFailedCount) {
  util::WorkerPool pool(3);
  const std::size_t kTasks = 16;
  std::vector<int> hits(kTasks, 0);
  const std::size_t failed =
      pool.run(kTasks, [&](std::size_t task, std::size_t) {
        ++hits[task];
        if (task % 4 == 0) throw std::runtime_error("shard boom");
      });
  EXPECT_EQ(failed, 4u);  // tasks 0, 4, 8, 12
  EXPECT_EQ(pool.tasks_failed(), 4u);
  EXPECT_EQ(pool.tasks_run(), kTasks);  // a throwing task still counts as run
  for (std::size_t i = 0; i < kTasks; ++i) EXPECT_EQ(hits[i], 1);
  // The pool survives for the next run.
  EXPECT_EQ(pool.run(4, [](std::size_t, std::size_t) {}), 0u);
  EXPECT_EQ(pool.tasks_run(), kTasks + 4);
}

TEST(WorkerPool, LaneDoneFiresOncePerActiveLaneBeforeRunReturns) {
  util::WorkerPool pool(3);
  std::mutex mu;
  std::vector<util::WorkerPool::LaneReport> reports;
  pool.run(
      10, [](std::size_t, std::size_t) {},
      [&](const util::WorkerPool::LaneReport& r) {
        std::lock_guard<std::mutex> lock(mu);
        reports.push_back(r);
      });
  // run() returned, so every report is in: one per lane that ran work,
  // and their task counts account for the whole run.
  ASSERT_FALSE(reports.empty());
  ASSERT_LE(reports.size(), 3u);
  std::vector<bool> seen(3, false);
  std::uint64_t total = 0;
  for (const auto& r : reports) {
    ASSERT_LT(r.lane, 3u);
    EXPECT_FALSE(seen[r.lane]) << "lane " << r.lane << " reported twice";
    seen[r.lane] = true;
    EXPECT_GT(r.tasks, 0u);
    total += r.tasks;
  }
  EXPECT_EQ(total, 10u);
}

TEST(WorkerPool, SingleLanePoolRunsInlineOnTheCaller) {
  util::WorkerPool pool(1);
  EXPECT_EQ(pool.lanes(), 1u);
  const std::thread::id caller = std::this_thread::get_id();
  pool.run(5, [&](std::size_t, std::size_t lane) {
    EXPECT_EQ(lane, 0u);
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
  EXPECT_EQ(pool.tasks_run(), 5u);
}

TEST(WorkerPool, ZeroTasksIsANoOp) {
  util::WorkerPool pool(2);
  EXPECT_EQ(pool.run(0, [](std::size_t, std::size_t) { FAIL(); }), 0u);
  EXPECT_EQ(pool.tasks_run(), 0u);
  EXPECT_EQ(pool.runs(), 0u);
}

// --- ClusterSeedCache -----------------------------------------------------

core::Fragment vertex_frag(int rank, core::StateKey key, double start,
                           double bytes, int peer) {
  core::Fragment f;
  f.kind = core::FragmentKind::kCommunication;
  f.op = sim::OpKind::kAllreduce;
  f.rank = rank;
  f.from = key;
  f.to = key;
  f.start_time = start;
  f.end_time = start + 0.01;
  f.args.bytes = bytes;
  f.args.peer = peer;
  return f;
}

// Two workload classes per window on one vertex, repeated across windows.
core::Stg seeded_stg(core::StateKey* key, int window) {
  core::Stg stg(core::StgMode::kContextFree);
  sim::InvocationInfo info;
  info.site = 7;
  info.kind = sim::OpKind::kAllreduce;
  *key = stg.touch_vertex(info);
  for (int i = 0; i < 8; ++i) {
    stg.add_fragment(
        vertex_frag(i, *key, window * 1.0 + 0.1 * i, 1024.0, 3));
    stg.add_fragment(
        vertex_frag(i, *key, window * 1.0 + 0.1 * i + 0.05, 65536.0, 9));
  }
  return stg;
}

TEST(ClusterSeedCache, EmptyCacheMatchesUncachedSweep) {
  core::StateKey key;
  core::Stg stg = seeded_stg(&key, 0);
  core::ClusterOptions opts;
  core::ClusteringResult plain = core::cluster_stg_parallel(stg, opts, 1);
  core::ClusterSeedCache cache;
  core::ClusteringResult cached =
      core::cluster_stg_parallel(stg, opts, 1, nullptr, &cache);
  ASSERT_EQ(cached.clusters.size(), plain.clusters.size());
  for (std::size_t c = 0; c < plain.clusters.size(); ++c) {
    EXPECT_EQ(cached.clusters[c].members, plain.clusters[c].members);
    EXPECT_DOUBLE_EQ(cached.clusters[c].seed_norm, plain.clusters[c].seed_norm);
  }
  // A cold cache is all misses.
  EXPECT_EQ(cache.seed_hits(), 0u);
  EXPECT_GT(cache.seed_misses(), 0u);
  EXPECT_EQ(cache.entries(), 1u);
}

TEST(ClusterSeedCache, RecurringWindowHitsCachedSeedsAndKeepsSeedNorm) {
  core::ClusterOptions opts;
  core::ClusterSeedCache cache;
  core::StateKey key;
  core::Stg w0 = seeded_stg(&key, 0);
  core::ClusteringResult first =
      core::cluster_stg_parallel(w0, opts, 1, nullptr, &cache);
  std::vector<double> first_norms;
  for (const auto& c : first.clusters) first_norms.push_back(c.seed_norm);

  core::Stg w1 = seeded_stg(&key, 1);
  core::ClusteringResult second =
      core::cluster_stg_parallel(w1, opts, 1, nullptr, &cache);
  // Same two classes: every fragment attaches to a cached seed, and the
  // clusters keep the first window's seed norms (stable baseline keys).
  EXPECT_GT(cache.seed_hits(), 0u);
  ASSERT_EQ(second.clusters.size(), first.clusters.size());
  std::vector<double> second_norms;
  for (const auto& c : second.clusters) second_norms.push_back(c.seed_norm);
  EXPECT_EQ(second_norms, first_norms);
}

TEST(ClusterSeedCache, InvalidateDropsSeeds) {
  core::ClusterOptions opts;
  core::ClusterSeedCache cache;
  core::StateKey key;
  core::Stg w0 = seeded_stg(&key, 0);
  core::cluster_stg_parallel(w0, opts, 1, nullptr, &cache);
  const std::uint64_t misses_before = cache.seed_misses();
  cache.invalidate();
  EXPECT_EQ(cache.invalidations(), 1u);
  // Next window misses again: the seeds are gone.
  core::Stg w1 = seeded_stg(&key, 1);
  core::cluster_stg_parallel(w1, opts, 1, nullptr, &cache);
  EXPECT_GT(cache.seed_misses(), misses_before);
}

TEST(ClusterSeedCache, PrepareAlignsEntriesWithKeys) {
  core::ClusterSeedCache cache;
  std::vector<core::ClusterSeedCache::Entry*> entries =
      cache.prepare({42, 7, 42});
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0], entries[2]);  // same key, same node
  EXPECT_NE(entries[0], entries[1]);
  EXPECT_EQ(cache.entries(), 2u);
}

// --- Sharded clustering & region growing properties -----------------------

// Several vertices so the shard pool has real multi-item fan-out: kSites
// vertices, each with two well-separated workload classes across kRanks
// ranks.  Every fragment gets a unique bytes value inside its class band,
// so norms are all distinct and clustering has no tie to break — the
// partition is then a pure function of the fragment SET, which is what
// the permutation property asserts.
core::Stg property_stg(unsigned shuffle_seed) {
  const int kSites = 5, kRanks = 6;
  std::vector<core::StateKey> keys;
  core::Stg stg(core::StgMode::kContextFree);
  for (int s = 0; s < kSites; ++s) {
    sim::InvocationInfo info;
    info.site = static_cast<sim::CallSiteId>(30 + s);
    info.kind = sim::OpKind::kAllreduce;
    keys.push_back(stg.touch_vertex(info));
  }
  std::vector<core::Fragment> frags;
  for (int s = 0; s < kSites; ++s) {
    for (int rank = 0; rank < kRanks; ++rank) {
      for (int klass = 0; klass < 2; ++klass) {
        // Class bands 1024 and 262144; the per-fragment offset keeps every
        // norm unique but well inside the 5% attachment threshold.
        const double base = klass == 0 ? 1024.0 : 262144.0;
        core::Fragment f = vertex_frag(
            rank, keys[static_cast<std::size_t>(s)],
            s * 10.0 + rank * 0.1 + klass * 0.05,
            base * (1.0 + 0.001 * (rank + kRanks * s)), (rank + 1) % kRanks);
        frags.push_back(f);
      }
    }
  }
  if (shuffle_seed != 0) {
    std::mt19937 rng(shuffle_seed);
    std::shuffle(frags.begin(), frags.end(), rng);
  }
  for (core::Fragment& f : frags) stg.add_fragment(f);
  return stg;
}

// Order-independent rendering of a clustering: members are named by their
// fragment identity (rank@start:bytes) instead of their Stg index, sorted
// within each cluster, and clusters sorted — two runs over permuted
// fragment streams canonicalize to the same string iff they found the
// same partition with the same seed norms and rare flags.
std::string canonical_clusters(const core::Stg& stg,
                               const core::ClusteringResult& res) {
  std::vector<std::string> rows;
  for (const core::Cluster& c : res.clusters) {
    std::vector<std::string> members;
    for (std::size_t idx : c.members) {
      const core::FragmentView f = stg.fragment(idx);
      char buf[96];
      std::snprintf(buf, sizeof buf, "%d@%.17g:%.17g", f.rank(),
                    f.start_time(), f.args().bytes);
      members.emplace_back(buf);
    }
    std::sort(members.begin(), members.end());
    char head[128];
    std::snprintf(head, sizeof head, "%llu>%llu k%d %s seed=%.17g:",
                  static_cast<unsigned long long>(c.from),
                  static_cast<unsigned long long>(c.to),
                  static_cast<int>(c.kind), c.rare ? "rare" : "main",
                  c.seed_norm);
    std::string row = head;
    for (const std::string& m : members) row += " " + m;
    rows.push_back(row);
  }
  std::sort(rows.begin(), rows.end());
  std::string out;
  for (const std::string& r : rows) out += r + "\n";
  return out;
}

void expect_identical_clustering(const core::ClusteringResult& a,
                                 const core::ClusteringResult& b,
                                 const std::string& what) {
  ASSERT_EQ(a.clusters.size(), b.clusters.size()) << what;
  for (std::size_t c = 0; c < a.clusters.size(); ++c) {
    EXPECT_EQ(a.clusters[c].from, b.clusters[c].from) << what << " #" << c;
    EXPECT_EQ(a.clusters[c].to, b.clusters[c].to) << what << " #" << c;
    EXPECT_EQ(a.clusters[c].kind, b.clusters[c].kind) << what << " #" << c;
    EXPECT_EQ(a.clusters[c].members, b.clusters[c].members) << what << " #" << c;
    // Byte-identical, not just close: the sharded path must not reorder
    // any floating-point accumulation.
    EXPECT_EQ(a.clusters[c].seed_norm, b.clusters[c].seed_norm)
        << what << " #" << c;
    EXPECT_EQ(a.clusters[c].rare, b.clusters[c].rare) << what << " #" << c;
  }
  EXPECT_EQ(a.assignment, b.assignment) << what;
}

TEST(ShardedClustering, EdgePartitionInvarianceAcrossLaneCounts) {
  core::Stg stg = property_stg(0);
  core::ClusterOptions opts;
  const core::ClusteringResult serial = core::cluster_stg_parallel(stg, opts, 1);
  ASSERT_GT(serial.clusters.size(), 1u);
  for (std::size_t lanes : {2u, 3u, 4u, 7u}) {
    util::WorkerPool pool(lanes);
    const core::ClusteringResult sharded =
        core::cluster_stg_parallel(stg, opts, &pool);
    expect_identical_clustering(serial, sharded,
                                "lanes=" + std::to_string(lanes));
  }
}

TEST(ShardedClustering, PermutationStabilityUnderShuffledFragmentOrder) {
  core::Stg base = property_stg(0);
  core::ClusterOptions opts;
  util::WorkerPool pool(4);
  const std::string baseline =
      canonical_clusters(base, core::cluster_stg_parallel(base, opts, &pool));
  ASSERT_FALSE(baseline.empty());
  for (unsigned seed : {1u, 2u, 3u, 4u}) {
    core::Stg shuffled = property_stg(seed);
    const std::string got = canonical_clusters(
        shuffled, core::cluster_stg_parallel(shuffled, opts, &pool));
    EXPECT_EQ(got, baseline) << "shuffle seed " << seed;
  }
}

TEST(ShardedClustering, SeedCacheEquivalenceWithShardsEnabled) {
  core::ClusterOptions opts;
  core::ClusterSeedCache serial_cache, sharded_cache;
  util::WorkerPool pool(4);
  core::StateKey key;
  for (int window = 0; window < 3; ++window) {
    core::Stg stg = seeded_stg(&key, window);
    const core::ClusteringResult serial =
        core::cluster_stg_parallel(stg, opts, 1, nullptr, &serial_cache);
    const core::ClusteringResult sharded =
        core::cluster_stg_parallel(stg, opts, &pool, nullptr, &sharded_cache);
    expect_identical_clustering(serial, sharded,
                                "window " + std::to_string(window));
  }
  // The caches themselves evolved identically: same hit/miss history means
  // the same seeds were carried forward on both paths.
  EXPECT_EQ(sharded_cache.seed_hits(), serial_cache.seed_hits());
  EXPECT_EQ(sharded_cache.seed_misses(), serial_cache.seed_misses());
  EXPECT_EQ(sharded_cache.entries(), serial_cache.entries());
}

TEST(ShardedRegions, StripeCountInvarianceOnBoundaryCrossingRegions) {
  // 12 ranks, one region spanning ranks 2..9 (crosses every stripe
  // boundary a pool of 2..5 lanes can draw) plus two single-rank blips.
  core::Heatmap map(12, 0.1);
  for (int rank = 0; rank < 12; ++rank)
    for (int bin = 0; bin < 20; ++bin)
      map.deposit(rank, bin * 0.1, bin * 0.1 + 0.1, 1.0);
  for (int rank = 2; rank <= 9; ++rank)
    for (int bin = 4; bin <= 9; ++bin)
      map.deposit(rank, bin * 0.1, bin * 0.1 + 0.1, 0.2);
  map.deposit(0, 1.5, 1.7, 0.1);
  map.deposit(11, 0.0, 0.2, 0.3);
  const std::vector<core::VarianceRegion> serial =
      core::find_variance_regions(map, 0.85);
  ASSERT_GE(serial.size(), 3u);
  for (std::size_t lanes : {2u, 3u, 4u, 5u}) {
    util::WorkerPool pool(lanes);
    const std::vector<core::VarianceRegion> sharded =
        core::find_variance_regions(map, 0.85, &pool);
    ASSERT_EQ(sharded.size(), serial.size()) << "lanes=" << lanes;
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(sharded[i].rank_lo, serial[i].rank_lo) << lanes << "/" << i;
      EXPECT_EQ(sharded[i].rank_hi, serial[i].rank_hi) << lanes << "/" << i;
      EXPECT_EQ(sharded[i].bin_lo, serial[i].bin_lo) << lanes << "/" << i;
      EXPECT_EQ(sharded[i].bin_hi, serial[i].bin_hi) << lanes << "/" << i;
      EXPECT_EQ(sharded[i].cells, serial[i].cells) << lanes << "/" << i;
      EXPECT_EQ(sharded[i].mean_perf, serial[i].mean_perf) << lanes << "/" << i;
      EXPECT_EQ(sharded[i].impact_seconds, serial[i].impact_seconds)
          << lanes << "/" << i;
    }
  }
}

// --- Pipelined server equivalence ----------------------------------------

core::FragmentBatch server_batch(int window, int* site_count) {
  core::FragmentBatch batch;
  const int kSites = 4, kRanks = 6, kReps = 8;
  *site_count = kSites;
  std::vector<core::StateKey> keys;
  for (int s = 0; s < kSites; ++s) {
    sim::InvocationInfo info;
    info.site = static_cast<sim::CallSiteId>(10 + s);
    info.kind = sim::OpKind::kAllreduce;
    keys.push_back(core::make_state_key(core::StgMode::kContextFree, info));
    batch.new_states.push_back(info);
  }
  for (int rank = 0; rank < kRanks; ++rank) {
    core::StateKey prev = core::kStartState;
    double t = window * 0.25;
    for (int step = 0; step < kSites * kReps; ++step) {
      const int s = step % kSites;
      core::Fragment comp;
      comp.kind = core::FragmentKind::kComputation;
      comp.rank = rank;
      comp.from = prev;
      comp.to = keys[static_cast<std::size_t>(s)];
      comp.start_time = t;
      // The last rank runs slow in window 1: a real variance region, so
      // the comparison covers a non-trivial heat map.
      const double stretch = (window == 1 && rank == kRanks - 1) ? 2.0 : 1.0;
      comp.end_time = t + 0.002 * stretch;
      comp.counters[pmu::Counter::kTotIns] = 1e6 * (1 + s);
      batch.fragments.push_back(comp);
      t = comp.end_time;
      batch.fragments.push_back(
          vertex_frag(rank, keys[static_cast<std::size_t>(s)], t,
                      4096.0 * (1 + s), (rank + 1) % kRanks));
      t += 0.01;
      prev = keys[static_cast<std::size_t>(s)];
    }
  }
  return batch;
}

std::string detection_fingerprint(const core::AnalysisServer& server) {
  std::string fp = server.computation_map().render_ascii() + "\n" +
                   server.communication_map().render_ascii() + "\n" +
                   server.io_map().render_ascii() + "\n";
  for (const core::RareFinding& f : server.rare_findings())
    fp += f.state + "|" + std::to_string(f.executions) + "|" +
          std::to_string(f.total_seconds) + "\n";
  return fp;
}

TEST(PipelinedServer, AllConcurrencyModesMatchSerialByteForByte) {
  auto run = [](int depth, int threads, bool cache) {
    core::ServerOptions opts;
    opts.run_diagnosis = false;
    opts.pipeline_depth = depth;
    opts.analysis_threads = threads;
    opts.cluster_seed_cache = cache;
    core::AnalysisServer server(6, opts);
    int sites = 0;
    for (int w = 0; w < 4; ++w) server.process_window(server_batch(w, &sites));
    return detection_fingerprint(server);  // accessors sync() internally
  };
  const std::string serial = run(1, 1, false);
  EXPECT_EQ(run(3, 1, false), serial);
  EXPECT_EQ(run(2, 4, false), serial);
  EXPECT_EQ(run(4, 2, false), serial);
  // The seed cache changes which fragment seeds a cluster (documented),
  // but must itself be pipeline-invariant.
  const std::string serial_cached = run(1, 1, true);
  EXPECT_EQ(run(3, 4, true), serial_cached);
}

TEST(PipelinedServer, SyncExposesAllSubmittedWindows) {
  core::ServerOptions opts;
  opts.run_diagnosis = false;
  opts.pipeline_depth = 3;
  core::AnalysisServer server(6, opts);
  int sites = 0;
  for (int w = 0; w < 5; ++w) server.process_window(server_batch(w, &sites));
  server.sync();
  EXPECT_EQ(server.windows_processed(), 5u);
}

}  // namespace
}  // namespace vapro
