// Tests for src/obs/journal + src/obs/journal_segment + src/obs/alerts +
// src/core/journal_replay: byte-identical write→read round-trips,
// schema-version rejection, parent directory creation, segment rotation
// (size/age/faults), binary-framing torn-tail and CRC semantics, mixed
// JSONL+binary directory readback, compaction replay byte-identity, alert
// rule parsing/firing, and the acceptance criterion that a journal
// re-ingested by the replay path reproduces the live run's detection and
// diagnosis summaries exactly.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/apps/npb.hpp"
#include "src/core/journal_replay.hpp"
#include "src/core/report.hpp"
#include "src/core/vapro.hpp"
#include "src/obs/alerts.hpp"
#include "src/obs/context.hpp"
#include "src/obs/journal.hpp"
#include "src/obs/journal_segment.hpp"
#include "src/sim/runtime.hpp"
#include "src/testing/fault.hpp"

// vapro::testing collides with gtest's ::testing inside TEST bodies.
namespace testing_ = vapro::testing;

namespace vapro {
namespace {

std::string temp_path(const std::string& leaf) {
  return std::string(::testing::TempDir()) + leaf;
}

#if defined(VAPRO_FAULT_INJECTION) && VAPRO_FAULT_INJECTION
testing_::FaultPlan plan_from(const std::string& text) {
  testing_::FaultPlan plan;
  std::string error;
  EXPECT_TRUE(testing_::FaultPlan::parse(text, &plan, &error)) << error;
  return plan;
}
#endif

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream oss;
  oss << in.rdbuf();
  return oss.str();
}

// In-memory sink used to inspect the exact event stream a run produced.
struct CollectingJournalSink final : obs::JournalSink {
  std::vector<obs::JournalEvent> events;
  void on_event(const obs::JournalEvent& event) override {
    events.push_back(event);
  }
};

struct CollectingAlertSink final : obs::AlertSink {
  std::vector<obs::Alert> alerts;
  void on_alert(const obs::Alert& alert) override {
    alerts.push_back(alert);
  }
};

TEST(Journal, RoundTripIsByteIdentical) {
  const std::string path = temp_path("journal_roundtrip.jsonl");
  std::remove(path.c_str());
  {
    obs::Journal journal;
    obs::JournalFileSink sink(path);
    ASSERT_TRUE(sink.ok());
    journal.add_sink(&sink);
    journal.emit("window", 0, 0.25,
                 {obs::JournalField::num("variance_ratio", 1.3333333333333333),
                  obs::JournalField::num("region_count", std::uint64_t{2}),
                  obs::JournalField::boolean("final", false)});
    journal.emit("variance_region", 0, 0.1 + 0.2,  // not representable
                 {obs::JournalField::num("mean_perf", 0.58521992720657923),
                  obs::JournalField::str("kind", "io"),
                  obs::JournalField::str("note", "quote \" slash \\ nl \n")});
    journal.emit("diagnosis_finished", -1, 1e-308,
                 {obs::JournalField::str("culprits", "io,network")});
    journal.flush();
    EXPECT_EQ(journal.events_emitted(), 3u);
  }

  obs::JournalReadResult read = obs::read_journal(path);
  ASSERT_TRUE(read.ok) << read.error;
  EXPECT_EQ(read.schema_version, obs::kJournalSchemaVersion);
  ASSERT_EQ(read.events.size(), 3u);
  for (std::size_t i = 0; i < read.events.size(); ++i)
    EXPECT_EQ(read.events[i].seq, i);

  // Re-serializing every parsed event must reproduce the original file
  // line for line: values keep their raw text, nothing is re-rounded.
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));  // header
  EXPECT_NE(line.find("\"schema\":\"vapro.journal\""), std::string::npos);
  for (const obs::JournalEvent& ev : read.events) {
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(ev.to_json_line(), line);
  }
  EXPECT_FALSE(std::getline(in, line)) << "trailing junk: " << line;

  // Typed accessors see through the raw text.
  EXPECT_DOUBLE_EQ(read.events[1].number("mean_perf"), 0.58521992720657923);
  EXPECT_EQ(read.events[1].str("note"), "quote \" slash \\ nl \n");
  EXPECT_EQ(read.events[0].flag("final", true), false);
}

TEST(Journal, SchemaVersionMismatchIsRejected) {
  const std::string path = temp_path("journal_future.jsonl");
  {
    std::ofstream out(path);
    out << "{\"type\":\"journal_header\",\"schema\":\"vapro.journal\","
           "\"schema_version\":" << (obs::kJournalSchemaVersion + 1) << "}\n"
        << "{\"seq\":0,\"type\":\"window\",\"window\":0,\"t\":0.1}\n";
  }
  obs::JournalReadResult read = obs::read_journal(path);
  EXPECT_FALSE(read.ok);
  EXPECT_NE(read.error.find("version"), std::string::npos) << read.error;

  {
    std::ofstream out(path);
    out << "{\"type\":\"journal_header\",\"schema\":\"someone.else\","
           "\"schema_version\":1}\n";
  }
  read = obs::read_journal(path);
  EXPECT_FALSE(read.ok);
}

TEST(Journal, ReaderRejectsNonMonotonicSequence) {
  const std::string path = temp_path("journal_gap.jsonl");
  {
    std::ofstream out(path);
    out << "{\"type\":\"journal_header\",\"schema\":\"vapro.journal\","
           "\"schema_version\":1}\n"
        << "{\"seq\":1,\"type\":\"window\",\"window\":0,\"t\":0.1}\n"
        << "{\"seq\":1,\"type\":\"window\",\"window\":1,\"t\":0.2}\n";
  }
  obs::JournalReadResult read = obs::read_journal(path);
  EXPECT_FALSE(read.ok);
  EXPECT_NE(read.error.find("seq"), std::string::npos) << read.error;
}

TEST(Journal, TruncatedTailIsFatalStrictlyButRecoverable) {
  // A writer killed mid-write leaves a partial final line.  The strict
  // reader fails; recover_truncated_tail drops ONLY that torn tail.
  const std::string path = temp_path("journal_torn_tail.jsonl");
  {
    std::ofstream out(path);
    out << "{\"type\":\"journal_header\",\"schema\":\"vapro.journal\","
           "\"schema_version\":1}\n"
        << "{\"seq\":0,\"type\":\"window\",\"window\":0,\"t\":0.1}\n"
        << "{\"seq\":1,\"type\":\"window\",\"window\":1,\"t\":0.2}\n"
        << "{\"seq\":2,\"type\":\"window\",\"wi";  // torn: no newline
  }
  obs::JournalReadResult strict = obs::read_journal(path);
  EXPECT_FALSE(strict.ok);

  obs::JournalReadOptions opts;
  opts.recover_truncated_tail = true;
  obs::JournalReadResult read = obs::read_journal(path, opts);
  ASSERT_TRUE(read.ok) << read.error;
  EXPECT_TRUE(read.truncated_tail);
  ASSERT_EQ(read.events.size(), 2u);
  EXPECT_EQ(read.events[1].seq, 1u);
}

TEST(Journal, RecoveryDoesNotExcuseMidFileCorruption) {
  const std::string path = temp_path("journal_mid_corrupt.jsonl");
  {
    std::ofstream out(path);
    out << "{\"type\":\"journal_header\",\"schema\":\"vapro.journal\","
           "\"schema_version\":1}\n"
        << "{\"seq\":0,\"type\":\"win"  // torn line in the MIDDLE
        << "\n{\"seq\":1,\"type\":\"window\",\"window\":1,\"t\":0.2}\n";
  }
  obs::JournalReadOptions opts;
  opts.recover_truncated_tail = true;
  obs::JournalReadResult read = obs::read_journal(path, opts);
  EXPECT_FALSE(read.ok);  // only the FINAL line may be torn
}

TEST(Journal, AppendReopenResumesAfterTornTail) {
  const std::string path = temp_path("journal_append_resume.jsonl");
  {
    std::ofstream out(path);
    out << "{\"type\":\"journal_header\",\"schema\":\"vapro.journal\","
           "\"schema_version\":1}\n"
        << "{\"seq\":0,\"type\":\"window\",\"window\":0,\"t\":0.1}\n"
        << "{\"seq\":1,\"type\":\"wind";  // torn by a crash
  }
  obs::JournalFileSink sink(path, obs::JournalFileSink::OpenMode::kAppend);
  ASSERT_TRUE(sink.ok());
  EXPECT_GT(sink.recovered_tail_bytes(), 0u);
  obs::JournalEvent ev;
  ev.seq = 1;
  ev.type = "window";
  ev.window = 1;
  ev.virtual_time = 0.2;
  sink.on_event(ev);
  sink.flush();
  // The resumed file reads back clean — no recovery flag needed.
  obs::JournalReadResult read = obs::read_journal(path);
  ASSERT_TRUE(read.ok) << read.error;
  ASSERT_EQ(read.events.size(), 2u);
  EXPECT_EQ(read.events[0].seq, 0u);
  EXPECT_EQ(read.events[1].seq, 1u);
}

TEST(Journal, FileSinkCreatesParentDirectories) {
  const std::string path = temp_path("journal_nest/a/b/run.jsonl");
  obs::JournalFileSink sink(path);
  ASSERT_TRUE(sink.ok());
  obs::Journal journal;
  journal.add_sink(&sink);
  journal.emit("window", 0, 0.1, {});
  journal.flush();
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
  std::string header;
  EXPECT_TRUE(std::getline(in, header));
  EXPECT_NE(header.find("vapro.journal"), std::string::npos);
}

// --- segmented store ------------------------------------------------------

// Emits `n` events with distinct payloads at 0.1s virtual-time spacing.
void emit_windows(obs::Journal& journal, int n, int first_window = 0) {
  for (int i = 0; i < n; ++i)
    journal.emit("window", first_window + i,
                 0.1 * static_cast<double>(first_window + i + 1),
                 {obs::JournalField::num("variance_ratio",
                                         1.0 + 0.01 * static_cast<double>(i)),
                  obs::JournalField::str("payload", "window-payload-" +
                                                        std::to_string(i))});
}

TEST(JournalSegments, RotatesBySizeAndReadsBackAsOneStream) {
  const std::string dir = temp_path("seg_rotate_size");
  std::filesystem::remove_all(dir);
  obs::SegmentOptions seg;
  seg.directory = dir;
  seg.max_segment_bytes = 256;  // a few events per segment
  std::size_t segments = 0;
  {
    obs::Journal journal;
    obs::JournalSegmentSink sink(seg);
    ASSERT_TRUE(sink.ok());
    journal.add_sink(&sink);
    emit_windows(journal, 20);
    journal.flush();
    EXPECT_EQ(sink.records_written(), 20u);
    segments = sink.segments_opened();
    EXPECT_GT(segments, 3u);
    // Every opened segment is on disk under its canonical name.
    for (std::size_t i = 0; i < segments; ++i)
      EXPECT_TRUE(std::filesystem::exists(
          dir + "/" + obs::journal_segment_name(i, /*binary=*/true)));
  }
  obs::JournalReadResult read = obs::read_journal_dir(dir);
  ASSERT_TRUE(read.ok) << read.error;
  EXPECT_EQ(read.segments, segments);
  ASSERT_EQ(read.events.size(), 20u);
  for (std::size_t i = 0; i < read.events.size(); ++i)
    EXPECT_EQ(read.events[i].seq, i);
  // read_journal on the directory path resolves to the same stream.
  obs::JournalReadResult via_file_api = obs::read_journal(dir);
  ASSERT_TRUE(via_file_api.ok) << via_file_api.error;
  EXPECT_EQ(via_file_api.events.size(), 20u);
}

TEST(JournalSegments, RotatesByVirtualTimeAge) {
  const std::string dir = temp_path("seg_rotate_age");
  std::filesystem::remove_all(dir);
  obs::SegmentOptions seg;
  seg.directory = dir;
  seg.max_segment_seconds = 0.5;  // events arrive every 0.1s of virtual time
  {
    obs::Journal journal;
    obs::JournalSegmentSink sink(seg);
    ASSERT_TRUE(sink.ok());
    journal.add_sink(&sink);
    emit_windows(journal, 20);  // spans 2.0s of virtual time
    EXPECT_GE(sink.segments_opened(), 3u);
  }
  obs::JournalReadResult read = obs::read_journal_dir(dir);
  ASSERT_TRUE(read.ok) << read.error;
  EXPECT_EQ(read.events.size(), 20u);
}

TEST(JournalSegments, BinaryPayloadsMatchJsonlByteForByte) {
  const std::string dir_bin = temp_path("seg_fmt_bin");
  const std::string dir_txt = temp_path("seg_fmt_txt");
  std::filesystem::remove_all(dir_bin);
  std::filesystem::remove_all(dir_txt);
  obs::SegmentOptions bin;
  bin.directory = dir_bin;
  obs::SegmentOptions txt;
  txt.directory = dir_txt;
  txt.binary = false;
  {
    obs::Journal journal;
    obs::JournalSegmentSink bsink(bin);
    obs::JournalSegmentSink tsink(txt);
    ASSERT_TRUE(bsink.ok());
    ASSERT_TRUE(tsink.ok());
    journal.add_sink(&bsink);
    journal.add_sink(&tsink);
    emit_windows(journal, 6);
    journal.flush();
  }
  obs::JournalReadResult rb = obs::read_journal_dir(dir_bin);
  obs::JournalReadResult rt = obs::read_journal_dir(dir_txt);
  ASSERT_TRUE(rb.ok) << rb.error;
  ASSERT_TRUE(rt.ok) << rt.error;
  ASSERT_EQ(rb.events.size(), rt.events.size());
  // The binary frame payloads are the JSONL lines: every event re-renders
  // to the identical byte string regardless of which framing carried it.
  for (std::size_t i = 0; i < rb.events.size(); ++i)
    EXPECT_EQ(rb.events[i].to_json_line(), rt.events[i].to_json_line());
}

#if defined(VAPRO_FAULT_INJECTION) && VAPRO_FAULT_INJECTION
TEST(JournalSegments, BinaryTornTailIsFatalStrictlyButRecoverable) {
  const std::string dir = temp_path("seg_torn");
  std::filesystem::remove_all(dir);
  obs::SegmentOptions seg;
  seg.directory = dir;
  {
    testing_::FaultScope scope(
        plan_from("seed 1\njournal.write on=4 short_write\n"));
    obs::Journal journal;
    obs::JournalSegmentSink sink(seg);
    journal.add_sink(&sink);
    emit_windows(journal, 5);
    EXPECT_FALSE(sink.ok());  // crashed writer went quiet
    EXPECT_EQ(sink.records_written(), 3u);
    EXPECT_EQ(sink.write_faults(), 1u);
  }
  obs::JournalReadResult strict = obs::read_journal_dir(dir);
  EXPECT_FALSE(strict.ok);
  EXPECT_NE(strict.error.find("torn"), std::string::npos) << strict.error;

  obs::JournalReadOptions opts;
  opts.recover_truncated_tail = true;
  obs::JournalReadResult read = obs::read_journal_dir(dir, opts);
  ASSERT_TRUE(read.ok) << read.error;
  EXPECT_TRUE(read.truncated_tail);
  ASSERT_EQ(read.events.size(), 3u);
  EXPECT_EQ(read.events.back().seq, 2u);
}
#endif  // VAPRO_FAULT_INJECTION

TEST(JournalSegments, CrcCorruptionIsFatalEvenWithRecovery) {
  const std::string dir = temp_path("seg_crc");
  std::filesystem::remove_all(dir);
  obs::SegmentOptions seg;
  seg.directory = dir;
  {
    obs::Journal journal;
    obs::JournalSegmentSink sink(seg);
    journal.add_sink(&sink);
    emit_windows(journal, 4);
    journal.flush();
  }
  const std::string path = dir + "/" + obs::journal_segment_name(0, true);
  std::string bytes = slurp(path);
  ASSERT_GT(bytes.size(), 64u);
  // Flip one payload byte in the middle of the file: the frame stays
  // structurally complete, so only the CRC can catch it.
  bytes[bytes.size() / 2] ^= 0x01;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
  }
  obs::JournalReadOptions opts;
  opts.recover_truncated_tail = true;  // recovery must NOT excuse corruption
  obs::JournalReadResult read = obs::read_journal_dir(dir, opts);
  EXPECT_FALSE(read.ok);
  EXPECT_NE(read.error.find("CRC"), std::string::npos) << read.error;
}

#if defined(VAPRO_FAULT_INJECTION) && VAPRO_FAULT_INJECTION
TEST(JournalSegments, EnospcLeavesSeqGapNeverReorder) {
  const std::string dir = temp_path("seg_enospc");
  std::filesystem::remove_all(dir);
  obs::SegmentOptions seg;
  seg.directory = dir;
  seg.max_segment_bytes = 256;
  {
    testing_::FaultScope scope(plan_from("seed 1\njournal.write on=3 fail\n"));
    obs::Journal journal;
    obs::JournalSegmentSink sink(seg);
    journal.add_sink(&sink);
    emit_windows(journal, 10);
    journal.flush();
    EXPECT_EQ(sink.write_faults(), 1u);
    EXPECT_EQ(sink.records_written(), 9u);
  }
  obs::JournalReadResult read = obs::read_journal_dir(dir);
  ASSERT_TRUE(read.ok) << read.error;
  ASSERT_EQ(read.events.size(), 9u);
  std::vector<std::uint64_t> seqs;
  for (const auto& ev : read.events) seqs.push_back(ev.seq);
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{0, 1, 3, 4, 5, 6, 7, 8, 9}));
}

TEST(JournalSegments, RotateFaultKeepsActiveSegmentGrowing) {
  const std::string dir = temp_path("seg_rotfail");
  std::filesystem::remove_all(dir);
  obs::SegmentOptions seg;
  seg.directory = dir;
  seg.max_segment_bytes = 256;
  std::size_t segments = 0;
  std::uint64_t rotate_faults = 0;
  {
    // The first rotation attempt fails; later ones succeed.
    testing_::FaultScope scope(plan_from("seed 1\njournal.rotate on=1 fail\n"));
    obs::Journal journal;
    obs::JournalSegmentSink sink(seg);
    journal.add_sink(&sink);
    emit_windows(journal, 20);
    journal.flush();
    EXPECT_TRUE(sink.ok());  // rotation failure never wedges the sink
    EXPECT_EQ(sink.records_written(), 20u);
    segments = sink.segments_opened();
    rotate_faults = sink.rotate_faults();
  }
  EXPECT_GE(rotate_faults, 1u);
  EXPECT_GE(segments, 2u);  // a later rotation still happened
  obs::JournalReadResult read = obs::read_journal_dir(dir);
  ASSERT_TRUE(read.ok) << read.error;
  EXPECT_EQ(read.events.size(), 20u);  // nothing lost to the failed rotation
}

// tests/plans/journal.plan is loaded from disk (not inlined here) so the
// committed plan file — the documented repro for the segment sink's hazard
// sites — is itself what this test executes.  The expected accounting is a
// pure function of the plan: `journal.write every=5 fail limit=2` drops
// event records 5 and 10 (seqs 4 and 9), `journal.rotate on=1 fail` makes
// the first size-triggered rotation fail while the segment keeps growing,
// and `journal.write on=17 short_write` tears record 17 (seq 16) mid-frame
// and silences the writer.
TEST(JournalSegments, PlanFileDrivesSegmentFaultSites) {
  const std::string dir = temp_path("seg_planfile");
  std::filesystem::remove_all(dir);
  testing_::FaultPlan plan;
  std::string error;
  ASSERT_TRUE(testing_::FaultPlan::parse_file(
      std::string(VAPRO_PLANS_DIR) + "/journal.plan", &plan, &error))
      << error;
  obs::SegmentOptions seg;
  seg.directory = dir;
  seg.max_segment_bytes = 256;  // rotate every couple of records
  std::size_t segments = 0;
  {
    testing_::FaultScope scope(std::move(plan));
    obs::Journal journal;
    obs::JournalSegmentSink sink(seg);
    journal.add_sink(&sink);
    emit_windows(journal, 20);
    journal.flush();
    EXPECT_FALSE(sink.ok());  // the short write silenced the sink
    EXPECT_EQ(sink.records_written(), 14u);  // 17 attempts - 2 ENOSPC - 1 torn
    EXPECT_EQ(sink.write_faults(), 3u);
    EXPECT_GE(sink.rotate_faults(), 1u);
    segments = sink.segments_opened();
  }
  EXPECT_GE(segments, 2u);  // rotations after the faulted one succeeded

  obs::JournalReadOptions opts;
  opts.recover_truncated_tail = true;
  obs::JournalReadResult read = obs::read_journal_dir(dir, opts);
  ASSERT_TRUE(read.ok) << read.error;
  EXPECT_TRUE(read.truncated_tail);
  std::vector<std::uint64_t> seqs;
  for (const auto& ev : read.events) seqs.push_back(ev.seq);
  // Seqs 4 and 9 were dropped by ENOSPC, seq 16 by the torn tail, and the
  // quiet sink never saw 17..19: gaps, never reorders.
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{0, 1, 2, 3, 5, 6, 7, 8, 10, 11,
                                              12, 13, 14, 15}));
}
#endif  // VAPRO_FAULT_INJECTION

TEST(JournalSegments, MixedJsonlAndBinarySegmentsReadAsOneStream) {
  const std::string dir = temp_path("seg_mixed");
  std::filesystem::remove_all(dir);
  // Collect one event stream, then split it across a JSONL segment and a
  // binary segment by hand — the reader must not care which framing holds
  // which half.
  CollectingJournalSink events;
  {
    obs::Journal journal;
    journal.add_sink(&events);
    emit_windows(journal, 8);
  }
  ASSERT_EQ(events.events.size(), 8u);
  const std::vector<obs::JournalEvent> first(events.events.begin(),
                                             events.events.begin() + 4);
  const std::vector<obs::JournalEvent> second(events.events.begin() + 4,
                                              events.events.end());
  std::string error;
  ASSERT_TRUE(obs::write_journal_file(
      dir + "/" + obs::journal_segment_name(0, /*binary=*/false), first, 0,
      &error))
      << error;
  ASSERT_TRUE(obs::write_journal_file(
      dir + "/" + obs::journal_segment_name(1, /*binary=*/true), second, 0,
      &error))
      << error;
  obs::JournalReadResult read = obs::read_journal_dir(dir);
  ASSERT_TRUE(read.ok) << read.error;
  EXPECT_EQ(read.segments, 2u);
  ASSERT_EQ(read.events.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(read.events[i].seq, i);
    EXPECT_EQ(read.events[i].to_json_line(), events.events[i].to_json_line());
  }
}

TEST(JournalSegments, DirReadRejectsCrossSegmentSeqRegression) {
  const std::string dir = temp_path("seg_seq_regress");
  std::filesystem::remove_all(dir);
  CollectingJournalSink events;
  {
    obs::Journal journal;
    journal.add_sink(&events);
    emit_windows(journal, 4);
  }
  std::string error;
  // Segment 1 replays seqs that segment 0 already covered.
  ASSERT_TRUE(obs::write_journal_file(
      dir + "/" + obs::journal_segment_name(0, true), events.events, 0,
      &error));
  ASSERT_TRUE(obs::write_journal_file(
      dir + "/" + obs::journal_segment_name(1, true), events.events, 0,
      &error));
  obs::JournalReadResult read = obs::read_journal_dir(dir);
  EXPECT_FALSE(read.ok);
  EXPECT_NE(read.error.find("seq"), std::string::npos) << read.error;
}

TEST(JournalSegments, WriteReadRewriteIsByteIdentical) {
  const std::string a = temp_path("seg_rt_a.vjseg");
  const std::string b = temp_path("seg_rt_b.vjseg");
  CollectingJournalSink events;
  {
    obs::Journal journal;
    journal.add_sink(&events);
    emit_windows(journal, 6);
    journal.emit("variance_region", 3, 0.7,
                 {obs::JournalField::str("kind", "io"),
                  obs::JournalField::num("revision", std::uint64_t{1}),
                  obs::JournalField::num("mean_perf", 0.1 + 0.2)});
  }
  std::string error;
  ASSERT_TRUE(obs::write_journal_file(a, events.events, 0, &error)) << error;
  obs::JournalReadResult read = obs::read_journal(a);
  ASSERT_TRUE(read.ok) << read.error;
  ASSERT_TRUE(obs::write_journal_file(b, read.events, 0, &error)) << error;
  EXPECT_EQ(slurp(a), slurp(b));
}

// --- compaction -----------------------------------------------------------

// A stream with superseded region revisions and quality snapshots: the
// compactor must drop exactly the superseded ones and replay must not be
// able to tell the difference.
std::vector<obs::JournalEvent> compactable_stream() {
  CollectingJournalSink events;
  obs::Journal journal;
  journal.add_sink(&events);
  auto region = [&](const char* kind, std::uint64_t revision, double perf) {
    journal.emit("variance_region", -1, 0.1 * static_cast<double>(revision),
                 {obs::JournalField::str("kind", kind),
                  obs::JournalField::num("revision", revision),
                  obs::JournalField::num("rank_lo", std::uint64_t{0}),
                  obs::JournalField::num("rank_hi", std::uint64_t{3}),
                  obs::JournalField::num("bin_lo", std::uint64_t{1}),
                  obs::JournalField::num("bin_hi", std::uint64_t{2}),
                  obs::JournalField::num("cells", std::uint64_t{8}),
                  obs::JournalField::num("mean_perf", perf),
                  obs::JournalField::num("impact_seconds", 2.0 * perf),
                  obs::JournalField::num("bin_seconds", 0.1)});
  };
  auto quality_snapshot = [&](double f1) {
    journal.emit("quality_cell", -1, f1,
                 {obs::JournalField::str("app", "CG"),
                  obs::JournalField::str("noise", "cpu"),
                  obs::JournalField::num("f1", f1)});
    journal.emit("quality", -1, f1,
                 {obs::JournalField::num("quality_f1", f1),
                  obs::JournalField::num("cells", std::uint64_t{1})});
  };
  journal.emit("window", 0, 0.1, {});
  region("computation", 1, 0.70);  // superseded by revision 2
  region("computation", 1, 0.72);  // superseded by revision 2
  quality_snapshot(0.5);           // superseded by the later snapshot
  journal.emit("window", 1, 0.2, {});
  region("computation", 2, 0.80);
  region("io", 1, 0.60);           // final for its kind — kept
  quality_snapshot(0.75);
  journal.emit("rare_finding", 1, 0.25,
               {obs::JournalField::str("state", "S1->S2"),
                obs::JournalField::str("kind", "computation"),
                obs::JournalField::num("executions", std::uint64_t{2}),
                obs::JournalField::num("total_seconds", 0.5),
                obs::JournalField::num("longest_seconds", 0.3)});
  return events.events;
}

TEST(JournalCompaction, DropsOnlySupersededEvents) {
  std::vector<obs::JournalEvent> events = compactable_stream();
  const std::size_t before = events.size();
  const obs::CompactionStats stats = obs::compact_journal_events(&events);
  EXPECT_EQ(stats.kept, events.size());
  EXPECT_EQ(stats.kept + stats.dropped, before);
  // Dropped: two computation regions at revision 1 and the first quality
  // snapshot (one cell + one aggregate).
  EXPECT_EQ(stats.dropped, 4u);
  for (const obs::JournalEvent& ev : events) {
    if (ev.type == "variance_region" && ev.str("kind") == "computation")
      EXPECT_EQ(ev.number("revision"), 2.0);
    if (ev.type == "quality") EXPECT_DOUBLE_EQ(ev.number("quality_f1"), 0.75);
    if (ev.type == "quality_cell") EXPECT_DOUBLE_EQ(ev.number("f1"), 0.75);
  }
  // The io region at revision 1 is that kind's final revision — kept.
  bool io_region = false;
  for (const obs::JournalEvent& ev : events)
    io_region |= ev.type == "variance_region" && ev.str("kind") == "io";
  EXPECT_TRUE(io_region);
  // Seqs keep their original values: sparse but monotonic.
  std::uint64_t last = 0;
  for (const obs::JournalEvent& ev : events) {
    if (&ev != &events.front()) {
      EXPECT_GT(ev.seq, last);
    }
    last = ev.seq;
  }
}

TEST(JournalCompaction, CompactedJournalReplaysByteIdentically) {
  const std::string full = temp_path("compact_full.jsonl");
  const std::string compacted = temp_path("compact_out.vjseg");
  const std::vector<obs::JournalEvent> events = compactable_stream();
  std::string error;
  ASSERT_TRUE(obs::write_journal_file(full, events, 0, &error)) << error;

  obs::CompactionStats stats;
  ASSERT_TRUE(obs::compact_journal(full, compacted, &stats, &error)) << error;
  EXPECT_GT(stats.dropped, 0u);

  // The compacted reader reports the dropped count from the header...
  obs::JournalReadResult read = obs::read_journal(compacted);
  ASSERT_TRUE(read.ok) << read.error;
  EXPECT_EQ(read.compacted_dropped, stats.dropped);
  EXPECT_EQ(read.events.size(), stats.kept);

  // ...and the rendered replay — region tables, rare findings, event
  // count — is byte-identical to the full journal's.
  const core::JournalSummary sfull = core::summarize_journal_file(full);
  const core::JournalSummary scomp = core::summarize_journal_file(compacted);
  ASSERT_TRUE(sfull.ok) << sfull.error;
  ASSERT_TRUE(scomp.ok) << scomp.error;
  EXPECT_EQ(core::render_journal_summary(sfull),
            core::render_journal_summary(scomp));

  // Compacting an already-compacted journal carries the drop count
  // forward instead of forgetting it.
  const std::string twice = temp_path("compact_twice.vjseg");
  ASSERT_TRUE(obs::compact_journal(compacted, twice, &stats, &error)) << error;
  EXPECT_EQ(stats.dropped, 0u);  // nothing left to supersede
  const core::JournalSummary stwice = core::summarize_journal_file(twice);
  EXPECT_EQ(core::render_journal_summary(sfull),
            core::render_journal_summary(stwice));
}

TEST(Alerts, RuleParsing) {
  obs::AlertRule rule;
  std::string error;
  ASSERT_TRUE(obs::parse_alert_rule("variance_ratio > 1.2 for 3", &rule,
                                    &error))
      << error;
  EXPECT_EQ(rule.metric, "variance_ratio");
  EXPECT_EQ(rule.op, obs::AlertRule::Op::kGt);
  EXPECT_DOUBLE_EQ(rule.threshold, 1.2);
  EXPECT_EQ(rule.for_windows, 3);

  ASSERT_TRUE(obs::parse_alert_rule("factor=io contribution > 0.25", &rule,
                                    &error))
      << error;
  EXPECT_EQ(rule.metric, "factor");
  EXPECT_EQ(rule.factor, "io");
  EXPECT_DOUBLE_EQ(rule.threshold, 0.25);

  ASSERT_TRUE(obs::parse_alert_rule("worst_cell < 0.7", &rule, &error));
  EXPECT_EQ(rule.op, obs::AlertRule::Op::kLt);
  EXPECT_EQ(rule.for_windows, 1);

  EXPECT_FALSE(obs::parse_alert_rule("nonsense !! 12", &rule, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(obs::parse_alert_rule("unknown_metric > 1", &rule, &error));
}

TEST(Alerts, ForWindowsRequiresConsecutiveStreakAndRearms) {
  obs::Journal journal;
  obs::AlertEngine engine;
  CollectingAlertSink sink;
  engine.add_alert_sink(&sink);
  obs::AlertRule rule;
  std::string error;
  ASSERT_TRUE(obs::parse_alert_rule("variance_ratio > 1.2 for 3", &rule,
                                    &error));
  engine.add_rule(std::move(rule));
  journal.add_sink(&engine);

  auto window = [&](std::int64_t w, double ratio) {
    journal.emit("window", w, 0.1 * static_cast<double>(w + 1),
                 {obs::JournalField::num("variance_ratio", ratio)});
  };
  window(0, 1.5);
  window(1, 1.5);
  EXPECT_EQ(sink.alerts.size(), 0u);  // streak of 2 < 3
  window(2, 1.1);                     // streak broken
  window(3, 1.5);
  window(4, 1.5);
  EXPECT_EQ(sink.alerts.size(), 0u);
  window(5, 1.5);                     // 3rd consecutive — fires
  ASSERT_EQ(sink.alerts.size(), 1u);
  EXPECT_EQ(sink.alerts[0].window, 5);
  EXPECT_DOUBLE_EQ(sink.alerts[0].value, 1.5);
  window(6, 1.5);                     // sustained: no re-fire while armed
  EXPECT_EQ(sink.alerts.size(), 1u);
  window(7, 1.0);                     // condition breaks → re-arm
  window(8, 1.5);
  window(9, 1.5);
  window(10, 1.5);
  EXPECT_EQ(sink.alerts.size(), 2u);
  EXPECT_EQ(engine.alerts_fired(), 2u);
}

TEST(Alerts, FactorRuleMatchesDiagnosisFindings) {
  obs::Journal journal;
  obs::AlertEngine engine;
  CollectingAlertSink sink;
  engine.add_alert_sink(&sink);
  obs::AlertRule rule;
  std::string error;
  ASSERT_TRUE(obs::parse_alert_rule("factor=io contribution > 0.25", &rule,
                                    &error));
  engine.add_rule(std::move(rule));
  journal.add_sink(&engine);

  // Findings precede their window event in seq order (diagnosis feeds
  // before the server emits "window") — the engine buffers the factor hit.
  journal.emit("diagnosis_finding", -1, 0.0,
               {obs::JournalField::str("factor", "network"),
                obs::JournalField::num("share", 0.5)});
  journal.emit("window", 0, 0.1, {});
  EXPECT_EQ(sink.alerts.size(), 0u);  // wrong factor

  journal.emit("diagnosis_finding", -1, 0.0,
               {obs::JournalField::str("factor", "io"),
                obs::JournalField::num("share", 0.4)});
  journal.emit("window", 1, 0.2, {});
  ASSERT_EQ(sink.alerts.size(), 1u);
  EXPECT_NE(sink.alerts[0].metric.find("io"), std::string::npos);
  EXPECT_DOUBLE_EQ(sink.alerts[0].value, 0.4);
}

TEST(Alerts, ShedCountRuleFiresOnIngestOverload) {
  obs::Journal journal;
  obs::AlertEngine engine;
  CollectingAlertSink sink;
  engine.add_alert_sink(&sink);
  obs::AlertRule rule;
  std::string error;
  ASSERT_TRUE(obs::parse_alert_rule("shed_count > 0", &rule, &error)) << error;
  engine.add_rule(std::move(rule));
  journal.add_sink(&engine);

  // A healthy window: no sheds, no alert.
  journal.emit("window", 0, 0.1, {});
  EXPECT_EQ(sink.alerts.size(), 0u);

  // The ingest plane drops two batches (one shed, one reorder-window
  // reject) before the window closes: the rule fires with the drop count.
  journal.emit("shed", 4, 0.15,
               {obs::JournalField::num("batch_seq", 4.0),
                obs::JournalField::num("fragments", 120.0)});
  journal.emit("net_drop", 9, 0.18,
               {obs::JournalField::num("batch_seq", 9.0),
                obs::JournalField::str("reason", "reorder_window_exceeded")});
  journal.emit("window", 1, 0.2, {});
  ASSERT_EQ(sink.alerts.size(), 1u);
  EXPECT_EQ(sink.alerts[0].metric, "shed_count");
  EXPECT_DOUBLE_EQ(sink.alerts[0].value, 2.0);

  // The count resets per window: a clean window re-arms the rule, the
  // next overloaded one fires again.
  journal.emit("window", 2, 0.3, {});
  EXPECT_EQ(sink.alerts.size(), 1u);
  journal.emit("shed", 12, 0.35, {obs::JournalField::num("batch_seq", 12.0)});
  journal.emit("window", 3, 0.4, {});
  EXPECT_EQ(sink.alerts.size(), 2u);
  EXPECT_DOUBLE_EQ(sink.alerts[1].value, 1.0);
}

TEST(Alerts, JournalSinkRecordsAlertBackIntoJournal) {
  obs::Journal journal;
  CollectingJournalSink events;
  journal.add_sink(&events);
  obs::AlertEngine engine;
  obs::JournalAlertSink back(&journal);
  engine.add_alert_sink(&back);
  obs::AlertRule rule;
  std::string error;
  ASSERT_TRUE(obs::parse_alert_rule("worst_cell < 0.7", &rule, &error));
  engine.add_rule(std::move(rule));
  journal.add_sink(&engine);

  journal.emit("window", 0, 0.1,
               {obs::JournalField::num("worst_cell", 0.5)});
  // Re-entrant emit is queued after the triggering event, seq stays dense.
  ASSERT_EQ(events.events.size(), 2u);
  EXPECT_EQ(events.events[0].type, "window");
  EXPECT_EQ(events.events[1].type, "alert");
  EXPECT_EQ(events.events[1].seq, 1u);
  EXPECT_EQ(events.events[1].str("metric"), "worst_cell");
}

// Acceptance: a journal captured from a live run, re-ingested through
// core::summarize_journal, reproduces the run's own detection region table
// and diagnosis summary character for character.
TEST(JournalReplay, ReproducesLiveDetectionAndDiagnosisSummaries) {
  sim::SimConfig cfg;
  cfg.ranks = 16;
  cfg.cores_per_node = 8;
  cfg.seed = 3;
  sim::NoiseSpec noise;
  noise.kind = sim::NoiseKind::kIoInterference;
  noise.node = 1;
  noise.t_begin = 0.2;
  noise.t_end = 10.0;
  noise.magnitude = 2.0;
  cfg.noises.push_back(noise);
  sim::Simulator simulator(cfg);

  obs::ObsContext ctx;
  ctx.enable_journal();
  CollectingJournalSink events;
  ctx.journal()->add_sink(&events);

  core::VaproOptions opts;
  opts.window_seconds = 0.1;
  opts.obs = &ctx;
  core::VaproSession session(simulator, opts);

  apps::NpbParams p;
  p.iters = 80;
  simulator.run(apps::cg(p));
  session.server().journal_detection_snapshot();

  core::JournalSummary summary = core::summarize_journal(events.events);
  ASSERT_TRUE(summary.ok) << summary.error;
  EXPECT_GT(summary.windows, 0u);

  // Region tables per category, byte for byte.
  for (core::FragmentKind kind :
       {core::FragmentKind::kComputation, core::FragmentKind::kCommunication,
        core::FragmentKind::kIo}) {
    const auto live = session.server().locate(kind);
    EXPECT_EQ(core::render_region_table(
                  summary.regions[static_cast<int>(kind)], opts.bin_seconds),
              core::render_region_table(live, opts.bin_seconds))
        << core::fragment_kind_name(kind);
  }

  // Diagnosis verdict, byte for byte.
  EXPECT_EQ(summary.diagnosis.summary(),
            session.server().diagnosis().summary());
}

}  // namespace
}  // namespace vapro
