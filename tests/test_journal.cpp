// Tests for src/obs/journal + src/obs/alerts + src/core/journal_replay:
// byte-identical write→read round-trips, schema-version rejection, parent
// directory creation, alert rule parsing/firing, and the acceptance
// criterion that a journal re-ingested by the replay path reproduces the
// live run's detection and diagnosis summaries exactly.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/apps/npb.hpp"
#include "src/core/journal_replay.hpp"
#include "src/core/report.hpp"
#include "src/core/vapro.hpp"
#include "src/obs/alerts.hpp"
#include "src/obs/context.hpp"
#include "src/obs/journal.hpp"
#include "src/sim/runtime.hpp"

namespace vapro {
namespace {

std::string temp_path(const std::string& leaf) {
  return std::string(::testing::TempDir()) + leaf;
}

// In-memory sink used to inspect the exact event stream a run produced.
struct CollectingJournalSink final : obs::JournalSink {
  std::vector<obs::JournalEvent> events;
  void on_event(const obs::JournalEvent& event) override {
    events.push_back(event);
  }
};

struct CollectingAlertSink final : obs::AlertSink {
  std::vector<obs::Alert> alerts;
  void on_alert(const obs::Alert& alert) override {
    alerts.push_back(alert);
  }
};

TEST(Journal, RoundTripIsByteIdentical) {
  const std::string path = temp_path("journal_roundtrip.jsonl");
  std::remove(path.c_str());
  {
    obs::Journal journal;
    obs::JournalFileSink sink(path);
    ASSERT_TRUE(sink.ok());
    journal.add_sink(&sink);
    journal.emit("window", 0, 0.25,
                 {obs::JournalField::num("variance_ratio", 1.3333333333333333),
                  obs::JournalField::num("region_count", std::uint64_t{2}),
                  obs::JournalField::boolean("final", false)});
    journal.emit("variance_region", 0, 0.1 + 0.2,  // not representable
                 {obs::JournalField::num("mean_perf", 0.58521992720657923),
                  obs::JournalField::str("kind", "io"),
                  obs::JournalField::str("note", "quote \" slash \\ nl \n")});
    journal.emit("diagnosis_finished", -1, 1e-308,
                 {obs::JournalField::str("culprits", "io,network")});
    journal.flush();
    EXPECT_EQ(journal.events_emitted(), 3u);
  }

  obs::JournalReadResult read = obs::read_journal(path);
  ASSERT_TRUE(read.ok) << read.error;
  EXPECT_EQ(read.schema_version, obs::kJournalSchemaVersion);
  ASSERT_EQ(read.events.size(), 3u);
  for (std::size_t i = 0; i < read.events.size(); ++i)
    EXPECT_EQ(read.events[i].seq, i);

  // Re-serializing every parsed event must reproduce the original file
  // line for line: values keep their raw text, nothing is re-rounded.
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));  // header
  EXPECT_NE(line.find("\"schema\":\"vapro.journal\""), std::string::npos);
  for (const obs::JournalEvent& ev : read.events) {
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(ev.to_json_line(), line);
  }
  EXPECT_FALSE(std::getline(in, line)) << "trailing junk: " << line;

  // Typed accessors see through the raw text.
  EXPECT_DOUBLE_EQ(read.events[1].number("mean_perf"), 0.58521992720657923);
  EXPECT_EQ(read.events[1].str("note"), "quote \" slash \\ nl \n");
  EXPECT_EQ(read.events[0].flag("final", true), false);
}

TEST(Journal, SchemaVersionMismatchIsRejected) {
  const std::string path = temp_path("journal_future.jsonl");
  {
    std::ofstream out(path);
    out << "{\"type\":\"journal_header\",\"schema\":\"vapro.journal\","
           "\"schema_version\":" << (obs::kJournalSchemaVersion + 1) << "}\n"
        << "{\"seq\":0,\"type\":\"window\",\"window\":0,\"t\":0.1}\n";
  }
  obs::JournalReadResult read = obs::read_journal(path);
  EXPECT_FALSE(read.ok);
  EXPECT_NE(read.error.find("version"), std::string::npos) << read.error;

  {
    std::ofstream out(path);
    out << "{\"type\":\"journal_header\",\"schema\":\"someone.else\","
           "\"schema_version\":1}\n";
  }
  read = obs::read_journal(path);
  EXPECT_FALSE(read.ok);
}

TEST(Journal, ReaderRejectsNonMonotonicSequence) {
  const std::string path = temp_path("journal_gap.jsonl");
  {
    std::ofstream out(path);
    out << "{\"type\":\"journal_header\",\"schema\":\"vapro.journal\","
           "\"schema_version\":1}\n"
        << "{\"seq\":1,\"type\":\"window\",\"window\":0,\"t\":0.1}\n"
        << "{\"seq\":1,\"type\":\"window\",\"window\":1,\"t\":0.2}\n";
  }
  obs::JournalReadResult read = obs::read_journal(path);
  EXPECT_FALSE(read.ok);
  EXPECT_NE(read.error.find("seq"), std::string::npos) << read.error;
}

TEST(Journal, TruncatedTailIsFatalStrictlyButRecoverable) {
  // A writer killed mid-write leaves a partial final line.  The strict
  // reader fails; recover_truncated_tail drops ONLY that torn tail.
  const std::string path = temp_path("journal_torn_tail.jsonl");
  {
    std::ofstream out(path);
    out << "{\"type\":\"journal_header\",\"schema\":\"vapro.journal\","
           "\"schema_version\":1}\n"
        << "{\"seq\":0,\"type\":\"window\",\"window\":0,\"t\":0.1}\n"
        << "{\"seq\":1,\"type\":\"window\",\"window\":1,\"t\":0.2}\n"
        << "{\"seq\":2,\"type\":\"window\",\"wi";  // torn: no newline
  }
  obs::JournalReadResult strict = obs::read_journal(path);
  EXPECT_FALSE(strict.ok);

  obs::JournalReadOptions opts;
  opts.recover_truncated_tail = true;
  obs::JournalReadResult read = obs::read_journal(path, opts);
  ASSERT_TRUE(read.ok) << read.error;
  EXPECT_TRUE(read.truncated_tail);
  ASSERT_EQ(read.events.size(), 2u);
  EXPECT_EQ(read.events[1].seq, 1u);
}

TEST(Journal, RecoveryDoesNotExcuseMidFileCorruption) {
  const std::string path = temp_path("journal_mid_corrupt.jsonl");
  {
    std::ofstream out(path);
    out << "{\"type\":\"journal_header\",\"schema\":\"vapro.journal\","
           "\"schema_version\":1}\n"
        << "{\"seq\":0,\"type\":\"win"  // torn line in the MIDDLE
        << "\n{\"seq\":1,\"type\":\"window\",\"window\":1,\"t\":0.2}\n";
  }
  obs::JournalReadOptions opts;
  opts.recover_truncated_tail = true;
  obs::JournalReadResult read = obs::read_journal(path, opts);
  EXPECT_FALSE(read.ok);  // only the FINAL line may be torn
}

TEST(Journal, AppendReopenResumesAfterTornTail) {
  const std::string path = temp_path("journal_append_resume.jsonl");
  {
    std::ofstream out(path);
    out << "{\"type\":\"journal_header\",\"schema\":\"vapro.journal\","
           "\"schema_version\":1}\n"
        << "{\"seq\":0,\"type\":\"window\",\"window\":0,\"t\":0.1}\n"
        << "{\"seq\":1,\"type\":\"wind";  // torn by a crash
  }
  obs::JournalFileSink sink(path, obs::JournalFileSink::OpenMode::kAppend);
  ASSERT_TRUE(sink.ok());
  EXPECT_GT(sink.recovered_tail_bytes(), 0u);
  obs::JournalEvent ev;
  ev.seq = 1;
  ev.type = "window";
  ev.window = 1;
  ev.virtual_time = 0.2;
  sink.on_event(ev);
  sink.flush();
  // The resumed file reads back clean — no recovery flag needed.
  obs::JournalReadResult read = obs::read_journal(path);
  ASSERT_TRUE(read.ok) << read.error;
  ASSERT_EQ(read.events.size(), 2u);
  EXPECT_EQ(read.events[0].seq, 0u);
  EXPECT_EQ(read.events[1].seq, 1u);
}

TEST(Journal, FileSinkCreatesParentDirectories) {
  const std::string path = temp_path("journal_nest/a/b/run.jsonl");
  obs::JournalFileSink sink(path);
  ASSERT_TRUE(sink.ok());
  obs::Journal journal;
  journal.add_sink(&sink);
  journal.emit("window", 0, 0.1, {});
  journal.flush();
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
  std::string header;
  EXPECT_TRUE(std::getline(in, header));
  EXPECT_NE(header.find("vapro.journal"), std::string::npos);
}

TEST(Alerts, RuleParsing) {
  obs::AlertRule rule;
  std::string error;
  ASSERT_TRUE(obs::parse_alert_rule("variance_ratio > 1.2 for 3", &rule,
                                    &error))
      << error;
  EXPECT_EQ(rule.metric, "variance_ratio");
  EXPECT_EQ(rule.op, obs::AlertRule::Op::kGt);
  EXPECT_DOUBLE_EQ(rule.threshold, 1.2);
  EXPECT_EQ(rule.for_windows, 3);

  ASSERT_TRUE(obs::parse_alert_rule("factor=io contribution > 0.25", &rule,
                                    &error))
      << error;
  EXPECT_EQ(rule.metric, "factor");
  EXPECT_EQ(rule.factor, "io");
  EXPECT_DOUBLE_EQ(rule.threshold, 0.25);

  ASSERT_TRUE(obs::parse_alert_rule("worst_cell < 0.7", &rule, &error));
  EXPECT_EQ(rule.op, obs::AlertRule::Op::kLt);
  EXPECT_EQ(rule.for_windows, 1);

  EXPECT_FALSE(obs::parse_alert_rule("nonsense !! 12", &rule, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(obs::parse_alert_rule("unknown_metric > 1", &rule, &error));
}

TEST(Alerts, ForWindowsRequiresConsecutiveStreakAndRearms) {
  obs::Journal journal;
  obs::AlertEngine engine;
  CollectingAlertSink sink;
  engine.add_alert_sink(&sink);
  obs::AlertRule rule;
  std::string error;
  ASSERT_TRUE(obs::parse_alert_rule("variance_ratio > 1.2 for 3", &rule,
                                    &error));
  engine.add_rule(std::move(rule));
  journal.add_sink(&engine);

  auto window = [&](std::int64_t w, double ratio) {
    journal.emit("window", w, 0.1 * static_cast<double>(w + 1),
                 {obs::JournalField::num("variance_ratio", ratio)});
  };
  window(0, 1.5);
  window(1, 1.5);
  EXPECT_EQ(sink.alerts.size(), 0u);  // streak of 2 < 3
  window(2, 1.1);                     // streak broken
  window(3, 1.5);
  window(4, 1.5);
  EXPECT_EQ(sink.alerts.size(), 0u);
  window(5, 1.5);                     // 3rd consecutive — fires
  ASSERT_EQ(sink.alerts.size(), 1u);
  EXPECT_EQ(sink.alerts[0].window, 5);
  EXPECT_DOUBLE_EQ(sink.alerts[0].value, 1.5);
  window(6, 1.5);                     // sustained: no re-fire while armed
  EXPECT_EQ(sink.alerts.size(), 1u);
  window(7, 1.0);                     // condition breaks → re-arm
  window(8, 1.5);
  window(9, 1.5);
  window(10, 1.5);
  EXPECT_EQ(sink.alerts.size(), 2u);
  EXPECT_EQ(engine.alerts_fired(), 2u);
}

TEST(Alerts, FactorRuleMatchesDiagnosisFindings) {
  obs::Journal journal;
  obs::AlertEngine engine;
  CollectingAlertSink sink;
  engine.add_alert_sink(&sink);
  obs::AlertRule rule;
  std::string error;
  ASSERT_TRUE(obs::parse_alert_rule("factor=io contribution > 0.25", &rule,
                                    &error));
  engine.add_rule(std::move(rule));
  journal.add_sink(&engine);

  // Findings precede their window event in seq order (diagnosis feeds
  // before the server emits "window") — the engine buffers the factor hit.
  journal.emit("diagnosis_finding", -1, 0.0,
               {obs::JournalField::str("factor", "network"),
                obs::JournalField::num("share", 0.5)});
  journal.emit("window", 0, 0.1, {});
  EXPECT_EQ(sink.alerts.size(), 0u);  // wrong factor

  journal.emit("diagnosis_finding", -1, 0.0,
               {obs::JournalField::str("factor", "io"),
                obs::JournalField::num("share", 0.4)});
  journal.emit("window", 1, 0.2, {});
  ASSERT_EQ(sink.alerts.size(), 1u);
  EXPECT_NE(sink.alerts[0].metric.find("io"), std::string::npos);
  EXPECT_DOUBLE_EQ(sink.alerts[0].value, 0.4);
}

TEST(Alerts, ShedCountRuleFiresOnIngestOverload) {
  obs::Journal journal;
  obs::AlertEngine engine;
  CollectingAlertSink sink;
  engine.add_alert_sink(&sink);
  obs::AlertRule rule;
  std::string error;
  ASSERT_TRUE(obs::parse_alert_rule("shed_count > 0", &rule, &error)) << error;
  engine.add_rule(std::move(rule));
  journal.add_sink(&engine);

  // A healthy window: no sheds, no alert.
  journal.emit("window", 0, 0.1, {});
  EXPECT_EQ(sink.alerts.size(), 0u);

  // The ingest plane drops two batches (one shed, one reorder-window
  // reject) before the window closes: the rule fires with the drop count.
  journal.emit("shed", 4, 0.15,
               {obs::JournalField::num("batch_seq", 4.0),
                obs::JournalField::num("fragments", 120.0)});
  journal.emit("net_drop", 9, 0.18,
               {obs::JournalField::num("batch_seq", 9.0),
                obs::JournalField::str("reason", "reorder_window_exceeded")});
  journal.emit("window", 1, 0.2, {});
  ASSERT_EQ(sink.alerts.size(), 1u);
  EXPECT_EQ(sink.alerts[0].metric, "shed_count");
  EXPECT_DOUBLE_EQ(sink.alerts[0].value, 2.0);

  // The count resets per window: a clean window re-arms the rule, the
  // next overloaded one fires again.
  journal.emit("window", 2, 0.3, {});
  EXPECT_EQ(sink.alerts.size(), 1u);
  journal.emit("shed", 12, 0.35, {obs::JournalField::num("batch_seq", 12.0)});
  journal.emit("window", 3, 0.4, {});
  EXPECT_EQ(sink.alerts.size(), 2u);
  EXPECT_DOUBLE_EQ(sink.alerts[1].value, 1.0);
}

TEST(Alerts, JournalSinkRecordsAlertBackIntoJournal) {
  obs::Journal journal;
  CollectingJournalSink events;
  journal.add_sink(&events);
  obs::AlertEngine engine;
  obs::JournalAlertSink back(&journal);
  engine.add_alert_sink(&back);
  obs::AlertRule rule;
  std::string error;
  ASSERT_TRUE(obs::parse_alert_rule("worst_cell < 0.7", &rule, &error));
  engine.add_rule(std::move(rule));
  journal.add_sink(&engine);

  journal.emit("window", 0, 0.1,
               {obs::JournalField::num("worst_cell", 0.5)});
  // Re-entrant emit is queued after the triggering event, seq stays dense.
  ASSERT_EQ(events.events.size(), 2u);
  EXPECT_EQ(events.events[0].type, "window");
  EXPECT_EQ(events.events[1].type, "alert");
  EXPECT_EQ(events.events[1].seq, 1u);
  EXPECT_EQ(events.events[1].str("metric"), "worst_cell");
}

// Acceptance: a journal captured from a live run, re-ingested through
// core::summarize_journal, reproduces the run's own detection region table
// and diagnosis summary character for character.
TEST(JournalReplay, ReproducesLiveDetectionAndDiagnosisSummaries) {
  sim::SimConfig cfg;
  cfg.ranks = 16;
  cfg.cores_per_node = 8;
  cfg.seed = 3;
  sim::NoiseSpec noise;
  noise.kind = sim::NoiseKind::kIoInterference;
  noise.node = 1;
  noise.t_begin = 0.2;
  noise.t_end = 10.0;
  noise.magnitude = 2.0;
  cfg.noises.push_back(noise);
  sim::Simulator simulator(cfg);

  obs::ObsContext ctx;
  ctx.enable_journal();
  CollectingJournalSink events;
  ctx.journal()->add_sink(&events);

  core::VaproOptions opts;
  opts.window_seconds = 0.1;
  opts.obs = &ctx;
  core::VaproSession session(simulator, opts);

  apps::NpbParams p;
  p.iters = 80;
  simulator.run(apps::cg(p));
  session.server().journal_detection_snapshot();

  core::JournalSummary summary = core::summarize_journal(events.events);
  ASSERT_TRUE(summary.ok) << summary.error;
  EXPECT_GT(summary.windows, 0u);

  // Region tables per category, byte for byte.
  for (core::FragmentKind kind :
       {core::FragmentKind::kComputation, core::FragmentKind::kCommunication,
        core::FragmentKind::kIo}) {
    const auto live = session.server().locate(kind);
    EXPECT_EQ(core::render_region_table(
                  summary.regions[static_cast<int>(kind)], opts.bin_seconds),
              core::render_region_table(live, opts.bin_seconds))
        << core::fragment_kind_name(kind);
  }

  // Diagnosis verdict, byte for byte.
  EXPECT_EQ(summary.diagnosis.summary(),
            session.server().diagnosis().summary());
}

}  // namespace
}  // namespace vapro
