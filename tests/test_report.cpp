// Tests for the report/visualization layer.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "src/apps/npb.hpp"
#include "src/core/report.hpp"
#include "src/core/report_json.hpp"
#include "src/sim/runtime.hpp"

namespace vapro::core {
namespace {

struct SessionFixture : public ::testing::Test {
  sim::SimConfig make_config() {
    sim::SimConfig cfg;
    cfg.ranks = 16;
    cfg.cores_per_node = 8;
    cfg.seed = 3;
    sim::NoiseSpec noise;
    noise.kind = sim::NoiseKind::kSlowDram;
    noise.node = 1;
    noise.magnitude = 3.0;
    cfg.noises.push_back(noise);
    return cfg;
  }
};

TEST_F(SessionFixture, ReportContainsEverySection) {
  sim::Simulator simulator(make_config());
  VaproOptions opts;
  opts.window_seconds = 0.1;
  VaproSession session(simulator, opts);
  apps::NpbParams p;
  p.iters = 40;
  simulator.run(apps::cg(p));

  std::string report = render_report(session);
  EXPECT_NE(report.find("# Vapro report"), std::string::npos);
  EXPECT_NE(report.find("## computation"), std::string::npos);
  EXPECT_NE(report.find("## communication"), std::string::npos);
  EXPECT_NE(report.find("## io"), std::string::npos);
  EXPECT_NE(report.find("## diagnosis"), std::string::npos);
  EXPECT_NE(report.find("loss%"), std::string::npos);
  // The slow node must appear as a region row (ranks 8-15).
  EXPECT_NE(report.find("8-15"), std::string::npos);
}

TEST_F(SessionFixture, AnsiRenderEmitsColorCodes) {
  sim::Simulator simulator(make_config());
  VaproOptions opts;
  opts.window_seconds = 0.1;
  VaproSession session(simulator, opts);
  apps::NpbParams p;
  p.iters = 30;
  simulator.run(apps::cg(p));

  std::string ansi = render_ansi(session.computation_map());
  EXPECT_NE(ansi.find("\x1b[48;5;"), std::string::npos);
  EXPECT_NE(ansi.find("\x1b[0m"), std::string::npos);

  ReportOptions ropts;
  ropts.ansi_color = true;
  std::string report = render_report(session, ropts);
  EXPECT_NE(report.find("\x1b["), std::string::npos);
}

TEST_F(SessionFixture, CsvBundleWritesThreeFiles) {
  sim::Simulator simulator(make_config());
  VaproOptions opts;
  opts.window_seconds = 0.1;
  VaproSession session(simulator, opts);
  apps::NpbParams p;
  p.iters = 20;
  simulator.run(apps::cg(p));

  EXPECT_EQ(write_csv_bundle(session, "/tmp"), 3);
  for (const char* name :
       {"/tmp/computation.csv", "/tmp/communication.csv", "/tmp/io.csv"}) {
    std::ifstream in(name);
    EXPECT_TRUE(in.good()) << name;
    std::string header;
    std::getline(in, header);
    EXPECT_NE(header.find("rank"), std::string::npos) << name;
    std::remove(name);
  }
}

TEST_F(SessionFixture, JsonReportIsWellFormedAndComplete) {
  sim::Simulator simulator(make_config());
  VaproOptions opts;
  opts.window_seconds = 0.1;
  VaproSession session(simulator, opts);
  apps::NpbParams p;
  p.iters = 40;
  auto result = simulator.run(apps::cg(p));
  double total = 0;
  for (double t : result.finish_times) total += t;

  std::string json = report_json(session, total);
  // Structural sanity: balanced braces/brackets, expected keys.
  int braces = 0, brackets = 0;
  for (char c : json) {
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  for (const char* key :
       {"\"fragments\"", "\"coverage\"", "\"regions\"",
        "\"computation\"", "\"diagnosis\"", "\"culprits\"",
        "\"rank_lo\"", "\"mean_perf\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  // The slow node region appears with its true bounds.
  EXPECT_NE(json.find("\"rank_lo\":8"), std::string::npos);
}

TEST(ReportJson, EscapesSpecialCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\""), "a\\\"b\\\"");
  EXPECT_EQ(json_escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(json_escape("back\\slash"), "back\\\\slash");
}

TEST(Report, EmptySessionRendersGracefully) {
  sim::SimConfig cfg;
  cfg.ranks = 2;
  sim::Simulator simulator(cfg);
  VaproSession session(simulator, VaproOptions{});
  // No run at all: report should still produce valid text.
  std::string report = render_report(session);
  EXPECT_NE(report.find("fragments recorded: 0"), std::string::npos);
  EXPECT_NE(report.find("no variance regions"), std::string::npos);
}

}  // namespace
}  // namespace vapro::core
