// Unit tests for src/sim: event engine ordering, noise schedule scoping,
// network/filesystem models, and the coroutine runtime's messaging,
// collective, IO, interception, and determinism semantics.
#include <gtest/gtest.h>

#include <vector>

#include "src/sim/engine.hpp"
#include "src/sim/filesystem.hpp"
#include "src/sim/network.hpp"
#include "src/sim/noise.hpp"
#include "src/sim/runtime.hpp"
#include "src/sim/topology.hpp"

namespace vapro::sim {
namespace {

using pmu::ComputeWorkload;

// --- engine ---

TEST(Engine, ProcessesInTimeOrder) {
  EventEngine eng;
  std::vector<int> order;
  eng.schedule_at(2.0, [&] { order.push_back(2); });
  eng.schedule_at(1.0, [&] { order.push_back(1); });
  eng.schedule_at(3.0, [&] { order.push_back(3); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(eng.now(), 3.0);
}

TEST(Engine, TiesBreakBySchedulingOrder) {
  EventEngine eng;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    eng.schedule_at(1.0, [&order, i] { order.push_back(i); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, CallbacksCanScheduleMore) {
  EventEngine eng;
  int fired = 0;
  eng.schedule_at(1.0, [&] {
    ++fired;
    eng.schedule_after(1.0, [&] { ++fired; });
  });
  eng.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(eng.now(), 2.0);
}

TEST(Engine, RunUntilStopsAtLimit) {
  EventEngine eng;
  int fired = 0;
  eng.schedule_at(1.0, [&] { ++fired; });
  eng.schedule_at(5.0, [&] { ++fired; });
  eng.run_until(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(eng.pending(), 1u);
}

TEST(Engine, SchedulingInThePastDies) {
  EventEngine eng;
  eng.schedule_at(2.0, [] {});
  eng.run();
  EXPECT_DEATH(eng.schedule_at(1.0, [] {}), "scheduled in the past");
}

// --- topology ---

TEST(Topology, BlockMapping) {
  Topology t{48, 24};
  EXPECT_EQ(t.nodes(), 2);
  EXPECT_EQ(t.node_of(0), 0);
  EXPECT_EQ(t.node_of(23), 0);
  EXPECT_EQ(t.node_of(24), 1);
  EXPECT_EQ(t.core_of(25), 1);
  EXPECT_EQ(t.first_rank_on(1), 24);
}

TEST(Topology, PartialLastNode) {
  Topology t{30, 24};
  EXPECT_EQ(t.nodes(), 2);
  EXPECT_EQ(t.node_of(29), 1);
}

// --- noise schedule ---

TEST(Noise, ScopesByNodeCoreAndTime) {
  NoiseSpec s;
  s.kind = NoiseKind::kCpuContention;
  s.node = 1;
  s.core = 3;
  s.t_begin = 10.0;
  s.t_end = 20.0;
  s.magnitude = 1.0;
  NoiseSchedule sched({s});
  EXPECT_DOUBLE_EQ(sched.cpu_share({1, 3, 15.0}), 0.5);
  EXPECT_DOUBLE_EQ(sched.cpu_share({1, 3, 5.0}), 1.0);   // before window
  EXPECT_DOUBLE_EQ(sched.cpu_share({1, 3, 20.0}), 1.0);  // end exclusive
  EXPECT_DOUBLE_EQ(sched.cpu_share({0, 3, 15.0}), 1.0);  // other node
  EXPECT_DOUBLE_EQ(sched.cpu_share({1, 2, 15.0}), 1.0);  // other core
}

TEST(Noise, WildcardsCoverEverything) {
  NoiseSpec s;
  s.kind = NoiseKind::kMemoryBandwidth;
  s.magnitude = 3.0;
  NoiseSchedule sched({s});
  EXPECT_DOUBLE_EQ(sched.dram_factor({0, 0, 0.0}), 3.0);
  EXPECT_DOUBLE_EQ(sched.dram_factor({7, 23, 1e6}), 3.0);
}

TEST(Noise, OverlappingSpecsCompose) {
  NoiseSpec a, b;
  a.kind = b.kind = NoiseKind::kSlowDram;
  a.magnitude = 2.0;
  b.magnitude = 1.5;
  NoiseSchedule sched({a, b});
  EXPECT_DOUBLE_EQ(sched.dram_factor({0, 0, 0.0}), 3.0);
}

TEST(Noise, KindsRouteToTheRightKnob) {
  NoiseSpec l2, io, net, pf;
  l2.kind = NoiseKind::kL2CacheBug;
  l2.magnitude = 6.0;
  io.kind = NoiseKind::kIoInterference;
  io.magnitude = 4.0;
  net.kind = NoiseKind::kNetworkCongestion;
  net.magnitude = 2.0;
  pf.kind = NoiseKind::kPageFaultStorm;
  pf.magnitude = 1000.0;
  NoiseSchedule sched({l2, io, net, pf});
  EXPECT_DOUBLE_EQ(sched.l2_factor({0, 0, 0}), 6.0);
  EXPECT_DOUBLE_EQ(sched.io_factor(0), 4.0);
  EXPECT_DOUBLE_EQ(sched.network_factor(0), 2.0);
  EXPECT_DOUBLE_EQ(sched.soft_pf_rate({0, 0, 0}), 1000.0);
  EXPECT_DOUBLE_EQ(sched.hard_pf_rate({0, 0, 0}), 20.0);
  EXPECT_DOUBLE_EQ(sched.dram_factor({0, 0, 0}), 1.0);
}

// --- network / filesystem models ---

TEST(Network, IntraNodeFasterThanInter) {
  Topology topo{48, 24};
  NetworkModel net(NetworkParams{}, topo);
  EXPECT_LT(net.p2p_time(1e6, 0, 1, 1.0), net.p2p_time(1e6, 0, 30, 1.0));
}

TEST(Network, CongestionScalesLinearly) {
  Topology topo{4, 2};
  NetworkModel net(NetworkParams{}, topo);
  EXPECT_DOUBLE_EQ(net.p2p_time(1e6, 0, 3, 2.0), 2.0 * net.p2p_time(1e6, 0, 3, 1.0));
}

TEST(Network, CollectivesScaleLogarithmically) {
  Topology topo{1024, 24};
  NetworkModel net(NetworkParams{}, topo);
  const double t2 = net.barrier_time(2, 1.0);
  const double t1024 = net.barrier_time(1024, 1.0);
  EXPECT_NEAR(t1024 / t2, 10.0, 1e-9);  // log2(1024) / log2(2)
}

TEST(Filesystem, BandwidthDominatesLargeOps) {
  SharedFilesystem fs(FsParams{}, 1);
  const double small = fs.read_time(1024, 1.0);
  const double large = fs.read_time(1e9, 1.0);
  EXPECT_GT(large, 0.5);   // ≈ bytes / 1.2 GB/s
  EXPECT_LT(small, 0.05);
}

TEST(Filesystem, LatencyHasATail) {
  SharedFilesystem fs(FsParams{}, 2);
  double lo = 1e9, hi = 0.0;
  for (int i = 0; i < 2000; ++i) {
    double t = fs.read_time(1024, 1.0);
    lo = std::min(lo, t);
    hi = std::max(hi, t);
  }
  EXPECT_GT(hi / lo, 3.0);  // lognormal spread
}

// --- runtime: messaging ---

SimConfig tiny(int ranks) {
  SimConfig cfg;
  cfg.ranks = ranks;
  cfg.cores_per_node = 4;
  cfg.seed = 11;
  return cfg;
}

TEST(Runtime, PingPongCompletes) {
  Simulator s(tiny(2));
  auto result = s.run([](RankContext& ctx) -> Task {
    if (ctx.rank() == 0) {
      co_await ctx.send(1, 1024, 1);
      co_await ctx.recv(1, 2);
    } else {
      co_await ctx.recv(0, 3);
      co_await ctx.send(0, 1024, 4);
    }
  });
  EXPECT_GT(result.makespan, 0.0);
  // Rank 1 must finish after the message could physically arrive.
  EXPECT_GT(result.finish_times[1], 1.0e-6);
}

TEST(Runtime, RecvBeforeSendParks) {
  Simulator s(tiny(2));
  std::vector<double> recv_done(2, -1);
  auto result = s.run([&](RankContext& ctx) -> Task {
    if (ctx.rank() == 0) {
      // Delay the send by computing first.
      co_await ctx.compute(ComputeWorkload::balanced(5e6));
      co_await ctx.send(1, 64, 1);
    } else {
      co_await ctx.recv(0, 2);
      recv_done[1] = ctx.now();
    }
  });
  // The receiver completed only after the sender's compute.
  EXPECT_GT(recv_done[1], 1e-3);
  EXPECT_LE(recv_done[1], result.makespan);
}

TEST(Runtime, TagsKeepStreamsApart) {
  Simulator s(tiny(2));
  std::vector<double> sizes;
  s.run([&](RankContext& ctx) -> Task {
    if (ctx.rank() == 0) {
      co_await ctx.send(1, 111, 1, /*tag=*/7);
      co_await ctx.send(1, 222, 1, /*tag=*/8);
    } else {
      // Receive in reverse tag order; matching must respect tags.
      Request r8 = co_await ctx.irecv(0, 2, /*tag=*/8);
      Request r7 = co_await ctx.irecv(0, 2, /*tag=*/7);
      co_await ctx.wait(r8, 3);
      co_await ctx.wait(r7, 3);
      sizes.push_back(r8->bytes);
      sizes.push_back(r7->bytes);
    }
  });
  ASSERT_EQ(sizes.size(), 2u);
  EXPECT_DOUBLE_EQ(sizes[0], 222);
  EXPECT_DOUBLE_EQ(sizes[1], 111);
}

TEST(Runtime, WaitallWaitsForTheSlowest) {
  Simulator s(tiny(3));
  std::vector<double> done(3, 0);
  s.run([&](RankContext& ctx) -> Task {
    if (ctx.rank() == 0) {
      Request a = co_await ctx.irecv(1, 1);
      Request b = co_await ctx.irecv(2, 2);
      std::vector<Request> reqs{a, b};
      co_await ctx.wait_all(std::move(reqs), 3);
      done[0] = ctx.now();
    } else if (ctx.rank() == 1) {
      co_await ctx.send(0, 64, 4);
    } else {
      co_await ctx.compute(ComputeWorkload::balanced(1e7));  // slow sender
      co_await ctx.send(0, 64, 5);
      done[2] = ctx.now();
    }
  });
  EXPECT_GT(done[0], 2e-3);  // waited for rank 2's compute
}

TEST(Runtime, CollectivesReleaseTogetherAfterLastArrival) {
  Simulator s(tiny(4));
  std::vector<double> after(4, 0);
  s.run([&](RankContext& ctx) -> Task {
    // Rank 3 arrives last.
    if (ctx.rank() == 3) co_await ctx.compute(ComputeWorkload::balanced(1e7));
    co_await ctx.barrier(1);
    after[static_cast<std::size_t>(ctx.rank())] = ctx.now();
  });
  const double reference = after[3];
  for (double t : after) EXPECT_NEAR(t, reference, 1e-9);
  EXPECT_GT(reference, 2e-3);
}

TEST(Runtime, MismatchedCollectivesDie) {
  Simulator s(tiny(2));
  EXPECT_DEATH(s.run([](RankContext& ctx) -> Task {
                 if (ctx.rank() == 0) {
                   co_await ctx.barrier(1);
                 } else {
                   co_await ctx.allreduce(8, 2);
                 }
               }),
               "collective mismatch");
}

TEST(Runtime, FileOpsTakeFilesystemTime) {
  Simulator s(tiny(1));
  auto result = s.run([](RankContext& ctx) -> Task {
    for (int i = 0; i < 10; ++i) co_await ctx.file_read(3, 1e6, 1);
  });
  // ≥ 10 × bytes/bandwidth.
  EXPECT_GT(result.makespan, 10 * 1e6 / 1.3e9);
}

TEST(Runtime, DeterministicAcrossIdenticalRuns) {
  auto once = [] {
    Simulator s(tiny(4));
    return s
        .run([](RankContext& ctx) -> Task {
          for (int i = 0; i < 5; ++i) {
            co_await ctx.compute(ComputeWorkload::balanced(2e6));
            co_await ctx.allreduce(8, 1);
          }
        })
        .makespan;
  };
  EXPECT_DOUBLE_EQ(once(), once());
}

TEST(Runtime, RepeatedRunsOnOneSimulatorVary) {
  // run() reseeds per execution — the Fig 1 repeated-submission setup.
  Simulator s(tiny(4));
  auto prog = [](RankContext& ctx) -> Task {
    for (int i = 0; i < 5; ++i) {
      co_await ctx.compute(ComputeWorkload::balanced(2e6));
      co_await ctx.allreduce(8, 1);
    }
  };
  const double t1 = s.run(prog).makespan;
  const double t2 = s.run(prog).makespan;
  EXPECT_GT(t1, 0);
  EXPECT_GT(t2, 0);
  EXPECT_NE(t1, t2);  // different OS-event draws
}

// --- interception ---

class RecordingInterceptor : public Interceptor {
 public:
  struct Event {
    bool begin;
    InvocationInfo info;
    double time;
    double tot_ins;
  };
  std::vector<Event> events;
  int program_ends = 0;

  void on_call_begin(const InvocationInfo& info, double time,
                     const pmu::CounterSample& gt) override {
    events.push_back({true, info, time, gt[pmu::Counter::kTotIns]});
  }
  void on_call_end(const InvocationInfo& info, double time,
                   const pmu::CounterSample& gt) override {
    events.push_back({false, info, time, gt[pmu::Counter::kTotIns]});
  }
  void on_program_end(RankId, double) override { ++program_ends; }
};

TEST(Runtime, InterceptorSeesBeginEndPairsWithArgs) {
  Simulator s(tiny(2));
  RecordingInterceptor rec;
  s.set_interceptor(&rec);
  s.run([](RankContext& ctx) -> Task {
    co_await ctx.compute(ComputeWorkload::balanced(1e6, /*truth=*/42));
    if (ctx.rank() == 0) {
      co_await ctx.send(1, 4096, 10);
    } else {
      co_await ctx.recv(0, 11);
    }
  });
  EXPECT_EQ(rec.program_ends, 2);
  ASSERT_EQ(rec.events.size(), 4u);  // 2 calls × begin+end
  // Sender's begin event carries args and the truth class of the compute.
  const auto* send_begin = &rec.events[0];
  for (const auto& e : rec.events)
    if (e.begin && e.info.kind == OpKind::kSend) send_begin = &e;
  EXPECT_DOUBLE_EQ(send_begin->info.args.bytes, 4096);
  EXPECT_EQ(send_begin->info.args.peer, 1);
  EXPECT_EQ(send_begin->info.truth_class_since_last, 42);
  EXPECT_GT(send_begin->tot_ins, 0.9e6);
}

TEST(Runtime, RecvLearnsBytesByEnd) {
  Simulator s(tiny(2));
  RecordingInterceptor rec;
  s.set_interceptor(&rec);
  s.run([](RankContext& ctx) -> Task {
    if (ctx.rank() == 0) {
      co_await ctx.send(1, 7777, 10);
    } else {
      co_await ctx.recv(0, 11);
    }
  });
  bool checked = false;
  for (const auto& e : rec.events) {
    if (!e.begin && e.info.kind == OpKind::kRecv) {
      EXPECT_DOUBLE_EQ(e.info.args.bytes, 7777);
      checked = true;
    }
  }
  EXPECT_TRUE(checked);
}

TEST(Runtime, InterceptionOverheadSlowsTheApp) {
  SimConfig cfg = tiny(2);
  cfg.intercept_cost.base_seconds = 50e-6;  // exaggerated for visibility
  auto prog = [](RankContext& ctx) -> Task {
    for (int i = 0; i < 100; ++i) co_await ctx.barrier(1);
  };
  Simulator bare(cfg);
  const double t_bare = bare.run(prog).makespan;
  Simulator tooled(cfg);
  RecordingInterceptor rec;
  tooled.set_interceptor(&rec);
  const double t_tooled = tooled.run(prog).makespan;
  EXPECT_GT(t_tooled, t_bare + 100 * 50e-6 * 0.5);
}

TEST(Runtime, CallPathCostOnlyWhenRequested) {
  class PathHungry final : public RecordingInterceptor {
   public:
    bool wants_call_path() const override { return true; }
  };
  SimConfig cfg = tiny(1);
  cfg.intercept_cost.base_seconds = 0.0;
  cfg.intercept_cost.per_frame_seconds = 100e-6;
  auto prog = [](RankContext& ctx) -> Task {
    auto r1 = ctx.region(1);
    auto r2 = ctx.region(2);
    for (int i = 0; i < 50; ++i) co_await ctx.probe(1);
  };
  Simulator flat(cfg);
  RecordingInterceptor cheap;
  flat.set_interceptor(&cheap);
  const double t_flat = flat.run(prog).makespan;
  Simulator deep(cfg);
  PathHungry costly;
  deep.set_interceptor(&costly);
  const double t_deep = deep.run(prog).makespan;
  EXPECT_NEAR(t_flat, 0.0, 1e-9);
  EXPECT_NEAR(t_deep, 50 * 3 * 100e-6, 1e-6);  // depth 2 + 1
  // And the recorded path is visible to the tool.
  ASSERT_FALSE(costly.events.empty());
  EXPECT_EQ(costly.events[0].info.path,
            (std::vector<std::uint32_t>{1, 2}));
}

TEST(Runtime, StaticFlagTracksComputeMix) {
  Simulator s(tiny(1));
  RecordingInterceptor rec;
  s.set_interceptor(&rec);
  s.run([](RankContext& ctx) -> Task {
    ComputeWorkload fixed = ComputeWorkload::balanced(1e5);
    fixed.statically_fixed = true;
    co_await ctx.compute(fixed);
    co_await ctx.probe(1);  // after: static span
    co_await ctx.compute(fixed);
    co_await ctx.compute(ComputeWorkload::balanced(1e5));  // dynamic
    co_await ctx.probe(2);  // after: mixed span → not static
    co_await ctx.probe(3);  // no compute since last → not static
  });
  ASSERT_EQ(rec.events.size(), 6u);
  EXPECT_TRUE(rec.events[0].info.statically_fixed_since_last);
  EXPECT_FALSE(rec.events[2].info.statically_fixed_since_last);
  EXPECT_FALSE(rec.events[4].info.statically_fixed_since_last);
}

TEST(Runtime, PeriodicCallbacksTickDuringTheRun) {
  Simulator s(tiny(1));
  std::vector<double> ticks;
  s.add_periodic(0.001, [&](double t) { ticks.push_back(t); });
  s.run([](RankContext& ctx) -> Task {
    co_await ctx.compute(ComputeWorkload::balanced(2e7));  // ≈ 7 ms
  });
  EXPECT_GE(ticks.size(), 5u);
  for (std::size_t i = 1; i < ticks.size(); ++i)
    EXPECT_GT(ticks[i], ticks[i - 1]);
}

TEST(Runtime, NoiseWindowSlowsOnlyItsInterval) {
  SimConfig cfg = tiny(1);
  NoiseSpec noise;
  noise.kind = NoiseKind::kSlowDram;
  noise.magnitude = 10.0;
  noise.t_begin = 1e9;  // never active
  cfg.noises.push_back(noise);
  Simulator far(cfg);
  auto prog = [](RankContext& ctx) -> Task {
    for (int i = 0; i < 10; ++i) co_await ctx.compute(ComputeWorkload::memory_bound(1e6));
  };
  const double t_far = far.run(prog).makespan;

  cfg.noises[0].t_begin = 0.0;  // always active
  Simulator near_sim(cfg);
  const double t_near = near_sim.run(prog).makespan;
  EXPECT_GT(t_near, 3.0 * t_far);
}

}  // namespace
}  // namespace vapro::sim
