// Edge-case semantics of the simulated runtime: request lifecycles,
// zero-byte messages, many outstanding operations, rooted collectives,
// tag multiplexing, and determinism under heavy interleave.
#include <gtest/gtest.h>

#include <cmath>

#include "src/sim/runtime.hpp"

namespace vapro::sim {
namespace {

using pmu::ComputeWorkload;

SimConfig tiny(int ranks, std::uint64_t seed = 3) {
  SimConfig cfg;
  cfg.ranks = ranks;
  cfg.cores_per_node = 8;
  cfg.seed = seed;
  return cfg;
}

TEST(RuntimeEdge, ZeroByteMessagesFlow) {
  Simulator s(tiny(2));
  auto result = s.run([](RankContext& ctx) -> Task {
    if (ctx.rank() == 0) {
      co_await ctx.send(1, 0.0, 1);
    } else {
      co_await ctx.recv(0, 2);
    }
  });
  EXPECT_GT(result.makespan, 0.0);
}

TEST(RuntimeEdge, ManyOutstandingIrecvsMatchInOrder) {
  Simulator s(tiny(2));
  std::vector<double> sizes;
  s.run([&](RankContext& ctx) -> Task {
    constexpr int kN = 16;
    if (ctx.rank() == 0) {
      for (int i = 0; i < kN; ++i)
        co_await ctx.send(1, 100.0 * (i + 1), 1, /*tag=*/0);
    } else {
      std::vector<Request> reqs;
      for (int i = 0; i < kN; ++i) {
        Request r = co_await ctx.irecv(0, 2, /*tag=*/0);
        reqs.push_back(r);
      }
      co_await ctx.wait_all(std::move(reqs), 3);
      // MPI ordering: same (src, tag) stream matches FIFO.
      // Re-collect via a fresh vector (requests were moved).
    }
  });
  // Re-run with explicit size capture.
  Simulator s2(tiny(2));
  s2.run([&](RankContext& ctx) -> Task {
    constexpr int kN = 16;
    if (ctx.rank() == 0) {
      for (int i = 0; i < kN; ++i)
        co_await ctx.send(1, 100.0 * (i + 1), 1, /*tag=*/0);
    } else {
      for (int i = 0; i < kN; ++i) {
        Request r = co_await ctx.irecv(0, 2, /*tag=*/0);
        co_await ctx.wait(r, 3);
        sizes.push_back(r->bytes);
      }
    }
  });
  ASSERT_EQ(sizes.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_DOUBLE_EQ(sizes[static_cast<std::size_t>(i)], 100.0 * (i + 1));
}

TEST(RuntimeEdge, WaitOnAlreadyCompleteRequestReturnsPromptly) {
  Simulator s(tiny(2));
  std::vector<double> wait_cost;
  s.run([&](RankContext& ctx) -> Task {
    if (ctx.rank() == 0) {
      co_await ctx.send(1, 64, 1);
      co_await ctx.compute(ComputeWorkload::balanced(1e7));
    } else {
      Request r = co_await ctx.irecv(0, 2);
      // Let the message land and then some.
      co_await ctx.compute(ComputeWorkload::balanced(1e7));
      const double before = ctx.now();
      co_await ctx.wait(r, 3);
      wait_cost.push_back(ctx.now() - before);
    }
  });
  ASSERT_EQ(wait_cost.size(), 1u);
  EXPECT_LT(wait_cost[0], 1e-4);  // just interception overhead
}

TEST(RuntimeEdge, BcastFromEveryRoot) {
  for (int root = 0; root < 4; ++root) {
    Simulator s(tiny(4));
    auto result = s.run([root](RankContext& ctx) -> Task {
      co_await ctx.bcast(4096, root, 1);
      co_await ctx.barrier(2);
    });
    EXPECT_GT(result.makespan, 0.0) << "root " << root;
  }
}

TEST(RuntimeEdge, SingleRankCollectivesAreLocal) {
  Simulator s(tiny(1));
  auto result = s.run([](RankContext& ctx) -> Task {
    for (int i = 0; i < 10; ++i) co_await ctx.allreduce(8, 1);
  });
  EXPECT_LT(result.makespan, 1e-3);
}

TEST(RuntimeEdge, InterleavedTagsDoNotCross) {
  Simulator s(tiny(2));
  std::vector<double> by_tag(4, 0);
  s.run([&](RankContext& ctx) -> Task {
    if (ctx.rank() == 0) {
      // Tag i carries payload (i+1)*1000; sent in scrambled order.
      for (int tag : {2, 0, 3, 1})
        co_await ctx.send(1, 1000.0 * (tag + 1), 1, tag);
    } else {
      for (int tag = 0; tag < 4; ++tag) {
        Request r = co_await ctx.irecv(0, 2, tag);
        co_await ctx.wait(r, 3);
        by_tag[static_cast<std::size_t>(tag)] = r->bytes;
      }
    }
  });
  for (int tag = 0; tag < 4; ++tag)
    EXPECT_DOUBLE_EQ(by_tag[static_cast<std::size_t>(tag)], 1000.0 * (tag + 1));
}

TEST(RuntimeEdge, SelfMessagingWorks) {
  Simulator s(tiny(1));
  auto result = s.run([](RankContext& ctx) -> Task {
    Request r = co_await ctx.irecv(0, 1);
    co_await ctx.send(0, 512, 2);
    co_await ctx.wait(r, 3);
  });
  EXPECT_GT(result.makespan, 0.0);
}

TEST(RuntimeEdge, ComputeAccumulatesCountersMonotonically) {
  Simulator s(tiny(1));
  std::vector<double> tot_ins;
  s.run([&](RankContext& ctx) -> Task {
    for (int i = 0; i < 5; ++i) {
      co_await ctx.compute(ComputeWorkload::balanced(1e6));
      tot_ins.push_back(ctx.ground_truth()[pmu::Counter::kTotIns]);
    }
  });
  ASSERT_EQ(tot_ins.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_NEAR(tot_ins[i], 1e6 * static_cast<double>(i + 1), 1.0);
}

TEST(RuntimeEdge, FinishTimesRespectDependencies) {
  // A chain: rank i can only finish after rank i-1 sent to it.
  Simulator s(tiny(4));
  auto result = s.run([](RankContext& ctx) -> Task {
    if (ctx.rank() > 0) co_await ctx.recv(ctx.rank() - 1, 1);
    co_await ctx.compute(ComputeWorkload::balanced(2e6));
    if (ctx.rank() < ctx.size() - 1) co_await ctx.send(ctx.rank() + 1, 64, 2);
  });
  for (int r = 1; r < 4; ++r)
    EXPECT_GT(result.finish_times[static_cast<std::size_t>(r)],
              result.finish_times[static_cast<std::size_t>(r - 1)] * 0.99);
}

TEST(RuntimeEdge, HeavyInterleaveIsDeterministic) {
  auto run_once = [] {
    Simulator s(tiny(16, 99));
    return s
        .run([](RankContext& ctx) -> Task {
          util::Rng& rng = ctx.rng();
          for (int i = 0; i < 30; ++i) {
            co_await ctx.compute(ComputeWorkload::balanced(
                1e5 * (1 + rng.uniform_u64(5))));
            const int partner = static_cast<int>(
                (static_cast<std::uint64_t>(ctx.rank()) + 1 +
                 rng.uniform_u64(static_cast<std::uint64_t>(ctx.size() - 1))) %
                static_cast<std::uint64_t>(ctx.size()));
            (void)partner;
            co_await ctx.allreduce(8, 1);
          }
        })
        .makespan;
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(RuntimeEdge, EventCountScalesWithWork) {
  auto events_for = [](int iters) {
    Simulator s(tiny(4));
    return s
        .run([iters](RankContext& ctx) -> Task {
          for (int i = 0; i < iters; ++i) {
            co_await ctx.compute(ComputeWorkload::balanced(1e5));
            co_await ctx.barrier(1);
          }
        })
        .events;
  };
  const auto small = events_for(10);
  const auto large = events_for(100);
  EXPECT_GT(large, 8 * small);
  EXPECT_LT(large, 12 * small);
}

TEST(RuntimeEdge, IoVoluntaryContextSwitchCounted) {
  Simulator s(tiny(1));
  double vol_cs = 0;
  s.run([&](RankContext& ctx) -> Task {
    for (int i = 0; i < 10; ++i) co_await ctx.file_read(3, 1024, 1);
    vol_cs = ctx.ground_truth()[pmu::Counter::kCtxSwitchVoluntary];
  });
  EXPECT_GE(vol_cs, 10.0);
}

}  // namespace
}  // namespace vapro::sim
