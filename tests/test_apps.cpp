// Application-suite tests: every mini app must run to completion
// deterministically at small scale, produce interceptable activity, and
// exhibit the structural property it was built for.
#include <gtest/gtest.h>

#include "src/apps/apps.hpp"
#include "src/core/vapro.hpp"
#include "src/sim/runtime.hpp"

namespace vapro::apps {
namespace {

sim::SimConfig small_cfg(int ranks) {
  sim::SimConfig cfg;
  cfg.ranks = ranks;
  cfg.cores_per_node = 8;
  cfg.seed = 9;
  return cfg;
}

// Parameterized over every registered application.
struct SuiteCase {
  std::string name;
  bool multithreaded;
};

class EveryApp : public ::testing::TestWithParam<std::string> {
 protected:
  static AppSpec find_app(const std::string& name) {
    for (double scale : {1.0}) {
      for (auto& spec : multiprocess_suite(scale))
        if (spec.name == name) return spec;
      for (auto& spec : multithreaded_suite(scale))
        if (spec.name == name) return spec;
    }
    ADD_FAILURE() << "unknown app " << name;
    return AppSpec{};
  }
};

TEST_P(EveryApp, RunsToCompletionAndIsObservable) {
  AppSpec spec = find_app(GetParam());
  sim::Simulator s(small_cfg(8));
  core::VaproOptions opts;
  opts.window_seconds = 0.25;
  core::VaproSession session(s, opts);
  auto result = s.run(spec.program);
  EXPECT_GT(result.makespan, 0.0) << spec.name;
  EXPECT_GT(session.fragments_recorded(), 20u) << spec.name;
  double total = 0;
  for (double t : result.finish_times) total += t;
  EXPECT_GT(session.coverage(total), 0.2) << spec.name;
}

TEST_P(EveryApp, DeterministicMakespan) {
  AppSpec spec = find_app(GetParam());
  auto once = [&] {
    sim::Simulator s(small_cfg(4));
    return s.run(spec.program).makespan;
  };
  EXPECT_DOUBLE_EQ(once(), once()) << spec.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, EveryApp,
    ::testing::Values("AMG", "CESM", "BT", "CG", "EP", "FT", "LU", "MG", "SP",
                      "BERT", "PageRank", "WordCount", "FFT", "blackscholes",
                      "canneal", "ferret", "swaptions", "vips"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

TEST(AppStructure, AmgIsInvisibleToStaticAnalysis) {
  // Every AMG compute is runtime-fixed only.
  sim::Simulator s(small_cfg(4));
  core::VaproOptions opts;
  core::VaproSession session(s, opts);
  AmgParams p;
  p.iters = 20;
  s.run(amg(p));
  EXPECT_GT(session.fragments_recorded(), 0u);
}

TEST(AppStructure, HplIterationsFormPerStepClusters) {
  sim::Simulator s(small_cfg(8));
  core::VaproOptions opts;
  opts.window_seconds = 1e6;  // single final window → global clustering
  opts.record_eval_pairs = true;
  core::VaproSession session(s, opts);
  HplParams p;
  p.panels = 20;
  s.run(hpl(p));
  // Trailing updates at step k share a truth class across ranks; the
  // clustering must keep them separable (completeness high).
  auto v = session.clustering_quality();
  EXPECT_GT(v.completeness, 0.95);
}

TEST(AppStructure, RaxmlBufferedSkipsFilesystem) {
  auto run_io = [&](bool buffered) {
    sim::Simulator s(small_cfg(4));
    core::VaproOptions opts;
    core::VaproSession session(s, opts);
    RaxmlParams p;
    p.io_rounds = 50;
    p.compute_iters = 10;
    p.buffered = buffered;
    s.run(raxml(p));
    const auto& cov = session.coverage_accumulator();
    return cov.observed[static_cast<int>(core::FragmentKind::kIo)];
  };
  const double io_unbuffered = run_io(false);
  const double io_buffered = run_io(true);
  // Buffered mode still pays for the warm-up reads, so expect a strong but
  // not total reduction.
  EXPECT_GT(io_unbuffered, 3 * io_buffered);
}

TEST(AppStructure, SuitesAreWellFormed) {
  auto mp = multiprocess_suite();
  auto mt = multithreaded_suite();
  EXPECT_EQ(mp.size(), 9u);
  EXPECT_EQ(mt.size(), 9u);
  for (const auto& spec : mp) EXPECT_FALSE(spec.multithreaded);
  for (const auto& spec : mt) EXPECT_TRUE(spec.multithreaded);
  // CESM is the one vSensor cannot handle.
  for (const auto& spec : mp)
    EXPECT_EQ(spec.vsensor_supported, spec.name != "CESM") << spec.name;
}

}  // namespace
}  // namespace vapro::apps
