// End-to-end integration tests: each injected noise kind must be detected
// in the right category, localized to the right ranks/interval, and
// diagnosed to the right breakdown factor — the full §3 + §4 pipeline on
// real mini apps.
#include <gtest/gtest.h>

#include <cmath>

#include "src/apps/apps.hpp"
#include "src/core/vapro.hpp"
#include "src/sim/runtime.hpp"

namespace vapro {
namespace {

using core::FactorId;
using core::FragmentKind;

sim::SimConfig cfg16(std::uint64_t seed = 21) {
  sim::SimConfig cfg;
  cfg.ranks = 16;
  cfg.cores_per_node = 8;
  cfg.seed = seed;
  return cfg;
}

bool culprits_contain(const core::DiagnosisReport& report, FactorId id) {
  for (FactorId f : report.culprits)
    if (f == id) return true;
  return false;
}

TEST(Integration, MemoryNoiseDiagnosedAsDramBound) {
  sim::SimConfig cfg = cfg16();
  sim::NoiseSpec noise;
  noise.kind = sim::NoiseKind::kMemoryBandwidth;
  noise.node = 1;
  noise.magnitude = 3.5;
  cfg.noises.push_back(noise);
  sim::Simulator s(cfg);
  core::VaproOptions opts;
  opts.window_seconds = 0.1;
  core::VaproSession session(s, opts);
  apps::NekboneParams p;
  p.iters = 150;
  s.run(apps::nekbone(p));

  auto regions = session.locate(FragmentKind::kComputation);
  ASSERT_FALSE(regions.empty());
  EXPECT_GE(regions.front().rank_lo, 8);  // node 1 = ranks 8..15
  ASSERT_TRUE(session.server().diagnosis_finished());
  EXPECT_TRUE(culprits_contain(session.diagnosis(), FactorId::kDramBound));
}

TEST(Integration, CpuContentionDiagnosedAsSuspension) {
  sim::SimConfig cfg = cfg16();
  sim::NoiseSpec noise;
  noise.kind = sim::NoiseKind::kCpuContention;
  noise.node = 0;
  noise.magnitude = 1.0;
  cfg.noises.push_back(noise);
  sim::Simulator s(cfg);
  core::VaproOptions opts;
  opts.window_seconds = 0.1;
  core::VaproSession session(s, opts);
  apps::NpbParams p;
  p.iters = 60;
  s.run(apps::cg(p));

  const auto& report = session.diagnosis();
  // Suspension must be flagged major at stage 1, and involuntary context
  // switches should appear in the descent (the paper's Fig 13 finding).
  bool suspension_major = false, invol_examined = false;
  for (const auto& f : report.findings) {
    if (f.id == FactorId::kSuspension && f.major) suspension_major = true;
    if (f.id == FactorId::kInvoluntaryCs) invol_examined = true;
  }
  EXPECT_TRUE(suspension_major);
  EXPECT_TRUE(invol_examined);
}

TEST(Integration, L2BugDiagnosedInMemoryHierarchy) {
  sim::SimConfig cfg = cfg16();
  cfg.cores_per_node = 16;  // single node, "second socket" = cores 8-15
  sim::NoiseSpec bug;
  bug.kind = sim::NoiseKind::kL2CacheBug;
  bug.node = 0;
  bug.magnitude = 20.0;
  // Only the second socket: model as per-core specs.
  for (int c = 8; c < 16; ++c) {
    bug.core = c;
    cfg.noises.push_back(bug);
  }
  sim::Simulator s(cfg);
  core::VaproOptions opts;
  opts.window_seconds = 0.1;
  core::VaproSession session(s, opts);
  apps::HplParams p;
  p.panels = 80;
  s.run(apps::hpl(p));

  auto regions = session.locate(FragmentKind::kComputation);
  ASSERT_FALSE(regions.empty());
  EXPECT_GE(regions.front().rank_lo, 8);
  ASSERT_TRUE(session.server().diagnosis_finished());
  const auto& report = session.diagnosis();
  EXPECT_TRUE(culprits_contain(report, FactorId::kL2Bound) ||
              culprits_contain(report, FactorId::kDramBound));
}

TEST(Integration, IoInterferenceShowsInIoMapOnly) {
  sim::SimConfig cfg = cfg16();
  sim::NoiseSpec io;
  io.kind = sim::NoiseKind::kIoInterference;
  io.magnitude = 20.0;
  io.t_begin = 0.05;
  cfg.noises.push_back(io);
  sim::Simulator s(cfg);
  core::VaproOptions opts;
  opts.window_seconds = 0.1;
  core::VaproSession session(s, opts);
  apps::RaxmlParams p;
  p.io_rounds = 150;
  p.compute_iters = 30;
  s.run(apps::raxml(p));

  auto io_regions = session.locate(FragmentKind::kIo);
  ASSERT_FALSE(io_regions.empty());
  // Only rank 0 performs IO.
  EXPECT_EQ(io_regions.front().rank_lo, 0);
  EXPECT_EQ(io_regions.front().rank_hi, 0);
}

TEST(Integration, NoiseWindowLocalizedInTime) {
  sim::SimConfig cfg = cfg16();
  sim::NoiseSpec noise;
  noise.kind = sim::NoiseKind::kCpuContention;
  noise.node = 0;
  noise.magnitude = 1.0;
  noise.t_begin = 0.3;
  noise.t_end = 0.6;
  cfg.noises.push_back(noise);
  sim::Simulator s(cfg);
  core::VaproOptions opts;
  opts.window_seconds = 0.1;
  opts.bin_seconds = 0.05;
  core::VaproSession session(s, opts);
  apps::NpbParams p;
  p.iters = 60;
  s.run(apps::cg(p));

  auto regions = session.locate(FragmentKind::kComputation);
  ASSERT_FALSE(regions.empty());
  const auto& top = regions.front();
  // Region must overlap [0.3, 0.6] and not extend far beyond it.
  EXPECT_LT(top.time_lo(opts.bin_seconds), 0.6);
  EXPECT_GT(top.time_hi(opts.bin_seconds), 0.3);
  EXPECT_GT(top.time_lo(opts.bin_seconds), 0.1);
  EXPECT_LT(top.time_hi(opts.bin_seconds), 0.9);
}

TEST(Integration, QuietRunReportsNoVariance) {
  sim::Simulator s(cfg16());
  core::VaproOptions opts;
  opts.window_seconds = 0.1;
  core::VaproSession session(s, opts);
  apps::NpbParams p;
  p.iters = 40;
  s.run(apps::cg(p));
  auto regions = session.locate(FragmentKind::kComputation);
  // Nothing should look like severe variance on a quiet machine.
  double worst = 1.0;
  for (const auto& r : regions) worst = std::min(worst, r.mean_perf);
  EXPECT_TRUE(regions.empty() || worst > 0.5);
  EXPECT_FALSE(session.server().diagnosis_finished());
}

TEST(Integration, Table2ScoresPerfectForCgAndImperfectForPagerank) {
  auto score = [&](const sim::Simulator::RankProgram& prog) {
    sim::Simulator s(cfg16());
    core::VaproOptions opts;
    opts.window_seconds = 1e6;  // single global window
    opts.record_eval_pairs = true;
    opts.run_diagnosis = false;
    core::VaproSession session(s, opts);
    s.run(prog);
    return session.clustering_quality();
  };
  apps::NpbParams cg_p;
  cg_p.iters = 30;
  auto cg_score = score(apps::cg(cg_p));
  EXPECT_GT(cg_score.completeness, 0.99);
  EXPECT_GT(cg_score.homogeneity, 0.99);

  apps::ThreadedParams pr_p;
  pr_p.iters = 60;
  auto pr_score = score(apps::pagerank(pr_p));
  EXPECT_GT(pr_score.completeness, 0.95);
  EXPECT_LT(pr_score.homogeneity, 0.9);  // two classes merged by design
}

TEST(Integration, SamplingReducesDataVolume) {
  auto volume = [&](core::SamplingPolicy policy) {
    sim::Simulator s(cfg16());
    core::VaproOptions opts;
    opts.sampling = policy;
    opts.sampling_warmup = 16;
    core::VaproSession session(s, opts);
    apps::NpbParams p;
    p.iters = 80;
    s.run(apps::cg(p));
    return session.fragments_recorded();
  };
  const auto full = volume(core::SamplingPolicy::kNone);
  const auto backoff = volume(core::SamplingPolicy::kBackoff);
  EXPECT_LT(backoff, full * 3 / 4);
  EXPECT_GT(backoff, 0u);
}

TEST(Integration, SkipShortSamplingKeepsTimeCoverage) {
  auto run = [&](core::SamplingPolicy policy, double* coverage_out) {
    sim::Simulator s(cfg16());
    core::VaproOptions opts;
    opts.sampling = policy;
    opts.sampling_warmup = 8;
    core::VaproSession session(s, opts);
    apps::NpbParams p;
    p.iters = 120;
    auto result = s.run(apps::lu(p));  // LU: frequent short fragments
    double total = 0;
    for (double t : result.finish_times) total += t;
    *coverage_out = session.coverage(total);
    return session.fragments_recorded();
  };
  double cov_full = 0, cov_skip = 0;
  const auto full = run(core::SamplingPolicy::kNone, &cov_full);
  const auto skip = run(core::SamplingPolicy::kSkipShort, &cov_skip);
  // Volume drops substantially...
  EXPECT_LT(skip, full * 4 / 5);
  // ...while (time-weighted) coverage degrades only mildly: long fragments
  // are always kept (§3.5's heuristic claim).
  EXPECT_GT(cov_skip, cov_full * 0.25);
}

TEST(Integration, FocusRegionSeparatesConcurrentCauses) {
  // Two simultaneous variance sources with different causes: CPU hog on
  // node 0, slow DRAM on node 1.  Region-of-interest diagnosis must blame
  // the right factor for each region (§3.5's user-selected diagnosis).
  auto run_focused = [&](int rank_lo, int rank_hi) {
    sim::SimConfig cfg = cfg16(33);
    sim::NoiseSpec hog;
    hog.kind = sim::NoiseKind::kCpuContention;
    hog.node = 0;
    hog.magnitude = 1.0;
    cfg.noises.push_back(hog);
    sim::NoiseSpec dimm;
    dimm.kind = sim::NoiseKind::kSlowDram;
    dimm.node = 1;
    dimm.magnitude = 3.0;
    cfg.noises.push_back(dimm);
    sim::Simulator s(cfg);
    core::VaproOptions opts;
    opts.window_seconds = 0.1;
    core::VaproSession session(s, opts);
    core::FocusRegion focus;
    focus.rank_lo = rank_lo;
    focus.rank_hi = rank_hi;
    session.refocus_diagnosis(focus);
    apps::NekboneParams p;
    p.iters = 200;
    s.run(apps::nekbone(p));
    return session.diagnosis().culprits;
  };
  auto node0_culprits = run_focused(0, 7);
  ASSERT_FALSE(node0_culprits.empty());
  EXPECT_EQ(node0_culprits[0], FactorId::kInvoluntaryCs);
  auto node1_culprits = run_focused(8, 15);
  ASSERT_FALSE(node1_culprits.empty());
  EXPECT_EQ(node1_culprits[0], FactorId::kDramBound);
}

TEST(Integration, RareExpensivePathsAreReported) {
  sim::Simulator s(cfg16());
  core::VaproOptions opts;
  opts.window_seconds = 0.2;
  core::VaproSession session(s, opts);
  // A program with a one-off expensive path between two unique sites.
  s.run([](sim::RankContext& ctx) -> sim::Task {
    for (int i = 0; i < 30; ++i) {
      co_await ctx.compute(pmu::ComputeWorkload::balanced(2e6, 1));
      co_await ctx.barrier(1);
    }
    if (ctx.rank() == 0) {
      co_await ctx.probe(77);
      co_await ctx.compute(pmu::ComputeWorkload::balanced(8e7, 99));
      co_await ctx.probe(78);
    }
    co_await ctx.barrier(2);
  });
  const auto& findings = session.rare_findings();
  ASSERT_FALSE(findings.empty());
  bool saw_expensive = false;
  for (const auto& f : findings) {
    if (f.kind == core::FragmentKind::kComputation && f.executions < 5 &&
        f.total_seconds > 0.02) {
      saw_expensive = true;
    }
  }
  EXPECT_TRUE(saw_expensive);
}

TEST(Integration, ContextAwareCostsMoreThanContextFree) {
  auto makespan_with_mode = [&](core::StgMode mode) {
    sim::SimConfig cfg = cfg16();
    cfg.intercept_cost.base_seconds = 2e-6;
    cfg.intercept_cost.per_frame_seconds = 2e-6;
    sim::Simulator s(cfg);
    core::VaproOptions opts;
    opts.stg_mode = mode;
    core::VaproSession session(s, opts);
    apps::CesmParams p;
    p.steps = 10;
    return s.run(apps::cesm(p)).makespan;
  };
  sim::Simulator bare(cfg16());
  apps::CesmParams p;
  p.steps = 10;
  const double t_none = bare.run(apps::cesm(p)).makespan;
  const double t_cf = makespan_with_mode(core::StgMode::kContextFree);
  const double t_ca = makespan_with_mode(core::StgMode::kContextAware);
  EXPECT_GT(t_cf, t_none * 0.999);
  EXPECT_GT(t_ca, t_cf * 1.01);  // deep stacks make backtraces expensive
}

TEST(Integration, MgCoverageCollapsesUnderContextAwareStg) {
  auto coverage_with_mode = [&](core::StgMode mode) {
    sim::Simulator s(cfg16());
    core::VaproOptions opts;
    opts.stg_mode = mode;
    opts.window_seconds = 1e6;
    opts.run_diagnosis = false;
    core::VaproSession session(s, opts);
    apps::NpbParams p;
    p.iters = 40;
    auto result = s.run(apps::mg(p));
    double total = 0;
    for (double t : result.finish_times) total += t;
    return session.coverage(total);
  };
  const double cf = coverage_with_mode(core::StgMode::kContextFree);
  const double ca = coverage_with_mode(core::StgMode::kContextAware);
  EXPECT_GT(cf, 0.5);
  EXPECT_LT(ca, cf * 0.5);  // Table 1's MG: 5.1 vs 77.7
}

TEST(Integration, ExtraProxyMetricSeparatesEqualInstructionWorkloads) {
  // Two kernels with identical TOT_INS but different memory behaviour
  // alternate between the same call sites.  With the default proxy they
  // merge into one cluster whose slow half looks like permanent variance
  // (a false positive); adding MEM_REFS to the workload vector (§3.4)
  // separates them and the false variance disappears.
  auto run_with = [&](std::vector<pmu::Counter> proxies, int budget) {
    sim::Simulator s(cfg16());
    core::VaproOptions opts;
    opts.window_seconds = 0.2;
    opts.run_diagnosis = false;
    opts.cluster.proxies = std::move(proxies);
    opts.pmu_budget = budget;
    opts.record_eval_pairs = true;
    core::VaproSession session(s, opts);
    s.run([](sim::RankContext& ctx) -> sim::Task {
      for (int i = 0; i < 120; ++i) {
        pmu::ComputeWorkload w =
            i % 2 == 0 ? pmu::ComputeWorkload::compute_bound(2e6, 0)
                       : pmu::ComputeWorkload::memory_bound(2e6, 1);
        co_await ctx.compute(w);
        co_await ctx.barrier(1);
      }
    });
    struct Out {
      std::size_t regions;
      double homogeneity;
    };
    return Out{session.locate(core::FragmentKind::kComputation).size(),
               session.clustering_quality().homogeneity};
  };

  auto ins_only = run_with({pmu::Counter::kTotIns}, 4);
  auto with_mem =
      run_with({pmu::Counter::kTotIns, pmu::Counter::kMemRefs}, 5);
  // TOT_INS alone merges the classes (impure clusters, phantom variance).
  EXPECT_LT(ins_only.homogeneity, 0.5);
  EXPECT_GT(ins_only.regions, 0u);
  // MEM_REFS separates them: pure clusters, no false variance.
  EXPECT_GT(with_mem.homogeneity, 0.99);
  EXPECT_EQ(with_mem.regions, 0u);
}

TEST(Integration, EnhancedProfilingRemovesWaitInflatedCommVariance) {
  // Without an enhanced profiling layer, a rank delayed by a slowed peer
  // books the wait inside its Recv/Wait elapsed time, so the comm map
  // shows phantom variance everywhere.  With §3.3's enhanced layer the
  // recorded comm time is the true transfer time and the artifact
  // disappears.
  auto comm_impact = [&](bool enhanced) {
    sim::SimConfig cfg = cfg16();
    cfg.enhanced_comm_profiling = enhanced;
    sim::NoiseSpec hog;
    hog.kind = sim::NoiseKind::kCpuContention;
    hog.node = 0;
    hog.magnitude = 1.0;
    cfg.noises.push_back(hog);
    sim::Simulator s(cfg);
    core::VaproOptions opts;
    opts.window_seconds = 0.1;
    opts.run_diagnosis = false;
    core::VaproSession session(s, opts);
    s.run([](sim::RankContext& ctx) -> sim::Task {
      const int partner = ctx.rank() ^ 1;
      for (int i = 0; i < 60; ++i) {
        sim::Request r = co_await ctx.irecv(partner, 1);
        co_await ctx.compute(pmu::ComputeWorkload::balanced(3e6, 1));
        co_await ctx.isend(partner, 4096, 2);
        co_await ctx.wait(r, 3);
      }
    });
    double impact = 0;
    for (const auto& r : session.locate(FragmentKind::kCommunication))
      impact += r.impact_seconds;
    return impact;
  };
  const double plain = comm_impact(false);
  const double enhanced = comm_impact(true);
  EXPECT_GT(plain, 0.1);                // wait time shows as comm variance
  EXPECT_LT(enhanced, plain * 0.2);     // the layer removes the artifact
}

TEST(Integration, MultiThreadedAnalysisMatchesSingle) {
  auto run_with_threads = [&](int threads) {
    sim::Simulator s(cfg16());
    core::VaproOptions opts;
    opts.analysis_threads = threads;
    opts.window_seconds = 0.1;
    core::VaproSession session(s, opts);
    apps::NpbParams p;
    p.iters = 40;
    s.run(apps::cg(p));
    const auto& cov = session.coverage_accumulator();
    return cov.covered_total();
  };
  EXPECT_DOUBLE_EQ(run_with_threads(1), run_with_threads(4));
}

}  // namespace
}  // namespace vapro
