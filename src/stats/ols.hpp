// Ordinary least squares with inference, as used by Vapro's OLS-based factor
// quantification (paper §4.2): execution time is the explained variable,
// normalized factor counters are the explanatory variables, and only factors
// with p < 0.05 survive into the diagnosis.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace vapro::stats {

struct OlsResult {
  bool ok = false;                    // false when X'X is singular
  std::vector<double> coefficients;   // slope per explanatory column
  double intercept = 0.0;             // present when fit_intercept
  std::vector<double> std_errors;     // per coefficient
  std::vector<double> t_stats;        // per coefficient
  std::vector<double> p_values;       // two-sided, per coefficient
  double r_squared = 0.0;
  double residual_variance = 0.0;     // sigma^2 estimate
  std::size_t n = 0;                  // observations
  std::size_t k = 0;                  // explanatory variables (w/o intercept)
};

// Fits y ≈ X b (+ intercept).  `x` is row-major with `n_cols` columns.
OlsResult ols_fit(std::span<const double> y, std::span<const double> x,
                  std::size_t n_cols, bool fit_intercept = true);

// Convenience overload for column-wise inputs.
OlsResult ols_fit_columns(std::span<const double> y,
                          const std::vector<std::vector<double>>& columns,
                          bool fit_intercept = true);

}  // namespace vapro::stats
