// Cumulative distribution functions used by the diagnosis pipeline:
//  - Student's t         → OLS coefficient p-values (paper §4.2, p < 0.05)
//  - chi-squared         → Farrar–Glauber multicollinearity test
//  - F                   → Farrar–Glauber per-variable F statistic
//  - standard normal     → misc. helpers
#pragma once

namespace vapro::stats {

// Standard normal CDF.
double normal_cdf(double x);

// Chi-squared CDF with k degrees of freedom.
double chi2_cdf(double x, double k);
// Upper-tail probability P(X >= x).
double chi2_sf(double x, double k);

// Student's t CDF with v degrees of freedom.
double student_t_cdf(double t, double v);
// Two-sided p-value for a t statistic.
double student_t_two_sided_p(double t, double v);

// F distribution CDF with (d1, d2) degrees of freedom.
double f_cdf(double x, double d1, double d2);
double f_sf(double x, double d1, double d2);

}  // namespace vapro::stats
