#include "src/stats/descriptive.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/check.hpp"

namespace vapro::stats {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double min(std::span<const double> xs) {
  VAPRO_CHECK(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) {
  VAPRO_CHECK(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double coeff_variation(std::span<const double> xs) {
  double m = mean(xs);
  return m == 0.0 ? 0.0 : stddev(xs) / m;
}

double percentile(std::span<const double> xs, double p) {
  VAPRO_CHECK(!xs.empty());
  VAPRO_CHECK(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  std::size_t lo = static_cast<std::size_t>(rank);
  std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  VAPRO_CHECK(xs.size() == ys.size());
  if (xs.size() < 2) return 0.0;
  double mx = mean(xs), my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    double dx = xs[i] - mx, dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> cdf_curve(std::span<const double> xs, int points) {
  VAPRO_CHECK(points >= 2);
  std::vector<double> curve(static_cast<std::size_t>(points));
  for (int i = 0; i < points; ++i) {
    double p = 100.0 * static_cast<double>(i) / static_cast<double>(points - 1);
    curve[static_cast<std::size_t>(i)] = percentile(xs, p);
  }
  return curve;
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace vapro::stats
