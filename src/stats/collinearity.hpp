// Multicollinearity detection for the OLS quantifier.
//
// The paper (§4.2) checks explanatory factors with the Farrar–Glauber test
// and removes multicollinear factors one by one until the test passes; the
// coefficients of removed factors are later recovered from their linear
// relation to the retained ones.  This header provides:
//   * the correlation matrix,
//   * the Farrar–Glauber chi-squared statistic and p-value,
//   * variance inflation factors (to pick which variable to drop),
//   * the iterative reduction loop itself.
#pragma once

#include <cstddef>
#include <vector>

#include "src/stats/matrix.hpp"

namespace vapro::stats {

// Pearson correlation matrix of the given columns (all same length).
// Columns with zero variance correlate 0 with everything (and 1 with self).
Matrix correlation_matrix(const std::vector<std::vector<double>>& columns);

struct FarrarGlauberResult {
  double chi2 = 0.0;      // test statistic
  double p_value = 1.0;   // upper tail of chi2 with k(k-1)/2 dof
  bool collinear = false; // p < alpha → reject "no multicollinearity"
};

// Farrar–Glauber chi-squared test on a correlation matrix built from
// n observations of k variables:  chi2 = -(n - 1 - (2k+5)/6) * ln|R|.
FarrarGlauberResult farrar_glauber(const Matrix& correlation, std::size_t n,
                                   double alpha = 0.05);

// Variance inflation factor per variable: VIF_j = [ (R^-1)_jj ].
// Returns an empty vector when R is singular (perfect collinearity) —
// callers should then drop the variable with the largest |pairwise r|.
std::vector<double> variance_inflation_factors(const Matrix& correlation);

struct CollinearityReduction {
  // Indices (into the original column list) retained for OLS.
  std::vector<std::size_t> kept;
  // Indices removed, in removal order.
  std::vector<std::size_t> removed;
  // For each removed variable: regression of it on the kept variables, so
  // its effect can be re-attributed after OLS (paper §4.2 last step).
  // relation[i][j] is the coefficient of kept[j] for removed[i].
  std::vector<std::vector<double>> relation;
};

// Removes variables until Farrar–Glauber no longer signals multicollinearity
// (or until ≤ 2 remain).  Drop order: highest VIF first; on singular R, the
// member of the most-correlated pair with the larger mean |r| to the rest.
CollinearityReduction reduce_multicollinearity(
    const std::vector<std::vector<double>>& columns, double alpha = 0.05,
    double vif_limit = 10.0);

}  // namespace vapro::stats
