#include "src/stats/ols.hpp"

#include <cmath>

#include "src/stats/dist.hpp"
#include "src/stats/matrix.hpp"
#include "src/util/check.hpp"

namespace vapro::stats {

OlsResult ols_fit(std::span<const double> y, std::span<const double> x,
                  std::size_t n_cols, bool fit_intercept) {
  OlsResult res;
  VAPRO_CHECK(n_cols > 0);
  VAPRO_CHECK(x.size() % n_cols == 0);
  const std::size_t n = x.size() / n_cols;
  VAPRO_CHECK(y.size() == n);
  const std::size_t p = n_cols + (fit_intercept ? 1 : 0);
  if (n <= p) return res;  // not enough observations for inference

  // Design matrix with optional leading intercept column.
  Matrix design(n, p);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t c = 0;
    if (fit_intercept) design(i, c++) = 1.0;
    for (std::size_t j = 0; j < n_cols; ++j)
      design(i, c + j) = x[i * n_cols + j];
  }

  Matrix xt = design.transpose();
  Matrix xtx = xt * design;
  Matrix xtx_inv;
  if (!xtx.inverse(xtx_inv)) return res;

  // beta = (X'X)^-1 X' y
  std::vector<double> xty(p, 0.0);
  for (std::size_t j = 0; j < p; ++j)
    for (std::size_t i = 0; i < n; ++i) xty[j] += design(i, j) * y[i];
  std::vector<double> beta(p, 0.0);
  for (std::size_t j = 0; j < p; ++j)
    for (std::size_t k = 0; k < p; ++k) beta[j] += xtx_inv(j, k) * xty[k];

  // Residuals, R², sigma².
  double ss_res = 0.0, ss_tot = 0.0, y_mean = 0.0;
  for (std::size_t i = 0; i < n; ++i) y_mean += y[i];
  y_mean /= static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    double fit = 0.0;
    for (std::size_t j = 0; j < p; ++j) fit += design(i, j) * beta[j];
    double r = y[i] - fit;
    ss_res += r * r;
    ss_tot += (y[i] - y_mean) * (y[i] - y_mean);
  }
  const double dof = static_cast<double>(n - p);
  const double sigma2 = ss_res / dof;

  res.ok = true;
  res.n = n;
  res.k = n_cols;
  res.residual_variance = sigma2;
  res.r_squared = ss_tot == 0.0 ? 1.0 : 1.0 - ss_res / ss_tot;

  const std::size_t base = fit_intercept ? 1 : 0;
  if (fit_intercept) res.intercept = beta[0];
  res.coefficients.resize(n_cols);
  res.std_errors.resize(n_cols);
  res.t_stats.resize(n_cols);
  res.p_values.resize(n_cols);
  for (std::size_t j = 0; j < n_cols; ++j) {
    res.coefficients[j] = beta[base + j];
    double se = std::sqrt(std::max(0.0, sigma2 * xtx_inv(base + j, base + j)));
    res.std_errors[j] = se;
    if (se > 0.0) {
      res.t_stats[j] = res.coefficients[j] / se;
      res.p_values[j] = student_t_two_sided_p(res.t_stats[j], dof);
    } else {
      // Zero residual variance: the fit is exact, the coefficient is certain.
      res.t_stats[j] = res.coefficients[j] == 0.0 ? 0.0 : 1e30;
      res.p_values[j] = res.coefficients[j] == 0.0 ? 1.0 : 0.0;
    }
  }
  return res;
}

OlsResult ols_fit_columns(std::span<const double> y,
                          const std::vector<std::vector<double>>& columns,
                          bool fit_intercept) {
  VAPRO_CHECK(!columns.empty());
  const std::size_t n = y.size();
  for (const auto& c : columns) VAPRO_CHECK(c.size() == n);
  std::vector<double> row_major(n * columns.size());
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < columns.size(); ++j)
      row_major[i * columns.size() + j] = columns[j][i];
  return ols_fit(y, row_major, columns.size(), fit_intercept);
}

}  // namespace vapro::stats
