// V-measure cluster evaluation (Rosenberg & Hirschberg 2007), used by the
// paper's Table 2 to validate fixed-workload identification against ground
// truth: completeness C, homogeneity H, and their harmonic mean V.
#pragma once

#include <cstddef>
#include <span>

namespace vapro::stats {

struct VMeasure {
  double homogeneity = 0.0;
  double completeness = 0.0;
  double v_measure = 0.0;
};

// `truth[i]` is the ground-truth class of sample i, `predicted[i]` the
// cluster assigned by the algorithm under test.  Labels are arbitrary ids.
VMeasure v_measure(std::span<const int> truth, std::span<const int> predicted,
                   double beta = 1.0);

}  // namespace vapro::stats
