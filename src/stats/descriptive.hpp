// Descriptive statistics on value series: detection reports, run-to-run
// variability figures (Fig 1, Fig 16), and the EXPERIMENTS.md summaries are
// produced with these helpers.
#pragma once

#include <span>
#include <vector>

namespace vapro::stats {

double mean(std::span<const double> xs);
// Sample variance (n-1 denominator); 0 for n < 2.
double variance(std::span<const double> xs);
double stddev(std::span<const double> xs);
double min(std::span<const double> xs);
double max(std::span<const double> xs);
// Coefficient of variation = stddev / mean.
double coeff_variation(std::span<const double> xs);

// Linear-interpolated percentile, p in [0, 100].
double percentile(std::span<const double> xs, double p);

// Pearson correlation of two equal-length series.
double pearson(std::span<const double> xs, std::span<const double> ys);

// Evenly spaced CDF samples (value at each of `points` percentiles),
// useful for plotting distribution curves like the paper's Fig 16.
std::vector<double> cdf_curve(std::span<const double> xs, int points);

// Welford-style online accumulator for streaming statistics.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  // sample variance
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace vapro::stats
