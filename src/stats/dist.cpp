#include "src/stats/dist.hpp"

#include <cmath>

#include "src/stats/special.hpp"
#include "src/util/check.hpp"

namespace vapro::stats {

double normal_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double chi2_cdf(double x, double k) {
  VAPRO_CHECK(k > 0.0);
  if (x <= 0.0) return 0.0;
  return gamma_p(k / 2.0, x / 2.0);
}

double chi2_sf(double x, double k) {
  VAPRO_CHECK(k > 0.0);
  if (x <= 0.0) return 1.0;
  return gamma_q(k / 2.0, x / 2.0);
}

double student_t_cdf(double t, double v) {
  VAPRO_CHECK(v > 0.0);
  double x = v / (v + t * t);
  double p = 0.5 * beta_inc(v / 2.0, 0.5, x);
  return t > 0 ? 1.0 - p : p;
}

double student_t_two_sided_p(double t, double v) {
  VAPRO_CHECK(v > 0.0);
  double x = v / (v + t * t);
  return beta_inc(v / 2.0, 0.5, x);
}

double f_cdf(double x, double d1, double d2) {
  VAPRO_CHECK(d1 > 0.0 && d2 > 0.0);
  if (x <= 0.0) return 0.0;
  return beta_inc(d1 / 2.0, d2 / 2.0, d1 * x / (d1 * x + d2));
}

double f_sf(double x, double d1, double d2) { return 1.0 - f_cdf(x, d1, d2); }

}  // namespace vapro::stats
