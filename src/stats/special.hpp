// Special functions needed by the statistical distributions: regularized
// incomplete gamma and beta functions.  Implementations follow the classic
// series/continued-fraction split (Numerical Recipes style) with relative
// accuracy ~1e-12, far beyond what the diagnosis pipeline needs.
#pragma once

namespace vapro::stats {

// Regularized lower incomplete gamma P(a, x) = γ(a,x)/Γ(a), a > 0, x >= 0.
double gamma_p(double a, double x);

// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double gamma_q(double a, double x);

// Regularized incomplete beta I_x(a, b), a, b > 0, x in [0, 1].
double beta_inc(double a, double b, double x);

}  // namespace vapro::stats
