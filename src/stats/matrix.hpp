// Small dense matrix for the OLS / multicollinearity machinery.  Problem
// sizes are tiny (≤ ~20 explanatory factors), so a straightforward row-major
// implementation with partial-pivot Gaussian elimination is exactly right.
#pragma once

#include <cstddef>
#include <vector>

namespace vapro::stats {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  Matrix transpose() const;
  Matrix operator*(const Matrix& rhs) const;
  Matrix operator+(const Matrix& rhs) const;
  Matrix operator-(const Matrix& rhs) const;

  // Solves A x = b via Gaussian elimination with partial pivoting.
  // Returns false when A is (numerically) singular.
  bool solve(const std::vector<double>& b, std::vector<double>& x) const;

  // Inverse via Gauss–Jordan; returns false when singular.
  bool inverse(Matrix& out) const;

  // Determinant via LU; exact enough for the Farrar–Glauber statistic.
  double determinant() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace vapro::stats
