#include "src/stats/special.hpp"

#include <cmath>
#include <limits>

#include "src/util/check.hpp"

namespace vapro::stats {

namespace {

constexpr int kMaxIter = 500;
constexpr double kEps = 1e-14;
constexpr double kFpMin = std::numeric_limits<double>::min() / kEps;

// Series representation of P(a, x); converges fast for x < a + 1.
double gamma_p_series(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int i = 0; i < kMaxIter; ++i) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * kEps) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Continued fraction for Q(a, x); converges fast for x >= a + 1.
double gamma_q_cf(double a, double x) {
  double b = x + 1.0 - a;
  double c = 1.0 / kFpMin;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIter; ++i) {
    double an = -i * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = b + an / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return std::exp(-x + a * std::log(x) - std::lgamma(a)) * h;
}

// Continued fraction for the incomplete beta function (Lentz's method).
double beta_cf(double a, double b, double x) {
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double gamma_p(double a, double x) {
  VAPRO_CHECK(a > 0.0 && x >= 0.0);
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_cf(a, x);
}

double gamma_q(double a, double x) {
  VAPRO_CHECK(a > 0.0 && x >= 0.0);
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - gamma_p_series(a, x);
  return gamma_q_cf(a, x);
}

double beta_inc(double a, double b, double x) {
  VAPRO_CHECK(a > 0.0 && b > 0.0 && x >= 0.0 && x <= 1.0);
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  double ln_front = std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b) +
                    a * std::log(x) + b * std::log1p(-x);
  double front = std::exp(ln_front);
  // Use the symmetry transformation for faster convergence.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_cf(a, b, x) / a;
  }
  return 1.0 - front * beta_cf(b, a, 1.0 - x) / b;
}

}  // namespace vapro::stats
