#include "src/stats/matrix.hpp"

#include <cmath>

#include "src/util/check.hpp"

namespace vapro::stats {

namespace {
constexpr double kPivotEps = 1e-12;
}

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  VAPRO_DCHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  VAPRO_DCHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  VAPRO_CHECK(cols_ == rhs.rows_);
  Matrix out(rows_, rhs.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      double a = (*this)(i, k);
      if (a == 0.0) continue;
      for (std::size_t j = 0; j < rhs.cols_; ++j) out(i, j) += a * rhs(k, j);
    }
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  VAPRO_CHECK(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += rhs.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  VAPRO_CHECK(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= rhs.data_[i];
  return out;
}

bool Matrix::solve(const std::vector<double>& b, std::vector<double>& x) const {
  VAPRO_CHECK(rows_ == cols_ && b.size() == rows_);
  const std::size_t n = rows_;
  Matrix a = *this;
  std::vector<double> rhs = b;

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r)
      if (std::fabs(a(r, col)) > std::fabs(a(pivot, col))) pivot = r;
    if (std::fabs(a(pivot, col)) < kPivotEps) return false;
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(pivot, c), a(col, c));
      std::swap(rhs[pivot], rhs[col]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      double f = a(r, col) / a(col, col);
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a(r, c) -= f * a(col, c);
      rhs[r] -= f * rhs[col];
    }
  }
  x.assign(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double s = rhs[i];
    for (std::size_t c = i + 1; c < n; ++c) s -= a(i, c) * x[c];
    x[i] = s / a(i, i);
  }
  return true;
}

bool Matrix::inverse(Matrix& out) const {
  VAPRO_CHECK(rows_ == cols_);
  const std::size_t n = rows_;
  Matrix a = *this;
  out = identity(n);

  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r)
      if (std::fabs(a(r, col)) > std::fabs(a(pivot, col))) pivot = r;
    if (std::fabs(a(pivot, col)) < kPivotEps) return false;
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(a(pivot, c), a(col, c));
        std::swap(out(pivot, c), out(col, c));
      }
    }
    double inv_p = 1.0 / a(col, col);
    for (std::size_t c = 0; c < n; ++c) {
      a(col, c) *= inv_p;
      out(col, c) *= inv_p;
    }
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      double f = a(r, col);
      if (f == 0.0) continue;
      for (std::size_t c = 0; c < n; ++c) {
        a(r, c) -= f * a(col, c);
        out(r, c) -= f * out(col, c);
      }
    }
  }
  return true;
}

double Matrix::determinant() const {
  VAPRO_CHECK(rows_ == cols_);
  const std::size_t n = rows_;
  Matrix a = *this;
  double det = 1.0;
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r)
      if (std::fabs(a(r, col)) > std::fabs(a(pivot, col))) pivot = r;
    if (std::fabs(a(pivot, col)) < kPivotEps) return 0.0;
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(pivot, c), a(col, c));
      det = -det;
    }
    det *= a(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      double f = a(r, col) / a(col, col);
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a(r, c) -= f * a(col, c);
    }
  }
  return det;
}

}  // namespace vapro::stats
