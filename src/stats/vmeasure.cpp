#include "src/stats/vmeasure.hpp"

#include <cmath>
#include <map>
#include <vector>

#include "src/util/check.hpp"

namespace vapro::stats {

namespace {

double entropy_from_counts(const std::vector<double>& counts, double total) {
  double h = 0.0;
  for (double c : counts) {
    if (c <= 0.0) continue;
    double p = c / total;
    h -= p * std::log(p);
  }
  return h;
}

}  // namespace

VMeasure v_measure(std::span<const int> truth, std::span<const int> predicted,
                   double beta) {
  VAPRO_CHECK(truth.size() == predicted.size());
  VMeasure out;
  const double n = static_cast<double>(truth.size());
  if (truth.empty()) {
    out.homogeneity = out.completeness = out.v_measure = 1.0;
    return out;
  }

  // Contingency table and marginals.
  std::map<int, std::size_t> class_ids, cluster_ids;
  for (int t : truth) class_ids.emplace(t, class_ids.size());
  for (int p : predicted) cluster_ids.emplace(p, cluster_ids.size());
  const std::size_t n_classes = class_ids.size();
  const std::size_t n_clusters = cluster_ids.size();

  std::vector<double> joint(n_classes * n_clusters, 0.0);
  std::vector<double> class_marginal(n_classes, 0.0);
  std::vector<double> cluster_marginal(n_clusters, 0.0);
  for (std::size_t i = 0; i < truth.size(); ++i) {
    std::size_t c = class_ids[truth[i]];
    std::size_t k = cluster_ids[predicted[i]];
    joint[c * n_clusters + k] += 1.0;
    class_marginal[c] += 1.0;
    cluster_marginal[k] += 1.0;
  }

  const double h_class = entropy_from_counts(class_marginal, n);
  const double h_cluster = entropy_from_counts(cluster_marginal, n);

  // Conditional entropies H(class | cluster) and H(cluster | class).
  double h_class_given_cluster = 0.0;
  double h_cluster_given_class = 0.0;
  for (std::size_t c = 0; c < n_classes; ++c) {
    for (std::size_t k = 0; k < n_clusters; ++k) {
      double nck = joint[c * n_clusters + k];
      if (nck <= 0.0) continue;
      h_class_given_cluster -=
          nck / n * std::log(nck / cluster_marginal[k]);
      h_cluster_given_class -= nck / n * std::log(nck / class_marginal[c]);
    }
  }

  out.homogeneity = h_class == 0.0 ? 1.0 : 1.0 - h_class_given_cluster / h_class;
  out.completeness =
      h_cluster == 0.0 ? 1.0 : 1.0 - h_cluster_given_class / h_cluster;
  double denom = beta * out.homogeneity + out.completeness;
  out.v_measure = denom == 0.0
                      ? 0.0
                      : (1.0 + beta) * out.homogeneity * out.completeness / denom;
  return out;
}

}  // namespace vapro::stats
