#include "src/stats/collinearity.hpp"

#include <algorithm>
#include <cmath>

#include "src/stats/descriptive.hpp"
#include "src/stats/dist.hpp"
#include "src/stats/ols.hpp"
#include "src/util/check.hpp"

namespace vapro::stats {

Matrix correlation_matrix(const std::vector<std::vector<double>>& columns) {
  const std::size_t k = columns.size();
  VAPRO_CHECK(k > 0);
  Matrix r(k, k);
  for (std::size_t i = 0; i < k; ++i) {
    r(i, i) = 1.0;
    for (std::size_t j = i + 1; j < k; ++j) {
      double c = pearson(columns[i], columns[j]);
      r(i, j) = c;
      r(j, i) = c;
    }
  }
  return r;
}

FarrarGlauberResult farrar_glauber(const Matrix& correlation, std::size_t n,
                                   double alpha) {
  const std::size_t k = correlation.rows();
  VAPRO_CHECK(k == correlation.cols());
  FarrarGlauberResult res;
  if (k < 2 || n < 4) return res;

  double det = correlation.determinant();
  // |R| → 0 under strong collinearity; clamp to keep ln finite.
  det = std::max(det, 1e-300);
  double factor = static_cast<double>(n) - 1.0 -
                  (2.0 * static_cast<double>(k) + 5.0) / 6.0;
  res.chi2 = -factor * std::log(det);
  double dof = static_cast<double>(k) * (static_cast<double>(k) - 1.0) / 2.0;
  res.p_value = chi2_sf(res.chi2, dof);
  res.collinear = res.p_value < alpha;
  return res;
}

std::vector<double> variance_inflation_factors(const Matrix& correlation) {
  Matrix inv;
  if (!correlation.inverse(inv)) return {};
  std::vector<double> vif(correlation.rows());
  for (std::size_t i = 0; i < vif.size(); ++i) vif[i] = inv(i, i);
  return vif;
}

namespace {

// Index of the variable to drop: highest VIF when R is invertible, else the
// variable of the strongest-correlated pair with the larger aggregate |r|.
std::size_t pick_victim(const Matrix& r,
                        const std::vector<double>& vif) {
  const std::size_t k = r.rows();
  if (!vif.empty()) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < k; ++i)
      if (vif[i] > vif[best]) best = i;
    return best;
  }
  std::size_t a = 0, b = 1;
  double best_r = -1.0;
  for (std::size_t i = 0; i < k; ++i)
    for (std::size_t j = i + 1; j < k; ++j)
      if (std::fabs(r(i, j)) > best_r) {
        best_r = std::fabs(r(i, j));
        a = i;
        b = j;
      }
  auto aggregate = [&](std::size_t v) {
    double s = 0.0;
    for (std::size_t j = 0; j < k; ++j)
      if (j != v) s += std::fabs(r(v, j));
    return s;
  };
  return aggregate(a) >= aggregate(b) ? a : b;
}

}  // namespace

CollinearityReduction reduce_multicollinearity(
    const std::vector<std::vector<double>>& columns, double alpha,
    double vif_limit) {
  CollinearityReduction out;
  const std::size_t k = columns.size();
  out.kept.resize(k);
  for (std::size_t i = 0; i < k; ++i) out.kept[i] = i;
  if (k < 2) return out;
  const std::size_t n = columns[0].size();

  while (out.kept.size() > 2) {
    std::vector<std::vector<double>> active;
    active.reserve(out.kept.size());
    for (std::size_t idx : out.kept) active.push_back(columns[idx]);
    Matrix r = correlation_matrix(active);
    FarrarGlauberResult fg = farrar_glauber(r, n, alpha);
    std::vector<double> vif = variance_inflation_factors(r);
    bool vif_bad =
        !vif.empty() &&
        *std::max_element(vif.begin(), vif.end()) > vif_limit;
    if (!fg.collinear && !vif_bad && !vif.empty()) break;
    std::size_t local_victim = pick_victim(r, vif);
    out.removed.push_back(out.kept[local_victim]);
    out.kept.erase(out.kept.begin() + static_cast<std::ptrdiff_t>(local_victim));
  }

  // Express each removed variable as a linear combination of kept ones so
  // its coefficient can be recovered after OLS.
  std::vector<std::vector<double>> kept_cols;
  kept_cols.reserve(out.kept.size());
  for (std::size_t idx : out.kept) kept_cols.push_back(columns[idx]);
  for (std::size_t removed_idx : out.removed) {
    OlsResult fit = ols_fit_columns(columns[removed_idx], kept_cols, true);
    out.relation.push_back(fit.ok ? fit.coefficients
                                  : std::vector<double>(out.kept.size(), 0.0));
  }
  return out;
}

}  // namespace vapro::stats
