// Multithreaded applications (paper §6.1: BERT, PageRank, WordCount, and
// six PARSEC programs).  In the simulator, "threads" are ranks placed on
// the cores of a single node; pthread synchronization maps to intercepted
// barrier/send/recv invocations — exactly the POSIX-pthread interposition
// Vapro's real implementation performs (§5).
//
// PageRank carries two workload classes whose instruction counts differ by
// only ~2% — below the clustering threshold — so Vapro merges them: the
// deliberate homogeneity < 1 case of Table 2.
#pragma once

#include "src/sim/runtime.hpp"

namespace vapro::apps {

struct ThreadedParams {
  int iters = 60;
  double scale = 1.0;
};

sim::Simulator::RankProgram bert(ThreadedParams p = {});
sim::Simulator::RankProgram pagerank(ThreadedParams p = {});
sim::Simulator::RankProgram wordcount(ThreadedParams p = {});
// PARSEC-like suite.
sim::Simulator::RankProgram blackscholes(ThreadedParams p = {});
sim::Simulator::RankProgram canneal(ThreadedParams p = {});
sim::Simulator::RankProgram ferret(ThreadedParams p = {});
sim::Simulator::RankProgram swaptions(ThreadedParams p = {});
sim::Simulator::RankProgram vips(ThreadedParams p = {});
sim::Simulator::RankProgram fft(ThreadedParams p = {});

}  // namespace vapro::apps
