// Mini NPB-like workloads (paper §6.1 evaluates BT, CG, EP, FT, LU, MG, SP).
//
// Each program reproduces the *structural* properties that matter to a
// variance tool — communication pattern, call rate, workload-class mix, and
// how much of the computation a static analysis could prove fixed — not the
// physics.  The `iters`/`scale` parameters control virtual run length.
//
// Structural notes (drive the Table 1 coverage/overhead shape):
//   CG — Fig 4's nested sub-loop pattern (irecv/send/wait per sub-loop +
//        allreduce).  Most compute is runtime-fixed only (sparse matrix:
//        trip counts from data) → vSensor sees a small statically fixed
//        slice, Vapro sees almost everything.
//   EP — embarrassingly parallel: one allreduce at the end.  Without
//        probes a fragment spans the whole run (nothing to compare);
//        Dyninst-style probes (§5) cut it into fixed-workload pieces.
//        vSensor has no MPI calls to anchor on → coverage 0.
//   FT — statically provable loops, but the runtime instruction count
//        wobbles a few percent (data-dependent transform butterflies), so
//        Vapro's 5%-threshold clustering splits part of them into rare
//        clusters: the one case where static coverage beats runtime
//        coverage, as in Table 1.
//   LU — pipelined wavefront: very frequent small sends → high call rate
//        (higher interception overhead), almost fully repeated compute.
//   MG — V-cycles whose region path encodes the grid level, so a
//        context-aware STG shatters states while context-free merges them
//        (Table 1's MG: CA coverage collapses, CF stays high).
//   SP/BT — ADI sweeps; a warm-up phase of unique workloads lowers
//        coverage below CG/LU.
#pragma once

#include "src/sim/runtime.hpp"

namespace vapro::apps {

struct NpbParams {
  int iters = 60;            // outer iterations
  double scale = 1.0;        // multiplies per-fragment instruction counts
  int sub_loops = 3;         // CG/SP inner structure
  int warmup_iters = 5;      // unique-workload warm-up (uncovered time)
};

sim::Simulator::RankProgram cg(NpbParams p = {});
sim::Simulator::RankProgram ep(NpbParams p = {});
sim::Simulator::RankProgram ft(NpbParams p = {});
sim::Simulator::RankProgram lu(NpbParams p = {});
sim::Simulator::RankProgram mg(NpbParams p = {});
sim::Simulator::RankProgram sp(NpbParams p = {});
sim::Simulator::RankProgram bt(NpbParams p = {});

}  // namespace vapro::apps
