#include "src/apps/apps.hpp"

namespace vapro::apps {

std::vector<AppSpec> multiprocess_suite(double scale) {
  NpbParams npb;
  npb.scale = scale;
  AmgParams amg_p;
  amg_p.scale = scale;
  CesmParams cesm_p;
  cesm_p.scale = scale;
  return {
      {"AMG", amg(amg_p), /*vsensor=*/true, /*mt=*/false},
      {"CESM", cesm(cesm_p), /*vsensor=*/false, /*mt=*/false},
      {"BT", bt(npb), true, false},
      {"CG", cg(npb), true, false},
      {"EP", ep(npb), true, false},
      {"FT", ft(npb), true, false},
      {"LU", lu(npb), true, false},
      {"MG", mg(npb), true, false},
      {"SP", sp(npb), true, false},
  };
}

std::vector<AppSpec> multithreaded_suite(double scale) {
  ThreadedParams p;
  p.scale = scale;
  return {
      {"BERT", bert(p), false, true},
      {"PageRank", pagerank(p), false, true},
      {"WordCount", wordcount(p), false, true},
      {"FFT", fft(p), false, true},
      {"blackscholes", blackscholes(p), false, true},
      {"canneal", canneal(p), false, true},
      {"ferret", ferret(p), false, true},
      {"swaptions", swaptions(p), false, true},
      {"vips", vips(p), false, true},
  };
}

}  // namespace vapro::apps
