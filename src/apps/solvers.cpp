#include "src/apps/solvers.hpp"

namespace vapro::apps {

using pmu::ComputeWorkload;
using sim::RankContext;
using sim::Request;
using sim::Task;

namespace {

Task amg_task(RankContext& ctx, AmgParams p) {
  // The Fig 3 snippet: `for (i = 0; i < num_cols * num_vectors; i++)` —
  // not fixed at compile time, but at runtime only 7 distinct workloads
  // occur.  The schedule below cycles the classes deterministically.
  constexpr int kClasses = 7;
  for (int it = 0; it < p.iters; ++it) {
    for (int k = 0; k < 3; ++k) {
      const int cls = (it * 3 + k) % kClasses;
      ComputeWorkload level = ComputeWorkload::memory_bound(
          0.6e6 * p.scale * (1.0 + 0.45 * cls), /*truth=*/cls);
      co_await ctx.compute(level);  // statically_fixed stays false
      co_await ctx.allreduce(8.0, /*site=*/10 + static_cast<sim::CallSiteId>(k));
    }
    const int next = (ctx.rank() + 1) % ctx.size();
    const int prev = (ctx.rank() + ctx.size() - 1) % ctx.size();
    Request r = co_await ctx.irecv(prev, /*site=*/20);
    co_await ctx.isend(next, 16.0 * 1024, /*site=*/21);
    co_await ctx.wait(r, /*site=*/22);
  }
}

Task cesm_task(RankContext& ctx, CesmParams p) {
  // Deep component stack: coupler → atmosphere → dynamics → ... .  The
  // region ids are stable, so the *depth* (not churn) is what makes
  // context-aware interception expensive.
  struct DepthGuard {
    RankContext& ctx;
    int depth;
    DepthGuard(RankContext& c, int d) : ctx(c), depth(d) {
      for (int i = 0; i < depth; ++i) ctx.push_region(5000 + static_cast<std::uint32_t>(i));
    }
    ~DepthGuard() {
      for (int i = 0; i < depth; ++i) ctx.pop_region();
    }
  } guard(ctx, p.call_depth);

  const int neighbor = ctx.rank() ^ 1;
  for (int step = 0; step < p.steps; ++step) {
    // Three model components; half of each step's work is unique science
    // (different forcing every step → its own rare cluster).
    for (int comp = 0; comp < 3; ++comp) {
      auto phase = ctx.region(6000 + static_cast<std::uint32_t>(step % 8));
      ComputeWorkload physics = ComputeWorkload::balanced(
          2.2e6 * p.scale, /*truth=*/comp);
      co_await ctx.compute(physics);
      co_await ctx.allreduce(64.0, /*site=*/30 + static_cast<sim::CallSiteId>(comp));
      ComputeWorkload forcing = ComputeWorkload::balanced(
          2.0e6 * p.scale * (1.0 + 0.13 * step), /*truth=*/9000 + step);
      co_await ctx.compute(forcing);
      if (neighbor < ctx.size()) {
        Request r = co_await ctx.irecv(neighbor, /*site=*/40, /*tag=*/comp);
        co_await ctx.isend(neighbor, 8.0 * 1024, /*site=*/41, /*tag=*/comp);
        co_await ctx.wait(r, /*site=*/42);
      }
    }
    if (step % 10 == 9 && ctx.rank() == 0)
      co_await ctx.file_write(/*fd=*/3, 4.0e6, /*site=*/50);  // history file
    co_await ctx.barrier(/*site=*/51);
  }
}

Task hpl_task(RankContext& ctx, HplParams p) {
  for (int k = 0; k < p.panels; ++k) {
    const int owner = k % ctx.size();
    // Panel factorization on the owner, broadcast, trailing update on all.
    if (ctx.rank() == owner) {
      ComputeWorkload panel = ComputeWorkload::compute_bound(
          6.0e6 * p.scale, /*truth=*/500);
      panel.statically_fixed = true;
      co_await ctx.compute(panel);
    }
    co_await ctx.bcast(32.0 * 1024, owner, /*site=*/10);
    // Trailing DGEMM: shrinks as the factorization proceeds; every rank
    // runs the same class at step k → inter-process comparable clusters.
    const double shrink = 1.0 - static_cast<double>(k) / (p.panels + 4);
    ComputeWorkload update = ComputeWorkload::compute_bound(
        3.0e7 * p.scale * shrink * shrink, /*truth=*/k);
    update.statically_fixed = true;
    co_await ctx.compute(update);
    co_await ctx.allreduce(8.0, /*site=*/11);
  }
}

Task nekbone_task(RankContext& ctx, NekboneParams p) {
  for (int it = 0; it < p.iters; ++it) {
    // Conjugate-gradient iteration: matrix apply (memory bound, fixed),
    // then two reductions — all fixed workload, ideal for inter-process
    // comparison.
    ComputeWorkload ax = ComputeWorkload::memory_bound(
        2.2e6 * p.scale, /*truth=*/1);
    co_await ctx.compute(ax);
    co_await ctx.allreduce(8.0, /*site=*/10);
    ComputeWorkload axpy = ComputeWorkload::balanced(
        1.2e6 * p.scale, /*truth=*/2);
    axpy.statically_fixed = true;
    co_await ctx.compute(axpy);
    co_await ctx.allreduce(8.0, /*site=*/11);
  }
}

Task raxml_task(RankContext& ctx, RaxmlParams p) {
  // Bootstrap phase: rank 0 merges many small files from the shared
  // filesystem (fixed sizes → fixed-workload IO fragments, Fig 19), then
  // broadcasts the merged data.
  if (ctx.rank() == 0) {
    for (int i = 0; i < p.io_rounds; ++i) {
      if (p.buffered && i >= 8 && i % 16 != 0) {
        // File buffer: after warming, reads hit the in-memory buffer —
        // a small memcpy instead of a filesystem round trip.  Every 16th
        // round the buffer still flushes to the filesystem.
        ComputeWorkload memcpy_like =
            ComputeWorkload::balanced(5.0e4 * p.scale, /*truth=*/700);
        co_await ctx.compute(memcpy_like);
        co_await ctx.probe(/*site=*/14);
      } else {
        co_await ctx.file_read(/*fd=*/4, 64.0 * 1024, /*site=*/10);
        co_await ctx.file_write(/*fd=*/5, 32.0 * 1024, /*site=*/11);
      }
      ComputeWorkload parse =
          ComputeWorkload::balanced(2.0e5 * p.scale, /*truth=*/701);
      co_await ctx.compute(parse);
    }
  }
  co_await ctx.bcast(2.0e6, /*root=*/0, /*site=*/12);
  // Likelihood evaluation rounds: fixed-workload compute + reduction.
  for (int it = 0; it < p.compute_iters; ++it) {
    ComputeWorkload likelihood = ComputeWorkload::balanced(
        4.0e6 * p.scale, /*truth=*/1);
    co_await ctx.compute(likelihood);
    co_await ctx.allreduce(8.0, /*site=*/13);
  }
}

}  // namespace

sim::Simulator::RankProgram amg(AmgParams p) {
  return [p](RankContext& ctx) { return amg_task(ctx, p); };
}
sim::Simulator::RankProgram cesm(CesmParams p) {
  return [p](RankContext& ctx) { return cesm_task(ctx, p); };
}
sim::Simulator::RankProgram hpl(HplParams p) {
  return [p](RankContext& ctx) { return hpl_task(ctx, p); };
}
sim::Simulator::RankProgram nekbone(NekboneParams p) {
  return [p](RankContext& ctx) { return nekbone_task(ctx, p); };
}
sim::Simulator::RankProgram raxml(RaxmlParams p) {
  return [p](RankContext& ctx) { return raxml_task(ctx, p); };
}

}  // namespace vapro::apps
