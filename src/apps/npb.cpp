#include "src/apps/npb.hpp"

#include <cmath>
#include <vector>

namespace vapro::apps {

using pmu::ComputeWorkload;
using sim::RankContext;
using sim::Request;
using sim::Task;

namespace {

// Call-site numbering is per program; keep them readable in reports.
enum CgSites : sim::CallSiteId {
  kCgIrecv = 10,  // +3*subloop
  kCgSend = 11,
  kCgWait = 12,
  kCgAllreduce = 50,
  kCgWarmupAllreduce = 51,
};

// Communication partner for CG's power-of-two exchange in sub-loop `s`.
int xor_partner(int rank, int s, int size) {
  int partner = rank ^ (1 << s);
  return partner < size ? partner : -1;
}

Task cg_task(RankContext& ctx, NpbParams p) {
  const int size = ctx.size();
  // Warm-up: setup workloads unique per iteration (uncovered time — each
  // execution lands in its own rare cluster).
  for (int w = 0; w < p.warmup_iters; ++w) {
    co_await ctx.compute(ComputeWorkload::balanced(
        4e6 * p.scale * (1.0 + 0.37 * w), /*truth=*/1000 + w));
    co_await ctx.allreduce(8.0, kCgWarmupAllreduce);
  }
  // Main cgit loop: Fig 4's structure, one irecv/send/wait triple per
  // sub-loop, with sparse-matrix compute whose trip counts come from data
  // (runtime-fixed only), plus a small statically provable vector update.
  for (int it = 0; it < p.iters; ++it) {
    for (int s = 0; s < p.sub_loops; ++s) {
      const int partner = xor_partner(ctx.rank(), s, size);
      Request r;
      if (partner >= 0) {
        r = co_await ctx.irecv(partner, kCgIrecv + 3 * s, /*tag=*/s);
      }
      // Sparse mat-vec slice: fixed at runtime, opaque to static analysis.
      ComputeWorkload spmv =
          ComputeWorkload::memory_bound(1.2e6 * p.scale, /*truth=*/s);
      co_await ctx.compute(spmv);
      if (partner >= 0) {
        co_await ctx.send(partner, 64.0 * 1024, kCgSend + 3 * s, /*tag=*/s);
        co_await ctx.wait(r, kCgWait + 3 * s);
      }
    }
    // Statically fixed vector update (what vSensor can anchor on).
    ComputeWorkload axpy = ComputeWorkload::balanced(2.5e6 * p.scale,
                                                     /*truth=*/100);
    axpy.statically_fixed = true;
    co_await ctx.compute(axpy);
    co_await ctx.allreduce(8.0, kCgAllreduce);
  }
}

Task ep_task(RankContext& ctx, NpbParams p) {
  // Embarrassingly parallel: long compute, a probe per batch (inserted by
  // the tool via binary rewriting, §5), one reduction at the end.  The
  // first and last batches run setup/drain paths with their own workload
  // classes (RNG stream setup, tally accumulation).
  const int batches = p.iters * 2;
  for (int b = 0; b < batches; ++b) {
    const std::int64_t cls = b == 0 ? 2 : (b == batches - 1 ? 3 : 1);
    ComputeWorkload w = ComputeWorkload::compute_bound(
        2.0e7 * p.scale * (cls == 1 ? 1.0 : 1.3), cls);
    w.statically_fixed = true;  // static, but vSensor has no call to cut at
    co_await ctx.compute(w);
    co_await ctx.probe(/*site=*/10);
  }
  co_await ctx.allreduce(64.0, /*site=*/20);
}

Task ft_task(RankContext& ctx, NpbParams p) {
  // FFT: loops a compiler can prove fixed, but the executed instruction
  // count wobbles ±8% at runtime (transform shortcuts), so runtime
  // clustering splits part of the executions into rare clusters while the
  // static tool happily covers them — Table 1's FT inversion.
  for (int it = 0; it < p.iters; ++it) {
    // The transform takes one of a few data-dependent shortcut variants
    // (≈6% apart, distinguishable by the clustering threshold), plus an
    // occasional extreme irregular size that never repeats — runtime
    // behaviour a compile-time "fixed workload" proof cannot see.
    double wobble;
    std::int64_t cls;
    if (ctx.rng().bernoulli(0.08)) {
      wobble = ctx.rng().uniform(1.3, 3.0);
      cls = 200 + static_cast<std::int64_t>(
                      std::log(wobble) / std::log(1.05));
    } else {
      const std::int64_t variant =
          static_cast<std::int64_t>(ctx.rng().uniform_u64(5));
      wobble = 0.88 + 0.06 * static_cast<double>(variant);
      cls = 10 + variant;
    }
    ComputeWorkload butterfly = ComputeWorkload::balanced(
        8e6 * p.scale * wobble, cls);
    butterfly.statically_fixed = true;
    co_await ctx.compute(butterfly);
    co_await ctx.allreduce(1.0e6, /*site=*/10);  // transpose stand-in
    ComputeWorkload evolve =
        ComputeWorkload::balanced(2e6 * p.scale, /*truth=*/2);
    evolve.statically_fixed = true;
    co_await ctx.compute(evolve);
    co_await ctx.barrier(/*site=*/11);
  }
}

Task lu_task(RankContext& ctx, NpbParams p) {
  // SSOR wavefront: many small pipelined messages → the highest call rate
  // of the suite, nearly fully repeated compute.
  const int sweeps = p.iters * 4;
  for (int it = 0; it < sweeps; ++it) {
    if (ctx.rank() > 0) co_await ctx.recv(ctx.rank() - 1, /*site=*/10);
    ComputeWorkload lower =
        ComputeWorkload::balanced(1.0e6 * p.scale, /*truth=*/1);
    lower.statically_fixed = true;
    co_await ctx.compute(lower);
    if (ctx.rank() < ctx.size() - 1)
      co_await ctx.send(ctx.rank() + 1, 2048.0, /*site=*/11);
    ComputeWorkload upper =
        ComputeWorkload::balanced(1.0e6 * p.scale, /*truth=*/2);
    upper.statically_fixed = true;
    co_await ctx.compute(upper);
    if (it % 8 == 7) co_await ctx.allreduce(8.0, /*site=*/12);
  }
}

Task mg_task(RankContext& ctx, NpbParams p) {
  // V-cycles: the region path encodes the cycle index (adaptive recursion
  // state), so context-aware states almost never repeat while context-free
  // states do — workload clustering then separates the per-level classes.
  constexpr int kLevels = 4;
  for (int it = 0; it < p.iters; ++it) {
    // The call path through the V-cycle encodes adaptive, data-dependent
    // recursion decisions (residual-driven smoothing counts), so it almost
    // never repeats — each context-aware state sees too few fragments to
    // cluster, while context-free states merge across cycles.
    const auto adaptive_path =
        1000 + static_cast<std::uint32_t>(ctx.rng().uniform_u64(1u << 30));
    auto cycle_region = ctx.region(adaptive_path);
    for (int level = 0; level < kLevels; ++level) {
      ComputeWorkload smooth = ComputeWorkload::memory_bound(
          1.6e6 * p.scale / (1 << (2 * level)), /*truth=*/level);
      co_await ctx.compute(smooth);
      co_await ctx.allreduce(8.0, /*site=*/20);  // same site at every level
    }
  }
}

// ADI sweep used by both SP and BT; BT's compute is mostly statically
// analyzable, SP's is runtime-fixed with a thin static slice.
Task adi_task(RankContext& ctx, NpbParams p, bool mostly_static,
              double static_slice_ins, sim::CallSiteId site_base) {
  const int size = ctx.size();
  for (int w = 0; w < p.warmup_iters; ++w) {
    co_await ctx.compute(ComputeWorkload::balanced(
        5e6 * p.scale * (1.0 + 0.4 * w), /*truth=*/2000 + w));
    co_await ctx.barrier(site_base + 9);
  }
  for (int it = 0; it < p.iters; ++it) {
    for (int sweep = 0; sweep < 3; ++sweep) {
      const int next = (ctx.rank() + 1) % size;
      const int prev = (ctx.rank() + size - 1) % size;
      Request r = co_await ctx.irecv(prev, site_base + 3 * sweep, /*tag=*/sweep);
      ComputeWorkload solve = ComputeWorkload::balanced(
          3.0e6 * p.scale, /*truth=*/sweep);
      solve.statically_fixed = mostly_static;
      co_await ctx.compute(solve);
      co_await ctx.isend(next, 48.0 * 1024, site_base + 3 * sweep + 1,
                         /*tag=*/sweep);
      co_await ctx.wait(r, site_base + 3 * sweep + 2);
    }
    if (static_slice_ins > 0) {
      ComputeWorkload rhs =
          ComputeWorkload::balanced(static_slice_ins * p.scale, /*truth=*/50);
      rhs.statically_fixed = true;
      co_await ctx.compute(rhs);
    }
    co_await ctx.allreduce(8.0, site_base + 20);
  }
}

}  // namespace

sim::Simulator::RankProgram cg(NpbParams p) {
  return [p](RankContext& ctx) { return cg_task(ctx, p); };
}
sim::Simulator::RankProgram ep(NpbParams p) {
  return [p](RankContext& ctx) { return ep_task(ctx, p); };
}
sim::Simulator::RankProgram ft(NpbParams p) {
  return [p](RankContext& ctx) { return ft_task(ctx, p); };
}
sim::Simulator::RankProgram lu(NpbParams p) {
  return [p](RankContext& ctx) { return lu_task(ctx, p); };
}
sim::Simulator::RankProgram mg(NpbParams p) {
  return [p](RankContext& ctx) { return mg_task(ctx, p); };
}
sim::Simulator::RankProgram sp(NpbParams p) {
  return [p](RankContext& ctx) {
    return adi_task(ctx, p, /*mostly_static=*/false,
                    /*static_slice_ins=*/1.0e6, /*site_base=*/100);
  };
}
sim::Simulator::RankProgram bt(NpbParams p) {
  return [p](RankContext& ctx) {
    return adi_task(ctx, p, /*mostly_static=*/true,
                    /*static_slice_ins=*/1.0e6, /*site_base=*/200);
  };
}

}  // namespace vapro::apps
