// Mini versions of the paper's standalone applications:
//   AMG     — algebraic multigrid (§3.1's running example): one hot loop
//             executed with exactly 7 workload classes that only exist at
//             runtime, so static analysis covers nothing.
//   CESM    — climate model stand-in: very deep call paths (the source of
//             context-aware STG's 8% overhead in Table 1), a large state
//             space, and only ~half the time in repeated work.
//   HPL     — LINPACK: per-iteration panel factor + trailing update whose
//             workload shrinks every iteration; each iteration's update is
//             a fixed-workload class shared by all ranks (the inter-process
//             comparison that catches the L2 hardware bug, §6.5.1).
//   Nekbone — CG-kernel CFD proxy: memory-bound fixed-workload iterations
//             (the slow-DIMM case, §6.5.2).
//   RAxML   — phylogenetics: rank 0 merges many small files on the shared
//             filesystem (the IO variance case, §6.5.3).  `buffered`
//             switches on the file-buffer fix the paper implements.
#pragma once

#include "src/sim/runtime.hpp"

namespace vapro::apps {

struct AmgParams {
  int iters = 80;
  double scale = 1.0;
};
sim::Simulator::RankProgram amg(AmgParams p = {});

struct CesmParams {
  int steps = 40;
  double scale = 1.0;
  int call_depth = 40;  // nested model components on the stack
};
sim::Simulator::RankProgram cesm(CesmParams p = {});

struct HplParams {
  int panels = 48;
  double scale = 1.0;
};
sim::Simulator::RankProgram hpl(HplParams p = {});

struct NekboneParams {
  int iters = 120;
  double scale = 1.0;
};
sim::Simulator::RankProgram nekbone(NekboneParams p = {});

struct RaxmlParams {
  int io_rounds = 250;   // small-file merge operations on rank 0
  int compute_iters = 60;
  double scale = 1.0;
  bool buffered = false;  // the paper's file-buffer optimization
};
sim::Simulator::RankProgram raxml(RaxmlParams p = {});

}  // namespace vapro::apps
