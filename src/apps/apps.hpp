// Application registry used by the Table 1 / Table 2 benches and tests.
#pragma once

#include <string>
#include <vector>

#include "src/apps/masterworker.hpp"
#include "src/apps/npb.hpp"
#include "src/apps/solvers.hpp"
#include "src/apps/threaded.hpp"

namespace vapro::apps {

struct AppSpec {
  std::string name;
  sim::Simulator::RankProgram program;
  // vSensor needs source access and a tractable codebase; it cannot handle
  // CESM (closed-ish, 500k LoC) — Table 1's "N/A".
  bool vsensor_supported = true;
  bool multithreaded = false;
};

// The multi-process column of Table 1 (AMG, CESM, NPB×7).
std::vector<AppSpec> multiprocess_suite(double scale = 1.0);

// The multi-threaded column of Table 1 (BERT, PageRank, WordCount,
// PARSEC×6).
std::vector<AppSpec> multithreaded_suite(double scale = 1.0);

}  // namespace vapro::apps
