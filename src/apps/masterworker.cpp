#include "src/apps/masterworker.hpp"

#include <utility>
#include <vector>

namespace vapro::apps {

using pmu::ComputeWorkload;
using sim::RankContext;
using sim::Request;
using sim::Task;

namespace {

Task masterworker_task(RankContext& ctx, MasterWorkerParams p) {
  const int workers = ctx.size() - 1;
  constexpr int kClasses = 5;

  if (workers <= 0) {
    // Degenerate single-rank run: just compute the chunks locally.
    for (int round = 0; round < p.rounds; ++round) {
      const int cls = round % kClasses;
      co_await ctx.compute(ComputeWorkload::memory_bound(
          1.5e6 * p.scale * (1.0 + 0.3 * cls), /*truth=*/cls));
    }
    co_return;
  }

  if (ctx.rank() == 0) {
    for (int round = 0; round < p.rounds; ++round) {
      // Collect every worker's request for this round; the wait returns
      // when the slowest worker of the previous round comes back — the
      // master's wait time mirrors worker imbalance.
      std::vector<Request> requests;
      requests.reserve(static_cast<std::size_t>(workers));
      for (int w = 1; w <= workers; ++w)
        requests.push_back(co_await ctx.irecv(w, /*site=*/60, /*tag=*/round));
      co_await ctx.wait_all(std::move(requests), /*site=*/61);
      // Answer each request with a chunk descriptor.
      for (int w = 1; w <= workers; ++w)
        co_await ctx.send(w, 512.0, /*site=*/62, /*tag=*/round);
      // Merge the partial results that rode along with the requests —
      // fixed bookkeeping, one class per merge phase.
      co_await ctx.compute(ComputeWorkload::balanced(
          0.4e6 * p.scale, /*truth=*/100 + round % 4));
    }
  } else {
    for (int round = 0; round < p.rounds; ++round) {
      // Request the next chunk (the payload carries the previous result).
      co_await ctx.send(0, 64.0, /*site=*/70, /*tag=*/round);
      co_await ctx.recv(0, /*site=*/71, /*tag=*/round);
      // Chunk class depends on (round, rank): no two workers see the same
      // sequence, but every class is processed by many workers.
      const int cls = (round * 7 + ctx.rank() * 3) % kClasses;
      ComputeWorkload chunk = ComputeWorkload::memory_bound(
          1.5e6 * p.scale * (1.0 + 0.3 * cls), /*truth=*/cls);
      co_await ctx.compute(chunk);
    }
  }
  co_await ctx.barrier(/*site=*/80);
}

}  // namespace

sim::Simulator::RankProgram masterworker(MasterWorkerParams p) {
  return [p](RankContext& ctx) { return masterworker_task(ctx, p); };
}

}  // namespace vapro::apps
