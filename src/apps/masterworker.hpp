// MasterWorker — a dynamic-load-balancing mini app.
//
// Rank 0 is the scheduler: workers request a chunk, the master answers
// with a descriptor, the worker computes it and comes back for more
// (guided self-scheduling in rounds).  Chunk workloads cycle a small set
// of runtime-only classes, so the fixed-workload clusters form *across*
// workers even though no two workers process the same chunk sequence —
// the inter-process comparison Vapro relies on.  The master itself is
// communication-dominated (a many-request wait_all per round), which
// exercises the communication heat map on a single hot rank.
#pragma once

#include "src/sim/runtime.hpp"

namespace vapro::apps {

struct MasterWorkerParams {
  int rounds = 40;      // scheduling rounds (chunks per worker)
  double scale = 1.0;
};
sim::Simulator::RankProgram masterworker(MasterWorkerParams p = {});

}  // namespace vapro::apps
