#include "src/apps/threaded.hpp"

namespace vapro::apps {

using pmu::ComputeWorkload;
using sim::RankContext;
using sim::Request;
using sim::Task;

namespace {

Task bert_task(RankContext& ctx, ThreadedParams p) {
  // Inference batches through L transformer layers; each layer's GEMM is a
  // fixed-workload kernel, the thread pool syncs per layer.
  constexpr int kLayers = 12;
  for (int batch = 0; batch < p.iters; ++batch) {
    for (int layer = 0; layer < kLayers; ++layer) {
      ComputeWorkload gemm = ComputeWorkload::compute_bound(
          2.0e6 * p.scale, /*truth=*/layer);
      co_await ctx.compute(gemm);
      co_await ctx.barrier(/*site=*/10 + static_cast<sim::CallSiteId>(layer % 4));
    }
    // Tokenization/embedding differs per batch (input-dependent).
    co_await ctx.compute(ComputeWorkload::balanced(
        1.0e6 * p.scale * (1.0 + 0.2 * (batch % 9)), /*truth=*/8000 + batch % 9));
    co_await ctx.barrier(/*site=*/20);
  }
}

Task pagerank_task(RankContext& ctx, ThreadedParams p) {
  // Two interleaved traversal kernels whose workloads differ by ~2% —
  // below the 5% clustering threshold, so Vapro merges them into one
  // cluster (ground-truth classes stay distinct → homogeneity < 1).
  for (int it = 0; it < p.iters; ++it) {
    co_await ctx.barrier(/*site=*/10);
    const int cls = it % 2;
    ComputeWorkload traverse = ComputeWorkload::memory_bound(
        1.5e6 * p.scale * (cls == 0 ? 1.0 : 1.02), /*truth=*/cls);
    co_await ctx.compute(traverse);
    co_await ctx.barrier(/*site=*/11);
    ComputeWorkload rank_update = ComputeWorkload::balanced(
        0.8e6 * p.scale, /*truth=*/5);
    co_await ctx.compute(rank_update);
  }
  // Join through the same site as the loop-top barrier so the final
  // update execution shares its STG edge with all the others.
  co_await ctx.barrier(/*site=*/10);
}

Task wordcount_task(RankContext& ctx, ThreadedParams p) {
  const int size = ctx.size();
  for (int round = 0; round < p.iters / 4; ++round) {
    // Map: read an input split, tokenize.
    co_await ctx.file_read(/*fd=*/3, 256.0 * 1024, /*site=*/10);
    co_await ctx.compute(
        ComputeWorkload::balanced(3.0e6 * p.scale, /*truth=*/1));
    co_await ctx.barrier(/*site=*/11);
    // Shuffle: exchange with the neighbor ring.
    const int next = (ctx.rank() + 1) % size;
    const int prev = (ctx.rank() + size - 1) % size;
    Request r = co_await ctx.irecv(prev, /*site=*/12);
    co_await ctx.isend(next, 64.0 * 1024, /*site=*/13);
    co_await ctx.wait(r, /*site=*/14);
    // Reduce.
    co_await ctx.compute(
        ComputeWorkload::balanced(1.5e6 * p.scale, /*truth=*/2));
    co_await ctx.barrier(/*site=*/15);
    if (ctx.rank() == 0)
      co_await ctx.file_write(/*fd=*/4, 128.0 * 1024, /*site=*/16);
  }
}

Task blackscholes_task(RankContext& ctx, ThreadedParams p) {
  for (int it = 0; it < p.iters; ++it) {
    ComputeWorkload price = ComputeWorkload::compute_bound(
        4.0e6 * p.scale, /*truth=*/1);
    price.statically_fixed = true;  // simple fixed-trip option loop
    co_await ctx.compute(price);
    co_await ctx.barrier(/*site=*/10);
  }
}

Task canneal_task(RankContext& ctx, ThreadedParams p) {
  for (int it = 0; it < p.iters; ++it) {
    // Random element swaps: cache-hostile, slight per-round variation that
    // stays inside the clustering tolerance.
    const double wiggle = ctx.rng().uniform(0.985, 1.015);
    co_await ctx.compute(ComputeWorkload::memory_bound(
        1.2e6 * p.scale * wiggle, /*truth=*/1));
    co_await ctx.barrier(/*site=*/10);
  }
}

Task ferret_task(RankContext& ctx, ThreadedParams p) {
  // Pipeline: stage s = rank % 4; items flow through the stages.
  const int stage = ctx.rank() % 4;
  const int size = ctx.size();
  const int items = p.iters * 2;
  for (int i = 0; i < items; ++i) {
    if (stage > 0) co_await ctx.recv(ctx.rank() - 1, /*site=*/10);
    ComputeWorkload work = ComputeWorkload::balanced(
        (1.0 + 0.6 * stage) * 1.0e6 * p.scale, /*truth=*/stage);
    co_await ctx.compute(work);
    if (stage < 3 && ctx.rank() + 1 < size)
      co_await ctx.send(ctx.rank() + 1, 8.0 * 1024, /*site=*/11);
  }
}

Task swaptions_task(RankContext& ctx, ThreadedParams p) {
  for (int it = 0; it < p.iters; ++it) {
    ComputeWorkload sim_path = ComputeWorkload::compute_bound(
        5.0e6 * p.scale, /*truth=*/1);
    sim_path.statically_fixed = true;  // fixed trial count
    co_await ctx.compute(sim_path);
    if (it % 4 == 3) co_await ctx.barrier(/*site=*/10);
    else co_await ctx.probe(/*site=*/11);
  }
}

Task vips_task(RankContext& ctx, ThreadedParams p) {
  for (int it = 0; it < p.iters; ++it) {
    // Image tiles cycle through three operator classes.
    const int op = it % 3;
    co_await ctx.compute(ComputeWorkload::balanced(
        (1.0 + 0.5 * op) * 1.4e6 * p.scale, /*truth=*/op));
    co_await ctx.barrier(/*site=*/10 + static_cast<sim::CallSiteId>(op));
  }
}

Task fft_task(RankContext& ctx, ThreadedParams p) {
  const int size = ctx.size();
  for (int it = 0; it < p.iters / 2; ++it) {
    // Unique bit-reversal permutation setup per round (uncovered).
    co_await ctx.compute(ComputeWorkload::memory_bound(
        0.6e6 * p.scale * (1.0 + 0.15 * (it % 16)), /*truth=*/7000 + it % 16));
    co_await ctx.barrier(/*site=*/10);
    // Butterfly stages: pairwise exchanges.
    for (int s = 0, span = 1; span < size; ++s, span <<= 1) {
      const int partner = ctx.rank() ^ span;
      if (partner < size) {
        Request r = co_await ctx.irecv(partner, /*site=*/20, /*tag=*/s);
        co_await ctx.isend(partner, 32.0 * 1024, /*site=*/21, /*tag=*/s);
        co_await ctx.wait(r, /*site=*/22);
      }
      co_await ctx.compute(ComputeWorkload::balanced(
          1.1e6 * p.scale, /*truth=*/100 + s));
    }
    co_await ctx.barrier(/*site=*/30);
  }
}

}  // namespace

sim::Simulator::RankProgram bert(ThreadedParams p) {
  return [p](RankContext& ctx) { return bert_task(ctx, p); };
}
sim::Simulator::RankProgram pagerank(ThreadedParams p) {
  return [p](RankContext& ctx) { return pagerank_task(ctx, p); };
}
sim::Simulator::RankProgram wordcount(ThreadedParams p) {
  return [p](RankContext& ctx) { return wordcount_task(ctx, p); };
}
sim::Simulator::RankProgram blackscholes(ThreadedParams p) {
  return [p](RankContext& ctx) { return blackscholes_task(ctx, p); };
}
sim::Simulator::RankProgram canneal(ThreadedParams p) {
  return [p](RankContext& ctx) { return canneal_task(ctx, p); };
}
sim::Simulator::RankProgram ferret(ThreadedParams p) {
  return [p](RankContext& ctx) { return ferret_task(ctx, p); };
}
sim::Simulator::RankProgram swaptions(ThreadedParams p) {
  return [p](RankContext& ctx) { return swaptions_task(ctx, p); };
}
sim::Simulator::RankProgram vips(ThreadedParams p) {
  return [p](RankContext& ctx) { return vips_task(ctx, p); };
}
sim::Simulator::RankProgram fft(ThreadedParams p) {
  return [p](RankContext& ctx) { return fft_task(ctx, p); };
}

}  // namespace vapro::apps
