#include "src/pmu/workload.hpp"

namespace vapro::pmu {

ComputeWorkload ComputeWorkload::compute_bound(double instructions,
                                               std::int64_t truth_class) {
  ComputeWorkload w;
  w.instructions = instructions;
  w.mem_refs = instructions * 0.10;
  w.l1_miss = 0.01;
  w.l2_miss = 0.10;
  w.l3_miss = 0.05;
  w.frontend_per_ins = 0.05;
  w.badspec_per_ins = 0.02;
  w.core_stall_per_ins = 0.25;
  w.truth_class = truth_class;
  return w;
}

ComputeWorkload ComputeWorkload::memory_bound(double instructions,
                                              std::int64_t truth_class) {
  ComputeWorkload w;
  w.instructions = instructions;
  w.mem_refs = instructions * 0.45;
  w.l1_miss = 0.12;
  w.l2_miss = 0.55;
  w.l3_miss = 0.60;
  w.frontend_per_ins = 0.04;
  w.badspec_per_ins = 0.02;
  w.core_stall_per_ins = 0.05;
  w.truth_class = truth_class;
  return w;
}

ComputeWorkload ComputeWorkload::balanced(double instructions,
                                          std::int64_t truth_class) {
  ComputeWorkload w;
  w.instructions = instructions;
  w.mem_refs = instructions * 0.30;
  w.l1_miss = 0.06;
  w.l2_miss = 0.30;
  w.l3_miss = 0.20;
  w.frontend_per_ins = 0.08;
  w.badspec_per_ins = 0.03;
  w.core_stall_per_ins = 0.12;
  w.truth_class = truth_class;
  return w;
}

ComputeWorkload ComputeWorkload::scaled(double factor,
                                        std::int64_t new_class) const {
  ComputeWorkload w = *this;
  w.instructions *= factor;
  w.mem_refs *= factor;
  w.truth_class = new_class;
  return w;
}

}  // namespace vapro::pmu
