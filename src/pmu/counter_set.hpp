// The measurement window between the tool and the hardware.
//
// Real PMUs expose only a handful of simultaneously programmable counters —
// the reason the paper's *progressive* diagnosis exists (§4.3: "requires
// only a small number of concurrently active performance counters").  A
// CounterSet enforces that budget and models PMU read nondeterminism
// (Weaver et al., cited in §3.4) with small multiplicative jitter, which the
// clustering threshold (5%) must tolerate.
#pragma once

#include <vector>

#include "src/pmu/counters.hpp"
#include "src/util/rng.hpp"

namespace vapro::pmu {

class CounterSet {
 public:
  // `programmable_budget` — number of non-free counters active at once.
  // `jitter` — stddev of the multiplicative read error (e.g. 0.003 = 0.3%).
  explicit CounterSet(std::uint64_t seed, int programmable_budget = 4,
                      double jitter = 0.003);

  // Tries to activate exactly this set of programmable counters (free
  // counters are always active and need not be listed).  Returns false and
  // leaves the configuration unchanged if the budget would be exceeded.
  bool configure(const std::vector<Counter>& programmable);

  // Activates the set even when it exceeds the budget by time-multiplexing
  // (as PAPI does): each programmable counter is live only duty_cycle() of
  // the time, so reads are extrapolated — unbiased but with error inflated
  // by 1/duty.  With the set within budget this is identical to configure.
  void configure_multiplexed(const std::vector<Counter>& programmable);

  // Fraction of time each programmable counter is actually counting.
  double duty_cycle() const;

  bool is_active(Counter c) const;
  int programmable_budget() const { return budget_; }
  const std::vector<Counter>& active_programmable() const { return active_; }

  // Reads a ground-truth cumulative sample through this set: inactive
  // counters read as 0, active ones get multiplicative jitter.  Jitter is
  // applied to the cumulative value, modeling per-read error.
  CounterSample read(const CounterSample& ground_truth);

  // Reads the delta between two ground-truth snapshots.  PMU overcount
  // error scales with the events in the measured interval, so jitter is
  // applied to the delta, not to the cumulative values.
  CounterSample read_delta(const CounterSample& begin,
                           const CounterSample& end);

 private:
  int budget_;
  double jitter_;
  std::vector<Counter> active_;
  std::array<bool, kCounterCount> active_mask_{};
  util::Rng rng_;
};

}  // namespace vapro::pmu
