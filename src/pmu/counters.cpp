#include "src/pmu/counters.hpp"

#include "src/util/check.hpp"

namespace vapro::pmu {

std::string_view counter_name(Counter c) {
  switch (c) {
    case Counter::kTotIns: return "TOT_INS";
    case Counter::kTsc: return "TSC";
    case Counter::kCpuClkUnhalted: return "CPU_CLK_UNHALTED";
    case Counter::kSlotsRetiring: return "SLOTS_RETIRING";
    case Counter::kSlotsFrontend: return "SLOTS_FRONTEND";
    case Counter::kSlotsBadSpec: return "SLOTS_BAD_SPEC";
    case Counter::kSlotsBackend: return "SLOTS_BACKEND";
    case Counter::kStallsCore: return "STALLS_CORE";
    case Counter::kStallsL1: return "STALLS_L1";
    case Counter::kStallsL2: return "STALLS_L2";
    case Counter::kStallsL3: return "STALLS_L3";
    case Counter::kStallsDram: return "STALLS_DRAM";
    case Counter::kMemRefs: return "MEM_REFS";
    case Counter::kPageFaultsSoft: return "PF_SOFT";
    case Counter::kPageFaultsHard: return "PF_HARD";
    case Counter::kCtxSwitchVoluntary: return "CS_VOLUNTARY";
    case Counter::kCtxSwitchInvoluntary: return "CS_INVOLUNTARY";
    case Counter::kSignals: return "SIGNALS";
    case Counter::kCount: break;
  }
  VAPRO_CHECK_MSG(false, "invalid counter id");
}

bool is_free_counter(Counter c) {
  switch (c) {
    case Counter::kTotIns:
    case Counter::kTsc:
    case Counter::kCpuClkUnhalted:
    case Counter::kPageFaultsSoft:
    case Counter::kPageFaultsHard:
    case Counter::kCtxSwitchVoluntary:
    case Counter::kCtxSwitchInvoluntary:
    case Counter::kSignals:
      return true;
    default:
      return false;
  }
}

CounterSample& CounterSample::operator+=(const CounterSample& rhs) {
  for (std::size_t i = 0; i < kCounterCount; ++i) values[i] += rhs.values[i];
  return *this;
}

CounterSample operator-(const CounterSample& a, const CounterSample& b) {
  CounterSample out;
  for (std::size_t i = 0; i < kCounterCount; ++i)
    out.values[i] = a.values[i] - b.values[i];
  return out;
}

}  // namespace vapro::pmu
