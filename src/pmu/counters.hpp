// Simulated performance-counter vocabulary.
//
// Mirrors the counters the paper's diagnosis consumes: the fixed Intel
// counters (TOT_INS, TSC, unhalted cycles), the top-down pipeline slot
// events (Yasin's method, used for the S1 breakdown), the cache-level stall
// events (S3), and the OS software counters (page faults, context switches,
// signals).  A `CounterSample` is a snapshot of cumulative counts; fragment
// records hold deltas between two snapshots.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace vapro::pmu {

enum class Counter : std::uint8_t {
  // Fixed hardware counters (always available, no programmable slot used).
  kTotIns = 0,        // TOT_INS — retired instructions
  kTsc,               // TSC — wall-clock cycles
  kCpuClkUnhalted,    // CPU_CLK_UNHALTED — cycles actually on-CPU

  // Top-down level-1 pipeline slots (programmable).
  kSlotsRetiring,
  kSlotsFrontend,
  kSlotsBadSpec,
  kSlotsBackend,

  // Backend decomposition (programmable).
  kStallsCore,
  kStallsL1,
  kStallsL2,
  kStallsL3,
  kStallsDram,

  // Memory traffic (programmable).
  kMemRefs,

  // OS software counters (always available).
  kPageFaultsSoft,
  kPageFaultsHard,
  kCtxSwitchVoluntary,
  kCtxSwitchInvoluntary,
  kSignals,

  kCount,
};

inline constexpr std::size_t kCounterCount =
    static_cast<std::size_t>(Counter::kCount);

// Canonical short name, e.g. "TOT_INS".
std::string_view counter_name(Counter c);

// True for counters that do not consume a programmable PMU slot
// (fixed hardware counters and OS software counters).
bool is_free_counter(Counter c);

// A snapshot of all counters.  Values are doubles: the model produces
// fractional expectations and the jitter layer perturbs reads anyway.
struct CounterSample {
  std::array<double, kCounterCount> values{};

  double operator[](Counter c) const {
    return values[static_cast<std::size_t>(c)];
  }
  double& operator[](Counter c) { return values[static_cast<std::size_t>(c)]; }

  CounterSample& operator+=(const CounterSample& rhs);
  friend CounterSample operator-(const CounterSample& a,
                                 const CounterSample& b);
};

}  // namespace vapro::pmu
