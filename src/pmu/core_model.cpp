#include "src/pmu/core_model.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/check.hpp"

namespace vapro::pmu {

CoreModel::CoreModel(MachineParams params, std::uint64_t seed)
    : params_(params), rng_(seed) {
  VAPRO_CHECK(params_.frequency_hz > 0 && params_.pipeline_width > 0);
}

ComputeOutcome CoreModel::execute(const ComputeWorkload& w,
                                  const EnvQuery& where,
                                  const Environment& env) {
  ComputeOutcome out;
  if (w.instructions <= 0.0) return out;

  // --- Memory hierarchy: accesses served per level. ---
  const double refs = w.mem_refs;
  const double l1_served = refs * (1.0 - w.l1_miss);
  const double past_l1 = refs * w.l1_miss;
  const double l2_served = past_l1 * (1.0 - w.l2_miss);
  const double past_l2 = past_l1 * w.l2_miss;
  const double l3_served = past_l2 * (1.0 - w.l3_miss);
  const double dram_served = past_l2 * w.l3_miss;

  const double l2_mult = env.l2_factor(where);
  const double dram_mult = env.dram_factor(where);

  // --- Pipeline slots (top-down). ---
  const double retiring = w.instructions;
  const double frontend = w.frontend_per_ins * w.instructions;
  const double badspec = w.badspec_per_ins * w.instructions;
  const double core_bound = w.core_stall_per_ins * w.instructions;
  const double l1_bound = l1_served * params_.l1_stall_slots;
  const double l2_bound = l2_served * params_.l2_stall_slots * l2_mult;
  const double l3_bound = l3_served * params_.l3_stall_slots;
  // The L2-eviction bug also forces extra memory traffic: a slice of the
  // inflated L2 component spills to DRAM (matches the paper's 48.2%/38.0%
  // L2/DRAM split in §6.5.1).
  const double l2_spill =
      l2_mult > 1.0 ? l2_served * params_.dram_stall_slots * 0.02 * (l2_mult - 1.0)
                    : 0.0;
  const double dram_bound =
      (dram_served * params_.dram_stall_slots + l2_spill) * dram_mult;

  const double mem_bound = l1_bound + l2_bound + l3_bound + dram_bound;
  double core_total = core_bound;
  double backend = core_total + mem_bound;
  double total_slots = retiring + frontend + badspec + backend;

  // Microarchitectural execution-time jitter (always ≥ the ideal time: the
  // slot model is the best case, perturbations only add stall cycles).
  // The extra cycles surface as core-bound stalls so the slot algebra stays
  // exact for the diagnosis formulas.
  if (params_.time_jitter > 0.0) {
    const double jitter_slots =
        total_slots * std::fabs(rng_.normal(0.0, params_.time_jitter));
    core_total += jitter_slots;
    backend += jitter_slots;
    total_slots += jitter_slots;
  }
  const double cycles = total_slots / params_.pipeline_width;
  out.cpu_seconds = cycles / params_.frequency_hz;

  // --- OS: page faults, preemption, signals. ---
  const double soft_rate =
      params_.base_soft_pf_rate + env.soft_pf_rate(where);
  const double hard_rate = env.hard_pf_rate(where);
  const double sig_rate = env.signal_rate(where);
  const double soft_pf =
      static_cast<double>(rng_.poisson(soft_rate * out.cpu_seconds));
  const double hard_pf =
      static_cast<double>(rng_.poisson(hard_rate * out.cpu_seconds));
  const double signals =
      static_cast<double>(rng_.poisson(sig_rate * out.cpu_seconds));

  double suspension =
      soft_pf * params_.soft_pf_seconds + hard_pf * params_.hard_pf_seconds;

  // CPU sharing: with share s, the scheduler preempts the rank once per
  // quantum of on-CPU time and it then waits (1/s − 1) quanta.  Preemptions
  // are Poisson-discrete so that fragments shorter than a quantum are
  // bimodal — untouched or hit by a full wait burst — while long fragments
  // converge to the expected (1/s − 1) slowdown.  This is what makes short
  // static snippets report ~90% loss under a 50%-share noise while long
  // runtime fragments correctly report ~50% (the paper's Fig 12 contrast).
  const double share = std::clamp(env.cpu_share(where), 0.05, 1.0);
  double invol_cs = 0.0;
  if (share < 1.0) {
    const double burst = params_.timeslice_seconds * (1.0 / share - 1.0);
    invol_cs = static_cast<double>(
        rng_.poisson(out.cpu_seconds / params_.timeslice_seconds));
    suspension += invol_cs * (burst + params_.ctx_switch_seconds);
  } else {
    // Rare background preemptions even on a quiet machine.
    invol_cs = static_cast<double>(rng_.poisson(0.2 * out.cpu_seconds));
    suspension += invol_cs * params_.ctx_switch_seconds;
  }
  // Page faults imply kernel entries counted as involuntary switches on
  // some OSes; we keep them separate (the breakdown model treats PF and CS
  // as sibling factors but the OLS sees their correlation).
  out.suspended_seconds = suspension;

  // --- Counters. ---
  CounterSample& d = out.delta;
  d[Counter::kTotIns] = w.instructions;
  d[Counter::kCpuClkUnhalted] = cycles;
  d[Counter::kTsc] = out.wall_seconds() * params_.frequency_hz;
  d[Counter::kSlotsRetiring] = retiring;
  d[Counter::kSlotsFrontend] = frontend;
  d[Counter::kSlotsBadSpec] = badspec;
  d[Counter::kSlotsBackend] = backend;
  d[Counter::kStallsCore] = core_total;
  d[Counter::kStallsL1] = l1_bound;
  d[Counter::kStallsL2] = l2_bound;
  d[Counter::kStallsL3] = l3_bound;
  d[Counter::kStallsDram] = dram_bound;
  d[Counter::kMemRefs] = refs;
  d[Counter::kPageFaultsSoft] = soft_pf;
  d[Counter::kPageFaultsHard] = hard_pf;
  d[Counter::kCtxSwitchInvoluntary] = invol_cs;
  d[Counter::kSignals] = signals;
  return out;
}

}  // namespace vapro::pmu
