// Top-down CPU core + OS model.
//
// Converts a ComputeWorkload into time and counter deltas using the
// pipeline-slot algebra of Yasin's top-down method (the same structure the
// paper's variance breakdown model mirrors, Fig 10):
//
//   total_slots = retiring + frontend + bad_spec + backend
//   backend     = core_bound + L1 + L2 + L3 + DRAM bound
//   on-CPU cycles = total_slots / pipeline_width
//   wall time     = on-CPU time / cpu_share + suspension (faults, preemption)
//
// Environmental perturbations enter exclusively through the Environment
// interface: the core model never knows *why* DRAM got slower, it just sees
// multipliers — exactly as real hardware exposes variance to a tool.
#pragma once

#include <cstdint>

#include "src/pmu/counters.hpp"
#include "src/pmu/workload.hpp"
#include "src/util/rng.hpp"

namespace vapro::pmu {

// Location + instant of an execution; the environment answers per-query.
struct EnvQuery {
  int node = 0;
  int core = 0;
  double time = 0.0;  // seconds of simulated time at fragment start
};

// Abstract view of the machine environment.  The simulator composes the
// active noise injectors into one of these.
class Environment {
 public:
  virtual ~Environment() = default;

  // Fraction of the core this rank gets (1.0 = dedicated; 0.5 under a
  // co-scheduled `stress` process).
  virtual double cpu_share(const EnvQuery&) const { return 1.0; }
  // Multiplier on DRAM-bound stall slots (memory-bandwidth contention,
  // slow DIMMs).
  virtual double dram_factor(const EnvQuery&) const { return 1.0; }
  // Multiplier on L2-bound stall slots (the Intel L2-eviction bug of §6.5.1
  // manifests here, together with a DRAM component).
  virtual double l2_factor(const EnvQuery&) const { return 1.0; }
  // Extra soft/hard page faults per on-CPU second.
  virtual double soft_pf_rate(const EnvQuery&) const { return 0.0; }
  virtual double hard_pf_rate(const EnvQuery&) const { return 0.0; }
  // Extra signals per on-CPU second.
  virtual double signal_rate(const EnvQuery&) const { return 0.0; }
};

// A no-noise environment (all defaults).
class QuietEnvironment final : public Environment {};

struct MachineParams {
  double frequency_hz = 2.2e9;  // Xeon E5-2692 v2-ish
  double pipeline_width = 4.0;  // slots per cycle
  // Stall slots charged per access *served at* each level.
  double l1_stall_slots = 0.5;
  double l2_stall_slots = 40.0;
  double l3_stall_slots = 120.0;
  double dram_stall_slots = 600.0;
  // OS cost model.
  double soft_pf_seconds = 1.5e-6;
  double hard_pf_seconds = 5.0e-5;
  double timeslice_seconds = 10e-3;   // scheduler quantum
  double base_soft_pf_rate = 2.0;     // faults per on-CPU second, quiescent
  double ctx_switch_seconds = 3.0e-6; // direct cost per involuntary switch
  // Relative stddev of per-fragment execution-time jitter: DVFS, TLB and
  // branch-predictor state, refresh interference.  Keeps repeated runs from
  // being bit-identical (the quiescent spread under Fig 1's baseline).
  double time_jitter = 0.004;
};

// Result of executing one computation fragment.
struct ComputeOutcome {
  double cpu_seconds = 0.0;        // time actually on-CPU
  double suspended_seconds = 0.0;  // preempted / fault handling
  CounterSample delta;             // ground-truth counter increments

  double wall_seconds() const { return cpu_seconds + suspended_seconds; }
};

class CoreModel {
 public:
  CoreModel(MachineParams params, std::uint64_t seed);

  // Executes `w` at (node, core) starting at `time` seconds under `env`.
  ComputeOutcome execute(const ComputeWorkload& w, const EnvQuery& where,
                         const Environment& env);

  const MachineParams& params() const { return params_; }

 private:
  MachineParams params_;
  util::Rng rng_;
};

}  // namespace vapro::pmu
