// Computation workload descriptions.
//
// A ComputeWorkload is what an application "runs" between two external
// invocations: an instruction count plus a memory-behaviour profile.  The
// core model turns it into pipeline slots, stalls, and time.  Apps keep a
// ground-truth class id per workload so clustering quality can be scored
// against truth (paper Table 2) — Vapro itself never sees the id.
#pragma once

#include <cstdint>

namespace vapro::pmu {

struct ComputeWorkload {
  // Retired instructions; the paper's crucial stable proxy metric.
  double instructions = 0.0;
  // Memory references issued (loads + stores).
  double mem_refs = 0.0;
  // Fraction of mem_refs that miss L1 / (of those) miss L2 / (of those)
  // miss L3.  The remainder at each level is served there.
  double l1_miss = 0.05;
  double l2_miss = 0.3;
  double l3_miss = 0.2;
  // Frontend-bound and bad-speculation slots per retiring slot.
  double frontend_per_ins = 0.08;
  double badspec_per_ins = 0.03;
  // Core-bound (execution port / divider) stall slots per instruction.
  double core_stall_per_ins = 0.10;
  // Ground-truth workload class id (for evaluation only, not visible to
  // the tool).  Negative means "unlabelled".
  std::int64_t truth_class = -1;
  // True when a compile-time analysis could prove this snippet's workload
  // fixed (loop bounds constant, no data-dependent trip counts).  This is
  // what the vSensor baseline keys on; snippets that are only *de facto*
  // fixed at runtime (paper §3.1, e.g. AMG's 7-workload loop) leave this
  // false and are invisible to static tools.
  bool statically_fixed = false;

  // Named constructors for common shapes.
  // A compute-bound kernel: high ILP, tiny working set.
  static ComputeWorkload compute_bound(double instructions,
                                       std::int64_t truth_class = -1);
  // A memory-bound kernel: streaming through a working set larger than LLC.
  static ComputeWorkload memory_bound(double instructions,
                                      std::int64_t truth_class = -1);
  // A balanced kernel, cache-resident.
  static ComputeWorkload balanced(double instructions,
                                  std::int64_t truth_class = -1);

  // Returns a copy scaled by `factor` in both instructions and mem_refs —
  // convenient for building families of related workload classes.
  ComputeWorkload scaled(double factor, std::int64_t new_class = -1) const;
};

}  // namespace vapro::pmu
