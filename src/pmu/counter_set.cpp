#include "src/pmu/counter_set.hpp"

#include "src/util/check.hpp"

namespace vapro::pmu {

CounterSet::CounterSet(std::uint64_t seed, int programmable_budget,
                       double jitter)
    : budget_(programmable_budget), jitter_(jitter), rng_(seed) {
  VAPRO_CHECK(programmable_budget >= 0);
  VAPRO_CHECK(jitter >= 0.0);
  for (std::size_t i = 0; i < kCounterCount; ++i)
    active_mask_[i] = is_free_counter(static_cast<Counter>(i));
}

bool CounterSet::configure(const std::vector<Counter>& programmable) {
  int needed = 0;
  for (Counter c : programmable)
    if (!is_free_counter(c)) ++needed;
  if (needed > budget_) return false;

  for (Counter c : active_) active_mask_[static_cast<std::size_t>(c)] = false;
  active_.clear();
  for (Counter c : programmable) {
    if (is_free_counter(c)) continue;
    active_.push_back(c);
    active_mask_[static_cast<std::size_t>(c)] = true;
  }
  return true;
}

void CounterSet::configure_multiplexed(
    const std::vector<Counter>& programmable) {
  for (Counter c : active_) active_mask_[static_cast<std::size_t>(c)] = false;
  active_.clear();
  for (Counter c : programmable) {
    if (is_free_counter(c)) continue;
    if (active_mask_[static_cast<std::size_t>(c)]) continue;
    active_.push_back(c);
    active_mask_[static_cast<std::size_t>(c)] = true;
  }
}

double CounterSet::duty_cycle() const {
  if (active_.size() <= static_cast<std::size_t>(budget_)) return 1.0;
  return static_cast<double>(budget_) / static_cast<double>(active_.size());
}

bool CounterSet::is_active(Counter c) const {
  return active_mask_[static_cast<std::size_t>(c)];
}

CounterSample CounterSet::read_delta(const CounterSample& begin,
                                     const CounterSample& end) {
  CounterSample out;
  const double duty = duty_cycle();
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    if (!active_mask_[i]) continue;
    double v = end.values[i] - begin.values[i];
    // Multiplexed programmable counters see only `duty` of the interval;
    // the extrapolated estimate carries 1/duty the relative error.
    const bool multiplexed =
        duty < 1.0 && !is_free_counter(static_cast<Counter>(i));
    const double sigma = multiplexed ? jitter_ / duty : jitter_;
    if (sigma > 0.0 && v != 0.0) v *= rng_.normal(1.0, sigma);
    out.values[i] = v;
  }
  return out;
}

CounterSample CounterSet::read(const CounterSample& ground_truth) {
  CounterSample out;
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    if (!active_mask_[i]) continue;
    double v = ground_truth.values[i];
    if (jitter_ > 0.0 && v != 0.0) v *= rng_.normal(1.0, jitter_);
    out.values[i] = v;
  }
  return out;
}

}  // namespace vapro::pmu
