#include "src/util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "src/util/check.hpp"

namespace vapro::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  VAPRO_CHECK_MSG(row.size() == header_.size(),
                  "row width " << row.size() << " != header width "
                               << header_.size());
  rows_.push_back(std::move(row));
}

void TextTable::add_row_numeric(const std::string& label,
                                const std::vector<double>& values,
                                int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(fmt(v, precision));
  add_row(std::move(row));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << row[c];
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string fmt(double v, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << v;
  return oss.str();
}

}  // namespace vapro::util
