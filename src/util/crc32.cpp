#include "src/util/crc32.hpp"

#include <array>

namespace vapro::util {

std::uint32_t crc32(const void* data, std::size_t len) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      t[i] = c;
    }
    return t;
  }();
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i)
    crc = table[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace vapro::util
