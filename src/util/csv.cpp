#include "src/util/csv.hpp"

#include <sstream>

#include "src/util/check.hpp"

namespace vapro::util {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  VAPRO_CHECK_MSG(out_.good(), "cannot open CSV file " << path);
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    out_ << csv_escape(fields[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_row(const std::vector<double>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    out_ << fields[i];
  }
  out_ << '\n';
}

void CsvWriter::close() {
  if (out_.is_open()) out_.close();
}

std::string csv_escape(const std::string& field) {
  bool needs_quote = field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quote) return field;
  std::ostringstream oss;
  oss << '"';
  for (char c : field) {
    if (c == '"') oss << '"';
    oss << c;
  }
  oss << '"';
  return oss.str();
}

}  // namespace vapro::util
