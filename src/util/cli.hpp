// Minimal command-line flag parser for the driver tools: supports
// --key=value and --key value forms plus boolean switches.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace vapro::util {

class CliArgs {
 public:
  // Parses argv; unknown arguments are collected as positionals.
  CliArgs(int argc, const char* const* argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  double get_double(const std::string& key, double fallback) const;
  int get_int(const std::string& key, int fallback) const;
  bool get_bool(const std::string& key, bool fallback = false) const;

  const std::vector<std::string>& positionals() const { return positionals_; }
  // All values passed for a repeatable flag (e.g. several --noise=...).
  std::vector<std::string> get_all(const std::string& key) const;

 private:
  std::multimap<std::string, std::string> values_;
  std::vector<std::string> positionals_;
};

// Splits "a:b:c" into fields.
std::vector<std::string> split(const std::string& s, char sep);

}  // namespace vapro::util
