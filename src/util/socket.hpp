// Shared POSIX-socket hygiene for every socket-owning component (the
// exposition HTTP server, the net ingest plane).
//
// The contract: a peer that disconnects mid-transfer surfaces as a failed
// send/recv — a counted drop the caller handles — never as a
// process-killing SIGPIPE.  Servers call ignore_sigpipe() at start() and
// all writes go through send_all(), which also passes MSG_NOSIGNAL as a
// second line of defense.
#pragma once

#include <cstddef>

namespace vapro::util {

// Installs SIG_IGN for SIGPIPE, once per process.  Idempotent and
// thread-safe; cheap enough to call from every server start().
void ignore_sigpipe();

// Sends the whole buffer (retrying partial writes and EINTR).  False when
// the peer vanished (EPIPE/ECONNRESET/any send failure) — the caller
// counts a drop and abandons the connection.
bool send_all(int fd, const void* data, std::size_t len);

// Reads exactly `len` bytes (retrying partial reads and EINTR).  False on
// EOF, error, or a receive timeout (SO_RCVTIMEO surfaces as EAGAIN).
bool recv_all(int fd, void* data, std::size_t len);

}  // namespace vapro::util
