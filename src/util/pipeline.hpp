// Staged concurrent pipeline primitives (paper §5: overlap window drain
// with window analysis so slot times stop stacking).
//
// Three building blocks:
//
//   * BoundedQueue<T> — a bounded multi-producer/single-consumer queue
//     whose push() BLOCKS while the queue is full.  That blocking is the
//     backpressure contract: a producer that outruns the analysis stage is
//     throttled to the consumer's pace instead of growing an unbounded
//     backlog.  Wait time is accounted per side (via an injectable
//     util::Clock) so a stall is attributed to a STAGE, not just summed:
//     producer-block (push on a full queue — the consumer is the
//     bottleneck), consumer-idle (pop on an empty queue — the producer is
//     the bottleneck), and per-item handoff latency (enqueue → dequeue —
//     how long work sat in the queue).
//
//   * StageExecutor — one worker thread draining a bounded job queue in
//     strict FIFO order.  Determinism rule: because there is exactly one
//     worker, every job observes all effects of every earlier job — a
//     pipelined AnalysisServer produces byte-identical results to the
//     synchronous one, the only difference being WHEN the work runs.
//     drain() is the synchronization point: it blocks until the queue is
//     empty and the in-flight job (if any) has finished.
//
//   * WorkerPool — a persistent pool for INTRA-window fan-out (the sharded
//     clustering and region-growing passes).  run(count, fn) is a blocking
//     parallel-for: tasks are claimed by atomic counter, the calling
//     thread participates as lane 0, and run() returns only after every
//     task finished — so task writes into caller-owned, task-indexed slots
//     happen-before the caller's merge.  Determinism rule: the pool never
//     decides ORDER of results, only WHO computes them; callers merge by
//     task index, so output is interleaving-independent.  Exceptions are
//     contained per task (run() returns the failed count and the owner
//     degrades, e.g. re-running the window serially).
//
// All three are TSan-clean by construction: shared state is guarded by one
// mutex per object (task claiming aside, which is a plain atomic), and
// drain()/run()-return establish the happens-before edges that let the
// coordinating thread read worker-written state without extra locking.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "src/util/clock.hpp"

namespace vapro::util {

// Bounded MPSC queue with blocking backpressure.  `capacity` is the
// maximum number of queued (not yet popped) items; push() blocks while the
// queue is at capacity and fails only after close().
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity, Clock* clock = nullptr)
      : capacity_(capacity == 0 ? 1 : capacity),
        clock_(clock ? clock : real_clock()) {}

  // Blocks while full.  False when the queue was closed (item dropped).
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.size() >= capacity_ && !closed_) {
      const double t0 = clock_->now_seconds();
      not_full_.wait(lock,
                     [this] { return items_.size() < capacity_ || closed_; });
      stall_seconds_ += clock_->now_seconds() - t0;
      ++stalls_;
    }
    if (closed_) return false;
    items_.emplace_back(clock_->now_seconds(), std::move(item));
    not_empty_.notify_one();
    return true;
  }

  // Blocks while empty.  nullopt when the queue is closed AND drained —
  // the consumer's termination signal.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.empty() && !closed_) {
      const double t0 = clock_->now_seconds();
      not_empty_.wait(lock, [this] { return !items_.empty() || closed_; });
      idle_seconds_ += clock_->now_seconds() - t0;
      ++idle_waits_;
    }
    if (items_.empty()) return std::nullopt;
    auto [enqueued_at, item] = std::move(items_.front());
    items_.pop_front();
    handoff_seconds_ += clock_->now_seconds() - enqueued_at;
    ++handoffs_;
    not_full_.notify_one();
    return std::optional<T>(std::move(item));
  }

  // Non-blocking push: false when the queue is full or closed, in which
  // case `item` is left untouched (rvalue-ref, moved only on success) so
  // the caller still owns it.  This is the admission-control entry point —
  // callers that shed instead of blocking (net ingest under kShedOldest)
  // pair it with try_pop() to evict the oldest queued item and retry.
  bool try_push(T&& item) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.emplace_back(clock_->now_seconds(), std::move(item));
    not_empty_.notify_one();
    return true;
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  // Non-blocking pop: nullopt when the queue is empty (closed or not).
  // Unlike pop(), usable from a non-consumer thread to evict a victim; the
  // handoff accounting still runs so evictions stay visible.
  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    auto [enqueued_at, item] = std::move(items_.front());
    items_.pop_front();
    handoff_seconds_ += clock_->now_seconds() - enqueued_at;
    ++handoffs_;
    not_full_.notify_one();
    return std::optional<T>(std::move(item));
  }

  // Wakes all waiters; subsequent push() fails, pop() drains the backlog
  // then returns nullopt.
  void close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  std::size_t depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }
  std::size_t capacity() const { return capacity_; }
  // Cumulative seconds producers spent blocked on a full queue
  // (producer-block: the consumer is the bottleneck).
  double stall_seconds() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stall_seconds_;
  }
  std::uint64_t stalls() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stalls_;
  }
  // Cumulative seconds the consumer spent waiting on an empty queue
  // (consumer-idle: the producer is the bottleneck).
  double idle_seconds() const {
    std::lock_guard<std::mutex> lock(mu_);
    return idle_seconds_;
  }
  std::uint64_t idle_waits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return idle_waits_;
  }
  // Cumulative enqueue→dequeue latency across all popped items, and the
  // number of items it covers (divide for the mean handoff latency).
  double handoff_seconds() const {
    std::lock_guard<std::mutex> lock(mu_);
    return handoff_seconds_;
  }
  std::uint64_t handoffs() const {
    std::lock_guard<std::mutex> lock(mu_);
    return handoffs_;
  }

 private:
  const std::size_t capacity_;
  Clock* clock_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<std::pair<double, T>> items_;  // (enqueue time, item)
  bool closed_ = false;
  double stall_seconds_ = 0.0;
  double idle_seconds_ = 0.0;
  double handoff_seconds_ = 0.0;
  std::uint64_t stalls_ = 0;
  std::uint64_t idle_waits_ = 0;
  std::uint64_t handoffs_ = 0;
};

// One worker thread running submitted jobs in FIFO order.  `max_pending`
// bounds the number of submitted-but-unfinished jobs EXCLUDING the one
// currently executing, so an AnalysisServer with pipeline_depth d uses
// max_pending = d - 1: one window in flight on the worker plus d-1 queued
// equals d windows admitted past the hand-off.
class StageExecutor {
 public:
  explicit StageExecutor(std::size_t max_pending, Clock* clock = nullptr)
      : max_pending_(max_pending == 0 ? 1 : max_pending),
        clock_(clock ? clock : real_clock()),
        worker_([this] { run(); }) {}

  ~StageExecutor() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
      not_empty_.notify_all();
      not_full_.notify_all();
    }
    worker_.join();
  }

  StageExecutor(const StageExecutor&) = delete;
  StageExecutor& operator=(const StageExecutor&) = delete;

  // Blocks while the pending queue is full (backpressure); false after
  // close (the job is dropped — only happens during teardown).
  bool submit(std::function<void()> job) {
    std::unique_lock<std::mutex> lock(mu_);
    if (jobs_.size() >= max_pending_ && !closed_) {
      const double t0 = clock_->now_seconds();
      not_full_.wait(lock,
                     [this] { return jobs_.size() < max_pending_ || closed_; });
      stall_seconds_ += clock_->now_seconds() - t0;
      ++stalls_;
    }
    if (closed_) return false;
    jobs_.emplace_back(clock_->now_seconds(), std::move(job));
    not_empty_.notify_one();
    return true;
  }

  // Blocks until every submitted job has finished.  This is the
  // producer-side synchronization point: after drain() returns, all
  // worker-thread writes happen-before the caller's subsequent reads.
  void drain() {
    std::unique_lock<std::mutex> lock(mu_);
    idle_.wait(lock, [this] { return jobs_.empty() && !running_; });
  }

  // Queued plus in-flight jobs.
  std::size_t depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return jobs_.size() + (running_ ? 1 : 0);
  }
  // Cumulative seconds submitters spent blocked on a full queue
  // (producer-block).
  double stall_seconds() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stall_seconds_;
  }
  std::uint64_t stalls() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stalls_;
  }
  // Cumulative seconds the worker spent waiting for a job (consumer-idle).
  double idle_seconds() const {
    std::lock_guard<std::mutex> lock(mu_);
    return idle_seconds_;
  }
  std::uint64_t idle_waits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return idle_waits_;
  }
  // Cumulative submit→start latency across all executed jobs (how long
  // work sat queued before the worker picked it up).
  double handoff_seconds() const {
    std::lock_guard<std::mutex> lock(mu_);
    return handoff_seconds_;
  }
  // Cumulative seconds the worker spent executing jobs (stage occupancy
  // numerator; divide by wall time for utilization).
  double busy_seconds() const {
    std::lock_guard<std::mutex> lock(mu_);
    return busy_seconds_;
  }
  std::uint64_t jobs_run() const {
    std::lock_guard<std::mutex> lock(mu_);
    return jobs_run_;
  }
  // Jobs whose callable threw; the worker survives and keeps draining.
  std::uint64_t jobs_failed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return jobs_failed_;
  }

 private:
  void run() {
    for (;;) {
      std::function<void()> job;
      {
        std::unique_lock<std::mutex> lock(mu_);
        if (jobs_.empty() && !closed_) {
          const double w0 = clock_->now_seconds();
          not_empty_.wait(lock, [this] { return !jobs_.empty() || closed_; });
          idle_seconds_ += clock_->now_seconds() - w0;
          ++idle_waits_;
        }
        if (jobs_.empty()) return;  // closed and drained
        auto [submitted_at, j] = std::move(jobs_.front());
        jobs_.pop_front();
        handoff_seconds_ += clock_->now_seconds() - submitted_at;
        job = std::move(j);
        running_ = true;
        not_full_.notify_one();
      }
      const double t0 = clock_->now_seconds();
      bool failed = false;
      try {
        job();
      } catch (...) {
        // A throwing stage must not take the whole pipeline down; the
        // owner reads jobs_failed() to surface the degradation.
        failed = true;
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        busy_seconds_ += clock_->now_seconds() - t0;
        ++jobs_run_;
        if (failed) ++jobs_failed_;
        running_ = false;
        if (jobs_.empty()) idle_.notify_all();
      }
    }
  }

  const std::size_t max_pending_;
  Clock* clock_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::condition_variable idle_;
  // (submit time, job) so dequeue can account the handoff latency.
  std::deque<std::pair<double, std::function<void()>>> jobs_;
  bool closed_ = false;
  bool running_ = false;
  double stall_seconds_ = 0.0;
  double idle_seconds_ = 0.0;
  double handoff_seconds_ = 0.0;
  double busy_seconds_ = 0.0;
  std::uint64_t stalls_ = 0;
  std::uint64_t idle_waits_ = 0;
  std::uint64_t jobs_run_ = 0;
  std::uint64_t jobs_failed_ = 0;
  std::thread worker_;  // last member: starts after all state exists
};

// Persistent pool for intra-window fan-out.  A pool with L lanes owns
// L-1 threads; the thread that calls run() participates as lane 0, so
// `lanes == 1` is the serial path with zero thread machinery on the hot
// loop.  run(count, fn) executes fn(task, lane) exactly once for every
// task in [0, count): tasks are claimed from a shared atomic counter
// (dynamic load balancing — a slow edge does not stall the other lanes),
// and run() returns only after every task has finished, which makes all
// task-side writes visible to the caller's merge.
//
// Determinism contract: the pool decides WHICH lane computes each task,
// never the order results are combined — callers write into task-indexed
// slots and merge in task order after run() returns, so the output is
// independent of lanes, scheduling, and claim interleaving.
//
// Failure contract: a task that throws is contained (counted, the lane
// moves on) and run() returns the number of failed tasks; the caller
// decides how to degrade (the AnalysisServer re-runs the window's
// fan-out serially so its outputs stay equivalence-comparable).
//
// Single-coordinator contract: at most one run() may be in flight at a
// time; the AnalysisServer guarantees this by only calling from the
// analysis path (serialized by live_mu_ / the StageExecutor worker).
class WorkerPool {
 public:
  // Summary a lane hands to the optional per-run hook, on the lane's own
  // thread, after its last task of the run (used for per-shard trace
  // spans without the pool knowing about tracing).
  struct LaneReport {
    std::size_t lane = 0;
    std::uint64_t tasks = 0;
    double busy_seconds = 0.0;
  };
  using TaskFn = std::function<void(std::size_t task, std::size_t lane)>;
  using LaneDoneFn = std::function<void(const LaneReport&)>;

  explicit WorkerPool(std::size_t lanes, Clock* clock = nullptr)
      : lanes_(lanes == 0 ? 1 : lanes),
        clock_(clock ? clock : real_clock()),
        lane_busy_(lanes_, 0.0),
        lane_tasks_(lanes_, 0) {
    threads_.reserve(lanes_ - 1);
    for (std::size_t lane = 1; lane < lanes_; ++lane) {
      threads_.emplace_back([this, lane] { worker(lane); });
    }
  }

  ~WorkerPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
      job_ready_.notify_all();
    }
    for (auto& t : threads_) t.join();
  }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  std::size_t lanes() const { return lanes_; }

  // Blocking parallel-for over [0, count).  Returns the number of tasks
  // whose callable threw (0 == clean run).  `lane_done`, if set, fires at
  // most once per lane that ran at least one task, on that lane's thread,
  // before run() returns.
  std::size_t run(std::size_t count, const TaskFn& fn,
                  const LaneDoneFn& lane_done = LaneDoneFn()) {
    if (count == 0) return 0;
    Job job;
    job.count = count;
    job.fn = &fn;
    job.lane_done = lane_done ? &lane_done : nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      job_ = &job;
      ++generation_;
      ++runs_;
      job_ready_.notify_all();
    }
    execute(job, /*lane=*/0);
    std::unique_lock<std::mutex> lock(mu_);
    // Detach the job so lanes that never woke up cannot enter it, then
    // wait for every lane that DID enter to exit.  Lane 0's loop above
    // only returns once all tasks are claimed, and claimed tasks belong
    // to entered lanes — so entered == exited means all tasks finished
    // and the stack-allocated Job is safe to destroy.
    job_ = nullptr;
    job_exit_.wait(lock, [&job] { return job.exited == job.entered; });
    return job.failed;
  }

  // --- accounting (all cumulative since construction) ---
  // Per-lane busy seconds / task counts; index < lanes().
  std::vector<double> lane_busy_seconds() const {
    std::lock_guard<std::mutex> lock(mu_);
    return lane_busy_;
  }
  std::vector<std::uint64_t> lane_task_counts() const {
    std::lock_guard<std::mutex> lock(mu_);
    return lane_tasks_;
  }
  // Sum of busy seconds across lanes (work done, not wall time).
  double busy_seconds() const {
    std::lock_guard<std::mutex> lock(mu_);
    double total = 0.0;
    for (double b : lane_busy_) total += b;
    return total;
  }
  // Seconds worker lanes spent parked waiting for a job (lane 0 never
  // parks — it is the coordinator).
  double idle_seconds() const {
    std::lock_guard<std::mutex> lock(mu_);
    return idle_seconds_;
  }
  std::uint64_t tasks_run() const {
    std::lock_guard<std::mutex> lock(mu_);
    return tasks_run_;
  }
  std::uint64_t tasks_failed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return tasks_failed_;
  }
  std::uint64_t runs() const {
    std::lock_guard<std::mutex> lock(mu_);
    return runs_;
  }

 private:
  // Per-run state, allocated on run()'s stack; the entered/exited
  // protocol above bounds its lifetime.
  struct Job {
    std::size_t count = 0;
    const TaskFn* fn = nullptr;
    const LaneDoneFn* lane_done = nullptr;
    std::atomic<std::size_t> next{0};  // task claim counter
    std::size_t entered = 0;           // lanes that joined (under mu_)
    std::size_t exited = 0;            // lanes that left (under mu_)
    std::size_t failed = 0;            // tasks that threw (under mu_)
  };

  void worker(std::size_t lane) {
    std::uint64_t seen = 0;  // generation of the last job this lane ran
    for (;;) {
      Job* job = nullptr;
      {
        std::unique_lock<std::mutex> lock(mu_);
        if (!closed_ && !(job_ && generation_ != seen)) {
          const double w0 = clock_->now_seconds();
          job_ready_.wait(
              lock, [&] { return closed_ || (job_ && generation_ != seen); });
          idle_seconds_ += clock_->now_seconds() - w0;
        }
        if (job_ && generation_ != seen) {
          seen = generation_;
          job = job_;
          ++job->entered;
        } else if (closed_) {
          return;
        } else {
          continue;  // spurious wake after the job was detached
        }
      }
      execute(*job, lane);
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++job->exited;
        job_exit_.notify_all();
      }
    }
  }

  // Claim-and-run loop shared by lane 0 and the worker lanes.  Lane-local
  // tallies fold into the shared counters once, at the end.
  void execute(Job& job, std::size_t lane) {
    const double t0 = clock_->now_seconds();
    std::uint64_t ran = 0;
    std::size_t threw = 0;
    for (;;) {
      const std::size_t task = job.next.fetch_add(1, std::memory_order_relaxed);
      if (task >= job.count) break;
      try {
        (*job.fn)(task, lane);
      } catch (...) {
        // Contained: the merge sees this task's slot untouched; run()'s
        // return value tells the coordinator to degrade.
        ++threw;
      }
      ++ran;
    }
    const double busy = clock_->now_seconds() - t0;
    if (ran > 0 && job.lane_done) {
      LaneReport report;
      report.lane = lane;
      report.tasks = ran;
      report.busy_seconds = busy;
      (*job.lane_done)(report);
    }
    std::lock_guard<std::mutex> lock(mu_);
    lane_busy_[lane] += busy;
    lane_tasks_[lane] += ran;
    tasks_run_ += ran;
    job.failed += threw;
    tasks_failed_ += threw;
  }

  const std::size_t lanes_;
  Clock* clock_;
  mutable std::mutex mu_;
  std::condition_variable job_ready_;
  std::condition_variable job_exit_;
  Job* job_ = nullptr;          // current job, null between runs
  std::uint64_t generation_ = 0;  // bumps per run; lanes join each gen once
  bool closed_ = false;
  std::vector<double> lane_busy_;
  std::vector<std::uint64_t> lane_tasks_;
  double idle_seconds_ = 0.0;
  std::uint64_t tasks_run_ = 0;
  std::uint64_t tasks_failed_ = 0;
  std::uint64_t runs_ = 0;
  std::vector<std::thread> threads_;  // last: start after all state exists
};

}  // namespace vapro::util
