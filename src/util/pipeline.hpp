// Staged concurrent pipeline primitives (paper §5: overlap window drain
// with window analysis so slot times stop stacking).
//
// Two building blocks:
//
//   * BoundedQueue<T> — a bounded multi-producer/single-consumer queue
//     whose push() BLOCKS while the queue is full.  That blocking is the
//     backpressure contract: a producer that outruns the analysis stage is
//     throttled to the consumer's pace instead of growing an unbounded
//     backlog.  Wait time is accounted per side (via an injectable
//     util::Clock) so a stall is attributed to a STAGE, not just summed:
//     producer-block (push on a full queue — the consumer is the
//     bottleneck), consumer-idle (pop on an empty queue — the producer is
//     the bottleneck), and per-item handoff latency (enqueue → dequeue —
//     how long work sat in the queue).
//
//   * StageExecutor — one worker thread draining a bounded job queue in
//     strict FIFO order.  Determinism rule: because there is exactly one
//     worker, every job observes all effects of every earlier job — a
//     pipelined AnalysisServer produces byte-identical results to the
//     synchronous one, the only difference being WHEN the work runs.
//     drain() is the synchronization point: it blocks until the queue is
//     empty and the in-flight job (if any) has finished.
//
// Both are TSan-clean by construction: all state is guarded by one mutex
// per object, and drain() establishes the happens-before edge that lets
// the producer read consumer-written state without extra locking.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "src/util/clock.hpp"

namespace vapro::util {

// Bounded MPSC queue with blocking backpressure.  `capacity` is the
// maximum number of queued (not yet popped) items; push() blocks while the
// queue is at capacity and fails only after close().
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity, Clock* clock = nullptr)
      : capacity_(capacity == 0 ? 1 : capacity),
        clock_(clock ? clock : real_clock()) {}

  // Blocks while full.  False when the queue was closed (item dropped).
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.size() >= capacity_ && !closed_) {
      const double t0 = clock_->now_seconds();
      not_full_.wait(lock,
                     [this] { return items_.size() < capacity_ || closed_; });
      stall_seconds_ += clock_->now_seconds() - t0;
      ++stalls_;
    }
    if (closed_) return false;
    items_.emplace_back(clock_->now_seconds(), std::move(item));
    not_empty_.notify_one();
    return true;
  }

  // Blocks while empty.  nullopt when the queue is closed AND drained —
  // the consumer's termination signal.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.empty() && !closed_) {
      const double t0 = clock_->now_seconds();
      not_empty_.wait(lock, [this] { return !items_.empty() || closed_; });
      idle_seconds_ += clock_->now_seconds() - t0;
      ++idle_waits_;
    }
    if (items_.empty()) return std::nullopt;
    auto [enqueued_at, item] = std::move(items_.front());
    items_.pop_front();
    handoff_seconds_ += clock_->now_seconds() - enqueued_at;
    ++handoffs_;
    not_full_.notify_one();
    return std::optional<T>(std::move(item));
  }

  // Wakes all waiters; subsequent push() fails, pop() drains the backlog
  // then returns nullopt.
  void close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  std::size_t depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }
  std::size_t capacity() const { return capacity_; }
  // Cumulative seconds producers spent blocked on a full queue
  // (producer-block: the consumer is the bottleneck).
  double stall_seconds() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stall_seconds_;
  }
  std::uint64_t stalls() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stalls_;
  }
  // Cumulative seconds the consumer spent waiting on an empty queue
  // (consumer-idle: the producer is the bottleneck).
  double idle_seconds() const {
    std::lock_guard<std::mutex> lock(mu_);
    return idle_seconds_;
  }
  std::uint64_t idle_waits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return idle_waits_;
  }
  // Cumulative enqueue→dequeue latency across all popped items, and the
  // number of items it covers (divide for the mean handoff latency).
  double handoff_seconds() const {
    std::lock_guard<std::mutex> lock(mu_);
    return handoff_seconds_;
  }
  std::uint64_t handoffs() const {
    std::lock_guard<std::mutex> lock(mu_);
    return handoffs_;
  }

 private:
  const std::size_t capacity_;
  Clock* clock_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<std::pair<double, T>> items_;  // (enqueue time, item)
  bool closed_ = false;
  double stall_seconds_ = 0.0;
  double idle_seconds_ = 0.0;
  double handoff_seconds_ = 0.0;
  std::uint64_t stalls_ = 0;
  std::uint64_t idle_waits_ = 0;
  std::uint64_t handoffs_ = 0;
};

// One worker thread running submitted jobs in FIFO order.  `max_pending`
// bounds the number of submitted-but-unfinished jobs EXCLUDING the one
// currently executing, so an AnalysisServer with pipeline_depth d uses
// max_pending = d - 1: one window in flight on the worker plus d-1 queued
// equals d windows admitted past the hand-off.
class StageExecutor {
 public:
  explicit StageExecutor(std::size_t max_pending, Clock* clock = nullptr)
      : max_pending_(max_pending == 0 ? 1 : max_pending),
        clock_(clock ? clock : real_clock()),
        worker_([this] { run(); }) {}

  ~StageExecutor() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
      not_empty_.notify_all();
      not_full_.notify_all();
    }
    worker_.join();
  }

  StageExecutor(const StageExecutor&) = delete;
  StageExecutor& operator=(const StageExecutor&) = delete;

  // Blocks while the pending queue is full (backpressure); false after
  // close (the job is dropped — only happens during teardown).
  bool submit(std::function<void()> job) {
    std::unique_lock<std::mutex> lock(mu_);
    if (jobs_.size() >= max_pending_ && !closed_) {
      const double t0 = clock_->now_seconds();
      not_full_.wait(lock,
                     [this] { return jobs_.size() < max_pending_ || closed_; });
      stall_seconds_ += clock_->now_seconds() - t0;
      ++stalls_;
    }
    if (closed_) return false;
    jobs_.emplace_back(clock_->now_seconds(), std::move(job));
    not_empty_.notify_one();
    return true;
  }

  // Blocks until every submitted job has finished.  This is the
  // producer-side synchronization point: after drain() returns, all
  // worker-thread writes happen-before the caller's subsequent reads.
  void drain() {
    std::unique_lock<std::mutex> lock(mu_);
    idle_.wait(lock, [this] { return jobs_.empty() && !running_; });
  }

  // Queued plus in-flight jobs.
  std::size_t depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return jobs_.size() + (running_ ? 1 : 0);
  }
  // Cumulative seconds submitters spent blocked on a full queue
  // (producer-block).
  double stall_seconds() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stall_seconds_;
  }
  std::uint64_t stalls() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stalls_;
  }
  // Cumulative seconds the worker spent waiting for a job (consumer-idle).
  double idle_seconds() const {
    std::lock_guard<std::mutex> lock(mu_);
    return idle_seconds_;
  }
  std::uint64_t idle_waits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return idle_waits_;
  }
  // Cumulative submit→start latency across all executed jobs (how long
  // work sat queued before the worker picked it up).
  double handoff_seconds() const {
    std::lock_guard<std::mutex> lock(mu_);
    return handoff_seconds_;
  }
  // Cumulative seconds the worker spent executing jobs (stage occupancy
  // numerator; divide by wall time for utilization).
  double busy_seconds() const {
    std::lock_guard<std::mutex> lock(mu_);
    return busy_seconds_;
  }
  std::uint64_t jobs_run() const {
    std::lock_guard<std::mutex> lock(mu_);
    return jobs_run_;
  }
  // Jobs whose callable threw; the worker survives and keeps draining.
  std::uint64_t jobs_failed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return jobs_failed_;
  }

 private:
  void run() {
    for (;;) {
      std::function<void()> job;
      {
        std::unique_lock<std::mutex> lock(mu_);
        if (jobs_.empty() && !closed_) {
          const double w0 = clock_->now_seconds();
          not_empty_.wait(lock, [this] { return !jobs_.empty() || closed_; });
          idle_seconds_ += clock_->now_seconds() - w0;
          ++idle_waits_;
        }
        if (jobs_.empty()) return;  // closed and drained
        auto [submitted_at, j] = std::move(jobs_.front());
        jobs_.pop_front();
        handoff_seconds_ += clock_->now_seconds() - submitted_at;
        job = std::move(j);
        running_ = true;
        not_full_.notify_one();
      }
      const double t0 = clock_->now_seconds();
      bool failed = false;
      try {
        job();
      } catch (...) {
        // A throwing stage must not take the whole pipeline down; the
        // owner reads jobs_failed() to surface the degradation.
        failed = true;
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        busy_seconds_ += clock_->now_seconds() - t0;
        ++jobs_run_;
        if (failed) ++jobs_failed_;
        running_ = false;
        if (jobs_.empty()) idle_.notify_all();
      }
    }
  }

  const std::size_t max_pending_;
  Clock* clock_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::condition_variable idle_;
  // (submit time, job) so dequeue can account the handoff latency.
  std::deque<std::pair<double, std::function<void()>>> jobs_;
  bool closed_ = false;
  bool running_ = false;
  double stall_seconds_ = 0.0;
  double idle_seconds_ = 0.0;
  double handoff_seconds_ = 0.0;
  double busy_seconds_ = 0.0;
  std::uint64_t stalls_ = 0;
  std::uint64_t idle_waits_ = 0;
  std::uint64_t jobs_run_ = 0;
  std::uint64_t jobs_failed_ = 0;
  std::thread worker_;  // last member: starts after all state exists
};

}  // namespace vapro::util
