#include "src/util/arena.hpp"

#include <algorithm>

#include "src/util/check.hpp"

namespace vapro::util {

namespace {

std::size_t align_up(std::size_t v, std::size_t align) {
  return (v + align - 1) & ~(align - 1);
}

}  // namespace

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  VAPRO_DCHECK(align != 0 && (align & (align - 1)) == 0);
  if (bytes == 0) bytes = 1;
  // Bump the current chunk, then scan the (reset, empty) chunks after it
  // before asking the system for more.
  for (std::size_t i = current_; i < chunks_.size(); ++i) {
    Chunk& c = chunks_[i];
    const std::size_t start = align_up(c.used, align);
    if (start + bytes <= c.size) {
      c.used = start + bytes;
      current_ = i;
      return c.data.get() + start;
    }
  }
  Chunk& c = grow(bytes + align);
  const std::size_t start =
      align_up(reinterpret_cast<std::size_t>(c.data.get()), align) -
      reinterpret_cast<std::size_t>(c.data.get());
  c.used = start + bytes;
  current_ = chunks_.size() - 1;
  return c.data.get() + start;
}

Arena::Chunk& Arena::grow(std::size_t at_least) {
  std::size_t want = min_chunk_bytes_;
  if (!chunks_.empty())
    want = std::min(chunks_.back().size * 2, kMaxChunkBytes);
  want = std::max(want, at_least);
  Chunk c;
  c.data = std::make_unique<std::byte[]>(want);
  c.size = want;
  chunks_.push_back(std::move(c));
  return chunks_.back();
}

void Arena::reset() {
  for (Chunk& c : chunks_) c.used = 0;
  current_ = 0;
}

std::size_t Arena::bytes_used() const {
  std::size_t n = 0;
  for (const Chunk& c : chunks_) n += c.used;
  return n;
}

std::size_t Arena::bytes_reserved() const {
  std::size_t n = 0;
  for (const Chunk& c : chunks_) n += c.size;
  return n;
}

}  // namespace vapro::util
