#include "src/util/check.hpp"

#include <cstdio>
#include <cstdlib>

namespace vapro::util {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& msg) {
  std::fprintf(stderr, "VAPRO_CHECK failed: %s at %s:%d%s%s\n", expr, file,
               line, msg.empty() ? "" : " — ", msg.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace vapro::util
