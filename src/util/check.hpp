// Lightweight runtime checking macros used across the Vapro codebase.
//
// VAPRO_CHECK is always on (also in release builds): the simulator and the
// analysis pipeline are full of invariants whose violation would silently
// corrupt results, so we pay the branch.  VAPRO_DCHECK compiles out in
// release builds and is meant for hot loops.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>

namespace vapro::util {

// Aborts with a formatted message; never returns.
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& msg);

}  // namespace vapro::util

#define VAPRO_CHECK(cond)                                                  \
  do {                                                                     \
    if (!(cond)) [[unlikely]] {                                            \
      ::vapro::util::check_failed(#cond, __FILE__, __LINE__, std::string{}); \
    }                                                                      \
  } while (false)

#define VAPRO_CHECK_MSG(cond, msg)                                         \
  do {                                                                     \
    if (!(cond)) [[unlikely]] {                                            \
      std::ostringstream vapro_check_oss_;                                 \
      vapro_check_oss_ << msg;                                             \
      ::vapro::util::check_failed(#cond, __FILE__, __LINE__,               \
                                  vapro_check_oss_.str());                 \
    }                                                                      \
  } while (false)

#ifdef NDEBUG
#define VAPRO_DCHECK(cond) \
  do {                     \
  } while (false)
#else
#define VAPRO_DCHECK(cond) VAPRO_CHECK(cond)
#endif
