// Small filesystem helpers for the writer paths: every file the tool
// emits (metrics JSON, traces, journals, webhook stubs) should be able to
// land in a directory that does not exist yet instead of failing the run
// at the very end.
#pragma once

#include <string>

namespace vapro::util {

// Creates every missing directory on the parent path of `file_path`.
// Returns false only when a directory genuinely could not be created; a
// path with no parent component succeeds trivially.
bool ensure_parent_dirs(const std::string& file_path);

}  // namespace vapro::util
