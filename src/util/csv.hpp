// Tiny CSV writer used by benches and the visualization layer to dump
// heat maps and per-fragment series for external plotting.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace vapro::util {

class CsvWriter {
 public:
  // Opens `path` for writing; throws via VAPRO_CHECK on failure.
  explicit CsvWriter(const std::string& path);

  // Writes one row; fields are quoted only when they contain a comma/quote.
  void write_row(const std::vector<std::string>& fields);
  void write_row(const std::vector<double>& fields);

  // Flushes and closes; called by the destructor as well.
  void close();

 private:
  std::ofstream out_;
};

// Escapes a single CSV field (RFC 4180 quoting).
std::string csv_escape(const std::string& field);

}  // namespace vapro::util
