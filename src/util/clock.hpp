// Injectable monotonic time.
//
// Window ages, linger deadlines, and stage timings all need a monotonic
// clock, but reading std::chrono::steady_clock directly makes every test
// of that logic sleep-and-hope.  Components instead take a borrowed
// `util::Clock*` (null = the process-wide real clock), and tests install a
// VirtualClock they advance explicitly — time-dependent behavior becomes a
// deterministic function of advance() calls, with no sleeps and no flaky
// tolerance windows.
#pragma once

#include <condition_variable>
#include <mutex>

namespace vapro::util {

class Clock {
 public:
  virtual ~Clock() = default;
  // Monotonic seconds since an arbitrary epoch.
  virtual double now_seconds() const = 0;
  // Blocks (real clock) or advances virtual time (virtual clock).
  virtual void sleep_for(double seconds) = 0;
};

// The process-wide steady_clock-backed instance.  Never null.
Clock* real_clock();

// Test clock: now_seconds() moves only via advance()/sleep_for().  A
// virtual sleeper IS the advancing party — sleep_for(s) bumps time by s
// and returns immediately, so linger/retry loops run at full speed while
// observing exactly the timeline the test scripted.  Thread-safe.
class VirtualClock final : public Clock {
 public:
  explicit VirtualClock(double start_seconds = 0.0) : now_(start_seconds) {}

  double now_seconds() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return now_;
  }
  void sleep_for(double seconds) override { advance(seconds); }

  void advance(double seconds) {
    std::lock_guard<std::mutex> lock(mu_);
    if (seconds > 0.0) now_ += seconds;
  }
  void set(double seconds) {
    std::lock_guard<std::mutex> lock(mu_);
    if (seconds > now_) now_ = seconds;  // monotonic: never step backwards
  }

 private:
  mutable std::mutex mu_;
  double now_;
};

// Deterministic self-advancing clock: every now_seconds() read moves time
// forward by a fixed tick.  Where VirtualClock models "time moves only when
// the test says so", TickClock models "every timestamp read costs the same"
// — which makes single-threaded benchmarks that lap a clock around each
// stage produce byte-identical timing output on every run
// (bench/latency_profile uses this for BENCH_latency.json).  Thread-safe,
// but only single-threaded use is deterministic.
class TickClock final : public Clock {
 public:
  explicit TickClock(double tick_seconds = 1e-3, double start_seconds = 0.0)
      : tick_(tick_seconds), now_(start_seconds) {}

  double now_seconds() const override {
    std::lock_guard<std::mutex> lock(mu_);
    now_ += tick_;
    return now_;
  }
  // Sleeps advance virtual time like VirtualClock (no real blocking).
  void sleep_for(double seconds) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (seconds > 0.0) now_ += seconds;
  }

 private:
  double tick_;
  mutable std::mutex mu_;
  mutable double now_;
};

}  // namespace vapro::util
