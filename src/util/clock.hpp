// Injectable monotonic time.
//
// Window ages, linger deadlines, and stage timings all need a monotonic
// clock, but reading std::chrono::steady_clock directly makes every test
// of that logic sleep-and-hope.  Components instead take a borrowed
// `util::Clock*` (null = the process-wide real clock), and tests install a
// VirtualClock they advance explicitly — time-dependent behavior becomes a
// deterministic function of advance() calls, with no sleeps and no flaky
// tolerance windows.
#pragma once

#include <condition_variable>
#include <mutex>

namespace vapro::util {

class Clock {
 public:
  virtual ~Clock() = default;
  // Monotonic seconds since an arbitrary epoch.
  virtual double now_seconds() const = 0;
  // Blocks (real clock) or advances virtual time (virtual clock).
  virtual void sleep_for(double seconds) = 0;
};

// The process-wide steady_clock-backed instance.  Never null.
Clock* real_clock();

// Test clock: now_seconds() moves only via advance()/sleep_for().  A
// virtual sleeper IS the advancing party — sleep_for(s) bumps time by s
// and returns immediately, so linger/retry loops run at full speed while
// observing exactly the timeline the test scripted.  Thread-safe.
class VirtualClock final : public Clock {
 public:
  explicit VirtualClock(double start_seconds = 0.0) : now_(start_seconds) {}

  double now_seconds() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return now_;
  }
  void sleep_for(double seconds) override { advance(seconds); }

  void advance(double seconds) {
    std::lock_guard<std::mutex> lock(mu_);
    if (seconds > 0.0) now_ += seconds;
  }
  void set(double seconds) {
    std::lock_guard<std::mutex> lock(mu_);
    if (seconds > now_) now_ = seconds;  // monotonic: never step backwards
  }

 private:
  mutable std::mutex mu_;
  double now_;
};

}  // namespace vapro::util
