// Chunked bump allocator for per-window data.
//
// The analysis pipeline allocates a window's worth of fragment columns,
// clusters them, publishes, and throws the whole window away — a lifetime
// pattern that malloc/free per container serves poorly.  An Arena hands
// out pointers by bumping a cursor through geometrically-growing chunks;
// reset() rewinds every cursor WITHOUT returning memory to the system, so
// the steady state of "fill a window, analyze, clear, repeat" touches the
// allocator once during warm-up and never again.
//
// Only trivially-destructible payloads belong here (the arena never runs
// destructors); FragmentColumns (src/core/columns.hpp) stores exactly
// such columns.  Moving an Arena moves chunk ownership — a pointer swap —
// which is what makes batch hand-off between pipeline stages copy-free.
//
// Not thread-safe: one arena belongs to one window's producer at a time,
// matching the pipeline's hand-off discipline (a batch is owned by exactly
// one stage).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

namespace vapro::util {

class Arena {
 public:
  // Chunks start at `min_chunk_bytes` and double up to `max_chunk_bytes`
  // as demand grows; a single oversized request gets its own exact-fit
  // chunk.
  explicit Arena(std::size_t min_chunk_bytes = 64 * 1024)
      : min_chunk_bytes_(min_chunk_bytes ? min_chunk_bytes : 1) {}

  Arena(Arena&&) noexcept = default;
  Arena& operator=(Arena&&) noexcept = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Returns `bytes` of storage aligned to `align` (a power of two).
  // Never returns nullptr; zero-byte requests get a unique valid pointer
  // into the current chunk.
  void* allocate(std::size_t bytes, std::size_t align);

  template <typename T>
  T* allocate_array(std::size_t n) {
    return static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
  }

  // Rewinds every chunk cursor; all previously returned pointers become
  // dead, all chunk memory stays reserved for reuse.
  void reset();

  // Bytes handed out since the last reset (including alignment padding).
  std::size_t bytes_used() const;
  // Bytes held from the system across resets.
  std::size_t bytes_reserved() const;
  std::size_t chunk_count() const { return chunks_.size(); }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  static constexpr std::size_t kMaxChunkBytes = 8u << 20;

  Chunk& grow(std::size_t at_least);

  std::vector<Chunk> chunks_;
  std::size_t current_ = 0;  // index of the chunk being bumped
  std::size_t min_chunk_bytes_;
};

}  // namespace vapro::util
