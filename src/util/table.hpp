// Aligned plain-text table printer.  Every bench binary reproduces a paper
// table/figure by printing rows through this helper so output stays uniform.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace vapro::util {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  // Convenience: formats doubles with the given precision.
  void add_row_numeric(const std::string& label,
                       const std::vector<double>& values, int precision = 2);

  // Renders with column alignment and a header rule.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with fixed precision (helper for bench output).
std::string fmt(double v, int precision = 2);

}  // namespace vapro::util
