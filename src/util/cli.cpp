#include "src/util/cli.hpp"

#include <cstdlib>

namespace vapro::util {

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positionals_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_.emplace(arg.substr(0, eq), arg.substr(eq + 1));
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_.emplace(arg, argv[++i]);
    } else {
      values_.emplace(arg, "true");  // boolean switch
    }
  }
}

bool CliArgs::has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string CliArgs::get(const std::string& key,
                         const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

double CliArgs::get_double(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

int CliArgs::get_int(const std::string& key, int fallback) const {
  auto it = values_.find(key);
  return it == values_.end()
             ? fallback
             : static_cast<int>(std::strtol(it->second.c_str(), nullptr, 10));
}

bool CliArgs::get_bool(const std::string& key, bool fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::string> CliArgs::get_all(const std::string& key) const {
  std::vector<std::string> out;
  auto [lo, hi] = values_.equal_range(key);
  for (auto it = lo; it != hi; ++it) out.push_back(it->second);
  return out;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

}  // namespace vapro::util
