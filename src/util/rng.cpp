#include "src/util/rng.hpp"

#include <cmath>
#include <numbers>

#include "src/util/check.hpp"

namespace vapro::util {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits → uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  VAPRO_DCHECK(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_u64(std::uint64_t n) {
  VAPRO_CHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  std::uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return x % n;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 in (0,1] so log() is finite.
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::exponential(double rate) {
  VAPRO_CHECK(rate > 0);
  return -std::log(1.0 - uniform()) / rate;
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::uint64_t Rng::poisson(double mean) {
  VAPRO_CHECK(mean >= 0);
  if (mean == 0) return 0;
  if (mean < 30) {
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation for large means.
  double x = normal(mean, std::sqrt(mean));
  return x <= 0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
}

Rng Rng::fork(std::uint64_t tag) const {
  SplitMix64 sm(seed_ ^ (0x9e3779b97f4a7c15ULL + tag * 0xd1342543de82ef95ULL));
  return Rng(sm.next());
}

}  // namespace vapro::util
