// CRC-32/IEEE (polynomial 0xEDB88320, the zlib/Ethernet checksum).
//
// One implementation shared by every length-prefixed framing in the tree:
// the net wire protocol (src/net/wire.hpp) and the binary journal
// segments (src/obs/journal_segment.hpp) both frame records as
// {length, crc, payload} and must agree on the checksum — keeping the
// table here means they cannot drift.  Known-answer: crc32("123456789")
// == 0xCBF43926.
#pragma once

#include <cstddef>
#include <cstdint>

namespace vapro::util {

std::uint32_t crc32(const void* data, std::size_t len);

}  // namespace vapro::util
