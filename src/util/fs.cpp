#include "src/util/fs.hpp"

#include <filesystem>
#include <system_error>

namespace vapro::util {

bool ensure_parent_dirs(const std::string& file_path) {
  const std::filesystem::path parent =
      std::filesystem::path(file_path).parent_path();
  if (parent.empty()) return true;
  std::error_code ec;
  std::filesystem::create_directories(parent, ec);
  // create_directories reports success (no error) when the path already
  // exists; any other error means the parent cannot be materialized.
  return !ec || std::filesystem::is_directory(parent);
}

}  // namespace vapro::util
