#include "src/util/log.hpp"

#include <chrono>
#include <cstdio>
#include <mutex>

namespace vapro::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_mutex;

std::chrono::steady_clock::time_point log_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

double log_uptime_seconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       log_epoch())
      .count();
}

void log_line(LogLevel level, const std::string& tag, const std::string& msg) {
  const double t = log_uptime_seconds();
  std::lock_guard<std::mutex> lock(g_mutex);
  if (tag.empty()) {
    std::fprintf(stderr, "[vapro +%.3fs %s] %s\n", t, level_name(level),
                 msg.c_str());
  } else {
    std::fprintf(stderr, "[vapro +%.3fs %s %s] %s\n", t, level_name(level),
                 tag.c_str(), msg.c_str());
  }
}

}  // namespace vapro::util
