#include "src/util/log.hpp"

#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>

namespace vapro::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_mutex;

std::chrono::steady_clock::time_point log_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

double log_uptime_seconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       log_epoch())
      .count();
}

namespace detail {

std::atomic<std::uint64_t>* rate_counter(const char* file, int line,
                                         const std::string& tag) {
  // Keyed by (file pointer is not stable across TUs with identical string
  // literals merged or not — use the text), line, and component tag.  The
  // registry is tiny (one entry per rate-limited site × component), so a
  // mutex-guarded map lookup per hit is cheap next to the log line it
  // guards.
  using Key = std::tuple<std::string, int, std::string>;
  static std::mutex mu;
  static std::map<Key, std::unique_ptr<std::atomic<std::uint64_t>>>* registry =
      new std::map<Key, std::unique_ptr<std::atomic<std::uint64_t>>>();
  std::lock_guard<std::mutex> lock(mu);
  auto& slot = (*registry)[Key{file, line, tag}];
  if (!slot) slot = std::make_unique<std::atomic<std::uint64_t>>(0);
  return slot.get();
}

}  // namespace detail

void log_line(LogLevel level, const std::string& tag, const std::string& msg) {
  const double t = log_uptime_seconds();
  std::lock_guard<std::mutex> lock(g_mutex);
  if (tag.empty()) {
    std::fprintf(stderr, "[vapro +%.3fs %s] %s\n", t, level_name(level),
                 msg.c_str());
  } else {
    std::fprintf(stderr, "[vapro +%.3fs %s %s] %s\n", t, level_name(level),
                 tag.c_str(), msg.c_str());
  }
}

}  // namespace vapro::util
