// Deterministic pseudo-random number generation.
//
// Everything in the simulator must be reproducible from a single seed, so we
// use our own small generators instead of std::mt19937 (whose distributions
// are not portable across standard-library implementations).
#pragma once

#include <cstdint>
#include <vector>

namespace vapro::util {

// SplitMix64: used to expand a user seed into stream seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256** — fast, high-quality, tiny state.  One instance per simulated
// entity (rank, noise injector, ...) keeps streams independent.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL);

  std::uint64_t next_u64();

  // Uniform in [0, 1).
  double uniform();
  // Uniform in [lo, hi).
  double uniform(double lo, double hi);
  // Uniform integer in [0, n).
  std::uint64_t uniform_u64(std::uint64_t n);
  // Standard normal via Box–Muller (cached second value).
  double normal();
  double normal(double mean, double stddev);
  // Exponential with given rate (events per unit).
  double exponential(double rate);
  // Bernoulli trial.
  bool bernoulli(double p);
  // Poisson-distributed count (Knuth for small means, normal approx for big).
  std::uint64_t poisson(double mean);

  // Derive an independent child stream; deterministic in (this seed, tag).
  Rng fork(std::uint64_t tag) const;

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
  std::uint64_t seed_;
};

// Fisher–Yates shuffle with our Rng, for deterministic permutations.
template <typename T>
void shuffle(std::vector<T>& v, Rng& rng) {
  for (std::size_t i = v.size(); i > 1; --i) {
    std::size_t j = static_cast<std::size_t>(rng.uniform_u64(i));
    std::swap(v[i - 1], v[j]);
  }
}

}  // namespace vapro::util
