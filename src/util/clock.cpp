#include "src/util/clock.hpp"

#include <chrono>
#include <thread>

namespace vapro::util {

namespace {

class SteadyClock final : public Clock {
 public:
  SteadyClock() : epoch_(std::chrono::steady_clock::now()) {}

  double now_seconds() const override {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch_)
        .count();
  }
  void sleep_for(double seconds) override {
    if (seconds > 0.0)
      std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  }

 private:
  const std::chrono::steady_clock::time_point epoch_;
};

}  // namespace

Clock* real_clock() {
  static SteadyClock clock;
  return &clock;
}

}  // namespace vapro::util
