// Minimal leveled logger.  Thread-safe; level settable at runtime so tests
// and benches can silence the library.
//
// Each line is prefixed with a monotonic timestamp (seconds since process
// start) and an optional component tag:
//
//   [vapro +12.345s WARN session] proxy metrics + stage counters ...
//
// VAPRO_LOG_*_EVERY_N(n) rate-limits a call site to every n-th hit (the
// first hit always logs) — for warnings that would otherwise fire once per
// analysis window.
#pragma once

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>

namespace vapro::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Global minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

// Monotonic seconds since the process first touched the logger.
double log_uptime_seconds();

// Emits one line to stderr with timestamp/level/tag prefix; serialized by a
// mutex.  Empty tag omits the tag field.
void log_line(LogLevel level, const std::string& tag, const std::string& msg);
inline void log_line(LogLevel level, const std::string& msg) {
  log_line(level, std::string(), msg);
}

namespace detail {
class LogMessage {
 public:
  explicit LogMessage(LogLevel level, std::string tag = {})
      : level_(level), tag_(std::move(tag)) {}
  ~LogMessage() { log_line(level_, tag_, oss_.str()); }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    oss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string tag_;
  std::ostringstream oss_;
};
}  // namespace detail

}  // namespace vapro::util

#define VAPRO_LOG(level)                                        \
  if (static_cast<int>(level) < static_cast<int>(::vapro::util::log_level())) \
    ;                                                           \
  else                                                          \
    ::vapro::util::detail::LogMessage(level)

// Same, with a component tag in the line prefix.
#define VAPRO_LOG_TAG(level, tag)                               \
  if (static_cast<int>(level) < static_cast<int>(::vapro::util::log_level())) \
    ;                                                           \
  else                                                          \
    ::vapro::util::detail::LogMessage(level, tag)

// Rate-limited: this call site logs on its 1st, (n+1)th, (2n+1)th ... hit.
// The counter lives in a per-expansion lambda so every call site gets its
// own; counting is relaxed-atomic, so concurrent hits never block.
#define VAPRO_LOG_EVERY_N(level, n)                                           \
  if (static_cast<int>(level) < static_cast<int>(::vapro::util::log_level()) || \
      !([] {                                                                  \
        static std::atomic<std::uint64_t> vapro_log_count{0};                 \
        return vapro_log_count.fetch_add(1, std::memory_order_relaxed) %      \
                   static_cast<std::uint64_t>(n) ==                           \
               0;                                                             \
      }()))                                                                   \
    ;                                                                         \
  else                                                                        \
    ::vapro::util::detail::LogMessage(level)

#define VAPRO_LOG_DEBUG VAPRO_LOG(::vapro::util::LogLevel::kDebug)
#define VAPRO_LOG_INFO VAPRO_LOG(::vapro::util::LogLevel::kInfo)
#define VAPRO_LOG_WARN VAPRO_LOG(::vapro::util::LogLevel::kWarn)
#define VAPRO_LOG_ERROR VAPRO_LOG(::vapro::util::LogLevel::kError)

#define VAPRO_LOG_WARN_EVERY_N(n) \
  VAPRO_LOG_EVERY_N(::vapro::util::LogLevel::kWarn, n)
#define VAPRO_LOG_INFO_EVERY_N(n) \
  VAPRO_LOG_EVERY_N(::vapro::util::LogLevel::kInfo, n)
