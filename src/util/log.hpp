// Minimal leveled logger.  Thread-safe; level settable at runtime so tests
// and benches can silence the library.
#pragma once

#include <sstream>
#include <string>

namespace vapro::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Global minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

// Emits one line to stderr with a level prefix; serialized by a mutex.
void log_line(LogLevel level, const std::string& msg);

namespace detail {
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { log_line(level_, oss_.str()); }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    oss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream oss_;
};
}  // namespace detail

}  // namespace vapro::util

#define VAPRO_LOG(level)                                        \
  if (static_cast<int>(level) < static_cast<int>(::vapro::util::log_level())) \
    ;                                                           \
  else                                                          \
    ::vapro::util::detail::LogMessage(level)

#define VAPRO_LOG_DEBUG VAPRO_LOG(::vapro::util::LogLevel::kDebug)
#define VAPRO_LOG_INFO VAPRO_LOG(::vapro::util::LogLevel::kInfo)
#define VAPRO_LOG_WARN VAPRO_LOG(::vapro::util::LogLevel::kWarn)
#define VAPRO_LOG_ERROR VAPRO_LOG(::vapro::util::LogLevel::kError)
