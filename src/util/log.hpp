// Minimal leveled logger.  Thread-safe; level settable at runtime so tests
// and benches can silence the library.
//
// Each line is prefixed with a monotonic timestamp (seconds since process
// start) and an optional component tag:
//
//   [vapro +12.345s WARN session] proxy metrics + stage counters ...
//
// VAPRO_LOG_*_EVERY_N(n) rate-limits a call site to every n-th hit (the
// first hit always logs) — for warnings that would otherwise fire once per
// analysis window.  Rate-limit counters are keyed by (component tag, call
// site): a shared helper reached with different component tags keeps one
// counter per component, so one chatty component cannot silence another's
// first warning.
#pragma once

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>

namespace vapro::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Global minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

// Monotonic seconds since the process first touched the logger.
double log_uptime_seconds();

// Emits one line to stderr with timestamp/level/tag prefix; serialized by a
// mutex.  Empty tag omits the tag field.
void log_line(LogLevel level, const std::string& tag, const std::string& msg);
inline void log_line(LogLevel level, const std::string& msg) {
  log_line(level, std::string(), msg);
}

namespace detail {
// Rate-limit counter for one (component tag, file, line) triple.  Counters
// live in a process-wide registry so the same call site reached with
// different runtime tags counts each component independently; the pointer
// is stable, and the increment itself is relaxed-atomic.
std::atomic<std::uint64_t>* rate_counter(const char* file, int line,
                                         const std::string& tag);
// True on the 1st, (n+1)th, (2n+1)th ... hit of this (tag, site).
inline bool rate_limited_hit(const char* file, int line,
                             const std::string& tag, std::uint64_t n) {
  return rate_counter(file, line, tag)
                 ->fetch_add(1, std::memory_order_relaxed) %
             (n == 0 ? 1 : n) ==
         0;
}

class LogMessage {
 public:
  explicit LogMessage(LogLevel level, std::string tag = {})
      : level_(level), tag_(std::move(tag)) {}
  ~LogMessage() { log_line(level_, tag_, oss_.str()); }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    oss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string tag_;
  std::ostringstream oss_;
};
}  // namespace detail

}  // namespace vapro::util

#define VAPRO_LOG(level)                                        \
  if (static_cast<int>(level) < static_cast<int>(::vapro::util::log_level())) \
    ;                                                           \
  else                                                          \
    ::vapro::util::detail::LogMessage(level)

// Same, with a component tag in the line prefix.
#define VAPRO_LOG_TAG(level, tag)                               \
  if (static_cast<int>(level) < static_cast<int>(::vapro::util::log_level())) \
    ;                                                           \
  else                                                          \
    ::vapro::util::detail::LogMessage(level, tag)

// Rate-limited with a component tag: this (tag, call site) pair logs on
// its 1st, (n+1)th, (2n+1)th ... hit.  `tag` may be a runtime value — each
// distinct tag reaching the same site gets its own counter.
#define VAPRO_LOG_TAG_EVERY_N(level, tag, n)                                  \
  if (static_cast<int>(level) < static_cast<int>(::vapro::util::log_level()) || \
      !::vapro::util::detail::rate_limited_hit(                               \
          __FILE__, __LINE__, (tag), static_cast<std::uint64_t>(n)))          \
    ;                                                                         \
  else                                                                        \
    ::vapro::util::detail::LogMessage(level, (tag))

// Untagged form (one counter per site, empty tag in the prefix).
#define VAPRO_LOG_EVERY_N(level, n) \
  VAPRO_LOG_TAG_EVERY_N(level, ::std::string(), n)

#define VAPRO_LOG_DEBUG VAPRO_LOG(::vapro::util::LogLevel::kDebug)
#define VAPRO_LOG_INFO VAPRO_LOG(::vapro::util::LogLevel::kInfo)
#define VAPRO_LOG_WARN VAPRO_LOG(::vapro::util::LogLevel::kWarn)
#define VAPRO_LOG_ERROR VAPRO_LOG(::vapro::util::LogLevel::kError)

#define VAPRO_LOG_WARN_EVERY_N(n) \
  VAPRO_LOG_EVERY_N(::vapro::util::LogLevel::kWarn, n)
#define VAPRO_LOG_INFO_EVERY_N(n) \
  VAPRO_LOG_EVERY_N(::vapro::util::LogLevel::kInfo, n)
