#include "src/util/socket.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <mutex>

namespace vapro::util {

void ignore_sigpipe() {
  static std::once_flag once;
  std::call_once(once, [] { std::signal(SIGPIPE, SIG_IGN); });
}

bool send_all(int fd, const void* data, std::size_t len) {
  const char* p = static_cast<const char*>(data);
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, p + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool recv_all(int fd, void* data, std::size_t len) {
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd, p + got, len - got, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    got += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace vapro::util
