#include "src/sim/runtime.hpp"

#include <algorithm>

#include "src/util/check.hpp"
#include "src/util/log.hpp"

namespace vapro::sim {

namespace {
// FNV-style combine for ground-truth workload class accumulation.
std::int64_t combine_truth(std::int64_t acc, std::int64_t cls) {
  if (acc == -1) return cls;
  std::uint64_t h = static_cast<std::uint64_t>(acc);
  h ^= static_cast<std::uint64_t>(cls) + 0x9e3779b97f4a7c15ULL + (h << 6) +
       (h >> 2);
  // Keep it non-negative and distinguishable from "unlabelled".
  return static_cast<std::int64_t>(h & 0x7fffffffffffffffULL);
}
}  // namespace

// ---------------------------------------------------------------------------
// RankContext
// ---------------------------------------------------------------------------

RankContext::RankContext(Simulator* sim, int rank, pmu::MachineParams machine,
                         std::uint64_t seed)
    : sim_(sim),
      rank_(rank),
      core_model_(machine, seed ^ 0xc0dec0dec0dec0deULL),
      rng_(seed) {}

int RankContext::size() const { return sim_->config_.ranks; }
int RankContext::node() const { return sim_->topo_.node_of(rank_); }
int RankContext::core() const { return sim_->topo_.core_of(rank_); }
double RankContext::now() const { return sim_->engine_.now(); }

void RankContext::note_truth_class(std::int64_t cls) {
  truth_accum_ = combine_truth(truth_accum_, cls);
}

detail::CallAwaiter RankContext::make_call(OpKind kind, CallSiteId site) {
  detail::CallAwaiter a;
  a.ctx = this;
  a.info.rank = rank_;
  a.info.site = site;
  a.info.kind = kind;
  a.info.path = region_stack_;
  a.info.truth_class_since_last = truth_accum_;
  a.info.statically_fixed_since_last = saw_compute_ && static_accum_;
  return a;
}

detail::ComputeAwaiter RankContext::compute(const pmu::ComputeWorkload& w) {
  return detail::ComputeAwaiter{this, w};
}

detail::CallAwaiter RankContext::send(int dst, double bytes, CallSiteId site,
                                      int tag) {
  auto a = make_call(OpKind::kSend, site);
  a.peer = dst;
  a.bytes = bytes;
  a.tag = tag;
  a.info.args = CommArgs{bytes, dst, -1, tag};
  return a;
}

detail::CallAwaiter RankContext::recv(int src, CallSiteId site, int tag) {
  auto a = make_call(OpKind::kRecv, site);
  a.peer = src;
  a.tag = tag;
  a.info.args = CommArgs{0.0, src, -1, tag};
  return a;
}

detail::RequestOpAwaiter RankContext::isend(int dst, double bytes,
                                            CallSiteId site, int tag) {
  detail::RequestOpAwaiter a;
  static_cast<detail::CallAwaiter&>(a) = make_call(OpKind::kIsend, site);
  a.peer = dst;
  a.bytes = bytes;
  a.tag = tag;
  a.info.args = CommArgs{bytes, dst, -1, tag};
  return a;
}

detail::RequestOpAwaiter RankContext::irecv(int src, CallSiteId site, int tag) {
  detail::RequestOpAwaiter a;
  static_cast<detail::CallAwaiter&>(a) = make_call(OpKind::kIrecv, site);
  a.peer = src;
  a.tag = tag;
  a.info.args = CommArgs{0.0, src, -1, tag};
  return a;
}

detail::CallAwaiter RankContext::wait(Request r, CallSiteId site) {
  auto a = make_call(OpKind::kWait, site);
  a.request = std::move(r);
  return a;
}

detail::CallAwaiter RankContext::wait_all(std::vector<Request> rs,
                                          CallSiteId site) {
  auto a = make_call(OpKind::kWaitall, site);
  a.requests = std::move(rs);
  return a;
}

detail::CallAwaiter RankContext::allreduce(double bytes, CallSiteId site) {
  auto a = make_call(OpKind::kAllreduce, site);
  a.bytes = bytes;
  a.info.args = CommArgs{bytes, -1, -1, 0};
  return a;
}

detail::CallAwaiter RankContext::bcast(double bytes, int root,
                                       CallSiteId site) {
  auto a = make_call(OpKind::kBcast, site);
  a.bytes = bytes;
  a.peer = root;
  a.info.args = CommArgs{bytes, root, -1, 0};
  return a;
}

detail::CallAwaiter RankContext::barrier(CallSiteId site) {
  return make_call(OpKind::kBarrier, site);
}

detail::CallAwaiter RankContext::file_read(int fd, double bytes,
                                           CallSiteId site) {
  auto a = make_call(OpKind::kFileRead, site);
  a.bytes = bytes;
  a.fd = fd;
  a.info.args = CommArgs{bytes, -1, fd, 0};
  return a;
}

detail::CallAwaiter RankContext::file_write(int fd, double bytes,
                                            CallSiteId site) {
  auto a = make_call(OpKind::kFileWrite, site);
  a.bytes = bytes;
  a.fd = fd;
  a.info.args = CommArgs{bytes, -1, fd, 0};
  return a;
}

detail::CallAwaiter RankContext::probe(CallSiteId site) {
  return make_call(OpKind::kProbe, site);
}

RankContext::Region::Region(RankContext& ctx, std::uint32_t id) : ctx_(ctx) {
  ctx_.region_stack_.push_back(id);
}

RankContext::Region::~Region() { ctx_.region_stack_.pop_back(); }

// ---------------------------------------------------------------------------
// Awaiters
// ---------------------------------------------------------------------------

namespace detail {

void ComputeAwaiter::await_suspend(std::coroutine_handle<> h) {
  Simulator* sim = ctx->sim_;
  pmu::EnvQuery where{ctx->node(), ctx->core(), sim->now()};
  pmu::ComputeOutcome out =
      ctx->core_model_.execute(workload, where, sim->noise_);
  ctx->counters_ += out.delta;
  if (workload.truth_class >= 0) ctx->note_truth_class(workload.truth_class);
  ctx->saw_compute_ = true;
  if (!workload.statically_fixed) ctx->static_accum_ = false;
  sim->resume_at(ctx->rank_, h, sim->now() + out.wall_seconds());
}

void CallAwaiter::await_suspend(std::coroutine_handle<> h) {
  Simulator* sim = ctx->sim_;
  sim->begin_call(*ctx, info);
  switch (info.kind) {
    case OpKind::kSend:
      sim->op_send(*this, h, /*blocking=*/true);
      break;
    case OpKind::kIsend:
      sim->op_send(*this, h, /*blocking=*/false);
      break;
    case OpKind::kRecv:
      sim->op_recv(*this, h, /*blocking=*/true);
      break;
    case OpKind::kIrecv:
      sim->op_recv(*this, h, /*blocking=*/false);
      break;
    case OpKind::kWait:
      sim->op_wait(*this, h);
      break;
    case OpKind::kWaitall:
      sim->op_waitall(*this, h);
      break;
    case OpKind::kAllreduce:
    case OpKind::kBcast:
    case OpKind::kBarrier:
      sim->op_collective(*this, h);
      break;
    case OpKind::kFileRead:
    case OpKind::kFileWrite:
      sim->op_io(*this, h);
      break;
    case OpKind::kProbe:
      sim->op_probe(*this, h);
      break;
  }
}

void CallAwaiter::await_resume() {
  // Receive-like ops learn the message size only at completion.
  if ((info.kind == OpKind::kRecv || info.kind == OpKind::kWait) && request &&
      request->resolved) {
    info.args.bytes = std::max(info.args.bytes, request->bytes);
    if (ctx->sim_->config_.enhanced_comm_profiling &&
        request->transfer_seconds >= 0.0) {
      info.args.transfer_seconds = request->transfer_seconds;
    }
  }
  ctx->sim_->end_call(*ctx, info);
}

Request RequestOpAwaiter::await_resume() {
  CallAwaiter::await_resume();
  return out_request;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Simulator
// ---------------------------------------------------------------------------

Simulator::Simulator(SimConfig config)
    : config_(config),
      topo_{config.ranks, config.cores_per_node},
      network_(config.network, topo_),
      fs_(config.fs, config.seed ^ 0xf5f5f5f5f5f5f5f5ULL),
      noise_(config.noises) {
  VAPRO_CHECK(config_.ranks > 0);
}

Simulator::~Simulator() = default;

void Simulator::set_interceptor(Interceptor* interceptor) {
  interceptor_ = interceptor;
}

std::uint64_t Simulator::add_periodic(double period,
                                      std::function<void(double)> fn) {
  VAPRO_CHECK(period > 0.0);
  const std::uint64_t id = next_periodic_id_++;
  periodics_.push_back(Periodic{id, period, std::move(fn)});
  return id;
}

void Simulator::remove_periodic(std::uint64_t id) {
  for (auto it = periodics_.begin(); it != periodics_.end(); ++it) {
    if (it->id == id) {
      periodics_.erase(it);
      return;
    }
  }
}

double Simulator::intercept_overhead(const RankContext& ctx) const {
  if (interceptor_ == nullptr) return 0.0;
  double cost = config_.intercept_cost.base_seconds;
  if (interceptor_->wants_call_path()) {
    cost += config_.intercept_cost.per_frame_seconds *
            static_cast<double>(ctx.region_stack_.size() + 1);
  }
  return cost;
}

void Simulator::begin_call(const RankContext& ctx, const InvocationInfo& info) {
  if (interceptor_)
    interceptor_->on_call_begin(info, engine_.now(), ctx.counters_);
}

void Simulator::end_call(const RankContext& ctx, const InvocationInfo& info) {
  if (interceptor_)
    interceptor_->on_call_end(info, engine_.now(), ctx.counters_);
  // The computation-since-last-call accumulators restart after every
  // external invocation, whether or not a tool is attached.
  RankContext& mutable_ctx = const_cast<RankContext&>(ctx);
  mutable_ctx.truth_accum_ = -1;
  mutable_ctx.static_accum_ = true;
  mutable_ctx.saw_compute_ = false;
}

void Simulator::resume_at(int rank, std::coroutine_handle<> h, double t) {
  const std::uint64_t run_id = run_counter_;
  engine_.schedule_at(t, [this, rank, h, run_id] {
    if (run_id != run_counter_) return;  // stale event from a reset run
    h.resume();
    if (tasks_[static_cast<std::size_t>(rank)].done() &&
        finish_times_[static_cast<std::size_t>(rank)] < 0.0) {
      finish_times_[static_cast<std::size_t>(rank)] = engine_.now();
      --unfinished_;
      tasks_[static_cast<std::size_t>(rank)].rethrow_if_failed();
      if (interceptor_) interceptor_->on_program_end(rank, engine_.now());
    }
  });
}

void Simulator::op_send(detail::CallAwaiter& a, std::coroutine_handle<> h,
                        bool blocking) {
  RankContext& ctx = *a.ctx;
  const double now = engine_.now();
  const double congestion = noise_.network_factor(now);
  const double arrival =
      now + network_.p2p_time(a.bytes, ctx.rank_, a.peer, congestion);
  deliver(a.peer, ctx.rank_, a.tag, arrival, a.bytes, now);

  const double inject = network_.inject_time(a.bytes, congestion);
  if (!blocking) {
    a.out_request = std::make_shared<RequestState>();
    a.out_request->post_time = now;
    a.out_request->bytes = a.bytes;
    // Eager protocol: the send buffer is reusable once injected.
    resolve_request(a.out_request, now + inject, a.bytes);
    // Isend itself returns after half the injection (overlap with the NIC).
    resume_at(ctx.rank_, h, now + inject * 0.5 + intercept_overhead(ctx));
  } else {
    resume_at(ctx.rank_, h, now + inject + intercept_overhead(ctx));
  }
}

void Simulator::op_recv(detail::CallAwaiter& a, std::coroutine_handle<> h,
                        bool blocking) {
  RankContext& ctx = *a.ctx;
  const double now = engine_.now();
  const double overhead = intercept_overhead(ctx);

  Request req = std::make_shared<RequestState>();
  req->post_time = now;

  Mailbox& box = mailboxes_[static_cast<std::size_t>(ctx.rank_)];
  const std::uint64_t key = msg_key(a.peer, a.tag);
  auto it = box.inflight.find(key);
  if (it != box.inflight.end() && !it->second.empty()) {
    Mailbox::Msg msg = it->second.front();
    it->second.pop_front();
    const double copy = network_.receive_copy_time(
        msg.bytes, noise_.network_factor(std::max(now, msg.arrival)));
    resolve_request(req, std::max(now, msg.arrival) + copy, msg.bytes,
                    msg.arrival - msg.send_time + copy);
  } else {
    box.pending_recvs[key].push_back(req);
  }

  if (!blocking) {
    a.out_request = req;
    resume_at(ctx.rank_, h, now + overhead);
    return;
  }

  a.request = req;
  if (req->resolved) {
    resume_at(ctx.rank_, h, std::max(now, req->complete_time) + overhead);
  } else {
    park(ctx);
    int rank = ctx.rank_;
    req->on_resolve = [this, rank, h, req, overhead] {
      resume_at(rank, h, std::max(engine_.now(), req->complete_time) + overhead);
    };
  }
}

void Simulator::op_wait(detail::CallAwaiter& a, std::coroutine_handle<> h) {
  RankContext& ctx = *a.ctx;
  const double now = engine_.now();
  const double overhead = intercept_overhead(ctx);
  Request req = a.request;
  VAPRO_CHECK_MSG(req != nullptr, "wait on a null request");
  if (req->resolved) {
    resume_at(ctx.rank_, h, std::max(now, req->complete_time) + overhead);
  } else {
    park(ctx);
    int rank = ctx.rank_;
    req->on_resolve = [this, rank, h, req, overhead] {
      resume_at(rank, h, std::max(engine_.now(), req->complete_time) + overhead);
    };
  }
}

void Simulator::op_waitall(detail::CallAwaiter& a, std::coroutine_handle<> h) {
  RankContext& ctx = *a.ctx;
  const double now = engine_.now();
  const double overhead = intercept_overhead(ctx);
  const int rank = ctx.rank_;

  auto latest = std::make_shared<double>(now);
  auto remaining = std::make_shared<int>(0);
  for (const Request& r : a.requests) {
    VAPRO_CHECK_MSG(r != nullptr, "wait_all on a null request");
    if (r->resolved) {
      *latest = std::max(*latest, r->complete_time);
    } else {
      ++*remaining;
    }
  }
  if (*remaining == 0) {
    resume_at(rank, h, std::max(now, *latest) + overhead);
    return;
  }
  park(ctx);
  for (const Request& r : a.requests) {
    if (r->resolved) continue;
    r->on_resolve = [this, rank, h, r, latest, remaining, overhead] {
      *latest = std::max(*latest, r->complete_time);
      if (--*remaining == 0) {
        resume_at(rank, h, std::max(engine_.now(), *latest) + overhead);
      }
    };
  }
}

void Simulator::op_collective(detail::CallAwaiter& a,
                              std::coroutine_handle<> h) {
  RankContext& ctx = *a.ctx;
  const double now = engine_.now();
  const double overhead = intercept_overhead(ctx);
  const int rank = ctx.rank_;
  const int p = config_.ranks;

  const std::uint64_t seq = next_collective_[static_cast<std::size_t>(rank)]++;
  CollState& st = collectives_[seq];
  if (st.arrived == 0) {
    st.kind = a.info.kind;
    st.bytes = a.bytes;
  } else {
    VAPRO_CHECK_MSG(st.kind == a.info.kind,
                    "collective mismatch at sequence " << seq << ": rank "
                        << rank << " issued " << op_kind_name(a.info.kind)
                        << " but others issued " << op_kind_name(st.kind));
  }
  ++st.arrived;
  st.max_time = std::max(st.max_time, now);
  st.releases.push_back([this, rank, h, overhead](double done) {
    resume_at(rank, h, done + overhead);
  });

  if (st.arrived == p) {
    const double congestion = noise_.network_factor(st.max_time);
    double cost = 0.0;
    switch (st.kind) {
      case OpKind::kAllreduce:
        cost = network_.allreduce_time(st.bytes, p, congestion);
        break;
      case OpKind::kBcast:
        cost = network_.bcast_time(st.bytes, p, congestion);
        break;
      case OpKind::kBarrier:
        cost = network_.barrier_time(p, congestion);
        break;
      default:
        VAPRO_CHECK_MSG(false, "not a collective");
    }
    const double done = st.max_time + cost;
    // Move the releases out before erasing: a release may recursively
    // reach the next collective and mutate the map.
    auto releases = std::move(st.releases);
    collectives_.erase(seq);
    for (auto& release : releases) release(done);
  }
}

void Simulator::op_io(detail::CallAwaiter& a, std::coroutine_handle<> h) {
  RankContext& ctx = *a.ctx;
  const double now = engine_.now();
  const double factor = noise_.io_factor(now);
  const double dur = a.info.kind == OpKind::kFileRead
                         ? fs_.read_time(a.bytes, factor)
                         : fs_.write_time(a.bytes, factor);
  park(ctx);  // blocking syscall: one voluntary context switch
  resume_at(ctx.rank_, h, now + dur + intercept_overhead(ctx));
}

void Simulator::op_probe(detail::CallAwaiter& a, std::coroutine_handle<> h) {
  RankContext& ctx = *a.ctx;
  resume_at(ctx.rank_, h, engine_.now() + intercept_overhead(ctx));
}

void Simulator::deliver(int dst, int src, int tag, double arrival,
                        double bytes, double send_time) {
  Mailbox& box = mailboxes_[static_cast<std::size_t>(dst)];
  const std::uint64_t key = msg_key(src, tag);
  auto pending = box.pending_recvs.find(key);
  if (pending != box.pending_recvs.end() && !pending->second.empty()) {
    Request req = pending->second.front();
    pending->second.pop_front();
    const double copy = network_.receive_copy_time(
        bytes, noise_.network_factor(std::max(arrival, req->post_time)));
    resolve_request(req, std::max(arrival, req->post_time) + copy, bytes,
                    arrival - send_time + copy);
    return;
  }
  box.inflight[key].push_back(Mailbox::Msg{arrival, bytes, send_time});
}

void Simulator::resolve_request(const Request& r, double complete_time,
                                double bytes, double transfer_seconds) {
  VAPRO_CHECK(!r->resolved);
  r->resolved = true;
  r->complete_time = complete_time;
  r->bytes = bytes;
  r->transfer_seconds = transfer_seconds;
  if (r->on_resolve) {
    auto fn = std::move(r->on_resolve);
    r->on_resolve = nullptr;
    fn();
  }
}

void Simulator::schedule_periodic_tick(std::size_t idx) {
  const std::uint64_t run_id = run_counter_;
  const std::uint64_t periodic_id = periodics_[idx].id;
  engine_.schedule_after(
      periodics_[idx].period, [this, periodic_id, run_id] {
        if (run_id != run_counter_) return;
        for (std::size_t i = 0; i < periodics_.size(); ++i) {
          if (periodics_[i].id != periodic_id) continue;
          periodics_[i].fn(engine_.now());
          if (unfinished_ > 0) schedule_periodic_tick(i);
          return;
        }
        // Deregistered mid-run: nothing to do.
      });
}

RunResult Simulator::run(const RankProgram& program) {
  // Reset transient state; invalidate stale events from previous runs.
  ++run_counter_;
  engine_ = EventEngine{};
  contexts_.clear();
  tasks_.clear();
  done_callbacks_.clear();
  mailboxes_.assign(static_cast<std::size_t>(config_.ranks), Mailbox{});
  collectives_.clear();
  next_collective_.assign(static_cast<std::size_t>(config_.ranks), 0);
  finish_times_.assign(static_cast<std::size_t>(config_.ranks), -1.0);
  unfinished_ = config_.ranks;

  util::Rng seeder(config_.seed + run_counter_ * 0x9e3779b97f4a7c15ULL);
  contexts_.reserve(static_cast<std::size_t>(config_.ranks));
  tasks_.reserve(static_cast<std::size_t>(config_.ranks));
  done_callbacks_.resize(static_cast<std::size_t>(config_.ranks));
  for (int r = 0; r < config_.ranks; ++r) {
    contexts_.push_back(std::unique_ptr<RankContext>(new RankContext(
        this, r, config_.machine, seeder.fork(static_cast<std::uint64_t>(r)).next_u64())));
  }
  for (int r = 0; r < config_.ranks; ++r) {
    tasks_.push_back(program(*contexts_[static_cast<std::size_t>(r)]));
  }
  // Start every rank at t=0 through the engine so interleave is by event
  // order, not construction order.
  for (int r = 0; r < config_.ranks; ++r) {
    auto& task = tasks_[static_cast<std::size_t>(r)];
    engine_.schedule_at(0.0, [this, r, &task] {
      task.start(&done_callbacks_[static_cast<std::size_t>(r)]);
      if (task.done() && finish_times_[static_cast<std::size_t>(r)] < 0.0) {
        finish_times_[static_cast<std::size_t>(r)] = engine_.now();
        --unfinished_;
        task.rethrow_if_failed();
        if (interceptor_) interceptor_->on_program_end(r, engine_.now());
      }
    });
  }
  for (std::size_t i = 0; i < periodics_.size(); ++i)
    schedule_periodic_tick(i);

  engine_.run_until(config_.max_virtual_seconds);
  VAPRO_CHECK_MSG(unfinished_ == 0,
                  unfinished_ << " rank(s) never finished — deadlock or "
                                 "max_virtual_seconds exceeded at t="
                              << engine_.now());

  RunResult result;
  result.finish_times = finish_times_;
  result.makespan = *std::max_element(finish_times_.begin(), finish_times_.end());
  result.events = engine_.dispatched();
  return result;
}

}  // namespace vapro::sim
