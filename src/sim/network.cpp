#include "src/sim/network.hpp"

#include "src/util/check.hpp"

namespace vapro::sim {

NetworkModel::NetworkModel(NetworkParams params, Topology topo)
    : params_(params), topo_(topo) {}

int NetworkModel::log2_ceil(int p) {
  VAPRO_DCHECK(p >= 1);
  int rounds = 0;
  int span = 1;
  while (span < p) {
    span <<= 1;
    ++rounds;
  }
  return rounds;
}

double NetworkModel::p2p_time(double bytes, int src, int dst,
                              double congestion) const {
  const bool same_node = topo_.node_of(src) == topo_.node_of(dst);
  const double lat = same_node ? params_.latency_intra : params_.latency_inter;
  const double bw = same_node ? params_.bw_intra : params_.bw_inter;
  return (lat + bytes / bw) * congestion;
}

double NetworkModel::inject_time(double bytes, double congestion) const {
  // Eager protocol: sender pays overhead plus a copy into the NIC buffer.
  return (params_.injection_overhead + bytes / params_.bw_intra) * congestion;
}

double NetworkModel::receive_copy_time(double bytes, double congestion) const {
  return (params_.injection_overhead * 0.5 + bytes / params_.bw_intra) *
         congestion;
}

double NetworkModel::allreduce_time(double bytes, int p,
                                    double congestion) const {
  const int rounds = log2_ceil(p);
  return (params_.latency_inter + bytes / params_.bw_inter) * rounds *
         congestion;
}

double NetworkModel::bcast_time(double bytes, int p, double congestion) const {
  const int rounds = log2_ceil(p);
  return (params_.latency_inter + bytes / params_.bw_inter) * rounds *
         congestion;
}

double NetworkModel::barrier_time(int p, double congestion) const {
  return params_.latency_inter * log2_ceil(p) * congestion;
}

}  // namespace vapro::sim
