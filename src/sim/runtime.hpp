// The simulated parallel runtime: ranks are coroutines over virtual time.
//
// This is the substrate standing in for "MPI application + cluster" in the
// paper's evaluation.  A rank program co_awaits operations on its
// RankContext; the Simulator advances virtual time through a discrete-event
// engine, matches point-to-point messages, synchronizes collectives, runs
// the CPU/OS model for computation, and announces every external invocation
// to the attached Interceptor — the seam where Vapro (or a baseline tool)
// plugs in, exactly like an LD_PRELOAD shim.
//
// Determinism: everything is driven by seeded RNG streams and a total event
// order, so a (config, program) pair always reproduces the same run.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/pmu/core_model.hpp"
#include "src/pmu/workload.hpp"
#include "src/sim/engine.hpp"
#include "src/sim/filesystem.hpp"
#include "src/sim/intercept.hpp"
#include "src/sim/network.hpp"
#include "src/sim/noise.hpp"
#include "src/sim/task.hpp"
#include "src/sim/topology.hpp"

namespace vapro::sim {

// Cost charged to the application per intercepted call when a tool is
// attached — the source of the "overhead %" column of Table 1.
struct InterceptCost {
  // dlsym shim + timestamping + a few PMU register reads per hook pair
  // (PAPI reads cost ~1 µs each on real hardware).
  double base_seconds = 3.0e-6;
  // Backtrace cost per stack frame, charged only when the tool asks for
  // call paths (context-aware STG).
  double per_frame_seconds = 1.2e-6;
};

struct SimConfig {
  int ranks = 16;
  int cores_per_node = 24;
  std::uint64_t seed = 1;
  // When true, Wait/Recv completions report the underlying transfer time
  // in CommArgs::transfer_seconds — modeling an MPI library with an
  // enhanced profiling layer (§3.3) so tools can separate transfer time
  // from load-imbalance wait time.
  bool enhanced_comm_profiling = false;
  pmu::MachineParams machine;
  NetworkParams network;
  FsParams fs;
  std::vector<NoiseSpec> noises;
  InterceptCost intercept_cost;
  // Safety valve: a deadlocked program fails loudly instead of spinning.
  double max_virtual_seconds = 1e7;
};

struct RunResult {
  std::vector<double> finish_times;  // per rank, virtual seconds
  double makespan = 0.0;             // max finish time
  std::uint64_t events = 0;          // engine events dispatched
};

// Non-blocking operation handle.
struct RequestState {
  bool resolved = false;
  double complete_time = 0.0;
  double post_time = 0.0;
  double bytes = 0.0;
  // Wire time of the matched message (network transit + copy-out),
  // excluding the time spent waiting for the sender — what an enhanced
  // profiling layer (§3.3) exposes.  Negative until resolved/for sends.
  double transfer_seconds = -1.0;
  std::function<void()> on_resolve;  // parked waiter continuation
};
using Request = std::shared_ptr<RequestState>;

class Simulator;
class RankContext;

namespace detail {

// Awaiter for computation: runs the core model, not intercepted.
struct ComputeAwaiter {
  RankContext* ctx;
  pmu::ComputeWorkload workload;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h);
  void await_resume() const noexcept {}
};

// Awaiter for every intercepted external invocation.
struct CallAwaiter {
  RankContext* ctx = nullptr;
  InvocationInfo info;
  double bytes = 0.0;
  int peer = -1;
  int tag = 0;
  int fd = -1;
  Request request;                  // wait
  std::vector<Request> requests;    // wait_all
  Request out_request;              // isend/irecv result

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h);
  void await_resume();
};

// Same machinery, but co_await yields the created Request (isend/irecv).
struct RequestOpAwaiter : CallAwaiter {
  Request await_resume();
};

}  // namespace detail

class RankContext {
 public:
  int rank() const { return rank_; }
  int size() const;
  int node() const;
  int core() const;
  double now() const;
  util::Rng& rng() { return rng_; }
  const pmu::CounterSample& ground_truth() const { return counters_; }

  // --- computation (not intercepted) ---
  detail::ComputeAwaiter compute(const pmu::ComputeWorkload& w);

  // --- point-to-point communication ---
  detail::CallAwaiter send(int dst, double bytes, CallSiteId site, int tag = 0);
  detail::CallAwaiter recv(int src, CallSiteId site, int tag = 0);
  detail::RequestOpAwaiter isend(int dst, double bytes, CallSiteId site,
                                 int tag = 0);
  detail::RequestOpAwaiter irecv(int src, CallSiteId site, int tag = 0);
  detail::CallAwaiter wait(Request r, CallSiteId site);
  detail::CallAwaiter wait_all(std::vector<Request> rs, CallSiteId site);

  // --- collectives ---
  detail::CallAwaiter allreduce(double bytes, CallSiteId site);
  detail::CallAwaiter bcast(double bytes, int root, CallSiteId site);
  detail::CallAwaiter barrier(CallSiteId site);

  // --- IO ---
  detail::CallAwaiter file_read(int fd, double bytes, CallSiteId site);
  detail::CallAwaiter file_write(int fd, double bytes, CallSiteId site);

  // --- explicit probe (Dyninst-style user-defined invocation, §5) ---
  detail::CallAwaiter probe(CallSiteId site);

  // --- call-path regions (what a backtrace would show) ---
  class Region {
   public:
    Region(RankContext& ctx, std::uint32_t id);
    ~Region();
    Region(const Region&) = delete;
    Region& operator=(const Region&) = delete;

   private:
    RankContext& ctx_;
  };
  Region region(std::uint32_t id) { return Region(*this, id); }
  // Non-RAII variants for callers that build deep stacks in a loop
  // (pushes and pops must balance).
  void push_region(std::uint32_t id) { region_stack_.push_back(id); }
  void pop_region() { region_stack_.pop_back(); }

 private:
  friend class Simulator;
  friend struct detail::ComputeAwaiter;
  friend struct detail::CallAwaiter;

  RankContext(Simulator* sim, int rank, pmu::MachineParams machine,
              std::uint64_t seed);

  detail::CallAwaiter make_call(OpKind kind, CallSiteId site);
  void note_truth_class(std::int64_t cls);

  Simulator* sim_;
  int rank_;
  pmu::CounterSample counters_;  // cumulative ground truth
  pmu::CoreModel core_model_;
  util::Rng rng_;
  std::vector<std::uint32_t> region_stack_;
  std::int64_t truth_accum_ = -1;
  bool static_accum_ = true;   // all computes since last call static?
  bool saw_compute_ = false;   // any compute since last call?
};

class Simulator {
 public:
  using RankProgram = std::function<Task(RankContext&)>;

  explicit Simulator(SimConfig config);
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Attaches the tool under evaluation (nullptr detaches).  Attaching also
  // enables the interception cost model.
  void set_interceptor(Interceptor* interceptor);

  // Registers a callback invoked every `period` virtual seconds while at
  // least one rank is still running (plus one final tick) — used by
  // analysis servers for windowed collection (paper Fig 8).  Returns an id
  // for remove_periodic; callers whose lifetime is shorter than the
  // simulator's MUST deregister.
  std::uint64_t add_periodic(double period, std::function<void(double)> fn);
  void remove_periodic(std::uint64_t id);

  // Runs `program` on every rank to completion; resets transient state
  // first so a Simulator can be reused for repeated executions (Fig 1).
  RunResult run(const RankProgram& program);

  const SimConfig& config() const { return config_; }
  const Topology& topology() const { return topo_; }
  const NoiseSchedule& noise() const { return noise_; }
  double now() const { return engine_.now(); }

  // Ground truth of every configured injector, resolved to rank ranges and
  // clamped to [0, t_clamp) — typically the makespan of the run just
  // finished.  Drivers journal these (core::journal_ground_truth) so the
  // detection-quality scoreboard can score conclusions against them.
  std::vector<GroundTruthEvent> ground_truth(double t_clamp) const {
    return noise_.ground_truth(topo_, t_clamp);
  }

 private:
  friend class RankContext;
  friend struct detail::ComputeAwaiter;
  friend struct detail::CallAwaiter;

  struct Mailbox {
    struct Msg {
      double arrival;
      double bytes;
      double send_time;
    };
    std::unordered_map<std::uint64_t, std::deque<Msg>> inflight;
    std::unordered_map<std::uint64_t, std::deque<Request>> pending_recvs;
  };

  struct CollState {
    OpKind kind = OpKind::kBarrier;
    double bytes = 0.0;
    int arrived = 0;
    double max_time = 0.0;
    std::vector<std::function<void(double)>> releases;  // arg: done time
  };

  static std::uint64_t msg_key(int src, int tag) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
           static_cast<std::uint32_t>(tag);
  }

  double intercept_overhead(const RankContext& ctx) const;
  void begin_call(const RankContext& ctx, const InvocationInfo& info);
  void end_call(const RankContext& ctx, const InvocationInfo& info);

  // Schedules `h` to resume at virtual time `t` and handles rank completion
  // bookkeeping after the resume returns.
  void resume_at(int rank, std::coroutine_handle<> h, double t);

  // Op implementations (called from CallAwaiter::await_suspend).
  void op_send(detail::CallAwaiter& a, std::coroutine_handle<> h,
               bool blocking);
  void op_recv(detail::CallAwaiter& a, std::coroutine_handle<> h,
               bool blocking);
  void op_wait(detail::CallAwaiter& a, std::coroutine_handle<> h);
  void op_waitall(detail::CallAwaiter& a, std::coroutine_handle<> h);
  void op_collective(detail::CallAwaiter& a, std::coroutine_handle<> h);
  void op_io(detail::CallAwaiter& a, std::coroutine_handle<> h);
  void op_probe(detail::CallAwaiter& a, std::coroutine_handle<> h);

  void deliver(int dst, int src, int tag, double arrival, double bytes,
               double send_time);
  void resolve_request(const Request& r, double complete_time, double bytes,
                       double transfer_seconds = -1.0);
  void park(RankContext& ctx) { ctx.counters_[pmu::Counter::kCtxSwitchVoluntary] += 1.0; }

  void schedule_periodic_tick(std::size_t idx);

  SimConfig config_;
  Topology topo_;
  EventEngine engine_;
  NetworkModel network_;
  SharedFilesystem fs_;
  NoiseSchedule noise_;
  Interceptor* interceptor_ = nullptr;

  std::vector<std::unique_ptr<RankContext>> contexts_;
  std::vector<Task> tasks_;
  std::vector<std::function<void()>> done_callbacks_;
  std::vector<double> finish_times_;
  int unfinished_ = 0;
  std::uint64_t run_counter_ = 0;

  std::vector<Mailbox> mailboxes_;
  std::unordered_map<std::uint64_t, CollState> collectives_;
  std::vector<std::uint64_t> next_collective_;  // per-rank sequence number

  struct Periodic {
    std::uint64_t id;
    double period;
    std::function<void(double)> fn;
  };
  std::vector<Periodic> periodics_;
  std::uint64_t next_periodic_id_ = 1;
};

}  // namespace vapro::sim
