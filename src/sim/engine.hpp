// Discrete-event engine.
//
// Single-threaded over virtual time: events are (time, sequence, callback)
// tuples popped in order; the sequence number makes simultaneous events
// deterministic.  Virtual seconds are doubles — fragment durations span
// nanoseconds to minutes and the engine never subtracts nearby times in a
// way that loses ordering (the seq number breaks ties).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace vapro::sim {

class EventEngine {
 public:
  using Callback = std::function<void()>;

  double now() const { return now_; }

  // Schedules `fn` at absolute virtual time `t` (>= now).
  void schedule_at(double t, Callback fn);
  // Schedules `fn` after `dt` seconds.
  void schedule_after(double dt, Callback fn);

  // Runs until the queue drains.  Returns the final virtual time.
  double run();

  // Runs until the queue drains or virtual time would exceed `t_limit`
  // (safety valve against livelock in tests).
  double run_until(double t_limit);

  bool empty() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }
  std::uint64_t dispatched() const { return dispatched_; }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
};

}  // namespace vapro::sim
