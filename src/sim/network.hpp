// α-β network model with log-tree collectives.
//
// Point-to-point transfer time = latency + bytes/bandwidth, with separate
// intra-node (shared memory) and inter-node (fabric) parameters; collective
// time = ceil(log2 p) rounds of the same.  A congestion factor from the
// noise schedule scales everything, modeling link interference (§1's
// "network interference" variance source).
#pragma once

#include <functional>

#include "src/sim/topology.hpp"

namespace vapro::sim {

struct NetworkParams {
  double latency_intra = 0.4e-6;   // seconds, same node
  double latency_inter = 1.8e-6;   // seconds, across the fabric
  double bw_intra = 8.0e9;         // bytes/second
  double bw_inter = 6.0e9;         // bytes/second (≈50 Gbps)
  double injection_overhead = 0.2e-6;  // sender-side cost per message
};

class NetworkModel {
 public:
  NetworkModel(NetworkParams params, Topology topo);

  // Time for the payload to arrive at the destination.
  double p2p_time(double bytes, int src, int dst, double congestion) const;
  // Sender-side cost of an eager send (returns before delivery).
  double inject_time(double bytes, double congestion) const;
  // Receiver-side copy-out cost once the message is available.
  double receive_copy_time(double bytes, double congestion) const;

  // Collectives over all `p` ranks.
  double allreduce_time(double bytes, int p, double congestion) const;
  double bcast_time(double bytes, int p, double congestion) const;
  double barrier_time(int p, double congestion) const;

 private:
  static int log2_ceil(int p);
  NetworkParams params_;
  Topology topo_;
};

}  // namespace vapro::sim
