#include "src/sim/noise.hpp"

namespace vapro::sim {

NoiseSchedule::NoiseSchedule(std::vector<NoiseSpec> specs)
    : specs_(std::move(specs)) {}

double NoiseSchedule::cpu_share(const pmu::EnvQuery& q) const {
  double share = 1.0;
  for (const auto& s : specs_) {
    if (s.kind != NoiseKind::kCpuContention) continue;
    if (!s.covers(q.node, q.core, q.time)) continue;
    share *= 1.0 / (1.0 + s.magnitude);
  }
  return share;
}

double NoiseSchedule::dram_factor(const pmu::EnvQuery& q) const {
  double f = 1.0;
  for (const auto& s : specs_) {
    if (s.kind != NoiseKind::kMemoryBandwidth && s.kind != NoiseKind::kSlowDram)
      continue;
    if (!s.covers(q.node, q.core, q.time)) continue;
    f *= s.magnitude;
  }
  return f;
}

double NoiseSchedule::l2_factor(const pmu::EnvQuery& q) const {
  double f = 1.0;
  for (const auto& s : specs_) {
    if (s.kind != NoiseKind::kL2CacheBug) continue;
    if (!s.covers(q.node, q.core, q.time)) continue;
    f *= s.magnitude;
  }
  return f;
}

double NoiseSchedule::soft_pf_rate(const pmu::EnvQuery& q) const {
  double rate = 0.0;
  for (const auto& s : specs_) {
    if (s.kind != NoiseKind::kPageFaultStorm) continue;
    if (!s.covers(q.node, q.core, q.time)) continue;
    rate += s.magnitude;
  }
  return rate;
}

double NoiseSchedule::hard_pf_rate(const pmu::EnvQuery& q) const {
  // Hard faults ride along with a fault storm at 1/50th the soft rate.
  return soft_pf_rate(q) / 50.0;
}

double NoiseSchedule::network_factor(double t) const {
  double f = 1.0;
  for (const auto& s : specs_) {
    if (s.kind != NoiseKind::kNetworkCongestion) continue;
    if (t < s.t_begin || t >= s.t_end) continue;
    f *= s.magnitude;
  }
  return f;
}

double NoiseSchedule::io_factor(double t) const {
  double f = 1.0;
  for (const auto& s : specs_) {
    if (s.kind != NoiseKind::kIoInterference) continue;
    if (t < s.t_begin || t >= s.t_end) continue;
    f *= s.magnitude;
  }
  return f;
}

}  // namespace vapro::sim
