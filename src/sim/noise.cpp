#include "src/sim/noise.hpp"

#include <algorithm>

namespace vapro::sim {

const char* noise_kind_name(NoiseKind kind) {
  switch (kind) {
    case NoiseKind::kCpuContention: return "cpu";
    case NoiseKind::kMemoryBandwidth: return "mem";
    case NoiseKind::kL2CacheBug: return "l2bug";
    case NoiseKind::kSlowDram: return "dram";
    case NoiseKind::kPageFaultStorm: return "pf";
    case NoiseKind::kIoInterference: return "io";
    case NoiseKind::kNetworkCongestion: return "net";
  }
  return "unknown";
}

bool noise_kind_from_name(const std::string& name, NoiseKind* out) {
  if (name == "cpu") *out = NoiseKind::kCpuContention;
  else if (name == "mem") *out = NoiseKind::kMemoryBandwidth;
  else if (name == "l2bug") *out = NoiseKind::kL2CacheBug;
  else if (name == "dram") *out = NoiseKind::kSlowDram;
  else if (name == "pf") *out = NoiseKind::kPageFaultStorm;
  else if (name == "io") *out = NoiseKind::kIoInterference;
  else if (name == "net") *out = NoiseKind::kNetworkCongestion;
  else return false;
  return true;
}

NoiseSchedule::NoiseSchedule(std::vector<NoiseSpec> specs)
    : specs_(std::move(specs)) {}

double NoiseSchedule::cpu_share(const pmu::EnvQuery& q) const {
  double share = 1.0;
  for (const auto& s : specs_) {
    if (s.kind != NoiseKind::kCpuContention) continue;
    if (!s.covers(q.node, q.core, q.time)) continue;
    share *= 1.0 / (1.0 + s.magnitude);
  }
  return share;
}

double NoiseSchedule::dram_factor(const pmu::EnvQuery& q) const {
  double f = 1.0;
  for (const auto& s : specs_) {
    if (s.kind != NoiseKind::kMemoryBandwidth && s.kind != NoiseKind::kSlowDram)
      continue;
    if (!s.covers(q.node, q.core, q.time)) continue;
    f *= s.magnitude;
  }
  return f;
}

double NoiseSchedule::l2_factor(const pmu::EnvQuery& q) const {
  double f = 1.0;
  for (const auto& s : specs_) {
    if (s.kind != NoiseKind::kL2CacheBug) continue;
    if (!s.covers(q.node, q.core, q.time)) continue;
    f *= s.magnitude;
  }
  return f;
}

double NoiseSchedule::soft_pf_rate(const pmu::EnvQuery& q) const {
  double rate = 0.0;
  for (const auto& s : specs_) {
    if (s.kind != NoiseKind::kPageFaultStorm) continue;
    if (!s.covers(q.node, q.core, q.time)) continue;
    rate += s.magnitude;
  }
  return rate;
}

double NoiseSchedule::hard_pf_rate(const pmu::EnvQuery& q) const {
  // Hard faults ride along with a fault storm at 1/50th the soft rate.
  return soft_pf_rate(q) / 50.0;
}

double NoiseSchedule::network_factor(double t) const {
  double f = 1.0;
  for (const auto& s : specs_) {
    if (s.kind != NoiseKind::kNetworkCongestion) continue;
    if (t < s.t_begin || t >= s.t_end) continue;
    f *= s.magnitude;
  }
  return f;
}

double NoiseSchedule::io_factor(double t) const {
  double f = 1.0;
  for (const auto& s : specs_) {
    if (s.kind != NoiseKind::kIoInterference) continue;
    if (t < s.t_begin || t >= s.t_end) continue;
    f *= s.magnitude;
  }
  return f;
}

std::vector<GroundTruthEvent> NoiseSchedule::ground_truth(
    const Topology& topo, double t_clamp) const {
  std::vector<GroundTruthEvent> events;
  for (const NoiseSpec& s : specs_) {
    GroundTruthEvent gt;
    gt.kind = s.kind;
    gt.t_begin = std::max(s.t_begin, 0.0);
    gt.t_end = std::min(s.t_end, t_clamp);
    if (gt.t_end <= gt.t_begin) continue;  // never active during the run
    gt.magnitude = s.magnitude;

    const bool shared_resource = s.kind == NoiseKind::kIoInterference ||
                                 s.kind == NoiseKind::kNetworkCongestion;
    if (shared_resource || s.node < 0) {
      gt.rank_lo = 0;
      gt.rank_hi = topo.ranks - 1;
    } else {
      if (s.node >= topo.nodes()) continue;  // no rank lives there
      if (s.core >= 0) {
        const int rank = s.node * topo.cores_per_node + s.core;
        if (rank >= topo.ranks) continue;
        gt.rank_lo = gt.rank_hi = rank;
      } else {
        gt.rank_lo = topo.first_rank_on(s.node);
        gt.rank_hi =
            std::min(topo.first_rank_on(s.node + 1) - 1, topo.ranks - 1);
      }
    }
    events.push_back(gt);
  }
  return events;
}

}  // namespace vapro::sim
