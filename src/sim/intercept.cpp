#include "src/sim/intercept.hpp"

namespace vapro::sim {

bool is_io_op(OpKind k) {
  return k == OpKind::kFileRead || k == OpKind::kFileWrite;
}

bool is_comm_op(OpKind k) {
  switch (k) {
    case OpKind::kSend:
    case OpKind::kRecv:
    case OpKind::kIsend:
    case OpKind::kIrecv:
    case OpKind::kWait:
    case OpKind::kWaitall:
    case OpKind::kAllreduce:
    case OpKind::kBcast:
    case OpKind::kBarrier:
      return true;
    default:
      return false;
  }
}

const char* op_kind_name(OpKind k) {
  switch (k) {
    case OpKind::kSend: return "Send";
    case OpKind::kRecv: return "Recv";
    case OpKind::kIsend: return "Isend";
    case OpKind::kIrecv: return "Irecv";
    case OpKind::kWait: return "Wait";
    case OpKind::kWaitall: return "Waitall";
    case OpKind::kAllreduce: return "Allreduce";
    case OpKind::kBcast: return "Bcast";
    case OpKind::kBarrier: return "Barrier";
    case OpKind::kFileRead: return "FileRead";
    case OpKind::kFileWrite: return "FileWrite";
    case OpKind::kProbe: return "Probe";
  }
  return "?";
}

}  // namespace vapro::sim
