// Coroutine task type for simulated rank programs.
//
// Application code reads like MPI code:
//
//   sim::Task cg(sim::RankContext& ctx) {
//     for (int it = 0; it < iters; ++it) {
//       co_await ctx.compute(w);
//       co_await ctx.allreduce(8.0, kSiteAllreduce);
//     }
//   }
//
// Task supports nesting (co_await a helper Task) via symmetric transfer: the
// child stores the parent's handle as its continuation and resumes it from
// final_suspend.  Top-level tasks (the per-rank programs) are started by the
// simulator and report completion through an optional callback.
#pragma once

#include <coroutine>
#include <exception>
#include <functional>
#include <utility>

namespace vapro::sim {

class Task {
 public:
  struct promise_type {
    std::coroutine_handle<> continuation;
    std::exception_ptr exception;
    std::function<void()>* on_done = nullptr;  // set for top-level tasks

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> h) noexcept {
        auto& p = h.promise();
        if (p.on_done && *p.on_done) (*p.on_done)();
        if (p.continuation) return p.continuation;
        return std::noop_coroutine();
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { exception = std::current_exception(); }
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  // --- awaiting a child task from a parent coroutine ---
  bool await_ready() const noexcept { return !handle_ || handle_.done(); }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) {
    handle_.promise().continuation = parent;
    return handle_;  // symmetric transfer into the child
  }
  void await_resume() {
    if (handle_ && handle_.promise().exception)
      std::rethrow_exception(handle_.promise().exception);
  }

  // --- top-level control (used by the simulator) ---
  // Registers a completion callback (must outlive the task) and resumes the
  // coroutine from its initial suspension point.
  void start(std::function<void()>* on_done) {
    handle_.promise().on_done = on_done;
    handle_.resume();
  }
  bool done() const { return !handle_ || handle_.done(); }
  void rethrow_if_failed() {
    if (handle_ && handle_.promise().exception)
      std::rethrow_exception(handle_.promise().exception);
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  std::coroutine_handle<promise_type> handle_;
};

}  // namespace vapro::sim
