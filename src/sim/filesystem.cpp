#include "src/sim/filesystem.hpp"

#include <cmath>

#include "src/util/check.hpp"

namespace vapro::sim {

SharedFilesystem::SharedFilesystem(FsParams params, std::uint64_t seed)
    : params_(params), rng_(seed) {
  VAPRO_CHECK(params_.bandwidth > 0);
}

double SharedFilesystem::op_time(double base_latency, double bytes,
                                 double io_factor) {
  // Lognormal latency centered on the median: exp(N(0, sigma)) has median 1.
  const double draw = std::exp(rng_.normal(0.0, params_.latency_sigma));
  return (base_latency * draw + bytes / params_.bandwidth) * io_factor;
}

double SharedFilesystem::read_time(double bytes, double io_factor) {
  return op_time(params_.read_latency, bytes, io_factor);
}

double SharedFilesystem::write_time(double bytes, double io_factor) {
  return op_time(params_.write_latency, bytes, io_factor);
}

}  // namespace vapro::sim
