// Shared (distributed) filesystem model.
//
// Each operation costs latency + bytes/bandwidth; the latency is drawn from
// a lognormal distribution because metadata-heavy small-file access on a
// shared parallel filesystem has a heavy service-time tail — exactly the
// behaviour that makes RAxML's small-file merging vulnerable (§6.5.3).  An
// io_factor from the noise schedule scales the whole cost during
// interference windows.
#pragma once

#include <cstdint>

#include "src/util/rng.hpp"

namespace vapro::sim {

struct FsParams {
  double read_latency = 120e-6;    // seconds, median per-op latency
  double write_latency = 180e-6;
  double bandwidth = 1.2e9;        // bytes/second, per-stream
  double latency_sigma = 0.45;     // lognormal sigma of the latency draw
};

class SharedFilesystem {
 public:
  SharedFilesystem(FsParams params, std::uint64_t seed);

  // Service time of one read/write of `bytes`, scaled by `io_factor`.
  double read_time(double bytes, double io_factor);
  double write_time(double bytes, double io_factor);

  const FsParams& params() const { return params_; }

 private:
  double op_time(double base_latency, double bytes, double io_factor);
  FsParams params_;
  util::Rng rng_;
};

}  // namespace vapro::sim
