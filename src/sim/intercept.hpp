// Interception interface — the simulator-side equivalent of the PMPI /
// LD_PRELOAD shim the real Vapro uses (paper §5).
//
// Every external invocation a rank program issues (communication, IO,
// explicit probes) is announced to the attached Interceptor twice: at call
// entry and at call exit, each time with the rank's cumulative ground-truth
// counter sample.  Whatever sits behind this interface sees exactly what a
// preloaded shared library would see: call-site, call-path, arguments,
// timestamps, counters — and nothing else (no source, no workload labels).
//
// The ground-truth workload class accumulated since the previous call is
// carried only for *evaluation* (Table 2 scoring); production tools must
// ignore it, and the Vapro client does.
#pragma once

#include <cstdint>
#include <vector>

#include "src/pmu/counters.hpp"

namespace vapro::sim {

using RankId = int;
using CallSiteId = std::uint32_t;

enum class OpKind : std::uint8_t {
  kSend,
  kRecv,
  kIsend,
  kIrecv,
  kWait,
  kWaitall,
  kAllreduce,
  kBcast,
  kBarrier,
  kFileRead,
  kFileWrite,
  kProbe,  // Dyninst-style user-defined invocation (§5)
};

bool is_io_op(OpKind k);
bool is_comm_op(OpKind k);
const char* op_kind_name(OpKind k);

// Invocation arguments visible to an interposition layer.
struct CommArgs {
  double bytes = 0.0;
  int peer = -1;   // src/dst rank, or root for rooted collectives
  int fd = -1;     // file descriptor for IO ops
  int tag = 0;
  // Underlying transfer time of the completed non-blocking operation,
  // exposed only when the MPI library has an enhanced profiling layer
  // (§3.3 / Vetter's dynamic statistical profiling).  Negative = absent.
  double transfer_seconds = -1.0;
};

struct InvocationInfo {
  RankId rank = 0;
  CallSiteId site = 0;
  OpKind kind = OpKind::kProbe;
  CommArgs args;
  // Region-id stack at the call — the simulated analogue of the call path a
  // backtrace would produce (context-aware STG input).
  std::vector<std::uint32_t> path;
  // Ground-truth combined workload class executed since the previous call
  // ended (-1 when unlabelled).  Evaluation only.
  std::int64_t truth_class_since_last = -1;
  // True when every computation since the previous call was statically
  // provable fixed-workload — the information a compile-time analysis
  // (vSensor) would have.  Vapro must not consult this.
  bool statically_fixed_since_last = false;
};

class Interceptor {
 public:
  virtual ~Interceptor() = default;
  // True when the tool needs call paths (context-aware STG): the simulator
  // then charges the per-frame backtrace cost on every intercepted call.
  virtual bool wants_call_path() const { return false; }
  virtual void on_call_begin(const InvocationInfo& info, double time,
                             const pmu::CounterSample& ground_truth) = 0;
  virtual void on_call_end(const InvocationInfo& info, double time,
                           const pmu::CounterSample& ground_truth) = 0;
  virtual void on_program_end(RankId rank, double time) { (void)rank; (void)time; }
};

}  // namespace vapro::sim
