#include "src/sim/engine.hpp"

#include <utility>

#include "src/util/check.hpp"

namespace vapro::sim {

void EventEngine::schedule_at(double t, Callback fn) {
  VAPRO_CHECK_MSG(t >= now_, "event scheduled in the past: t=" << t
                                                               << " now=" << now_);
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

void EventEngine::schedule_after(double dt, Callback fn) {
  VAPRO_CHECK(dt >= 0.0);
  schedule_at(now_ + dt, std::move(fn));
}

double EventEngine::run() {
  while (!queue_.empty()) {
    // Copy out before pop: the callback may schedule new events.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    ++dispatched_;
    ev.fn();
  }
  return now_;
}

double EventEngine::run_until(double t_limit) {
  while (!queue_.empty() && queue_.top().time <= t_limit) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    ++dispatched_;
    ev.fn();
  }
  return now_;
}

}  // namespace vapro::sim
