// Noise injection.
//
// Each NoiseSpec perturbs one mechanism of the machine model inside a time
// window and a (node, core) scope, standing in for the paper's injected and
// naturally occurring variance sources:
//
//   kCpuContention   — `stress` co-scheduled on the same core (§6.2, §6.4):
//                      cpu_share drops to 1/(1+magnitude), involuntary
//                      context switches appear.
//   kMemoryBandwidth — `stream` on idle cores (§3.3 footnote): DRAM-bound
//                      stalls multiply by `magnitude` for all cores of the
//                      node.
//   kL2CacheBug      — the Intel L2-eviction erratum (§6.5.1): L2-bound
//                      stalls multiply by `magnitude` (with a DRAM spill
//                      modeled in the core model).
//   kSlowDram        — a degraded DIMM/node (§6.5.2): persistent DRAM factor.
//   kPageFaultStorm  — extra soft/hard faults per second.
//   kIoInterference  — shared-filesystem slowdown (§6.5.3).
//   kNetworkCongestion — link contention: network times multiply.
//
// A NoiseSchedule composes any number of specs and implements the
// pmu::Environment interface plus network/filesystem factors.
//
// Every injector knows exactly what it perturbed: ground_truth() turns the
// schedule into structured GroundTruthEvent records (affected rank range,
// time window, factor class, magnitude) so a detection-quality scoreboard
// can score what Vapro found against what was actually injected
// (src/obs/quality, `vapro_stress --score`).
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "src/pmu/core_model.hpp"
#include "src/sim/topology.hpp"

namespace vapro::sim {

enum class NoiseKind {
  kCpuContention,
  kMemoryBandwidth,
  kL2CacheBug,
  kSlowDram,
  kPageFaultStorm,
  kIoInterference,
  kNetworkCongestion,
};

struct NoiseSpec {
  NoiseKind kind = NoiseKind::kCpuContention;
  double t_begin = 0.0;
  double t_end = std::numeric_limits<double>::infinity();
  int node = -1;  // -1 = every node
  int core = -1;  // -1 = every core of the node
  // Kind-specific strength; see kind docs above.
  double magnitude = 1.0;

  bool covers(int node_q, int core_q, double t) const {
    if (t < t_begin || t >= t_end) return false;
    if (node >= 0 && node != node_q) return false;
    if (core >= 0 && core != core_q) return false;
    return true;
  }
};

// Stable lowercase tag for a noise kind ("cpu", "mem", "dram", "l2bug",
// "pf", "io", "net") — the vapro_run --noise spelling, also the noise axis
// of the quality scoreboard and the `ground_truth` journal events.
const char* noise_kind_name(NoiseKind kind);
// Reverse of noise_kind_name; false when `name` is not a known tag.
bool noise_kind_from_name(const std::string& name, NoiseKind* out);

// What one injector actually perturbed, resolved to scoreboard terms: the
// inclusive rank range the (node, core) scope maps to under `topo` and the
// injection window clamped to the run.  IO and network interference act on
// shared resources (filesystem, links), so their scope is every rank
// regardless of the spec's node field — exactly how NoiseSchedule applies
// them.
struct GroundTruthEvent {
  NoiseKind kind = NoiseKind::kCpuContention;
  double t_begin = 0.0;
  double t_end = 0.0;      // clamped; never infinity
  int rank_lo = 0;         // inclusive
  int rank_hi = 0;         // inclusive
  double magnitude = 1.0;
};

class NoiseSchedule final : public pmu::Environment {
 public:
  NoiseSchedule() = default;
  explicit NoiseSchedule(std::vector<NoiseSpec> specs);

  void add(const NoiseSpec& spec) { specs_.push_back(spec); }
  const std::vector<NoiseSpec>& specs() const { return specs_; }

  // pmu::Environment:
  double cpu_share(const pmu::EnvQuery& q) const override;
  double dram_factor(const pmu::EnvQuery& q) const override;
  double l2_factor(const pmu::EnvQuery& q) const override;
  double soft_pf_rate(const pmu::EnvQuery& q) const override;
  double hard_pf_rate(const pmu::EnvQuery& q) const override;

  // Extra dimensions beyond the CPU:
  double network_factor(double t) const;
  double io_factor(double t) const;

  // Ground truth of every injector, resolved against `topo` and clamped to
  // [0, t_clamp).  Specs whose window or scope is empty after clamping
  // (e.g. noise on a node no rank lives on) are dropped — they perturbed
  // nothing, so a detector must not be rewarded for "finding" them.
  std::vector<GroundTruthEvent> ground_truth(const Topology& topo,
                                             double t_clamp) const;

 private:
  std::vector<NoiseSpec> specs_;
};

}  // namespace vapro::sim
