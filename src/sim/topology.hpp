// Machine topology: ranks are block-mapped onto nodes × cores, matching the
// usual MPI rank placement on a cluster (ranks 0..C-1 on node 0, ...).
// Noise injectors target (node, core) coordinates, so detection experiments
// like "noise on the second socket" (Fig 15) or "one slow node" (Fig 17)
// address ranks through this mapping.
#pragma once

#include "src/util/check.hpp"

namespace vapro::sim {

struct Topology {
  int ranks = 1;
  int cores_per_node = 24;

  int nodes() const { return (ranks + cores_per_node - 1) / cores_per_node; }
  int node_of(int rank) const {
    VAPRO_DCHECK(rank >= 0 && rank < ranks);
    return rank / cores_per_node;
  }
  int core_of(int rank) const {
    VAPRO_DCHECK(rank >= 0 && rank < ranks);
    return rank % cores_per_node;
  }
  // First rank hosted on `node` (for benches that place noise "on node k").
  int first_rank_on(int node) const { return node * cores_per_node; }
};

}  // namespace vapro::sim
