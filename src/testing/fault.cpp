#include "src/testing/fault.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace vapro::testing {

namespace {

// SplitMix64 step — the same expansion util::Rng uses for stream seeding,
// duplicated here so the injector stays dependency-free (it is linked into
// every library that carries a hook).
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// xorshift64* on the rule's own state: uniform enough for fault
// probabilities, and the sequence depends only on (plan seed, site, rule
// index) — never on other sites' traffic.
double next_uniform(std::uint64_t* state) {
  std::uint64_t x = *state;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  *state = x;
  return static_cast<double>((x * 0x2545f4914f6cdd1dULL) >> 11) /
         static_cast<double>(1ULL << 53);
}

}  // namespace

const char* fault_action_name(FaultAction a) {
  switch (a) {
    case FaultAction::kNone: return "none";
    case FaultAction::kFail: return "fail";
    case FaultAction::kDrop: return "drop";
    case FaultAction::kShortWrite: return "short_write";
    case FaultAction::kClose: return "close";
    case FaultAction::kThrow: return "throw";
  }
  return "none";
}

bool parse_fault_action(const std::string& token, FaultAction* out) {
  if (token == "fail") *out = FaultAction::kFail;
  else if (token == "drop") *out = FaultAction::kDrop;
  else if (token == "short_write") *out = FaultAction::kShortWrite;
  else if (token == "close") *out = FaultAction::kClose;
  else if (token == "throw") *out = FaultAction::kThrow;
  else return false;
  return true;
}

std::string FaultPlan::to_string() const {
  std::ostringstream oss;
  oss << "seed " << seed << '\n';
  for (const FaultRule& r : rules) {
    oss << r.site;
    if (r.on) oss << " on=" << r.on;
    if (r.every) oss << " every=" << r.every;
    if (r.prob > 0.0) oss << " prob=" << r.prob;
    oss << ' ' << fault_action_name(r.action);
    if (r.limit != ~std::uint64_t{0}) oss << " limit=" << r.limit;
    oss << '\n';
  }
  return oss.str();
}

bool FaultPlan::parse(const std::string& text, FaultPlan* out,
                      std::string* error) {
  FaultPlan plan;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  auto fail = [&](const std::string& what) {
    if (error)
      *error = "fault plan line " + std::to_string(line_no) + ": " + what;
    return false;
  };
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream tokens(line);
    std::string head;
    if (!(tokens >> head)) continue;  // blank / comment-only line

    if (head == "seed") {
      if (!(tokens >> plan.seed)) return fail("seed needs a number");
      continue;
    }

    FaultRule rule;
    rule.site = head;
    bool have_action = false, have_trigger = false;
    std::string tok;
    while (tokens >> tok) {
      const std::size_t eq = tok.find('=');
      if (eq != std::string::npos) {
        const std::string key = tok.substr(0, eq);
        const std::string val = tok.substr(eq + 1);
        char* end = nullptr;
        if (key == "on") rule.on = std::strtoull(val.c_str(), &end, 10);
        else if (key == "every") rule.every = std::strtoull(val.c_str(), &end, 10);
        else if (key == "limit") rule.limit = std::strtoull(val.c_str(), &end, 10);
        else if (key == "prob") rule.prob = std::strtod(val.c_str(), &end);
        else return fail("unknown key '" + key + "'");
        if (!end || *end != '\0' || val.empty())
          return fail("bad value '" + val + "' for " + key);
        if (key != "limit") have_trigger = true;
      } else {
        if (have_action) return fail("two actions on one rule");
        if (!parse_fault_action(tok, &rule.action))
          return fail("unknown action '" + tok + "'");
        have_action = true;
      }
    }
    if (!have_action) return fail("rule for '" + rule.site + "' has no action");
    if (!have_trigger) return fail("rule for '" + rule.site +
                                   "' has no trigger (on=/every=/prob=)");
    if (rule.prob < 0.0 || rule.prob > 1.0)
      return fail("prob must be within [0, 1]");
    plan.rules.push_back(std::move(rule));
  }
  *out = std::move(plan);
  return true;
}

bool FaultPlan::parse_file(const std::string& path, FaultPlan* out,
                           std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error) *error = "cannot open fault plan " + path;
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();
  return parse(text.str(), out, error);
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::arm(FaultPlan plan) {
  std::lock_guard<std::mutex> lock(mu_);
  rule_states_.clear();
  sites_.clear();
  rule_states_.reserve(plan.rules.size());
  for (std::size_t i = 0; i < plan.rules.size(); ++i) {
    RuleState st;
    st.rule = plan.rules[i];
    // Never-zero xorshift seed, unique per (plan seed, site, rule index).
    st.rng = mix64(plan.seed ^ fnv1a(st.rule.site) ^ (i * 0x9e37ULL)) | 1ULL;
    rule_states_.push_back(std::move(st));
  }
  for (RuleState& st : rule_states_)
    sites_[st.rule.site].rules.push_back(&st);
  armed_.store(true, std::memory_order_release);
}

void FaultInjector::disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.store(false, std::memory_order_release);
  rule_states_.clear();
  sites_.clear();
}

FaultAction FaultInjector::hit(const char* site) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!armed_.load(std::memory_order_relaxed)) return FaultAction::kNone;
  auto it = sites_.find(site);
  if (it == sites_.end()) return FaultAction::kNone;
  SiteState& ss = it->second;
  const std::uint64_t n = ++ss.hits;
  for (RuleState* st : ss.rules) {
    if (st->fired >= st->rule.limit) continue;
    bool fire = false;
    if (st->rule.on && n == st->rule.on) fire = true;
    if (st->rule.every && n % st->rule.every == 0) fire = true;
    if (st->rule.prob > 0.0 && next_uniform(&st->rng) < st->rule.prob)
      fire = true;
    if (!fire) continue;
    ++st->fired;
    ++ss.injected;
    return st->rule.action;
  }
  return FaultAction::kNone;
}

std::uint64_t FaultInjector::hits(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

std::uint64_t FaultInjector::injected(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.injected;
}

std::uint64_t FaultInjector::injected_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [site, ss] : sites_) total += ss.injected;
  return total;
}

std::vector<std::pair<std::string, std::uint64_t>>
FaultInjector::injected_by_site() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  for (const auto& [site, ss] : sites_)
    if (ss.injected) out.emplace_back(site, ss.injected);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace vapro::testing
