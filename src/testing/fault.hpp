// Deterministic fault injection for the online pipeline.
//
// Production hardening is only as good as the failure paths that were
// actually executed, so the hazard sites of the live pipeline — journal
// writes and rotation, exposition socket accept/send, alert sink dispatch,
// client fragment ingestion, per-window publication — each carry a named
// injection point:
//
//   switch (VAPRO_FAULT("journal.write")) { ... }
//
// A seeded FaultPlan maps site names to actions with deterministic
// triggers (the Nth hit, every Nth hit, or a seeded probability), so any
// failure found by the stress fuzzer replays exactly from
// `--seed N --fault-plan P`.  When the build disables the hooks
// (VAPRO_FAULT_INJECTION undefined — the Release default), VAPRO_FAULT
// folds to kNone and the hazard sites compile back to their plain form;
// when enabled but no plan is armed, the cost is one relaxed atomic load.
//
// Plan text, one rule per line ('#' comments, blank lines ignored):
//
//   seed 42
//   journal.write  on=3     short_write
//   journal.write  every=7  fail        limit=2
//   expo.send      prob=0.5 close
//   alerts.dispatch on=2    throw
//
// Sites (see docs/TESTING.md for the action each one honors):
//   journal.write   short_write | fail      torn final line / ENOSPC drop
//   journal.rotate  fail                    rotation target unwritable
//   expo.accept     fail                    accept fails, connection lost
//   expo.send       close | fail            peer closes mid-response
//   alerts.dispatch drop | throw            sink unavailable / sink throws
//   client.ingest   drop                    fragment lost before buffering
//   server.window   fail                    window publication skipped
//   group.merge     fail                    merged-root publication skipped
//   obs.span        drop | fail | short_write  trace span lost / torn; the
//                                           histogram sample still lands
//   net.frame_torn  fail                    batch frame corrupted in flight
//                                           (CRC mismatch → NACK → resend)
//   net.conn_reset  close                   server resets the connection
//                                           after admission, before the ack
//   net.slow_peer   fail                    admission sheds the batch
//                                           (journaled `shed`, degraded=1)
//   net.dup_batch   fail                    client retransmits an acked
//                                           batch (must dedup server-side)
//   net.reorder     fail                    client delays a batch past its
//                                           successor (reorder buffer heals)
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace vapro::testing {

enum class FaultAction : std::uint8_t {
  kNone,        // no fault at this hit
  kFail,        // the operation reports failure (ENOSPC, EAGAIN, ...)
  kDrop,        // the payload is silently lost
  kShortWrite,  // only a prefix of the payload reaches the medium
  kClose,       // the peer vanishes mid-operation
  kThrow,       // the callee throws (sites wrap this via throw_if)
};

const char* fault_action_name(FaultAction a);
// Parses an action token from plan text; false on unknown token.
bool parse_fault_action(const std::string& token, FaultAction* out);

// One site rule.  Triggers compose with OR; every trigger is evaluated
// against the site's own hit counter, so interleaving with other sites
// never changes when a rule fires.
struct FaultRule {
  std::string site;
  FaultAction action = FaultAction::kNone;
  std::uint64_t on = 0;       // fire on exactly the Nth hit (1-based)
  std::uint64_t every = 0;    // fire on every Nth hit
  double prob = 0.0;          // seeded per-hit probability
  std::uint64_t limit = ~std::uint64_t{0};  // max firings of this rule
};

struct FaultPlan {
  std::uint64_t seed = 0;
  std::vector<FaultRule> rules;

  bool empty() const { return rules.empty(); }
  // Canonical text form; parse(to_string()) round-trips.
  std::string to_string() const;

  // Parses plan text / a plan file.  On failure returns false and sets
  // `error` to a line-numbered message.
  static bool parse(const std::string& text, FaultPlan* out,
                    std::string* error);
  static bool parse_file(const std::string& path, FaultPlan* out,
                         std::string* error);
};

// Thrown by FaultInjector::throw_if for kThrow actions, so hardened sites
// can prove they survive a throwing callee.
struct FaultInjected : std::runtime_error {
  explicit FaultInjected(const std::string& site)
      : std::runtime_error("injected fault at " + site) {}
};

// Process-wide injection registry.  arm() installs a plan; every
// VAPRO_FAULT(site) consults it.  Per-(site, rule) counters are seeded and
// serialized, so a plan's firing schedule is a pure function of the hit
// sequence each site observes.
class FaultInjector {
 public:
  static FaultInjector& instance();

  void arm(FaultPlan plan);
  void disarm();
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  // Records a hit at `site` and returns the action to apply now.
  FaultAction hit(const char* site);

  // Bookkeeping for tests and the stress fuzzer's report.
  std::uint64_t hits(const std::string& site) const;
  std::uint64_t injected(const std::string& site) const;
  std::uint64_t injected_total() const;
  // site → injected count, sorted by site name (deterministic output).
  std::vector<std::pair<std::string, std::uint64_t>> injected_by_site() const;

  // Convenience for sites whose fault is "the callee throws".
  static void throw_if(FaultAction a, const char* site) {
    if (a == FaultAction::kThrow) throw FaultInjected(site);
  }

 private:
  FaultInjector() = default;

  struct RuleState {
    FaultRule rule;
    std::uint64_t fired = 0;
    std::uint64_t rng = 0;  // per-rule xorshift state, seeded from the plan
  };
  struct SiteState {
    std::uint64_t hits = 0;
    std::uint64_t injected = 0;
    std::vector<RuleState*> rules;
  };

  std::atomic<bool> armed_{false};
  mutable std::mutex mu_;
  std::vector<RuleState> rule_states_;
  std::unordered_map<std::string, SiteState> sites_;
};

// RAII plan installation for tests: arms on construction, disarms on
// destruction (also on early return / thrown assertion).
class FaultScope {
 public:
  explicit FaultScope(FaultPlan plan) {
    FaultInjector::instance().arm(std::move(plan));
  }
  ~FaultScope() { FaultInjector::instance().disarm(); }
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;
};

inline FaultAction fault_hit(const char* site) {
  FaultInjector& inj = FaultInjector::instance();
  if (!inj.armed()) return FaultAction::kNone;
  return inj.hit(site);
}

// Whether the hooks are compiled in at all (a build-time capability, not
// whether a plan is currently armed).  Health endpoints report it so an
// operator can tell a hardened production binary from a test build.
constexpr bool fault_injection_compiled() {
#if defined(VAPRO_FAULT_INJECTION) && VAPRO_FAULT_INJECTION
  return true;
#else
  return false;
#endif
}

}  // namespace vapro::testing

// The hook macro.  Hazard sites switch on its value; with the hooks
// compiled out it is a constant and the switch folds away entirely.
#if defined(VAPRO_FAULT_INJECTION) && VAPRO_FAULT_INJECTION
#define VAPRO_FAULT(site) (::vapro::testing::fault_hit(site))
#else
#define VAPRO_FAULT(site) (::vapro::testing::FaultAction::kNone)
#endif
