#include "src/obs/metrics.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace vapro::obs {

static_assert(HistogramSnapshot::kBuckets == Histogram::kBuckets,
              "snapshot bucket layout must mirror the live histogram");

namespace {

std::size_t bucket_index(double seconds) {
  if (seconds < Histogram::kMinSeconds) return 0;
  const double ratio = seconds / Histogram::kMinSeconds;
  const auto idx = static_cast<std::size_t>(std::log2(ratio)) + 1;
  return idx >= Histogram::kBuckets ? Histogram::kBuckets - 1 : idx;
}

std::string fmt_seconds(double s) {
  char buf[32];
  if (s < 1e-3)
    std::snprintf(buf, sizeof(buf), "%.1fus", s * 1e6);
  else if (s < 1.0)
    std::snprintf(buf, sizeof(buf), "%.2fms", s * 1e3);
  else
    std::snprintf(buf, sizeof(buf), "%.3fs", s);
  return buf;
}

void append_double(std::ostringstream& oss, double v) {
  if (std::isfinite(v)) {
    oss << v;
  } else {
    oss << "null";
  }
}

// Shared by Histogram::quantile (atomic loads) and HistogramSnapshot
// (plain values): nearest-rank walk, linear interpolation in the owning
// bucket.
double quantile_over(const std::uint64_t* buckets, std::uint64_t n, double q) {
  if (n == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double rank = q * static_cast<double>(n);
  double seen = 0.0;
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    const auto in_bucket = static_cast<double>(buckets[i]);
    if (in_bucket == 0.0) continue;
    if (seen + in_bucket >= rank) {
      const double frac = (rank - seen) / in_bucket;
      return Histogram::bucket_lo(i) +
             frac * (Histogram::bucket_hi(i) - Histogram::bucket_lo(i));
    }
    seen += in_bucket;
  }
  return Histogram::bucket_hi(Histogram::kBuckets - 1);
}

}  // namespace

double Histogram::bucket_lo(std::size_t i) {
  return i == 0 ? 0.0 : kMinSeconds * std::pow(2.0, static_cast<double>(i - 1));
}

double Histogram::bucket_hi(std::size_t i) {
  return kMinSeconds * std::pow(2.0, static_cast<double>(i));
}

void Histogram::record(double seconds) {
  if (seconds < 0.0) seconds = 0.0;
  buckets_[bucket_index(seconds)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + seconds,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::quantile(double q) const {
  return snapshot().quantile(q);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  for (std::size_t i = 0; i < kBuckets; ++i)
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  s.count = count_.load(std::memory_order_relaxed);
  s.sum_seconds = sum_.load(std::memory_order_relaxed);
  return s;
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  for (std::size_t i = 0; i < kBuckets; ++i) buckets[i] += other.buckets[i];
  count += other.count;
  sum_seconds += other.sum_seconds;
}

double HistogramSnapshot::quantile(double q) const {
  return quantile_over(buckets.data(), count, q);
}

double ScopedTimer::stop() {
  if (stopped_ || (!h_ && !also_ns_)) return 0.0;
  stopped_ = true;
  const auto dt = std::chrono::steady_clock::now() - t0_;
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count();
  const double seconds = static_cast<double>(ns) * 1e-9;
  if (h_) h_->record(seconds);
  if (also_ns_)
    also_ns_->fetch_add(static_cast<std::uint64_t>(ns),
                        std::memory_order_relaxed);
  return seconds;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream oss;
  oss << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) oss << ',';
    first = false;
    oss << '"' << name << "\":" << c->value();
  }
  oss << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) oss << ',';
    first = false;
    oss << '"' << name << "\":";
    append_double(oss, g->value());
  }
  oss << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) oss << ',';
    first = false;
    oss << '"' << name << "\":{\"count\":" << h->count() << ",\"sum_seconds\":";
    append_double(oss, h->sum_seconds());
    oss << ",\"mean_seconds\":";
    append_double(oss, h->mean_seconds());
    oss << ",\"p50\":";
    append_double(oss, h->quantile(0.50));
    oss << ",\"p95\":";
    append_double(oss, h->quantile(0.95));
    oss << ",\"p99\":";
    append_double(oss, h->quantile(0.99));
    oss << '}';
  }
  oss << "}}";
  return oss.str();
}

std::vector<std::pair<std::string, std::uint64_t>>
MetricsRegistry::counter_values() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  return out;
}

std::vector<std::pair<std::string, double>> MetricsRegistry::gauge_values()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g->value());
  return out;
}

std::vector<std::pair<std::string, const Histogram*>>
MetricsRegistry::histogram_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, const Histogram*>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) out.emplace_back(name, h.get());
  return out;
}

std::vector<MetricsRegistry::Row> MetricsRegistry::rows() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Row> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_)
    out.push_back({name, "counter", std::to_string(c->value())});
  for (const auto& [name, g] : gauges_) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", g->value());
    out.push_back({name, "gauge", buf});
  }
  for (const auto& [name, h] : histograms_) {
    std::ostringstream v;
    v << "n=" << h->count() << " mean=" << fmt_seconds(h->mean_seconds())
      << " p50=" << fmt_seconds(h->quantile(0.5))
      << " p95=" << fmt_seconds(h->quantile(0.95))
      << " p99=" << fmt_seconds(h->quantile(0.99));
    out.push_back({name, "histogram", v.str()});
  }
  return out;
}

}  // namespace vapro::obs
