// SpanScope — RAII pipeline-stage spans with causal links.
//
// One span covers one stage of one window (ingest → drain → cluster →
// region-grow → diagnose → journal/export).  On destruction it emits a
// complete ('X') event into the Chrome trace recorder and records the
// elapsed time into a per-stage latency histogram; either target may be
// null, making that half free.  Causality across threads is expressed with
// flow arrows: the producer calls flow_out() (a 's' event at the handoff
// instant) and hands the returned id to the consumer, whose span emits the
// matching 'f' event at its own start — in Perfetto the queue hop between
// the drain thread and the analysis worker becomes a visible arrow whose
// length IS the handoff latency.
//
// Emission passes through the `obs.span` fault site: a dropped span (kFail/
// kDrop) loses its trace event but never its histogram sample, and a torn
// span (kShortWrite) is emitted with a "torn":1 arg and truncated duration
// — in every case the trace file stays valid JSON and no lock is held
// across the journal, so a failing span can neither corrupt the trace nor
// deadlock anything.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/metrics.hpp"
#include "src/obs/trace_export.hpp"

namespace vapro::obs {

class SpanScope {
 public:
  struct Options {
    TraceRecorder* trace = nullptr;  // null: no trace emission
    Histogram* hist = nullptr;       // null: no histogram sample
    Counter* dropped = nullptr;      // counts obs.span-dropped emissions
    std::uint64_t flow_in = 0;       // consume a producer's flow id
  };

  SpanScope(Options opts, std::string name, std::string category,
            std::vector<TraceArg> args = {});
  ~SpanScope() { finish(); }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  void add_arg(TraceArg a) {
    if (opts_.trace) args_.push_back(std::move(a));
  }

  // Starts an outgoing flow at the current instant and returns its id for
  // the consumer's Options::flow_in (0 when tracing is off).
  std::uint64_t flow_out(const std::string& name);

  // Ends the span now; the destructor then does nothing.  Returns the
  // elapsed seconds (also what went into the histogram).
  double finish();

 private:
  Options opts_;
  std::string name_;
  std::string category_;
  std::vector<TraceArg> args_;
  std::uint64_t t0_ns_ = 0;
  std::chrono::steady_clock::time_point t0_{};
  bool finished_ = false;
};

}  // namespace vapro::obs
