// Schema-versioned JSONL event journal — Vapro's machine-readable record
// of *what it concluded*, not just what it measured.
//
// One line per event: variance regions located, rare-path findings,
// progressive-diagnosis verdicts, PMU reprograms, per-window detection
// health, and fired alerts.  Events carry monotonic sequence numbers so a
// consumer can detect truncation; the first line of a journal file is a
// header object naming the schema ("vapro.journal") and its version, and
// the reader rejects any mismatch instead of guessing.
//
// Field values are serialized exactly once, at emission (numbers via
// %.17g so doubles round-trip bit-exactly); the reader preserves the raw
// value text, which is what makes write → read → rewrite byte-identical
// and lets `vapro_replay --from-journal` reproduce the original run's
// detection/diagnosis summaries character for character.
//
// Sinks observe the event stream live: JournalFileSink appends JSONL
// (flushed on every window boundary by ObsContext), and the alert engine
// (alerts.hpp) subscribes as just another sink.  Emission from inside a
// sink callback (e.g. an alert recording itself as an event) is legal —
// the journal queues re-entrant events and drains them after the current
// dispatch, preserving sequence order without recursive locking.
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace vapro::obs {

inline constexpr const char* kJournalSchemaName = "vapro.journal";
inline constexpr int kJournalSchemaVersion = 1;

// One "key":value pair; `json` is already valid JSON text.  Build with the
// typed factories so numbers are formatted consistently (%.17g).
struct JournalField {
  std::string key;
  std::string json;

  static JournalField num(const std::string& key, double v);
  static JournalField num(const std::string& key, std::uint64_t v);
  static JournalField num(const std::string& key, std::int64_t v);
  static JournalField str(const std::string& key, const std::string& v);
  static JournalField boolean(const std::string& key, bool v);
};

struct JournalEvent {
  std::uint64_t seq = 0;        // assigned by the journal, monotonic from 0
  std::string type;             // e.g. "variance_region", "rare_finding"
  std::int64_t window = -1;     // analysis-window ordinal; -1 = not tied
  double virtual_time = 0.0;    // simulator time associated with the event
  std::vector<JournalField> fields;

  // One JSON object on one line, no trailing newline.
  std::string to_json_line() const;

  // --- field accessors (for consumers; raw text stays untouched) ---
  bool has(const std::string& key) const;
  // Numeric field value; `fallback` when absent or non-numeric.
  double number(const std::string& key, double fallback = 0.0) const;
  // Unescaped string field value; empty when absent or not a string.
  std::string str(const std::string& key) const;
  bool flag(const std::string& key, bool fallback = false) const;
};

class JournalSink {
 public:
  virtual ~JournalSink() = default;
  virtual void on_event(const JournalEvent& event) = 0;
  // Window boundary: buffered sinks should push bytes to durable storage.
  virtual void flush() {}
};

// Assigns sequence numbers and fans events out to sinks.  All emission is
// serialized; re-entrant emits from inside a sink are queued and
// dispatched after the current event, in order.
class Journal {
 public:
  // Borrowed sink; must outlive the journal's use.
  void add_sink(JournalSink* sink);

  // Fills in seq and dispatches.  Returns the assigned sequence number.
  std::uint64_t emit(JournalEvent event);
  // Convenience: build-and-emit.
  std::uint64_t emit(const std::string& type, std::int64_t window,
                     double virtual_time, std::vector<JournalField> fields);

  void flush();
  std::uint64_t events_emitted() const;

 private:
  void dispatch_locked(const JournalEvent& event);

  // Recursive: a sink may emit() from inside its on_event callback (the
  // alert engine journaling a fired alert).  The re-entrant frame takes
  // the lock again on the same thread, sees dispatching_, and queues.
  mutable std::recursive_mutex mu_;
  std::uint64_t next_seq_ = 0;
  bool dispatching_ = false;
  std::vector<JournalEvent> pending_;
  std::vector<JournalSink*> sinks_;
};

// Appends events as JSONL; writes the schema header line on open and
// creates missing parent directories instead of failing.
class JournalFileSink final : public JournalSink {
 public:
  explicit JournalFileSink(const std::string& path);
  bool ok() const { return ok_; }
  const std::string& path() const { return path_; }

  void on_event(const JournalEvent& event) override;
  void flush() override;

 private:
  std::string path_;
  std::ofstream out_;
  bool ok_ = false;
  std::mutex mu_;
};

// --- reader API -----------------------------------------------------------

struct JournalReadResult {
  bool ok = false;
  std::string error;            // set when !ok (schema mismatch, bad JSON…)
  int schema_version = 0;       // from the header line
  std::vector<JournalEvent> events;
};

// Parses a journal file/stream.  Fails (ok=false) on: missing or malformed
// header, schema name/version mismatch, a line that is not a flat JSON
// object of scalars, or a non-monotonic sequence number.
JournalReadResult read_journal(const std::string& path);
JournalReadResult parse_journal(std::istream& in);

// JSON string escaping shared by journal/exposition/alert serializers.
std::string journal_json_escape(const std::string& s);

}  // namespace vapro::obs
