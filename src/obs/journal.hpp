// Schema-versioned JSONL event journal — Vapro's machine-readable record
// of *what it concluded*, not just what it measured.
//
// One line per event: variance regions located, rare-path findings,
// progressive-diagnosis verdicts, PMU reprograms, per-window detection
// health, and fired alerts.  Events carry monotonic sequence numbers so a
// consumer can detect truncation; the first line of a journal file is a
// header object naming the schema ("vapro.journal") and its version, and
// the reader rejects any mismatch instead of guessing.
//
// Field values are serialized exactly once, at emission (numbers via
// %.17g so doubles round-trip bit-exactly); the reader preserves the raw
// value text, which is what makes write → read → rewrite byte-identical
// and lets `vapro_replay --from-journal` reproduce the original run's
// detection/diagnosis summaries character for character.
//
// Sinks observe the event stream live: JournalFileSink appends JSONL
// (flushed on every window boundary by ObsContext), and the alert engine
// (alerts.hpp) subscribes as just another sink.  Emission from inside a
// sink callback (e.g. an alert recording itself as an event) is legal —
// the journal queues re-entrant events and drains them after the current
// dispatch, preserving sequence order without recursive locking.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace vapro::obs {

inline constexpr const char* kJournalSchemaName = "vapro.journal";
// v1: detection/diagnosis conclusion events.  v2 adds the "ground_truth"
// event type (injected noise windows/ranks/factor classes — see
// src/obs/quality.hpp) and the "quality" / "quality_cell" scoreboard
// events.  v3 adds the ingest-plane degradation events: "shed" (an
// admitted-then-evicted or refused batch, with tenant/seq/fragment
// accounting — see src/net/session.hpp) and "net_drop" (a batch refused
// before admission, e.g. outside the reorder window).  Writers stamp the
// current version; the reader accepts any version in
// [kJournalMinReaderVersion, kJournalSchemaVersion] — older files simply
// contain none of the newer event types.
inline constexpr int kJournalSchemaVersion = 3;
inline constexpr int kJournalMinReaderVersion = 1;

// One "key":value pair; `json` is already valid JSON text.  Build with the
// typed factories so numbers are formatted consistently (%.17g).
struct JournalField {
  std::string key;
  std::string json;

  static JournalField num(const std::string& key, double v);
  static JournalField num(const std::string& key, std::uint64_t v);
  static JournalField num(const std::string& key, std::int64_t v);
  static JournalField str(const std::string& key, const std::string& v);
  static JournalField boolean(const std::string& key, bool v);
};

struct JournalEvent {
  std::uint64_t seq = 0;        // assigned by the journal, monotonic from 0
  std::string type;             // e.g. "variance_region", "rare_finding"
  std::int64_t window = -1;     // analysis-window ordinal; -1 = not tied
  double virtual_time = 0.0;    // simulator time associated with the event
  std::vector<JournalField> fields;

  // One JSON object on one line, no trailing newline.
  std::string to_json_line() const;

  // --- field accessors (for consumers; raw text stays untouched) ---
  bool has(const std::string& key) const;
  // Numeric field value; `fallback` when absent or non-numeric.
  double number(const std::string& key, double fallback = 0.0) const;
  // Unescaped string field value; empty when absent or not a string.
  std::string str(const std::string& key) const;
  bool flag(const std::string& key, bool fallback = false) const;
};

class JournalSink {
 public:
  virtual ~JournalSink() = default;
  virtual void on_event(const JournalEvent& event) = 0;
  // Window boundary: buffered sinks should push bytes to durable storage.
  virtual void flush() {}
};

// Assigns sequence numbers and fans events out to sinks.  All emission is
// serialized; re-entrant emits from inside a sink are queued and
// dispatched after the current event, in order.
class Journal {
 public:
  // Borrowed sink; must outlive the journal's use.
  void add_sink(JournalSink* sink);

  // Fills in seq and dispatches.  Returns the assigned sequence number.
  std::uint64_t emit(JournalEvent event);
  // Convenience: build-and-emit.
  std::uint64_t emit(const std::string& type, std::int64_t window,
                     double virtual_time, std::vector<JournalField> fields);

  void flush();
  std::uint64_t events_emitted() const;

 private:
  void dispatch_locked(const JournalEvent& event);

  // Recursive: a sink may emit() from inside its on_event callback (the
  // alert engine journaling a fired alert).  The re-entrant frame takes
  // the lock again on the same thread, sees dispatching_, and queues.
  mutable std::recursive_mutex mu_;
  std::uint64_t next_seq_ = 0;
  bool dispatching_ = false;
  std::vector<JournalEvent> pending_;
  std::vector<JournalSink*> sinks_;
};

// Appends events as JSONL; writes the schema header line on open and
// creates missing parent directories instead of failing.
//
// Crash durability: a writer killed mid-line leaves a torn final line.
// Opening the same path in kAppend mode recovers — the partial tail is
// truncated away and appending resumes after the last complete line (the
// header is only written when the file is new/empty).  rotate() makes the
// finished segment durable (flush + fsync) before switching to a fresh
// file, so a rotation boundary never loses acknowledged events.
//
// Fault sites (src/testing): "journal.write" honors short_write (torn
// line, sink stops as a crashed writer would) and fail (ENOSPC: the line
// is dropped and counted, seq numbers keep a gap); "journal.rotate"
// honors fail (the new segment cannot be created; the old file stays
// active and rotate() returns false).
class JournalFileSink final : public JournalSink {
 public:
  enum class OpenMode {
    kTruncate,  // fresh file, write the schema header
    kAppend,    // reopen: recover a torn tail, append after the last line
  };

  explicit JournalFileSink(const std::string& path,
                           OpenMode mode = OpenMode::kTruncate);
  ~JournalFileSink() override;
  bool ok() const { return ok_; }
  const std::string& path() const { return path_; }

  // Flushes + fsyncs the current segment, then starts a fresh file at
  // `new_path` (with a new header).  On failure the current segment stays
  // active and false is returned.
  bool rotate(const std::string& new_path);

  std::uint64_t lines_written() const { return lines_written_; }
  // Writes dropped or torn by injected/real write errors.
  std::uint64_t write_faults() const { return write_faults_; }
  // Bytes of torn final line discarded by kAppend recovery (0 = clean).
  std::uint64_t recovered_tail_bytes() const { return recovered_tail_bytes_; }

  void on_event(const JournalEvent& event) override;
  void flush() override;

 private:
  bool open_file(const std::string& path, OpenMode mode);
  void sync_locked();

  std::string path_;
  std::FILE* file_ = nullptr;
  bool ok_ = false;
  std::uint64_t lines_written_ = 0;
  std::uint64_t write_faults_ = 0;
  std::uint64_t recovered_tail_bytes_ = 0;
  std::mutex mu_;
};

// --- reader API -----------------------------------------------------------

struct JournalReadOptions {
  // A writer killed mid-line leaves a torn final line.  With this set the
  // reader accepts such a journal: the unparseable FINAL line is dropped,
  // every complete event before it is returned, and `truncated_tail` is
  // reported.  Corruption anywhere but the final line stays fatal.
  bool recover_truncated_tail = false;
};

struct JournalReadResult {
  bool ok = false;
  std::string error;            // set when !ok (schema mismatch, bad JSON…)
  int schema_version = 0;       // from the header line
  bool truncated_tail = false;  // a torn final line/frame was dropped
  // Events removed by offline compaction, from the `dropped_events` header
  // field (summed across segments).  Replay adds them back into its event
  // count so a compacted journal renders identically to the original.
  std::uint64_t compacted_dropped = 0;
  std::size_t segments = 1;     // files merged (>1 only for directory reads)
  std::vector<JournalEvent> events;
};

// Parses a journal file/stream.  Fails (ok=false) on: missing or malformed
// header, schema name/version mismatch, a line that is not a flat JSON
// object of scalars, or a non-monotonic sequence number.  Sequence numbers
// may be sparse (a writer may drop lines on ENOSPC) but never reorder.
//
// Both journal formats are accepted: JSONL (first byte '{') and the
// length-prefixed binary segment framing from src/obs/journal_segment.hpp
// (first bytes "VJS1") — the reader auto-detects.  When `path` names a
// directory, the call forwards to read_journal_dir (all segments, one
// stream).
JournalReadResult read_journal(const std::string& path,
                               JournalReadOptions opts = {});
JournalReadResult parse_journal(std::istream& in, JournalReadOptions opts = {});

// JSON string escaping shared by journal/exposition/alert serializers.
std::string journal_json_escape(const std::string& s);

}  // namespace vapro::obs
