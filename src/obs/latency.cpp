#include "src/obs/latency.hpp"

#include <cstdio>
#include <sstream>

namespace vapro::obs {

namespace {

// %.17g matches JournalField::num, so a double that went through the
// journal renders the same bytes live and on replay.
std::string fmt_num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string fmt_ms(double seconds) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e3);
  return buf;
}

void append_record_json(std::ostringstream& oss,
                        const WindowLatencyRecord& r) {
  oss << "{\"window\":" << r.window
      << ",\"virtual_time\":" << fmt_num(r.virtual_time);
  for (std::size_t s = 0; s < kLatencyStageCount; ++s)
    oss << ",\"" << kLatencyStageNames[s]
        << "_seconds\":" << fmt_num(r.stage_seconds[s]);
  oss << ",\"bound_by\":\"" << r.bound_by()
      << "\",\"bound_seconds\":" << fmt_num(r.bound_seconds())
      << ",\"total_seconds\":" << fmt_num(r.total_seconds()) << '}';
}

}  // namespace

double WindowLatencyRecord::total_seconds() const {
  double total = 0.0;
  for (double s : stage_seconds) total += s;
  return total;
}

std::size_t WindowLatencyRecord::bound_stage() const {
  std::size_t best = 0;
  for (std::size_t s = 1; s < kLatencyStageCount; ++s)
    if (stage_seconds[s] > stage_seconds[best]) best = s;
  return best;
}

void CriticalPathTracker::record(const WindowLatencyRecord& r) {
  std::lock_guard<std::mutex> lock(mu_);
  recent_.push_back(r);
  while (recent_.size() > keep_) recent_.pop_front();
  ++sum_.windows;
  sum_.total_seconds += r.total_seconds();
  for (std::size_t s = 0; s < kLatencyStageCount; ++s)
    sum_.stage_seconds[s] += r.stage_seconds[s];
  ++sum_.bound_windows[r.bound_stage()];
}

std::size_t CriticalPathTracker::Summary::dominant_stage() const {
  if (windows == 0) return kLatencyStageCount;
  std::size_t best = 0;
  for (std::size_t s = 1; s < kLatencyStageCount; ++s)
    if (bound_windows[s] > bound_windows[best]) best = s;
  return best;
}

std::vector<WindowLatencyRecord> CriticalPathTracker::recent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {recent_.begin(), recent_.end()};
}

CriticalPathTracker::Summary CriticalPathTracker::summary() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

std::string render_latency_json(const std::vector<WindowLatencyRecord>& recent,
                                const CriticalPathTracker::Summary& sum) {
  std::ostringstream oss;
  oss << "{\"windows\":" << sum.windows
      << ",\"total_seconds\":" << fmt_num(sum.total_seconds) << ",\"recent\":[";
  bool first = true;
  for (const WindowLatencyRecord& r : recent) {
    if (!first) oss << ',';
    first = false;
    append_record_json(oss, r);
  }
  oss << "]}";
  return oss.str();
}

std::string render_critical_path_json(
    const std::vector<WindowLatencyRecord>& recent,
    const CriticalPathTracker::Summary& sum) {
  std::ostringstream oss;
  const std::size_t dom = sum.dominant_stage();
  oss << "{\"windows\":" << sum.windows << ",\"dominant\":";
  if (dom < kLatencyStageCount)
    oss << '"' << kLatencyStageNames[dom] << '"';
  else
    oss << "null";
  oss << ",\"stages\":[";
  for (std::size_t s = 0; s < kLatencyStageCount; ++s) {
    if (s) oss << ',';
    oss << "{\"stage\":\"" << kLatencyStageNames[s]
        << "\",\"seconds\":" << fmt_num(sum.stage_seconds[s])
        << ",\"bound_windows\":" << sum.bound_windows[s] << '}';
  }
  oss << "],\"recent\":[";
  bool first = true;
  for (const WindowLatencyRecord& r : recent) {
    if (!first) oss << ',';
    first = false;
    oss << "{\"window\":" << r.window << ",\"bound_by\":\"" << r.bound_by()
        << "\",\"bound_seconds\":" << fmt_num(r.bound_seconds()) << '}';
  }
  oss << "]}";
  return oss.str();
}

std::string render_critical_path_table(
    const std::vector<WindowLatencyRecord>& recent,
    const CriticalPathTracker::Summary& sum) {
  std::ostringstream oss;
  oss << "critical path (" << recent.size() << " recent of " << sum.windows
      << " windows)\n";
  if (sum.windows == 0) {
    oss << "  (no windows analyzed)\n";
    return oss.str();
  }
  char line[160];
  std::snprintf(line, sizeof(line), "  %8s  %-10s  %12s  %12s\n", "window",
                "bound_by", "bound_ms", "total_ms");
  oss << line;
  for (const WindowLatencyRecord& r : recent) {
    std::snprintf(line, sizeof(line), "  %8lld  %-10s  %12s  %12s\n",
                  static_cast<long long>(r.window), r.bound_by(),
                  fmt_ms(r.bound_seconds()).c_str(),
                  fmt_ms(r.total_seconds()).c_str());
    oss << line;
  }
  const std::size_t dom = sum.dominant_stage();
  oss << "  stage totals:";
  for (std::size_t s = 0; s < kLatencyStageCount; ++s) {
    oss << (s ? " | " : " ") << kLatencyStageNames[s] << ' '
        << fmt_ms(sum.stage_seconds[s]) << "ms (" << sum.bound_windows[s]
        << " bound)";
  }
  oss << "\n  dominant stage: "
      << (dom < kLatencyStageCount ? kLatencyStageNames[dom] : "none") << '\n';
  return oss.str();
}

void journal_window_latency(Journal& journal, const WindowLatencyRecord& r) {
  std::vector<JournalField> fields;
  fields.reserve(kLatencyStageCount + 2);
  for (std::size_t s = 0; s < kLatencyStageCount; ++s)
    fields.push_back(JournalField::num(
        std::string(kLatencyStageNames[s]) + "_seconds", r.stage_seconds[s]));
  fields.push_back(JournalField::str("bound_by", r.bound_by()));
  fields.push_back(JournalField::num("bound_seconds", r.bound_seconds()));
  journal.emit("window_latency", r.window, r.virtual_time, std::move(fields));
}

void journal_critical_path(Journal& journal, std::int64_t last_window,
                           double virtual_time,
                           const CriticalPathTracker::Summary& sum) {
  std::vector<JournalField> fields;
  fields.push_back(JournalField::num("windows", sum.windows));
  fields.push_back(JournalField::num("total_seconds", sum.total_seconds));
  for (std::size_t s = 0; s < kLatencyStageCount; ++s) {
    fields.push_back(JournalField::num(
        std::string(kLatencyStageNames[s]) + "_seconds",
        sum.stage_seconds[s]));
    fields.push_back(JournalField::num(
        std::string(kLatencyStageNames[s]) + "_bound_windows",
        sum.bound_windows[s]));
  }
  const std::size_t dom = sum.dominant_stage();
  fields.push_back(JournalField::str(
      "dominant", dom < kLatencyStageCount ? kLatencyStageNames[dom] : ""));
  journal.emit("critical_path", last_window, virtual_time, std::move(fields));
}

WindowLatencyRecord window_latency_from_event(const JournalEvent& event) {
  WindowLatencyRecord r;
  r.window = event.window;
  r.virtual_time = event.virtual_time;
  for (std::size_t s = 0; s < kLatencyStageCount; ++s)
    r.stage_seconds[s] =
        event.number(std::string(kLatencyStageNames[s]) + "_seconds");
  return r;
}

}  // namespace vapro::obs
