// Per-window critical-path attribution — the self-diagnosis reducer.
//
// Every analyzed window yields one WindowLatencyRecord: where its wall
// time went across the canonical pipeline stages (queue wait → drain → STG
// growth → clustering → normalization → heat-map deposit → diagnosis →
// publish/journal).  The record's verdict is bound_by(): "window N was
// bound by stage X for Y ms", with ties broken toward the earlier stage in
// canonical order so attribution is deterministic.
//
// CriticalPathTracker folds records into (a) a bounded ring of recent
// windows (served raw at /v1/latency) and (b) cumulative per-stage totals
// plus bound-window counts (served at /v1/critical_path).  Records are
// journaled as `window_latency` events and the final totals as one
// `critical_path` event — both new (reader-skippable) v2 event types — so
// `vapro_replay --from-journal` re-renders the same tables byte-for-byte:
// the shared renderers below are the single source of the output text, and
// the journal's %.17g round-trip keeps every double bit-exact.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/journal.hpp"

namespace vapro::obs {

// Canonical stage order.  Earlier stage wins ties in bound_stage().
inline constexpr std::size_t kLatencyStageCount = 8;
inline constexpr const char* kLatencyStageNames[kLatencyStageCount] = {
    "queue_wait", "drain",   "stg",      "cluster",
    "normalize",  "deposit", "diagnose", "publish"};

struct WindowLatencyRecord {
  std::int64_t window = 0;
  double virtual_time = 0.0;
  // Stage seconds, indexed per kLatencyStageNames.
  std::array<double, kLatencyStageCount> stage_seconds{};

  double total_seconds() const;
  // Index of the dominant stage (first maximum in canonical order).
  std::size_t bound_stage() const;
  const char* bound_by() const { return kLatencyStageNames[bound_stage()]; }
  double bound_seconds() const { return stage_seconds[bound_stage()]; }
};

class CriticalPathTracker {
 public:
  static constexpr std::size_t kDefaultKeep = 64;
  explicit CriticalPathTracker(std::size_t keep = kDefaultKeep)
      : keep_(keep == 0 ? 1 : keep) {}

  // Thread-safe; records arrive in window order (single analysis worker).
  void record(const WindowLatencyRecord& r);

  struct Summary {
    std::uint64_t windows = 0;
    double total_seconds = 0.0;
    std::array<double, kLatencyStageCount> stage_seconds{};
    // How many windows each stage dominated.
    std::array<std::uint64_t, kLatencyStageCount> bound_windows{};
    // Stage that dominated the most windows (ties → earlier stage);
    // kLatencyStageCount when no window was recorded yet.
    std::size_t dominant_stage() const;
  };

  // Last `keep` records, oldest first.
  std::vector<WindowLatencyRecord> recent() const;
  Summary summary() const;

 private:
  const std::size_t keep_;
  mutable std::mutex mu_;
  std::deque<WindowLatencyRecord> recent_;
  Summary sum_;
};

// --- shared renderers (live endpoints AND journal replay) -----------------

// /v1/latency: {"windows":N,"recent":[{...one object per record...}]}.
std::string render_latency_json(const std::vector<WindowLatencyRecord>& recent,
                                const CriticalPathTracker::Summary& sum);
// /v1/critical_path: per-stage totals, bound-window counts, the dominant
// stage, and one {"window":n,"bound_by":...} verdict per recent window.
std::string render_critical_path_json(
    const std::vector<WindowLatencyRecord>& recent,
    const CriticalPathTracker::Summary& sum);
// Human table for reports: one "window N was bound by X for Y ms" line per
// recent record plus the per-stage totals footer.
std::string render_critical_path_table(
    const std::vector<WindowLatencyRecord>& recent,
    const CriticalPathTracker::Summary& sum);

// --- journal round-trip ---------------------------------------------------

// One `window_latency` event carrying the full record.
void journal_window_latency(Journal& journal, const WindowLatencyRecord& r);
// One terminal `critical_path` event carrying the summary totals.
void journal_critical_path(Journal& journal, std::int64_t last_window,
                           double virtual_time,
                           const CriticalPathTracker::Summary& sum);
// Folds a `window_latency` event back into a record (replay side).
WindowLatencyRecord window_latency_from_event(const JournalEvent& event);

}  // namespace vapro::obs
