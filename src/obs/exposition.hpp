// Live exposition: a tiny embedded HTTP server (plain POSIX sockets, no
// dependencies) so an operator can watch a production run instead of
// waiting for write-at-exit files.
//
// One background thread accepts connections on a loopback (by default)
// listen socket and answers GET requests, one per connection
// (HTTP/1.1 with Connection: close — every Prometheus scraper and curl
// understands this).  Routes are a name → handler registry: ObsContext
// registers /metrics (Prometheus text format rendered on demand from the
// MetricsRegistry) and /healthz; AnalysisServer/ServerGroup add
// /v1/heatmap and /v1/variance JSON snapshots.  Handlers run on the serve
// thread, so they must do their own synchronization with the analysis
// thread (the core routes lock the owning server's live mutex).
//
// Port 0 binds an ephemeral port; port() reports the real one.  start()
// returns false with a readable message when the port is taken — callers
// surface that instead of crashing mid-run.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/metrics.hpp"

namespace vapro::obs {

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

class ExpositionServer {
 public:
  ExpositionServer() = default;
  ~ExpositionServer() { stop(); }
  ExpositionServer(const ExpositionServer&) = delete;
  ExpositionServer& operator=(const ExpositionServer&) = delete;

  // Binds 127.0.0.1:`port` (0 = ephemeral) and starts the serve thread.
  // On failure returns false and, when `error` is non-null, a human
  // message (e.g. "port 9100 in use: Address already in use").
  bool start(int port, std::string* error = nullptr);
  void stop();

  bool running() const { return listen_fd_ >= 0; }
  int port() const { return port_; }
  std::uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }
  // Connections dropped at accept time (injected "expo.accept" faults or
  // real transient accept errors) without wedging the serve loop.
  std::uint64_t accept_faults() const {
    return accept_faults_.load(std::memory_order_relaxed);
  }
  // Responses whose send failed because the peer disconnected mid-response
  // (EPIPE/ECONNRESET — e.g. a scraper that hung up).  A counted drop, not
  // a crash: SIGPIPE is ignored at start() and sends use MSG_NOSIGNAL.
  std::uint64_t send_drops() const {
    return send_drops_.load(std::memory_order_relaxed);
  }

  using Handler = std::function<HttpResponse()>;
  // Registers (or replaces) a GET route.  remove_route is safe while the
  // server runs: it synchronizes with any in-flight handler invocation, so
  // after it returns the handler will never be called again.
  void add_route(const std::string& path, Handler handler);
  void remove_route(const std::string& path);

  // Sorted list of registered paths.  Safe to call from inside a handler
  // (the routes mutex is recursive precisely so the "/" index and /healthz
  // can enumerate their own server's routes).
  std::vector<std::string> route_paths() const;

 private:
  void serve_loop();
  void handle_connection(int fd);
  HttpResponse dispatch(const std::string& path);

  int listen_fd_ = -1;
  int port_ = 0;
  std::thread thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> accept_faults_{0};
  std::atomic<std::uint64_t> send_drops_{0};
  // Recursive: dispatch() holds it across the handler call (so
  // remove_route cannot race an in-flight handler), and handlers may call
  // route_paths() back into the server.
  mutable std::recursive_mutex routes_mu_;
  std::map<std::string, Handler> routes_;
};

// Prometheus text exposition format (version 0.0.4) for every instrument
// in the registry: counters and gauges verbatim, histograms in native
// histogram format (cumulative `_bucket{le="..."}` samples ending at
// `le="+Inf"`, plus `_sum`/`_count`) followed by `<name>_p50/_p95/_p99`
// gauges so dashboards get quantiles without PromQL histogram_quantile.
// Metric names are sanitized ('.' → '_').
std::string render_prometheus(const MetricsRegistry& registry);

// The scrape Content-Type Prometheus expects.
inline constexpr const char* kPrometheusContentType =
    "text/plain; version=0.0.4; charset=utf-8";

}  // namespace vapro::obs
