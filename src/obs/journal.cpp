#include "src/obs/journal.hpp"

#include <unistd.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "src/obs/journal_segment.hpp"
#include "src/testing/fault.hpp"
#include "src/util/crc32.hpp"
#include "src/util/fs.hpp"

namespace vapro::obs {

namespace {

std::string format_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // %.17g never produces JSON-invalid text for finite values; inf/nan are
  // not valid JSON, so clamp them to null (consumers treat as absent).
  if (std::strstr(buf, "inf") || std::strstr(buf, "nan")) return "null";
  return buf;
}

std::string unescape_json_string(const std::string& raw) {
  // `raw` includes the surrounding quotes.
  std::string out;
  for (std::size_t i = 1; i + 1 < raw.size(); ++i) {
    char c = raw[i];
    if (c != '\\') {
      out += c;
      continue;
    }
    if (++i + 1 >= raw.size()) break;  // dangling backslash before the quote
    switch (raw[i]) {
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'u': {
        if (i + 4 < raw.size()) {
          const std::string hex = raw.substr(i + 1, 4);
          out += static_cast<char>(std::strtol(hex.c_str(), nullptr, 16));
          i += 4;
        }
        break;
      }
      default: out += raw[i];
    }
  }
  return out;
}

}  // namespace

std::string journal_json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

JournalField JournalField::num(const std::string& key, double v) {
  return {key, format_double(v)};
}

JournalField JournalField::num(const std::string& key, std::uint64_t v) {
  return {key, std::to_string(v)};
}

JournalField JournalField::num(const std::string& key, std::int64_t v) {
  return {key, std::to_string(v)};
}

JournalField JournalField::str(const std::string& key, const std::string& v) {
  return {key, '"' + journal_json_escape(v) + '"'};
}

JournalField JournalField::boolean(const std::string& key, bool v) {
  return {key, v ? "true" : "false"};
}

std::string JournalEvent::to_json_line() const {
  std::ostringstream oss;
  oss << "{\"seq\":" << seq << ",\"type\":\"" << journal_json_escape(type)
      << '"';
  if (window >= 0) oss << ",\"window\":" << window;
  oss << ",\"t\":" << format_double(virtual_time);
  for (const JournalField& f : fields)
    oss << ",\"" << journal_json_escape(f.key) << "\":" << f.json;
  oss << '}';
  return oss.str();
}

bool JournalEvent::has(const std::string& key) const {
  for (const JournalField& f : fields)
    if (f.key == key) return true;
  return false;
}

double JournalEvent::number(const std::string& key, double fallback) const {
  for (const JournalField& f : fields) {
    if (f.key != key) continue;
    if (f.json.empty() || f.json[0] == '"' || f.json == "null" ||
        f.json == "true" || f.json == "false")
      return fallback;
    return std::strtod(f.json.c_str(), nullptr);
  }
  return fallback;
}

std::string JournalEvent::str(const std::string& key) const {
  for (const JournalField& f : fields) {
    if (f.key != key) continue;
    if (f.json.size() >= 2 && f.json.front() == '"')
      return unescape_json_string(f.json);
    return {};
  }
  return {};
}

bool JournalEvent::flag(const std::string& key, bool fallback) const {
  for (const JournalField& f : fields) {
    if (f.key != key) continue;
    if (f.json == "true") return true;
    if (f.json == "false") return false;
    return fallback;
  }
  return fallback;
}

// --- Journal --------------------------------------------------------------

void Journal::add_sink(JournalSink* sink) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  sinks_.push_back(sink);
}

std::uint64_t Journal::emit(JournalEvent event) {
  std::unique_lock<std::recursive_mutex> lock(mu_);
  event.seq = next_seq_++;
  const std::uint64_t seq = event.seq;
  if (dispatching_) {
    // Re-entrant emit from inside a sink callback (e.g. the alert engine
    // journaling a fired alert): queue it; the outer dispatch drains.
    pending_.push_back(std::move(event));
    return seq;
  }
  dispatching_ = true;
  dispatch_locked(event);
  while (!pending_.empty()) {
    std::vector<JournalEvent> batch;
    batch.swap(pending_);
    for (const JournalEvent& ev : batch) dispatch_locked(ev);
  }
  dispatching_ = false;
  return seq;
}

std::uint64_t Journal::emit(const std::string& type, std::int64_t window,
                            double virtual_time,
                            std::vector<JournalField> fields) {
  JournalEvent ev;
  ev.type = type;
  ev.window = window;
  ev.virtual_time = virtual_time;
  ev.fields = std::move(fields);
  return emit(std::move(ev));
}

void Journal::dispatch_locked(const JournalEvent& event) {
  for (JournalSink* sink : sinks_) sink->on_event(event);
}

void Journal::flush() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  for (JournalSink* sink : sinks_) sink->flush();
}

std::uint64_t Journal::events_emitted() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return next_seq_;
}

// --- JournalFileSink ------------------------------------------------------

namespace {

std::string header_line() {
  std::ostringstream oss;
  oss << "{\"type\":\"journal_header\",\"schema\":\"" << kJournalSchemaName
      << "\",\"schema_version\":" << kJournalSchemaVersion << "}\n";
  return oss.str();
}

}  // namespace

JournalFileSink::JournalFileSink(const std::string& path, OpenMode mode) {
  ok_ = open_file(path, mode);
}

JournalFileSink::~JournalFileSink() {
  if (file_) std::fclose(file_);
}

bool JournalFileSink::open_file(const std::string& path, OpenMode mode) {
  util::ensure_parent_dirs(path);
  std::FILE* f = nullptr;
  if (mode == OpenMode::kAppend) {
    f = std::fopen(path.c_str(), "r+b");
    if (f) {
      // Recover a torn tail: everything after the last complete line is a
      // partial write from a killed writer — truncate it away and resume.
      std::fseek(f, 0, SEEK_END);
      const long size = std::ftell(f);
      long keep = 0;
      if (size > 0) {
        std::string content(static_cast<std::size_t>(size), '\0');
        std::fseek(f, 0, SEEK_SET);
        if (std::fread(content.data(), 1, content.size(), f) != content.size()) {
          std::fclose(f);
          return false;
        }
        const std::size_t last_nl = content.rfind('\n');
        keep = last_nl == std::string::npos
                   ? 0
                   : static_cast<long>(last_nl) + 1;
      }
      recovered_tail_bytes_ = static_cast<std::uint64_t>(size - keep);
      if (keep != size &&
          (std::fflush(f) != 0 || ::ftruncate(fileno(f), keep) != 0)) {
        std::fclose(f);
        return false;
      }
      std::fseek(f, keep, SEEK_SET);
      // An existing file shrunk to nothing needs its header back.
      if (keep == 0) {
        const std::string header = header_line();
        if (std::fwrite(header.data(), 1, header.size(), f) != header.size()) {
          std::fclose(f);
          return false;
        }
      }
      path_ = path;
      file_ = f;
      return true;
    }
    // No existing file: fall through to a fresh create.
  }
  f = std::fopen(path.c_str(), "wb");
  if (!f) return false;
  const std::string header = header_line();
  if (std::fwrite(header.data(), 1, header.size(), f) != header.size()) {
    std::fclose(f);
    return false;
  }
  path_ = path;
  file_ = f;
  return true;
}

void JournalFileSink::sync_locked() {
  if (!file_) return;
  std::fflush(file_);
  ::fsync(fileno(file_));
}

bool JournalFileSink::rotate(const std::string& new_path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!ok_) return false;
  // The finished segment must be durable before the switch: a crash right
  // after rotate() must never lose events the old file acknowledged.
  sync_locked();
  if (VAPRO_FAULT("journal.rotate") == testing::FaultAction::kFail) {
    ++write_faults_;
    return false;  // new segment unwritable; keep appending to the old one
  }
  std::FILE* old = file_;
  const std::string old_path = std::move(path_);
  file_ = nullptr;
  if (!open_file(new_path, OpenMode::kTruncate)) {
    // Could not create the new segment: keep the old one active.
    path_ = old_path;
    file_ = old;
    return false;
  }
  std::fclose(old);
  return true;
}

void JournalFileSink::on_event(const JournalEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!ok_) return;
  const std::string line = event.to_json_line() + '\n';
  switch (VAPRO_FAULT("journal.write")) {
    case testing::FaultAction::kShortWrite:
      // Torn write: a prefix reaches the disk and the writer dies.  The
      // sink goes quiet like a crashed process; kAppend reopen recovers.
      std::fwrite(line.data(), 1, line.size() / 2, file_);
      std::fflush(file_);
      ok_ = false;
      ++write_faults_;
      return;
    case testing::FaultAction::kFail:
      // ENOSPC: this line is lost but the writer keeps going — readers see
      // a seq gap, never a reorder.
      ++write_faults_;
      return;
    default:
      break;
  }
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size()) {
    ++write_faults_;
    return;
  }
  ++lines_written_;
}

void JournalFileSink::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (ok_) std::fflush(file_);
}

// --- reader ---------------------------------------------------------------

namespace {

// Minimal parser for one flat JSON object of scalar values.  Captures each
// value's raw text verbatim so rewriting is byte-identical.
class LineParser {
 public:
  explicit LineParser(const std::string& line) : s_(line) {}

  bool parse(std::vector<JournalField>* out, std::string* error) {
    skip_ws();
    if (!eat('{')) return fail(error, "expected '{'");
    skip_ws();
    if (eat('}')) return finish(error);
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(&key)) return fail(error, "expected key string");
      skip_ws();
      if (!eat(':')) return fail(error, "expected ':'");
      skip_ws();
      std::string raw;
      if (!parse_scalar(&raw)) return fail(error, "expected scalar value");
      out->push_back({std::move(key), std::move(raw)});
      skip_ws();
      if (eat(',')) continue;
      if (eat('}')) return finish(error);
      return fail(error, "expected ',' or '}'");
    }
  }

 private:
  bool finish(std::string* error) {
    skip_ws();
    if (pos_ != s_.size()) return fail(error, "trailing characters");
    return true;
  }
  bool fail(std::string* error, const char* what) {
    if (error) *error = what;
    return false;
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }
  bool eat(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  // Parses a quoted string; returns the *unescaped* content.
  bool parse_string(std::string* out) {
    std::string raw;
    if (!parse_raw_string(&raw)) return false;
    *out = unescape_json_string(raw);
    return true;
  }
  bool parse_raw_string(std::string* raw) {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    const std::size_t start = pos_++;
    while (pos_ < s_.size()) {
      if (s_[pos_] == '\\') {
        pos_ += 2;
        continue;
      }
      if (s_[pos_] == '"') {
        ++pos_;
        *raw = s_.substr(start, pos_ - start);
        return true;
      }
      ++pos_;
    }
    return false;
  }
  bool parse_scalar(std::string* raw) {
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '"') return parse_raw_string(raw);
    if (c == '{' || c == '[') return false;  // journal values are flat
    const std::size_t start = pos_;
    while (pos_ < s_.size() && s_[pos_] != ',' && s_[pos_] != '}' &&
           !std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
    *raw = s_.substr(start, pos_ - start);
    if (*raw == "true" || *raw == "false" || *raw == "null") return true;
    // Must look like a JSON number.
    char* end = nullptr;
    std::strtod(raw->c_str(), &end);
    return end && *end == '\0' && !raw->empty();
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

JournalReadResult fail_result(const std::string& error) {
  JournalReadResult r;
  r.error = error;
  return r;
}

// Journal payload lines, decoded from either framing.  `torn_tail` means a
// trailing partial record was already discarded at the framing layer (only
// the binary decoder reports this; for JSONL the torn final line surfaces
// as an unparseable last element and the line parser handles it).
struct DecodedLines {
  bool ok = false;
  std::string error;
  std::vector<std::string> lines;
  bool torn_tail = false;
};

std::uint32_t load_le32(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint32_t>(b[0]) |
         (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

bool has_binary_magic(const std::string& bytes) {
  return bytes.size() >= sizeof(kJournalBinaryMagic) &&
         std::memcmp(bytes.data(), kJournalBinaryMagic,
                     sizeof(kJournalBinaryMagic)) == 0;
}

// A frame longer than this is corruption, not data — no journal event
// approaches it, and trusting a garbage length would make a flipped bit
// swallow the rest of the file as "torn tail".
constexpr std::uint32_t kMaxFramePayload = 1u << 24;

DecodedLines decode_binary_frames(const std::string& bytes,
                                  bool recover_truncated_tail) {
  DecodedLines out;
  std::size_t pos = sizeof(kJournalBinaryMagic);
  std::size_t frame_no = 0;
  while (pos < bytes.size()) {
    ++frame_no;
    // A complete frame needs its 8-byte header plus the payload; anything
    // shorter at EOF is a torn write from a killed writer.
    if (bytes.size() - pos < 8) {
      if (recover_truncated_tail) {
        out.torn_tail = true;
        break;
      }
      out.error = "torn frame header at byte " + std::to_string(pos);
      return out;
    }
    const std::uint32_t len = load_le32(bytes.data() + pos);
    const std::uint32_t crc = load_le32(bytes.data() + pos + 4);
    if (len > kMaxFramePayload) {
      out.error = "frame " + std::to_string(frame_no) +
                  ": implausible payload length " + std::to_string(len);
      return out;
    }
    if (bytes.size() - pos - 8 < len) {
      if (recover_truncated_tail) {
        out.torn_tail = true;
        break;
      }
      out.error = "torn frame payload at byte " + std::to_string(pos);
      return out;
    }
    // CRC failure on a *complete* frame is corruption (a torn write can
    // only truncate the file), so it is fatal even under recovery.
    if (util::crc32(bytes.data() + pos + 8, len) != crc) {
      out.error = "frame " + std::to_string(frame_no) + ": CRC mismatch";
      return out;
    }
    out.lines.emplace_back(bytes, pos + 8, len);
    pos += 8 + static_cast<std::size_t>(len);
  }
  out.ok = true;
  return out;
}

JournalReadResult parse_journal_lines(const std::vector<std::string>& lines,
                                      bool framing_torn_tail,
                                      JournalReadOptions opts) {
  JournalReadResult result;
  bool saw_header = false;
  std::int64_t last_seq = -1;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    const std::size_t line_no = i + 1;
    if (line.empty()) continue;
    std::vector<JournalField> fields;
    std::string err;
    if (!LineParser(line).parse(&fields, &err)) {
      // A torn final line (writer killed mid-write) can never parse as a
      // complete object — the closing '}' is the last byte out.  Recovery
      // applies only there; corruption before the tail stays fatal.
      if (opts.recover_truncated_tail && i + 1 == lines.size() && saw_header) {
        result.truncated_tail = true;
        break;
      }
      return fail_result("line " + std::to_string(line_no) + ": " + err);
    }

    JournalEvent ev;
    bool have_seq = false;
    for (JournalField& f : fields) {
      if (f.key == "seq") {
        ev.seq = static_cast<std::uint64_t>(std::strtoull(f.json.c_str(),
                                                          nullptr, 10));
        have_seq = true;
      } else if (f.key == "type") {
        if (f.json.size() >= 2 && f.json.front() == '"')
          ev.type = unescape_json_string(f.json);
      } else if (f.key == "window") {
        ev.window = static_cast<std::int64_t>(std::strtoll(f.json.c_str(),
                                                           nullptr, 10));
      } else if (f.key == "t") {
        ev.virtual_time = std::strtod(f.json.c_str(), nullptr);
      } else {
        ev.fields.push_back(std::move(f));
      }
    }

    if (!saw_header) {
      if (ev.type != "journal_header")
        return fail_result("line 1: not a vapro.journal header");
      const JournalEvent& h = ev;
      if (h.str("schema") != kJournalSchemaName)
        return fail_result("schema name mismatch: '" + h.str("schema") +
                           "' (want " + kJournalSchemaName + ")");
      result.schema_version = static_cast<int>(h.number("schema_version", -1));
      if (result.schema_version < kJournalMinReaderVersion ||
          result.schema_version > kJournalSchemaVersion)
        return fail_result(
            "schema version mismatch: journal is v" +
            std::to_string(result.schema_version) + ", reader accepts v" +
            std::to_string(kJournalMinReaderVersion) + "..v" +
            std::to_string(kJournalSchemaVersion));
      // A compacted journal's header records how many superseded events
      // were removed, so replay can reconstruct the original count.
      result.compacted_dropped +=
          static_cast<std::uint64_t>(h.number("dropped_events", 0.0));
      saw_header = true;
      continue;
    }

    if (!have_seq)
      return fail_result("line " + std::to_string(line_no) + ": missing seq");
    if (static_cast<std::int64_t>(ev.seq) <= last_seq)
      return fail_result("line " + std::to_string(line_no) +
                         ": non-monotonic seq " + std::to_string(ev.seq));
    last_seq = static_cast<std::int64_t>(ev.seq);
    result.events.push_back(std::move(ev));
  }
  if (!saw_header) return fail_result("empty journal (no header line)");
  if (framing_torn_tail) result.truncated_tail = true;
  result.ok = true;
  return result;
}

JournalReadResult parse_journal_bytes(const std::string& bytes,
                                      JournalReadOptions opts) {
  if (has_binary_magic(bytes)) {
    DecodedLines decoded =
        decode_binary_frames(bytes, opts.recover_truncated_tail);
    if (!decoded.ok) return fail_result(decoded.error);
    return parse_journal_lines(decoded.lines, decoded.torn_tail, opts);
  }
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos <= bytes.size()) {
    const std::size_t nl = bytes.find('\n', pos);
    if (nl == std::string::npos) {
      if (pos < bytes.size()) lines.emplace_back(bytes, pos);
      break;
    }
    lines.emplace_back(bytes, pos, nl - pos);
    pos = nl + 1;
  }
  return parse_journal_lines(lines, /*framing_torn_tail=*/false, opts);
}

}  // namespace

JournalReadResult parse_journal(std::istream& in, JournalReadOptions opts) {
  std::ostringstream oss;
  oss << in.rdbuf();
  return parse_journal_bytes(oss.str(), opts);
}

JournalReadResult read_journal(const std::string& path,
                               JournalReadOptions opts) {
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec))
    return read_journal_dir(path, opts);
  std::ifstream in(path, std::ios::binary);
  if (!in) return fail_result("cannot open " + path);
  return parse_journal(in, opts);
}

}  // namespace vapro::obs
