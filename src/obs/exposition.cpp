#include "src/obs/exposition.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "src/testing/fault.hpp"
#include "src/util/log.hpp"
#include "src/util/socket.hpp"

namespace vapro::obs {

namespace {

std::string sanitize_metric_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(out.begin(), '_');
  return out;
}

void append_sample(std::ostringstream& oss, const std::string& name,
                   double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Prometheus spells special values differently from printf.
  if (std::strstr(buf, "nan"))
    oss << name << " NaN\n";
  else if (std::strstr(buf, "inf"))
    oss << name << (buf[0] == '-' ? " -Inf\n" : " +Inf\n");
  else
    oss << name << ' ' << buf << '\n';
}

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "OK";
  }
}

}  // namespace

std::string render_prometheus(const MetricsRegistry& registry) {
  std::ostringstream oss;
  for (const auto& [name, value] : registry.counter_values()) {
    const std::string n = sanitize_metric_name(name);
    oss << "# TYPE " << n << " counter\n";
    oss << n << ' ' << value << '\n';
  }
  for (const auto& [name, value] : registry.gauge_values()) {
    const std::string n = sanitize_metric_name(name);
    oss << "# TYPE " << n << " gauge\n";
    append_sample(oss, n, value);
  }
  for (const auto& [name, hist] : registry.histogram_entries()) {
    const std::string n = sanitize_metric_name(name);
    const HistogramSnapshot snap = hist->snapshot();
    oss << "# TYPE " << n << " histogram\n";
    // Cumulative le-labelled buckets.  Trailing empty buckets collapse into
    // the mandatory +Inf sample (still a valid cumulative series) so an
    // idle histogram costs one line, not thirty.
    std::size_t last = 0;
    for (std::size_t i = 0; i < HistogramSnapshot::kBuckets; ++i)
      if (snap.buckets[i] != 0) last = i + 1;
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < last; ++i) {
      cum += snap.buckets[i];
      char label[96], le[32];
      std::snprintf(le, sizeof(le), "%.17g", Histogram::bucket_hi(i));
      std::snprintf(label, sizeof(label), "%s_bucket{le=\"%s\"}", n.c_str(),
                    le);
      oss << label << ' ' << cum << '\n';
    }
    oss << n << "_bucket{le=\"+Inf\"} " << snap.count << '\n';
    append_sample(oss, n + "_sum", snap.sum_seconds);
    oss << n << "_count " << snap.count << '\n';
    // Pre-computed quantile gauges: the self-diagnosis endpoints (and any
    // scraper without recording rules) read latency percentiles directly.
    for (const auto& [suffix, q] :
         {std::pair<const char*, double>{"_p50", 0.50},
          {"_p95", 0.95},
          {"_p99", 0.99}}) {
      oss << "# TYPE " << n << suffix << " gauge\n";
      append_sample(oss, n + suffix, snap.quantile(q));
    }
  }
  return oss.str();
}

bool ExpositionServer::start(int port, std::string* error) {
  if (running()) {
    if (error) *error = "exposition server already running";
    return false;
  }
  // A scraper that disconnects mid-response must cost us a counted drop,
  // not a SIGPIPE-killed process.
  util::ignore_sigpipe();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error) *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (error)
      *error = "port " + std::to_string(port) + " unavailable: " +
               std::strerror(errno);
    ::close(fd);
    return false;
  }
  if (::listen(fd, 16) < 0) {
    if (error) *error = std::string("listen: ") + std::strerror(errno);
    ::close(fd);
    return false;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = static_cast<int>(ntohs(addr.sin_port));
  listen_fd_ = fd;
  stopping_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { serve_loop(); });
  return true;
}

void ExpositionServer::stop() {
  if (!running()) return;
  stopping_.store(true, std::memory_order_relaxed);
  // Unblock the accept() by tearing the listen socket down.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (thread_.joinable()) thread_.join();
  listen_fd_ = -1;
}

void ExpositionServer::add_route(const std::string& path, Handler handler) {
  std::lock_guard<std::recursive_mutex> lock(routes_mu_);
  routes_[path] = std::move(handler);
}

void ExpositionServer::remove_route(const std::string& path) {
  std::lock_guard<std::recursive_mutex> lock(routes_mu_);
  routes_.erase(path);
}

std::vector<std::string> ExpositionServer::route_paths() const {
  std::lock_guard<std::recursive_mutex> lock(routes_mu_);
  std::vector<std::string> out;
  out.reserve(routes_.size());
  for (const auto& [p, h] : routes_) out.push_back(p);
  return out;
}

void ExpositionServer::serve_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_relaxed)) break;
      if (errno == EINTR) continue;
      break;  // listen socket is gone
    }
    if (VAPRO_FAULT("expo.accept") == testing::FaultAction::kFail) {
      // Transient accept-side failure (EMFILE/EAGAIN): drop this client
      // and keep serving — the loop must never wedge on one bad accept.
      accept_faults_.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    handle_connection(fd);
    ::close(fd);
  }
}

void ExpositionServer::handle_connection(int fd) {
  // One request per connection; read until the end of the header block
  // (we never accept bodies) with a small cap against abuse.
  std::string req;
  char buf[2048];
  while (req.find("\r\n\r\n") == std::string::npos && req.size() < 16384) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    req.append(buf, static_cast<std::size_t>(n));
  }
  const std::size_t line_end = req.find("\r\n");
  if (line_end == std::string::npos) return;
  std::istringstream request_line(req.substr(0, line_end));
  std::string method, target;
  request_line >> method >> target;

  HttpResponse resp;
  if (method != "GET") {
    resp.status = 405;
    resp.body = "only GET is supported\n";
  } else {
    const std::size_t q = target.find('?');
    if (q != std::string::npos) target.resize(q);
    resp = dispatch(target);
  }
  requests_.fetch_add(1, std::memory_order_relaxed);

  std::ostringstream out;
  out << "HTTP/1.1 " << resp.status << ' ' << status_text(resp.status)
      << "\r\nContent-Type: " << resp.content_type
      << "\r\nContent-Length: " << resp.body.size()
      << "\r\nConnection: close\r\n\r\n"
      << resp.body;
  std::string payload = out.str();
  switch (VAPRO_FAULT("expo.send")) {
    case testing::FaultAction::kClose:
      // Peer-visible mid-response close: half the payload goes out, then
      // the connection dies.  Clients must treat the short body as failure.
      payload.resize(payload.size() / 2);
      break;
    case testing::FaultAction::kFail:
      return;  // send() failed outright; nothing reaches the client
    default:
      break;
  }
  // EPIPE/ECONNRESET here just means the peer went away mid-response
  // (curl ^C, a scraper timeout): count the drop, keep serving.
  if (!util::send_all(fd, payload.data(), payload.size()))
    send_drops_.fetch_add(1, std::memory_order_relaxed);
}

HttpResponse ExpositionServer::dispatch(const std::string& path) {
  // Handlers are invoked under the routes mutex so remove_route (called
  // from a destructing AnalysisServer) cannot race an in-flight call.
  std::lock_guard<std::recursive_mutex> lock(routes_mu_);
  auto it = routes_.find(path);
  if (it == routes_.end()) {
    HttpResponse resp;
    resp.status = 404;
    std::ostringstream body;
    body << "unknown path " << path << "\navailable:\n";
    for (const auto& [p, h] : routes_) body << "  " << p << '\n';
    resp.body = body.str();
    return resp;
  }
  // A handler that throws must surface as a 503 response, never as a hung
  // connection or a dead serve thread.
  try {
    return it->second();
  } catch (const std::exception& e) {
    HttpResponse resp;
    resp.status = 503;
    resp.body = std::string("handler error: ") + e.what() + '\n';
    return resp;
  } catch (...) {
    HttpResponse resp;
    resp.status = 503;
    resp.body = "handler error\n";
    return resp;
  }
}

}  // namespace vapro::obs
