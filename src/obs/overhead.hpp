// Self-overhead accountant: separates *tool* wall time from *application*
// time so the reproduction can report its own Table-1-style overhead
// number.
//
// Tool time is accumulated (relaxed atomic nanoseconds) by every
// instrumented tool code path — client interception hooks, window drains,
// server analysis, PMU reprogramming.  Application time has two views:
//   * run wall seconds — host wall clock of the whole run, set by the
//     driver; tool_fraction_of_wall() = tool / wall is the honest
//     "overhead %" analog of Table 1;
//   * app virtual seconds — the simulator's makespan, reported alongside
//     so readers can relate tool cost to simulated execution scale.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace vapro::obs {

class OverheadAccountant {
 public:
  void add_tool_ns(std::uint64_t ns) {
    tool_ns_.fetch_add(ns, std::memory_order_relaxed);
  }
  std::atomic<std::uint64_t>* tool_ns_cell() { return &tool_ns_; }

  void set_run_wall_seconds(double s) { wall_seconds_ = s; }
  void set_app_virtual_seconds(double s) { app_virtual_seconds_ = s; }

  double tool_seconds() const {
    return static_cast<double>(tool_ns_.load(std::memory_order_relaxed)) *
           1e-9;
  }
  double run_wall_seconds() const { return wall_seconds_; }
  double app_virtual_seconds() const { return app_virtual_seconds_; }
  // Fraction of the run's wall clock spent inside tool code; 0 until the
  // driver sets the wall time.
  double tool_fraction_of_wall() const {
    return wall_seconds_ > 0.0 ? tool_seconds() / wall_seconds_ : 0.0;
  }

  // {"tool_seconds":..,"run_wall_seconds":..,"app_virtual_seconds":..,
  //  "tool_fraction_of_wall":..}
  std::string to_json() const;

 private:
  std::atomic<std::uint64_t> tool_ns_{0};
  double wall_seconds_ = 0.0;
  double app_virtual_seconds_ = 0.0;
};

// RAII: charges the scope's wall time to the accountant's tool tally.
class ToolTimeScope {
 public:
  explicit ToolTimeScope(OverheadAccountant* acct);
  ~ToolTimeScope();
  ToolTimeScope(const ToolTimeScope&) = delete;
  ToolTimeScope& operator=(const ToolTimeScope&) = delete;

 private:
  OverheadAccountant* acct_;
  std::uint64_t t0_ns_ = 0;
};

// Sampled variant for per-call hot paths (interception hooks fire for
// every fragment boundary): times one call in kEvery per thread and scales
// the reading by kEvery, so the accountant stays honest at ~1/kEvery the
// clock-read cost.  Use the exact ToolTimeScope for coarse operations.
class SampledToolTimeScope {
 public:
  static constexpr std::uint64_t kEvery = 64;
  explicit SampledToolTimeScope(OverheadAccountant* acct);
  ~SampledToolTimeScope();
  SampledToolTimeScope(const SampledToolTimeScope&) = delete;
  SampledToolTimeScope& operator=(const SampledToolTimeScope&) = delete;

 private:
  OverheadAccountant* acct_ = nullptr;  // null when this call is skipped
  std::uint64_t t0_ns_ = 0;
};

}  // namespace vapro::obs
