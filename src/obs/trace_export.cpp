#include "src/obs/trace_export.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace vapro::obs {

namespace {

std::string escape(const std::string& s) {
  std::ostringstream oss;
  for (char c : s) {
    switch (c) {
      case '"': oss << "\\\""; break;
      case '\\': oss << "\\\\"; break;
      case '\n': oss << "\\n"; break;
      case '\r': oss << "\\r"; break;
      case '\t': oss << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          oss << buf;
        } else {
          oss << c;
        }
    }
  }
  return oss.str();
}

std::string number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

TraceArg TraceRecorder::arg(const std::string& key, double v) {
  return {key, number(v)};
}

TraceArg TraceRecorder::arg(const std::string& key, std::uint64_t v) {
  return {key, std::to_string(v)};
}

TraceArg TraceRecorder::arg(const std::string& key, const std::string& v) {
  return {key, '"' + escape(v) + '"'};
}

std::uint64_t TraceRecorder::now_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

int TraceRecorder::tid_of_current_thread_locked() {
  const auto id = std::this_thread::get_id();
  auto [it, inserted] = tids_.emplace(id, static_cast<int>(tids_.size()) + 1);
  return it->second;
}

void TraceRecorder::push_locked(ChromeEvent ev) {
  ev.tid = tid_of_current_thread_locked();
  events_.push_back(std::move(ev));
}

void TraceRecorder::complete(const std::string& name,
                             const std::string& category, std::uint64_t t0_ns,
                             std::vector<TraceArg> args) {
  const std::uint64_t end_ns = now_ns();
  complete_span(name, category, t0_ns, end_ns > t0_ns ? end_ns - t0_ns : 0,
                std::move(args));
}

void TraceRecorder::complete_span(const std::string& name,
                                  const std::string& category,
                                  std::uint64_t t0_ns, std::uint64_t dur_ns,
                                  std::vector<TraceArg> args) {
  ChromeEvent ev;
  ev.name = name;
  ev.category = category;
  ev.phase = 'X';
  ev.ts_us = static_cast<double>(t0_ns) * 1e-3;
  ev.dur_us = static_cast<double>(dur_ns) * 1e-3;
  ev.args = std::move(args);
  std::lock_guard<std::mutex> lock(mu_);
  push_locked(std::move(ev));
}

void TraceRecorder::instant(const std::string& name,
                            const std::string& category,
                            std::vector<TraceArg> args) {
  ChromeEvent ev;
  ev.name = name;
  ev.category = category;
  ev.phase = 'i';
  ev.ts_us = static_cast<double>(now_ns()) * 1e-3;
  ev.args = std::move(args);
  std::lock_guard<std::mutex> lock(mu_);
  push_locked(std::move(ev));
}

void TraceRecorder::flow_start(const std::string& name,
                               const std::string& category,
                               std::uint64_t flow_id, std::uint64_t ts_ns) {
  ChromeEvent ev;
  ev.name = name;
  ev.category = category;
  ev.phase = 's';
  ev.ts_us = static_cast<double>(ts_ns) * 1e-3;
  ev.flow_id = flow_id;
  std::lock_guard<std::mutex> lock(mu_);
  push_locked(std::move(ev));
}

void TraceRecorder::flow_end(const std::string& name,
                             const std::string& category,
                             std::uint64_t flow_id, std::uint64_t ts_ns) {
  ChromeEvent ev;
  ev.name = name;
  ev.category = category;
  ev.phase = 'f';
  ev.ts_us = static_cast<double>(ts_ns) * 1e-3;
  ev.flow_id = flow_id;
  std::lock_guard<std::mutex> lock(mu_);
  push_locked(std::move(ev));
}

std::size_t TraceRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::vector<ChromeEvent> TraceRecorder::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::string TraceRecorder::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream oss;
  oss << "{\"traceEvents\":[";
  bool first = true;
  for (const ChromeEvent& ev : events_) {
    if (!first) oss << ',';
    first = false;
    oss << "{\"name\":\"" << escape(ev.name) << "\",\"cat\":\""
        << escape(ev.category) << "\",\"ph\":\"" << ev.phase
        << "\",\"ts\":" << number(ev.ts_us) << ",\"pid\":1,\"tid\":" << ev.tid;
    if (ev.phase == 'X') oss << ",\"dur\":" << number(ev.dur_us);
    if (ev.phase == 'i') oss << ",\"s\":\"t\"";  // thread-scoped instant
    if (ev.phase == 's' || ev.phase == 'f') {
      oss << ",\"id\":" << ev.flow_id;
      // bp:e makes the arrow land at the enclosing slice's end, the
      // rendering Perfetto expects for stage-handoff flows.
      if (ev.phase == 'f') oss << ",\"bp\":\"e\"";
    }
    if (!ev.args.empty()) {
      oss << ",\"args\":{";
      bool afirst = true;
      for (const TraceArg& a : ev.args) {
        if (!afirst) oss << ',';
        afirst = false;
        oss << '"' << escape(a.key) << "\":" << a.json_value;
      }
      oss << '}';
    }
    oss << '}';
  }
  oss << "],\"displayTimeUnit\":\"ms\"}";
  return oss.str();
}

bool TraceRecorder::write_json(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << to_json();
  return static_cast<bool>(out);
}

}  // namespace vapro::obs
