#include "src/obs/quality.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "src/obs/exposition.hpp"

namespace vapro::obs {

namespace {

std::string fmt17(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void append_score_fields(std::ostringstream& oss, const QualityScore& s) {
  oss << "\"truths\":" << s.truths << ",\"detections\":" << s.detections
      << ",\"matched_truths\":" << s.matched_truths
      << ",\"matched_detections\":" << s.matched_detections
      << ",\"diagnosis_cases\":" << s.diagnosis_cases
      << ",\"diagnosis_hits\":" << s.diagnosis_hits
      << ",\"precision\":" << fmt17(s.precision())
      << ",\"recall\":" << fmt17(s.recall()) << ",\"f1\":" << fmt17(s.f1())
      << ",\"top_factor_accuracy\":" << fmt17(s.top_factor_accuracy());
}

}  // namespace

bool quality_match(const QualityTruth& t, const QualityDetection& d,
                   const QualityMatchOptions& opts) {
  if (d.rank_hi < t.rank_lo || d.rank_lo > t.rank_hi) return false;
  if (!t.allowed_categories.empty() && !d.category.empty() &&
      std::find(t.allowed_categories.begin(), t.allowed_categories.end(),
                d.category) == t.allowed_categories.end())
    return false;
  const double overlap = std::min(t.t_hi, d.t_hi) - std::max(t.t_lo, d.t_lo);
  return overlap > opts.min_overlap_seconds;
}

double QualityScore::precision() const {
  if (detections == 0) return 1.0;
  return static_cast<double>(matched_detections) /
         static_cast<double>(detections);
}

double QualityScore::recall() const {
  if (truths == 0) return 1.0;
  return static_cast<double>(matched_truths) / static_cast<double>(truths);
}

double QualityScore::f1() const {
  const double p = precision();
  const double r = recall();
  if (p + r <= 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

double QualityScore::top_factor_accuracy() const {
  if (diagnosis_cases == 0) return 1.0;
  return static_cast<double>(diagnosis_hits) /
         static_cast<double>(diagnosis_cases);
}

void QualityScore::merge(const QualityScore& other) {
  truths += other.truths;
  detections += other.detections;
  matched_truths += other.matched_truths;
  matched_detections += other.matched_detections;
  diagnosis_cases += other.diagnosis_cases;
  diagnosis_hits += other.diagnosis_hits;
}

QualityScore score_quality(const std::vector<QualityTruth>& truths,
                           const std::vector<QualityDetection>& detections,
                           const std::vector<std::string>& top_factors,
                           const QualityMatchOptions& opts) {
  QualityScore score;
  score.truths = truths.size();
  score.detections = detections.size();
  for (const QualityDetection& d : detections)
    for (const QualityTruth& t : truths)
      if (quality_match(t, d, opts)) {
        ++score.matched_detections;
        break;
      }
  for (const QualityTruth& t : truths) {
    bool found = false;
    for (const QualityDetection& d : detections)
      if (quality_match(t, d, opts)) {
        found = true;
        break;
      }
    if (found) ++score.matched_truths;
    if (t.expected_factors.empty()) continue;
    ++score.diagnosis_cases;
    // An injection a detector never located cannot have been diagnosed:
    // factor attribution runs on the fragments of detected regions, so an
    // unmatched truth scores as a diagnosis miss even when the factor
    // happens to appear for another injection.
    if (!found) continue;
    for (const std::string& expected : t.expected_factors)
      if (std::find(top_factors.begin(), top_factors.end(), expected) !=
          top_factors.end()) {
        ++score.diagnosis_hits;
        break;
      }
  }
  return score;
}

void QualityScoreboard::add(QualityCell cell) {
  std::lock_guard<std::mutex> lock(mu_);
  cells_.push_back(std::move(cell));
}

std::vector<QualityCell> QualityScoreboard::cells() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cells_;
}

QualityScore QualityScoreboard::aggregate() const {
  std::lock_guard<std::mutex> lock(mu_);
  QualityScore total;
  for (const QualityCell& cell : cells_) total.merge(cell.score);
  return total;
}

std::string QualityScoreboard::render_json() const {
  const std::vector<QualityCell> cells = this->cells();
  const QualityScore total = aggregate();
  std::ostringstream oss;
  oss << "{\"schema\":\"vapro.quality\",\"cells\":[";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    oss << (i ? "," : "") << "{\"app\":\"" << journal_json_escape(cells[i].app)
        << "\",\"noise\":\"" << journal_json_escape(cells[i].noise) << "\",";
    append_score_fields(oss, cells[i].score);
    oss << "}";
  }
  oss << "],\"aggregate\":{";
  append_score_fields(oss, total);
  oss << "}}";
  return oss.str();
}

void QualityScoreboard::publish_gauges(MetricsRegistry& metrics) const {
  const std::vector<QualityCell> cells = this->cells();
  const QualityScore total = aggregate();
  metrics.gauge("vapro.quality.precision")->set(total.precision());
  metrics.gauge("vapro.quality.recall")->set(total.recall());
  metrics.gauge("vapro.quality.f1")->set(total.f1());
  metrics.gauge("vapro.quality.top_factor_accuracy")
      ->set(total.top_factor_accuracy());
  for (const QualityCell& cell : cells) {
    const std::string base =
        "vapro.quality.cell." + cell.app + "." + cell.noise + ".";
    metrics.gauge(base + "precision")->set(cell.score.precision());
    metrics.gauge(base + "recall")->set(cell.score.recall());
    metrics.gauge(base + "f1")->set(cell.score.f1());
    metrics.gauge(base + "top_factor_accuracy")
        ->set(cell.score.top_factor_accuracy());
  }
}

void QualityScoreboard::journal(Journal& journal, double virtual_time) const {
  const std::vector<QualityCell> cells = this->cells();
  for (const QualityCell& cell : cells)
    journal.emit(
        "quality_cell", /*window=*/-1, virtual_time,
        {JournalField::str("app", cell.app),
         JournalField::str("noise", cell.noise),
         JournalField::num("truths",
                           static_cast<std::uint64_t>(cell.score.truths)),
         JournalField::num("detections",
                           static_cast<std::uint64_t>(cell.score.detections)),
         JournalField::num("precision", cell.score.precision()),
         JournalField::num("recall", cell.score.recall()),
         JournalField::num("f1", cell.score.f1()),
         JournalField::num("top_factor_accuracy",
                           cell.score.top_factor_accuracy())});
  const QualityScore total = aggregate();
  // Field names double as alert-rule metric names (quality_recall < 0.8
  // for 2) the way window-event fields do for variance_ratio.
  journal.emit("quality", /*window=*/-1, virtual_time,
               {JournalField::num("quality_precision", total.precision()),
                JournalField::num("quality_recall", total.recall()),
                JournalField::num("quality_f1", total.f1()),
                JournalField::num("quality_top_factor_accuracy",
                                  total.top_factor_accuracy()),
                JournalField::num(
                    "cells", static_cast<std::uint64_t>(cells.size()))});
}

void QualityScoreboard::attach_route(ExpositionServer& server) {
  server.add_route("/v1/quality", [this] {
    HttpResponse resp;
    resp.content_type = "application/json";
    resp.body = render_json();
    return resp;
  });
}

}  // namespace vapro::obs
