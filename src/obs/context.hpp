// ObsContext — the one handle the rest of the system carries.
//
// Owns the metrics registry, the self-overhead accountant, an always-on
// CollectingSink of per-window PipelineStats, optional extra sinks, an
// optional Chrome trace recorder (off until enable_trace()), an optional
// event journal (off until enable_journal()), and an optional embedded
// HTTP exposition server (off until start_exposition()).  Core code takes
// a borrowed `ObsContext*` through its options structs; a null pointer
// disables all telemetry at the cost of one branch per call site, so the
// library has zero observability overhead unless a driver opts in.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/exposition.hpp"
#include "src/obs/journal.hpp"
#include "src/obs/journal_segment.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/overhead.hpp"
#include "src/obs/pipeline.hpp"
#include "src/obs/trace_export.hpp"
#include "src/util/clock.hpp"

namespace vapro::obs {

class ObsContext {
 public:
  ~ObsContext();
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  OverheadAccountant& overhead() { return overhead_; }
  const OverheadAccountant& overhead() const { return overhead_; }

  // Null until enable_trace(); call sites guard with `if (auto* t = ...)`.
  TraceRecorder* trace() { return trace_.get(); }
  const TraceRecorder* trace() const { return trace_.get(); }
  TraceRecorder* enable_trace();

  // Null until enable_journal(); call sites guard with `if (auto* j = ...)`.
  Journal* journal() { return journal_.get(); }
  const Journal* journal() const { return journal_.get(); }
  Journal* enable_journal();
  // enable_journal() + attach an owned JSONL file sink (parent directories
  // are created).  False when the file cannot be opened.
  bool attach_journal_file(const std::string& path);
  // enable_journal() + attach an owned rotating segment-directory sink
  // (src/obs/journal_segment.hpp).  False when the first segment cannot
  // be created.
  bool attach_journal_segments(SegmentOptions options);
  // The owned segment sink, if attach_journal_segments succeeded.
  JournalSegmentSink* journal_segments() { return journal_segments_.get(); }

  // Null until start_exposition().  Starting binds 127.0.0.1:`port`
  // (0 = ephemeral) and registers the built-in routes (/, /metrics,
  // /healthz); core components add their /v1 snapshots on top.  On bind
  // failure returns null and sets `error`.
  ExpositionServer* exposition() { return exposition_.get(); }
  const ExpositionServer* exposition() const { return exposition_.get(); }
  ExpositionServer* start_exposition(int port, std::string* error = nullptr);

  // Extra sinks observe each window after the built-in collector; borrowed,
  // must outlive the context's use.
  void add_sink(PipelineSink* sink);
  // Fans a window snapshot out to the collector and every extra sink.
  // Serialized — safe to call from concurrent leaf servers.
  void emit_window(const PipelineStats& stats);

  const CollectingSink& windows() const { return windows_; }

  // The full self-telemetry document:
  // {"metrics":{...},"windows":[...],"overhead":{...}}.
  std::string metrics_json() const;
  bool write_metrics_json(const std::string& path) const;
  // Chrome trace JSON; false when tracing was never enabled.
  bool write_trace_json(const std::string& path) const;

  // Liveness for /healthz: windows emitted so far and the wall-clock age
  // of the last one (negative = no window yet).
  std::uint64_t windows_emitted() const {
    return windows_emitted_.load(std::memory_order_relaxed);
  }
  double last_window_age_seconds() const;
  double uptime_seconds() const;

  // Time source for uptime/window-age (defaults to the real steady clock).
  // Install a util::VirtualClock BEFORE the first emit_window to test
  // age/linger logic without sleeping; borrowed, must outlive the context.
  void set_clock(util::Clock* clock) {
    clock_ = clock ? clock : util::real_clock();
    epoch_seconds_ = clock_->now_seconds();
  }
  util::Clock* clock() const { return clock_; }

 private:
  MetricsRegistry metrics_;
  OverheadAccountant overhead_;
  CollectingSink windows_;
  std::vector<PipelineSink*> extra_sinks_;
  std::unique_ptr<TraceRecorder> trace_;
  std::unique_ptr<Journal> journal_;
  std::unique_ptr<JournalFileSink> journal_file_;
  std::unique_ptr<JournalSegmentSink> journal_segments_;
  std::unique_ptr<ExpositionServer> exposition_;
  std::mutex emit_mu_;
  std::atomic<std::uint64_t> windows_emitted_{0};
  // Nanoseconds since the clock epoch of the last emit_window; -1 before
  // any.
  std::atomic<std::int64_t> last_window_ns_{-1};
  util::Clock* clock_ = util::real_clock();
  double epoch_seconds_ = clock_->now_seconds();
};

}  // namespace vapro::obs
