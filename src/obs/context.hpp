// ObsContext — the one handle the rest of the system carries.
//
// Owns the metrics registry, the self-overhead accountant, an always-on
// CollectingSink of per-window PipelineStats, optional extra sinks, and an
// optional Chrome trace recorder (off until enable_trace()).  Core code
// takes a borrowed `ObsContext*` through its options structs; a null
// pointer disables all telemetry at the cost of one branch per call site,
// so the library has zero observability overhead unless a driver opts in.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/metrics.hpp"
#include "src/obs/overhead.hpp"
#include "src/obs/pipeline.hpp"
#include "src/obs/trace_export.hpp"

namespace vapro::obs {

class ObsContext {
 public:
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  OverheadAccountant& overhead() { return overhead_; }
  const OverheadAccountant& overhead() const { return overhead_; }

  // Null until enable_trace(); call sites guard with `if (auto* t = ...)`.
  TraceRecorder* trace() { return trace_.get(); }
  const TraceRecorder* trace() const { return trace_.get(); }
  TraceRecorder* enable_trace();

  // Extra sinks observe each window after the built-in collector; borrowed,
  // must outlive the context's use.
  void add_sink(PipelineSink* sink);
  // Fans a window snapshot out to the collector and every extra sink.
  // Serialized — safe to call from concurrent leaf servers.
  void emit_window(const PipelineStats& stats);

  const CollectingSink& windows() const { return windows_; }

  // The full self-telemetry document:
  // {"metrics":{...},"windows":[...],"overhead":{...}}.
  std::string metrics_json() const;
  bool write_metrics_json(const std::string& path) const;
  // Chrome trace JSON; false when tracing was never enabled.
  bool write_trace_json(const std::string& path) const;

 private:
  MetricsRegistry metrics_;
  OverheadAccountant overhead_;
  CollectingSink windows_;
  std::vector<PipelineSink*> extra_sinks_;
  std::unique_ptr<TraceRecorder> trace_;
  std::mutex emit_mu_;
};

}  // namespace vapro::obs
