// Per-window pipeline snapshot emitted by the analysis server.
//
// One PipelineStats per processed window carries what the window ingested
// (fragments, carry-ins, new states), what the analysis produced (clusters,
// rare paths, diagnosis stage) and where the wall time went across the six
// canonical stages: drain → STG growth → clustering → normalization →
// heat-map deposit → diagnosis.  Snapshots flow through pluggable sinks;
// CollectingSink keeps them all (JSON export + aggregate totals), and
// LoggingSink narrates each window through the tagged logger at debug
// level.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace vapro::obs {

struct PipelineStats {
  std::size_t window = 0;            // 0-based window ordinal
  double virtual_time = 0.0;         // simulator time at the flush

  // --- volume ---
  std::size_t fragments_drained = 0;
  std::size_t carry_ins = 0;         // overlap fragments re-entered (Fig 8)
  std::size_t new_states = 0;        // STG vertices announced this window
  std::size_t clusters_formed = 0;
  std::size_t rare_clusters = 0;     // Algorithm 1 line 8 candidates
  // Lanes of the intra-window shard pool this window fanned out over (1 =
  // serial, including a window degraded by a "pipeline.shard" fault).
  std::size_t cluster_shards = 1;
  int diagnosis_stage = 0;           // stage after this window's feed

  // --- per-stage wall time (seconds) ---
  double drain_seconds = 0.0;        // client buffer hand-off
  double stg_seconds = 0.0;          // vertex/edge growth + carry management
  double cluster_seconds = 0.0;      // Algorithm 1 + rare-path scan
  double normalize_seconds = 0.0;    // baseline normalization + eval pairs
  double deposit_seconds = 0.0;      // heat-map deposit + coverage
  double diagnose_seconds = 0.0;     // progressive diagnoser + observer
  double publish_seconds = 0.0;      // metrics/gauges + journal/export
  // Hand-off queue wait (enqueue → worker start); 0 in synchronous mode.
  // NOT part of total_seconds(): it is overlap, not tool work.
  double queue_wait_seconds = 0.0;

  // Total tool time of the window — by definition the per-stage sum, so
  // sinks and tests can rely on the invariant without re-deriving it.
  double total_seconds() const {
    return drain_seconds + stg_seconds + cluster_seconds + normalize_seconds +
           deposit_seconds + diagnose_seconds + publish_seconds;
  }
};

class PipelineSink {
 public:
  virtual ~PipelineSink() = default;
  virtual void on_window(const PipelineStats& stats) = 0;
};

class CollectingSink final : public PipelineSink {
 public:
  void on_window(const PipelineStats& stats) override;
  const std::vector<PipelineStats>& windows() const { return windows_; }
  // Sum of every per-window field (window ordinal/stage hold the last).
  PipelineStats totals() const;
  // JSON array of window objects.
  std::string to_json() const;

 private:
  std::vector<PipelineStats> windows_;
};

class LoggingSink final : public PipelineSink {
 public:
  void on_window(const PipelineStats& stats) override;
};

}  // namespace vapro::obs
