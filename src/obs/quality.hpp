// Detection-quality scoring: what Vapro concluded vs what was injected.
//
// The noise injectors know exactly which (rank range, time window) they
// perturbed and which factor class the perturbation belongs to
// (sim::GroundTruthEvent).  This module scores a run's conclusions against
// that ground truth with window-overlap matching:
//
//   * a detection (variance region) matches a truth when their rank ranges
//     intersect, their time windows overlap by more than
//     QualityMatchOptions::min_overlap_seconds, and the detection's
//     heat-map category is one the truth can plausibly surface in (an IO
//     injection is only "found" by an IO-map region — a shared-resource
//     injection spans every rank and most of the run, so without the
//     category constraint any unrelated region would claim it);
//   * precision  = matched detections / detections  (1 when nothing was
//     detected — an empty answer contains no false positives);
//   * recall     = matched truths / truths          (1 when nothing was
//     injected — there was nothing to miss);
//   * F1         = harmonic mean of the two (0 when both are 0);
//   * top-factor accuracy = truths whose expected factor class appears in
//     the run's observed top factors / truths that carry an expected set.
//
// Factor classes are plain strings so this layer stays free of core/sim
// types: diagnosis culprits score under their factor_name() ("dram_bound",
// "involuntary_cs", ...), and category-level evidence (IO noise should
// surface as an IO-category region) under "category:io" etc.  The
// core-side adapter (src/core/scoreboard) builds both sides.
//
// Scores aggregate per (app × noise) cell into a QualityScoreboard, which
// renders the /v1/quality JSON body, publishes vapro.quality.* gauges, and
// journals "quality"/"quality_cell" events (journal schema v2) so alert
// rules like `quality_recall < 0.8 for 2` can fire on regressions.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/journal.hpp"
#include "src/obs/metrics.hpp"

namespace vapro::obs {

class ExpositionServer;

// One injected perturbation, already resolved to ranks/time by the sim
// layer (sim::GroundTruthEvent → this via core::scoreboard).
struct QualityTruth {
  double t_lo = 0.0;
  double t_hi = 0.0;
  int rank_lo = 0;
  int rank_hi = 0;  // inclusive
  // Factor classes that count as a correct diagnosis for this injection;
  // empty = the truth carries no diagnosable expectation (it still counts
  // for detection precision/recall).
  std::vector<std::string> expected_factors;
  // Heat-map categories a detection may match this truth from ("io",
  // "communication", "computation"); empty = any category.
  std::vector<std::string> allowed_categories;
};

// One detected variance region, in scoreboard terms.
struct QualityDetection {
  double t_lo = 0.0;
  double t_hi = 0.0;
  int rank_lo = 0;
  int rank_hi = 0;  // inclusive
  double impact_seconds = 0.0;
  // Heat-map category the region came from; empty = unspecified (matches
  // any truth's allowed set).
  std::string category;
};

struct QualityMatchOptions {
  // Time overlap must exceed this many seconds (0 = any positive overlap).
  double min_overlap_seconds = 0.0;
};

// True when `d` overlaps `t` in both rank range and time window, and `d`'s
// category is in `t`'s allowed set (either side empty = no constraint).
bool quality_match(const QualityTruth& t, const QualityDetection& d,
                   const QualityMatchOptions& opts = {});

struct QualityScore {
  std::size_t truths = 0;
  std::size_t detections = 0;
  std::size_t matched_truths = 0;      // truths found by >= 1 detection
  std::size_t matched_detections = 0;  // detections explained by >= 1 truth
  std::size_t diagnosis_cases = 0;     // truths with a non-empty expected set
  std::size_t diagnosis_hits = 0;      // ... whose class was named top factor

  double precision() const;
  double recall() const;
  double f1() const;
  double top_factor_accuracy() const;

  // Micro-average accumulation (counts add; the ratios re-derive).
  void merge(const QualityScore& other);
};

// Scores one run: overlap-matches `detections` against `truths`, then
// checks each truth's expected factor classes against `top_factors` — the
// run's observed top factors (diagnosis culprit names plus
// "category:<kind>" tags for categories containing matched detections).
QualityScore score_quality(const std::vector<QualityTruth>& truths,
                           const std::vector<QualityDetection>& detections,
                           const std::vector<std::string>& top_factors,
                           const QualityMatchOptions& opts = {});

struct QualityCell {
  std::string app;
  std::string noise;  // noise-kind tag ("cpu", "io", ...) or "none"
  QualityScore score;
};

// Per-(app × noise) scoreboard.  Thread-safe: `add` may race with the
// exposition serve thread rendering /v1/quality.
class QualityScoreboard {
 public:
  void add(QualityCell cell);
  std::vector<QualityCell> cells() const;
  QualityScore aggregate() const;

  // {"schema":"vapro.quality","cells":[...],"aggregate":{...}} — numbers
  // %.17g like every other machine surface, so the live endpoint serves
  // byte-for-byte the values BENCH_quality.json records.
  std::string render_json() const;

  // vapro.quality.{precision,recall,f1,top_factor_accuracy} aggregate
  // gauges plus per-cell vapro.quality.cell.<app>.<noise>.<metric>.
  void publish_gauges(MetricsRegistry& metrics) const;

  // One "quality_cell" event per cell plus one aggregate "quality" event
  // whose field names double as alert-rule metrics (quality_recall, ...).
  void journal(Journal& journal, double virtual_time) const;

  // Registers GET /v1/quality serving render_json().  Borrowed: this
  // scoreboard must outlive the server (or remove_route first).
  void attach_route(ExpositionServer& server);

 private:
  mutable std::mutex mu_;
  std::vector<QualityCell> cells_;
};

}  // namespace vapro::obs
