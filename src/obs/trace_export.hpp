// Chrome trace-event exporter (chrome://tracing / Perfetto "JSON Array
// Format", trailing object form).
//
// Records complete ("X") duration events and instant ("i") events against a
// steady-clock epoch taken at construction; thread ids are compacted to
// small integers in first-seen order so a Perfetto timeline shows "analysis
// window N" spans on the driver track and "cluster.shard"/"leaf.window"
// spans on the worker tracks, with diagnosis stage descents nested inside.
//
// Recording happens under one mutex — the event rate is per analysis
// window/worker, not per fragment, so contention is irrelevant; what must
// stay cheap (the disabled path) is a null-pointer check at the call site.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace vapro::obs {

// One "k":v pair of an event's args object; `json_value` is already valid
// JSON (number or quoted string) — use TraceRecorder::arg to build them.
struct TraceArg {
  std::string key;
  std::string json_value;
};

struct ChromeEvent {
  std::string name;
  std::string category;
  char phase = 'X';       // 'X' complete, 'i' instant, 's'/'f' flow
  double ts_us = 0.0;     // microseconds since recorder epoch
  double dur_us = 0.0;    // 'X' only
  int tid = 0;
  std::uint64_t flow_id = 0;  // 's'/'f' only: binds the two flow endpoints
  std::vector<TraceArg> args;
};

class TraceRecorder {
 public:
  TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}

  static TraceArg arg(const std::string& key, double v);
  static TraceArg arg(const std::string& key, std::uint64_t v);
  static TraceArg arg(const std::string& key, const std::string& v);

  // Nanoseconds since the recorder's epoch, for begin timestamps.
  std::uint64_t now_ns() const;

  // A complete event spanning [t0_ns, now].
  void complete(const std::string& name, const std::string& category,
                std::uint64_t t0_ns, std::vector<TraceArg> args = {});
  // A complete event with an explicit duration.
  void complete_span(const std::string& name, const std::string& category,
                     std::uint64_t t0_ns, std::uint64_t dur_ns,
                     std::vector<TraceArg> args = {});
  void instant(const std::string& name, const std::string& category,
               std::vector<TraceArg> args = {});

  // Flow (causality) arrows: a flow_start at the producer plus a flow_end
  // with the same id at the consumer draws an arrow across threads in
  // Perfetto — the handoff edge between pipeline stages.  Ids come from
  // next_flow_id() (never 0).
  std::uint64_t next_flow_id() {
    return flow_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  void flow_start(const std::string& name, const std::string& category,
                  std::uint64_t flow_id, std::uint64_t ts_ns);
  void flow_end(const std::string& name, const std::string& category,
                std::uint64_t flow_id, std::uint64_t ts_ns);

  std::size_t size() const;
  std::vector<ChromeEvent> snapshot() const;

  // {"traceEvents":[...],"displayTimeUnit":"ms"} — loadable by Perfetto
  // and chrome://tracing.
  std::string to_json() const;
  bool write_json(const std::string& path) const;

 private:
  int tid_of_current_thread_locked();
  void push_locked(ChromeEvent ev);

  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::atomic<std::uint64_t> flow_seq_{0};
  std::vector<ChromeEvent> events_;
  std::unordered_map<std::thread::id, int> tids_;
};

// RAII span: records a complete event over the scope's lifetime.  A null
// recorder makes construction and destruction free.
class TraceSpan {
 public:
  TraceSpan(TraceRecorder* rec, std::string name, std::string category,
            std::vector<TraceArg> args = {})
      : rec_(rec),
        name_(std::move(name)),
        category_(std::move(category)),
        args_(std::move(args)) {
    if (rec_) t0_ns_ = rec_->now_ns();
  }
  ~TraceSpan() {
    if (rec_) rec_->complete(name_, category_, t0_ns_, std::move(args_));
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  // Attach an arg discovered mid-scope (e.g. a result count).
  void add_arg(TraceArg a) {
    if (rec_) args_.push_back(std::move(a));
  }

 private:
  TraceRecorder* rec_;
  std::string name_;
  std::string category_;
  std::vector<TraceArg> args_;
  std::uint64_t t0_ns_ = 0;
};

}  // namespace vapro::obs
