#include "src/obs/overhead.hpp"

#include <chrono>
#include <cmath>
#include <functional>
#include <sstream>
#include <thread>

namespace vapro::obs {

namespace {
std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void append_double(std::ostringstream& oss, double v) {
  if (std::isfinite(v)) {
    oss << v;
  } else {
    oss << "null";
  }
}
}  // namespace

std::string OverheadAccountant::to_json() const {
  std::ostringstream oss;
  oss << "{\"tool_seconds\":";
  append_double(oss, tool_seconds());
  oss << ",\"run_wall_seconds\":";
  append_double(oss, run_wall_seconds());
  oss << ",\"app_virtual_seconds\":";
  append_double(oss, app_virtual_seconds());
  oss << ",\"tool_fraction_of_wall\":";
  append_double(oss, tool_fraction_of_wall());
  oss << '}';
  return oss.str();
}

ToolTimeScope::ToolTimeScope(OverheadAccountant* acct) : acct_(acct) {
  if (acct_) t0_ns_ = steady_ns();
}

ToolTimeScope::~ToolTimeScope() {
  if (!acct_) return;
  const std::uint64_t t1 = steady_ns();
  acct_->add_tool_ns(t1 > t0_ns_ ? t1 - t0_ns_ : 0);
}

SampledToolTimeScope::SampledToolTimeScope(OverheadAccountant* acct) {
  // Phase-shift each thread's sampling by its id so threads neither time
  // their (cold, allocation-heavy) first call in lockstep nor alias with
  // periodic application structure.
  thread_local std::uint64_t tick =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kEvery;
  if (acct && ++tick % kEvery == 0) {
    acct_ = acct;
    t0_ns_ = steady_ns();
  }
}

SampledToolTimeScope::~SampledToolTimeScope() {
  if (!acct_) return;
  const std::uint64_t t1 = steady_ns();
  acct_->add_tool_ns((t1 > t0_ns_ ? t1 - t0_ns_ : 0) * kEvery);
}

}  // namespace vapro::obs
